// Static timing analysis throughput: the flat SoA per-level arc kernel
// vs the retained gate-at-a-time scalar arm, single-threaded, on a
// generated DCIM macro (32x32, mcr 2, 4/8b precisions — ~12.8k gates).
//
// Both arms run the exact same analysis (same StaEngine, same options,
// same cached load plan) and must produce bit-identical TimingReports;
// the bench cross-checks every report field before timing and exits
// nonzero on any mismatch. Throughput is full analyze() calls per wall
// second. `--json FILE` dumps the numbers and `--metrics FILE` writes
// the obs metrics registry (sta.paths.timed / sta.plan.builds). Exits
// nonzero if the SoA kernel is not at least 4x the scalar throughput.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cell/characterize.hpp"
#include "netlist/flatten.hpp"
#include "obs/obs.hpp"
#include "rtlgen/macro.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

rtlgen::MacroConfig bench_cfg() {
  rtlgen::MacroConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.mcr = 2;
  cfg.input_bits = {4, 8};
  cfg.weight_bits = {4, 8};
  cfg.fp_formats = {};
  return cfg;
}

bool reports_equal(const sta::TimingReport& a, const sta::TimingReport& b,
                   std::string& why) {
  if (a.wns_ps != b.wns_ps) { why = "wns_ps"; return false; }
  if (a.tns_ps != b.tns_ps) { why = "tns_ps"; return false; }
  if (a.min_period_ps != b.min_period_ps) {
    why = "min_period_ps";
    return false;
  }
  if (a.fmax_mhz != b.fmax_mhz) { why = "fmax_mhz"; return false; }
  if (a.min_write_period_ps != b.min_write_period_ps) {
    why = "min_write_period_ps";
    return false;
  }
  if (a.groups.size() != b.groups.size()) { why = "groups"; return false; }
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    if (a.groups[i].group != b.groups[i].group ||
        a.groups[i].wns_ps != b.groups[i].wns_ps ||
        a.groups[i].worst_arrival_ps != b.groups[i].worst_arrival_ps) {
      why = "groups[" + std::to_string(i) + "]";
      return false;
    }
  }
  if (a.interfaces.size() != b.interfaces.size()) {
    why = "interfaces";
    return false;
  }
  for (std::size_t g = 0; g < a.interfaces.size(); ++g) {
    const auto& ga = a.interfaces[g];
    const auto& gb = b.interfaces[g];
    if (ga.group != gb.group || ga.inputs.size() != gb.inputs.size() ||
        ga.outputs.size() != gb.outputs.size()) {
      why = "interfaces[" + std::to_string(g) + "]";
      return false;
    }
    for (std::size_t i = 0; i < ga.inputs.size(); ++i) {
      if (ga.inputs[i].net != gb.inputs[i].net ||
          ga.inputs[i].arrival_ps != gb.inputs[i].arrival_ps ||
          ga.inputs[i].slew_ps != gb.inputs[i].slew_ps) {
        why = "interfaces[" + std::to_string(g) + "].inputs";
        return false;
      }
    }
    for (std::size_t i = 0; i < ga.outputs.size(); ++i) {
      if (ga.outputs[i].net != gb.outputs[i].net ||
          ga.outputs[i].arrival_ps != gb.outputs[i].arrival_ps ||
          ga.outputs[i].slew_ps != gb.outputs[i].slew_ps) {
        why = "interfaces[" + std::to_string(g) + "].outputs";
        return false;
      }
    }
  }
  if (a.critical.arrival_ps != b.critical.arrival_ps ||
      a.critical.required_ps != b.critical.required_ps ||
      a.critical.endpoint != b.critical.endpoint ||
      a.critical.stages.size() != b.critical.stages.size()) {
    why = "critical";
    return false;
  }
  for (std::size_t i = 0; i < a.critical.stages.size(); ++i) {
    if (a.critical.stages[i].master != b.critical.stages[i].master ||
        a.critical.stages[i].arrival_ps !=
            b.critical.stages[i].arrival_ps) {
      why = "critical.stages[" + std::to_string(i) + "]";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, metrics_path;
  int iters = 40;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (a == "--iters" && i + 1 < argc) {
      try {
        iters = std::stoi(argv[++i]);
      } catch (...) {
        iters = 0;
      }
      if (iters < 4) {
        std::cerr << "error: --iters wants an integer >= 4\n";
        return 2;
      }
    } else {
      std::cerr << "usage: perf_sta [--iters N] [--json FILE]"
                   " [--metrics FILE]\n";
      return 2;
    }
  }

  const auto lib =
      cell::characterize_default_library(tech::make_default_40nm());
  const auto md = rtlgen::gen_macro(bench_cfg());
  const auto flat = netlist::flatten(md.design, md.top);
  std::printf("macro netlist: %zu gates, %u nets\n", flat.gates().size(),
              flat.net_count());

  const sta::StaEngine eng(flat, lib);
  sta::StaOptions opt;
  opt.static_inputs = md.static_control_ports();

  // --- equivalence self-check (untimed; also warms the load plan) ------
  // The self-check turns on group-interface collection so the full
  // report surface (groups, interfaces, critical path) is compared
  // bit-for-bit. The timed arms below use the default report shape:
  // interface collection is shared epilogue code identical in both arms
  // (~5.6k string-bearing pins per call) and would only dilute the
  // kernel comparison the speedup gate is about.
  {
    sta::StaOptions o = opt;
    o.collect_group_interfaces = true;
    o.kernel = sta::StaKernel::kSoa;
    const auto soa = eng.analyze(o);
    o.kernel = sta::StaKernel::kScalar;
    const auto scalar = eng.analyze(o);
    if (soa.interfaces.empty()) {
      std::cerr << "FAIL: self-check collected no group interfaces\n";
      return 1;
    }
    std::string why;
    if (!reports_equal(soa, scalar, why)) {
      std::cerr << "FAIL: SoA and scalar reports differ at " << why << "\n";
      return 1;
    }
    std::printf("equivalence self-check passed (min period %.1f ps, "
                "%zu groups)\n",
                soa.min_period_ps, soa.groups.size());
  }

  // --- timed arms ------------------------------------------------------
  auto run_arm = [&](sta::StaKernel k) {
    sta::StaOptions o = opt;
    o.kernel = k;
    const auto t0 = std::chrono::steady_clock::now();
    double sink = 0.0;
    for (int i = 0; i < iters; ++i) {
      sink += eng.analyze(o).min_period_ps;
    }
    const double wall = seconds_since(t0);
    if (sink <= 0.0) std::abort();  // keep the loop observable
    return wall;
  };

  const double scalar_s = run_arm(sta::StaKernel::kScalar);
  const double soa_s = run_arm(sta::StaKernel::kSoa);
  const double scalar_rate = iters / scalar_s;
  const double soa_rate = iters / soa_s;
  const double speedup = soa_rate / scalar_rate;

  std::printf("scalar: %8.1f ms, %8.1f analyses/s\n", scalar_s * 1e3,
              scalar_rate);
  std::printf("soa   : %8.1f ms, %8.1f analyses/s (%.1fx scalar)\n",
              soa_s * 1e3, soa_rate, speedup);

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\"format\": \"syndcim-perf-sta\", \"version\": 1,\n"
       << " \"gates\": " << flat.gates().size()
       << ", \"nets\": " << flat.net_count()
       << ", \"iters\": " << iters << ",\n"
       << " \"scalar\": {\"wall_ms\": " << scalar_s * 1e3
       << ", \"analyses_per_s\": " << scalar_rate << "},\n"
       << " \"soa\": {\"wall_ms\": " << soa_s * 1e3
       << ", \"analyses_per_s\": " << soa_rate
       << ", \"speedup\": " << speedup << "}}\n";
    std::ofstream f(json_path);
    f << os.str();
    if (!f.good()) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream f(metrics_path);
    f << obs::metrics().to_json();
    if (!f.good()) {
      std::cerr << "error: cannot write " << metrics_path << "\n";
      return 2;
    }
    std::cout << "wrote " << metrics_path << "\n";
  }

  // Acceptance gate: the SoA kernel must buy at least 4x the scalar
  // arm's single-thread analysis throughput.
  if (speedup < 4.0) {
    std::cerr << "FAIL: soa speedup " << speedup << "x < 4x\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}

// Gate-level simulation throughput: the 64-lane bit-parallel,
// event-driven GateSim vs the retained scalar seed engine
// (sim::ScalarGateSim), single-threaded, on a generated DCIM macro.
//
// Three arms drive the same random stimulus schedule (the word arms share
// one precomputed 64-lane word stream; the scalar arm replays its lane 0):
//
//   1. scalar  — ScalarGateSim: one workload cycle per step, per-bit
//                string-keyed stimulus (the seed engine's hot path)
//   2. sweep64 — GateSim lanes=64, event scheduling off (control arm)
//   3. event64 — GateSim lanes=64, per-level dirty-gate worklist
//
// Throughput is workload cycles per wall second: steps x lanes / wall, so
// each arm is credited for the independent stimulus streams it carries.
// Before timing, lane 0 of the packed engine is cross-checked against a
// scalar replay (values and toggles on every net), and the two word arms
// must agree on every net word and toggle count.
//
// Prints per-arm throughput plus scheduler statistics; `--json FILE`
// dumps the numbers and `--metrics FILE` writes the obs metrics registry
// (sim.gate_evals / sim.events_skipped / sim.lanes). Exits nonzero if the
// event-driven 64-lane arm is not at least 8x the scalar throughput or
// any equivalence check fails.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "cell/characterize.hpp"
#include "netlist/flatten.hpp"
#include "obs/obs.hpp"
#include "rtlgen/macro.hpp"
#include "sim/gate_sim.hpp"
#include "sim/scalar_ref.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

rtlgen::MacroConfig bench_cfg() {
  rtlgen::MacroConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.mcr = 2;
  cfg.input_bits = {4, 8};
  cfg.weight_bits = {4, 8};
  cfg.fp_formats = {};
  return cfg;
}

struct ArmResult {
  double wall_s = 0.0;
  double throughput = 0.0;  ///< workload cycles / second
  std::uint64_t gate_evals = 0;
  std::uint64_t events_skipped = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, metrics_path;
  int cycles = 512;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (a == "--cycles" && i + 1 < argc) {
      try {
        cycles = std::stoi(argv[++i]);
      } catch (...) {
        cycles = 0;
      }
      if (cycles < 8) {
        std::cerr << "error: --cycles wants an integer >= 8\n";
        return 2;
      }
    } else {
      std::cerr << "usage: perf_gate_sim [--cycles N] [--json FILE]"
                   " [--metrics FILE]\n";
      return 2;
    }
  }

  const auto lib =
      cell::characterize_default_library(tech::make_default_40nm());
  const auto md = rtlgen::gen_macro(bench_cfg());
  const auto flat = netlist::flatten(md.design, md.top);
  const auto& ins = flat.primary_inputs();
  std::printf("macro netlist: %zu gates, %u nets, %zu primary inputs\n",
              flat.gates().size(), flat.net_count(), ins.size());

  // One shared 64-lane stimulus stream; the scalar arm replays lane 0.
  std::mt19937_64 rng(2024);
  std::vector<std::vector<std::uint64_t>> stim(
      static_cast<std::size_t>(cycles),
      std::vector<std::uint64_t>(ins.size()));
  for (auto& step : stim) {
    for (auto& w : step) w = rng();
  }

  // --- equivalence self-checks (untimed) -------------------------------
  {
    sim::GateSim packed(flat, lib, 64, /*event_driven=*/true);
    sim::GateSim sweep(flat, lib, 64, /*event_driven=*/false);
    sim::ScalarGateSim ref(flat, lib);
    const int check = std::min(cycles, 48);
    for (int t = 0; t < check; ++t) {
      for (std::size_t i = 0; i < ins.size(); ++i) {
        packed.set_input_word(ins[i].name, stim[static_cast<std::size_t>(t)][i]);
        sweep.set_input_word(ins[i].name, stim[static_cast<std::size_t>(t)][i]);
        ref.set_input(ins[i].name,
                      static_cast<int>(stim[static_cast<std::size_t>(t)][i] & 1u));
      }
      packed.step();
      sweep.step();
      ref.step();
    }
    packed.eval();
    sweep.eval();
    ref.eval();
    for (std::uint32_t n = 0; n < flat.net_count(); ++n) {
      if (static_cast<int>(packed.net_word(n) & 1u) != ref.net_value(n)) {
        std::cerr << "FAIL: lane 0 of net " << n
                  << " disagrees with the scalar reference\n";
        return 1;
      }
      if (packed.net_word(n) != sweep.net_word(n) ||
          packed.net_toggles()[n] != sweep.net_toggles()[n]) {
        std::cerr << "FAIL: event-driven and full-sweep arms disagree on "
                     "net " << n << "\n";
        return 1;
      }
    }
    std::printf("equivalence self-checks passed (%d cycles)\n", check);
  }

  // --- timed arms ------------------------------------------------------
  auto run_scalar = [&]() {
    sim::ScalarGateSim s(flat, lib);
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < cycles; ++t) {
      for (std::size_t i = 0; i < ins.size(); ++i) {
        s.set_input(ins[i].name,
                    static_cast<int>(stim[static_cast<std::size_t>(t)][i] & 1u));
      }
      s.step();
    }
    ArmResult r;
    r.wall_s = seconds_since(t0);
    r.throughput = static_cast<double>(cycles) / r.wall_s;
    return r;
  };
  auto run_packed = [&](bool event_driven) {
    sim::GateSim s(flat, lib, 64, event_driven);
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < cycles; ++t) {
      for (std::size_t i = 0; i < ins.size(); ++i) {
        s.set_input_word(ins[i].name, stim[static_cast<std::size_t>(t)][i]);
      }
      s.step();
    }
    ArmResult r;
    r.wall_s = seconds_since(t0);
    r.throughput = static_cast<double>(cycles) * 64.0 / r.wall_s;
    r.gate_evals = s.gate_evals();
    r.events_skipped = s.events_skipped();
    return r;
  };

  const ArmResult scalar = run_scalar();
  const ArmResult sweep64 = run_packed(false);
  const ArmResult event64 = run_packed(true);

  const double speedup_event = event64.throughput / scalar.throughput;
  const double speedup_sweep = sweep64.throughput / scalar.throughput;
  const double skip_frac =
      event64.gate_evals + event64.events_skipped > 0
          ? static_cast<double>(event64.events_skipped) /
                static_cast<double>(event64.gate_evals +
                                    event64.events_skipped)
          : 0.0;

  std::printf("scalar : %8.1f ms, %10.0f cycles/s\n", scalar.wall_s * 1e3,
              scalar.throughput);
  std::printf("sweep64: %8.1f ms, %10.0f cycles/s (%.1fx scalar)\n",
              sweep64.wall_s * 1e3, sweep64.throughput, speedup_sweep);
  std::printf("event64: %8.1f ms, %10.0f cycles/s (%.1fx scalar, "
              "%.0f%% evals skipped)\n",
              event64.wall_s * 1e3, event64.throughput, speedup_event,
              100.0 * skip_frac);

  obs::metrics().counter("sim.gate_evals").inc(event64.gate_evals);
  obs::metrics().counter("sim.events_skipped").inc(event64.events_skipped);
  obs::metrics().gauge("sim.lanes").set(64.0);

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\"format\": \"syndcim-perf-gate-sim\", \"version\": 1,\n"
       << " \"gates\": " << flat.gates().size()
       << ", \"nets\": " << flat.net_count()
       << ", \"cycles\": " << cycles << ", \"lanes\": 64,\n"
       << " \"scalar\": {\"wall_ms\": " << scalar.wall_s * 1e3
       << ", \"cycles_per_s\": " << scalar.throughput << "},\n"
       << " \"sweep64\": {\"wall_ms\": " << sweep64.wall_s * 1e3
       << ", \"cycles_per_s\": " << sweep64.throughput
       << ", \"speedup\": " << speedup_sweep << "},\n"
       << " \"event64\": {\"wall_ms\": " << event64.wall_s * 1e3
       << ", \"cycles_per_s\": " << event64.throughput
       << ", \"speedup\": " << speedup_event
       << ", \"gate_evals\": " << event64.gate_evals
       << ", \"events_skipped\": " << event64.events_skipped
       << ", \"skip_fraction\": " << skip_frac << "}}\n";
    std::ofstream f(json_path);
    f << os.str();
    if (!f.good()) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream f(metrics_path);
    f << obs::metrics().to_json();
    if (!f.good()) {
      std::cerr << "error: cannot write " << metrics_path << "\n";
      return 2;
    }
    std::cout << "wrote " << metrics_path << "\n";
  }

  // Acceptance gate: 64 packed lanes must buy at least 8x the scalar
  // seed's single-thread simulated-cycle throughput.
  if (speedup_event < 8.0) {
    std::cerr << "FAIL: event64 speedup " << speedup_event << "x < 8x\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}

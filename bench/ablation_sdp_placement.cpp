// Ablation A3 (paper Sec. III-D): structured-data-path placement vs an
// unstructured scattered placement of the same netlist.
//
// Expected shape: SDP's regular strips keep datapath nets short — less
// wirelength, less wire capacitance, faster and lower-power post-layout
// results; the scattered placement "cells may be scattered, affecting
// macro performance".
#include <iostream>

#include "cell/characterize.hpp"
#include "core/report.hpp"
#include "core/spec.hpp"
#include "layout/floorplan.hpp"
#include "layout/route.hpp"
#include "netlist/flatten.hpp"
#include "power/power.hpp"
#include "rtlgen/macro.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

int main() {
  const auto lib = cell::characterize_default_library(tech::make_default_40nm());

  core::PerfSpec spec;
  spec.rows = 64;
  spec.cols = 32;
  spec.mcr = 2;
  spec.input_bits = {4, 8};
  spec.weight_bits = {4, 8};
  auto cfg = spec.base_config();
  cfg.ofu.pipeline_regs = 2;

  std::cout << "=== Ablation A3: SDP vs scattered placement (64x32 macro) "
               "===\n\n";
  const auto md = rtlgen::gen_macro(cfg);
  const auto flat = netlist::flatten(md.design, md.top);
  std::cout << "netlist: " << flat.gates().size() << " cells, "
            << flat.net_count() << " nets\n\n";

  sta::StaEngine sta(flat, lib);
  const auto act =
      power::propagate_activity(flat, lib, power::ActivitySpec{});

  core::TextTable t({"placement", "outline_mm2", "util", "wirelength_mm",
                     "routed_mm", "cong_avg", "cong_max", "fmax_MHz",
                     "power_uW", "DRC", "LVS"});
  for (const auto& [name, fp] :
       {std::pair<const char*, layout::Floorplan>{
            "SDP (structured)", layout::sdp_place(flat, lib, cfg)},
        {"scattered", layout::scattered_place(flat, lib, 1)}}) {
    const auto wire = layout::extract_wire_model(flat, fp, lib.node());
    sta::StaOptions topt;
    topt.wire = wire;
    topt.static_inputs = md.static_control_ports();
    const auto rep = sta.analyze(topt);
    power::PowerOptions popt;
    popt.freq_mhz = 300.0;
    popt.wire = wire;
    const auto pw = power::analyze_power(flat, lib, act, popt);
    const auto rr = layout::global_route(flat, fp, lib.node());
    t.add_row({name, core::TextTable::num(fp.outline.area() * 1e-6, 4),
               core::TextTable::num(fp.utilization, 2),
               core::TextTable::num(fp.wirelength_um * 1e-3, 1),
               core::TextTable::num(rr.total_routed_um * 1e-3, 1),
               core::TextTable::num(rr.avg_utilization, 2),
               core::TextTable::num(rr.max_utilization, 2),
               core::TextTable::num(rep.fmax_mhz, 0),
               core::TextTable::num(pw.total_uw(), 0),
               layout::run_drc(flat, lib, fp).clean() ? "clean" : "DIRTY",
               layout::run_lvs(flat, lib, fp).clean() ? "clean" : "DIRTY"});
  }
  t.print(std::cout);
  return 0;
}

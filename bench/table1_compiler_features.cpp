// Reproduces Table I: comparison with emerging CIM compilers.
//
// The feature matrix is a property of the compiler *models* implemented in
// core/baselines.*; the SynDCIM row is additionally cross-checked against
// the real compiler object (it must actually do what the table claims).
#include <iostream>

#include "cell/characterize.hpp"
#include "core/baselines.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

int main() {
  std::cout << "=== Table I: comparison with emerging CIM compilers ===\n\n";
  core::TextTable t({"Compiler", "Venue", "EndToEnd", "FP&INT",
                     "PPA-Selectable", "Spec-Oriented", "Digital"});
  for (const auto& c : core::compiler_feature_matrix()) {
    t.add_row({c.name, c.venue, core::TextTable::yesno(c.end_to_end),
               core::TextTable::yesno(c.fp_and_int),
               core::TextTable::yesno(c.ppa_selectable_subcircuits),
               core::TextTable::yesno(c.spec_oriented_synthesis),
               core::TextTable::yesno(c.digital_cim)});
  }
  t.print(std::cout);

  // Cross-check the SynDCIM row against the implementation itself.
  std::cout << "\nCross-check on the implemented compiler:\n";
  const auto lib = cell::characterize_default_library(tech::make_default_40nm());
  core::SynDcimCompiler compiler(lib);
  core::PerfSpec spec;
  spec.rows = 16;
  spec.cols = 8;
  spec.input_bits = {4};
  spec.weight_bits = {4};
  spec.fp_formats = {num::kFp8};  // FP&INT in one spec
  spec.mac_freq_mhz = 200;
  spec.wupdate_freq_mhz = 200;
  const auto res = compiler.compile(spec);  // end-to-end: spec -> layout
  std::cout << "  end-to-end: spec -> layout ("
            << res.impl.floorplan.gate_rects.size() << " placed cells, DRC "
            << (res.impl.drc.clean() ? "clean" : "DIRTY") << ", LVS "
            << (res.impl.lvs.clean() ? "clean" : "DIRTY") << ")\n";
  std::cout << "  FP&INT: macro supports INT4 and "
            << spec.fp_formats[0].name() << "\n";
  // PPA-selectable subcircuits + spec-oriented synthesis: the search
  // explored multiple subcircuit styles and returned a Pareto set.
  int styles = 0;
  bool seen[3] = {false, false, false};
  for (const auto& p : res.search.explored) {
    const int m = static_cast<int>(p.cfg.mux);
    if (!seen[m]) {
      seen[m] = true;
      ++styles;
    }
  }
  std::cout << "  PPA-selectable subcircuits: " << styles
            << " mux styles explored, " << res.search.explored.size()
            << " design points\n";
  std::cout << "  spec-oriented synthesis: " << res.search.pareto.size()
            << " Pareto designs meeting " << spec.mac_freq_mhz << " MHz\n";
  return 0;
}

// DSE sweep performance: parallel work-stealing sweep + memoized
// evaluation cache vs. the sequential seed path (one MsoSearcher run per
// spec against a shared SCL — exactly what the repo did before src/dse).
//
// Three legs over the same 12-point spec grid (freq x MCR x preference):
//   1. sequential   — baseline `MsoSearcher::search` per spec
//   2. cold sweep   — run_sweep, threads=N, empty cache (persisted after)
//   3. warm sweep   — run_sweep, threads=N, cache loaded from disk
//
// Prints wall clock, speedups and cache hit rates; exits nonzero if the
// threads+cache path is not at least 2x the sequential baseline or the
// warm run reports no cache hits.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cell/characterize.hpp"
#include "core/report.hpp"
#include "core/searcher.hpp"
#include "dse/sweep.hpp"
#include "obs/obs.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

std::vector<core::PerfSpec> make_grid() {
  dse::SweepGrid grid;
  grid.base.rows = 64;
  grid.base.cols = 64;
  grid.base.input_bits = {4, 8};
  grid.base.weight_bits = {4, 8};
  grid.base.vdd = 0.9;
  grid.mac_freqs_mhz = {250.0, 350.0, 450.0};
  grid.mcrs = {1, 2};
  grid.prefs = {{1.0, 1.0, 0.0}, {2.0, 0.5, 0.0}};
  return grid.expand();
}

}  // namespace

int main(int argc, char** argv) {
  // Optional per-stage breakdowns: `--trace FILE` dumps a Chrome
  // trace-event JSON of the whole benchmark (all three legs), and
  // `--metrics FILE` dumps the metrics registry (cache/pool counters,
  // queue-depth histogram). Either flag enables instrumentation, so the
  // default run still measures the uninstrumented hot path.
  std::string trace_path, metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (a == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::cerr << "usage: perf_dse_sweep [--trace FILE] [--metrics FILE]\n";
      return 2;
    }
  }
  if (!trace_path.empty() || !metrics_path.empty()) {
    obs::set_enabled(true);
    obs::tracer().set_thread_name("main");
  }

  const auto lib =
      cell::characterize_default_library(tech::make_default_40nm());
  const std::vector<core::PerfSpec> specs = make_grid();
  const int threads = std::max(2, dse::WorkStealingPool::default_threads());
  const std::string cache_file = "perf_dse_sweep.cache.json";
  std::remove(cache_file.c_str());

  std::cerr << "grid: " << specs.size() << " specs, threads=" << threads
            << "\n";

  // Leg 1: the sequential seed path.
  const auto t_seq = std::chrono::steady_clock::now();
  std::size_t seq_points = 0;
  {
    core::SubcircuitLibrary scl(lib);
    core::MsoSearcher searcher(scl);
    for (const core::PerfSpec& spec : specs) {
      seq_points += searcher.search(spec).explored.size();
    }
  }
  const double sec_seq = seconds_since(t_seq);

  // Leg 2: parallel sweep, cold cache, persisted to disk.
  dse::SweepOptions opt;
  opt.threads = threads;
  opt.use_cache = true;
  opt.cache_path = cache_file;
  const auto t_cold = std::chrono::steady_clock::now();
  const dse::SweepReport cold = dse::run_sweep(lib, specs, opt);
  const double sec_cold = seconds_since(t_cold);

  // Leg 3: identical sweep, cache warm from disk.
  const auto t_warm = std::chrono::steady_clock::now();
  const dse::SweepReport warm = dse::run_sweep(lib, specs, opt);
  const double sec_warm = seconds_since(t_warm);
  std::remove(cache_file.c_str());

  core::TextTable t({"leg", "wall_s", "speedup", "cache_hits",
                     "cache_misses", "hit_rate_pct", "stolen"});
  t.add_row({"sequential", core::TextTable::num(sec_seq, 2), "1.00", "-",
             "-", "-", "-"});
  t.add_row({"cold threads+cache", core::TextTable::num(sec_cold, 2),
             core::TextTable::num(sec_seq / sec_cold, 2),
             std::to_string(cold.cache.hits),
             std::to_string(cold.cache.misses),
             core::TextTable::num(100.0 * cold.cache.hit_rate(), 1),
             std::to_string(cold.pool.stolen)});
  t.add_row({"warm threads+cache", core::TextTable::num(sec_warm, 2),
             core::TextTable::num(sec_seq / sec_warm, 2),
             std::to_string(warm.cache.hits),
             std::to_string(warm.cache.misses),
             core::TextTable::num(100.0 * warm.cache.hit_rate(), 1),
             std::to_string(warm.pool.stolen)});
  t.print(std::cout);

  std::cout << "explored points: sequential " << seq_points << ", cold ";
  std::size_t cold_points = 0, warm_points = 0;
  for (const auto& sr : cold.per_spec) cold_points += sr.result.explored.size();
  for (const auto& sr : warm.per_spec) warm_points += sr.result.explored.size();
  std::cout << cold_points << ", warm " << warm_points << "\n";
  std::cout << "warm cache: " << warm.cache.loaded << " entries loaded from "
            << "disk, " << warm.cache.miss_eval_ms
            << " ms spent in miss evaluations\n";

  const double best_speedup = sec_seq / std::min(sec_cold, sec_warm);
  const bool ok = best_speedup >= 2.0 && warm.cache.hits > 0;
  std::cout << (ok ? "PASS" : "FAIL") << ": threads+cache speedup "
            << core::TextTable::num(best_speedup, 2) << "x (>= 2x required), "
            << warm.cache.hits << " warm hits (nonzero required)\n";

  if (!trace_path.empty()) {
    if (obs::tracer().save(trace_path)) {
      std::cerr << "wrote " << trace_path << " ("
                << obs::tracer().event_count() << " spans)\n";
    } else {
      std::cerr << "error: cannot write " << trace_path << "\n";
    }
  }
  if (!metrics_path.empty()) {
    if (obs::metrics().save(metrics_path)) {
      std::cerr << "wrote " << metrics_path << "\n";
    } else {
      std::cerr << "error: cannot write " << metrics_path << "\n";
    }
  }
  return ok ? 0 : 1;
}

// Reproduces Table II: the SynDCIM-generated test macro measured under the
// paper's conditions (INT4, 12.5% input density, 50% weight density, max
// voltage) against state-of-the-art DCIM silicon.
//
// SOTA rows carry the values the paper reports (already scaled to 40nm /
// 4Kb / 1b-1b with Table II's footnote rules, which src/tech/scaling.*
// implements); our row is measured on the simulated substrate. Absolute
// TOPS/W of the RC-model substrate is conservative versus silicon — the
// comparison column normalizes each design to our measured macro so the
// *relative* positioning is the reproduced quantity.
#include <iostream>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "tech/scaling.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

int main() {
  const auto lib = cell::characterize_default_library(tech::make_default_40nm());
  core::SynDcimCompiler compiler(lib);

  core::PerfSpec spec;
  spec.rows = 64;
  spec.cols = 64;
  spec.mcr = 2;
  spec.input_bits = {1, 2, 4, 8};
  spec.weight_bits = {4, 8};
  spec.fp_formats = {num::kFp8};
  spec.mac_freq_mhz = 300.0;
  spec.wupdate_freq_mhz = 300.0;

  std::cout << "=== Table II: test macro vs state-of-the-art DCIM ===\n\n";
  const auto res = compiler.compile(spec);

  // Measured at maximum voltage and achieved frequency, paper workload.
  core::PerfSpec vmax = spec;
  vmax.vdd = 1.2;
  vmax.mac_freq_mhz = 5000.0;  // measure at fmax
  vmax.timing_margin = 0.0;
  core::Workload wl;
  wl.input_density = 0.125;
  wl.weight_density = 0.5;
  wl.input_bits = 4;
  wl.weight_bits = 4;
  wl.n_macs = 6;
  const auto impl = compiler.implement(res.selected.cfg, vmax, wl);

  const double array_kb = 64.0 * 64.0 / 1024.0;  // compute array, 4Kb
  const double tops_ref =
      tech::scaling::tops_to_reference(impl.tops_1b, array_kb, 1, 1);
  const double tops_w = impl.tops_per_w();
  const double tops_mm2 = impl.tops_per_mm2();

  std::cout << "measured (this reproduction, 40nm model, 1.2 V, INT4 @ "
            << "12.5%/50% density):\n";
  std::cout << "  fmax        = " << core::TextTable::num(impl.fmax_mhz, 0)
            << " MHz   (paper chip: 1100 MHz)\n";
  std::cout << "  macro area  = "
            << core::TextTable::num(impl.macro_area_mm2, 4)
            << " mm^2 (paper chip: 0.112 mm^2)\n";
  std::cout << "  TOPS (1b)   = " << core::TextTable::num(tops_ref, 2)
            << "      (paper chip: 9.0)\n";
  std::cout << "  TOPS/mm^2   = " << core::TextTable::num(tops_mm2, 1)
            << "     (paper chip: 80.5)\n";
  std::cout << "  TOPS/W      = " << core::TextTable::num(tops_w, 1)
            << "     (paper chip: 1921)\n\n";

  // Paper-reported, pre-scaled SOTA rows (Table II as published).
  struct Row {
    const char* name;
    const char* node;
    const char* array;
    const char* cell;
    double tops, tops_mm2, tops_w;
    const char* mac_write;
  };
  const Row sota[] = {
      {"ISSCC'22", "5nm", "64Kb", "12T", 2.9, 104.0, 842.0, "yes"},
      {"ISSCC'23", "4nm", "54Kb", "8T", 4.1, 64.3, 979.0, "yes"},
      {"ISSCC'24", "3nm", "60.75Kb", "6T", 8.2, 98.0, 1090.0, "yes"},
      {"TCAS-I'24", "55nm", "4Kb", "6T", 0.8, 22.67, 2848.0, "no"},
  };
  const double paper_chip_tops = 9.0, paper_chip_mm2 = 80.5,
               paper_chip_w = 1921.0;

  core::TextTable t({"design", "node", "array", "cell", "TOPS(1)",
                     "TOPS/mm2(2)", "TOPS/W(3)", "MAC-write",
                     "TOPS/W rel. to SynDCIM"});
  for (const Row& r : sota) {
    t.add_row({r.name, r.node, r.array, r.cell,
               core::TextTable::num(r.tops, 1),
               core::TextTable::num(r.tops_mm2, 1),
               core::TextTable::num(r.tops_w, 0), r.mac_write,
               core::TextTable::num(r.tops_w / paper_chip_w, 2) + "x"});
  }
  t.add_row({"SynDCIM (paper chip)", "40nm", "4Kb", "6T",
             core::TextTable::num(paper_chip_tops, 1),
             core::TextTable::num(paper_chip_mm2, 1),
             core::TextTable::num(paper_chip_w, 0), "yes", "1.00x"});
  t.add_row({"SynDCIM (this repro)", "40nm", "4Kb", "6T",
             core::TextTable::num(tops_ref, 1),
             core::TextTable::num(tops_mm2, 1),
             core::TextTable::num(tops_w, 0), "yes",
             core::TextTable::num(tops_w / tops_w, 2) + "x"});
  t.print(std::cout);

  std::cout << "\n(1) scaled to 4Kb array, 1b x 1b\n"
            << "(2) scaled to 40nm, 80% area-efficiency gain per node\n"
            << "(3) scaled to 40nm, 30% energy-efficiency gain per node\n";

  // Demonstrate the scaling rules on a worked example: the ISSCC'22 5nm
  // figure re-expressed at 40nm by our implementation of the footnotes.
  std::cout << "\nscaling-rule check (5nm -> 40nm, "
            << tech::scaling::node_steps(5, 40) << " node steps): area x"
            << core::TextTable::num(
                   tech::scaling::area_efficiency_factor(5, 40), 4)
            << ", energy x"
            << core::TextTable::num(
                   tech::scaling::energy_efficiency_factor(5, 40), 4)
            << "\n";

  // MAC-write: demonstrate simultaneous MAC + weight update on the second
  // bank (the feature row in the table).
  std::cout << "\nMAC-write capability: bank 0 computes while bank 1 is "
               "written (verified in tests/macro_test.cpp)\n";
  return 0;
}

// Extension experiment: process-variation robustness of generated macros
// (the intro's motivation for digital CIM — "notable scalability and
// robustness against process, voltage, and temperature variations").
// Monte-Carlo STA over per-gate delay derates gives the fmax distribution
// and parametric yield at the spec frequency, across supply voltages and
// for two searched design points.
#include <iostream>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "layout/floorplan.hpp"
#include "netlist/flatten.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"
#include "tech/units.hpp"

using namespace syndcim;

int main() {
  const auto lib = cell::characterize_default_library(tech::make_default_40nm());
  core::SynDcimCompiler compiler(lib);

  core::PerfSpec spec;
  spec.rows = 64;
  spec.cols = 32;
  spec.mcr = 2;
  spec.input_bits = {4, 8};
  spec.weight_bits = {4, 8};
  spec.mac_freq_mhz = 350.0;
  spec.wupdate_freq_mhz = 350.0;

  std::cout << "=== Extension: PVT-variation yield of generated macros "
               "===\n\n";
  const auto res = compiler.search(spec);
  if (!res.feasible()) {
    std::cout << "spec infeasible\n";
    return 1;
  }
  const core::PpaPreference perf{0.1, 0.1, 1.0};
  std::vector<core::DesignPoint> picks = {res.best(perf)};
  std::vector<const char*> names = {"perf-leaning"};
  for (const auto& p : res.pareto) {
    if (p.cfg.mux != picks[0].cfg.mux) {  // a structurally different pick
      picks.push_back(p);
      names.push_back("alternate mux style");
      break;
    }
  }

  for (std::size_t i = 0; i < picks.size(); ++i) {
    const auto md = rtlgen::gen_macro(picks[i].cfg);
    const auto flat = netlist::flatten(md.design, md.top);
    const auto fp = layout::sdp_place(flat, lib, picks[i].cfg);
    const auto wire = layout::extract_wire_model(flat, fp, lib.node());
    sta::StaEngine eng(flat, lib);

    std::cout << "-- " << names[i] << ": " << picks[i].label << " --\n";
    core::TextTable t({"VDD_V", "nominal fmax", "mean fmax", "sigma",
                       "yield@spec", "yield@0.9*spec"});
    for (const double vdd : {0.8, 0.9, 1.0, 1.1}) {
      sta::StaOptions opt;
      opt.vdd = vdd;
      opt.wire = wire;
      opt.static_inputs = md.static_control_ports();
      opt.clock_period_ps = units::period_ps_from_mhz(spec.mac_freq_mhz);
      const auto nom = eng.analyze(opt);
      // 6% local sigma + 4% global corner spread.
      const auto var = eng.analyze_variation(opt, 0.06, 0.04, 60);
      t.add_row({core::TextTable::num(vdd, 1),
                 core::TextTable::num(nom.fmax_mhz, 0),
                 core::TextTable::num(var.mean_fmax_mhz, 0),
                 core::TextTable::num(var.sigma_fmax_mhz, 1),
                 core::TextTable::num(100 * var.yield_at(spec.mac_freq_mhz),
                                      0) +
                     "%",
                 core::TextTable::num(
                     100 * var.yield_at(0.9 * spec.mac_freq_mhz), 0) +
                     "%"});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(digital CIM's voltage headroom converts directly into "
               "parametric yield — the shmoo's diagonal under variation)\n";
  return 0;
}

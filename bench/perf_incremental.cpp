// Incremental-compile performance: the content-addressed subcircuit
// artifact store vs. the cold path on a one-knob edit sequence.
//
// The workload models a user iterating on a macro: compile a base
// configuration, rebuild it untouched, re-spin voltage and frequency,
// widen the array, and bounce back — eight implement() calls where only
// one knob moves at a time. Two legs run the identical sequence:
//
//   1. cold — every artifact tier disabled; each call re-runs the full
//      rtlgen -> map -> lint -> floorplan -> route -> sta -> power flow
//   2. warm — shared ArtifactStore; unchanged stages splice cached
//      artifacts (results are byte-identical, see incremental_test)
//
// Prints per-leg wall clock, stage run/skip counts and the speedup;
// `--json FILE` dumps the numbers plus per-tier artifact-store stats.
// Exits nonzero if the warm leg is not at least 2x faster or fewer than
// half of its stage executions were skipped.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "core/stage.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

struct Step {
  const char* what;
  rtlgen::MacroConfig cfg;
  core::PerfSpec spec;
};

std::vector<Step> edit_sequence() {
  rtlgen::MacroConfig base;
  base.rows = 32;
  base.cols = 32;
  base.mcr = 2;
  base.input_bits = {4, 8};
  base.weight_bits = {4, 8};

  core::PerfSpec spec;
  spec.mac_freq_mhz = 300.0;
  core::PerfSpec vdd = spec;
  vdd.vdd = spec.vdd * 0.9;
  core::PerfSpec freq = spec;
  freq.mac_freq_mhz = 400.0;
  rtlgen::MacroConfig wide = base;
  wide.cols = 64;

  return {{"base", base, spec},         {"rebuild", base, spec},
          {"vdd-respin", base, vdd},    {"freq-respin", base, freq},
          {"widen-cols", wide, spec},   {"back-to-base", base, spec},
          {"wide-again", wide, spec},   {"vdd-again", base, vdd}};
}

struct LegResult {
  double wall_s = 0.0;
  std::size_t runs = 0;
  std::size_t skips = 0;
};

LegResult run_leg(const cell::Library& lib, const std::vector<Step>& steps,
                  bool artifacts,
                  std::vector<core::ArtifactTierStats>* stats_out) {
  core::SynDcimCompiler compiler(lib);
  compiler.scl().artifacts().set_enabled(artifacts);
  LegResult leg;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Step& s : steps) {
    const core::Implementation impl =
        compiler.implement(s.cfg, s.spec);
    for (const core::StageRecord& r : impl.stages) {
      (r.skipped ? leg.skips : leg.runs) += 1;
    }
  }
  leg.wall_s = seconds_since(t0);
  if (stats_out != nullptr) *stats_out = compiler.scl().artifacts().stats();
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: perf_incremental [--json FILE]\n";
      return 2;
    }
  }

  const auto lib =
      cell::characterize_default_library(tech::make_default_40nm());
  const std::vector<Step> steps = edit_sequence();

  const LegResult cold = run_leg(lib, steps, /*artifacts=*/false, nullptr);
  std::vector<core::ArtifactTierStats> tiers;
  const LegResult warm = run_leg(lib, steps, /*artifacts=*/true, &tiers);

  const double speedup =
      warm.wall_s > 0.0 ? cold.wall_s / warm.wall_s : 0.0;
  const std::size_t warm_total = warm.runs + warm.skips;
  const double skip_frac =
      warm_total > 0
          ? static_cast<double>(warm.skips) / static_cast<double>(warm_total)
          : 0.0;

  std::printf("edit sequence: %zu implement() calls, %zu stages each\n",
              steps.size(), warm_total / steps.size());
  std::printf("cold: %7.1f ms  (%zu stage runs, %zu skips)\n",
              cold.wall_s * 1e3, cold.runs, cold.skips);
  std::printf("warm: %7.1f ms  (%zu stage runs, %zu skips, %.0f%% skipped)\n",
              warm.wall_s * 1e3, warm.runs, warm.skips, 100.0 * skip_frac);
  std::printf("speedup: %.2fx\n", speedup);
  for (const core::ArtifactTierStats& t : tiers) {
    if (t.lookups() == 0 && t.entries == 0) continue;
    std::printf("  tier %-10s %4llu hits / %4llu misses, %4zu entries\n",
                t.name.c_str(), static_cast<unsigned long long>(t.hits),
                static_cast<unsigned long long>(t.misses), t.entries);
  }

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\"format\": \"syndcim-perf-incremental\", \"version\": 1,\n"
       << " \"steps\": " << steps.size() << ",\n"
       << " \"cold\": {\"wall_ms\": " << cold.wall_s * 1e3
       << ", \"stage_runs\": " << cold.runs
       << ", \"stage_skips\": " << cold.skips << "},\n"
       << " \"warm\": {\"wall_ms\": " << warm.wall_s * 1e3
       << ", \"stage_runs\": " << warm.runs
       << ", \"stage_skips\": " << warm.skips << "},\n"
       << " \"speedup\": " << speedup
       << ", \"skip_fraction\": " << skip_frac << ",\n"
       << " \"artifact_tiers\": [";
    bool first = true;
    for (const core::ArtifactTierStats& t : tiers) {
      if (!first) os << ", ";
      first = false;
      os << "{\"name\": \"" << t.name << "\", \"hits\": " << t.hits
         << ", \"misses\": " << t.misses << ", \"entries\": " << t.entries
         << "}";
    }
    os << "]}\n";
    std::ofstream f(json_path);
    f << os.str();
    if (!f.good()) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    std::cout << "wrote " << json_path << "\n";
  }

  // Acceptance gates: the incremental path must at least halve the wall
  // time and skip at least half of the warm leg's stage executions.
  if (cold.skips != 0) {
    std::cerr << "FAIL: cold leg skipped stages with tiers disabled\n";
    return 1;
  }
  if (speedup < 2.0) {
    std::cerr << "FAIL: warm speedup " << speedup << "x < 2x\n";
    return 1;
  }
  if (skip_frac < 0.5) {
    std::cerr << "FAIL: warm skip fraction " << skip_frac << " < 0.5\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}

// Ablation A4 (paper Sec. II-B): multiplier/multiplexer circuit styles
// across memory-compute ratios.
//
// Expected shape: the 1T pass gate is smallest but slow and power-hungry
// (degraded level); the OAI22 fused mux-multiplier saves area/wiring but
// does not scale beyond MCR=2; the 2T TG + NOR is the balanced choice.
#include <iostream>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

int main() {
  const auto lib = cell::characterize_default_library(tech::make_default_40nm());
  core::SynDcimCompiler compiler(lib);
  auto& scl = compiler.scl();

  std::cout << "=== Ablation A4: mux/multiplier styles vs MCR ===\n\n";
  core::TextTable t({"mux style", "MCR", "fmax_MHz", "power_uW", "area_um2",
                     "note"});
  for (const int mcr : {1, 2, 4}) {
    for (const auto style :
         {rtlgen::MuxStyle::kPassGate1T, rtlgen::MuxStyle::kTGateNor,
          rtlgen::MuxStyle::kOai22Fused}) {
      core::PerfSpec spec;
      spec.rows = 64;
      spec.cols = 32;
      spec.mcr = mcr;
      spec.input_bits = {4, 8};
      spec.weight_bits = {4, 8};
      spec.mac_freq_mhz = 300.0;
      spec.wupdate_freq_mhz = 300.0;
      auto cfg = spec.base_config();
      cfg.mux = style;
      cfg.ofu.pipeline_regs = 2;
      if (style == rtlgen::MuxStyle::kOai22Fused && mcr > 2) {
        t.add_row({to_string(style), std::to_string(mcr), "-", "-", "-",
                   "not scalable beyond MCR=2 (paper Sec. II-B)"});
        continue;
      }
      const auto ppa = scl.evaluate(cfg, spec);
      t.add_row({to_string(style), std::to_string(mcr),
                 core::TextTable::num(ppa.fmax_mhz, 0),
                 core::TextTable::num(ppa.power_uw, 0),
                 core::TextTable::num(ppa.area_um2, 0), ""});
    }
  }
  t.print(std::cout);
  std::cout << "\n(power/area at 300 MHz, 0.9 V, slice-composed estimate; "
               "storage grows with MCR so area rises across all styles)\n";
  return 0;
}

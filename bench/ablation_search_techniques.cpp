// Ablation A2 (paper Algorithm 1): contribution of each throughput
// technique. Starting from the base architecture of the Fig. 8 spec, the
// techniques are applied cumulatively and the MAC/OFU path requirements
// and PPA are tracked — showing why the heuristic applies them in this
// order and what each one buys.
#include <iostream>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

int main() {
  const auto lib = cell::characterize_default_library(tech::make_default_40nm());
  core::SynDcimCompiler compiler(lib);
  auto& scl = compiler.scl();

  core::PerfSpec spec;
  spec.rows = 64;
  spec.cols = 64;
  spec.mcr = 2;
  spec.input_bits = {4, 8};
  spec.weight_bits = {4, 8};
  spec.mac_freq_mhz = 400.0;
  spec.wupdate_freq_mhz = 400.0;

  std::cout << "=== Ablation A2: Algorithm 1 technique contributions ===\n";
  std::cout << "spec: 64x64 MCR=2 INT4/8 @ " << spec.mac_freq_mhz
            << " MHz, target period "
            << core::TextTable::num(spec.period_ps(), 0) << " ps (margined "
            << core::TextTable::num(spec.period_ps() * 0.9, 0) << ")\n\n";

  struct Step {
    const char* name;
    rtlgen::MacroConfig cfg;
  };
  std::vector<Step> steps;
  rtlgen::MacroConfig cfg = spec.base_config();
  steps.push_back({"base (compressor-lean CSA, full regs)", cfg});
  cfg.tree.fa_fraction = 0.5;
  steps.push_back({"+ tt1 faster adders (fa=0.5)", cfg});
  cfg.tree.fa_fraction = 1.0;
  steps.push_back({"+ tt1 faster adders (fa=1.0)", cfg});
  {
    auto v = cfg;
    v.pipe.retime_tree_cpa = true;
    steps.push_back({"+ tt2 retime CPA into S&A", v});
  }
  cfg.column_split = 2;
  steps.push_back({"+ tt3 column split x2", cfg});
  cfg.ofu.retime_stage1 = true;
  steps.push_back({"+ tt4 retime OFU stage 1", cfg});
  cfg.ofu.pipeline_regs = 1;
  steps.push_back({"+ tt5 OFU pipeline reg x1", cfg});
  cfg.ofu.pipeline_regs = 2;
  steps.push_back({"+ tt5 OFU pipeline reg x2", cfg});

  core::TextTable t({"configuration", "MAC path ps", "OFU path ps",
                     "MAC ok", "OFU ok", "power_uW", "area_um2",
                     "latency_cyc"});
  for (const Step& s : steps) {
    const auto st = scl.timing_status(s.cfg, spec);
    const auto ppa = scl.evaluate(s.cfg, spec);
    t.add_row({s.name, core::TextTable::num(st.mac_period_ps, 0),
               core::TextTable::num(st.ofu_period_ps, 0),
               core::TextTable::yesno(st.mac_ok),
               core::TextTable::yesno(st.ofu_ok),
               core::TextTable::num(ppa.power_uw, 0),
               core::TextTable::num(ppa.area_um2, 0),
               std::to_string(ppa.latency_cycles)});
  }
  t.print(std::cout);

  // Step-3 register fusion at a loose spec: latency drops, power drops.
  std::cout << "\n-- step 3 (register fusion) at a loose 150 MHz spec --\n";
  core::PerfSpec loose = spec;
  loose.mac_freq_mhz = 150.0;
  loose.wupdate_freq_mhz = 150.0;
  rtlgen::MacroConfig reg_cfg = loose.base_config();
  rtlgen::MacroConfig fused = reg_cfg;
  fused.pipe.reg_after_tree = false;
  fused.ofu.input_reg = false;
  core::TextTable t2({"configuration", "feasible", "power_uW",
                      "latency_cyc"});
  for (const auto& [name, c] :
       {std::pair<const char*, rtlgen::MacroConfig>{"fully registered",
                                                    reg_cfg},
        {"fused tree+S&A+OFU", fused}}) {
    const auto ppa = scl.evaluate(c, loose);
    t2.add_row({name,
                core::TextTable::yesno(scl.timing_status(c, loose).all_ok()),
                core::TextTable::num(ppa.power_uw, 0),
                std::to_string(ppa.latency_cycles)});
  }
  t2.print(std::cout);
  return 0;
}

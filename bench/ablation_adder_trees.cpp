// Ablation A1 (paper Sec. III-B): adder-tree topologies. Conventional
// signed-RCA tree vs pure 4-2 compressor CSA vs the mixed compressor/FA
// CSA at several mixes, with and without carry reordering.
//
// Expected shape: the CSA family beats the RCA tree on delay, area and
// energy; more FAs shorten the critical path at an area/energy cost;
// carry reordering buys delay for free.
#include <iostream>
#include <random>

#include "cell/characterize.hpp"
#include "core/report.hpp"
#include "netlist/design.hpp"
#include "netlist/flatten.hpp"
#include "power/power.hpp"
#include "rtlgen/adder_tree.hpp"
#include "sim/gate_sim.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

struct Variant {
  const char* name;
  rtlgen::AdderTreeStyle style;
  double fa_fraction;
  bool reorder;
};

struct Result {
  double delay_ps;
  double area_um2;
  double energy_fj;  // per evaluation at 50% input density
  std::size_t cells;
};

Result measure(const cell::Library& lib, const Variant& v, int rows) {
  rtlgen::AdderTreeConfig cfg;
  cfg.rows = rows;
  cfg.style = v.style;
  cfg.fa_fraction = v.fa_fraction;
  cfg.carry_reorder = v.reorder;
  netlist::Design d;
  d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));
  const auto flat = netlist::flatten(d, "tree");

  Result r{};
  r.cells = flat.gates().size();
  sta::StaEngine sta(flat, lib);
  r.delay_ps = sta.analyze({}).min_period_ps;
  r.area_um2 = power::analyze_area(flat, lib).total_um2;

  // Measured switching energy over random vectors.
  sim::GateSim gs(flat, lib);
  std::mt19937 rng(3);
  for (int t = 0; t < 200; ++t) {
    for (int i = 0; i < rows; ++i) {
      gs.set_input(netlist::bus_name("in", i), static_cast<int>(rng() & 1));
    }
    gs.step();
  }
  const auto act = power::activity_from_sim(flat, lib, gs);
  power::PowerOptions popt;
  popt.freq_mhz = 1000.0;  // uW at 1 GHz == fJ per evaluation
  r.energy_fj = power::analyze_power(flat, lib, act, popt).dynamic_uw();
  return r;
}

}  // namespace

int main() {
  const auto lib = cell::characterize_default_library(tech::make_default_40nm());
  const Variant variants[] = {
      {"signed RCA tree", rtlgen::AdderTreeStyle::kRcaTree, 0.0, false},
      {"compressor CSA (no reorder)", rtlgen::AdderTreeStyle::kCompressor,
       0.0, false},
      {"compressor CSA + reorder", rtlgen::AdderTreeStyle::kCompressor, 0.0,
       true},
      {"mixed CSA fa=0.25", rtlgen::AdderTreeStyle::kMixed, 0.25, true},
      {"mixed CSA fa=0.50", rtlgen::AdderTreeStyle::kMixed, 0.50, true},
      {"mixed CSA fa=0.75", rtlgen::AdderTreeStyle::kMixed, 0.75, true},
      {"mixed CSA fa=1.00 (FA only)", rtlgen::AdderTreeStyle::kMixed, 1.0,
       true},
  };

  for (const int rows : {32, 64, 128}) {
    std::cout << "=== Ablation A1: adder trees, " << rows
              << " partial products ===\n";
    core::TextTable t(
        {"topology", "delay_ps", "cells", "area_um2", "energy_fJ/eval"});
    double rca_delay = 0;
    for (const Variant& v : variants) {
      const Result r = measure(lib, v, rows);
      if (v.style == rtlgen::AdderTreeStyle::kRcaTree) rca_delay = r.delay_ps;
      t.add_row({v.name, core::TextTable::num(r.delay_ps, 0),
                 std::to_string(r.cells), core::TextTable::num(r.area_um2, 0),
                 core::TextTable::num(r.energy_fj, 0)});
    }
    t.print(std::cout);
    const Result csa = measure(
        lib, {"", rtlgen::AdderTreeStyle::kCompressor, 0.0, true}, rows);
    std::cout << "compressor CSA vs signed RCA tree: delay x"
              << core::TextTable::num(csa.delay_ps / rca_delay, 2) << "\n\n";
  }
  return 0;
}

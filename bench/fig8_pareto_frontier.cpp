// Reproduces Fig. 8: the MSO searcher's Pareto frontier for one spec, the
// four selected/implemented designs, and the comparison against the
// template-based baseline compilers.
//
// Paper spec: H=W=64, MCR=2, INT4/8 + FP4/8, MAC & weight-update
// 800 MHz @ 0.9 V. Frequency re-anchoring: our calibrated 40nm substrate
// is ~2x slower than the authors' silicon, so the equivalent constrained
// design point is 400 MHz @ 0.9 V (see EXPERIMENTS.md); the search
// dynamics — base architecture infeasible, tt-techniques required, a
// power/area frontier of feasible designs — are the reproduction target.
#include <iostream>

#include "cell/characterize.hpp"
#include "core/baselines.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

int main() {
  const auto lib = cell::characterize_default_library(tech::make_default_40nm());
  core::SynDcimCompiler compiler(lib);

  core::PerfSpec spec;
  spec.rows = 64;
  spec.cols = 64;
  spec.mcr = 2;
  spec.input_bits = {4, 8};
  spec.weight_bits = {4, 8};
  spec.fp_formats = {num::kFp8};  // FP4 embeds exactly into the FP8 unit
  spec.mac_freq_mhz = 400.0;
  spec.wupdate_freq_mhz = 400.0;
  spec.vdd = 0.9;

  std::cout << "=== Fig. 8: searched and generated Pareto frontier ===\n";
  std::cout << "spec: 64x64, MCR=2, INT4/8 + FP4/8, " << spec.mac_freq_mhz
            << " MHz @ " << spec.vdd << " V\n\n";

  const auto res = compiler.search(spec);
  std::cout << "-- all " << res.explored.size()
            << " explored design points (power vs area cloud) --\n";
  core::TextTable all({"label", "feasible", "fmax_MHz", "power_uW",
                       "area_um2", "TOPS/W", "latency_cyc"});
  for (const auto& p : res.explored) {
    all.add_row({p.label, core::TextTable::yesno(p.feasible),
                 core::TextTable::num(p.ppa.fmax_mhz, 0),
                 core::TextTable::num(p.ppa.power_uw, 0),
                 core::TextTable::num(p.ppa.area_um2, 0),
                 core::TextTable::num(p.ppa.tops_per_w(), 1),
                 std::to_string(p.ppa.latency_cycles)});
  }
  all.print(std::cout);

  std::cout << "\n-- Pareto frontier (feasible, non-dominated) --\n";
  core::TextTable front({"label", "power_uW", "area_um2", "fmax_MHz"});
  for (const auto& p : res.pareto) {
    front.add_row({p.label, core::TextTable::num(p.ppa.power_uw, 0),
                   core::TextTable::num(p.ppa.area_um2, 0),
                   core::TextTable::num(p.ppa.fmax_mhz, 0)});
  }
  front.print(std::cout);

  // Baseline template compilers, evaluated under the same spec.
  std::cout << "\n-- template-compiler baselines (single fixed design each) "
               "--\n";
  core::TextTable base({"compiler", "meets spec", "power_uW", "area_um2",
                        "note"});
  auto add_baseline = [&](const char* name,
                          std::optional<rtlgen::MacroConfig> cfg,
                          const char* note) {
    if (!cfg) {
      base.add_row({name, "-", "-", "-", "outside scope"});
      return;
    }
    const auto ppa = compiler.scl().evaluate(*cfg, spec);
    const bool ok = compiler.scl().timing_status(*cfg, spec).all_ok();
    base.add_row({name, core::TextTable::yesno(ok),
                  core::TextTable::num(ppa.power_uw, 0),
                  core::TextTable::num(ppa.area_um2, 0), note});
  };
  add_baseline("AutoDCIM-style", core::autodcim_style_config(spec),
               "PG mux + RCA tree, INT only");
  add_baseline("ISLPED'23-style", core::islped23_style_config(spec),
               "TG mux + RCA tree, INT only");
  add_baseline("ARCTIC-style", core::arctic_style_config(spec),
               "fixed compressor CSA, INT+FP");
  base.print(std::cout);

  if (!res.feasible()) {
    std::cout << "\nno feasible design — spec too tight for this node\n";
    return 1;
  }

  // Four selected designs implemented to layout (the paper implements four
  // Pareto picks: energy-leaning, area-leaning, balanced, perf-leaning).
  std::cout << "\n-- four selected designs, implemented to layout --\n";
  const core::PpaPreference prefs[4] = {
      {1.0, 0.2, 0.0}, {0.2, 1.0, 0.0}, {1.0, 1.0, 0.0}, {0.5, 0.5, 1.0}};
  const char* names[4] = {"energy-opt", "area-opt", "balanced", "perf-opt"};
  core::TextTable sel({"pick", "label", "post fmax_MHz", "power_uW",
                       "area_mm2", "DRC", "LVS", "timing"});
  for (int i = 0; i < 4; ++i) {
    const auto& p = res.best(prefs[i]);
    core::PerfSpec s = spec;
    s.pref = prefs[i];
    const auto impl = compiler.implement(p.cfg, s);
    sel.add_row({names[i], p.label,
                 core::TextTable::num(impl.fmax_mhz, 0),
                 core::TextTable::num(impl.total_power_uw, 0),
                 core::TextTable::num(impl.macro_area_mm2, 4),
                 impl.drc.clean() ? "clean" : "DIRTY",
                 impl.lvs.clean() ? "clean" : "DIRTY",
                 impl.timing.met() ? "met" : "VIOLATED"});
  }
  sel.print(std::cout);

  std::cout << "\n-- search log --\n";
  for (const auto& l : res.log) std::cout << "  " << l << "\n";
  return 0;
}

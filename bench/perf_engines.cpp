// P1: google-benchmark microbenchmarks of the EDA engines themselves —
// elaboration, flattening, STA, gate-level simulation, placement and the
// MSO search. These bound the compiler's own turnaround time.
#include <benchmark/benchmark.h>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "layout/floorplan.hpp"
#include "netlist/flatten.hpp"
#include "power/power.hpp"
#include "rtlgen/macro.hpp"
#include "sim/macro_tb.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

rtlgen::MacroConfig bench_cfg() {
  core::PerfSpec s;
  s.rows = 64;
  s.cols = 16;
  s.mcr = 2;
  s.input_bits = {4, 8};
  s.weight_bits = {4, 8};
  auto cfg = s.base_config();
  cfg.ofu.pipeline_regs = 2;
  return cfg;
}

const rtlgen::MacroDesign& bench_macro() {
  static const rtlgen::MacroDesign md = rtlgen::gen_macro(bench_cfg());
  return md;
}

const netlist::FlatNetlist& bench_flat() {
  static const netlist::FlatNetlist f =
      netlist::flatten(bench_macro().design, bench_macro().top);
  return f;
}

void BM_Elaborate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtlgen::gen_macro(bench_cfg()));
  }
}
BENCHMARK(BM_Elaborate)->Unit(benchmark::kMillisecond);

void BM_Flatten(benchmark::State& state) {
  const auto& md = bench_macro();
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::flatten(md.design, md.top));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(bench_flat().gates().size()));
}
BENCHMARK(BM_Flatten)->Unit(benchmark::kMillisecond);

void BM_StaAnalyze(benchmark::State& state) {
  const sta::StaEngine eng(bench_flat(), lib());
  sta::StaOptions opt;
  opt.static_inputs = bench_macro().static_control_ports();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.analyze(opt));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(bench_flat().gates().size()));
}
BENCHMARK(BM_StaAnalyze)->Unit(benchmark::kMillisecond);

void BM_GateSimStep(benchmark::State& state) {
  sim::GateSim gs(bench_flat(), lib());
  std::uint64_t x = 1;
  for (auto _ : state) {
    gs.set_input("clr", static_cast<int>(x & 1));
    x = x * 6364136223846793005ull + 1;
    for (int r = 0; r < 8; ++r) {
      gs.set_input_bus("din" + std::to_string(r), x >> (r % 32), 8);
    }
    gs.step();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(bench_flat().gates().size()));
}
BENCHMARK(BM_GateSimStep)->Unit(benchmark::kMillisecond);

void BM_SdpPlace(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        layout::sdp_place(bench_flat(), lib(), bench_cfg()));
  }
}
BENCHMARK(BM_SdpPlace)->Unit(benchmark::kMillisecond);

void BM_ActivityPropagation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        power::propagate_activity(bench_flat(), lib(), {}));
  }
}
BENCHMARK(BM_ActivityPropagation)->Unit(benchmark::kMillisecond);

void BM_MsoSearch(benchmark::State& state) {
  core::PerfSpec s;
  s.rows = 32;
  s.cols = 16;
  s.mcr = 2;
  s.input_bits = {4};
  s.weight_bits = {4};
  s.mac_freq_mhz = 500;
  s.wupdate_freq_mhz = 500;
  for (auto _ : state) {
    // Fresh SCL each iteration: measures a cold search, cache and all.
    core::SubcircuitLibrary scl(lib());
    core::MsoSearcher searcher(scl);
    benchmark::DoNotOptimize(searcher.search(s));
  }
}
BENCHMARK(BM_MsoSearch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Reproduces Fig. 7: post-layout energy efficiency of generated macros
// across precisions (INT4, INT8, FP8, BF16) and dimensions (32x32 ..
// 256x256).
//
// Expected shape (paper Sec. IV-A): efficiency improves with array size
// (peripheral overhead amortizes, the CSA gets more efficient per bit);
// the FP formats pay an alignment-unit + wider-OFU overhead on the order
// of 10-20% over the comparable INT formats.
#include <iostream>
#include <map>
#include <string>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "netlist/flatten.hpp"
#include "num/alignment.hpp"
#include "num/fp_format.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

core::PerfSpec make_spec(int dim) {
  core::PerfSpec s;
  s.rows = dim;
  s.cols = dim;
  s.mcr = 2;
  s.mac_freq_mhz = 300.0;
  s.wupdate_freq_mhz = 300.0;
  return s;
}

rtlgen::MacroConfig fixed_config(core::PerfSpec& s) {
  // One fixed, timing-safe architecture across all cells of the figure so
  // the precision/dimension comparison is apples-to-apples.
  rtlgen::MacroConfig cfg = s.base_config();
  cfg.tree.fa_fraction = 0.25;
  cfg.ofu.pipeline_regs = 8;  // clamped to n_stages inside the generator
  return cfg;
}

struct Cell {
  double tops = 0.0;
  double tops_per_w = 0.0;
  double power_uw = 0.0;
};

Cell measure_int(core::SynDcimCompiler& compiler, int dim, int bits) {
  // One macro per precision so the FP-vs-INT comparison isolates the
  // alignment/OFU overhead (a mixed-precision macro carries the widest
  // format's hardware regardless of the workload).
  core::PerfSpec s = make_spec(dim);
  s.input_bits = {bits};
  s.weight_bits = {bits};
  auto cfg = fixed_config(s);
  core::Workload wl;
  wl.input_bits = bits;
  wl.weight_bits = bits;
  wl.n_macs = 4;
  const auto impl = compiler.implement(cfg, s, wl);
  Cell c;
  c.power_uw = impl.total_power_uw;
  const double f = std::min(s.mac_freq_mhz, impl.fmax_mhz) * 1e6;
  const double ops_per_s = 2.0 * dim * (dim / bits) * f / bits;
  c.tops = ops_per_s * 1e-12;
  c.tops_per_w = c.tops / (c.power_uw * 1e-6);
  return c;
}

Cell measure_fp(core::SynDcimCompiler& compiler, int dim, num::FpFormat fmt) {
  core::PerfSpec s = make_spec(dim);
  s.input_bits = {4};
  s.weight_bits = {4};
  s.fp_formats = {fmt};
  auto cfg = fixed_config(s);
  core::Workload wl;
  wl.n_macs = 4;
  const auto impl = compiler.implement(cfg, s, wl);

  // FP workload power: drive real FP MACs for measured activity.
  Cell c;
  c.power_uw = impl.total_power_uw;
  const int ib = num::aligned_mant_bits(fmt, s.fp_guard_bits);
  const int wp = cfg.max_weight_bits();
  const double f = std::min(s.mac_freq_mhz, impl.fmax_mhz) * 1e6;
  const double ops_per_s = 2.0 * dim * (dim / wp) * f / ib;
  c.tops = ops_per_s * 1e-12;
  c.tops_per_w = c.tops / (c.power_uw * 1e-6);
  return c;
}

}  // namespace

int main() {
  const auto lib = cell::characterize_default_library(tech::make_default_40nm());
  core::SynDcimCompiler compiler(lib);
  std::cout << "=== Fig. 7: post-layout energy efficiency vs precision and "
               "dimension ===\n\n";

  const std::vector<int> dims = {32, 64, 128, 256};
  std::map<std::string, std::map<int, Cell>> grid;
  for (const int dim : dims) {
    std::cerr << "[fig7] measuring " << dim << "x" << dim << "...\n";
    grid["INT4"][dim] = measure_int(compiler, dim, 4);
    grid["INT8"][dim] = measure_int(compiler, dim, 8);
    grid["FP8"][dim] = measure_fp(compiler, dim, num::kFp8);
    grid["BF16"][dim] = measure_fp(compiler, dim, num::kBf16);
  }

  core::TextTable t({"precision", "dim", "power_uW", "TOPS", "TOPS/W"});
  for (const char* prec : {"INT4", "INT8", "FP8", "BF16"}) {
    for (const int dim : dims) {
      const Cell& c = grid[prec][dim];
      t.add_row({prec, std::to_string(dim) + "x" + std::to_string(dim),
                 core::TextTable::num(c.power_uw, 0),
                 core::TextTable::num(c.tops, 3),
                 core::TextTable::num(c.tops_per_w, 2)});
    }
  }
  t.print(std::cout);

  std::cout << "\nShape checks (paper: efficiency rises with dimension; FP "
               "pays an alignment/OFU overhead):\n";
  for (const char* prec : {"INT4", "INT8", "FP8", "BF16"}) {
    const double lo = grid[prec][dims.front()].tops_per_w;
    const double hi = grid[prec][dims.back()].tops_per_w;
    std::cout << "  " << prec << ": TOPS/W " << dims.front() << "->"
              << dims.back() << " grows x"
              << core::TextTable::num(hi / lo, 2) << "\n";
  }
  for (const int dim : dims) {
    const double fp8_over_int4 =
        grid["FP8"][dim].power_uw / grid["INT4"][dim].power_uw - 1.0;
    const double bf16_over_int8 =
        grid["BF16"][dim].power_uw / grid["INT8"][dim].power_uw - 1.0;
    std::cout << "  " << dim << "x" << dim << ": FP8 power vs INT4 macro "
              << core::TextTable::num(100 * fp8_over_int4, 1)
              << "%  |  BF16 vs INT8 macro "
              << core::TextTable::num(100 * bf16_over_int8, 1) << "%\n";
  }
  return 0;
}

// Reproduces Fig. 9: shmoo plot of the SynDCIM-generated test macro across
// supply voltage and clock frequency.
//
// The fabricated chip is the balanced Pareto pick of the 64x64 / MCR=2 /
// INT1-8 + FP4/8 spec. A (V, f) point "passes" when the post-layout STA
// closes at that voltage and frequency AND the gate-level macro computes a
// spot-check MAC correctly. Paper anchors: ~1.1 GHz @ 1.2 V, ~300 MHz @
// 0.7 V (our calibrated substrate reproduces the V-scaling shape at ~0.6x
// the absolute frequency — see EXPERIMENTS.md).
#include <iostream>
#include <random>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "layout/floorplan.hpp"
#include "netlist/flatten.hpp"
#include "sim/macro_tb.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"
#include "tech/units.hpp"

using namespace syndcim;

int main() {
  const auto lib = cell::characterize_default_library(tech::make_default_40nm());
  core::SynDcimCompiler compiler(lib);

  core::PerfSpec spec;
  spec.rows = 64;
  spec.cols = 64;
  spec.mcr = 2;
  spec.input_bits = {1, 2, 4, 8};
  spec.weight_bits = {4, 8};
  spec.fp_formats = {num::kFp8};
  spec.mac_freq_mhz = 300.0;  // balanced operating point
  spec.wupdate_freq_mhz = 300.0;

  std::cout << "=== Fig. 9: shmoo plot of the generated test macro ===\n\n";
  const auto res = compiler.compile(spec);
  const auto& cfg = res.selected.cfg;
  std::cout << "chip design: " << res.selected.label << "\n\n";

  // Functional spot check (the silicon test): random MAC on the
  // gate-level netlist against the behavioral model.
  {
    sim::DcimMacroModel model(cfg);
    sim::MacroTestbench tb(res.impl.macro, lib);
    std::mt19937 rng(7);
    std::vector<std::vector<std::int64_t>> w(16);
    for (auto& g : w) {
      g.resize(64);
      for (auto& v : g) v = static_cast<std::int64_t>(rng() % 16) - 8;
    }
    model.load_weights_int(0, 4, w);
    tb.preload_weights(model);
    std::vector<std::int64_t> in(64);
    for (auto& v : in) v = static_cast<std::int64_t>(rng() % 16) - 8;
    const bool ok = tb.run_mac_int(in, 4, 4, 0) == model.mac_int(in, 4, 4, 0);
    std::cout << "functional spot check (INT4 MAC): "
              << (ok ? "PASS" : "FAIL") << "\n\n";
  }

  // Post-layout STA across the (V, f) grid.
  const netlist::FlatNetlist flat =
      netlist::flatten(res.impl.macro.design, res.impl.macro.top);
  const auto fp = layout::sdp_place(flat, lib, cfg);
  const auto wire = layout::extract_wire_model(flat, fp, lib.node());
  sta::StaEngine sta(flat, lib);

  const std::vector<double> volts = {0.6,  0.65, 0.7,  0.75, 0.8, 0.85,
                                     0.9,  0.95, 1.0,  1.05, 1.1, 1.15,
                                     1.2};
  const std::vector<double> freqs = {100, 150, 200, 250, 300, 350, 400,
                                     450, 500, 550, 600, 650, 700, 800,
                                     900, 1000, 1100};

  std::cout << "shmoo (columns: MHz; '#' pass, '.' fail):\n      ";
  for (const double f : freqs) std::cout << (f >= 1000 ? " " : "  ") << f;
  std::cout << "\n";
  core::TextTable fmax_t({"VDD_V", "fmax_MHz"});
  for (auto v = volts.rbegin(); v != volts.rend(); ++v) {
    std::cout << core::TextTable::num(*v, 2) << "  ";
    double fmax = 0.0;
    for (const double f : freqs) {
      sta::StaOptions opt;
      opt.clock_period_ps = units::period_ps_from_mhz(f);
      opt.write_period_ps = opt.clock_period_ps;
      opt.vdd = *v;
      opt.wire = wire;
      opt.static_inputs = res.impl.macro.static_control_ports();
      const auto rep = sta.analyze(opt);
      const bool pass = rep.met();
      if (pass) fmax = rep.fmax_mhz;
      std::cout << (f >= 1000 ? "   " : "   ") << (pass ? '#' : '.');
    }
    std::cout << "\n";
    fmax_t.add_row({core::TextTable::num(*v, 2),
                    core::TextTable::num(fmax, 0)});
  }
  std::cout << "\nfmax vs VDD:\n";
  fmax_t.print(std::cout);

  // Anchor ratios (the paper's 1.1 GHz @ 1.2 V vs 300 MHz @ 0.7 V).
  sta::StaOptions o12, o07;
  o12.vdd = 1.2;
  o07.vdd = 0.7;
  o12.wire = o07.wire = wire;
  o12.static_inputs = o07.static_inputs =
      res.impl.macro.static_control_ports();
  const double f12 = sta.analyze(o12).fmax_mhz;
  const double f07 = sta.analyze(o07).fmax_mhz;
  std::cout << "\nfmax(1.2V)=" << core::TextTable::num(f12, 0)
            << " MHz, fmax(0.7V)=" << core::TextTable::num(f07, 0)
            << " MHz, ratio=" << core::TextTable::num(f12 / f07, 2)
            << " (paper: 1100/300 = 3.67)\n";
  return 0;
}

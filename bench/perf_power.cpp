// Probabilistic activity-propagation throughput: the SoA fixpoint kernel
// (klass-partitioned gates, CSR comb arcs, memoized truth masks) vs the
// retained per-gate scalar arm, single-threaded, on a generated DCIM
// macro (32x32, mcr 2, 4/8b precisions — ~12.8k gates).
//
// Both arms run the same 8-pass Gauss-Seidel fixpoint and must produce
// bit-identical ActivityModels; the bench cross-checks every net's
// p_one/toggle_rate before timing and exits nonzero on any mismatch.
// Throughput is full propagate_activity() calls per wall second.
// `--json FILE` dumps the numbers and `--metrics FILE` writes the obs
// metrics registry. Exits nonzero if the SoA kernel is not at least 4x
// the scalar throughput.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cell/characterize.hpp"
#include "netlist/flatten.hpp"
#include "obs/obs.hpp"
#include "power/activity.hpp"
#include "rtlgen/macro.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

rtlgen::MacroConfig bench_cfg() {
  rtlgen::MacroConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.mcr = 2;
  cfg.input_bits = {4, 8};
  cfg.weight_bits = {4, 8};
  cfg.fp_formats = {};
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, metrics_path;
  int iters = 40;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (a == "--iters" && i + 1 < argc) {
      try {
        iters = std::stoi(argv[++i]);
      } catch (...) {
        iters = 0;
      }
      if (iters < 4) {
        std::cerr << "error: --iters wants an integer >= 4\n";
        return 2;
      }
    } else {
      std::cerr << "usage: perf_power [--iters N] [--json FILE]"
                   " [--metrics FILE]\n";
      return 2;
    }
  }

  const auto lib =
      cell::characterize_default_library(tech::make_default_40nm());
  const auto md = rtlgen::gen_macro(bench_cfg());
  const auto flat = netlist::flatten(md.design, md.top);
  std::printf("macro netlist: %zu gates, %u nets\n", flat.gates().size(),
              flat.net_count());

  power::ActivitySpec spec;
  spec.input_p1 = 0.37;
  spec.input_toggle = 0.21;

  // --- equivalence self-check (untimed) --------------------------------
  {
    const auto soa = power::propagate_activity(
        flat, lib, spec, power::ActivityEngine::kSoa);
    const auto scalar = power::propagate_activity(
        flat, lib, spec, power::ActivityEngine::kScalar);
    for (std::uint32_t n = 0; n < flat.net_count(); ++n) {
      if (soa.p_one[n] != scalar.p_one[n] ||
          soa.toggle_rate[n] != scalar.toggle_rate[n]) {
        std::cerr << "FAIL: SoA and scalar activity differ on net " << n
                  << " (" << flat.net_name(n) << ")\n";
        return 1;
      }
    }
    std::printf("equivalence self-check passed (%u nets)\n",
                flat.net_count());
  }

  // --- timed arms ------------------------------------------------------
  auto run_arm = [&](power::ActivityEngine e) {
    const auto t0 = std::chrono::steady_clock::now();
    double sink = 0.0;
    for (int i = 0; i < iters; ++i) {
      const auto am = power::propagate_activity(flat, lib, spec, e);
      sink += am.toggle_rate.empty() ? 0.0 : am.toggle_rate.back();
    }
    const double wall = seconds_since(t0);
    if (sink < 0.0) std::abort();  // keep the loop observable
    return wall;
  };

  const double scalar_s = run_arm(power::ActivityEngine::kScalar);
  const double soa_s = run_arm(power::ActivityEngine::kSoa);
  const double scalar_rate = iters / scalar_s;
  const double soa_rate = iters / soa_s;
  const double speedup = soa_rate / scalar_rate;

  std::printf("scalar: %8.1f ms, %8.1f propagations/s\n", scalar_s * 1e3,
              scalar_rate);
  std::printf("soa   : %8.1f ms, %8.1f propagations/s (%.1fx scalar)\n",
              soa_s * 1e3, soa_rate, speedup);

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\"format\": \"syndcim-perf-power\", \"version\": 1,\n"
       << " \"gates\": " << flat.gates().size()
       << ", \"nets\": " << flat.net_count()
       << ", \"iters\": " << iters << ",\n"
       << " \"scalar\": {\"wall_ms\": " << scalar_s * 1e3
       << ", \"propagations_per_s\": " << scalar_rate << "},\n"
       << " \"soa\": {\"wall_ms\": " << soa_s * 1e3
       << ", \"propagations_per_s\": " << soa_rate
       << ", \"speedup\": " << speedup << "}}\n";
    std::ofstream f(json_path);
    f << os.str();
    if (!f.good()) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream f(metrics_path);
    f << obs::metrics().to_json();
    if (!f.good()) {
      std::cerr << "error: cannot write " << metrics_path << "\n";
      return 2;
    }
    std::cout << "wrote " << metrics_path << "\n";
  }

  // Acceptance gate: the SoA kernel must buy at least 4x the scalar
  // arm's single-thread propagation throughput.
  if (speedup < 4.0) {
    std::cerr << "FAIL: soa speedup " << speedup << "x < 4x\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}

// Tests of the src/serve subsystem: the wire-protocol JSON, cooperative
// cancellation, single-flight batching, bounded LRU artifact caching,
// and a live in-process daemon driven over real TCP connections —
// mixed-tenant load, cross-request artifact warm hits, deadline
// cancellation, admission-control rejects, graceful drain, and
// byte-identity of a served sweep frontier against the batch path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cell/characterize.hpp"
#include "core/artifact_cache.hpp"
#include "core/cancel.hpp"
#include "core/diag.hpp"
#include "dse/sweep.hpp"
#include "netmap/model.hpp"
#include "netmap/netmap.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/singleflight.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

const cell::Library& test_library() {
  static const cell::Library lib =
      cell::characterize_default_library(tech::make_default_40nm());
  return lib;
}

/// Spec keys shared by the serve and batch sides of the identity tests.
std::map<std::string, std::string> small_sweep_params() {
  return {{"rows", "32"},          {"cols", "32"},
          {"input_bits", "4"},     {"weight_bits", "4"},
          {"sweep_mac_mhz", "320"}, {"sweep_mcr", "1"},
          {"sweep_pref", "balanced"}};
}

std::unique_ptr<serve::Server> start_server(serve::ServerOptions opt = {}) {
  auto server = std::make_unique<serve::Server>(test_library(), opt);
  std::string err;
  EXPECT_TRUE(server->start(&err)) << err;
  return server;
}

serve::ClientResponse call(int port, const std::string& method,
                           const std::map<std::string, std::string>& params,
                           double deadline_ms = 0) {
  serve::Client client;
  std::string err;
  EXPECT_TRUE(client.connect("127.0.0.1", port, &err)) << err;
  serve::ClientResponse resp;
  EXPECT_TRUE(client.call(method, params, deadline_ms, &resp, &err)) << err;
  return resp;
}

std::uint64_t counter_value(const std::string& name) {
  return obs::metrics().counter(name).value();
}

// ---------------------------------------------------------------------------
// Wire JSON
// ---------------------------------------------------------------------------

TEST(ServeJson, ParsesNestedValues) {
  serve::JsonValue v;
  std::string err;
  ASSERT_TRUE(serve::json_parse(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x", "d": true}, "e": null})", &v,
      &err))
      << err;
  ASSERT_TRUE(v.is_object());
  const serve::JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 3u);
  EXPECT_DOUBLE_EQ(a->at(0).as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a->at(1).as_number(), 2.5);
  EXPECT_DOUBLE_EQ(a->at(2).as_number(), -300.0);
  EXPECT_EQ(v.find("b")->find("c")->as_string(), "x");
  EXPECT_TRUE(v.find("b")->find("d")->as_bool());
  EXPECT_TRUE(v.find("e")->is_null());
}

TEST(ServeJson, RejectsMalformedInput) {
  serve::JsonValue v;
  std::string err;
  EXPECT_FALSE(serve::json_parse("{\"a\": }", &v, &err));
  EXPECT_FALSE(serve::json_parse("{\"a\": 1} trailing", &v, &err));
  EXPECT_FALSE(serve::json_parse("\"unterminated", &v, &err));
  EXPECT_FALSE(serve::json_parse("", &v, &err));
}

TEST(ServeJson, EscapeRoundTripsBytes) {
  // The sweep response relies on escape/parse round-tripping the nested
  // frontier JSON byte-for-byte.
  const std::string original =
      "{\n  \"k\": \"v\\\"q\",\t\"u\": \"\xc3\xa9\"\n}\x01";
  const std::string wrapped =
      "\"" + serve::json_escape(original) + "\"";
  serve::JsonValue v;
  std::string err;
  ASSERT_TRUE(serve::json_parse(wrapped, &v, &err)) << err;
  EXPECT_EQ(v.as_string(), original);
}

TEST(ServeProtocol, ParsesAndRejectsRequests) {
  serve::Request req;
  std::string err;
  ASSERT_TRUE(serve::parse_request(
      R"({"id": 7, "method": "sweep", "deadline_ms": 50,)"
      R"( "params": {"rows": 64, "mcr": "2"}})",
      &req, &err))
      << err;
  EXPECT_EQ(req.id, "7");
  EXPECT_EQ(req.method, "sweep");
  EXPECT_DOUBLE_EQ(req.deadline_ms, 50.0);
  const auto kv = serve::params_to_kv(req.params);
  EXPECT_EQ(kv.at("rows"), "64");
  EXPECT_EQ(kv.at("mcr"), "2");

  EXPECT_FALSE(serve::parse_request("not json", &req, &err));
  EXPECT_FALSE(serve::parse_request("{\"id\": 1}", &req, &err));  // no method
  EXPECT_FALSE(serve::parse_request(
      R"({"method": "x", "deadline_ms": -1})", &req, &err));
  serve::Request nested;
  ASSERT_TRUE(serve::parse_request(
      R"({"method": "x", "params": {"a": [1]}})", &nested, &err))
      << err;
  EXPECT_THROW((void)serve::params_to_kv(nested.params),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------------------

TEST(CancelToken, FlagAndDeadline) {
  core::CancelToken tok;
  EXPECT_FALSE(tok.cancelled());
  EXPECT_NO_THROW(tok.check("here"));
  tok.cancel();
  EXPECT_TRUE(tok.cancelled());
  EXPECT_THROW(tok.check("here"), core::CancelledError);
  tok.reset();
  EXPECT_FALSE(tok.cancelled());

  tok.set_deadline_after(std::chrono::milliseconds(10));
  EXPECT_FALSE(tok.cancelled());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(tok.cancelled());
  tok.clear_deadline();
  EXPECT_FALSE(tok.cancelled());
}

// ---------------------------------------------------------------------------
// SingleFlight
// ---------------------------------------------------------------------------

TEST(SingleFlight, CoalescesConcurrentCalls) {
  serve::SingleFlight flight;
  std::atomic<int> executions{0};
  std::atomic<int> started{0};
  constexpr int kCallers = 6;
  std::vector<std::thread> threads;
  std::vector<std::string> results(kCallers);
  std::vector<char> leaders(kCallers, 0);  // not vector<bool>: bit-packed
  for (int i = 0; i < kCallers; ++i) {
    threads.emplace_back([&, i] {
      started.fetch_add(1);
      while (started.load() < kCallers) std::this_thread::yield();
      bool leader = false;
      results[static_cast<std::size_t>(i)] = flight.run(
          "key",
          [&] {
            executions.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            return std::string("payload");
          },
          &leader);
      leaders[static_cast<std::size_t>(i)] = leader;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(executions.load(), 1);
  int leader_count = 0;
  for (int i = 0; i < kCallers; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], "payload");
    leader_count += leaders[static_cast<std::size_t>(i)] ? 1 : 0;
  }
  EXPECT_EQ(leader_count, 1);
}

TEST(SingleFlight, SequentialCallsEachExecute) {
  serve::SingleFlight flight;
  int executions = 0;
  bool leader = false;
  for (int i = 0; i < 3; ++i) {
    const std::string r = flight.run(
        "key",
        [&] {
          ++executions;
          return std::string("r") + std::to_string(executions);
        },
        &leader);
    EXPECT_TRUE(leader);
    EXPECT_EQ(r, "r" + std::to_string(i + 1));
  }
  EXPECT_EQ(executions, 3);
}

TEST(SingleFlight, PropagatesLeaderFailure) {
  serve::SingleFlight flight;
  std::atomic<bool> leader_entered{false};
  std::thread leader([&] {
    bool was_leader = false;
    EXPECT_THROW(flight.run(
                     "key",
                     [&]() -> std::string {
                       leader_entered.store(true);
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(100));
                       throw std::runtime_error("boom");
                     },
                     &was_leader),
                 std::runtime_error);
  });
  while (!leader_entered.load()) std::this_thread::yield();
  bool was_leader = true;
  EXPECT_THROW(
      flight.run(
          "key", [] { return std::string("never"); }, &was_leader),
      std::runtime_error);
  EXPECT_FALSE(was_leader);
  leader.join();
}

// ---------------------------------------------------------------------------
// Bounded LRU artifact cache
// ---------------------------------------------------------------------------

TEST(ArtifactCacheLru, EvictsLeastRecentlyUsedPastEntryCap) {
  core::ArtifactCache<int> cache("test");
  cache.set_capacity(2);
  cache.put("a", 1);
  cache.put("b", 2);
  ASSERT_NE(cache.find("a"), nullptr);  // touch: a is now most recent
  cache.put("c", 3);                    // evicts b, the LRU entry
  EXPECT_EQ(cache.find("b"), nullptr);
  EXPECT_NE(cache.find("a"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);
  const core::ArtifactTierStats st = cache.stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.evicted, 1u);
}

TEST(ArtifactCacheLru, ByteCapEvictsButKeepsLiveReferences) {
  core::ArtifactCache<int> cache("test");
  cache.set_capacity(0, 1);  // absurdly small byte budget: one survivor
  const std::shared_ptr<const int> held = cache.put("a", 1);
  cache.put("b", 2);
  cache.put("c", 3);
  EXPECT_LE(cache.stats().entries, 1u);
  EXPECT_GE(cache.stats().evicted, 2u);
  // Eviction drops only the cache's reference; live artifacts survive.
  EXPECT_EQ(*held, 1);
}

TEST(ArtifactCacheLru, CapacityAppliesRetroactively) {
  core::ArtifactCache<int> cache("test");
  for (int i = 0; i < 8; ++i) cache.put("k" + std::to_string(i), i);
  EXPECT_EQ(cache.stats().entries, 8u);
  cache.set_capacity(3);
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evicted, 5u);
}

// ---------------------------------------------------------------------------
// Live daemon
// ---------------------------------------------------------------------------

TEST(ServeDaemon, StatusAndUnknownMethodAndBadLine) {
  auto server = start_server();
  const serve::ClientResponse status = call(server->port(), "status", {});
  ASSERT_TRUE(status.ok) << status.raw;
  EXPECT_EQ(status.result.find("proto")->as_string(), "syndcim-serve");
  EXPECT_EQ(static_cast<int>(status.result.find("version")->as_number()), 1);
  EXPECT_FALSE(status.result.find("draining")->as_bool(true));

  const serve::ClientResponse unknown =
      call(server->port(), "frobnicate", {});
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.code, serve::kErrNotFound);

  serve::Client raw;
  std::string err;
  ASSERT_TRUE(raw.connect("127.0.0.1", server->port(), &err)) << err;
  serve::ClientResponse bad;
  ASSERT_TRUE(raw.call_raw("this is not json", &bad, &err)) << err;
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.code, serve::kErrBadRequest);
  server->drain();
}

TEST(ServeDaemon, LintRequest) {
  auto server = start_server();
  const char* kNetlist =
      "module top(input a, input b, output y);\n"
      "  wire n1;\n"
      "  AND2_X1 u1(.A(a), .B(b), .Y(n1));\n"
      "  BUF_X1 u2(.A(n1), .Y(y));\n"
      "endmodule\n";
  serve::Client client;
  std::string err;
  ASSERT_TRUE(client.connect("127.0.0.1", server->port(), &err)) << err;
  serve::ClientResponse resp;
  ASSERT_TRUE(client.call_extra("lint", {}, "netlist", kNetlist, 0, &resp,
                                &err))
      << err;
  ASSERT_TRUE(resp.ok) << resp.raw;
  const serve::JsonValue* diags = resp.result.find("diagnostics_json");
  ASSERT_NE(diags, nullptr);
  serve::JsonValue parsed;
  EXPECT_TRUE(serve::json_parse(diags->as_string(), &parsed, &err)) << err;
  EXPECT_NE(resp.result.find("errors"), nullptr);
  EXPECT_NE(resp.result.find("summary"), nullptr);

  // Missing netlist param is a 400, not a crash.
  const serve::ClientResponse missing = call(server->port(), "lint", {});
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(missing.code, serve::kErrBadRequest);
  server->drain();
}

TEST(ServeDaemon, SweepMatchesBatchByteForByte) {
  auto server = start_server();
  const serve::ClientResponse resp =
      call(server->port(), "sweep", small_sweep_params());
  ASSERT_TRUE(resp.ok) << resp.raw;
  const serve::JsonValue* frontier = resp.result.find("frontier_json");
  ASSERT_NE(frontier, nullptr);

  // The batch reference: a private store and cache, default threading —
  // the frontier must not depend on any of that.
  const dse::SweepGrid grid = dse::grid_from_kv(small_sweep_params());
  const dse::SweepReport rep =
      dse::run_sweep(test_library(), grid.expand(), {});
  EXPECT_EQ(frontier->as_string(), dse::sweep_frontier_json(rep));
  server->drain();
}

TEST(ServeDaemon, SecondIdenticalSweepIsWarm) {
  auto server = start_server();
  const serve::ClientResponse cold =
      call(server->port(), "sweep", small_sweep_params());
  ASSERT_TRUE(cold.ok) << cold.raw;
  const serve::ClientResponse warm =
      call(server->port(), "sweep", small_sweep_params());
  ASSERT_TRUE(warm.ok) << warm.raw;
  const serve::JsonValue* skip = warm.result.find("skip_pct");
  ASSERT_NE(skip, nullptr);
  EXPECT_GE(skip->as_number(), 0.5) << warm.raw;
  EXPECT_GT(warm.result.find("eval_cache")->find("hits")->as_number(), 0.0);
  // Byte-identity also holds cold vs warm.
  EXPECT_EQ(cold.result.find("frontier_json")->as_string(),
            warm.result.find("frontier_json")->as_string());
  server->drain();
}

TEST(ServeDaemon, RestartOnStoreDirAnswersWarmFromL2) {
  const std::string root = ::testing::TempDir() + "syndcim_serve_store";
  std::filesystem::remove_all(root);
  serve::ServerOptions opt;
  opt.store_dir = root;

  // First daemon: cold sweep, then drain (which flushes every dirty
  // artifact to the durable store).
  std::string cold_frontier;
  {
    auto server = start_server(opt);
    const serve::ClientResponse cold =
        call(server->port(), "sweep", small_sweep_params());
    ASSERT_TRUE(cold.ok) << cold.raw;
    cold_frontier = cold.result.find("frontier_json")->as_string();
    server->drain();
    ASSERT_NE(server->blob_store(), nullptr);
    EXPECT_GT(server->blob_store()->stats().objects_written, 0u);
  }

  // Second daemon, same directory: a brand-new process-wide L1, so every
  // artifact hit on the repeated sweep is served from L2.
  auto server = start_server(opt);
  const serve::ClientResponse warm =
      call(server->port(), "sweep", small_sweep_params());
  ASSERT_TRUE(warm.ok) << warm.raw;
  EXPECT_EQ(warm.result.find("frontier_json")->as_string(), cold_frontier);
  EXPECT_GT(warm.result.find("artifacts")->find("hits")->as_number(), 0.0);

  std::uint64_t l2_hits = 0;
  for (const core::ArtifactTierStats& t : server->store().stats()) {
    l2_hits += t.l2_hits;
  }
  EXPECT_GT(l2_hits, 0u);

  // The status endpoint reports the durable store.
  const serve::ClientResponse status =
      call(server->port(), "status", {});
  ASSERT_TRUE(status.ok) << status.raw;
  const serve::JsonValue* store = status.result.find("store");
  ASSERT_NE(store, nullptr) << status.raw;
  EXPECT_GT(store->find("l2_hits")->as_number(), 0.0) << status.raw;
  server->drain();
}

TEST(ServeDaemon, ConcurrentIdenticalCompilesSingleFlight) {
  serve::ServerOptions opt;
  opt.workers = 4;  // all K requests must be in flight simultaneously
  auto server = start_server(opt);
  const std::uint64_t evaluated0 = counter_value("serve.compile.evaluated");
  const std::uint64_t leader0 = counter_value("serve.singleflight.leader");
  const std::uint64_t coalesced0 =
      counter_value("serve.singleflight.coalesced");

  constexpr int kClients = 4;
  const std::map<std::string, std::string> params = {
      {"search_only", "true"}, {"rows", "128"}, {"cols", "64"},
      {"mac_mhz", "350"}};
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  std::vector<serve::ClientResponse> resps(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      serve::Client client;
      std::string err;
      ASSERT_TRUE(client.connect("127.0.0.1", server->port(), &err)) << err;
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      ASSERT_TRUE(client.call("compile", params, 0,
                              &resps[static_cast<std::size_t>(i)], &err))
          << err;
    });
  }
  for (std::thread& t : threads) t.join();
  for (const serve::ClientResponse& r : resps) {
    ASSERT_TRUE(r.ok) << r.raw;
    EXPECT_TRUE(r.result.find("feasible")->as_bool());
  }
  EXPECT_EQ(counter_value("serve.compile.evaluated") - evaluated0, 1u);
  EXPECT_EQ(counter_value("serve.singleflight.leader") - leader0, 1u);
  EXPECT_EQ(counter_value("serve.singleflight.coalesced") - coalesced0,
            static_cast<std::uint64_t>(kClients - 1));
  server->drain();
}

TEST(ServeDaemon, CrossRequestCompileWarmHit) {
  auto server = start_server();
  const std::map<std::string, std::string> params = {
      {"rows", "32"}, {"cols", "32"}, {"mac_mhz", "300"}};
  const serve::ClientResponse first =
      call(server->port(), "compile", params);
  ASSERT_TRUE(first.ok) << first.raw;
  // A separate connection — a different tenant — recompiling the same
  // spec splices cached stage artifacts from the shared store.
  const serve::ClientResponse second =
      call(server->port(), "compile", params);
  ASSERT_TRUE(second.ok) << second.raw;
  EXPECT_GT(second.result.find("stages_skipped")->as_number(),
            first.result.find("stages_skipped")->as_number());
  EXPECT_GE(second.result.find("skip_pct")->as_number(), 0.5) << second.raw;
  server->drain();
}

TEST(ServeDaemon, DeadlineExceededReturns408AndDaemonSurvives) {
  auto server = start_server();
  const serve::ClientResponse resp = call(
      server->port(), "sweep",
      {{"rows", "32"}, {"cols", "32"}, {"sweep_mac_mhz", "211,307,401"}},
      /*deadline_ms=*/1);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, serve::kErrDeadline) << resp.raw;
  const serve::ClientResponse status = call(server->port(), "status", {});
  EXPECT_TRUE(status.ok) << status.raw;
  server->drain();
}

TEST(ServeDaemon, AdmissionControlRejectsWith429) {
  serve::ServerOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 1;
  auto server = start_server(opt);

  constexpr int kClients = 6;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  std::vector<serve::ClientResponse> resps(kClients);
  std::vector<char> transported(kClients, 0);  // not vector<bool>: bit-packed
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      serve::Client client;
      std::string err;
      if (!client.connect("127.0.0.1", server->port(), &err)) return;
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      // Distinct grids, so single-flight cannot coalesce them.
      const std::map<std::string, std::string> params = {
          {"rows", "32"},
          {"cols", "32"},
          {"sweep_mac_mhz", std::to_string(220 + 10 * i)}};
      transported[static_cast<std::size_t>(i)] = client.call(
          "sweep", params, 0, &resps[static_cast<std::size_t>(i)], &err);
    });
  }
  for (std::thread& t : threads) t.join();
  int ok = 0, rejected = 0;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(transported[static_cast<std::size_t>(i)]);
    const serve::ClientResponse& r = resps[static_cast<std::size_t>(i)];
    if (r.ok) {
      ++ok;
    } else {
      EXPECT_EQ(r.code, serve::kErrOverloaded) << r.raw;
      ++rejected;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1);
  server->drain();
}

TEST(ServeDaemon, MixedTenantLoad) {
  auto server = start_server();
  std::thread t1([&] {
    const serve::ClientResponse r =
        call(server->port(), "compile",
             {{"search_only", "true"}, {"rows", "64"}, {"cols", "32"}});
    EXPECT_TRUE(r.ok) << r.raw;
  });
  std::thread t2([&] {
    const serve::ClientResponse r =
        call(server->port(), "sweep", small_sweep_params());
    EXPECT_TRUE(r.ok) << r.raw;
  });
  std::thread t3([&] {
    serve::Client client;
    std::string err;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), &err)) << err;
    serve::ClientResponse r;
    ASSERT_TRUE(client.call_extra(
        "lint", {}, "netlist",
        "module top(input a, output y);\n  BUF_X1 u(.A(a), .Y(y));\n"
        "endmodule\n",
        0, &r, &err))
        << err;
    EXPECT_TRUE(r.ok) << r.raw;
  });
  t1.join();
  t2.join();
  t3.join();
  const serve::ClientResponse metrics = call(server->port(), "metrics", {});
  ASSERT_TRUE(metrics.ok) << metrics.raw;
  serve::JsonValue parsed;
  std::string err;
  ASSERT_TRUE(serve::json_parse(
      metrics.result.find("metrics_json")->as_string(), &parsed, &err))
      << err;
  server->drain();
}

TEST(ServeDaemon, ShutdownRequestDrainsGracefully) {
  auto server = start_server();
  const serve::ClientResponse resp = call(server->port(), "shutdown", {});
  ASSERT_TRUE(resp.ok) << resp.raw;
  EXPECT_TRUE(resp.result.find("draining")->as_bool());
  // The drain flag flips just after the shutdown response is written.
  for (int i = 0; i < 200 && !server->drain_requested(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(server->drain_requested());
  // New requests are refused while draining.
  const serve::ClientResponse refused = call(server->port(), "status", {});
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, serve::kErrDraining);
  server->drain();
  // Listener is gone after the drain.
  serve::Client client;
  std::string err;
  EXPECT_FALSE(client.connect("127.0.0.1", server->port(), &err));
}

/// The two-layer model the netmap serve tests ship (4-bit to match
/// small_sweep_params' candidate pool).
constexpr const char* kModelDoc = R"({
  "format": "syndcim-model", "version": 1, "name": "serve_model",
  "layers": [
    {"name": "a", "kind": "linear", "batch": 16, "in_features": 100,
     "out_features": 12, "input_bits": 4, "weight_bits": 4},
    {"name": "b", "kind": "linear", "batch": 16, "in_features": 12,
     "out_features": 4, "input_bits": 4, "weight_bits": 4}
  ]})";

TEST(ServeDaemon, NetmapMatchesBatchByteForByte) {
  auto server = start_server();
  std::map<std::string, std::string> params = small_sweep_params();
  params["budget_macros"] = "2";
  serve::Client client;
  std::string err;
  ASSERT_TRUE(client.connect("127.0.0.1", server->port(), &err)) << err;
  serve::ClientResponse resp;
  ASSERT_TRUE(
      client.call_extra("netmap", params, "model", kModelDoc, 0, &resp, &err))
      << err;
  ASSERT_TRUE(resp.ok) << resp.raw;
  const serve::JsonValue* report = resp.result.find("report_json");
  ASSERT_NE(report, nullptr);
  EXPECT_NE(resp.result.find("total_energy_pj"), nullptr);

  // The batch reference: private store/cache, default threading, inline
  // sweep with the frontier lint skipped — exactly the CLI's path. The
  // served report must not depend on any of the daemon's sharing.
  core::DiagEngine diag;
  const netmap::Model model = netmap::parse_model(kModelDoc, diag);
  ASSERT_FALSE(diag.has_errors()) << diag.summary();
  dse::SweepOptions sopt;
  sopt.lint_frontier = false;
  const dse::SweepReport rep = dse::run_sweep(
      test_library(), dse::grid_from_kv(small_sweep_params()).expand(), sopt);
  netmap::NetmapOptions nopt;
  nopt.budget.max_macros = 2;
  const netmap::NetmapResult res =
      netmap::run_netmap(model, netmap::candidates_from_frontier(rep), nopt);
  EXPECT_EQ(report->as_string(), netmap::netmap_report_json(res));

  // A missing model param is a 400, not a crash.
  const serve::ClientResponse missing =
      call(server->port(), "netmap", small_sweep_params());
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(missing.code, serve::kErrBadRequest);
  server->drain();
}

TEST(ServeDaemon, MultiplexClientMatchesOutOfOrderResponses) {
  serve::ServerOptions opt;
  opt.workers = 2;  // the slow and fast requests run concurrently
  auto server = start_server(opt);
  serve::MultiplexClient mc;
  std::string err;
  ASSERT_TRUE(mc.connect("127.0.0.1", server->port(), &err)) << err;

  // Slow request first (a netmap with an inline sweep), then a burst of
  // fast ones: their responses overtake the netmap's on the shared
  // connection, and wait() must pair every line with its request id.
  std::map<std::string, std::string> params = small_sweep_params();
  params["budget_macros"] = "2";
  const std::string slow =
      mc.send("netmap", params, "model", kModelDoc, 0, &err);
  ASSERT_FALSE(slow.empty()) << err;
  std::vector<std::string> fast_ids;
  for (int i = 0; i < 3; ++i) {
    const std::string id = mc.send("status", {}, "", "", 0, &err);
    ASSERT_FALSE(id.empty()) << err;
    fast_ids.push_back(id);
  }
  // The fast responses resolve while the slow request is still running.
  for (const std::string& id : fast_ids) {
    serve::ClientResponse r;
    ASSERT_TRUE(mc.wait(id, &r, &err)) << err;
    EXPECT_TRUE(r.ok) << r.raw;
    EXPECT_EQ(r.id, id);
    EXPECT_NE(r.result.find("requests_total"), nullptr);
  }
  serve::ClientResponse sr;
  ASSERT_TRUE(mc.wait(slow, &sr, &err)) << err;
  EXPECT_TRUE(sr.ok) << sr.raw;
  EXPECT_EQ(sr.id, slow);
  EXPECT_NE(sr.result.find("report_json"), nullptr);
  mc.close();
  server->drain();
}

}  // namespace

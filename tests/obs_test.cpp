// src/obs: span recording and thread attribution, Chrome-trace JSON
// well-formedness (round-trip parsed by a minimal JSON reader), metric
// counter/gauge/histogram semantics (including concurrent increments —
// exercised under the sanitizer CI legs), and phase timelines.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace syndcim;

namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser — enough to round-trip the obs dumps and
// fail on any malformed output (trailing commas, bad escapes, ...).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue* get(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                   s_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JsonValue::kString; return string(out.str);
      case 't': out.kind = JsonValue::kBool; out.b = true;
                return literal("true");
      case 'f': out.kind = JsonValue::kBool; out.b = false;
                return literal("false");
      case 'n': out.kind = JsonValue::kNull; return literal("null");
      default:  out.kind = JsonValue::kNumber; return number(out.num);
    }
  }
  bool number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      std::size_t used = 0;
      out = std::stod(s_.substr(start, pos_ - start), &used);
      return used == pos_ - start && std::isfinite(out);
    } catch (const std::exception&) {
      return false;
    }
  }
  bool string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char e = s_[pos_ + 1];
        if (e == 'u') {
          if (pos_ + 5 >= s_.size()) return false;
          for (int k = 0; k < 4; ++k) {
            if (!std::isxdigit(static_cast<unsigned char>(
                    s_[pos_ + 2 + k]))) {
              return false;
            }
          }
          out += '?';  // codepoint value irrelevant for these tests
          pos_ += 6;
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't') {
          return false;
        }
        out += e;
        pos_ += 2;
        continue;
      }
      out += s_[pos_++];
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool array(JsonValue& out) {
    out.kind = JsonValue::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      skip_ws();
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(JsonValue& out) {
    out.kind = JsonValue::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.obj[key] = std::move(v);
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Fresh obs state for every test: the tracer/metrics singletons are
/// process-global, so tests scrub them and restore the disabled default.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::tracer().clear();
    obs::metrics().clear();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::tracer().clear();
    obs::metrics().clear();
  }
};

}  // namespace

// Span tests need the instrumentation compiled in; under
// -DSYNDCIM_OBS_DISABLED they verify nothing and are skipped.
#define OBS_REQUIRE_COMPILED_IN()                       \
  do {                                                  \
    if (!obs::kCompiledIn) {                            \
      GTEST_SKIP() << "built with OBS_DISABLED";        \
    }                                                   \
  } while (false)

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledRecordsNothing) {
  const std::size_t before = obs::tracer().event_count();
  {
    OBS_SPAN("should.not.appear");
  }
  EXPECT_EQ(obs::tracer().event_count(), before);
}

TEST_F(ObsTest, SpanNestingIsContained) {
  OBS_REQUIRE_COMPILED_IN();
  obs::set_enabled(true);
  {
    OBS_SPAN("outer");
    {
      OBS_SPAN("inner");
    }
  }
  const auto spans = obs::tracer().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const obs::RecordedSpan* outer = nullptr;
  const obs::RecordedSpan* inner = nullptr;
  for (const auto& s : spans) {
    if (s.ev.name == "outer") outer = &s;
    if (s.ev.name == "inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Same thread; the inner interval sits inside the outer one.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_GE(inner->ev.start_ns, outer->ev.start_ns);
  EXPECT_LE(inner->ev.start_ns + inner->ev.dur_ns,
            outer->ev.start_ns + outer->ev.dur_ns);
}

TEST_F(ObsTest, ThreadAttribution) {
  OBS_REQUIRE_COMPILED_IN();
  obs::set_enabled(true);
  obs::tracer().set_thread_name("obs-test-main");
  {
    OBS_SPAN("on.main");
  }
  std::thread t([] {
    obs::tracer().set_thread_name("obs-test-worker");
    OBS_SPAN("on.worker");
  });
  t.join();

  int main_tid = -1, worker_tid = -1;
  for (const auto& s : obs::tracer().snapshot()) {
    if (s.ev.name == "on.main") {
      main_tid = s.tid;
      EXPECT_EQ(s.thread_name, "obs-test-main");
    }
    if (s.ev.name == "on.worker") {
      worker_tid = s.tid;
      EXPECT_EQ(s.thread_name, "obs-test-worker");
    }
  }
  ASSERT_GE(main_tid, 0);
  ASSERT_GE(worker_tid, 0);
  EXPECT_NE(main_tid, worker_tid);
}

TEST_F(ObsTest, DynamicSpanNamesAndManyEventsCrossChunks) {
  OBS_REQUIRE_COMPILED_IN();
  obs::set_enabled(true);
  // More events than one chunk holds, to cover the spill path.
  for (int i = 0; i < 3000; ++i) {
    obs::SpanGuard span("bulk." + std::to_string(i % 7));
  }
  EXPECT_GE(obs::tracer().event_count(), 3000u);
}

TEST_F(ObsTest, TraceJsonRoundTrips) {
  OBS_REQUIRE_COMPILED_IN();
  obs::set_enabled(true);
  obs::tracer().set_thread_name("json \"escaped\" \\ name");
  {
    OBS_SPAN("phase.one");
    OBS_SPAN("phase\nwith\tescapes");
  }
  const std::string json = obs::tracer().to_json();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).parse(root)) << json;
  ASSERT_EQ(root.kind, JsonValue::kObject);
  ASSERT_NE(root.get("format"), nullptr);
  EXPECT_EQ(root.get("format")->str, "syndcim-trace");
  ASSERT_NE(root.get("version"), nullptr);
  EXPECT_EQ(root.get("version")->num, 1.0);
  const JsonValue* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  std::size_t complete = 0, meta = 0;
  for (const JsonValue& e : events->arr) {
    ASSERT_EQ(e.kind, JsonValue::kObject);
    ASSERT_NE(e.get("ph"), nullptr);
    ASSERT_NE(e.get("pid"), nullptr);
    ASSERT_NE(e.get("tid"), nullptr);
    ASSERT_NE(e.get("name"), nullptr);
    if (e.get("ph")->str == "X") {
      ++complete;
      ASSERT_NE(e.get("ts"), nullptr);
      ASSERT_NE(e.get("dur"), nullptr);
      EXPECT_GE(e.get("dur")->num, 0.0);
    } else if (e.get("ph")->str == "M") {
      ++meta;
      EXPECT_EQ(e.get("name")->str, "thread_name");
    }
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(meta, 1u);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterAndGaugeBasics) {
  obs::Counter& c = obs::metrics().counter("test.counter.inc");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same counter.
  EXPECT_EQ(obs::metrics().counter("test.counter.inc").value(), 42u);

  obs::Gauge& g = obs::metrics().gauge("test.gauge.set");
  g.set(2.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(obs::metrics().gauge("test.gauge.set").value(), -1.25);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // bucket i counts v <= bounds[i]; above the last bound -> overflow.
  obs::Histogram& h =
      obs::metrics().histogram("test.hist.bounds", {1.0, 10.0, 100.0});
  ASSERT_EQ(h.bucket_count(), 4u);
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (inclusive upper bound)
  h.observe(1.0001); // bucket 1
  h.observe(10.0);   // bucket 1
  h.observe(99.9);   // bucket 2
  h.observe(100.0);  // bucket 2
  h.observe(100.5);  // overflow
  h.observe(1e9);    // overflow
  EXPECT_EQ(h.count_in_bucket(0), 2u);
  EXPECT_EQ(h.count_in_bucket(1), 2u);
  EXPECT_EQ(h.count_in_bucket(2), 2u);
  EXPECT_EQ(h.count_in_bucket(3), 2u);
  EXPECT_EQ(h.total_count(), 8u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 100.5 + 1e9,
              1e-3);
}

TEST_F(ObsTest, ConcurrentCounterIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 20000;
  obs::Counter& c = obs::metrics().counter("test.counter.concurrent");
  obs::Histogram& h =
      obs::metrics().histogram("test.hist.concurrent", {0.5});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kIncsPerThread; ++i) {
        c.inc();
        h.observe(static_cast<double>(i & 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kIncsPerThread);
  EXPECT_EQ(h.total_count(),
            static_cast<std::uint64_t>(kThreads) * kIncsPerThread);
  EXPECT_EQ(h.count_in_bucket(0), h.count_in_bucket(1));
}

TEST_F(ObsTest, ConcurrentSpansFromManyThreadsAllLand) {
  OBS_REQUIRE_COMPILED_IN();
  obs::set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  const std::size_t before = obs::tracer().event_count();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        OBS_SPAN("concurrent.span");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(obs::tracer().event_count() - before,
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
}

TEST_F(ObsTest, MetricsJsonRoundTrips) {
  obs::metrics().counter("dse.cache.hit").inc(7);
  obs::metrics().gauge("compile.rss.peak_kb").set(12345.0);
  obs::Histogram& h =
      obs::metrics().histogram("dse.pool.queue_depth", {1.0, 2.0});
  h.observe(0.0);
  h.observe(5.0);

  const std::string json = obs::metrics().to_json();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).parse(root)) << json;
  ASSERT_NE(root.get("format"), nullptr);
  EXPECT_EQ(root.get("format")->str, "syndcim-metrics");
  ASSERT_NE(root.get("version"), nullptr);
  EXPECT_EQ(root.get("version")->num, 1.0);

  const JsonValue* counters = root.get("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->get("dse.cache.hit"), nullptr);
  EXPECT_EQ(counters->get("dse.cache.hit")->num, 7.0);

  const JsonValue* gauges = root.get("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->get("compile.rss.peak_kb"), nullptr);
  EXPECT_EQ(gauges->get("compile.rss.peak_kb")->num, 12345.0);

  const JsonValue* hists = root.get("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* hd = hists->get("dse.pool.queue_depth");
  ASSERT_NE(hd, nullptr);
  ASSERT_NE(hd->get("bounds"), nullptr);
  ASSERT_EQ(hd->get("bounds")->arr.size(), 2u);
  ASSERT_NE(hd->get("counts"), nullptr);
  ASSERT_EQ(hd->get("counts")->arr.size(), 3u);
  EXPECT_EQ(hd->get("counts")->arr[0].num, 1.0);
  EXPECT_EQ(hd->get("counts")->arr[2].num, 1.0);
  ASSERT_NE(hd->get("count"), nullptr);
  EXPECT_EQ(hd->get("count")->num, 2.0);
}

TEST_F(ObsTest, EmptyRegistryJsonIsWellFormed) {
  const std::string json = obs::metrics().to_json();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).parse(root)) << json;
  ASSERT_NE(root.get("counters"), nullptr);
  EXPECT_TRUE(root.get("counters")->obj.empty());
}

// ---------------------------------------------------------------------------
// Phase timelines
// ---------------------------------------------------------------------------

TEST_F(ObsTest, PhaseTimelineRecordsOrderedPhases) {
  obs::PhaseTimeline tl;
  {
    obs::PhaseScope a(tl, "rtlgen");
  }
  {
    obs::PhaseScope b(tl, "sta");
  }
  ASSERT_EQ(tl.phases.size(), 2u);
  EXPECT_EQ(tl.phases[0].name, "rtlgen");
  EXPECT_EQ(tl.phases[1].name, "sta");
  EXPECT_GE(tl.phases[1].start_ms, tl.phases[0].start_ms);
  EXPECT_GE(tl.phases[0].dur_ms, 0.0);
  ASSERT_NE(tl.find("sta"), nullptr);
  EXPECT_EQ(tl.find("nope"), nullptr);
#if defined(__linux__)
  EXPECT_GT(tl.phases[0].rss_peak_kb, 0);
#endif

  // Timeline JSON parses and carries the recorded names.
  JsonValue root;
  ASSERT_TRUE(JsonParser(tl.to_json()).parse(root)) << tl.to_json();
  ASSERT_EQ(root.kind, JsonValue::kArray);
  ASSERT_EQ(root.arr.size(), 2u);
  EXPECT_EQ(root.arr[0].get("name")->str, "rtlgen");
  EXPECT_EQ(root.arr[1].get("name")->str, "sta");
}

TEST_F(ObsTest, PhaseScopeEmitsTraceSpanWhenEnabled) {
  OBS_REQUIRE_COMPILED_IN();
  obs::set_enabled(true);
  obs::PhaseTimeline tl;
  {
    obs::PhaseScope p(tl, "floorplan");
  }
  bool found = false;
  for (const auto& s : obs::tracer().snapshot()) {
    found = found || s.ev.name == "compile.floorplan";
  }
  EXPECT_TRUE(found);
  // The RSS gauge was refreshed by the scope.
  EXPECT_EQ(obs::metrics().gauge("compile.rss.peak_kb").value(),
            static_cast<double>(tl.phases[0].rss_peak_kb));
}

// Liberty round-trip and logic-equivalence-checker tests.
#include <gtest/gtest.h>

#include <sstream>

#include "cell/characterize.hpp"
#include "cell/liberty.hpp"
#include "cell/liberty_parser.hpp"
#include "netlist/design.hpp"
#include "netlist/flatten.hpp"
#include "rtlgen/adder_tree.hpp"
#include "rtlgen/alignment_unit.hpp"
#include "sim/equivalence.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

cell::Library round_tripped() {
  std::ostringstream os;
  cell::write_liberty(lib(), os);
  std::istringstream is(os.str());
  return cell::parse_liberty(is, tech::make_default_40nm());
}

TEST(LibertyRoundTrip, AllCellsAndAttributesSurvive) {
  const cell::Library l2 = round_tripped();
  ASSERT_EQ(l2.all().size(), lib().all().size());
  for (const cell::Cell& c : lib().all()) {
    ASSERT_TRUE(l2.has(c.name)) << c.name;
    const cell::Cell& c2 = l2.get(c.name);
    EXPECT_EQ(c2.kind, c.kind);
    EXPECT_NEAR(c2.area_um2, c.area_um2, 0.01);
    EXPECT_NEAR(c2.drive_x, c.drive_x, 1e-9);
    EXPECT_NEAR(c2.internal_energy_fj, c.internal_energy_fj, 0.01);
    EXPECT_NEAR(c2.setup_ps, c.setup_ps, 0.01);
    EXPECT_NEAR(c2.width_um, c.width_um, 0.01);
    ASSERT_EQ(c2.pins.size(), c.pins.size());
    ASSERT_EQ(c2.arcs.size(), c.arcs.size());
    for (std::size_t i = 0; i < c.pins.size(); ++i) {
      EXPECT_EQ(c2.pins[i].name, c.pins[i].name);
      EXPECT_EQ(c2.pins[i].is_input, c.pins[i].is_input);
      EXPECT_EQ(c2.pins[i].is_clock, c.pins[i].is_clock);
      EXPECT_NEAR(c2.pins[i].cap_ff, c.pins[i].cap_ff, 0.01);
    }
  }
}

TEST(LibertyRoundTrip, TimingTablesAgree) {
  const cell::Library l2 = round_tripped();
  for (const char* name : {"FAX1", "CMP42X1", "DFFX1", "INVX4"}) {
    const cell::Cell& a = lib().get(name);
    const cell::Cell& b = l2.get(name);
    for (std::size_t i = 0; i < a.arcs.size(); ++i) {
      for (const double slew : {10.0, 60.0, 300.0}) {
        for (const double load : {1.0, 8.0, 60.0}) {
          EXPECT_NEAR(b.arcs[i].delay_ps.eval(slew, load),
                      a.arcs[i].delay_ps.eval(slew, load), 0.01)
              << name << " arc " << i;
          EXPECT_NEAR(b.arcs[i].out_slew_ps.eval(slew, load),
                      a.arcs[i].out_slew_ps.eval(slew, load), 0.01);
        }
      }
    }
  }
}

TEST(LibertyRoundTrip, StaAnswersIdentical) {
  // An STA run against the parsed library must reproduce the original's
  // numbers (the tables are the only timing source).
  const cell::Library l2 = round_tripped();
  rtlgen::AdderTreeConfig cfg;
  cfg.rows = 32;
  netlist::Design d;
  d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));
  const auto flat = netlist::flatten(d, "tree");
  sta::StaEngine e1(flat, lib());
  sta::StaEngine e2(flat, l2);
  EXPECT_NEAR(e1.analyze({}).min_period_ps, e2.analyze({}).min_period_ps,
              0.5);
}

TEST(LibertyParser, RejectsMalformedInput) {
  std::istringstream bad1("cell (X) {}");
  EXPECT_THROW((void)cell::parse_liberty(bad1, tech::make_default_40nm()),
               std::invalid_argument);
  std::istringstream bad2("library (l) { cell (X) { pin (A) { bogus : 1; } } }");
  EXPECT_THROW((void)cell::parse_liberty(bad2, tech::make_default_40nm()),
               std::invalid_argument);
}

TEST(Equivalence, AllAdderTreeStylesAreEquivalent) {
  // Every tree style computes the same popcount — the LEC should agree.
  auto make = [](rtlgen::AdderTreeStyle style, double fa) {
    rtlgen::AdderTreeConfig cfg;
    cfg.rows = 16;
    cfg.style = style;
    cfg.fa_fraction = fa;
    netlist::Design d;
    d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));
    return netlist::flatten(d, "tree");
  };
  const auto rca = make(rtlgen::AdderTreeStyle::kRcaTree, 0);
  const auto cmp = make(rtlgen::AdderTreeStyle::kCompressor, 0);
  const auto mix = make(rtlgen::AdderTreeStyle::kMixed, 0.5);
  EXPECT_EQ(sim::check_equivalence(rca, cmp, lib(), 200), "");
  EXPECT_EQ(sim::check_equivalence(cmp, mix, lib(), 200), "");
}

TEST(Equivalence, DetectsInjectedFault) {
  rtlgen::AdderTreeConfig cfg;
  cfg.rows = 16;
  netlist::Design good;
  good.add_module(rtlgen::gen_adder_tree(cfg, "tree"));

  // Faulty twin: same tree wrapped with an inverter on sum[0].
  netlist::Design bad;
  bad.add_module(rtlgen::gen_adder_tree(cfg, "tree_inner"));
  netlist::Module wrap("tree");
  const auto in = wrap.add_port_bus("in", netlist::PortDir::kIn, 16);
  const auto sum = wrap.add_port_bus("sum", netlist::PortDir::kOut, 5);
  std::vector<netlist::Conn> conns;
  for (int i = 0; i < 16; ++i) {
    conns.push_back({netlist::bus_name("in", i), in[i]});
  }
  const auto s0 = wrap.add_net("s0_raw");
  conns.push_back({netlist::bus_name("sum", 0), s0});
  for (int i = 1; i < 5; ++i) {
    conns.push_back({netlist::bus_name("sum", i), sum[i]});
  }
  wrap.add_submodule("u0", "tree_inner", std::move(conns));
  wrap.add_cell("fault", "INVX1", {{"A", s0}, {"Y", sum[0]}});
  bad.add_module(std::move(wrap));

  const auto a = netlist::flatten(good, "tree");
  const auto b = netlist::flatten(bad, "tree");
  const std::string diff = sim::check_equivalence(a, b, lib(), 20);
  EXPECT_NE(diff, "");
  EXPECT_NE(diff.find("sum[0]"), std::string::npos);

  // Missing counterpart ports are reported, not silently ignored.
  rtlgen::AdderTreeConfig big = cfg;
  big.rows = 32;
  netlist::Design wide;
  wide.add_module(rtlgen::gen_adder_tree(big, "tree"));
  const auto w = netlist::flatten(wide, "tree");
  EXPECT_NE(sim::check_equivalence(w, a, lib(), 5), "");
}

TEST(Equivalence, PortMappingAcrossNamingConventions) {
  // Same circuit, one with renamed ports via the map.
  rtlgen::AdderTreeConfig cfg;
  cfg.rows = 8;
  netlist::Design d;
  d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));
  const auto a = netlist::flatten(d, "tree");
  std::vector<std::pair<std::string, std::string>> map;
  for (int i = 0; i < 8; ++i) {
    map.emplace_back(netlist::bus_name("in", i), netlist::bus_name("in", i));
  }
  EXPECT_EQ(sim::check_equivalence(a, a, lib(), 50, 1, map), "");
}

}  // namespace

// Direct GateSim semantics: levelized evaluation, sequential capture,
// toggle counting, constants, state access.
#include <gtest/gtest.h>

#include "cell/characterize.hpp"
#include "netlist/design.hpp"
#include "netlist/flatten.hpp"
#include "power/activity.hpp"
#include "sim/gate_sim.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;
using netlist::PortDir;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

TEST(GateSim, CombinationalChainAndConstants) {
  netlist::Design d;
  netlist::Module m("t");
  const auto a = m.add_port("a", PortDir::kIn);
  const auto y = m.add_port("y", PortDir::kOut);
  const auto z = m.add_port("z", PortDir::kOut);
  const auto n1 = m.add_net("n1");
  m.add_cell("i0", "INVX1", {{"A", a}, {"Y", n1}});
  m.add_cell("i1", "INVX1", {{"A", n1}, {"Y", y}});
  m.add_cell("a0", "AND2X1", {{"A", m.const1()}, {"B", m.const0()}, {"Y", z}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  sim::GateSim gs(flat, lib());
  gs.set_input("a", 1);
  gs.eval();
  EXPECT_EQ(gs.output("y"), 1);
  EXPECT_EQ(gs.output("z"), 0);  // 1 & 0
  gs.set_input("a", 0);
  gs.eval();
  EXPECT_EQ(gs.output("y"), 0);
}

TEST(GateSim, DffCapturesOnStepOnly) {
  netlist::Design d;
  netlist::Module m("t");
  const auto clk = m.add_port("clk", PortDir::kIn);
  const auto a = m.add_port("a", PortDir::kIn);
  const auto q = m.add_port("q", PortDir::kOut);
  const auto qi = m.add_net("qi");
  m.add_cell("r0", "DFFX1", {{"D", a}, {"CK", clk}, {"Q", qi}});
  m.add_cell("b0", "BUFX1", {{"A", qi}, {"Y", q}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  sim::GateSim gs(flat, lib());
  gs.set_input("a", 1);
  gs.eval();
  EXPECT_EQ(gs.output("q"), 0);  // not captured yet
  gs.step();
  gs.eval();
  EXPECT_EQ(gs.output("q"), 1);
  gs.set_input("a", 0);
  gs.eval();
  EXPECT_EQ(gs.output("q"), 1);  // holds until the next edge
  gs.step();
  gs.eval();
  EXPECT_EQ(gs.output("q"), 0);
}

TEST(GateSim, EnableFlopAndStateAccess) {
  netlist::Design d;
  netlist::Module m("t");
  const auto clk = m.add_port("clk", PortDir::kIn);
  const auto a = m.add_port("a", PortDir::kIn);
  const auto e = m.add_port("e", PortDir::kIn);
  const auto q = m.add_port("q", PortDir::kOut);
  const auto qi = m.add_net("qi");
  m.add_cell("r0", "DFFEX1", {{"D", a}, {"E", e}, {"CK", clk}, {"Q", qi}});
  m.add_cell("b0", "BUFX1", {{"A", qi}, {"Y", q}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  sim::GateSim gs(flat, lib());
  gs.set_input("a", 1);
  gs.set_input("e", 0);
  gs.step();
  gs.eval();
  EXPECT_EQ(gs.output("q"), 0);  // enable low: held
  gs.set_input("e", 1);
  gs.step();
  gs.eval();
  EXPECT_EQ(gs.output("q"), 1);
  // Direct state access: gate 0 is the DFFE.
  EXPECT_EQ(gs.state(0), 1);
  gs.set_state(0, 0);
  gs.eval();
  EXPECT_EQ(gs.output("q"), 0);
  // set_state on a combinational gate is rejected.
  EXPECT_THROW(gs.set_state(1, 1), std::invalid_argument);
}

TEST(GateSim, ToggleCountingIsExact) {
  netlist::Design d;
  netlist::Module m("t");
  const auto a = m.add_port("a", PortDir::kIn);
  const auto y = m.add_port("y", PortDir::kOut);
  const auto n1 = m.add_net("n1");
  m.add_cell("i0", "INVX1", {{"A", a}, {"Y", n1}});
  m.add_cell("i1", "INVX1", {{"A", n1}, {"Y", y}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  sim::GateSim gs(flat, lib());
  gs.reset_activity();
  // Toggle a 10 times: every net flips 10 times (after the first eval
  // settles from the all-zero initial state).
  for (int t = 0; t < 10; ++t) {
    gs.set_input("a", t % 2 == 0 ? 1 : 0);
    gs.step();
  }
  const std::uint32_t y_net = flat.output_net("y");
  const std::uint32_t a_net = flat.input_net("a");
  EXPECT_EQ(gs.net_toggles()[a_net], 10u);
  // y = a buffered through two inverters: same toggle count.
  EXPECT_EQ(gs.net_toggles()[y_net], 10u);
  EXPECT_EQ(gs.cycles(), 10u);
  gs.reset_activity();
  EXPECT_EQ(gs.net_toggles()[y_net], 0u);
  EXPECT_EQ(gs.cycles(), 0u);
}

TEST(GateSim, ActivityFromSimMatchesToggleCounts) {
  netlist::Design d;
  netlist::Module m("t");
  const auto a = m.add_port("a", PortDir::kIn);
  const auto clk = m.add_port("clk", PortDir::kIn);
  const auto q = m.add_port("q", PortDir::kOut);
  const auto qi = m.add_net("qi");
  m.add_cell("r0", "DFFX1", {{"D", a}, {"CK", clk}, {"Q", qi}});
  m.add_cell("b0", "BUFX1", {{"A", qi}, {"Y", q}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  sim::GateSim gs(flat, lib());
  for (int t = 0; t < 8; ++t) {
    gs.set_input("a", t % 2);
    gs.step();
  }
  const auto act = power::activity_from_sim(flat, lib(), gs);
  EXPECT_NEAR(act.toggle_rate[flat.input_net("a")], 1.0, 0.13);
  // Clock net forced to 2 transitions/cycle.
  EXPECT_DOUBLE_EQ(act.toggle_rate[flat.input_net("clk")], 2.0);
  // Unsimulated run is rejected.
  sim::GateSim gs2(flat, lib());
  EXPECT_THROW((void)power::activity_from_sim(flat, lib(), gs2),
               std::invalid_argument);
}

TEST(GateSim, RejectsBadNetlists) {
  // Unconnected input pin.
  netlist::Design d;
  netlist::Module m("t");
  const auto y = m.add_port("y", PortDir::kOut);
  m.add_cell("i0", "INVX1", {{"Y", y}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  EXPECT_THROW((sim::GateSim{flat, lib()}), std::invalid_argument);
}

}  // namespace

// Direct GateSim semantics: levelized evaluation, sequential capture,
// toggle counting, constants, state access — plus the 64-lane
// bit-parallel / event-driven engine against the scalar reference.
#include <gtest/gtest.h>

#include <random>

#include "cell/characterize.hpp"
#include "netlist/design.hpp"
#include "netlist/flatten.hpp"
#include "power/activity.hpp"
#include "rtlgen/macro.hpp"
#include "sim/gate_sim.hpp"
#include "sim/macro_model.hpp"
#include "sim/macro_tb.hpp"
#include "sim/scalar_ref.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;
using netlist::PortDir;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

TEST(GateSim, CombinationalChainAndConstants) {
  netlist::Design d;
  netlist::Module m("t");
  const auto a = m.add_port("a", PortDir::kIn);
  const auto y = m.add_port("y", PortDir::kOut);
  const auto z = m.add_port("z", PortDir::kOut);
  const auto n1 = m.add_net("n1");
  m.add_cell("i0", "INVX1", {{"A", a}, {"Y", n1}});
  m.add_cell("i1", "INVX1", {{"A", n1}, {"Y", y}});
  m.add_cell("a0", "AND2X1", {{"A", m.const1()}, {"B", m.const0()}, {"Y", z}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  sim::GateSim gs(flat, lib());
  gs.set_input("a", 1);
  gs.eval();
  EXPECT_EQ(gs.output("y"), 1);
  EXPECT_EQ(gs.output("z"), 0);  // 1 & 0
  gs.set_input("a", 0);
  gs.eval();
  EXPECT_EQ(gs.output("y"), 0);
}

TEST(GateSim, DffCapturesOnStepOnly) {
  netlist::Design d;
  netlist::Module m("t");
  const auto clk = m.add_port("clk", PortDir::kIn);
  const auto a = m.add_port("a", PortDir::kIn);
  const auto q = m.add_port("q", PortDir::kOut);
  const auto qi = m.add_net("qi");
  m.add_cell("r0", "DFFX1", {{"D", a}, {"CK", clk}, {"Q", qi}});
  m.add_cell("b0", "BUFX1", {{"A", qi}, {"Y", q}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  sim::GateSim gs(flat, lib());
  gs.set_input("a", 1);
  gs.eval();
  EXPECT_EQ(gs.output("q"), 0);  // not captured yet
  gs.step();
  gs.eval();
  EXPECT_EQ(gs.output("q"), 1);
  gs.set_input("a", 0);
  gs.eval();
  EXPECT_EQ(gs.output("q"), 1);  // holds until the next edge
  gs.step();
  gs.eval();
  EXPECT_EQ(gs.output("q"), 0);
}

TEST(GateSim, EnableFlopAndStateAccess) {
  netlist::Design d;
  netlist::Module m("t");
  const auto clk = m.add_port("clk", PortDir::kIn);
  const auto a = m.add_port("a", PortDir::kIn);
  const auto e = m.add_port("e", PortDir::kIn);
  const auto q = m.add_port("q", PortDir::kOut);
  const auto qi = m.add_net("qi");
  m.add_cell("r0", "DFFEX1", {{"D", a}, {"E", e}, {"CK", clk}, {"Q", qi}});
  m.add_cell("b0", "BUFX1", {{"A", qi}, {"Y", q}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  sim::GateSim gs(flat, lib());
  gs.set_input("a", 1);
  gs.set_input("e", 0);
  gs.step();
  gs.eval();
  EXPECT_EQ(gs.output("q"), 0);  // enable low: held
  gs.set_input("e", 1);
  gs.step();
  gs.eval();
  EXPECT_EQ(gs.output("q"), 1);
  // Direct state access: gate 0 is the DFFE.
  EXPECT_EQ(gs.state(0), 1);
  gs.set_state(0, 0);
  gs.eval();
  EXPECT_EQ(gs.output("q"), 0);
  // set_state on a combinational gate is rejected.
  EXPECT_THROW(gs.set_state(1, 1), std::invalid_argument);
}

TEST(GateSim, ToggleCountingIsExact) {
  netlist::Design d;
  netlist::Module m("t");
  const auto a = m.add_port("a", PortDir::kIn);
  const auto y = m.add_port("y", PortDir::kOut);
  const auto n1 = m.add_net("n1");
  m.add_cell("i0", "INVX1", {{"A", a}, {"Y", n1}});
  m.add_cell("i1", "INVX1", {{"A", n1}, {"Y", y}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  sim::GateSim gs(flat, lib());
  gs.reset_activity();
  // Toggle a 10 times: every net flips 10 times (after the first eval
  // settles from the all-zero initial state).
  for (int t = 0; t < 10; ++t) {
    gs.set_input("a", t % 2 == 0 ? 1 : 0);
    gs.step();
  }
  const std::uint32_t y_net = flat.output_net("y");
  const std::uint32_t a_net = flat.input_net("a");
  EXPECT_EQ(gs.net_toggles()[a_net], 10u);
  // y = a buffered through two inverters: same toggle count.
  EXPECT_EQ(gs.net_toggles()[y_net], 10u);
  EXPECT_EQ(gs.cycles(), 10u);
  gs.reset_activity();
  EXPECT_EQ(gs.net_toggles()[y_net], 0u);
  EXPECT_EQ(gs.cycles(), 0u);
}

TEST(GateSim, ActivityFromSimMatchesToggleCounts) {
  netlist::Design d;
  netlist::Module m("t");
  const auto a = m.add_port("a", PortDir::kIn);
  const auto clk = m.add_port("clk", PortDir::kIn);
  const auto q = m.add_port("q", PortDir::kOut);
  const auto qi = m.add_net("qi");
  m.add_cell("r0", "DFFX1", {{"D", a}, {"CK", clk}, {"Q", qi}});
  m.add_cell("b0", "BUFX1", {{"A", qi}, {"Y", q}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  sim::GateSim gs(flat, lib());
  for (int t = 0; t < 8; ++t) {
    gs.set_input("a", t % 2);
    gs.step();
  }
  const auto act = power::activity_from_sim(flat, lib(), gs);
  EXPECT_NEAR(act.toggle_rate[flat.input_net("a")], 1.0, 0.13);
  // Clock net forced to 2 transitions/cycle.
  EXPECT_DOUBLE_EQ(act.toggle_rate[flat.input_net("clk")], 2.0);
  // Unsimulated run is rejected.
  sim::GateSim gs2(flat, lib());
  EXPECT_THROW((void)power::activity_from_sim(flat, lib(), gs2),
               std::invalid_argument);
}

rtlgen::MacroConfig sim_macro_cfg(int variant) {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 2;
  cfg.input_bits = {2, 4};
  cfg.weight_bits = {2, 4};
  cfg.fp_formats = {};
  if (variant == 1) {
    cfg.mux = rtlgen::MuxStyle::kOai22Fused;
  } else if (variant == 2) {
    cfg.tree.style = rtlgen::AdderTreeStyle::kCompressor;
  }
  return cfg;
}

// Tentpole contract: with lanes == 1 the bit-parallel event-driven engine
// is bit-identical to the retained scalar reference — every net value,
// every toggle count, every cycle — across structurally different
// generated macros under random stimulus.
TEST(GateSimLanes, Lanes1BitIdenticalToScalarReference) {
  for (int variant = 0; variant < 3; ++variant) {
    const auto md = rtlgen::gen_macro(sim_macro_cfg(variant));
    const auto flat = netlist::flatten(md.design, md.top);
    sim::GateSim gs(flat, lib(), /*lanes=*/1, /*event_driven=*/true);
    sim::ScalarGateSim ref(flat, lib());
    std::mt19937_64 rng(7 + static_cast<unsigned>(variant));
    for (int t = 0; t < 40; ++t) {
      for (const auto& io : flat.primary_inputs()) {
        const int bit = static_cast<int>(rng() & 1);
        gs.set_input(io.name, bit);
        ref.set_input(io.name, bit);
      }
      gs.step();
      ref.step();
    }
    gs.eval();
    ref.eval();
    ASSERT_EQ(gs.cycles(), ref.cycles());
    for (std::uint32_t n = 0; n < flat.net_count(); ++n) {
      ASSERT_EQ(gs.net_value(n), ref.net_value(n))
          << "variant " << variant << " net " << n;
      ASSERT_EQ(gs.net_toggles()[n], ref.net_toggles()[n])
          << "variant " << variant << " net " << n;
    }
  }
}

// Popcount toggle accounting: at lanes == 64 the packed engine's per-net
// toggle totals equal the sum of 64 independent scalar replays, and every
// lane's values match its own replay bit-for-bit.
TEST(GateSimLanes, Lane64TogglesMatchPerLaneScalarReplay) {
  const auto md = rtlgen::gen_macro(sim_macro_cfg(0));
  const auto flat = netlist::flatten(md.design, md.top);
  constexpr int kLanes = 64;
  constexpr int kSteps = 12;
  sim::GateSim gs(flat, lib(), kLanes);
  // stim[t][input] = packed 64-lane word driven at step t.
  std::vector<std::vector<std::uint64_t>> stim(
      kSteps, std::vector<std::uint64_t>(flat.primary_inputs().size()));
  std::mt19937_64 rng(11);
  for (int t = 0; t < kSteps; ++t) {
    for (std::size_t i = 0; i < flat.primary_inputs().size(); ++i) {
      stim[t][i] = rng();
      gs.set_input_word(flat.primary_inputs()[i].name, stim[t][i]);
    }
    gs.step();
  }
  gs.eval();

  std::vector<std::uint64_t> toggle_sum(flat.net_count(), 0);
  for (int l = 0; l < kLanes; ++l) {
    sim::ScalarGateSim ref(flat, lib());
    for (int t = 0; t < kSteps; ++t) {
      for (std::size_t i = 0; i < flat.primary_inputs().size(); ++i) {
        ref.set_input(flat.primary_inputs()[i].name,
                      static_cast<int>(stim[t][i] >> l & 1u));
      }
      ref.step();
    }
    ref.eval();
    for (std::uint32_t n = 0; n < flat.net_count(); ++n) {
      toggle_sum[n] += ref.net_toggles()[n];
      ASSERT_EQ(static_cast<int>(gs.net_word(n) >> l & 1u),
                ref.net_value(n))
          << "lane " << l << " net " << n;
    }
  }
  for (std::uint32_t n = 0; n < flat.net_count(); ++n) {
    ASSERT_EQ(gs.net_toggles()[n], toggle_sum[n]) << "net " << n;
  }
}

// The dirty-gate worklist is a pure scheduling optimization: under
// stimulus that touches only one input per cycle it must produce exactly
// the full sweep's values and toggles while evaluating strictly fewer
// gates.
TEST(GateSimLanes, EventDrivenMatchesFullSweep) {
  const auto md = rtlgen::gen_macro(sim_macro_cfg(2));
  const auto flat = netlist::flatten(md.design, md.top);
  sim::GateSim ev(flat, lib(), 8, /*event_driven=*/true);
  sim::GateSim sw(flat, lib(), 8, /*event_driven=*/false);
  const auto& ins = flat.primary_inputs();
  std::mt19937_64 rng(13);
  for (int t = 0; t < 60; ++t) {
    const auto& io = ins[rng() % ins.size()];
    const std::uint64_t word = rng();
    ev.set_input_word(io.name, word);
    sw.set_input_word(io.name, word);
    ev.step();
    sw.step();
  }
  ev.eval();
  sw.eval();
  for (std::uint32_t n = 0; n < flat.net_count(); ++n) {
    ASSERT_EQ(ev.net_word(n), sw.net_word(n)) << "net " << n;
    ASSERT_EQ(ev.net_toggles()[n], sw.net_toggles()[n]) << "net " << n;
  }
  EXPECT_LT(ev.gate_evals(), sw.gate_evals());
  EXPECT_GT(ev.events_skipped(), 0u);
  EXPECT_EQ(ev.gate_evals() + ev.events_skipped(), sw.gate_evals());
  EXPECT_EQ(sw.events_skipped(), 0u);
}

// One protocol pass of run_mac_int_lanes carries an independent MAC per
// lane: each lane's outputs must match the behavioral model for that
// lane's inputs, and lane 0 must match the scalar-path run_mac_int.
TEST(GateSimLanes, MacroTestbenchLanesMatchModelPerLane) {
  const rtlgen::MacroConfig cfg = sim_macro_cfg(0);
  const auto md = rtlgen::gen_macro(cfg);
  sim::DcimMacroModel model(cfg);
  constexpr int kLanes = 5;
  sim::MacroTestbench tb(md, lib(), kLanes);
  EXPECT_EQ(tb.lanes(), kLanes);

  std::mt19937 rng(17);
  const int wp = 4, ib = 4;
  const num::IntFormat wf{wp, true}, inf{ib, true};
  std::uniform_int_distribution<std::int64_t> wdist(wf.min_value(),
                                                    wf.max_value());
  std::uniform_int_distribution<std::int64_t> idist(inf.min_value(),
                                                    inf.max_value());
  std::vector<std::vector<std::int64_t>> w(
      static_cast<std::size_t>(cfg.cols / wp));
  for (auto& g : w) {
    g.resize(static_cast<std::size_t>(cfg.rows));
    for (auto& v : g) v = wdist(rng);
  }
  model.load_weights_int(0, wp, w);
  tb.preload_weights(model);

  std::vector<std::vector<std::int64_t>> in(
      kLanes, std::vector<std::int64_t>(static_cast<std::size_t>(cfg.rows)));
  for (auto& li : in) {
    for (auto& v : li) v = idist(rng);
  }
  const auto out = tb.run_mac_int_lanes(in, ib, wp, 0);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kLanes));
  for (int l = 0; l < kLanes; ++l) {
    EXPECT_EQ(out[static_cast<std::size_t>(l)],
              model.mac_int(in[static_cast<std::size_t>(l)], ib, wp, 0))
        << "lane " << l;
  }
  // Lane 0's packed result equals the scalar-path protocol run.
  sim::MacroTestbench tb0(md, lib());
  tb0.preload_weights(model);
  EXPECT_EQ(out[0], tb0.run_mac_int(in[0], ib, wp, 0));
}

TEST(GateSimLanes, RejectsBadLaneCounts) {
  const auto md = rtlgen::gen_macro(sim_macro_cfg(0));
  const auto flat = netlist::flatten(md.design, md.top);
  EXPECT_THROW((sim::GateSim{flat, lib(), 0}), std::invalid_argument);
  EXPECT_THROW((sim::GateSim{flat, lib(), 65}), std::invalid_argument);
  sim::GateSim gs(flat, lib(), 4);
  EXPECT_THROW(gs.set_input_bus_lanes("din0", {1, 2, 3}, 2),
               std::invalid_argument);
}

TEST(GateSim, RejectsBadNetlists) {
  // Unconnected input pin.
  netlist::Design d;
  netlist::Module m("t");
  const auto y = m.add_port("y", PortDir::kOut);
  m.add_cell("i0", "INVX1", {{"Y", y}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  EXPECT_THROW((sim::GateSim{flat, lib()}), std::invalid_argument);
}

}  // namespace

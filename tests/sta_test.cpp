#include <gtest/gtest.h>

#include <cmath>

#include "cell/characterize.hpp"
#include "netlist/design.hpp"
#include "netlist/flatten.hpp"
#include "rtlgen/adder_tree.hpp"
#include "rtlgen/gates.hpp"
#include "rtlgen/macro.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"
#include "tech/units.hpp"

namespace {
using namespace syndcim;
using netlist::PortDir;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

/// in -> INV chain (n stages) -> DFF -> out, all clocked.
netlist::Design inv_chain_design(int n) {
  netlist::Design d;
  netlist::Module m("chain");
  rtlgen::GateBuilder gb(m, "g_");
  const auto clk = m.add_port("clk", PortDir::kIn);
  const auto in = m.add_port("in", PortDir::kIn);
  netlist::NetId x = gb.dff(in, clk);  // launch register
  for (int i = 0; i < n; ++i) x = gb.inv(x);
  const auto q = gb.dff(x, clk);  // capture register
  const auto out = m.add_port("out", PortDir::kOut);
  m.add_cell("obuf", "BUFX1", {{"A", q}, {"Y", out}});
  d.add_module(std::move(m));
  return d;
}

TEST(Sta, LongerChainsHaveLongerPaths) {
  double prev = 0.0;
  for (const int n : {2, 8, 32}) {
    const auto d = inv_chain_design(n);
    const auto flat = netlist::flatten(d, "chain");
    sta::StaEngine eng(flat, lib());
    const auto rep = eng.analyze({});
    EXPECT_GT(rep.min_period_ps, prev) << n;
    prev = rep.min_period_ps;
  }
}

TEST(Sta, SlackMatchesPeriodMinusArrival) {
  const auto d = inv_chain_design(16);
  const auto flat = netlist::flatten(d, "chain");
  sta::StaEngine eng(flat, lib());
  sta::StaOptions opt;
  opt.clock_period_ps = 2000.0;
  const auto rep = eng.analyze(opt);
  EXPECT_TRUE(rep.met());
  // Tighten to just below the minimum period: must now fail.
  opt.clock_period_ps = rep.min_period_ps - 1.0;
  const auto rep2 = eng.analyze(opt);
  EXPECT_FALSE(rep2.met());
  EXPECT_NEAR(rep2.wns_ps, -1.0, 0.2);
  EXPECT_LT(rep2.tns_ps, 0.0);
}

TEST(Sta, VoltageScalingMatchesTechModel) {
  const auto d = inv_chain_design(16);
  const auto flat = netlist::flatten(d, "chain");
  sta::StaEngine eng(flat, lib());
  sta::StaOptions opt;
  const double p09 = eng.analyze(opt).min_period_ps;
  opt.vdd = 1.2;
  const double p12 = eng.analyze(opt).min_period_ps;
  opt.vdd = 0.7;
  const double p07 = eng.analyze(opt).min_period_ps;
  const tech::TechNode t = tech::make_default_40nm();
  EXPECT_NEAR(p12 / p09, t.delay_scale(1.2), 0.02);
  EXPECT_NEAR(p07 / p09, t.delay_scale(0.7), 0.02);
  opt.vdd = 0.4;
  EXPECT_THROW((void)eng.analyze(opt), std::invalid_argument);
}

TEST(Sta, CriticalPathTraceIsOrdered) {
  const auto d = inv_chain_design(12);
  const auto flat = netlist::flatten(d, "chain");
  sta::StaEngine eng(flat, lib());
  const auto rep = eng.analyze({});
  ASSERT_GE(rep.critical.stages.size(), 12u);
  for (std::size_t i = 1; i < rep.critical.stages.size(); ++i) {
    EXPECT_GE(rep.critical.stages[i].arrival_ps,
              rep.critical.stages[i - 1].arrival_ps);
  }
  EXPECT_NE(rep.critical.endpoint.find("DFF"), std::string::npos);
}

TEST(Sta, WireModelLoadIncreasesDelay) {
  const auto d = inv_chain_design(8);
  const auto flat = netlist::flatten(d, "chain");
  sta::StaEngine eng(flat, lib());
  sta::StaOptions opt;
  opt.wire.cap_per_fanout_ff = 0.0;
  const double light = eng.analyze(opt).min_period_ps;
  opt.wire.cap_per_fanout_ff = 5.0;
  const double heavy = eng.analyze(opt).min_period_ps;
  EXPECT_GT(heavy, light * 1.2);
}

TEST(Sta, CombinationalLoopDetected) {
  netlist::Design d;
  netlist::Module m("loop");
  const auto a = m.add_net("a");
  const auto b = m.add_net("b");
  m.add_cell("i0", "INVX1", {{"A", a}, {"Y", b}});
  m.add_cell("i1", "INVX1", {{"A", b}, {"Y", a}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "loop");
  EXPECT_THROW((sta::StaEngine{flat, lib()}), std::invalid_argument);
}

TEST(Sta, MultipleDriversRejected) {
  netlist::Design d;
  netlist::Module m("bad");
  const auto a = m.add_port("a", PortDir::kIn);
  const auto y = m.add_port("y", PortDir::kOut);
  m.add_cell("i0", "INVX1", {{"A", a}, {"Y", y}});
  m.add_cell("i1", "INVX1", {{"A", a}, {"Y", y}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "bad");
  EXPECT_THROW((sta::StaEngine{flat, lib()}), std::invalid_argument);
}

TEST(Sta, MacroPathGroupsAndWriteDomain) {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 2;
  cfg.input_bits = {4};
  cfg.weight_bits = {4};
  const auto md = rtlgen::gen_macro(cfg);
  const auto flat = netlist::flatten(md.design, md.top);
  sta::StaEngine eng(flat, lib());
  sta::StaOptions opt;
  opt.clock_period_ps = units::period_ps_from_mhz(200.0);  // loose
  const auto rep = eng.analyze(opt);
  EXPECT_TRUE(rep.met());
  EXPECT_GT(rep.min_period_ps, 0.0);
  EXPECT_GT(rep.min_write_period_ps, 0.0);
  // Write path (drivers + bitline) is much shorter than the MAC path.
  EXPECT_LT(rep.min_write_period_ps, rep.min_period_ps);
  // Groups present: column groups and wldrv/ofu endpoints exist.
  bool has_col = false, has_ofu = false;
  for (const auto& g : rep.groups) {
    if (g.group.rfind("col", 0) == 0) has_col = true;
    if (g.group.rfind("ofu_g", 0) == 0) has_ofu = true;
  }
  EXPECT_TRUE(has_col);
  EXPECT_TRUE(has_ofu);
}

TEST(Sta, FasterAdderMixShortensMacPath) {
  auto min_period = [&](double fa_fraction, bool reorder) {
    rtlgen::AdderTreeConfig cfg;
    cfg.rows = 64;
    cfg.style = rtlgen::AdderTreeStyle::kMixed;
    cfg.fa_fraction = fa_fraction;
    cfg.carry_reorder = reorder;
    netlist::Design d;
    d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));
    const auto flat = netlist::flatten(d, "tree");
    sta::StaEngine eng(flat, lib());
    return eng.analyze({}).min_period_ps;
  };
  // The paper's claim: replacing compressors with FAs shortens the
  // critical path, and carry reordering helps further.
  EXPECT_LT(min_period(1.0, true), min_period(0.0, true));
  EXPECT_LE(min_period(0.0, true), min_period(0.0, false) * 1.02);
}

TEST(Sta, RcaTreeSlowerThanCompressorTree) {
  auto tree_period = [&](rtlgen::AdderTreeStyle style) {
    rtlgen::AdderTreeConfig cfg;
    cfg.rows = 64;
    cfg.style = style;
    netlist::Design d;
    d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));
    const auto flat = netlist::flatten(d, "tree");
    sta::StaEngine eng(flat, lib());
    return eng.analyze({}).min_period_ps;
  };
  EXPECT_GT(tree_period(rtlgen::AdderTreeStyle::kRcaTree),
            tree_period(rtlgen::AdderTreeStyle::kCompressor));
}

TEST(Sta, RetimedCpaShortensTreeStage) {
  // tt2: with the CPA pushed into the S&A, the column group's worst
  // register-endpoint arrival (the MAC path) gets shorter; the OFU path is
  // unaffected, so compare the column group specifically.
  auto col_group_arrival = [&](bool retime) {
    rtlgen::MacroConfig cfg;
    cfg.rows = 64;
    cfg.cols = 8;
    cfg.mcr = 1;
    cfg.input_bits = {4};
    cfg.weight_bits = {4};
    cfg.pipe.reg_after_tree = true;
    cfg.pipe.retime_tree_cpa = retime;
    const auto md = rtlgen::gen_macro(cfg);
    const auto flat = netlist::flatten(md.design, md.top);
    sta::StaEngine eng(flat, lib());
    const auto rep = eng.analyze({});
    for (const auto& g : rep.groups) {
      if (g.group == "col0") return g.worst_arrival_ps;
    }
    ADD_FAILURE() << "no col0 group";
    return 0.0;
  };
  EXPECT_LT(col_group_arrival(true), col_group_arrival(false));
}

}  // namespace

namespace {
using namespace syndcim;
using netlist::PortDir;

const cell::Library& fix_lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

/// Flat net id by name; accepts hierarchical "<inst>.<name>" suffixes.
std::uint32_t find_net(const netlist::FlatNetlist& flat,
                       std::string_view name) {
  for (std::uint32_t n = 0; n < flat.net_count(); ++n) {
    const std::string& nn = flat.net_name(n);
    if (nn == name) return n;
    if (nn.size() > name.size() + 1 &&
        nn.compare(nn.size() - name.size(), name.size(), name) == 0) {
      const char sep = nn[nn.size() - name.size() - 1];
      if (sep == '.' || sep == '/') return n;
    }
  }
  ADD_FAILURE() << "net not found: " << name;
  return 0;
}

/// Reconvergent two-arc fixture: a long chain of strong inverters (late
/// arrival, clean slew) and a single weak inverter driving `nb` (early
/// arrival, degraded slew when `nb` is loaded) merge at one NAND whose
/// output feeds a short chain into the capture register.
struct TwoArcFixture {
  netlist::Design d;
  explicit TwoArcFixture(int chain_len) {
    netlist::Module m("slewfix");
    rtlgen::GateBuilder gb(m, "g_");
    const auto clk = m.add_port("clk", PortDir::kIn);
    const auto in = m.add_port("in", PortDir::kIn);
    const auto x = gb.dff(in, clk);
    netlist::NetId na = x;
    for (int i = 0; i < chain_len; ++i) na = gb.inv(na);
    const auto nb = m.add_net("nb");
    m.add_cell("weak", "INVX1", {{"A", x}, {"Y", nb}});
    const auto y = m.add_net("y");
    m.add_cell("merge", "NAND2X1", {{"A", na}, {"B", nb}, {"Y", y}});
    netlist::NetId t = y;
    for (int i = 0; i < 3; ++i) t = gb.inv(t);
    const auto q = gb.dff(t, clk);
    const auto out = m.add_port("out", PortDir::kOut);
    m.add_cell("obuf", "BUFX1", {{"A", q}, {"Y", out}});
    d.add_module(std::move(m));
  }
};

TEST(StaBugfix, WorstSlewPropagatesFromLosingArc) {
  const TwoArcFixture fx(12);
  const auto flat = netlist::flatten(fx.d, "slewfix");
  sta::StaEngine eng(flat, fix_lib());
  const std::uint32_t nb = find_net(flat, "nb");
  auto analyze_with_cap = [&](double cap_ff) {
    sta::StaOptions opt;
    opt.wire.per_net_cap_ff.assign(flat.net_count(), -1.0);
    opt.wire.per_net_cap_ff[nb] = cap_ff;
    return eng.analyze(opt);
  };
  const auto light = analyze_with_cap(0.0);
  const auto heavy = analyze_with_cap(25.0);
  // Guard: the arrival race into the NAND is still won by the long chain
  // in both runs (the critical path threads every chain stage), so the
  // extra load only degraded the slew of the *losing* arc.
  ASSERT_GE(light.critical.stages.size(), 14u);
  ASSERT_GE(heavy.critical.stages.size(), 14u);
  // Worst-case slew must propagate independently of the arrival winner:
  // loading the loser's net slows everything downstream of the NAND.
  EXPECT_GT(heavy.min_period_ps, light.min_period_ps + 0.5);
}

/// Config-mux fixture: `mode` is a static configuration input feeding a
/// config register (in its own depth-1 group) and, through two buffers, a
/// data-mux select. The only switching paths are the register feedback
/// loop and its output buffer.
struct ConfigMuxFixture {
  netlist::Design d;
  ConfigMuxFixture() {
    {
      netlist::Module sub("cfgblk");
      const auto mode_in = sub.add_port("mode_in", PortDir::kIn);
      const auto clk_in = sub.add_port("clk_in", PortDir::kIn);
      const auto q_out = sub.add_port("q_out", PortDir::kOut);
      sub.add_cell("cfg_ff", "DFFX1",
                   {{"D", mode_in}, {"CK", clk_in}, {"Q", q_out}});
      d.add_module(std::move(sub));
    }
    netlist::Module m("top");
    rtlgen::GateBuilder gb(m, "g_");
    const auto clk = m.add_port("clk", PortDir::kIn);
    const auto mode = m.add_port("mode", PortDir::kIn);
    const auto out = m.add_port("out", PortDir::kOut);
    const auto cfgq = m.add_net("cfgq");
    m.add_submodule("u_cfg", "cfgblk",
                    {{"mode_in", mode}, {"clk_in", clk}, {"q_out", cfgq}});
    const auto selb1 = m.add_net("selb1");
    m.add_cell("sb1", "BUFX1", {{"A", mode}, {"Y", selb1}});
    const auto selb2 = m.add_net("selb2");
    m.add_cell("sb2", "BUFX1", {{"A", selb1}, {"Y", selb2}});
    const auto r = m.add_net("r");
    const auto rb = gb.inv(r);
    const auto mx = gb.mux2(r, rb, selb2);
    m.add_cell("ff_r", "DFFX1", {{"D", mx}, {"CK", clk}, {"Q", r}});
    m.add_cell("ob", "BUFX1", {{"A", r}, {"Y", out}});
    d.add_module(std::move(m));
  }
};

TEST(StaBugfix, StaticInputCaseAnalysisPropagates) {
  const ConfigMuxFixture fx;
  const auto flat = netlist::flatten(fx.d, "top");
  sta::StaEngine eng(flat, fix_lib());
  sta::StaOptions opt;
  opt.clock_period_ps = 10000.0;
  opt.input_delay_ps = 3000.0;
  opt.static_inputs = {"mode"};
  const auto rep = eng.analyze(opt);
  // The config register's D pin sits directly on the static input: with
  // case analysis applied it is not a timed endpoint, so its group has no
  // finite slack and the (huge) input delay never reaches min_period.
  EXPECT_TRUE(std::isinf(rep.group_wns("u_cfg")));
  EXPECT_LT(rep.min_period_ps, 1000.0);
  EXPECT_GT(rep.min_period_ps, 0.0);
  // The untimed mask propagates through the select buffers: loading a
  // dead select net cannot move timing (no dead-arc slew injection).
  sta::StaOptions optc = opt;
  optc.wire.per_net_cap_ff.assign(flat.net_count(), -1.0);
  optc.wire.per_net_cap_ff[find_net(flat, "selb1")] = 80.0;
  const auto repc = eng.analyze(optc);
  EXPECT_DOUBLE_EQ(repc.min_period_ps, rep.min_period_ps);
  EXPECT_DOUBLE_EQ(repc.wns_ps, rep.wns_ps);
  // Without case analysis the same fixture times the config paths.
  sta::StaOptions optn = opt;
  optn.static_inputs.clear();
  const auto repn = eng.analyze(optn);
  EXPECT_FALSE(std::isinf(repn.group_wns("u_cfg")));
  EXPECT_GT(repn.min_period_ps, 3000.0);
}

}  // namespace

namespace {
using namespace syndcim;

rtlgen::MacroConfig golden_cfg(int variant) {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 2;
  cfg.input_bits = {2, 4};
  cfg.weight_bits = {2, 4};
  cfg.fp_formats = {};
  if (variant == 1) {
    cfg.mux = rtlgen::MuxStyle::kOai22Fused;
  } else if (variant == 2) {
    cfg.tree.style = rtlgen::AdderTreeStyle::kCompressor;
  }
  return cfg;
}

/// Exact (bitwise, via operator==) comparison of two timing reports.
void expect_report_equal(const sta::TimingReport& a,
                         const sta::TimingReport& b) {
  EXPECT_EQ(a.wns_ps, b.wns_ps);
  EXPECT_EQ(a.tns_ps, b.tns_ps);
  EXPECT_EQ(a.min_period_ps, b.min_period_ps);
  EXPECT_EQ(a.fmax_mhz, b.fmax_mhz);
  EXPECT_EQ(a.min_write_period_ps, b.min_write_period_ps);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].group, b.groups[i].group);
    EXPECT_EQ(a.groups[i].wns_ps, b.groups[i].wns_ps);
    EXPECT_EQ(a.groups[i].worst_arrival_ps, b.groups[i].worst_arrival_ps);
  }
  ASSERT_EQ(a.interfaces.size(), b.interfaces.size());
  for (std::size_t i = 0; i < a.interfaces.size(); ++i) {
    const auto& ga = a.interfaces[i];
    const auto& gb = b.interfaces[i];
    EXPECT_EQ(ga.group, gb.group);
    ASSERT_EQ(ga.inputs.size(), gb.inputs.size());
    ASSERT_EQ(ga.outputs.size(), gb.outputs.size());
    for (std::size_t j = 0; j < ga.inputs.size(); ++j) {
      EXPECT_EQ(ga.inputs[j].net, gb.inputs[j].net);
      EXPECT_EQ(ga.inputs[j].arrival_ps, gb.inputs[j].arrival_ps);
      EXPECT_EQ(ga.inputs[j].slew_ps, gb.inputs[j].slew_ps);
    }
    for (std::size_t j = 0; j < ga.outputs.size(); ++j) {
      EXPECT_EQ(ga.outputs[j].net, gb.outputs[j].net);
      EXPECT_EQ(ga.outputs[j].arrival_ps, gb.outputs[j].arrival_ps);
      EXPECT_EQ(ga.outputs[j].slew_ps, gb.outputs[j].slew_ps);
    }
  }
  EXPECT_EQ(a.critical.arrival_ps, b.critical.arrival_ps);
  EXPECT_EQ(a.critical.required_ps, b.critical.required_ps);
  EXPECT_EQ(a.critical.endpoint, b.critical.endpoint);
  ASSERT_EQ(a.critical.stages.size(), b.critical.stages.size());
  for (std::size_t i = 0; i < a.critical.stages.size(); ++i) {
    EXPECT_EQ(a.critical.stages[i].master, b.critical.stages[i].master);
    EXPECT_EQ(a.critical.stages[i].group, b.critical.stages[i].group);
    EXPECT_EQ(a.critical.stages[i].arrival_ps,
              b.critical.stages[i].arrival_ps);
  }
}

TEST(KernelGolden, StaSoaMatchesScalarBitForBit) {
  for (int variant = 0; variant < 3; ++variant) {
    SCOPED_TRACE(variant);
    const auto md = rtlgen::gen_macro(golden_cfg(variant));
    const auto flat = netlist::flatten(md.design, md.top);
    sta::StaEngine eng(flat, lib());
    sta::StaOptions opt;
    opt.collect_group_interfaces = true;
    opt.input_delay_ps = 120.0;
    opt.vdd = 1.0;
    // Mixed wire model: fanout estimate plus scattered back-annotations,
    // so both the fanout path and the per-net override path are covered.
    opt.wire.per_net_cap_ff.assign(flat.net_count(), -1.0);
    for (std::uint32_t n = 0; n < flat.net_count(); n += 7) {
      opt.wire.per_net_cap_ff[n] = 0.125 * (n % 5);
    }
    opt.kernel = sta::StaKernel::kSoa;
    const auto soa = eng.analyze(opt);
    opt.kernel = sta::StaKernel::kScalar;
    const auto scalar = eng.analyze(opt);
    expect_report_equal(soa, scalar);
    EXPECT_GT(soa.min_period_ps, 0.0);

    // Monte-Carlo corners reuse the same kernels under per-gate derates.
    opt.kernel = sta::StaKernel::kSoa;
    const auto var_soa = eng.analyze_variation(opt, 0.05, 0.03, 8, 11);
    opt.kernel = sta::StaKernel::kScalar;
    const auto var_scalar = eng.analyze_variation(opt, 0.05, 0.03, 8, 11);
    EXPECT_EQ(var_soa.fmax_samples_mhz, var_scalar.fmax_samples_mhz);
  }
}

TEST(StaVariation, DistributionAndYield) {
  netlist::Design d;
  {
    netlist::Module m("chain");
    rtlgen::GateBuilder gb(m, "g_");
    const auto clk = m.add_port("clk", netlist::PortDir::kIn);
    const auto in = m.add_port("in", netlist::PortDir::kIn);
    netlist::NetId x = gb.dff(in, clk);
    for (int i = 0; i < 24; ++i) x = gb.inv(x);
    const auto q = gb.dff(x, clk);
    const auto out = m.add_port("out", netlist::PortDir::kOut);
    m.add_cell("obuf", "BUFX1", {{"A", q}, {"Y", out}});
    d.add_module(std::move(m));
  }
  const auto flat = netlist::flatten(d, "chain");
  const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  sta::StaEngine eng(flat, l);
  const double nominal = eng.analyze({}).fmax_mhz;
  const auto var = eng.analyze_variation({}, 0.05, 0.03, 80, 7);
  ASSERT_EQ(var.fmax_samples_mhz.size(), 80u);
  // Mean near nominal, nonzero spread, sensible yield curve.
  EXPECT_NEAR(var.mean_fmax_mhz, nominal, 0.15 * nominal);
  EXPECT_GT(var.sigma_fmax_mhz, 0.0);
  EXPECT_LT(var.sigma_fmax_mhz, 0.2 * nominal);
  EXPECT_DOUBLE_EQ(var.yield_at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(var.yield_at(1e9), 0.0);
  EXPECT_GE(var.yield_at(0.8 * nominal), var.yield_at(1.1 * nominal));
  // Deterministic for a fixed seed.
  const auto var2 = eng.analyze_variation({}, 0.05, 0.03, 80, 7);
  EXPECT_EQ(var.fmax_samples_mhz, var2.fmax_samples_mhz);
  // Larger sigma widens the distribution.
  const auto wide = eng.analyze_variation({}, 0.15, 0.08, 80, 7);
  EXPECT_GT(wide.sigma_fmax_mhz, var.sigma_fmax_mhz);
  EXPECT_THROW((void)eng.analyze_variation({}, -0.1, 0.0, 10),
               std::invalid_argument);
  EXPECT_THROW((void)eng.analyze_variation({}, 0.1, 0.0, 0),
               std::invalid_argument);
}

}  // namespace

#include <gtest/gtest.h>

#include "cell/characterize.hpp"
#include "netlist/design.hpp"
#include "netlist/flatten.hpp"
#include "rtlgen/adder_tree.hpp"
#include "rtlgen/gates.hpp"
#include "rtlgen/macro.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"
#include "tech/units.hpp"

namespace {
using namespace syndcim;
using netlist::PortDir;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

/// in -> INV chain (n stages) -> DFF -> out, all clocked.
netlist::Design inv_chain_design(int n) {
  netlist::Design d;
  netlist::Module m("chain");
  rtlgen::GateBuilder gb(m, "g_");
  const auto clk = m.add_port("clk", PortDir::kIn);
  const auto in = m.add_port("in", PortDir::kIn);
  netlist::NetId x = gb.dff(in, clk);  // launch register
  for (int i = 0; i < n; ++i) x = gb.inv(x);
  const auto q = gb.dff(x, clk);  // capture register
  const auto out = m.add_port("out", PortDir::kOut);
  m.add_cell("obuf", "BUFX1", {{"A", q}, {"Y", out}});
  d.add_module(std::move(m));
  return d;
}

TEST(Sta, LongerChainsHaveLongerPaths) {
  double prev = 0.0;
  for (const int n : {2, 8, 32}) {
    const auto d = inv_chain_design(n);
    const auto flat = netlist::flatten(d, "chain");
    sta::StaEngine eng(flat, lib());
    const auto rep = eng.analyze({});
    EXPECT_GT(rep.min_period_ps, prev) << n;
    prev = rep.min_period_ps;
  }
}

TEST(Sta, SlackMatchesPeriodMinusArrival) {
  const auto d = inv_chain_design(16);
  const auto flat = netlist::flatten(d, "chain");
  sta::StaEngine eng(flat, lib());
  sta::StaOptions opt;
  opt.clock_period_ps = 2000.0;
  const auto rep = eng.analyze(opt);
  EXPECT_TRUE(rep.met());
  // Tighten to just below the minimum period: must now fail.
  opt.clock_period_ps = rep.min_period_ps - 1.0;
  const auto rep2 = eng.analyze(opt);
  EXPECT_FALSE(rep2.met());
  EXPECT_NEAR(rep2.wns_ps, -1.0, 0.2);
  EXPECT_LT(rep2.tns_ps, 0.0);
}

TEST(Sta, VoltageScalingMatchesTechModel) {
  const auto d = inv_chain_design(16);
  const auto flat = netlist::flatten(d, "chain");
  sta::StaEngine eng(flat, lib());
  sta::StaOptions opt;
  const double p09 = eng.analyze(opt).min_period_ps;
  opt.vdd = 1.2;
  const double p12 = eng.analyze(opt).min_period_ps;
  opt.vdd = 0.7;
  const double p07 = eng.analyze(opt).min_period_ps;
  const tech::TechNode t = tech::make_default_40nm();
  EXPECT_NEAR(p12 / p09, t.delay_scale(1.2), 0.02);
  EXPECT_NEAR(p07 / p09, t.delay_scale(0.7), 0.02);
  opt.vdd = 0.4;
  EXPECT_THROW((void)eng.analyze(opt), std::invalid_argument);
}

TEST(Sta, CriticalPathTraceIsOrdered) {
  const auto d = inv_chain_design(12);
  const auto flat = netlist::flatten(d, "chain");
  sta::StaEngine eng(flat, lib());
  const auto rep = eng.analyze({});
  ASSERT_GE(rep.critical.stages.size(), 12u);
  for (std::size_t i = 1; i < rep.critical.stages.size(); ++i) {
    EXPECT_GE(rep.critical.stages[i].arrival_ps,
              rep.critical.stages[i - 1].arrival_ps);
  }
  EXPECT_NE(rep.critical.endpoint.find("DFF"), std::string::npos);
}

TEST(Sta, WireModelLoadIncreasesDelay) {
  const auto d = inv_chain_design(8);
  const auto flat = netlist::flatten(d, "chain");
  sta::StaEngine eng(flat, lib());
  sta::StaOptions opt;
  opt.wire.cap_per_fanout_ff = 0.0;
  const double light = eng.analyze(opt).min_period_ps;
  opt.wire.cap_per_fanout_ff = 5.0;
  const double heavy = eng.analyze(opt).min_period_ps;
  EXPECT_GT(heavy, light * 1.2);
}

TEST(Sta, CombinationalLoopDetected) {
  netlist::Design d;
  netlist::Module m("loop");
  const auto a = m.add_net("a");
  const auto b = m.add_net("b");
  m.add_cell("i0", "INVX1", {{"A", a}, {"Y", b}});
  m.add_cell("i1", "INVX1", {{"A", b}, {"Y", a}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "loop");
  EXPECT_THROW((sta::StaEngine{flat, lib()}), std::invalid_argument);
}

TEST(Sta, MultipleDriversRejected) {
  netlist::Design d;
  netlist::Module m("bad");
  const auto a = m.add_port("a", PortDir::kIn);
  const auto y = m.add_port("y", PortDir::kOut);
  m.add_cell("i0", "INVX1", {{"A", a}, {"Y", y}});
  m.add_cell("i1", "INVX1", {{"A", a}, {"Y", y}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "bad");
  EXPECT_THROW((sta::StaEngine{flat, lib()}), std::invalid_argument);
}

TEST(Sta, MacroPathGroupsAndWriteDomain) {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 2;
  cfg.input_bits = {4};
  cfg.weight_bits = {4};
  const auto md = rtlgen::gen_macro(cfg);
  const auto flat = netlist::flatten(md.design, md.top);
  sta::StaEngine eng(flat, lib());
  sta::StaOptions opt;
  opt.clock_period_ps = units::period_ps_from_mhz(200.0);  // loose
  const auto rep = eng.analyze(opt);
  EXPECT_TRUE(rep.met());
  EXPECT_GT(rep.min_period_ps, 0.0);
  EXPECT_GT(rep.min_write_period_ps, 0.0);
  // Write path (drivers + bitline) is much shorter than the MAC path.
  EXPECT_LT(rep.min_write_period_ps, rep.min_period_ps);
  // Groups present: column groups and wldrv/ofu endpoints exist.
  bool has_col = false, has_ofu = false;
  for (const auto& g : rep.groups) {
    if (g.group.rfind("col", 0) == 0) has_col = true;
    if (g.group.rfind("ofu_g", 0) == 0) has_ofu = true;
  }
  EXPECT_TRUE(has_col);
  EXPECT_TRUE(has_ofu);
}

TEST(Sta, FasterAdderMixShortensMacPath) {
  auto min_period = [&](double fa_fraction, bool reorder) {
    rtlgen::AdderTreeConfig cfg;
    cfg.rows = 64;
    cfg.style = rtlgen::AdderTreeStyle::kMixed;
    cfg.fa_fraction = fa_fraction;
    cfg.carry_reorder = reorder;
    netlist::Design d;
    d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));
    const auto flat = netlist::flatten(d, "tree");
    sta::StaEngine eng(flat, lib());
    return eng.analyze({}).min_period_ps;
  };
  // The paper's claim: replacing compressors with FAs shortens the
  // critical path, and carry reordering helps further.
  EXPECT_LT(min_period(1.0, true), min_period(0.0, true));
  EXPECT_LE(min_period(0.0, true), min_period(0.0, false) * 1.02);
}

TEST(Sta, RcaTreeSlowerThanCompressorTree) {
  auto tree_period = [&](rtlgen::AdderTreeStyle style) {
    rtlgen::AdderTreeConfig cfg;
    cfg.rows = 64;
    cfg.style = style;
    netlist::Design d;
    d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));
    const auto flat = netlist::flatten(d, "tree");
    sta::StaEngine eng(flat, lib());
    return eng.analyze({}).min_period_ps;
  };
  EXPECT_GT(tree_period(rtlgen::AdderTreeStyle::kRcaTree),
            tree_period(rtlgen::AdderTreeStyle::kCompressor));
}

TEST(Sta, RetimedCpaShortensTreeStage) {
  // tt2: with the CPA pushed into the S&A, the column group's worst
  // register-endpoint arrival (the MAC path) gets shorter; the OFU path is
  // unaffected, so compare the column group specifically.
  auto col_group_arrival = [&](bool retime) {
    rtlgen::MacroConfig cfg;
    cfg.rows = 64;
    cfg.cols = 8;
    cfg.mcr = 1;
    cfg.input_bits = {4};
    cfg.weight_bits = {4};
    cfg.pipe.reg_after_tree = true;
    cfg.pipe.retime_tree_cpa = retime;
    const auto md = rtlgen::gen_macro(cfg);
    const auto flat = netlist::flatten(md.design, md.top);
    sta::StaEngine eng(flat, lib());
    const auto rep = eng.analyze({});
    for (const auto& g : rep.groups) {
      if (g.group == "col0") return g.worst_arrival_ps;
    }
    ADD_FAILURE() << "no col0 group";
    return 0.0;
  };
  EXPECT_LT(col_group_arrival(true), col_group_arrival(false));
}

}  // namespace

namespace {
using namespace syndcim;

TEST(StaVariation, DistributionAndYield) {
  netlist::Design d;
  {
    netlist::Module m("chain");
    rtlgen::GateBuilder gb(m, "g_");
    const auto clk = m.add_port("clk", netlist::PortDir::kIn);
    const auto in = m.add_port("in", netlist::PortDir::kIn);
    netlist::NetId x = gb.dff(in, clk);
    for (int i = 0; i < 24; ++i) x = gb.inv(x);
    const auto q = gb.dff(x, clk);
    const auto out = m.add_port("out", netlist::PortDir::kOut);
    m.add_cell("obuf", "BUFX1", {{"A", q}, {"Y", out}});
    d.add_module(std::move(m));
  }
  const auto flat = netlist::flatten(d, "chain");
  const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  sta::StaEngine eng(flat, l);
  const double nominal = eng.analyze({}).fmax_mhz;
  const auto var = eng.analyze_variation({}, 0.05, 0.03, 80, 7);
  ASSERT_EQ(var.fmax_samples_mhz.size(), 80u);
  // Mean near nominal, nonzero spread, sensible yield curve.
  EXPECT_NEAR(var.mean_fmax_mhz, nominal, 0.15 * nominal);
  EXPECT_GT(var.sigma_fmax_mhz, 0.0);
  EXPECT_LT(var.sigma_fmax_mhz, 0.2 * nominal);
  EXPECT_DOUBLE_EQ(var.yield_at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(var.yield_at(1e9), 0.0);
  EXPECT_GE(var.yield_at(0.8 * nominal), var.yield_at(1.1 * nominal));
  // Deterministic for a fixed seed.
  const auto var2 = eng.analyze_variation({}, 0.05, 0.03, 80, 7);
  EXPECT_EQ(var.fmax_samples_mhz, var2.fmax_samples_mhz);
  // Larger sigma widens the distribution.
  const auto wide = eng.analyze_variation({}, 0.15, 0.08, 80, 7);
  EXPECT_GT(wide.sigma_fmax_mhz, var.sigma_fmax_mhz);
  EXPECT_THROW((void)eng.analyze_variation({}, -0.1, 0.0, 10),
               std::invalid_argument);
  EXPECT_THROW((void)eng.analyze_variation({}, 0.1, 0.0, 0),
               std::invalid_argument);
}

}  // namespace

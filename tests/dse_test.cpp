// Unit + determinism tests of the src/dse subsystem: config/spec hashing,
// evaluation-cache accounting and persistence, the work-stealing pool,
// and search/sweep reproducibility across runs and thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cell/characterize.hpp"
#include "core/searcher.hpp"
#include "dse/eval_cache.hpp"
#include "dse/pool.hpp"
#include "dse/sweep.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

const cell::Library& test_library() {
  static const cell::Library lib =
      cell::characterize_default_library(tech::make_default_40nm());
  return lib;
}

core::PerfSpec small_spec() {
  core::PerfSpec spec;
  spec.rows = 32;
  spec.cols = 32;
  spec.mcr = 2;
  spec.input_bits = {4};
  spec.weight_bits = {4};
  spec.mac_freq_mhz = 300.0;
  spec.wupdate_freq_mhz = 300.0;
  return spec;
}

void expect_same_points(const std::vector<core::DesignPoint>& a,
                        const std::vector<core::DesignPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << "point " << i;
    EXPECT_EQ(a[i].applied, b[i].applied) << "point " << i;
    EXPECT_EQ(a[i].feasible, b[i].feasible) << "point " << i;
    EXPECT_EQ(a[i].ppa.power_uw, b[i].ppa.power_uw) << "point " << i;
    EXPECT_EQ(a[i].ppa.area_um2, b[i].ppa.area_um2) << "point " << i;
    EXPECT_EQ(a[i].ppa.fmax_mhz, b[i].ppa.fmax_mhz) << "point " << i;
    EXPECT_EQ(dse::hash_config(a[i].cfg), dse::hash_config(b[i].cfg))
        << "point " << i;
  }
}

/// Deterministic synthetic backend: derives an outcome from the config
/// hash and counts invocations (to observe memoization).
class CountingBackend final : public core::EvalBackend {
 public:
  core::EvalOutcome evaluate(const rtlgen::MacroConfig& cfg,
                             const core::PerfSpec& spec) override {
    calls.fetch_add(1, std::memory_order_relaxed);
    const double h =
        static_cast<double>(dse::hash_config(cfg) % 100000u) + spec.vdd;
    core::EvalOutcome o;
    o.ppa.power_uw = h;
    o.ppa.area_um2 = h * 2.0;
    o.ppa.fmax_mhz = spec.mac_freq_mhz + 100.0;
    o.timing.mac_ok = o.timing.ofu_ok = o.timing.write_ok = true;
    return o;
  }
  std::atomic<int> calls{0};
};

}  // namespace

TEST(ConfigHash, EqualConfigsHashEqual) {
  const core::PerfSpec spec = small_spec();
  const rtlgen::MacroConfig a = spec.base_config();
  const rtlgen::MacroConfig b = spec.base_config();
  EXPECT_EQ(dse::canonical_config_key(a), dse::canonical_config_key(b));
  EXPECT_EQ(dse::hash_config(a), dse::hash_config(b));
}

TEST(ConfigHash, EveryFieldFlipChangesHash) {
  const rtlgen::MacroConfig base = small_spec().base_config();
  using Mutator = void (*)(rtlgen::MacroConfig&);
  const std::vector<std::pair<const char*, Mutator>> mutators = {
      {"rows", [](rtlgen::MacroConfig& c) { c.rows *= 2; }},
      {"cols", [](rtlgen::MacroConfig& c) { c.cols *= 2; }},
      {"mcr", [](rtlgen::MacroConfig& c) { c.mcr += 1; }},
      {"input_bits", [](rtlgen::MacroConfig& c) { c.input_bits = {8}; }},
      {"weight_bits", [](rtlgen::MacroConfig& c) { c.weight_bits = {8}; }},
      {"fp_formats",
       [](rtlgen::MacroConfig& c) { c.fp_formats = {num::kFp8}; }},
      {"fp_guard_bits", [](rtlgen::MacroConfig& c) { c.fp_guard_bits++; }},
      {"bitcell",
       [](rtlgen::MacroConfig& c) { c.bitcell = rtlgen::BitcellKind::k8T; }},
      {"mux",
       [](rtlgen::MacroConfig& c) {
         c.mux = rtlgen::MuxStyle::kPassGate1T;
       }},
      {"tree.style",
       [](rtlgen::MacroConfig& c) {
         c.tree.style = rtlgen::AdderTreeStyle::kRcaTree;
       }},
      {"tree.fa_fraction",
       [](rtlgen::MacroConfig& c) { c.tree.fa_fraction += 0.25; }},
      {"tree.carry_reorder",
       [](rtlgen::MacroConfig& c) {
         c.tree.carry_reorder = !c.tree.carry_reorder;
       }},
      {"tree.external_cpa",
       [](rtlgen::MacroConfig& c) {
         c.tree.external_cpa = !c.tree.external_cpa;
       }},
      {"pipe.reg_after_tree",
       [](rtlgen::MacroConfig& c) {
         c.pipe.reg_after_tree = !c.pipe.reg_after_tree;
       }},
      {"pipe.retime_tree_cpa",
       [](rtlgen::MacroConfig& c) {
         c.pipe.retime_tree_cpa = !c.pipe.retime_tree_cpa;
       }},
      {"ofu.input_reg",
       [](rtlgen::MacroConfig& c) { c.ofu.input_reg = !c.ofu.input_reg; }},
      {"ofu.pipeline_regs",
       [](rtlgen::MacroConfig& c) { c.ofu.pipeline_regs++; }},
      {"ofu.retime_stage1",
       [](rtlgen::MacroConfig& c) {
         c.ofu.retime_stage1 = !c.ofu.retime_stage1;
       }},
      {"column_split", [](rtlgen::MacroConfig& c) { c.column_split *= 2; }},
  };
  for (const auto& [name, mutate] : mutators) {
    rtlgen::MacroConfig m = base;
    mutate(m);
    EXPECT_NE(dse::hash_config(base), dse::hash_config(m))
        << "flipping " << name << " must change the hash";
  }
}

TEST(ConfigHash, SpecKnobsCoverTimingButNotPreference) {
  const core::PerfSpec base = small_spec();
  core::PerfSpec pref = base;
  pref.pref.power = 99.0;  // selection-only: must share cache entries
  EXPECT_EQ(dse::hash_spec_knobs(base), dse::hash_spec_knobs(pref));

  core::PerfSpec freq = base;
  freq.mac_freq_mhz += 50.0;
  EXPECT_NE(dse::hash_spec_knobs(base), dse::hash_spec_knobs(freq));
  core::PerfSpec wfreq = base;
  wfreq.wupdate_freq_mhz += 50.0;
  EXPECT_NE(dse::hash_spec_knobs(base), dse::hash_spec_knobs(wfreq));
  core::PerfSpec vdd = base;
  vdd.vdd += 0.1;
  EXPECT_NE(dse::hash_spec_knobs(base), dse::hash_spec_knobs(vdd));
  core::PerfSpec margin = base;
  margin.timing_margin += 0.05;
  EXPECT_NE(dse::hash_spec_knobs(base), dse::hash_spec_knobs(margin));
}

TEST(EvalCache, HitMissAccounting) {
  CountingBackend inner;
  dse::EvalCache cache;
  dse::CachedEvalBackend cached(inner, cache);
  const core::PerfSpec spec = small_spec();
  const rtlgen::MacroConfig cfg = spec.base_config();

  const core::EvalOutcome first = cached.evaluate(cfg, spec);
  EXPECT_EQ(inner.calls.load(), 1);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  const core::EvalOutcome second = cached.evaluate(cfg, spec);
  EXPECT_EQ(inner.calls.load(), 1) << "second evaluation must be memoized";
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(first.ppa.power_uw, second.ppa.power_uw);

  // Preference-only spec change shares the entry; timing change misses.
  core::PerfSpec pref = spec;
  pref.pref.area = 42.0;
  (void)cached.evaluate(cfg, pref);
  EXPECT_EQ(inner.calls.load(), 1);
  EXPECT_EQ(cache.stats().hits, 2u);

  core::PerfSpec faster = spec;
  faster.mac_freq_mhz += 100.0;
  (void)cached.evaluate(cfg, faster);
  EXPECT_EQ(inner.calls.load(), 2);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_GE(cache.stats().miss_eval_ms, 0.0);
}

TEST(EvalCache, DiskRoundTrip) {
  const std::string path = "dse_cache_roundtrip_test.json";
  std::remove(path.c_str());

  dse::EvalCache cache;
  core::EvalOutcome o1;
  o1.ppa.fmax_mhz = 1.0 / 3.0;  // not exactly representable in decimal
  o1.ppa.write_fmax_mhz = 123.456789;
  o1.ppa.power_uw = 1e-30;
  o1.ppa.area_um2 = 98765.4321;
  o1.ppa.energy_per_mac_fj = 2.5e17;
  o1.ppa.tops_1b = 0.0625;
  o1.ppa.latency_cycles = 7;
  o1.timing.mac_period_ps = 3333.333333333;
  o1.timing.ofu_period_ps = 1.7e-4;
  o1.timing.write_period_ps = 250.0;
  o1.timing.mac_ok = true;
  o1.timing.ofu_ok = false;
  o1.timing.write_ok = true;
  core::EvalOutcome o2 = o1;
  o2.ppa.power_uw = 77.0;
  o2.timing.mac_ok = false;
  cache.insert("cfg{alpha}|spec{a}", o1);
  cache.insert("cfg{beta}|spec{b}", o2);
  ASSERT_TRUE(cache.save_json(path));

  dse::EvalCache loaded;
  ASSERT_EQ(loaded.load_json(path), 2u);
  EXPECT_EQ(loaded.stats().loaded, 2u);
  const auto r1 = loaded.lookup("cfg{alpha}|spec{a}");
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->ppa.fmax_mhz, o1.ppa.fmax_mhz);
  EXPECT_EQ(r1->ppa.write_fmax_mhz, o1.ppa.write_fmax_mhz);
  EXPECT_EQ(r1->ppa.power_uw, o1.ppa.power_uw);
  EXPECT_EQ(r1->ppa.area_um2, o1.ppa.area_um2);
  EXPECT_EQ(r1->ppa.energy_per_mac_fj, o1.ppa.energy_per_mac_fj);
  EXPECT_EQ(r1->ppa.tops_1b, o1.ppa.tops_1b);
  EXPECT_EQ(r1->ppa.latency_cycles, o1.ppa.latency_cycles);
  EXPECT_EQ(r1->timing.mac_period_ps, o1.timing.mac_period_ps);
  EXPECT_EQ(r1->timing.ofu_period_ps, o1.timing.ofu_period_ps);
  EXPECT_EQ(r1->timing.write_period_ps, o1.timing.write_period_ps);
  EXPECT_EQ(r1->timing.mac_ok, o1.timing.mac_ok);
  EXPECT_EQ(r1->timing.ofu_ok, o1.timing.ofu_ok);
  EXPECT_EQ(r1->timing.write_ok, o1.timing.write_ok);
  const auto r2 = loaded.lookup("cfg{beta}|spec{b}");
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->ppa.power_uw, o2.ppa.power_uw);
  EXPECT_FALSE(r2->timing.mac_ok);

  EXPECT_EQ(dse::EvalCache{}.load_json("does_not_exist.json"), 0u);
  std::remove(path.c_str());
}

namespace {

core::EvalOutcome sample_outcome(double power) {
  core::EvalOutcome o;
  o.ppa.fmax_mhz = 400.0;
  o.ppa.power_uw = power;
  o.ppa.area_um2 = 1234.5;
  o.ppa.latency_cycles = 3;
  o.timing.mac_ok = true;
  return o;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  f << text;
}

}  // namespace

TEST(EvalCache, CorruptedEntryIsRejectedAndCountedNotInstalled) {
  const std::string path = "dse_cache_corrupt_test.json";
  std::remove(path.c_str());
  dse::EvalCache cache;
  cache.insert("cfg{good1}|spec{x}", sample_outcome(1.0));
  cache.insert("cfg{victim}|spec{x}", sample_outcome(2.0));
  cache.insert("cfg{good2}|spec{x}", sample_outcome(3.0));
  ASSERT_TRUE(cache.save_json(path));

  // Mangle the first PPA number of the victim entry only.
  std::string text = slurp(path);
  const std::size_t at = text.find("cfg{victim}|spec{x}");
  ASSERT_NE(at, std::string::npos);
  const std::size_t vbegin = text.find("\"ppa\": [\"", at) + 9;
  const std::size_t vend = text.find('"', vbegin);
  text.replace(vbegin, vend - vbegin, "banana");
  spit(path, text);

  dse::EvalCache loaded;
  core::DiagEngine diag;
  EXPECT_EQ(loaded.load_json(path, &diag), 2u);
  const dse::EvalCacheStats st = loaded.stats();
  EXPECT_EQ(st.loaded, 2u);
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_GE(diag.count_rule("CACHE-BADENTRY"), 1u);
  EXPECT_FALSE(loaded.lookup("cfg{victim}|spec{x}").has_value());
  EXPECT_TRUE(loaded.lookup("cfg{good1}|spec{x}").has_value());
  EXPECT_TRUE(loaded.lookup("cfg{good2}|spec{x}").has_value());
  std::remove(path.c_str());
}

TEST(EvalCache, TruncatedEntriesNeverInstallGarbage) {
  // Fuzz-ish: chop the persisted file at many points; whatever loads must
  // be an entry that round-trips exactly, never a half-parsed one.
  const std::string path = "dse_cache_truncate_test.json";
  std::remove(path.c_str());
  dse::EvalCache cache;
  cache.insert("cfg{only}|spec{x}", sample_outcome(7.5));
  ASSERT_TRUE(cache.save_json(path));
  const std::string text = slurp(path);

  for (long cut = static_cast<long>(text.size()) - 1; cut > 0; cut -= 17) {
    spit(path, text.substr(0, static_cast<std::size_t>(cut)));
    dse::EvalCache loaded;
    const std::size_t n = loaded.load_json(path);
    if (n == 1) {
      const auto r = loaded.lookup("cfg{only}|spec{x}");
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(r->ppa.power_uw, 7.5);
      EXPECT_EQ(r->ppa.latency_cycles, 3);
    } else {
      EXPECT_EQ(loaded.size(), 0u) << "cut=" << cut;
    }
  }
  std::remove(path.c_str());
}

TEST(EvalCache, MissingFormatMarkerIsReported) {
  const std::string path = "dse_cache_badfile_test.json";
  spit(path, "{\"entries\": [{\"key\": \"k\"}]}");
  dse::EvalCache cache;
  core::DiagEngine diag;
  EXPECT_EQ(cache.load_json(path, &diag), 0u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(diag.count_rule("CACHE-BADFILE"), 1u);
  std::remove(path.c_str());
}

TEST(EvalCache, NonFiniteNumbersAreRejected) {
  const std::string path = "dse_cache_inf_test.json";
  std::remove(path.c_str());
  dse::EvalCache cache;
  cache.insert("cfg{a}|spec{x}", sample_outcome(1.0));
  ASSERT_TRUE(cache.save_json(path));
  std::string text = slurp(path);
  const std::size_t vbegin = text.find("\"ppa\": [\"") + 9;
  const std::size_t vend = text.find('"', vbegin);
  text.replace(vbegin, vend - vbegin, "inf");
  spit(path, text);

  dse::EvalCache loaded;
  EXPECT_EQ(loaded.load_json(path), 0u);
  EXPECT_EQ(loaded.stats().rejected, 1u);
  std::remove(path.c_str());
}

TEST(WorkStealingPool, ExecutesEverySubmittedTask) {
  dse::WorkStealingPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.stats().executed, 100u);
  EXPECT_EQ(pool.stats().threads, 4);
}

TEST(WorkStealingPool, TasksMaySpawnTasks) {
  dse::WorkStealingPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &count] {
      count.fetch_add(1, std::memory_order_relaxed);
      pool.submit(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(WorkStealingPool, ParallelForCoversRange) {
  dse::WorkStealingPool pool(2);
  std::vector<int> hit(57, 0);
  dse::parallel_for(pool, hit.size(), [&hit](std::size_t i) { hit[i] = 1; });
  for (std::size_t i = 0; i < hit.size(); ++i) {
    EXPECT_EQ(hit[i], 1) << "index " << i;
  }
}

TEST(SearchDeterminism, RepeatedSearchesAreIdentical) {
  core::SubcircuitLibrary scl(test_library());
  core::MsoSearcher searcher(scl);
  const core::PerfSpec spec = small_spec();
  const core::SearchResult a = searcher.search(spec);
  const core::SearchResult b = searcher.search(spec);
  EXPECT_FALSE(a.explored.empty());
  expect_same_points(a.explored, b.explored);
  expect_same_points(a.pareto, b.pareto);
  EXPECT_EQ(a.log, b.log);
}

TEST(SearchDeterminism, TrajectoryFragmentsReproduceSearch) {
  core::SubcircuitLibrary scl(test_library());
  core::MsoSearcher searcher(scl);
  const core::PerfSpec spec = small_spec();
  const core::SearchResult whole = searcher.search(spec);

  core::SearchResult stitched;
  for (const core::TrajectorySeed& seed :
       core::MsoSearcher::trajectory_seeds(spec)) {
    stitched.append(searcher.run_trajectory(seed, spec));
  }
  stitched.pareto = core::pareto_front(stitched.explored);
  expect_same_points(whole.explored, stitched.explored);
  expect_same_points(whole.pareto, stitched.pareto);
}

TEST(SweepDeterminism, ThreadCountDoesNotChangeTheFrontier) {
  dse::SweepGrid grid;
  grid.base = small_spec();
  grid.mac_freqs_mhz = {250.0, 400.0};
  grid.prefs = {{1.0, 1.0, 0.0}, {2.0, 0.5, 0.0}};
  const std::vector<core::PerfSpec> specs = grid.expand();
  ASSERT_EQ(specs.size(), 4u);

  dse::SweepOptions seq;
  seq.threads = 1;
  dse::SweepOptions par;
  par.threads = 4;
  const dse::SweepReport a = dse::run_sweep(test_library(), specs, seq);
  const dse::SweepReport b = dse::run_sweep(test_library(), specs, par);

  EXPECT_FALSE(a.frontier.empty());
  EXPECT_EQ(dse::sweep_frontier_json(a), dse::sweep_frontier_json(b));
  ASSERT_EQ(a.per_spec.size(), b.per_spec.size());
  for (std::size_t i = 0; i < a.per_spec.size(); ++i) {
    expect_same_points(a.per_spec[i].result.explored,
                       b.per_spec[i].result.explored);
    expect_same_points(a.per_spec[i].result.pareto,
                       b.per_spec[i].result.pareto);
  }
}

TEST(SweepDeterminism, CacheDoesNotChangeResultsAndGetsHits) {
  dse::SweepGrid grid;
  grid.base = small_spec();
  grid.prefs = {{1.0, 1.0, 0.0}, {2.0, 0.5, 0.0}};  // knob-identical pair
  const std::vector<core::PerfSpec> specs = grid.expand();
  ASSERT_EQ(specs.size(), 2u);

  dse::SweepOptions uncached;
  uncached.threads = 2;
  uncached.use_cache = false;
  dse::SweepOptions cached;
  cached.threads = 2;
  cached.use_cache = true;
  const dse::SweepReport a = dse::run_sweep(test_library(), specs, uncached);
  const dse::SweepReport b = dse::run_sweep(test_library(), specs, cached);

  EXPECT_EQ(dse::sweep_frontier_json(a), dse::sweep_frontier_json(b));
  EXPECT_EQ(a.cache.hits + a.cache.misses, 0u) << "cache off must not count";
  EXPECT_GT(b.cache.hits, 0u)
      << "the preference-duplicated spec must hit the shared cache";
}

TEST(SweepDeterminism, MatchesSequentialSearcher) {
  const core::PerfSpec spec = small_spec();
  core::SubcircuitLibrary scl(test_library());
  core::MsoSearcher searcher(scl);
  const core::SearchResult direct = searcher.search(spec);

  dse::SweepOptions opt;
  opt.threads = 3;
  const dse::SweepReport rep = dse::run_sweep(test_library(), {spec}, opt);
  ASSERT_EQ(rep.per_spec.size(), 1u);
  expect_same_points(direct.explored, rep.per_spec[0].result.explored);
  expect_same_points(direct.pareto, rep.per_spec[0].result.pareto);
}

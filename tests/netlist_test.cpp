#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/design.hpp"
#include "netlist/flatten.hpp"
#include "netlist/module.hpp"

namespace {
using namespace syndcim::netlist;

Module make_full_adder_module() {
  // Structural FA from two HAs + OR (classic decomposition).
  Module m("fa_struct");
  const NetId a = m.add_port("A", PortDir::kIn);
  const NetId b = m.add_port("B", PortDir::kIn);
  const NetId ci = m.add_port("CI", PortDir::kIn);
  const NetId s = m.add_port("S", PortDir::kOut);
  const NetId co = m.add_port("CO", PortDir::kOut);
  const NetId s1 = m.add_net("s1");
  const NetId c1 = m.add_net("c1");
  const NetId c2 = m.add_net("c2");
  m.add_cell("ha0", "HAX1", {{"A", a}, {"B", b}, {"S", s1}, {"CO", c1}});
  m.add_cell("ha1", "HAX1", {{"A", s1}, {"B", ci}, {"S", s}, {"CO", c2}});
  m.add_cell("or0", "OR2X1", {{"A", c1}, {"B", c2}, {"Y", co}});
  return m;
}

TEST(Module, BusNaming) {
  EXPECT_EQ(bus_name("sum", 3), "sum[3]");
  EXPECT_EQ(bus_name("x", 0), "x[0]");
}

TEST(Module, PortsAndNets) {
  Module m = make_full_adder_module();
  EXPECT_EQ(m.ports().size(), 5u);
  EXPECT_EQ(m.instances().size(), 3u);
  EXPECT_EQ(m.cell_count(), 3u);
  EXPECT_TRUE(m.has_port("CI"));
  EXPECT_FALSE(m.has_port("XX"));
  EXPECT_EQ(m.port("S").dir, PortDir::kOut);
  EXPECT_THROW((void)m.port("nope"), std::out_of_range);
}

TEST(Module, ConstNetsAreSingletons) {
  Module m("t");
  const NetId z1 = m.const0();
  const NetId z2 = m.const0();
  const NetId o = m.const1();
  EXPECT_EQ(z1, z2);
  EXPECT_FALSE(z1 == o);
  EXPECT_EQ(m.net(z1).tie, NetConst::kZero);
  EXPECT_EQ(m.net(o).tie, NetConst::kOne);
}

TEST(Module, AddBusCreatesIndexedNets) {
  Module m("t");
  const auto bus = m.add_bus("d", 4);
  ASSERT_EQ(bus.size(), 4u);
  EXPECT_EQ(m.net(bus[2]).name, "d[2]");
  const auto pbus = m.add_port_bus("q", PortDir::kOut, 3);
  EXPECT_EQ(m.ports().size(), 3u);
  EXPECT_EQ(m.net(pbus[0]).name, "q[0]");
}

TEST(Module, RejectsInvalidNet) {
  Module m("t");
  EXPECT_THROW(m.add_cell("i0", "INVX1", {{"A", NetId{}}}),
               std::invalid_argument);
}

TEST(Design, DuplicateModuleRejected) {
  Design d;
  d.add_module(Module("m"));
  EXPECT_THROW(d.add_module(Module("m")), std::invalid_argument);
}

TEST(Design, ValidateFindsMissingSubmodule) {
  Design d;
  Module top("top");
  const NetId x = top.add_port("x", PortDir::kIn);
  top.add_submodule("u0", "missing", {{"A", x}});
  d.add_module(std::move(top));
  const auto problems = validate(d, "top");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("unknown submodule"), std::string::npos);
}

TEST(Design, ValidateFindsBadPortAndDupName) {
  Design d;
  d.add_module(make_full_adder_module());
  Module top("top");
  const NetId x = top.add_port("x", PortDir::kIn);
  const NetId y = top.add_port("y", PortDir::kOut);
  top.add_submodule("u0", "fa_struct",
                    {{"A", x}, {"B", x}, {"CI", x}, {"S", y}, {"BAD", x}});
  top.add_cell("u0", "INVX1", {{"A", x}});  // duplicate instance name
  d.add_module(std::move(top));
  const auto problems = validate(d, "top");
  EXPECT_EQ(problems.size(), 2u);
}

TEST(Flatten, SingleLevel) {
  Design d;
  d.add_module(make_full_adder_module());
  const FlatNetlist f = flatten(d, "fa_struct");
  EXPECT_EQ(f.gates().size(), 3u);
  EXPECT_EQ(f.primary_inputs().size(), 3u);
  EXPECT_EQ(f.primary_outputs().size(), 2u);
  // 5 port nets + 3 internal.
  EXPECT_EQ(f.net_count(), 8u);
  EXPECT_NO_THROW((void)f.input_net("CI"));
  EXPECT_THROW((void)f.input_net("S"), std::out_of_range);
  EXPECT_NO_THROW((void)f.output_net("S"));
}

TEST(Flatten, Hierarchical) {
  Design d;
  d.add_module(make_full_adder_module());
  Module top("rca2");
  const auto a = top.add_port_bus("a", PortDir::kIn, 2);
  const auto b = top.add_port_bus("b", PortDir::kIn, 2);
  const NetId ci = top.add_port("ci", PortDir::kIn);
  const auto s = top.add_port_bus("s", PortDir::kOut, 2);
  const NetId co = top.add_port("co", PortDir::kOut);
  const NetId c0 = top.add_net("c0");
  top.add_submodule("fa0", "fa_struct",
                    {{"A", a[0]}, {"B", b[0]}, {"CI", ci}, {"S", s[0]},
                     {"CO", c0}});
  top.add_submodule("fa1", "fa_struct",
                    {{"A", a[1]}, {"B", b[1]}, {"CI", c0}, {"S", s[1]},
                     {"CO", co}});
  d.add_module(std::move(top));
  const FlatNetlist f = flatten(d, "rca2");
  EXPECT_EQ(f.gates().size(), 6u);
  // Groups: top itself + fa0 + fa1.
  EXPECT_EQ(f.group_names().size(), 3u);
  EXPECT_EQ(f.group_names()[1], "fa0");
  // Nets: 8 top-level (a,b,s 2 each + ci + co) + c0 + per-FA internal 3.
  EXPECT_EQ(f.net_count(), 8u + 1u + 3u + 3u);
}

TEST(Flatten, SharedConstantsAcrossHierarchy) {
  Design d;
  Module leaf("leaf");
  const NetId y = leaf.add_port("Y", PortDir::kOut);
  leaf.add_cell("i0", "INVX1", {{"A", leaf.const0()}, {"Y", y}});
  d.add_module(std::move(leaf));
  Module top("top");
  const NetId o1 = top.add_port("o1", PortDir::kOut);
  const NetId o2 = top.add_port("o2", PortDir::kOut);
  top.add_submodule("u0", "leaf", {{"Y", o1}});
  top.add_submodule("u1", "leaf", {{"Y", o2}});
  top.add_cell("i0", "INVX1", {{"A", top.const0()}, {"Y", top.const1()}});
  d.add_module(std::move(top));
  const FlatNetlist f = flatten(d, "top");
  // All const0 nets collapse onto one flat net.
  std::uint32_t const0_net = UINT32_MAX;
  std::size_t const0_count = 0;
  for (std::uint32_t n = 0; n < f.net_count(); ++n) {
    if (f.net_const(n) == NetConst::kZero) {
      const0_net = n;
      ++const0_count;
    }
  }
  EXPECT_EQ(const0_count, 1u);
  std::size_t users = 0;
  for (const auto& g : f.gates()) {
    for (const auto& pc : g.pins) {
      if (pc.net == const0_net) ++users;
    }
  }
  EXPECT_EQ(users, 3u);
}

TEST(Flatten, UnconnectedInputThrows) {
  Design d;
  d.add_module(make_full_adder_module());
  Module top("top");
  const NetId x = top.add_port("x", PortDir::kIn);
  const NetId y = top.add_port("y", PortDir::kOut);
  top.add_submodule("u0", "fa_struct", {{"A", x}, {"S", y}});
  d.add_module(std::move(top));
  EXPECT_THROW((void)flatten(d, "top"), std::invalid_argument);
}

TEST(Flatten, UnconnectedOutputGetsDanglingNet) {
  Design d;
  d.add_module(make_full_adder_module());
  Module top("top");
  const NetId x = top.add_port("x", PortDir::kIn);
  const NetId y = top.add_port("y", PortDir::kOut);
  top.add_submodule("u0", "fa_struct",
                    {{"A", x}, {"B", x}, {"CI", x}, {"S", y}});  // CO open
  d.add_module(std::move(top));
  const FlatNetlist f = flatten(d, "top");
  EXPECT_EQ(f.gates().size(), 3u);
}

TEST(Flatten, MasterAndPinInterning) {
  Design d;
  d.add_module(make_full_adder_module());
  const FlatNetlist f = flatten(d, "fa_struct");
  // Two HAX1 gates share one interned master id.
  EXPECT_EQ(f.master_names().size(), 2u);  // HAX1, OR2X1
  int ha = 0;
  for (const auto& g : f.gates()) {
    if (f.master_names()[g.master] == "HAX1") ++ha;
  }
  EXPECT_EQ(ha, 2);
}

}  // namespace

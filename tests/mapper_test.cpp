#include <gtest/gtest.h>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "mapper/mapper.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;
using mapper::Layer;
using mapper::MacroProfile;

MacroProfile test_profile() {
  MacroProfile p;
  core::PerfSpec s;
  s.rows = 64;
  s.cols = 64;
  s.mcr = 2;
  s.input_bits = {4, 8};
  s.weight_bits = {4, 8};
  p.cfg = s.base_config();
  p.freq_mhz = 400.0;
  p.energy_per_cycle_fj = 50000.0;  // 50 pJ/cycle
  p.leakage_uw = 100.0;
  return p;
}

TEST(Mapper, TileCountsAndUtilization) {
  const MacroProfile p = test_profile();
  Layer l{"fc", 16, 128, 16, 8, 8, 0.5};
  const auto lm = mapper::map_layer(l, p);
  EXPECT_EQ(lm.k_tiles, 2);          // 128 / 64 rows
  EXPECT_EQ(lm.n_tiles, 2);          // 16 / (64/8) outputs
  EXPECT_EQ(lm.macs, 16L * 128 * 16);
  EXPECT_GT(lm.utilization, 0.99);   // exact tiling = full utilization
  EXPECT_LE(lm.utilization, 1.0 + 1e-9);
  // Ragged layer wastes part of the array.
  Layer ragged{"fc2", 16, 100, 10, 8, 8, 0.5};
  const auto lm2 = mapper::map_layer(ragged, p);
  EXPECT_LT(lm2.utilization, 0.8);
}

TEST(Mapper, DoubleBufferingHidesWeightLoads) {
  MacroProfile p2 = test_profile();
  MacroProfile p1 = test_profile();
  p1.cfg.mcr = 1;
  // Compute-heavy layer: loads fully hidden at MCR=2.
  Layer l{"fc", 64, 256, 32, 8, 8, 0.5};
  const auto dbl = mapper::map_layer(l, p2);
  const auto sgl = mapper::map_layer(l, p1);
  EXPECT_LT(dbl.exposed_load_cycles, sgl.exposed_load_cycles);
  EXPECT_LT(dbl.total_cycles, sgl.total_cycles);
  EXPECT_EQ(dbl.compute_cycles, sgl.compute_cycles);
  // First tile's load is always exposed.
  EXPECT_GE(dbl.exposed_load_cycles, 2L * p2.cfg.rows);
}

TEST(Mapper, CyclesScaleWithBatchAndPrecision) {
  const MacroProfile p = test_profile();
  Layer l{"fc", 8, 64, 8, 4, 4, 0.5};
  const auto base = mapper::map_layer(l, p);
  l.m = 16;
  const auto big_m = mapper::map_layer(l, p);
  EXPECT_GT(big_m.compute_cycles, base.compute_cycles * 1.9);
  l.m = 8;
  l.input_bits = 8;
  const auto big_ib = mapper::map_layer(l, p);
  EXPECT_GT(big_ib.compute_cycles, base.compute_cycles * 1.5);
}

TEST(Mapper, EnergyTracksDensityAndTime) {
  const MacroProfile p = test_profile();
  Layer dense{"d", 16, 64, 8, 8, 8, 0.9};
  Layer sparse{"s", 16, 64, 8, 8, 8, 0.1};
  EXPECT_GT(mapper::map_layer(dense, p).energy_uj,
            mapper::map_layer(sparse, p).energy_uj);
}

TEST(Mapper, NetworkRollupAndMultiMacro) {
  const MacroProfile p = test_profile();
  const std::vector<Layer> net = {{"l1", 16, 256, 64, 8, 8, 0.5},
                                  {"l2", 16, 64, 64, 8, 8, 0.4},
                                  {"l3", 16, 64, 16, 8, 8, 0.3}};
  const auto one = mapper::map_network(net, p, 1);
  const auto four = mapper::map_network(net, p, 4);
  EXPECT_EQ(one.layers.size(), 3u);
  EXPECT_EQ(one.total_macs, 16L * 256 * 64 + 16L * 64 * 64 + 16L * 64 * 16);
  // More macros: faster, same energy.
  EXPECT_LT(four.total_time_us, one.total_time_us / 2.0);
  EXPECT_NEAR(four.total_energy_uj, one.total_energy_uj, 1e-9);
  EXPECT_GT(one.effective_gops(), 0.0);
  EXPECT_GT(one.effective_tops_per_w(), 0.0);
  // Sanity: time = sum of layer times.
  double sum = 0;
  for (const auto& [l, lm] : one.layers) sum += lm.time_us;
  EXPECT_NEAR(sum, one.total_time_us, 1e-9);
}

TEST(Mapper, RejectsBadInputs) {
  const MacroProfile p = test_profile();
  EXPECT_THROW((void)mapper::map_layer({"x", 0, 1, 1, 8, 8, 0.5}, p),
               std::invalid_argument);
  EXPECT_THROW((void)mapper::map_layer({"x", 1, 1, 1, 16, 8, 0.5}, p),
               std::invalid_argument);
  EXPECT_THROW((void)mapper::map_layer({"x", 1, 1, 1, 8, 16, 0.5}, p),
               std::invalid_argument);
  EXPECT_THROW((void)mapper::map_network({}, p, 0), std::invalid_argument);
}

TEST(Mapper, ProfileFromImplementation) {
  const auto lib = cell::characterize_default_library(
      tech::make_default_40nm());
  core::SynDcimCompiler compiler(lib);
  core::PerfSpec spec;
  spec.rows = 16;
  spec.cols = 8;
  spec.mcr = 2;
  spec.input_bits = {4};
  spec.weight_bits = {4};
  spec.mac_freq_mhz = 300;
  spec.wupdate_freq_mhz = 300;
  const auto res = compiler.compile(spec);
  const auto prof = MacroProfile::from_implementation(res.impl, 300.0);
  EXPECT_GT(prof.freq_mhz, 0);
  EXPECT_LE(prof.freq_mhz, 300.0);
  EXPECT_GT(prof.energy_per_cycle_fj, 0);
  const auto lm =
      mapper::map_layer({"fc", 4, 16, 2, 4, 4, 0.5}, prof);
  EXPECT_GT(lm.time_us, 0);
  EXPECT_GT(lm.energy_uj, 0);
}

}  // namespace

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "num/alignment.hpp"
#include "num/fp_format.hpp"
#include "num/int_ops.hpp"

namespace {
using namespace syndcim::num;

TEST(IntFormat, Ranges) {
  EXPECT_EQ((IntFormat{8, true}).min_value(), -128);
  EXPECT_EQ((IntFormat{8, true}).max_value(), 127);
  EXPECT_EQ((IntFormat{8, false}).max_value(), 255);
  EXPECT_EQ((IntFormat{1, true}).min_value(), -1);
  EXPECT_EQ((IntFormat{1, true}).max_value(), 0);
  EXPECT_EQ((IntFormat{4, true}).min_value(), -8);
}

TEST(IntOps, SignExtend) {
  EXPECT_EQ(sign_extend(0xF, 4), -1);
  EXPECT_EQ(sign_extend(0x7, 4), 7);
  EXPECT_EQ(sign_extend(0x8, 4), -8);
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
}

TEST(IntOps, TwosComplementBits) {
  // -3 in 4 bits = 1101.
  EXPECT_EQ(ts_bit(-3, 0), 1);
  EXPECT_EQ(ts_bit(-3, 1), 0);
  EXPECT_EQ(ts_bit(-3, 2), 1);
  EXPECT_EQ(ts_bit(-3, 3), 1);
}

TEST(IntOps, Saturate) {
  const IntFormat s4{4, true};
  EXPECT_EQ(saturate(100, s4), 7);
  EXPECT_EQ(saturate(-100, s4), -8);
  EXPECT_EQ(saturate(3, s4), 3);
  EXPECT_NO_THROW(require_in_range(7, s4));
  EXPECT_THROW(require_in_range(8, s4), std::out_of_range);
}

TEST(FpFormat, Metadata) {
  EXPECT_EQ(kFp8.bias(), 7);
  EXPECT_EQ(kFp8.storage_bits(), 8);
  EXPECT_EQ(kFp4.storage_bits(), 4);
  EXPECT_EQ(kBf16.storage_bits(), 16);
  EXPECT_EQ(kFp4.bias(), 1);
  EXPECT_EQ(kFp8.name(), "E4M3");
}

TEST(FpDecode, KnownFp4Values) {
  // E2M1, bias 1: 0b0_01_1 = 1.5 * 2^0 = 1.5.
  EXPECT_DOUBLE_EQ(fp_decode(0b0011, kFp4), 1.5);
  EXPECT_DOUBLE_EQ(fp_decode(0b0000, kFp4), 0.0);
  // Subnormal: 0b0_00_1 = 1 * 2^(1-1-1) = 0.5.
  EXPECT_DOUBLE_EQ(fp_decode(0b0001, kFp4), 0.5);
  // Max: 0b0_11_1 = 1.5 * 2^2 = 6.
  EXPECT_DOUBLE_EQ(fp_decode(0b0111, kFp4), 6.0);
  EXPECT_DOUBLE_EQ(fp_decode(0b1111, kFp4), -6.0);
  EXPECT_DOUBLE_EQ(fp_max_value(kFp4), 6.0);
}

TEST(FpDecode, KnownFp8Values) {
  // E4M3, bias 7: 0x38 = 0_0111_000 -> 1.0.
  EXPECT_DOUBLE_EQ(fp_decode(0x38, kFp8), 1.0);
  // 0x3C = 0_0111_100 -> 1.5.
  EXPECT_DOUBLE_EQ(fp_decode(0x3C, kFp8), 1.5);
  // Max 0x7F = 1.875 * 2^8 = 480.
  EXPECT_DOUBLE_EQ(fp_max_value(kFp8), 480.0);
  // Smallest subnormal = 2^-9.
  EXPECT_DOUBLE_EQ(fp_decode(0x01, kFp8), std::ldexp(1.0, -9));
}

TEST(FpEncode, ExactRoundTripAllFp8Codes) {
  for (std::uint32_t e = 0; e < 256; ++e) {
    const double v = fp_decode(e, kFp8);
    const std::uint32_t back = fp_encode(v, kFp8);
    // -0 and +0 both decode to 0.0; encode picks +0.
    if (v == 0.0) {
      EXPECT_EQ(back & 0x7Fu, 0u);
    } else {
      EXPECT_EQ(back, e) << "value " << v;
    }
  }
}

TEST(FpEncode, ExactRoundTripAllFp4AndBf16Samples) {
  for (std::uint32_t e = 0; e < 16; ++e) {
    const double v = fp_decode(e, kFp4);
    if (v != 0.0) {
      EXPECT_EQ(fp_encode(v, kFp4), e);
    }
  }
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1u << 16) - 1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t e = dist(rng);
    const double v = fp_decode(e, kBf16);
    if (v != 0.0) {
      EXPECT_EQ(fp_encode(v, kBf16), e) << "code " << e;
    }
  }
}

TEST(FpEncode, SaturatesAtMax) {
  EXPECT_EQ(fp_encode(1e9, kFp8), fp_encode(480.0, kFp8));
  EXPECT_EQ(fp_decode(fp_encode(-1e9, kFp4), kFp4), -6.0);
}

TEST(FpEncode, RoundToNearestEven) {
  // Between 1.0 (0x38) and 1.125 (0x39) in FP8: 1.0625 ties -> even (0x38).
  EXPECT_EQ(fp_encode(1.0625, kFp8), 0x38u);
  // Between 1.125 and 1.25: 1.1875 ties -> 1.25 has even mantissa (0x3A).
  EXPECT_EQ(fp_encode(1.1875, kFp8), 0x3Au);
}

TEST(FpEncode, MonotoneOnPositives) {
  double prev = -1.0;
  std::uint32_t prev_code = 0;
  for (double x = 0.0; x < 500.0; x += 0.37) {
    const std::uint32_t c = fp_encode(x, kFp8);
    if (prev >= 0.0) {
      EXPECT_GE(fp_decode(c, kFp8), fp_decode(prev_code, kFp8))
          << "x=" << x << " prev=" << prev;
    }
    prev = x;
    prev_code = c;
  }
}

class AlignmentProperty : public ::testing::TestWithParam<
                              std::tuple<FpFormat, int /*guard*/>> {};

TEST_P(AlignmentProperty, AlignedValuesCloseToExact) {
  const auto [fmt, guard] = GetParam();
  std::mt19937 rng(42);
  std::uniform_int_distribution<std::uint32_t> dist(
      0, (1u << fmt.storage_bits()) - 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint32_t> group(16);
    for (auto& g : group) g = dist(rng);
    const AlignedGroup a = align_fp_group(group, fmt, guard);
    // The maximum-magnitude element aligns exactly; others lose at most
    // the truncated low bits, i.e. error < 2^(shared_exp - frac_shift).
    const double ulp = std::ldexp(1.0, a.shared_exp_unbiased - a.frac_shift);
    for (std::size_t i = 0; i < group.size(); ++i) {
      const double exact = fp_decode(group[i], fmt);
      EXPECT_LE(std::abs(a.value(i) - exact), ulp)
          << fmt.name() << " elem " << i;
      // Truncation moves magnitudes toward zero, never away.
      EXPECT_LE(std::abs(a.value(i)), std::abs(exact) + 1e-30);
    }
  }
}

TEST_P(AlignmentProperty, DotProductErrorBounded) {
  const auto [fmt, guard] = GetParam();
  std::mt19937 rng(99);
  std::uniform_int_distribution<std::uint32_t> dist(
      0, (1u << fmt.storage_bits()) - 1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint32_t> group(32);
    for (auto& g : group) g = dist(rng);
    const AlignedGroup a = align_fp_group(group, fmt, guard);
    double exact = 0.0, aligned = 0.0;
    for (std::size_t i = 0; i < group.size(); ++i) {
      exact += fp_decode(group[i], fmt);
      aligned += a.value(i);
    }
    const double ulp = std::ldexp(1.0, a.shared_exp_unbiased - a.frac_shift);
    EXPECT_LE(std::abs(exact - aligned), ulp * static_cast<double>(group.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, AlignmentProperty,
    ::testing::Values(std::make_tuple(kFp4, 0), std::make_tuple(kFp4, 2),
                      std::make_tuple(kFp8, 0), std::make_tuple(kFp8, 2),
                      std::make_tuple(kFp8, 4), std::make_tuple(kBf16, 0),
                      std::make_tuple(kBf16, 3), std::make_tuple(kFp16, 2)));

TEST(Alignment, MaxElementExact) {
  // Group with one dominant value: it must be represented exactly.
  const std::vector<std::uint32_t> g = {fp_encode(6.0, kFp4),
                                        fp_encode(0.5, kFp4)};
  const AlignedGroup a = align_fp_group(g, kFp4, 0);
  EXPECT_DOUBLE_EQ(a.value(0), 6.0);
}

TEST(Alignment, AllZerosGroup) {
  const std::vector<std::uint32_t> g(8, 0);
  const AlignedGroup a = align_fp_group(g, kFp8, 2);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(a.mant[i], 0);
}

TEST(Alignment, MantBitsBound) {
  EXPECT_EQ(aligned_mant_bits(kFp8, 0), 5);  // sign + implicit + 3
  std::mt19937 rng(5);
  std::uniform_int_distribution<std::uint32_t> dist(0, 255);
  for (int t = 0; t < 100; ++t) {
    std::vector<std::uint32_t> g(8);
    for (auto& x : g) x = dist(rng);
    const AlignedGroup a = align_fp_group(g, kFp8, 2);
    const std::int64_t bound = 1ll << (aligned_mant_bits(kFp8, 2) - 1);
    for (const std::int64_t m : a.mant) {
      EXPECT_LT(std::abs(m), bound);
    }
  }
}

TEST(Alignment, RejectsBadInput) {
  EXPECT_THROW((void)align_fp_group({}, kFp8, 0), std::invalid_argument);
  const std::vector<std::uint32_t> g = {0};
  EXPECT_THROW((void)align_fp_group(g, kFp8, -1), std::invalid_argument);
}

}  // namespace

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "cell/characterize.hpp"
#include "cell/liberty_parser.hpp"
#include "netlist/design.hpp"
#include "netlist/flatten.hpp"
#include "power/activity.hpp"
#include "power/power.hpp"
#include "rtlgen/macro.hpp"
#include "sim/macro_tb.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

rtlgen::MacroConfig tiny_cfg() {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 2;
  cfg.input_bits = {4};
  cfg.weight_bits = {4};
  return cfg;
}

/// Runs `n_macs` random MACs through the testbench and returns activity.
power::ActivityModel run_workload(sim::MacroTestbench& tb,
                                  sim::DcimMacroModel& model, int n_macs,
                                  double input_density, unsigned seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution bit(input_density);
  const auto& cfg = model.cfg();
  std::vector<std::vector<std::int64_t>> w(
      static_cast<std::size_t>(cfg.cols / 4));
  for (auto& g : w) {
    g.resize(static_cast<std::size_t>(cfg.rows));
    for (auto& v : g) v = static_cast<std::int64_t>(rng() % 16) - 8;
  }
  model.load_weights_int(0, 4, w);
  tb.preload_weights(model);
  tb.sim().reset_activity();
  for (int m = 0; m < n_macs; ++m) {
    std::vector<std::int64_t> in(static_cast<std::size_t>(cfg.rows));
    for (auto& v : in) {
      std::int64_t x = 0;
      for (int b = 0; b < 4; ++b) x |= static_cast<std::int64_t>(bit(rng)) << b;
      v = num::sign_extend(static_cast<std::uint64_t>(x), 4);
    }
    (void)tb.run_mac_int(in, 4, 4, 0);
  }
  return power::activity_from_sim(tb.netlist(), lib(), tb.sim());
}

TEST(Power, SimActivityBasics) {
  const auto md = rtlgen::gen_macro(tiny_cfg());
  sim::DcimMacroModel model(tiny_cfg());
  sim::MacroTestbench tb(md, lib());
  const auto act = run_workload(tb, model, 10, 0.5, 1);
  // Clock net toggles exactly twice per cycle.
  const auto clk = tb.netlist().input_net("clk");
  EXPECT_DOUBLE_EQ(act.toggle_rate[clk], 2.0);
  // Some nets toggle, none faster than a few transitions per cycle.
  double max_rate = 0.0, total = 0.0;
  for (const double r : act.toggle_rate) {
    max_rate = std::max(max_rate, r);
    total += r;
  }
  EXPECT_GT(total, 10.0);
  EXPECT_LE(max_rate, 4.0);
}

TEST(Power, SparserInputsLowerPower) {
  const auto md = rtlgen::gen_macro(tiny_cfg());
  sim::DcimMacroModel model(tiny_cfg());
  sim::MacroTestbench tb(md, lib());
  power::PowerOptions opt;
  const auto dense = run_workload(tb, model, 12, 0.5, 2);
  const double p_dense =
      power::analyze_power(tb.netlist(), lib(), dense, opt).total_uw();
  const auto sparse = run_workload(tb, model, 12, 0.125, 2);
  const double p_sparse =
      power::analyze_power(tb.netlist(), lib(), sparse, opt).total_uw();
  EXPECT_LT(p_sparse, p_dense);
}

TEST(Power, VoltageScaling) {
  const auto md = rtlgen::gen_macro(tiny_cfg());
  sim::DcimMacroModel model(tiny_cfg());
  sim::MacroTestbench tb(md, lib());
  const auto act = run_workload(tb, model, 8, 0.5, 3);
  power::PowerOptions opt;
  const double p09 =
      power::analyze_power(tb.netlist(), lib(), act, opt).dynamic_uw();
  opt.vdd = 1.2;
  const double p12 =
      power::analyze_power(tb.netlist(), lib(), act, opt).dynamic_uw();
  // Dynamic power scales ~V^2 (within a few % from table granularity).
  EXPECT_NEAR(p12 / p09, (1.2 * 1.2) / (0.9 * 0.9), 0.05);
  opt.vdd = 2.0;
  EXPECT_THROW(
      (void)power::analyze_power(tb.netlist(), lib(), act, opt),
      std::invalid_argument);
}

TEST(Power, FrequencyScalesDynamicNotLeakage) {
  const auto md = rtlgen::gen_macro(tiny_cfg());
  sim::DcimMacroModel model(tiny_cfg());
  sim::MacroTestbench tb(md, lib());
  const auto act = run_workload(tb, model, 8, 0.5, 4);
  power::PowerOptions opt;
  opt.freq_mhz = 400;
  const auto rep4 = power::analyze_power(tb.netlist(), lib(), act, opt);
  opt.freq_mhz = 800;
  const auto rep8 = power::analyze_power(tb.netlist(), lib(), act, opt);
  EXPECT_NEAR(rep8.dynamic_uw() / rep4.dynamic_uw(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(rep8.leakage_uw, rep4.leakage_uw);
  // Energy per cycle is frequency independent.
  EXPECT_NEAR(rep8.energy_per_cycle_fj(800), rep4.energy_per_cycle_fj(400),
              1e-9);
}

TEST(Power, GroupBreakdownSumsToTotal) {
  const auto md = rtlgen::gen_macro(tiny_cfg());
  sim::DcimMacroModel model(tiny_cfg());
  sim::MacroTestbench tb(md, lib());
  const auto act = run_workload(tb, model, 8, 0.5, 5);
  const auto rep = power::analyze_power(tb.netlist(), lib(), act, {});
  double sum = 0.0;
  for (const auto& g : rep.by_group) sum += g.dynamic_uw + g.leakage_uw;
  EXPECT_NEAR(sum, rep.total_uw(), rep.total_uw() * 1e-6);
  EXPECT_GT(rep.group_uw("col0"), 0.0);
  EXPECT_GT(rep.group_uw("wldrv"), 0.0);
}

TEST(Power, ProbabilisticTracksSimWithinFactor) {
  const auto md = rtlgen::gen_macro(tiny_cfg());
  sim::DcimMacroModel model(tiny_cfg());
  sim::MacroTestbench tb(md, lib());
  const auto measured = run_workload(tb, model, 16, 0.5, 6);
  power::ActivitySpec spec;
  spec.input_p1 = 0.3;  // controls/din mix
  const auto predicted =
      power::propagate_activity(tb.netlist(), lib(), spec);
  const double p_meas =
      power::analyze_power(tb.netlist(), lib(), measured, {}).dynamic_uw();
  const double p_pred =
      power::analyze_power(tb.netlist(), lib(), predicted, {}).dynamic_uw();
  EXPECT_GT(p_pred, p_meas / 4.0);
  EXPECT_LT(p_pred, p_meas * 4.0);
}

TEST(Power, ProbabilisticActivityProperties) {
  const auto md = rtlgen::gen_macro(tiny_cfg());
  const auto flat = netlist::flatten(md.design, md.top);
  const auto act = power::propagate_activity(flat, lib(), {});
  for (std::uint32_t n = 0; n < flat.net_count(); ++n) {
    EXPECT_GE(act.p_one[n], 0.0);
    EXPECT_LE(act.p_one[n], 1.0);
    EXPECT_GE(act.toggle_rate[n], 0.0);
    EXPECT_LE(act.toggle_rate[n], 2.0);
  }
}

TEST(Power, AreaRollup) {
  const auto cfg = tiny_cfg();
  const auto md = rtlgen::gen_macro(cfg);
  const auto flat = netlist::flatten(md.design, md.top);
  const auto rep = power::analyze_area(flat, lib());
  EXPECT_NEAR(rep.total_um2, rep.bitcell_um2 + rep.logic_um2, 1e-6);
  // 16*8*2 6T bitcells.
  EXPECT_NEAR(rep.bitcell_um2, 256 * lib().get("SRAM6T").area_um2, 1e-6);
  double sum = 0.0;
  for (const auto& g : rep.by_group) sum += g.area_um2;
  EXPECT_NEAR(sum, rep.total_um2, 1e-6);
  EXPECT_GT(rep.group_um2("col0"), 0.0);
}

TEST(ActivityBugfix, ReorderedLibertyPinOrderResolvedByRole) {
  // A liberty library whose DFF lists CK *before* D: pin order must not
  // matter — D/Q are resolved by role, not by position.
  std::ostringstream lb;
  lb << "library (reordered) {\n"
     << "  cell (RDFF) {\n"
     << "    syndcim_kind : " << static_cast<int>(cell::Kind::kDff) << ";\n"
     << "    pin (CK) { direction : input; clock : true; capacitance : 0.5; }\n"
     << "    pin (D) { direction : input; capacitance : 0.5; }\n"
     << "    pin (Q) { direction : output; }\n"
     << "  }\n"
     << "  cell (RINV) {\n"
     << "    syndcim_kind : " << static_cast<int>(cell::Kind::kInv) << ";\n"
     << "    pin (A) { direction : input; capacitance : 0.5; }\n"
     << "    pin (Y) { direction : output; }\n"
     << "  }\n"
     << "}\n";
  std::istringstream is(lb.str());
  const cell::Library rlib =
      cell::parse_liberty(is, tech::make_default_40nm());

  netlist::Design d;
  netlist::Module m("top");
  const auto clk = m.add_port("clk", netlist::PortDir::kIn);
  const auto a = m.add_port("a", netlist::PortDir::kIn);
  const auto y = m.add_port("y", netlist::PortDir::kOut);
  const auto dn = m.add_net("dn");
  const auto q = m.add_net("q");
  m.add_cell("i0", "RINV", {{"A", a}, {"Y", dn}});
  m.add_cell("f0", "RDFF", {{"CK", clk}, {"D", dn}, {"Q", q}});
  m.add_cell("i1", "RINV", {{"A", q}, {"Y", y}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "top");

  power::ActivitySpec spec;
  spec.input_p1 = 0.9;
  const auto act = power::propagate_activity(flat, rlib, spec);
  std::uint32_t qn = UINT32_MAX;
  for (std::uint32_t n = 0; n < flat.net_count(); ++n) {
    if (flat.net_name(n) == "q") qn = n;
  }
  ASSERT_NE(qn, UINT32_MAX);
  // Q follows D (the inverted input, P1 = 0.1) — not whatever net happens
  // to be listed first (the clock, P1 = 0.9).
  EXPECT_DOUBLE_EQ(act.p_one[qn], 1.0 - spec.input_p1);
  EXPECT_DOUBLE_EQ(act.toggle_rate[qn], 2.0 * 0.1 * 0.9 * 0.7);
  // Clock-net forcing still keys off the is_clock role.
  EXPECT_DOUBLE_EQ(act.toggle_rate[flat.input_net("clk")], 2.0);
}

TEST(KernelGolden, ActivityEnginesBitIdenticalAcrossMacroVariants) {
  for (int variant = 0; variant < 3; ++variant) {
    SCOPED_TRACE(variant);
    rtlgen::MacroConfig cfg = tiny_cfg();
    cfg.input_bits = {2, 4};
    cfg.weight_bits = {2, 4};
    if (variant == 1) {
      cfg.mux = rtlgen::MuxStyle::kOai22Fused;
    } else if (variant == 2) {
      cfg.tree.style = rtlgen::AdderTreeStyle::kCompressor;
    }
    const auto md = rtlgen::gen_macro(cfg);
    const auto flat = netlist::flatten(md.design, md.top);

    power::ActivitySpec spec;
    spec.input_p1 = 0.37;
    spec.input_toggle = 0.21;
    spec.weight_p1 = 0.62;
    const auto soa = power::propagate_activity(
        flat, lib(), spec, power::ActivityEngine::kSoa);
    const auto scalar = power::propagate_activity(
        flat, lib(), spec, power::ActivityEngine::kScalar);
    ASSERT_EQ(soa.p_one.size(), scalar.p_one.size());
    for (std::size_t n = 0; n < soa.p_one.size(); ++n) {
      EXPECT_EQ(soa.p_one[n], scalar.p_one[n]) << "net " << n;
      EXPECT_EQ(soa.toggle_rate[n], scalar.toggle_rate[n]) << "net " << n;
    }

    // The priced report is consequently bit-identical too.
    const auto rep_soa = power::analyze_power(flat, lib(), soa, {});
    const auto rep_scalar = power::analyze_power(flat, lib(), scalar, {});
    EXPECT_EQ(rep_soa.switching_uw, rep_scalar.switching_uw);
    EXPECT_EQ(rep_soa.internal_uw, rep_scalar.internal_uw);
    EXPECT_EQ(rep_soa.clock_uw, rep_scalar.clock_uw);
    EXPECT_EQ(rep_soa.leakage_uw, rep_scalar.leakage_uw);
    ASSERT_EQ(rep_soa.by_group.size(), rep_scalar.by_group.size());
    for (std::size_t g = 0; g < rep_soa.by_group.size(); ++g) {
      EXPECT_EQ(rep_soa.by_group[g].group, rep_scalar.by_group[g].group);
      EXPECT_EQ(rep_soa.by_group[g].dynamic_uw,
                rep_scalar.by_group[g].dynamic_uw);
      EXPECT_EQ(rep_soa.by_group[g].leakage_uw,
                rep_scalar.by_group[g].leakage_uw);
    }

    // Grouped (per-cone) propagation agrees across engines as well.
    const auto grp_soa = power::propagate_activity_grouped(
        flat, lib(), spec, nullptr, nullptr, power::ActivityEngine::kSoa);
    const auto grp_scalar = power::propagate_activity_grouped(
        flat, lib(), spec, nullptr, nullptr,
        power::ActivityEngine::kScalar);
    for (std::size_t n = 0; n < grp_soa.p_one.size(); ++n) {
      EXPECT_EQ(grp_soa.p_one[n], grp_scalar.p_one[n]) << "net " << n;
      EXPECT_EQ(grp_soa.toggle_rate[n], grp_scalar.toggle_rate[n])
          << "net " << n;
    }
  }
}

TEST(Power, PassGateMuxCostsMorePowerThanTGate) {
  auto macro_power = [&](rtlgen::MuxStyle mux) {
    rtlgen::MacroConfig cfg = tiny_cfg();
    cfg.mux = mux;
    const auto md = rtlgen::gen_macro(cfg);
    sim::DcimMacroModel model(cfg);
    sim::MacroTestbench tb(md, lib());
    const auto act = run_workload(tb, model, 12, 0.5, 7);
    return power::analyze_power(tb.netlist(), lib(), act, {}).total_uw();
  };
  EXPECT_GT(macro_power(rtlgen::MuxStyle::kPassGate1T),
            macro_power(rtlgen::MuxStyle::kTGateNor));
}

}  // namespace

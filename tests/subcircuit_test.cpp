// Gate-level verification of the non-tree subcircuits: S&A, OFU,
// alignment unit, WL driver PISO, write port decoder.
#include <gtest/gtest.h>

#include <random>

#include "cell/characterize.hpp"
#include "netlist/flatten.hpp"
#include "num/alignment.hpp"
#include "num/int_ops.hpp"
#include "rtlgen/alignment_unit.hpp"
#include "rtlgen/drivers.hpp"
#include "rtlgen/ofu.hpp"
#include "rtlgen/shift_adder.hpp"
#include "sim/gate_sim.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

sim::GateSim make_sim(netlist::Module m, netlist::FlatNetlist& flat_out) {
  netlist::Design d;
  const std::string top = m.name();
  d.add_module(std::move(m));
  flat_out = netlist::flatten(d, top);
  return sim::GateSim(flat_out, lib());
}

class ShiftAdderTest : public ::testing::TestWithParam<bool /*redundant*/> {};

TEST_P(ShiftAdderTest, SerialAccumulation) {
  const bool redundant = GetParam();
  rtlgen::ShiftAdderConfig cfg;
  cfg.psum_bits = 5;
  cfg.width = 12;
  cfg.redundant_psum = redundant;
  netlist::FlatNetlist flat;
  auto gs = make_sim(rtlgen::gen_shift_adder(cfg, "sa"), flat);

  std::mt19937 rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const int ib = 1 + static_cast<int>(rng() % 8);
    std::int64_t expected = 0;
    for (int t = 0; t < ib; ++t) {
      const std::int64_t psum = static_cast<std::int64_t>(rng() % 17);
      const bool neg = t == 0;  // signed MSB-first
      expected = (t == 0 ? 0 : expected * 2) + (neg ? -psum : psum);
      gs.set_input("neg", neg ? 1 : 0);
      gs.set_input("clr", t == 0 ? 1 : 0);
      if (redundant) {
        // Split psum into two vectors summing to it.
        const std::uint64_t sv = static_cast<std::uint64_t>(rng()) %
                                 (static_cast<std::uint64_t>(psum) + 1);
        const std::uint64_t cv = static_cast<std::uint64_t>(psum) - sv;
        gs.set_input_bus("sv", sv, cfg.psum_bits);
        gs.set_input_bus("cv", cv, cfg.psum_bits);
      } else {
        gs.set_input_bus("p", static_cast<std::uint64_t>(psum),
                         cfg.psum_bits);
      }
      gs.step();
    }
    gs.eval();
    const std::int64_t acc =
        num::sign_extend(gs.output_bus("acc", cfg.width), cfg.width);
    EXPECT_EQ(acc, expected) << "trial " << trial << " ib=" << ib
                             << " redundant=" << redundant;
  }
}

TEST_P(ShiftAdderTest, UnsignedModeNeverNegates) {
  const bool redundant = GetParam();
  rtlgen::ShiftAdderConfig cfg;
  cfg.psum_bits = 4;
  cfg.width = 10;
  cfg.redundant_psum = redundant;
  netlist::FlatNetlist flat;
  auto gs = make_sim(rtlgen::gen_shift_adder(cfg, "sa"), flat);
  std::int64_t expected = 0;
  std::mt19937 rng(3);
  for (int t = 0; t < 4; ++t) {
    const std::int64_t psum = static_cast<std::int64_t>(rng() % 9);
    expected = expected * 2 + psum;
    gs.set_input("neg", 0);
    gs.set_input("clr", t == 0 ? 1 : 0);
    if (redundant) {
      gs.set_input_bus("sv", static_cast<std::uint64_t>(psum), 4);
      gs.set_input_bus("cv", 0, 4);
    } else {
      gs.set_input_bus("p", static_cast<std::uint64_t>(psum), 4);
    }
    gs.step();
  }
  gs.eval();
  EXPECT_EQ(num::sign_extend(gs.output_bus("acc", cfg.width), cfg.width),
            expected);
}

INSTANTIATE_TEST_SUITE_P(Both, ShiftAdderTest, ::testing::Bool());

struct OfuCase {
  rtlgen::OfuConfig arr;
  int wp;  // active precision
};

class OfuTest : public ::testing::TestWithParam<OfuCase> {};

TEST_P(OfuTest, FusesSignedColumns) {
  const OfuCase oc = GetParam();
  rtlgen::OfuModuleConfig cfg;
  cfg.group_cols = 8;
  cfg.col_width = 10;
  cfg.arrangement = oc.arr;
  netlist::FlatNetlist flat;
  auto gs = make_sim(rtlgen::gen_ofu(cfg, "ofu"), flat);

  const int wp = oc.wp;
  const int stage = [] (int v) { int s = 0; while (v > 1) { v >>= 1; ++s; } return s; }(wp);
  std::mt19937 rng(17);
  std::uniform_int_distribution<std::int64_t> dist(-500, 500);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::int64_t> r(8);
    for (auto& v : r) v = dist(rng);
    for (int j = 0; j < 8; ++j) {
      gs.set_input_bus(
          "r" + std::to_string(j),
          static_cast<std::uint64_t>(r[static_cast<std::size_t>(j)]) &
              ((1u << cfg.col_width) - 1),
          cfg.col_width);
    }
    for (int s = 1; s <= cfg.n_stages(); ++s) {
      gs.set_input(netlist::bus_name("mode", s - 1), (1 << s) == wp ? 1 : 0);
    }
    gs.set_input("cap", 1);
    gs.step();
    gs.set_input("cap", 0);
    for (int t = 0; t < cfg.regs_through(stage); ++t) gs.step();
    gs.eval();

    for (int g = 0; g < 8 / wp; ++g) {
      std::int64_t expected = 0;
      for (int k = 0; k < wp; ++k) {
        const std::int64_t v = r[static_cast<std::size_t>(g * wp + k)];
        expected += (wp > 1 && k == wp - 1) ? -(v << k) : (v << k);
      }
      const int w = cfg.stage_width(stage);
      const std::int64_t got = num::sign_extend(
          gs.output_bus("s" + std::to_string(stage) + "_r" +
                            std::to_string(g),
                        w),
          w);
      if (wp == 1 && oc.arr.retime_stage1) {
        // s0 is an uncaptured tap in the retimed arrangement; it follows
        // the current inputs combinationally.
        EXPECT_EQ(got, expected);
      } else {
        EXPECT_EQ(got, expected)
            << "wp=" << wp << " group=" << g << " trial=" << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Arrangements, OfuTest,
    ::testing::Values(OfuCase{{true, false, false}, 8},
                      OfuCase{{true, false, false}, 4},
                      OfuCase{{true, false, false}, 2},
                      OfuCase{{true, false, false}, 1},
                      OfuCase{{true, true, false}, 8},
                      OfuCase{{true, true, false}, 4},
                      OfuCase{{false, false, false}, 8},
                      OfuCase{{false, false, false}, 2},
                      OfuCase{{true, false, true}, 8},
                      OfuCase{{true, true, true}, 8}));

class AlignmentHw : public ::testing::TestWithParam<num::FpFormat> {};

TEST_P(AlignmentHw, MatchesBehavioralReference) {
  const num::FpFormat fmt = GetParam();
  rtlgen::AlignmentConfig cfg;
  cfg.format = fmt;
  cfg.lanes = 8;
  cfg.guard_bits = 2;
  netlist::FlatNetlist flat;
  auto gs = make_sim(rtlgen::gen_alignment_unit(cfg, "align"), flat);
  const int out_w = num::aligned_mant_bits(fmt, cfg.guard_bits);

  std::mt19937 rng(23);
  std::uniform_int_distribution<std::uint32_t> dist(
      0, (1u << fmt.storage_bits()) - 1);
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<std::uint32_t> enc(8);
    for (auto& e : enc) e = dist(rng);
    const num::AlignedGroup ref =
        num::align_fp_group(enc, fmt, cfg.guard_bits);
    for (int l = 0; l < 8; ++l) {
      const num::FpFields f = num::fp_split(enc[static_cast<std::size_t>(l)],
                                            fmt);
      gs.set_input_bus("exp" + std::to_string(l),
                       static_cast<std::uint64_t>(f.exp_raw), fmt.exp_bits);
      gs.set_input_bus("man" + std::to_string(l),
                       static_cast<std::uint64_t>(f.man_raw), fmt.man_bits);
      gs.set_input("sgn" + std::to_string(l), f.sign);
    }
    gs.eval();
    for (int l = 0; l < 8; ++l) {
      const std::int64_t am = num::sign_extend(
          gs.output_bus("am" + std::to_string(l), out_w), out_w);
      EXPECT_EQ(am, ref.mant[static_cast<std::size_t>(l)])
          << fmt.name() << " lane " << l << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, AlignmentHw,
                         ::testing::Values(num::kFp4, num::kFp8, num::kBf16));

TEST(WlDriver, PisoShiftsMsbFirst) {
  rtlgen::WlDriverConfig cfg;
  cfg.rows = 2;
  cfg.piso_bits = 4;
  cfg.am_bits = 0;
  cfg.mcr = 1;
  netlist::FlatNetlist flat;
  auto gs = make_sim(rtlgen::gen_wl_driver(cfg, "wldrv"), flat);
  gs.set_input("load", 1);
  gs.set_input_bus("din0", 0b1010, 4);
  gs.set_input_bus("din1", 0b0110, 4);
  gs.step();
  gs.set_input("load", 0);
  std::vector<int> r0, r1;
  for (int t = 0; t < 4; ++t) {
    gs.eval();
    r0.push_back(gs.output(netlist::bus_name("act", 0)));
    r1.push_back(gs.output(netlist::bus_name("act", 1)));
    gs.step();
  }
  EXPECT_EQ(r0, (std::vector<int>{1, 0, 1, 0}));
  EXPECT_EQ(r1, (std::vector<int>{0, 1, 1, 0}));
}

TEST(WlDriver, FpMuxSelectsAlignedMantissa) {
  rtlgen::WlDriverConfig cfg;
  cfg.rows = 1;
  cfg.piso_bits = 6;
  cfg.am_bits = 4;
  cfg.mcr = 1;
  netlist::FlatNetlist flat;
  auto gs = make_sim(rtlgen::gen_wl_driver(cfg, "wldrv"), flat);
  gs.set_input("load", 1);
  gs.set_input_bus("din0", 0b111111, 6);
  gs.set_input_bus("am0", 0b1011, 4);
  gs.set_input("fp_sel", 1);
  gs.step();
  gs.set_input("load", 0);
  // Aligned mantissa is MSB-placed: PISO = {0,0,1,0,1,1} -> serial 1,0,1,1,0,0.
  std::vector<int> bits;
  for (int t = 0; t < 6; ++t) {
    gs.eval();
    bits.push_back(gs.output(netlist::bus_name("act", 0)));
    gs.step();
  }
  EXPECT_EQ(bits, (std::vector<int>{1, 0, 1, 1, 0, 0}));
}

TEST(WlDriver, Oai22GatingIsNandOfSelAndAct) {
  rtlgen::WlDriverConfig cfg;
  cfg.rows = 1;
  cfg.piso_bits = 2;
  cfg.mcr = 2;
  cfg.oai22_gating = true;
  netlist::FlatNetlist flat;
  auto gs = make_sim(rtlgen::gen_wl_driver(cfg, "wldrv"), flat);
  gs.set_input("load", 1);
  gs.set_input_bus("din0", 0b10, 2);  // act = 1 on first compute cycle
  gs.set_input(netlist::bus_name("selh", 0), 1);
  gs.set_input(netlist::bus_name("selh", 1), 0);
  gs.step();
  gs.set_input("load", 0);
  gs.eval();
  EXPECT_EQ(gs.output(netlist::bus_name("act", 0)), 1);
  EXPECT_EQ(gs.output(netlist::bus_name("gseln", 0)), 0);  // sel&act -> 0
  EXPECT_EQ(gs.output(netlist::bus_name("gseln", 1)), 1);
}

TEST(WritePort, DecodesRowAndBank) {
  rtlgen::WritePortConfig cfg;
  cfg.rows = 8;
  cfg.cols = 4;
  cfg.mcr = 2;
  netlist::FlatNetlist flat;
  auto gs = make_sim(rtlgen::gen_write_port(cfg, "wrport"), flat);
  gs.set_input("wen", 1);
  gs.set_input_bus("waddr", 5, 3);
  gs.set_input_bus("wbank", 1, 1);
  gs.set_input_bus("wd", 0b1001, 4);
  gs.step();  // command registered
  gs.set_input("wen", 0);
  gs.eval();
  for (int r = 0; r < 8; ++r) {
    for (int b = 0; b < 2; ++b) {
      EXPECT_EQ(gs.output(netlist::bus_name("wl", r * 2 + b)),
                (r == 5 && b == 1) ? 1 : 0)
          << r << "," << b;
    }
  }
  EXPECT_EQ(gs.output_bus("wdata", 4), 0b1001u);
  gs.step();  // wen=0 propagates
  gs.eval();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(gs.output(netlist::bus_name("wl", i)), 0);
  }
}

TEST(WritePort, InvertDataForOai22) {
  rtlgen::WritePortConfig cfg;
  cfg.rows = 4;
  cfg.cols = 2;
  cfg.mcr = 1;
  cfg.invert_data = true;
  netlist::FlatNetlist flat;
  auto gs = make_sim(rtlgen::gen_write_port(cfg, "wrport"), flat);
  gs.set_input("wen", 1);
  gs.set_input_bus("waddr", 0, 2);
  gs.set_input_bus("wd", 0b01, 2);
  gs.step();
  gs.eval();
  EXPECT_EQ(gs.output_bus("wdata", 2), 0b10u);
}

}  // namespace

// Cross-module integration and property tests: pipelined alignment at the
// gate level, STA case analysis and slew clamping, SCL composition
// accuracy against full-macro analysis, bitcell variants, FP4 embedding.
#include <gtest/gtest.h>

#include <random>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "netlist/flatten.hpp"
#include "num/alignment.hpp"
#include "layout/floorplan.hpp"
#include "power/power.hpp"
#include "rtlgen/alignment_unit.hpp"
#include "rtlgen/gates.hpp"
#include "rtlgen/macro.hpp"
#include "sim/gate_sim.hpp"
#include "sim/macro_tb.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

TEST(AlignmentPipelined, GateLevelMatchesReferenceAfterLatency) {
  rtlgen::AlignmentConfig cfg;
  cfg.format = num::kFp8;
  cfg.lanes = 16;
  cfg.guard_bits = 2;
  cfg.pipelined = true;
  netlist::Design d;
  d.add_module(rtlgen::gen_alignment_unit(cfg, "align"));
  const auto flat = netlist::flatten(d, "align");
  sim::GateSim gs(flat, lib());
  const int out_w = num::aligned_mant_bits(cfg.format, cfg.guard_bits);
  const int latency = cfg.latency_cycles();
  EXPECT_GE(latency, 4);

  std::mt19937 rng(5);
  std::uniform_int_distribution<std::uint32_t> dist(0, 255);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::uint32_t> enc(16);
    for (auto& e : enc) e = dist(rng);
    for (int l = 0; l < 16; ++l) {
      const num::FpFields f = num::fp_split(enc[l], cfg.format);
      gs.set_input_bus("exp" + std::to_string(l),
                       static_cast<std::uint64_t>(f.exp_raw), 4);
      gs.set_input_bus("man" + std::to_string(l),
                       static_cast<std::uint64_t>(f.man_raw), 3);
      gs.set_input("sgn" + std::to_string(l), f.sign);
    }
    for (int t = 0; t < latency; ++t) gs.step();
    gs.eval();
    const auto ref = num::align_fp_group(enc, cfg.format, cfg.guard_bits);
    for (int l = 0; l < 16; ++l) {
      EXPECT_EQ(num::sign_extend(
                    gs.output_bus("am" + std::to_string(l), out_w), out_w),
                ref.mant[l])
          << "lane " << l << " trial " << trial;
    }
  }
}

TEST(StaCaseAnalysis, StaticInputsExcludedFromTiming) {
  // A chain from a config-like input dominates timing unless declared
  // static.
  netlist::Design d;
  netlist::Module m("t");
  const auto clk = m.add_port("clk", netlist::PortDir::kIn);
  const auto cfg_in = m.add_port("cfg", netlist::PortDir::kIn);
  const auto data = m.add_port("data", netlist::PortDir::kIn);
  const auto out = m.add_port("out", netlist::PortDir::kOut);
  rtlgen::GateBuilder gb(m, "g_");
  netlist::NetId x = cfg_in;
  for (int i = 0; i < 30; ++i) x = gb.inv(x);  // long config chain
  const auto y = gb.and2(x, gb.dff(data, clk));
  const auto q = gb.dff(y, clk);
  m.add_cell("ob", "BUFX1", {{"A", q}, {"Y", out}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  sta::StaEngine eng(flat, lib());
  sta::StaOptions opt;
  const double with_cfg = eng.analyze(opt).min_period_ps;
  opt.static_inputs = {"cfg"};
  const double without_cfg = eng.analyze(opt).min_period_ps;
  EXPECT_LT(without_cfg, with_cfg / 2);
  // Unknown names are ignored.
  opt.static_inputs = {"cfg", "does_not_exist"};
  EXPECT_DOUBLE_EQ(eng.analyze(opt).min_period_ps, without_cfg);
}

TEST(StaMaxSlew, ClampBoundsWireDegradedPaths) {
  // A weak driver into a huge load produces a degenerate slew; the
  // max-transition clamp (APR repeater model) bounds the downstream
  // penalty.
  netlist::Design d;
  netlist::Module m("t");
  const auto clk = m.add_port("clk", netlist::PortDir::kIn);
  const auto a = m.add_port("a", netlist::PortDir::kIn);
  const auto out = m.add_port("out", netlist::PortDir::kOut);
  rtlgen::GateBuilder gb(m, "g_");
  netlist::NetId x = gb.dff(a, clk);
  x = gb.inv(x);  // weak INVX1 driving the fat net below
  netlist::NetId fat = x;
  // 60 inverter loads on one net.
  std::vector<netlist::NetId> ys;
  for (int i = 0; i < 60; ++i) ys.push_back(gb.inv(fat));
  netlist::NetId chain = ys[0];
  for (int i = 0; i < 10; ++i) chain = gb.inv(chain);
  const auto q = gb.dff(chain, clk);
  m.add_cell("ob", "BUFX1", {{"A", q}, {"Y", out}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "t");
  sta::StaEngine eng(flat, lib());
  sta::StaOptions loose, tight;
  loose.max_slew_ps = 10000.0;
  tight.max_slew_ps = 200.0;
  EXPECT_LT(eng.analyze(tight).min_period_ps,
            eng.analyze(loose).min_period_ps);
}

TEST(SclComposition, MatchesFullMacroAnalysis) {
  // The slice-composed area/power estimate must track a real full-macro
  // analysis (cols larger than the slice).
  core::PerfSpec spec;
  spec.rows = 32;
  spec.cols = 32;  // slice is 8 cols -> composition ratio 4
  spec.mcr = 2;
  spec.input_bits = {4};
  spec.weight_bits = {4};
  spec.mac_freq_mhz = 300;
  spec.wupdate_freq_mhz = 300;
  const auto cfg = spec.base_config();

  core::SubcircuitLibrary scl(lib());
  const auto est = scl.evaluate(cfg, spec);

  const auto md = rtlgen::gen_macro(cfg);
  const auto flat = netlist::flatten(md.design, md.top);
  const auto area = power::analyze_area(flat, lib());
  EXPECT_NEAR(est.area_um2, area.total_um2, 0.15 * area.total_um2);

  const auto act = power::propagate_activity(flat, lib(), {});
  power::PowerOptions popt;
  popt.freq_mhz = spec.mac_freq_mhz;
  const auto pw = power::analyze_power(flat, lib(), act, popt);
  EXPECT_NEAR(est.power_uw, pw.total_uw(), 0.30 * pw.total_uw());

  // Timing: compare post-layout to post-layout (the SCL characterizes its
  // slice with extracted wires).
  const auto fp = layout::sdp_place(flat, lib(), cfg);
  sta::StaEngine eng(flat, lib());
  sta::StaOptions topt;
  topt.static_inputs = md.static_control_ports();
  topt.wire = layout::extract_wire_model(flat, fp, lib().node());
  const auto rep = eng.analyze(topt);
  EXPECT_NEAR(est.fmax_mhz, rep.fmax_mhz, 0.25 * rep.fmax_mhz);
}

class BitcellVariant
    : public ::testing::TestWithParam<rtlgen::BitcellKind> {};

TEST_P(BitcellVariant, FunctionalAndCosted) {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 2;
  cfg.input_bits = {4};
  cfg.weight_bits = {4};
  cfg.bitcell = GetParam();
  const auto md = rtlgen::gen_macro(cfg);
  sim::DcimMacroModel model(cfg);
  sim::MacroTestbench tb(md, lib());
  std::mt19937 rng(9);
  std::vector<std::vector<std::int64_t>> w(2);
  for (auto& g : w) {
    g.resize(16);
    for (auto& v : g) v = static_cast<std::int64_t>(rng() % 16) - 8;
  }
  model.load_weights_int(0, 4, w);
  tb.preload_weights(model);
  std::vector<std::int64_t> in(16);
  for (auto& v : in) v = static_cast<std::int64_t>(rng() % 16) - 8;
  EXPECT_EQ(tb.run_mac_int(in, 4, 4, 0), model.mac_int(in, 4, 4, 0));

  // Denser cells cost less area.
  const auto flat = netlist::flatten(md.design, md.top);
  const auto area = power::analyze_area(flat, lib());
  EXPECT_GT(area.bitcell_um2, 0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, BitcellVariant,
                         ::testing::Values(rtlgen::BitcellKind::k6T,
                                           rtlgen::BitcellKind::k8T,
                                           rtlgen::BitcellKind::k12T));

TEST(BitcellAreas, OrderedAcrossVariants) {
  auto bitcell_area = [&](rtlgen::BitcellKind k) {
    rtlgen::MacroConfig cfg;
    cfg.rows = 16;
    cfg.cols = 8;
    cfg.mcr = 1;
    cfg.input_bits = {4};
    cfg.weight_bits = {4};
    cfg.bitcell = k;
    const auto md = rtlgen::gen_macro(cfg);
    const auto flat = netlist::flatten(md.design, md.top);
    return power::analyze_area(flat, lib()).bitcell_um2;
  };
  EXPECT_LT(bitcell_area(rtlgen::BitcellKind::k6T),
            bitcell_area(rtlgen::BitcellKind::k8T));
  EXPECT_LT(bitcell_area(rtlgen::BitcellKind::k8T),
            bitcell_area(rtlgen::BitcellKind::k12T));
}

TEST(Fp4Embedding, Fp4ValuesRunExactlyThroughTheFp8Unit) {
  // The Fig. 8 spec lists FP4 and FP8; FP4 re-encodes exactly into the
  // FP8 alignment hardware (every E2M1 value is representable in E4M3).
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 1;
  cfg.input_bits = {4};
  cfg.weight_bits = {4};
  cfg.fp_formats = {num::kFp8};
  cfg.fp_guard_bits = 1;
  const auto md = rtlgen::gen_macro(cfg);
  sim::DcimMacroModel model(cfg);
  sim::MacroTestbench tb(md, lib());

  std::mt19937 rng(13);
  std::uniform_int_distribution<std::uint32_t> d4(0, 15);
  auto fp4_as_fp8 = [](std::uint32_t e4) {
    return num::fp_encode(num::fp_decode(e4, num::kFp4), num::kFp8);
  };
  // Exactness of the embedding itself:
  for (std::uint32_t e = 0; e < 16; ++e) {
    EXPECT_DOUBLE_EQ(num::fp_decode(fp4_as_fp8(e), num::kFp8),
                     num::fp_decode(e, num::kFp4));
  }
  const int wp = cfg.max_weight_bits();
  std::vector<std::vector<std::uint32_t>> w(cfg.cols / wp);
  for (auto& g : w) {
    g.resize(16);
    for (auto& v : g) v = fp4_as_fp8(d4(rng));
  }
  model.load_weights_fp(0, num::kFp8, w);
  tb.preload_weights(model);
  std::vector<std::uint32_t> in(16);
  for (auto& v : in) v = fp4_as_fp8(d4(rng));
  const auto expected = model.mac_fp(in, num::kFp8, 0);
  EXPECT_EQ(tb.run_mac_fp(in, num::kFp8, 0), expected.raw);
}

TEST(PostLayoutFlow, WireAnnotationSlowsTiming) {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 2;
  cfg.input_bits = {4};
  cfg.weight_bits = {4};
  const auto md = rtlgen::gen_macro(cfg);
  const auto flat = netlist::flatten(md.design, md.top);
  const auto fp = layout::sdp_place(flat, lib(), cfg);
  sta::StaEngine eng(flat, lib());
  sta::StaOptions pre;
  pre.wire.cap_per_fanout_ff = 0.0;
  sta::StaOptions post;
  post.wire = layout::extract_wire_model(flat, fp, lib().node());
  EXPECT_GT(eng.analyze(post).min_period_ps,
            eng.analyze(pre).min_period_ps);
}

}  // namespace

// End-to-end gate-level macro verification against the behavioral model.
#include <gtest/gtest.h>

#include <random>

#include "cell/characterize.hpp"
#include "rtlgen/macro.hpp"
#include "sim/macro_model.hpp"
#include "sim/macro_tb.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;
using rtlgen::MacroConfig;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

MacroConfig small_cfg() {
  MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 2;
  cfg.input_bits = {2, 4};
  cfg.weight_bits = {2, 4};
  cfg.fp_formats = {};
  return cfg;
}

std::vector<std::vector<std::int64_t>> random_weights(std::mt19937& rng,
                                                      int n_out, int rows,
                                                      int wp) {
  const num::IntFormat f{wp, wp > 1};
  std::uniform_int_distribution<std::int64_t> dist(f.min_value(),
                                                   f.max_value());
  std::vector<std::vector<std::int64_t>> w(static_cast<std::size_t>(n_out));
  for (auto& row : w) {
    row.resize(static_cast<std::size_t>(rows));
    for (auto& v : row) v = dist(rng);
  }
  return w;
}

std::vector<std::int64_t> random_inputs(std::mt19937& rng, int rows, int ib,
                                        bool is_signed) {
  const num::IntFormat f{ib, is_signed};
  std::uniform_int_distribution<std::int64_t> dist(f.min_value(),
                                                   f.max_value());
  std::vector<std::int64_t> in(static_cast<std::size_t>(rows));
  for (auto& v : in) v = dist(rng);
  return in;
}

TEST(MacroModel, SerialMatchesGolden) {
  std::mt19937 rng(5);
  for (const int wp : {1, 2, 4}) {
    for (const int ib : {1, 2, 4, 8}) {
      MacroConfig cfg = small_cfg();
      cfg.input_bits = {8};
      sim::DcimMacroModel model(cfg);
      const bool signed_in = ib > 1;
      for (int trial = 0; trial < 20; ++trial) {
        model.load_weights_int(
            0, wp, random_weights(rng, cfg.cols / wp, cfg.rows, wp));
        const auto in = random_inputs(rng, cfg.rows, ib, signed_in);
        EXPECT_EQ(model.mac_int(in, ib, wp, 0, signed_in),
                  model.mac_int_serial(in, ib, wp, 0, signed_in))
            << "wp=" << wp << " ib=" << ib;
      }
    }
  }
}

struct MacroCase {
  rtlgen::MuxStyle mux;
  rtlgen::AdderTreeStyle tree;
  double fa_fraction;
  bool reg_after_tree;
  bool retime_cpa;
  int column_split;
  rtlgen::OfuConfig ofu;
};

class MacroEndToEnd : public ::testing::TestWithParam<MacroCase> {};

TEST_P(MacroEndToEnd, GateLevelMatchesModel) {
  const MacroCase mc = GetParam();
  MacroConfig cfg = small_cfg();
  cfg.mux = mc.mux;
  cfg.tree.style = mc.tree;
  cfg.tree.fa_fraction = mc.fa_fraction;
  cfg.pipe.reg_after_tree = mc.reg_after_tree;
  cfg.pipe.retime_tree_cpa = mc.retime_cpa;
  cfg.column_split = mc.column_split;
  cfg.ofu = mc.ofu;

  const auto md = rtlgen::gen_macro(cfg);
  sim::DcimMacroModel model(cfg);
  sim::MacroTestbench tb(md, lib());

  std::mt19937 rng(42);
  for (const int wp : {1, 2, 4}) {
    for (const int ib : {2, 4}) {
      model.load_weights_int(
          0, wp, random_weights(rng, cfg.cols / wp, cfg.rows, wp));
      model.load_weights_int(
          1, wp, random_weights(rng, cfg.cols / wp, cfg.rows, wp));
      tb.preload_weights(model);
      for (int bank = 0; bank < 2; ++bank) {
        const auto in = random_inputs(rng, cfg.rows, ib, true);
        EXPECT_EQ(tb.run_mac_int(in, ib, wp, bank),
                  model.mac_int(in, ib, wp, bank))
            << "wp=" << wp << " ib=" << ib << " bank=" << bank;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MacroEndToEnd,
    ::testing::Values(
        // Default: TG mux, mixed CSA, full pipeline.
        MacroCase{rtlgen::MuxStyle::kTGateNor, rtlgen::AdderTreeStyle::kMixed,
                  0.0, true, false, 1, {true, false, false}},
        // Pass-gate mux (AutoDCIM style).
        MacroCase{rtlgen::MuxStyle::kPassGate1T,
                  rtlgen::AdderTreeStyle::kMixed, 0.0, true, false, 1,
                  {true, false, false}},
        // OAI22 fused mux-multiplier.
        MacroCase{rtlgen::MuxStyle::kOai22Fused,
                  rtlgen::AdderTreeStyle::kMixed, 0.0, true, false, 1,
                  {true, false, false}},
        // RCA tree baseline.
        MacroCase{rtlgen::MuxStyle::kTGateNor,
                  rtlgen::AdderTreeStyle::kRcaTree, 0.0, true, false, 1,
                  {true, false, false}},
        // FA-heavy mixed CSA.
        MacroCase{rtlgen::MuxStyle::kTGateNor, rtlgen::AdderTreeStyle::kMixed,
                  0.6, true, false, 1, {true, false, false}},
        // tt2: CPA retimed into S&A.
        MacroCase{rtlgen::MuxStyle::kTGateNor, rtlgen::AdderTreeStyle::kMixed,
                  0.0, true, true, 1, {true, false, false}},
        // tt3: column split.
        MacroCase{rtlgen::MuxStyle::kTGateNor, rtlgen::AdderTreeStyle::kMixed,
                  0.0, true, false, 2, {true, false, false}},
        // Step-3 fusion: no tree register.
        MacroCase{rtlgen::MuxStyle::kTGateNor, rtlgen::AdderTreeStyle::kMixed,
                  0.0, false, false, 1, {true, false, false}},
        // Fully fused: OFU combinational on the accumulator.
        MacroCase{rtlgen::MuxStyle::kTGateNor, rtlgen::AdderTreeStyle::kMixed,
                  0.0, false, false, 1, {false, false, false}},
        // tt5: OFU pipeline stage.
        MacroCase{rtlgen::MuxStyle::kTGateNor, rtlgen::AdderTreeStyle::kMixed,
                  0.0, true, false, 1, {true, true, false}},
        // tt4: OFU stage 1 retimed into S&A.
        MacroCase{rtlgen::MuxStyle::kTGateNor, rtlgen::AdderTreeStyle::kMixed,
                  0.0, true, false, 1, {true, false, true}},
        // Everything at once: split + retimed OFU + pipeline.
        MacroCase{rtlgen::MuxStyle::kOai22Fused,
                  rtlgen::AdderTreeStyle::kCompressor, 0.0, true, false, 2,
                  {true, true, true}}));

TEST(MacroWritePort, PortWritesMatchPreload) {
  MacroConfig cfg = small_cfg();
  const auto md = rtlgen::gen_macro(cfg);
  sim::DcimMacroModel model(cfg);
  sim::MacroTestbench tb(md, lib());
  std::mt19937 rng(9);
  model.load_weights_int(0, 4, random_weights(rng, 2, cfg.rows, 4));
  model.load_weights_int(1, 4, random_weights(rng, 2, cfg.rows, 4));
  // Write through the real port instead of preloading.
  for (int bank = 0; bank < cfg.mcr; ++bank) {
    for (int r = 0; r < cfg.rows; ++r) {
      std::vector<int> bits(static_cast<std::size_t>(cfg.cols));
      for (int c = 0; c < cfg.cols; ++c) {
        bits[static_cast<std::size_t>(c)] = model.read_bit(c, r, bank);
      }
      tb.write_row_via_port(r, bank, bits);
    }
  }
  const auto in = random_inputs(rng, cfg.rows, 4, true);
  EXPECT_EQ(tb.run_mac_int(in, 4, 4, 0), model.mac_int(in, 4, 4, 0));
  EXPECT_EQ(tb.run_mac_int(in, 4, 4, 1), model.mac_int(in, 4, 4, 1));
}

TEST(MacroWritePort, Oai22WritesAreInvertedInStorage) {
  MacroConfig cfg = small_cfg();
  cfg.mux = rtlgen::MuxStyle::kOai22Fused;
  const auto md = rtlgen::gen_macro(cfg);
  sim::DcimMacroModel model(cfg);
  sim::MacroTestbench tb(md, lib());
  std::mt19937 rng(13);
  model.load_weights_int(0, 2, random_weights(rng, 4, cfg.rows, 2));
  for (int r = 0; r < cfg.rows; ++r) {
    std::vector<int> bits(static_cast<std::size_t>(cfg.cols));
    for (int c = 0; c < cfg.cols; ++c) {
      bits[static_cast<std::size_t>(c)] = model.read_bit(c, r, 0);
    }
    tb.write_row_via_port(r, 0, bits);
  }
  const auto in = random_inputs(rng, cfg.rows, 4, true);
  EXPECT_EQ(tb.run_mac_int(in, 4, 2, 0), model.mac_int(in, 4, 2, 0));
}

TEST(MacroFp, GateLevelMatchesModelFp8) {
  MacroConfig cfg = small_cfg();
  cfg.cols = 8;
  cfg.fp_formats = {num::kFp8};
  cfg.fp_guard_bits = 1;
  const auto md = rtlgen::gen_macro(cfg);
  sim::DcimMacroModel model(cfg);
  sim::MacroTestbench tb(md, lib());

  std::mt19937 rng(31);
  std::uniform_int_distribution<std::uint32_t> dist(0, 255);
  const int wp = cfg.max_weight_bits();
  const int n_out = cfg.cols / wp;
  std::vector<std::vector<std::uint32_t>> w(
      static_cast<std::size_t>(n_out));
  for (auto& g : w) {
    g.resize(static_cast<std::size_t>(cfg.rows));
    for (auto& v : g) v = dist(rng);
  }
  model.load_weights_fp(0, num::kFp8, w);
  tb.preload_weights(model);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::uint32_t> in(static_cast<std::size_t>(cfg.rows));
    for (auto& v : in) v = dist(rng);
    const auto expected = model.mac_fp(in, num::kFp8, 0);
    EXPECT_EQ(tb.run_mac_fp(in, num::kFp8, 0), expected.raw)
        << "trial " << trial;
  }
}

TEST(MacroFp, FpResultTracksExactDotProduct) {
  MacroConfig cfg = small_cfg();
  cfg.fp_formats = {num::kFp8};
  sim::DcimMacroModel model(cfg);
  std::mt19937 rng(77);
  std::uniform_int_distribution<std::uint32_t> dist(0, 255);
  const int wp = cfg.max_weight_bits();
  const int n_out = cfg.cols / wp;
  std::vector<std::vector<std::uint32_t>> w(static_cast<std::size_t>(n_out));
  for (auto& g : w) {
    g.resize(static_cast<std::size_t>(cfg.rows));
    for (auto& v : g) v = dist(rng);
  }
  model.load_weights_fp(0, num::kFp8, w);
  std::vector<std::uint32_t> in(static_cast<std::size_t>(cfg.rows));
  for (auto& v : in) v = dist(rng);
  const auto res = model.mac_fp(in, num::kFp8, 0);
  for (int o = 0; o < n_out; ++o) {
    double exact = 0.0, mag = 0.0;
    for (int r = 0; r < cfg.rows; ++r) {
      const double a =
          num::fp_decode(in[static_cast<std::size_t>(r)], num::kFp8);
      const double b = num::fp_decode(
          w[static_cast<std::size_t>(o)][static_cast<std::size_t>(r)],
          num::kFp8);
      exact += a * b;
      mag += std::abs(a * b);
    }
    // Truncating alignment loses at most a few percent of the magnitude.
    EXPECT_NEAR(res.value(static_cast<std::size_t>(o)), exact,
                0.1 * mag + 1e-6);
  }
}

TEST(MacroMacWrite, SimultaneousMacAndWeightUpdate) {
  // The MCR=2 macro computes on bank 0 while bank 1 is rewritten through
  // the write port in the same cycles (Table II's "MAC-Write" feature).
  MacroConfig cfg = small_cfg();
  const auto md = rtlgen::gen_macro(cfg);
  sim::DcimMacroModel model(cfg);
  sim::MacroTestbench tb(md, lib());
  std::mt19937 rng(21);
  model.load_weights_int(0, 4, random_weights(rng, 2, cfg.rows, 4));
  model.load_weights_int(1, 4, random_weights(rng, 2, cfg.rows, 4));
  tb.preload_weights(model);

  // New bank-1 contents, streamed row by row while bank-0 MACs run.
  const auto new_w1 = random_weights(rng, 2, cfg.rows, 4);
  sim::DcimMacroModel new_model(cfg);
  new_model.load_weights_int(1, 4, new_w1);

  auto& gs = tb.sim();
  tb.write_row_via_port(0, 1, [&] {
    std::vector<int> bits(static_cast<std::size_t>(cfg.cols));
    for (int c = 0; c < cfg.cols; ++c) bits[c] = new_model.read_bit(c, 0, 1);
    return bits;
  }());
  // Interleave: one MAC on bank 0, then more bank-1 row writes, repeat.
  int row = 1;
  for (int m = 0; m < 4; ++m) {
    const auto in = random_inputs(rng, cfg.rows, 4, true);
    // Drive write command during the MAC by pre-setting the write inputs;
    // run_mac_int toggles wen off, so write rows between MACs and verify
    // the MAC results stay exact throughout the update stream.
    EXPECT_EQ(tb.run_mac_int(in, 4, 4, 0), model.mac_int(in, 4, 4, 0))
        << "MAC " << m << " while bank 1 is being updated";
    for (int k = 0; k < 4 && row < cfg.rows; ++k, ++row) {
      std::vector<int> bits(static_cast<std::size_t>(cfg.cols));
      for (int c = 0; c < cfg.cols; ++c) {
        bits[c] = new_model.read_bit(c, row, 1);
      }
      tb.write_row_via_port(row, 1, bits);
    }
  }
  while (row < cfg.rows) {
    std::vector<int> bits(static_cast<std::size_t>(cfg.cols));
    for (int c = 0; c < cfg.cols; ++c) bits[c] = new_model.read_bit(c, row, 1);
    tb.write_row_via_port(row, 1, bits);
    ++row;
  }
  (void)gs;
  // Bank 1 now holds the new weights; bank 0 is untouched.
  const auto in = random_inputs(rng, cfg.rows, 4, true);
  EXPECT_EQ(tb.run_mac_int(in, 4, 4, 1), new_model.mac_int(in, 4, 4, 1));
  EXPECT_EQ(tb.run_mac_int(in, 4, 4, 0), model.mac_int(in, 4, 4, 0));
}

TEST(MacroWideAccumulators, CarrySelectPathsExercised) {
  // rows=64 pushes the S&A and OFU widths past the carry-select
  // threshold; verify functional equality there too.
  MacroConfig cfg;
  cfg.rows = 64;
  cfg.cols = 8;
  cfg.mcr = 1;
  cfg.input_bits = {8};
  cfg.weight_bits = {4};
  cfg.ofu.pipeline_regs = 2;
  const auto md = rtlgen::gen_macro(cfg);
  sim::DcimMacroModel model(cfg);
  sim::MacroTestbench tb(md, lib());
  std::mt19937 rng(31);
  model.load_weights_int(0, 4, random_weights(rng, 2, cfg.rows, 4));
  tb.preload_weights(model);
  for (int t = 0; t < 3; ++t) {
    const auto in = random_inputs(rng, cfg.rows, 8, true);
    EXPECT_EQ(tb.run_mac_int(in, 8, 4, 0), model.mac_int(in, 8, 4, 0));
  }
}

TEST(MacroConfigValidation, RejectsBadConfigs) {
  MacroConfig cfg = small_cfg();
  cfg.rows = 12;  // not pow2
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_cfg();
  cfg.mux = rtlgen::MuxStyle::kOai22Fused;
  cfg.mcr = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_cfg();
  cfg.pipe.retime_tree_cpa = true;
  cfg.pipe.reg_after_tree = false;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_cfg();
  cfg.pipe.retime_tree_cpa = true;
  cfg.column_split = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_cfg();
  cfg.ofu.retime_stage1 = true;
  cfg.ofu.input_reg = false;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_cfg();
  cfg.weight_bits = {3};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace

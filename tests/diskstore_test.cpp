// Tests of the durable artifact persistence layer: DiskBlobStore object
// integrity (atomic publish, corrupt/truncated rejection with CACHE-*
// diagnostics, cross-process sharing), round-trip bit-identity of every
// tier payload codec, the ArtifactStore L1/L2 read-through + write-back
// protocol, warm-restart sweep equivalence (cold frontier JSON == warm
// frontier JSON), and shard-merge byte-identity against a single-process
// sweep.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cell/characterize.hpp"
#include "core/artifact_codec.hpp"
#include "core/binio.hpp"
#include "core/diag.hpp"
#include "core/diskstore.hpp"
#include "core/stage.hpp"
#include "dse/shard.hpp"
#include "dse/sweep.hpp"
#include "layout/floorplan.hpp"
#include "layout/serialize.hpp"
#include "lint/lint.hpp"
#include "lint/serialize.hpp"
#include "netlist/serialize.hpp"
#include "netlist/stitch.hpp"
#include "power/activity.hpp"
#include "power/power.hpp"
#include "power/serialize.hpp"
#include "rtlgen/macro.hpp"
#include "sta/serialize.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

const cell::Library& test_library() {
  static const cell::Library lib =
      cell::characterize_default_library(tech::make_default_40nm());
  return lib;
}

rtlgen::MacroConfig small_cfg() {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 1;
  cfg.input_bits = {4};
  cfg.weight_bits = {4};
  return cfg;
}

core::PerfSpec small_spec() {
  core::PerfSpec spec;
  spec.rows = 32;
  spec.cols = 32;
  spec.mcr = 2;
  spec.input_bits = {4};
  spec.weight_bits = {4};
  spec.mac_freq_mhz = 300.0;
  spec.wupdate_freq_mhz = 300.0;
  return spec;
}

/// Fresh (removed + recreated-on-open) store root under the test temp dir.
std::string fresh_root(const std::string& name) {
  const std::string root = ::testing::TempDir() + "syndcim_" + name;
  std::filesystem::remove_all(root);
  return root;
}

/// Every payload type the ten tiers persist, built through the same
/// pipeline calls the compiler's stages make.
struct PipelinePayloads {
  rtlgen::MacroDesign macro;
  netlist::FlatNetlist flat;
  core::LintArtifact lint;
  core::PlacedArtifact placed;
  core::RouteArtifact route;
  core::TimingArtifact timing;
  core::PowerArtifact power;
  power::ActivityModel activity;
};

const PipelinePayloads& payloads() {
  static const PipelinePayloads p = [] {
    PipelinePayloads out;
    const cell::Library& lib = test_library();
    const rtlgen::MacroConfig cfg = small_cfg();
    out.macro = rtlgen::gen_macro(cfg);
    netlist::StitchResult sr =
        netlist::stitch_flatten(out.macro.design, out.macro.top);
    out.flat = std::move(sr.nl);
    {
      core::DiagEngine dg;
      dg.warning("TEST-RULE", "synthetic finding", "obj", "src");
      out.lint.summary = lint::lint_netlist(out.flat, lib, dg);
      out.lint.diags = dg.diags();
    }
    {
      core::DiagEngine dg;
      out.placed.floorplan = layout::sdp_place(out.flat, lib, cfg, {}, &dg);
      out.placed.diags = dg.diags();
    }
    out.route.drc = layout::run_drc(out.flat, lib, out.placed.floorplan);
    out.route.lvs = layout::run_lvs(out.flat, lib, out.placed.floorplan);
    out.route.wire =
        layout::extract_wire_model(out.flat, out.placed.floorplan, lib.node());
    {
      sta::StaEngine sta(out.flat, lib);
      sta::StaOptions topt;
      topt.clock_period_ps = 3000.0;
      topt.wire = out.route.wire;
      topt.collect_group_interfaces = true;
      core::DiagEngine dg;
      topt.diag = &dg;
      out.timing.timing = sta.analyze(topt);
      out.timing.diags = dg.diags();
    }
    out.activity = power::propagate_activity(out.flat, lib, {});
    {
      power::PowerOptions popt;
      popt.freq_mhz = 300.0;
      popt.wire = out.route.wire;
      out.power.power = power::analyze_power(out.flat, lib, out.activity, popt);
      out.power.area = power::analyze_area(out.flat, lib);
    }
    return out;
  }();
  return p;
}

std::uint64_t sum_l2_hits(const std::vector<core::ArtifactTierStats>& tiers) {
  std::uint64_t n = 0;
  for (const auto& t : tiers) n += t.l2_hits;
  return n;
}

}  // namespace

// ---------------------------------------------------------------------------
// Round-trip bit-identity of every tier payload codec: encode -> decode ->
// re-encode must reproduce the exact same bytes, which is what makes a
// warm (L2-decoded) artifact indistinguishable from a computed one.
// ---------------------------------------------------------------------------

TEST(ArtifactCodec, ModuleRoundTripsBitIdentical) {
  const auto& p = payloads();
  const netlist::Module& m = p.macro.design.module(p.macro.top);
  const std::string bytes = netlist::encode_module(m);
  const netlist::Module back = netlist::decode_module(bytes);
  EXPECT_EQ(netlist::encode_module(back), bytes);
  EXPECT_GT(netlist::deep_bytes(m), 0u);
}

TEST(ArtifactCodec, FlatBlockRoundTripsBitIdentical) {
  const auto& p = payloads();
  std::string sub;
  for (const std::string& name : p.macro.design.module_names()) {
    if (name != p.macro.top) {
      sub = name;
      break;
    }
  }
  ASSERT_FALSE(sub.empty()) << "macro has no submodules";
  const netlist::FlatBlock b = netlist::flatten_block(p.macro.design, sub);
  const std::string bytes = netlist::encode_flat_block(b);
  const netlist::FlatBlock back = netlist::decode_flat_block(bytes);
  EXPECT_EQ(netlist::encode_flat_block(back), bytes);
  EXPECT_GT(netlist::deep_bytes(b), 0u);
}

TEST(ArtifactCodec, FlatNetlistRoundTripsBitIdentical) {
  const auto& p = payloads();
  const std::string bytes = netlist::encode_flat_netlist(p.flat);
  const netlist::FlatNetlist back = netlist::decode_flat_netlist(bytes);
  EXPECT_EQ(netlist::encode_flat_netlist(back), bytes);
  EXPECT_EQ(back.gates().size(), p.flat.gates().size());
  EXPECT_GT(netlist::deep_bytes(p.flat), 0u);
}

TEST(ArtifactCodec, ActivityModelRoundTripsBitIdentical) {
  const auto& p = payloads();
  const std::string bytes = power::encode_activity_model(p.activity);
  const power::ActivityModel back = power::decode_activity_model(bytes);
  EXPECT_EQ(power::encode_activity_model(back), bytes);
  EXPECT_EQ(back.toggle_rate, p.activity.toggle_rate);
  EXPECT_EQ(back.p_one, p.activity.p_one);
}

TEST(ArtifactCodec, GroupActivityRoundTripsBitIdentical) {
  power::GroupActivityArtifact g;
  g.driven = {{0.9, 0.125}, {0.5, 0.25}, {1.0 / 3.0, 2.0 / 7.0}};
  const std::string bytes = power::encode_group_activity(g);
  const power::GroupActivityArtifact back =
      power::decode_group_activity(bytes);
  EXPECT_EQ(power::encode_group_activity(back), bytes);
  EXPECT_EQ(back.driven, g.driven);
}

TEST(ArtifactCodec, LintArtifactRoundTripsBitIdentical) {
  const auto& p = payloads();
  const std::string bytes = core::encode_lint_artifact(p.lint);
  const core::LintArtifact back = core::decode_lint_artifact(bytes);
  EXPECT_EQ(core::encode_lint_artifact(back), bytes);
  ASSERT_EQ(back.diags.size(), p.lint.diags.size());
  ASSERT_FALSE(back.diags.empty());
  EXPECT_EQ(back.diags.front().rule, "TEST-RULE");
}

TEST(ArtifactCodec, PlacedArtifactRoundTripsBitIdentical) {
  const auto& p = payloads();
  const std::string bytes = core::encode_placed_artifact(p.placed);
  const core::PlacedArtifact back = core::decode_placed_artifact(bytes);
  EXPECT_EQ(core::encode_placed_artifact(back), bytes);
  EXPECT_EQ(back.floorplan.gate_rects.size(),
            p.placed.floorplan.gate_rects.size());
}

TEST(ArtifactCodec, RouteArtifactRoundTripsBitIdentical) {
  const auto& p = payloads();
  const std::string bytes = core::encode_route_artifact(p.route);
  const core::RouteArtifact back = core::decode_route_artifact(bytes);
  EXPECT_EQ(core::encode_route_artifact(back), bytes);
  EXPECT_EQ(back.wire.per_net_cap_ff, p.route.wire.per_net_cap_ff);
}

TEST(ArtifactCodec, TimingArtifactRoundTripsBitIdentical) {
  const auto& p = payloads();
  const std::string bytes = core::encode_timing_artifact(p.timing);
  const core::TimingArtifact back = core::decode_timing_artifact(bytes);
  EXPECT_EQ(core::encode_timing_artifact(back), bytes);
  EXPECT_EQ(back.timing.fmax_mhz, p.timing.timing.fmax_mhz);
  EXPECT_EQ(back.timing.wns_ps, p.timing.timing.wns_ps);
}

TEST(ArtifactCodec, PowerArtifactRoundTripsBitIdentical) {
  const auto& p = payloads();
  const std::string bytes = core::encode_power_artifact(p.power);
  const core::PowerArtifact back = core::decode_power_artifact(bytes);
  EXPECT_EQ(core::encode_power_artifact(back), bytes);
  EXPECT_EQ(back.power.total_uw(), p.power.power.total_uw());
}

TEST(ArtifactCodec, DecodersRejectTruncatedAndTrailingBytes) {
  const auto& p = payloads();
  const std::string bytes = core::encode_timing_artifact(p.timing);
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(
        (void)core::decode_timing_artifact(std::string_view(bytes).substr(
            0, cut)),
        core::BinDecodeError)
        << "cut at " << cut;
  }
  EXPECT_THROW((void)core::decode_timing_artifact(bytes + "x"),
               core::BinDecodeError);
}

// ---------------------------------------------------------------------------
// DiskBlobStore object integrity
// ---------------------------------------------------------------------------

TEST(DiskBlobStore, PutGetRoundTripAndIdempotentPut) {
  const std::string root = fresh_root("store_basic");
  core::DiskBlobStore store(root);
  ASSERT_TRUE(store.usable());

  const std::string payload = std::string("hello artifact \0 bytes", 22);
  EXPECT_FALSE(store.get("flats", "k|1").has_value());
  EXPECT_TRUE(store.put("flats", "k|1", payload));
  // Re-putting an existing object is a cheap no-op success (the racing
  // writer of a content-addressed store wrote identical bytes).
  EXPECT_TRUE(store.put("flats", "k|1", payload));
  const auto got = store.get("flats", "k|1");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);

  const core::DiskStoreStats s = store.stats();
  EXPECT_EQ(s.objects_written, 1u);
  EXPECT_EQ(s.objects_read, 1u);
  EXPECT_EQ(s.read_misses, 1u);
  EXPECT_EQ(store.pending_diags(), 0u);

  const auto usage = store.disk_usage();
  EXPECT_EQ(usage.objects, 1u);
  EXPECT_GT(usage.file_bytes, payload.size());  // header + payload
}

TEST(DiskBlobStore, TruncatedObjectIsMissWithDiagAndStoreStaysUsable) {
  const std::string root = fresh_root("store_trunc");
  core::DiskBlobStore store(root);
  ASSERT_TRUE(store.put("timings", "key-a", std::string(256, 'x')));
  ASSERT_TRUE(store.put("timings", "key-b", "intact"));

  const std::string path = store.object_path("timings", "key-a");
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 64);

  EXPECT_FALSE(store.get("timings", "key-a").has_value());
  EXPECT_GE(store.stats().truncated, 1u);
  EXPECT_GE(store.pending_diags(), 1u);
  core::DiagEngine diag;
  store.drain_diags(diag);
  ASSERT_FALSE(diag.diags().empty());
  EXPECT_EQ(diag.diags().front().rule, "CACHE-TRUNC");
  EXPECT_EQ(store.pending_diags(), 0u);

  // The store keeps serving other objects — a bad entry degrades to a
  // recompute, never poisons the store.
  const auto ok = store.get("timings", "key-b");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, "intact");
}

TEST(DiskBlobStore, BitFlippedPayloadIsMissWithCorruptDiag) {
  const std::string root = fresh_root("store_flip");
  core::DiskBlobStore store(root);
  ASSERT_TRUE(store.put("powers", "key-c", std::string(128, 'p')));

  const std::string path = store.object_path("powers", "key-c");
  {
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-1, std::ios::end);  // last payload byte
    f.put('q');
  }
  EXPECT_FALSE(store.get("powers", "key-c").has_value());
  EXPECT_GE(store.stats().corrupt, 1u);
  core::DiagEngine diag;
  store.drain_diags(diag);
  ASSERT_FALSE(diag.diags().empty());
  EXPECT_EQ(diag.diags().front().rule, "CACHE-CORRUPT");
}

TEST(DiskBlobStore, UnusableRootDegradesToMissesNotCrashes) {
  // A path under a regular file can never become a directory.
  const std::string file = fresh_root("store_notadir");
  { std::ofstream f(file); f << "occupied"; }
  core::DiskBlobStore store(file + "/sub");
  EXPECT_FALSE(store.usable());
  EXPECT_FALSE(store.put("flats", "k", "v"));
  EXPECT_FALSE(store.get("flats", "k").has_value());
  EXPECT_GE(store.stats().write_fails, 1u);
  EXPECT_GE(store.pending_diags(), 1u);
}

TEST(DiskBlobStore, TwoProcessesShareOneStore) {
  const std::string root = fresh_root("store_fork");
  auto payload_for = [](int i) {
    return std::string(64 + i, static_cast<char>('a' + i % 23));
  };
  const int kKeys = 32;

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: its own store handle over the same root, racing the parent
    // on every key (content-addressed => identical bytes per key).
    core::DiskBlobStore child(root);
    bool ok = child.usable();
    for (int i = 0; i < kKeys; ++i) {
      ok = child.put("flats", "key" + std::to_string(i), payload_for(i)) && ok;
    }
    _exit(ok ? 0 : 1);
  }
  core::DiskBlobStore parent(root);
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_TRUE(parent.put("flats", "key" + std::to_string(i),
                           payload_for(i)));
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  for (int i = 0; i < kKeys; ++i) {
    const auto got = parent.get("flats", "key" + std::to_string(i));
    ASSERT_TRUE(got.has_value()) << "key" << i;
    EXPECT_EQ(*got, payload_for(i)) << "key" << i;
  }
  EXPECT_EQ(parent.stats().corrupt, 0u);
  EXPECT_EQ(parent.stats().truncated, 0u);
}

// ---------------------------------------------------------------------------
// ArtifactStore L1/L2 protocol
// ---------------------------------------------------------------------------

TEST(ArtifactStoreL2, FlushThenWarmFindServesDecodedPayload) {
  const std::string root = fresh_root("store_l1l2");
  const auto& p = payloads();
  const std::string key = "flatm1|test-key";

  {
    core::DiskBlobStore disk(root);
    core::ArtifactStore as;
    as.attach_blob_store(&disk);
    (void)as.flats.put(key, p.flat);
    EXPECT_EQ(as.flush_l2(), 1u);
    // A second flush has nothing dirty left.
    EXPECT_EQ(as.flush_l2(), 0u);
  }

  // "Restarted process": fresh L1, same disk root.
  core::DiskBlobStore disk(root);
  core::ArtifactStore as;
  as.attach_blob_store(&disk);
  const auto hit = as.flats.find(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(netlist::encode_flat_netlist(*hit),
            netlist::encode_flat_netlist(p.flat));
  EXPECT_EQ(sum_l2_hits(as.stats()), 1u);
  // L2-served entries are clean: nothing to write back.
  EXPECT_EQ(as.flush_l2(), 0u);
  // Second find is a pure L1 hit.
  ASSERT_NE(as.flats.find(key), nullptr);
  EXPECT_EQ(sum_l2_hits(as.stats()), 1u);
}

TEST(ArtifactStoreL2, CorruptObjectFallsBackToRecompute) {
  const std::string root = fresh_root("store_l2corrupt");
  const auto& p = payloads();
  const std::string key = "flatm1|will-corrupt";

  core::DiskBlobStore disk(root);
  {
    core::ArtifactStore as;
    as.attach_blob_store(&disk);
    (void)as.flats.put(key, p.flat);
    as.flush_l2();
  }
  const std::string path = disk.object_path("flats", key);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-5, std::ios::end);
    f.put('\xff');
  }
  core::DiskBlobStore disk2(root);
  core::ArtifactStore as;
  as.attach_blob_store(&disk2);
  EXPECT_EQ(as.flats.find(key), nullptr);  // miss, not garbage
  bool any_reject_or_miss = false;
  for (const auto& t : as.stats()) {
    any_reject_or_miss =
        any_reject_or_miss || t.l2_rejects > 0 || t.l2_misses > 0;
  }
  EXPECT_TRUE(any_reject_or_miss);
}

// ---------------------------------------------------------------------------
// Warm restarts and sharded sweeps
// ---------------------------------------------------------------------------

TEST(SweepPersistence, WarmRestartIsByteIdenticalAndServedFromL2) {
  const std::string root = fresh_root("sweep_warm");
  const std::vector<core::PerfSpec> specs = {small_spec()};
  dse::SweepOptions opt;
  opt.threads = 2;
  opt.store_dir = root;

  const dse::SweepReport cold = dse::run_sweep(test_library(), specs, opt);
  EXPECT_FALSE(cold.store_json.empty());

  // "Restart": a fresh run_sweep call builds a new private ArtifactStore
  // and a new DiskBlobStore over the same directory.
  const dse::SweepReport warm = dse::run_sweep(test_library(), specs, opt);
  EXPECT_EQ(dse::sweep_frontier_json(warm), dse::sweep_frontier_json(cold));
  EXPECT_GT(sum_l2_hits(warm.artifacts), 0u);
  EXPECT_GT(warm.artifact_hits(), 0u);

  // And the persisted path changes nothing about the results themselves:
  // a plain in-memory sweep has the same frontier bytes.
  dse::SweepOptions mem;
  mem.threads = 2;
  const dse::SweepReport plain = dse::run_sweep(test_library(), specs, mem);
  EXPECT_EQ(dse::sweep_frontier_json(plain), dse::sweep_frontier_json(cold));
}

TEST(SweepPersistence, CacheSaveFailureIsCountedAndDiagnosed) {
  const std::vector<core::PerfSpec> specs = {small_spec()};
  dse::SweepOptions opt;
  opt.threads = 2;
  // A cache path whose parent directory cannot exist: save_json fails.
  const std::string file = fresh_root("not_a_dir");
  { std::ofstream f(file); f << "occupied"; }
  opt.cache_path = file + "/cache.json";
  core::DiagEngine diag;
  opt.diag = &diag;

  const dse::SweepReport rep = dse::run_sweep(test_library(), specs, opt);
  EXPECT_EQ(rep.cache_save_fails, 1u);
  bool found = false;
  for (const auto& d : diag.diags()) found = found || d.rule == "CACHE-SAVEFAIL";
  EXPECT_TRUE(found);
  EXPECT_NE(dse::sweep_report_json(rep).find("\"save_fails\": 1"),
            std::string::npos);
}

TEST(ShardedSweep, ShardOwnsPartitionsExactly) {
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    for (std::size_t i = 0; i < 12; ++i) {
      std::size_t owners = 0;
      for (std::size_t s = 0; s < n; ++s) {
        owners += dse::shard_owns(i, s, n) ? 1 : 0;
      }
      EXPECT_EQ(owners, 1u) << "spec " << i << " shards " << n;
    }
  }
}

TEST(ShardedSweep, TwoShardsMergeByteIdenticalToSingleProcess) {
  const std::string store = fresh_root("shard_store");
  dse::SweepGrid grid;
  grid.base = small_spec();
  grid.mac_freqs_mhz = {250.0, 400.0};
  const std::vector<core::PerfSpec> specs = grid.expand();
  ASSERT_EQ(specs.size(), 2u);

  // Single-process reference (lints its frontier).
  dse::SweepOptions ref;
  ref.threads = 2;
  const dse::SweepReport whole = dse::run_sweep(test_library(), specs, ref);
  const std::string want = dse::sweep_frontier_json(whole);

  // Two shard "processes" over a shared store dir.
  std::vector<std::string> files;
  for (std::size_t sh = 0; sh < 2; ++sh) {
    dse::SweepOptions opt;
    opt.threads = 2;
    opt.store_dir = store;
    opt.shard_index = sh;
    opt.shard_count = 2;
    opt.lint_frontier = false;  // the merge lints the real frontier
    const dse::SweepReport rep = dse::run_sweep(test_library(), specs, opt);
    // Unowned slots stay empty, owned slots keep their global index.
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const bool owned = dse::shard_owns(i, sh, 2);
      EXPECT_EQ(!rep.per_spec[i].result.explored.empty(), owned)
          << "shard " << sh << " spec " << i;
    }
    const dse::ShardResult sr = dse::make_shard_result(specs, rep, sh, 2);
    EXPECT_EQ(sr.owned.size(), 1u);
    const std::string path =
        store + "/shard" + std::to_string(sh) + ".bin";
    ASSERT_TRUE(dse::write_shard_file(path, sr));
    files.push_back(path);
  }

  core::DiagEngine diag;
  dse::MergeOptions mopt;
  mopt.store_dir = store;  // merge lint reads through the shared store
  mopt.diag = &diag;
  const dse::SweepReport merged =
      dse::merge_shards(test_library(), files, mopt);
  EXPECT_EQ(dse::sweep_frontier_json(merged), want);

  // Shard-file round trip is bit-exact too.
  const dse::ShardResult back = dse::read_shard_file(files[0]);
  EXPECT_EQ(dse::encode_shard_result(back),
            dse::encode_shard_result(dse::read_shard_file(files[0])));
  EXPECT_EQ(back.shard_count, 2u);
  EXPECT_EQ(back.specs.size(), specs.size());
}

TEST(ShardedSweep, MergeRejectsInconsistentShardSets) {
  const std::string root = fresh_root("shard_bad");
  std::filesystem::create_directories(root);
  dse::SweepGrid grid;
  grid.base = small_spec();
  const std::vector<core::PerfSpec> specs = grid.expand();

  dse::SweepOptions opt;
  opt.threads = 1;
  opt.shard_index = 0;
  opt.shard_count = 2;
  opt.lint_frontier = false;
  const dse::SweepReport rep = dse::run_sweep(test_library(), specs, opt);
  const dse::ShardResult sr = dse::make_shard_result(specs, rep, 0, 2);
  const std::string path = root + "/only0.bin";
  ASSERT_TRUE(dse::write_shard_file(path, sr));

  // Missing shard 1: merge must refuse rather than silently produce a
  // partial frontier.
  EXPECT_THROW((void)dse::merge_shards(test_library(), {path}, {}),
               std::invalid_argument);
  // Duplicate shard 0 is inconsistent too.
  EXPECT_THROW((void)dse::merge_shards(test_library(), {path, path}, {}),
               std::invalid_argument);
  // A malformed file fails loudly, not as an empty merge.
  const std::string junk = root + "/junk.bin";
  { std::ofstream f(junk, std::ios::binary); f << "not a shard file"; }
  EXPECT_THROW((void)dse::merge_shards(test_library(), {junk}, {}),
               std::exception);
}

// Tests of the src/netmap subsystem: model ingestion diagnostics
// (NETMAP-* rules), tiler exactness against analytic op counts,
// scheduler cycle conservation, candidate pools (in-memory and persisted
// frontier JSON round-trip, stable point_ids), the two-stage fleet
// allocator's budget/energy guarantees, and byte-identical report JSON
// across sweep thread counts.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "cell/characterize.hpp"
#include "core/diag.hpp"
#include "dse/sweep.hpp"
#include "netmap/model.hpp"
#include "netmap/netmap.hpp"
#include "netmap/tile.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

/// True when some diagnostic carries `rule`.
bool has_rule(const core::DiagEngine& diag, const std::string& rule) {
  for (const auto& d : diag.diags()) {
    if (d.rule == rule) return true;
  }
  return false;
}

netmap::Layer make_layer(const std::string& name, long m, long k, long n,
                         int ib = 8, int wb = 8) {
  netmap::Layer l;
  l.name = name;
  l.m = m;
  l.k = k;
  l.n = n;
  l.input_bits = ib;
  l.weight_bits = wb;
  return l;
}

/// A synthetic macro type for allocator tests — no sweep needed.
netmap::MacroCandidate make_cand(const std::string& id, int rows, int cols,
                                 int mcr, std::vector<int> bits,
                                 double mac_mhz, double wupdate_mhz,
                                 double power_uw, double area_um2) {
  netmap::MacroCandidate c;
  c.point_id = id;
  c.label = id;
  c.rows = rows;
  c.cols = cols;
  c.mcr = mcr;
  c.input_bits = bits;
  c.weight_bits = std::move(bits);
  c.mac_mhz = mac_mhz;
  c.wupdate_mhz = wupdate_mhz;
  c.fmax_mhz = mac_mhz;
  c.power_uw = power_uw;
  c.area_um2 = area_um2;
  c.latency_cycles = 4;
  return c;
}

/// One small shared sweep for the frontier-based tests (characterization
/// is the slow part; every test reuses this report).
const dse::SweepReport& small_sweep(int threads = 2) {
  static const dse::SweepReport rep = [] {
    const auto lib =
        cell::characterize_default_library(tech::make_default_40nm());
    const std::map<std::string, std::string> kv = {
        {"rows", "32"},           {"cols", "32"},
        {"input_bits", "4,8"},    {"weight_bits", "4,8"},
        {"sweep_mac_mhz", "320"}, {"sweep_mcr", "1,2"}};
    dse::SweepOptions opt;
    opt.threads = 2;
    opt.lint_frontier = false;
    return dse::run_sweep(lib, dse::grid_from_kv(kv).expand(), opt);
  }();
  (void)threads;
  return rep;
}

// ---------------------------------------------------------------------------
// Model ingestion
// ---------------------------------------------------------------------------

TEST(NetmapModel, ParsesEveryKindAndLowersToGemm) {
  const std::string doc = R"({
    "format": "syndcim-model", "version": 1, "name": "net",
    "layers": [
      {"name": "c", "kind": "conv", "out_pixels": 100, "kernel": 3,
       "in_channels": 8, "out_channels": 16, "input_density": 0.5},
      {"name": "l", "kind": "linear", "batch": 4, "in_features": 64,
       "out_features": 10, "input_bits": 4, "weight_bits": 4},
      {"name": "a", "kind": "attention", "seq_len": 32, "model_dim": 64,
       "heads": 4}
    ]})";
  core::DiagEngine diag;
  const netmap::Model m = netmap::parse_model(doc, diag, "t");
  ASSERT_FALSE(diag.has_errors()) << diag.summary();
  ASSERT_EQ(m.layers.size(), 3u);
  EXPECT_EQ(m.name, "net");
  // conv: m = pixels, k = kernel^2 * cin, n = cout.
  EXPECT_EQ(m.layers[0].m, 100);
  EXPECT_EQ(m.layers[0].k, 72);
  EXPECT_EQ(m.layers[0].n, 16);
  EXPECT_DOUBLE_EQ(m.layers[0].input_density, 0.5);
  // linear: m = batch, k = in, n = out.
  EXPECT_EQ(m.layers[1].m, 4);
  EXPECT_EQ(m.layers[1].k, 64);
  EXPECT_EQ(m.layers[1].n, 10);
  EXPECT_EQ(m.layers[1].input_bits, 4);
  // attention: fused QKV projection, n = 3 * model_dim.
  EXPECT_EQ(m.layers[2].m, 32);
  EXPECT_EQ(m.layers[2].k, 64);
  EXPECT_EQ(m.layers[2].n, 192);
  EXPECT_EQ(m.total_macs(), 100L * 72 * 16 + 4L * 64 * 10 + 32L * 64 * 192);
}

TEST(NetmapModel, ReportsEveryDefectInOnePass) {
  const std::string doc = R"({
    "format": "syndcim-model", "version": 1,
    "layers": [
      {"name": "x", "kind": "warp"},
      {"name": "s", "kind": "conv", "out_pixels": 0, "kernel": 3,
       "in_channels": 1, "out_channels": 1},
      {"name": "p", "kind": "linear", "in_features": 8, "out_features": 8,
       "input_bits": 17},
      {"name": "d", "kind": "linear", "in_features": 8, "out_features": 8,
       "input_density": 1.5},
      {"name": "d", "kind": "linear", "in_features": 8, "out_features": 8},
      {"name": "h", "kind": "attention", "seq_len": 8, "model_dim": 30,
       "heads": 4}
    ]})";
  core::DiagEngine diag;
  (void)netmap::parse_model(doc, diag, "t");
  EXPECT_TRUE(diag.has_errors());
  EXPECT_TRUE(has_rule(diag, "NETMAP-BADKIND"));
  EXPECT_TRUE(has_rule(diag, "NETMAP-BADSHAPE"));      // out_pixels 0, heads
  EXPECT_TRUE(has_rule(diag, "NETMAP-BADPRECISION"));  // input_bits 17
  EXPECT_TRUE(has_rule(diag, "NETMAP-BADDENSITY"));    // density 1.5
  EXPECT_TRUE(has_rule(diag, "NETMAP-DUPLAYER"));      // second "d"
}

TEST(NetmapModel, RejectsBadDocuments) {
  core::DiagEngine d1;
  (void)netmap::parse_model("not json", d1);
  EXPECT_TRUE(has_rule(d1, "NETMAP-BADJSON"));

  core::DiagEngine d2;
  (void)netmap::parse_model(R"({"format": "other", "version": 1})", d2);
  EXPECT_TRUE(has_rule(d2, "NETMAP-BADFORMAT"));

  core::DiagEngine d3;
  (void)netmap::parse_model(
      R"({"format": "syndcim-model", "version": 1, "layers": []})", d3);
  EXPECT_TRUE(has_rule(d3, "NETMAP-NOLAYERS"));

  core::DiagEngine d4;
  (void)netmap::parse_model_file("/nonexistent/model.json", d4);
  EXPECT_TRUE(has_rule(d4, "NETMAP-BADJSON"));
}

TEST(NetmapModel, WarnsOnUnknownMembersButStillParses) {
  const std::string doc = R"({
    "format": "syndcim-model", "version": 1, "stride": 2,
    "layers": [{"name": "l", "kind": "linear", "in_features": 8,
                "out_features": 8, "padding": 1}]})";
  core::DiagEngine diag;
  const netmap::Model m = netmap::parse_model(doc, diag);
  EXPECT_FALSE(diag.has_errors());
  EXPECT_TRUE(has_rule(diag, "NETMAP-UNKNOWNKEY"));
  EXPECT_EQ(m.layers.size(), 1u);
}

// ---------------------------------------------------------------------------
// Tiler
// ---------------------------------------------------------------------------

TEST(NetmapTile, GridCoversGemmExactly) {
  const netmap::Layer l = make_layer("l", 7, 100, 10);
  const netmap::TileGrid g = netmap::tile_layer(l, 64, 64, 8);
  EXPECT_EQ(g.rows, 64);
  EXPECT_EQ(g.outs_per_tile, 8);  // 64 cols / 8 weight bits
  EXPECT_EQ(g.k_tiles, 2);        // ceil(100 / 64)
  EXPECT_EQ(g.n_tiles, 2);        // ceil(10 / 8)
  EXPECT_EQ(g.tail_k, 36);
  EXPECT_EQ(g.tail_n, 2);
  EXPECT_EQ(g.tiles(), 4);
  // Exact coverage, no overlap: tiles account for every (k, n) element.
  EXPECT_EQ((g.k_tiles - 1) * g.rows + g.tail_k, l.k);
  EXPECT_EQ((g.n_tiles - 1) * g.outs_per_tile + g.tail_n, l.n);
}

TEST(NetmapTile, ExactDivisionHasFullTails) {
  const netmap::TileGrid g =
      netmap::tile_layer(make_layer("l", 1, 128, 16), 64, 64, 4);
  EXPECT_EQ(g.k_tiles, 2);
  EXPECT_EQ(g.tail_k, 64);
  EXPECT_EQ(g.n_tiles, 1);
  EXPECT_EQ(g.tail_n, 16);
}

TEST(NetmapTile, ThrowsOnDegenerateMacro) {
  EXPECT_THROW((void)netmap::tile_layer(make_layer("l", 1, 8, 8), 64, 4, 8),
               std::invalid_argument);  // cols < weight_bits
  EXPECT_THROW((void)netmap::tile_layer(make_layer("l", 1, 8, 8), 0, 64, 8),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(NetmapSchedule, ConservesCycleCounts) {
  const netmap::Layer l = make_layer("l", 10, 100, 20, 8, 8);
  const netmap::TileGrid g = netmap::tile_layer(l, 64, 64, 8);
  netmap::MacroTiming t;
  t.mac_mhz = 400.0;
  t.wupdate_mhz = 200.0;
  t.mcr = 1;
  t.latency_cycles = 4;
  for (const int count : {1, 2, 3, 7}) {
    const netmap::LayerSchedule s = netmap::schedule_layer(l, g, t, count);
    EXPECT_EQ(s.tiles, g.tiles());
    EXPECT_EQ(s.mac_cycles_per_tile, l.m * (l.input_bits + 1));
    EXPECT_EQ(s.load_cycles_per_tile, 2 * g.rows);
    EXPECT_EQ(s.total_mac_cycles, s.tiles * s.mac_cycles_per_tile);
    EXPECT_EQ(s.total_load_cycles, s.tiles * s.load_cycles_per_tile);
    EXPECT_GE(s.dead_cycles, 0.0);
    EXPECT_GT(s.time_us, 0.0);
  }
}

TEST(NetmapSchedule, ClampsUnusedMacros) {
  const netmap::Layer l = make_layer("l", 4, 32, 4, 4, 4);
  const netmap::TileGrid g = netmap::tile_layer(l, 64, 64, 4);
  ASSERT_EQ(g.tiles(), 1);
  netmap::MacroTiming t;
  t.mac_mhz = 100.0;
  t.wupdate_mhz = 100.0;
  const netmap::LayerSchedule s = netmap::schedule_layer(l, g, t, 8);
  EXPECT_EQ(s.n_used, 1);  // one tile cannot spread over 8 macros
  EXPECT_EQ(s.tiles_busiest, 1);
}

TEST(NetmapSchedule, DoubleBufferingHidesLoads) {
  const netmap::Layer l = make_layer("l", 200, 512, 64, 8, 8);
  const netmap::TileGrid g = netmap::tile_layer(l, 64, 64, 8);
  ASSERT_GT(g.tiles(), 1);
  netmap::MacroTiming serial;
  serial.mac_mhz = 400.0;
  serial.wupdate_mhz = 400.0;
  serial.mcr = 1;
  netmap::MacroTiming dbuf = serial;
  dbuf.mcr = 2;
  const netmap::LayerSchedule ss = netmap::schedule_layer(l, g, serial, 1);
  const netmap::LayerSchedule ds = netmap::schedule_layer(l, g, dbuf, 1);
  EXPECT_FALSE(ss.double_buffered);
  EXPECT_TRUE(ds.double_buffered);
  EXPECT_LT(ds.exposed_load_us, ss.exposed_load_us);
  EXPECT_LT(ds.time_us, ss.time_us);
  // Same work either way — only the overlap differs.
  EXPECT_EQ(ds.total_mac_cycles, ss.total_mac_cycles);
  EXPECT_EQ(ds.total_load_cycles, ss.total_load_cycles);
}

TEST(NetmapSchedule, MoreMacrosNeverSlower) {
  const netmap::Layer l = make_layer("l", 50, 400, 100, 8, 8);
  const netmap::TileGrid g = netmap::tile_layer(l, 64, 64, 8);
  netmap::MacroTiming t;
  t.mac_mhz = 400.0;
  t.wupdate_mhz = 200.0;
  t.mcr = 2;
  double prev = 1e300;
  for (int count = 1; count <= 8; ++count) {
    const double now = netmap::schedule_layer(l, g, t, count).time_us;
    EXPECT_LE(now, prev + 1e-9) << "count " << count;
    prev = now;
  }
}

// ---------------------------------------------------------------------------
// Candidates
// ---------------------------------------------------------------------------

TEST(NetmapCandidates, EffectivePrecisionRoundsUp) {
  const netmap::MacroCandidate c =
      make_cand("c", 64, 64, 2, {4, 8}, 400, 400, 1000, 50000);
  EXPECT_EQ(c.effective_input_bits(3), 4);
  EXPECT_EQ(c.effective_input_bits(4), 4);
  EXPECT_EQ(c.effective_input_bits(5), 8);
  EXPECT_EQ(c.effective_input_bits(9), -1);
  EXPECT_TRUE(c.supports(make_layer("l", 1, 8, 8, 8, 8)));
  EXPECT_FALSE(c.supports(make_layer("l", 1, 8, 8, 12, 8)));
  EXPECT_FALSE(c.supports(make_layer("l", 1, 8, 8, 8, 12)));
}

TEST(NetmapCandidates, FrontierPointsCarryStableUniqueIds) {
  const dse::SweepReport& rep = small_sweep();
  ASSERT_FALSE(rep.frontier.empty());
  std::set<std::string> ids;
  for (const dse::FrontierPoint& fp : rep.frontier) {
    EXPECT_EQ(fp.point_id.size(), 16u) << "hex-64 content hash";
    // Recomputing from the config + producing spec reproduces the id.
    EXPECT_EQ(fp.point_id,
              dse::frontier_point_id(fp.point.cfg,
                                     rep.per_spec[fp.spec_index].spec));
    EXPECT_TRUE(ids.insert(fp.point_id).second)
        << "duplicate point_id " << fp.point_id;
  }
}

TEST(NetmapCandidates, PersistedFrontierRoundTrips) {
  const dse::SweepReport& rep = small_sweep();
  const auto direct = netmap::candidates_from_frontier(rep);
  ASSERT_FALSE(direct.empty());

  core::DiagEngine diag;
  const auto parsed = netmap::candidates_from_frontier_json(
      dse::sweep_frontier_json(rep), diag, "t");
  ASSERT_FALSE(diag.has_errors()) << diag.summary();
  ASSERT_EQ(parsed.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(parsed[i].point_id, direct[i].point_id);
    EXPECT_EQ(parsed[i].label, direct[i].label);
    EXPECT_EQ(parsed[i].rows, direct[i].rows);
    EXPECT_EQ(parsed[i].cols, direct[i].cols);
    EXPECT_EQ(parsed[i].mcr, direct[i].mcr);
    EXPECT_EQ(parsed[i].input_bits, direct[i].input_bits);
    EXPECT_EQ(parsed[i].weight_bits, direct[i].weight_bits);
    EXPECT_DOUBLE_EQ(parsed[i].mac_mhz, direct[i].mac_mhz);
    EXPECT_DOUBLE_EQ(parsed[i].wupdate_mhz, direct[i].wupdate_mhz);
    EXPECT_DOUBLE_EQ(parsed[i].power_uw, direct[i].power_uw);
    EXPECT_DOUBLE_EQ(parsed[i].area_um2, direct[i].area_um2);
  }
}

TEST(NetmapCandidates, RejectsFrontierWithoutMacroBlock) {
  core::DiagEngine diag;
  (void)netmap::candidates_from_frontier_json(
      R"({"format": "syndcim-frontier", "version": 1,
          "points": [{"label": "x", "power_uw": 1}]})",
      diag, "t");
  EXPECT_TRUE(has_rule(diag, "NETMAP-BADFRONTIER"));
}

// ---------------------------------------------------------------------------
// Fleet allocation
// ---------------------------------------------------------------------------

netmap::Model two_layer_model() {
  netmap::Model m;
  m.name = "two";
  // A compute-dominated layer (large m) and a load-dominated one (one
  // pass over many tiles) — they prefer different macro types.
  m.layers.push_back(make_layer("compute", 2000, 64, 16, 8, 8));
  m.layers.push_back(make_layer("load", 1, 2048, 64, 8, 8));
  return m;
}

std::vector<netmap::MacroCandidate> diverse_pool() {
  return {
      // Low power, serial loads: best energy on compute-bound layers.
      make_cand("frugal", 64, 64, 1, {4, 8}, 200, 100, 800, 40000),
      // Double-buffered, fast weight port: wins load-bound layers.
      make_cand("streamer", 64, 64, 2, {4, 8}, 400, 800, 2000, 60000),
  };
}

TEST(NetmapAllocate, HetNeverLosesToHomogOnEnergy) {
  const netmap::Model model = two_layer_model();
  netmap::NetmapOptions opt;
  opt.budget.max_macros = 4;
  const netmap::NetmapResult res =
      netmap::run_netmap(model, diverse_pool(), opt);
  ASSERT_TRUE(res.homog.valid);
  EXPECT_LE(res.total_energy_pj, res.homog.energy_pj + 1e-9);
  EXPECT_EQ(res.layers.size(), 2u);
  EXPECT_GT(res.total_time_us, 0.0);
}

TEST(NetmapAllocate, RespectsMacroAndAreaBudgets) {
  const netmap::Model model = two_layer_model();
  for (const int max_macros : {1, 2, 3, 8}) {
    netmap::NetmapOptions opt;
    opt.budget.max_macros = max_macros;
    const netmap::NetmapResult res =
        netmap::run_netmap(model, diverse_pool(), opt);
    EXPECT_LE(res.fleet_macros, max_macros);
    int owned = 0;
    double area = 0.0;
    for (const netmap::FleetEntry& fe : res.fleet) {
      owned += fe.count;
      area += fe.area_um2;
    }
    EXPECT_EQ(owned, res.fleet_macros);
    EXPECT_DOUBLE_EQ(area, res.fleet_area_um2);
  }
  // An area budget that only fits the small type forces it everywhere.
  netmap::NetmapOptions tight;
  tight.budget.max_macros = 4;
  tight.budget.max_area_um2 = 50000;
  const netmap::NetmapResult res =
      netmap::run_netmap(model, diverse_pool(), tight);
  ASSERT_EQ(res.fleet.size(), 1u);
  EXPECT_EQ(res.candidates[res.fleet[0].candidate_index].point_id, "frugal");
  EXPECT_LE(res.fleet_area_um2, 50000.0);
}

TEST(NetmapAllocate, ThrowsOnDegenerateInputs) {
  const netmap::Model model = two_layer_model();
  EXPECT_THROW((void)netmap::run_netmap(netmap::Model{}, diverse_pool()),
               std::invalid_argument);
  EXPECT_THROW((void)netmap::run_netmap(model, {}), std::invalid_argument);
  // 12-bit layer: no candidate supports it.
  netmap::Model wide = model;
  wide.layers.push_back(make_layer("wide", 1, 8, 8, 12, 12));
  EXPECT_THROW((void)netmap::run_netmap(wide, diverse_pool()),
               std::invalid_argument);
  netmap::NetmapOptions bad;
  bad.budget.max_macros = 0;
  EXPECT_THROW((void)netmap::run_netmap(model, diverse_pool(), bad),
               std::invalid_argument);
}

TEST(NetmapAllocate, MixedPrecisionModelSplitsTheFleet) {
  // INT4 layers run 2x denser columns and half the serial phases on a
  // 4-bit-capable macro; an 8-bit layer pins one type, the 4-bit layers
  // are free to pick the other.
  netmap::Model m;
  m.name = "mixed";
  m.layers.push_back(make_layer("int8", 500, 256, 64, 8, 8));
  m.layers.push_back(make_layer("int4", 500, 256, 64, 4, 4));
  const std::vector<netmap::MacroCandidate> pool = {
      make_cand("both", 64, 64, 2, {4, 8}, 400, 400, 2000, 60000),
      make_cand("narrow", 64, 64, 2, {4}, 400, 400, 900, 30000),
  };
  netmap::NetmapOptions opt;
  opt.budget.max_macros = 4;
  const netmap::NetmapResult res = netmap::run_netmap(m, pool, opt);
  ASSERT_TRUE(res.homog.valid);
  // Only "both" supports the INT8 layer, so homog must use it; the
  // heterogeneous fleet runs the INT4 layer on the cheaper narrow macro
  // and strictly beats the baseline.
  EXPECT_EQ(res.candidates[res.homog.candidate_index].point_id, "both");
  EXPECT_EQ(res.candidates[res.layers[1].candidate_index].point_id, "narrow");
  EXPECT_LT(res.total_energy_pj, res.homog.energy_pj);
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

TEST(NetmapReport, VersionedAndDeterministicAcrossThreadCounts) {
  const std::string model_doc = R"({
    "format": "syndcim-model", "version": 1, "name": "d",
    "layers": [
      {"name": "a", "kind": "linear", "batch": 16, "in_features": 100,
       "out_features": 24, "input_bits": 4, "weight_bits": 4},
      {"name": "b", "kind": "linear", "batch": 16, "in_features": 24,
       "out_features": 8, "input_bits": 8, "weight_bits": 8}
    ]})";
  core::DiagEngine diag;
  const netmap::Model model = netmap::parse_model(model_doc, diag);
  ASSERT_FALSE(diag.has_errors());

  const auto lib =
      cell::characterize_default_library(tech::make_default_40nm());
  const std::map<std::string, std::string> kv = {
      {"rows", "32"},           {"cols", "32"},
      {"input_bits", "4,8"},    {"weight_bits", "4,8"},
      {"sweep_mac_mhz", "320"}, {"sweep_mcr", "1,2"}};
  std::string first;
  for (const int threads : {1, 4}) {
    dse::SweepOptions sopt;
    sopt.threads = threads;
    sopt.lint_frontier = false;
    const dse::SweepReport rep =
        dse::run_sweep(lib, dse::grid_from_kv(kv).expand(), sopt);
    const netmap::NetmapResult res =
        netmap::run_netmap(model, netmap::candidates_from_frontier(rep));
    const std::string report = netmap::netmap_report_json(res);
    if (first.empty()) {
      first = report;
    } else {
      EXPECT_EQ(report, first) << "report differs at threads=" << threads;
    }
  }
  EXPECT_NE(first.find("\"format\": \"syndcim-netmap\""), std::string::npos);
  EXPECT_NE(first.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(first.find("\"homog_baseline\""), std::string::npos);
  EXPECT_NE(first.find("\"point_id\""), std::string::npos);
  EXPECT_EQ(first.back(), '\n');
}

}  // namespace

// GateBuilder datapath primitives: ripple adders, add/sub, carry-select
// adders, mux/register buses — exhaustive at small widths, randomized
// property sweeps at realistic widths.
#include <gtest/gtest.h>

#include <random>

#include "cell/characterize.hpp"
#include "netlist/design.hpp"
#include "netlist/flatten.hpp"
#include "num/int_ops.hpp"
#include "rtlgen/gates.hpp"
#include "sim/gate_sim.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;
using rtlgen::GateBuilder;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

enum class AdderKind { kRca, kCsel, kAddSub, kAddSubFast };

/// Builds a module computing a[w] op b[w] (+cin / sub) and exposes sum+co.
netlist::Design adder_design(AdderKind kind, int w, bool with_cin) {
  netlist::Design d;
  netlist::Module m("dut");
  GateBuilder gb(m, "g_");
  const auto a = m.add_port_bus("a", netlist::PortDir::kIn, w);
  const auto b = m.add_port_bus("b", netlist::PortDir::kIn, w);
  const auto ctl = m.add_port("ctl", netlist::PortDir::kIn);
  const auto s = m.add_port_bus("s", netlist::PortDir::kOut, w);
  const auto co = m.add_port("co", netlist::PortDir::kOut);
  std::vector<netlist::NetId> av(a.begin(), a.end()),
      bv(b.begin(), b.end());
  GateBuilder::AddOut out;
  switch (kind) {
    case AdderKind::kRca:
      out = gb.rca(av, bv, with_cin ? ctl : netlist::NetId{});
      break;
    case AdderKind::kCsel:
      out = gb.csel(av, bv, with_cin ? ctl : netlist::NetId{});
      break;
    case AdderKind::kAddSub:
      out = gb.add_sub(av, bv, ctl);
      break;
    case AdderKind::kAddSubFast:
      out = gb.add_sub_fast(av, bv, ctl);
      break;
  }
  for (int i = 0; i < w; ++i) {
    m.add_cell("ob" + std::to_string(i), "BUFX1",
               {{"A", out.sum[static_cast<std::size_t>(i)]}, {"Y", s[i]}});
  }
  m.add_cell("obc", "BUFX1", {{"A", out.cout}, {"Y", co}});
  d.add_module(std::move(m));
  return d;
}

std::uint64_t expected(AdderKind kind, std::uint64_t a, std::uint64_t b,
                       int ctl, int w) {
  const std::uint64_t mask = (w >= 64) ? ~0ull : ((1ull << w) - 1);
  switch (kind) {
    case AdderKind::kRca:
    case AdderKind::kCsel:
      return (a + b + static_cast<std::uint64_t>(ctl)) & ((mask << 1) | 1);
    case AdderKind::kAddSub:
    case AdderKind::kAddSubFast:
      return (a + ((b ^ (ctl ? mask : 0)) & mask) +
              static_cast<std::uint64_t>(ctl)) &
             ((mask << 1) | 1);
  }
  return 0;
}

class AdderParam
    : public ::testing::TestWithParam<std::tuple<AdderKind, int /*w*/>> {};

TEST_P(AdderParam, MatchesArithmetic) {
  const auto [kind, w] = GetParam();
  const bool with_cin =
      kind == AdderKind::kAddSub || kind == AdderKind::kAddSubFast || true;
  const auto d = adder_design(kind, w, with_cin);
  const auto flat = netlist::flatten(d, "dut");
  sim::GateSim gs(flat, lib());
  const std::uint64_t mask = (1ull << w) - 1;

  if (w <= 5) {  // exhaustive
    for (std::uint64_t a = 0; a <= mask; ++a) {
      for (std::uint64_t b = 0; b <= mask; ++b) {
        for (int ctl = 0; ctl < 2; ++ctl) {
          gs.set_input_bus("a", a, w);
          gs.set_input_bus("b", b, w);
          gs.set_input("ctl", ctl);
          gs.eval();
          const std::uint64_t got =
              gs.output_bus("s", w) |
              (static_cast<std::uint64_t>(gs.output("co")) << w);
          EXPECT_EQ(got, expected(kind, a, b, ctl, w))
              << "a=" << a << " b=" << b << " ctl=" << ctl;
        }
      }
    }
  } else {  // randomized
    std::mt19937_64 rng(0x5EED ^ static_cast<unsigned>(w));
    for (int t = 0; t < 300; ++t) {
      const std::uint64_t a = rng() & mask, b = rng() & mask;
      const int ctl = static_cast<int>(rng() & 1);
      gs.set_input_bus("a", a, w);
      gs.set_input_bus("b", b, w);
      gs.set_input("ctl", ctl);
      gs.eval();
      const std::uint64_t got =
          gs.output_bus("s", w) |
          (static_cast<std::uint64_t>(gs.output("co")) << w);
      EXPECT_EQ(got, expected(kind, a, b, ctl, w))
          << "a=" << a << " b=" << b << " ctl=" << ctl << " w=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AdderParam,
    ::testing::Combine(::testing::Values(AdderKind::kRca, AdderKind::kCsel,
                                         AdderKind::kAddSub,
                                         AdderKind::kAddSubFast),
                       ::testing::Values(3, 4, 5, 9, 13, 16, 21, 24)));

TEST(CarrySelect, FasterThanRippleAtWideWidths) {
  auto period = [&](AdderKind kind, int w) {
    const auto d = adder_design(kind, w, true);
    const auto flat = netlist::flatten(d, "dut");
    sta::StaEngine eng(flat, lib());
    return eng.analyze({}).min_period_ps;
  };
  EXPECT_LT(period(AdderKind::kCsel, 21), period(AdderKind::kRca, 21));
  EXPECT_LT(period(AdderKind::kCsel, 13), period(AdderKind::kRca, 13));
}

TEST(CarrySelect, CostsMoreAreaThanRipple) {
  auto cells = [&](AdderKind kind, int w) {
    const auto d = adder_design(kind, w, true);
    return netlist::flatten(d, "dut").gates().size();
  };
  EXPECT_GT(cells(AdderKind::kCsel, 16), cells(AdderKind::kRca, 16));
}

TEST(GateBuilderHelpers, WiringOnly) {
  netlist::Module m("t");
  GateBuilder gb(m, "g_");
  const auto a = m.add_bus("a", 3);
  // sext repeats the MSB net, costs no gates.
  const auto s = GateBuilder::sext(a, 6);
  ASSERT_EQ(s.size(), 6u);
  EXPECT_EQ(s[3], a[2]);
  EXPECT_EQ(s[5], a[2]);
  EXPECT_EQ(m.instances().size(), 0u);
  // shl prepends const0 nets.
  const auto sh = gb.shl({a.begin(), a.end()}, 2);
  ASSERT_EQ(sh.size(), 5u);
  EXPECT_EQ(m.net(sh[0]).tie, netlist::NetConst::kZero);
  EXPECT_EQ(sh[2], a[0]);
  EXPECT_EQ(m.instances().size(), 0u);
  // zext appends const0.
  const auto z = gb.zext({a.begin(), a.end()}, 5);
  EXPECT_EQ(m.net(z[4]).tie, netlist::NetConst::kZero);
  EXPECT_THROW((void)GateBuilder::sext(a, 2), std::invalid_argument);
  EXPECT_THROW((void)gb.zext({a.begin(), a.end()}, 2),
               std::invalid_argument);
  EXPECT_THROW((void)gb.shl({a.begin(), a.end()}, -1),
               std::invalid_argument);
}

TEST(GateBuilderHelpers, RejectsBadOperands) {
  netlist::Module m("t");
  GateBuilder gb(m, "g_");
  const auto a = m.add_bus("a", 3);
  const auto b = m.add_bus("b", 2);
  EXPECT_THROW((void)gb.rca({a.begin(), a.end()}, {b.begin(), b.end()}),
               std::invalid_argument);
  EXPECT_THROW((void)gb.mux_bus({a.begin(), a.end()}, {b.begin(), b.end()},
                                a[0]),
               std::invalid_argument);
  EXPECT_THROW((void)gb.csel({a.begin(), a.end()}, {b.begin(), b.end()}),
               std::invalid_argument);
}

}  // namespace

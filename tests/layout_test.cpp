#include <gtest/gtest.h>

#include <cmath>

#include "cell/characterize.hpp"
#include "layout/floorplan.hpp"
#include "layout/route.hpp"
#include "netlist/flatten.hpp"
#include "rtlgen/macro.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

rtlgen::MacroConfig tiny_cfg() {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 2;
  cfg.input_bits = {4};
  cfg.weight_bits = {4};
  return cfg;
}

struct Built {
  rtlgen::MacroDesign md;
  netlist::FlatNetlist flat;
};

Built build(const rtlgen::MacroConfig& cfg) {
  Built b{rtlgen::gen_macro(cfg), {}};
  b.flat = netlist::flatten(b.md.design, b.md.top);
  return b;
}

TEST(Layout, SdpPlacesEverythingDrcLvsClean) {
  const auto cfg = tiny_cfg();
  const auto b = build(cfg);
  const auto fp = layout::sdp_place(b.flat, lib(), cfg);
  for (std::size_t g = 0; g < b.flat.gates().size(); ++g) {
    EXPECT_TRUE(fp.placed[g]) << g;
  }
  const auto drc = layout::run_drc(b.flat, lib(), fp);
  EXPECT_TRUE(drc.clean()) << (drc.violations.empty()
                                   ? ""
                                   : drc.violations[0]);
  const auto lvs = layout::run_lvs(b.flat, lib(), fp);
  EXPECT_TRUE(lvs.clean()) << (lvs.mismatches.empty() ? ""
                                                      : lvs.mismatches[0]);
  EXPECT_GT(fp.utilization, 0.3);
  EXPECT_LE(fp.utilization, 1.0);
  EXPECT_GT(fp.wirelength_um, 0.0);
}

TEST(Layout, RegionsAreStructured) {
  const auto cfg = tiny_cfg();
  const auto b = build(cfg);
  const auto fp = layout::sdp_place(b.flat, lib(), cfg);
  ASSERT_NE(fp.region("col0"), nullptr);
  ASSERT_NE(fp.region("col7"), nullptr);
  ASSERT_NE(fp.region("wldrv"), nullptr);
  ASSERT_NE(fp.region("wrport"), nullptr);
  ASSERT_NE(fp.region("ofu_g0"), nullptr);
  // Columns tile left to right at a uniform pitch.
  const double pitch = fp.region("col1")->rect.x - fp.region("col0")->rect.x;
  for (int c = 1; c < 8; ++c) {
    const auto* r = fp.region("col" + std::to_string(c));
    ASSERT_NE(r, nullptr);
    EXPECT_NEAR(r->rect.x - fp.region("col" + std::to_string(c - 1))->rect.x,
                pitch, 1e-6);
  }
  // WL driver sits left of the array.
  EXPECT_LE(fp.region("wldrv")->rect.x2(),
            fp.region("col0")->rect.x + 1e-6);
}

TEST(Layout, BitcellsOnRegularGrid) {
  const auto cfg = tiny_cfg();
  const auto b = build(cfg);
  const auto fp = layout::sdp_place(b.flat, lib(), cfg);
  const auto& bc = lib().get("SRAM6T");
  // All bitcell rects have the bitcell footprint and y positions that are
  // multiples of the bitcell height relative to the array origin.
  double array_y0 = 1e30;
  std::vector<std::size_t> cells;
  for (std::size_t g = 0; g < b.flat.gates().size(); ++g) {
    if (b.flat.master_names()[b.flat.gates()[g].master] == "SRAM6T") {
      cells.push_back(g);
      array_y0 = std::min(array_y0, fp.gate_rects[g].y);
    }
  }
  ASSERT_EQ(cells.size(), 256u);
  for (const std::size_t g : cells) {
    const auto& r = fp.gate_rects[g];
    EXPECT_NEAR(r.w, bc.width_um, 1e-9);
    const double rel = (r.y - array_y0) / bc.height_um;
    EXPECT_NEAR(rel, std::round(rel), 1e-6);
  }
}

TEST(Layout, SdpBeatsScatteredOnWirelength) {
  // At realistic macro sizes, datapath connectivity is strip-local so the
  // structured placement wins clearly; tiny toy macros are too compact to
  // show it, hence 64x16.
  rtlgen::MacroConfig cfg = tiny_cfg();
  cfg.rows = 64;
  cfg.cols = 16;
  const auto b = build(cfg);
  const auto sdp = layout::sdp_place(b.flat, lib(), cfg);
  const auto rnd = layout::scattered_place(b.flat, lib(), 1);
  EXPECT_LT(sdp.wirelength_um, rnd.wirelength_um);
}

TEST(Layout, ScatteredIsDrcCleanToo) {
  const auto cfg = tiny_cfg();
  const auto b = build(cfg);
  const auto fp = layout::scattered_place(b.flat, lib(), 7);
  const auto drc = layout::run_drc(b.flat, lib(), fp);
  EXPECT_TRUE(drc.clean()) << (drc.violations.empty()
                                   ? ""
                                   : drc.violations[0]);
}

TEST(Layout, WireModelBackAnnotation) {
  const auto cfg = tiny_cfg();
  const auto b = build(cfg);
  const auto fp = layout::sdp_place(b.flat, lib(), cfg);
  const auto wm = layout::extract_wire_model(b.flat, fp, lib().node());
  ASSERT_EQ(wm.per_net_cap_ff.size(), b.flat.net_count());
  double total = 0.0;
  for (const double c : wm.per_net_cap_ff) {
    EXPECT_GE(c, 0.0);
    total += c;
  }
  EXPECT_GT(total, 0.0);
  // Roughly consistent with wirelength * cap-per-um (Steiner factor >= 1).
  EXPECT_GE(total, fp.wirelength_um * lib().node().wire_c_ff_per_um * 0.99);
}

TEST(Layout, DrcCatchesInjectedOverlap) {
  const auto cfg = tiny_cfg();
  const auto b = build(cfg);
  auto fp = layout::sdp_place(b.flat, lib(), cfg);
  fp.gate_rects[1] = fp.gate_rects[0];  // force overlap
  const auto drc = layout::run_drc(b.flat, lib(), fp);
  EXPECT_FALSE(drc.clean());
}

TEST(Layout, LvsCatchesFootprintMismatch) {
  const auto cfg = tiny_cfg();
  const auto b = build(cfg);
  auto fp = layout::sdp_place(b.flat, lib(), cfg);
  fp.gate_rects[0].w += 1.0;
  EXPECT_FALSE(layout::run_lvs(b.flat, lib(), fp).clean());
  fp.placed[0] = 0;
  EXPECT_FALSE(layout::run_lvs(b.flat, lib(), fp).clean());
}

TEST(Layout, OutlineScalesWithMacroSize) {
  auto area_of = [&](int rows, int cols) {
    rtlgen::MacroConfig cfg = tiny_cfg();
    cfg.rows = rows;
    cfg.cols = cols;
    const auto b = build(cfg);
    return layout::sdp_place(b.flat, lib(), cfg).outline.area();
  };
  const double a16 = area_of(16, 8);
  const double a32 = area_of(32, 16);
  EXPECT_GT(a32, a16 * 2.2);  // ~4x cells, peripheral overhead amortizes
}

TEST(Layout, RejectsNonMacroNetlist) {
  netlist::Design d;
  netlist::Module m("top");
  const auto a = m.add_port("a", netlist::PortDir::kIn);
  const auto y = m.add_port("y", netlist::PortDir::kOut);
  m.add_cell("i", "INVX1", {{"A", a}, {"Y", y}});
  d.add_module(std::move(m));
  const auto flat = netlist::flatten(d, "top");
  EXPECT_THROW((void)layout::sdp_place(flat, lib(), tiny_cfg()),
               std::invalid_argument);
}

}  // namespace

namespace {
using namespace syndcim;

TEST(GlobalRoute, SdpMacroCongestionIsHealthy) {
  const auto cfg = tiny_cfg();
  const auto b = build(cfg);
  const auto fp = layout::sdp_place(b.flat, lib(), cfg);
  const auto rr = layout::global_route(b.flat, fp, lib().node());
  EXPECT_GT(rr.total_routed_um, 0.0);
  // One-trunk Steiner tracks the HPWL closely (intra-row jogs excluded).
  EXPECT_GE(rr.total_routed_um, fp.wirelength_um * 0.9);
  EXPECT_LE(rr.total_routed_um, fp.wirelength_um * 1.5);
  EXPECT_GT(rr.grid.capacity, 0u);
  // Average congestion is low; isolated hotspots (converging accumulator
  // buses) stay within what detouring absorbs.
  EXPECT_LT(rr.avg_utilization, 0.6);
  const double hot_fraction =
      static_cast<double>(rr.overflow_gcells) /
      (static_cast<double>(rr.grid.nx) * rr.grid.ny);
  EXPECT_LT(hot_fraction, 0.25);
}

TEST(GlobalRoute, ScatteredPlacementIsMoreCongested) {
  rtlgen::MacroConfig cfg = tiny_cfg();
  cfg.rows = 64;
  cfg.cols = 16;
  const auto b = build(cfg);
  const auto sdp = layout::sdp_place(b.flat, lib(), cfg);
  const auto rnd = layout::scattered_place(b.flat, lib(), 3);
  const auto r1 = layout::global_route(b.flat, sdp, lib().node());
  const auto r2 = layout::global_route(b.flat, rnd, lib().node());
  EXPECT_LT(r1.total_routed_um, r2.total_routed_um);
  EXPECT_LE(r1.max_utilization, r2.max_utilization * 1.5);
}

TEST(GlobalRoute, TightCapacityOverflows) {
  const auto cfg = tiny_cfg();
  const auto b = build(cfg);
  const auto fp = layout::sdp_place(b.flat, lib(), cfg);
  // Starve the router of tracks: overflow must be detected.
  const auto rr = layout::global_route(b.flat, fp, lib().node(), 10.0, 0.02);
  EXPECT_FALSE(rr.routable());
  EXPECT_GT(rr.max_utilization, 1.0);
  EXPECT_THROW(
      (void)layout::global_route(b.flat, fp, lib().node(), -1.0, 0.5),
      std::invalid_argument);
}

}  // namespace

// Tests for the interchange writers (Verilog, SDC, SDP TCL, DEF, compile
// artifacts) and the Verilog parser round-trip.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>

#include "cell/characterize.hpp"
#include "core/artifacts.hpp"
#include "core/compiler.hpp"
#include "layout/sdp_script.hpp"
#include "netlist/flatten.hpp"
#include "netlist/verilog.hpp"
#include "netlist/verilog_parser.hpp"
#include "rtlgen/adder_tree.hpp"
#include "rtlgen/macro.hpp"
#include "sim/gate_sim.hpp"
#include "sta/sdc.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

TEST(VerilogIdent, Escaping) {
  EXPECT_EQ(netlist::verilog_ident("sum[3]"), "sum_3_");
  EXPECT_EQ(netlist::verilog_ident("a/b.c"), "a_b_c");
  EXPECT_EQ(netlist::verilog_ident("3x"), "n3x");
  EXPECT_EQ(netlist::verilog_ident("plain_name"), "plain_name");
}

TEST(VerilogWriter, EmitsStructuralNetlist) {
  rtlgen::AdderTreeConfig cfg;
  cfg.rows = 8;
  netlist::Design d;
  d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));
  std::ostringstream os;
  netlist::write_verilog(d, "tree", os);
  const std::string v = os.str();
  EXPECT_NE(v.find("module tree ("), std::string::npos);
  EXPECT_NE(v.find("input in_0_;"), std::string::npos);
  EXPECT_NE(v.find("output sum_0_;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("CMP42X1"), std::string::npos);
}

TEST(VerilogRoundTrip, TreeParsesAndSimulatesIdentically) {
  rtlgen::AdderTreeConfig cfg;
  cfg.rows = 16;
  cfg.style = rtlgen::AdderTreeStyle::kMixed;
  cfg.fa_fraction = 0.5;
  netlist::Design d;
  d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));

  std::ostringstream os;
  netlist::write_verilog(d, "tree", os);
  std::istringstream is(os.str());
  const netlist::Design d2 = netlist::parse_verilog(is);

  const auto f1 = netlist::flatten(d, "tree");
  const auto f2 = netlist::flatten(d2, "tree");
  EXPECT_EQ(f1.gates().size(), f2.gates().size());

  // Same master histogram.
  auto histo = [](const netlist::FlatNetlist& f) {
    std::map<std::string, int> h;
    for (const auto& g : f.gates()) ++h[f.master_names()[g.master]];
    return h;
  };
  EXPECT_EQ(histo(f1), histo(f2));

  // Same function (port names are escaped in the parsed design).
  sim::GateSim s1(f1, lib());
  sim::GateSim s2(f2, lib());
  std::mt19937 rng(3);
  for (int t = 0; t < 50; ++t) {
    std::uint64_t pop = 0;
    for (int i = 0; i < 16; ++i) {
      const int b = static_cast<int>(rng() & 1);
      pop += static_cast<std::uint64_t>(b);
      s1.set_input(netlist::bus_name("in", i), b);
      s2.set_input("in_" + std::to_string(i) + "_", b);
    }
    s1.eval();
    s2.eval();
    std::uint64_t v2 = 0;
    for (int i = 0; i < 5; ++i) {
      v2 |= static_cast<std::uint64_t>(
                s2.output("sum_" + std::to_string(i) + "_"))
            << i;
    }
    EXPECT_EQ(s1.output_bus("sum", 5), pop);
    EXPECT_EQ(v2, pop);
  }
}

TEST(VerilogRoundTrip, HierarchicalMacroStructure) {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 2;
  cfg.input_bits = {4};
  cfg.weight_bits = {4};
  const auto md = rtlgen::gen_macro(cfg);
  std::ostringstream os;
  netlist::write_verilog(md.design, md.top, os);
  std::istringstream is(os.str());
  const auto d2 = netlist::parse_verilog(is);
  EXPECT_TRUE(d2.has_module("dcim_macro"));
  EXPECT_TRUE(d2.has_module("dcim_col"));
  EXPECT_TRUE(d2.has_module("tree"));
  const auto f1 = netlist::flatten(md.design, md.top);
  const auto f2 = netlist::flatten(d2, "dcim_macro");
  EXPECT_EQ(f1.gates().size(), f2.gates().size());
  EXPECT_EQ(f1.net_count(), f2.net_count());
}

TEST(VerilogParser, RejectsGarbage) {
  std::istringstream bad1("module m (; endmodule");
  EXPECT_THROW((void)netlist::parse_verilog(bad1), std::invalid_argument);
  std::istringstream bad2("module m (); assign x = 1'bz; endmodule");
  EXPECT_THROW((void)netlist::parse_verilog(bad2), std::invalid_argument);
  std::istringstream bad3("notmodule m ();");
  EXPECT_THROW((void)netlist::parse_verilog(bad3), std::invalid_argument);
}

TEST(SdcWriter, EmitsConstraints) {
  sta::StaOptions opt;
  opt.clock_period_ps = 2500;
  opt.write_period_ps = 5000;
  opt.static_inputs = {"bsel[0]", "mode[1]"};
  std::ostringstream os;
  sta::write_sdc(opt, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("create_clock -name mac_clk -period 2.5"),
            std::string::npos);
  EXPECT_NE(s.find("create_clock -name wupdate_clk -add -period 5"),
            std::string::npos);
  EXPECT_NE(s.find("set_case_analysis 0 [get_ports {bsel[0]}]"),
            std::string::npos);
  EXPECT_NE(s.find("set_max_transition"), std::string::npos);
}

TEST(SdpScript, TclAndDefCoverAllPlacedCells) {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 1;
  cfg.input_bits = {4};
  cfg.weight_bits = {4};
  const auto md = rtlgen::gen_macro(cfg);
  const auto flat = netlist::flatten(md.design, md.top);
  const auto fp = layout::sdp_place(flat, lib(), cfg);

  std::ostringstream tcl;
  layout::write_sdp_tcl(flat, fp, tcl);
  const std::string t = tcl.str();
  EXPECT_NE(t.find("floorPlan -site core"), std::string::npos);
  EXPECT_NE(t.find("createInstGroup grp_col0"), std::string::npos);
  std::size_t count = 0, pos = 0;
  while ((pos = t.find("placeInstance", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, flat.gates().size());

  std::ostringstream def;
  layout::write_def(flat, fp, md.top, def);
  const std::string s = def.str();
  EXPECT_NE(s.find("DESIGN dcim_macro ;"), std::string::npos);
  EXPECT_NE(
      s.find("COMPONENTS " + std::to_string(flat.gates().size()) + " ;"),
      std::string::npos);
  EXPECT_NE(s.find("+ PLACED ("), std::string::npos);
  EXPECT_NE(s.find("END COMPONENTS"), std::string::npos);
}

TEST(Artifacts, WritesCompleteBundle) {
  core::SynDcimCompiler compiler(lib());
  core::PerfSpec spec;
  spec.rows = 16;
  spec.cols = 8;
  spec.mcr = 2;
  spec.input_bits = {4};
  spec.weight_bits = {4};
  spec.mac_freq_mhz = 300;
  spec.wupdate_freq_mhz = 300;
  const auto res = compiler.compile(spec);
  const std::string dir = ::testing::TempDir() + "/syndcim_artifacts";
  const auto files = core::write_artifacts(res, spec, lib(), dir);
  ASSERT_EQ(files.size(), 7u);
  for (const auto& f : files) {
    EXPECT_TRUE(std::filesystem::exists(f)) << f;
    EXPECT_GT(std::filesystem::file_size(f), 50u) << f;
  }
  // The emitted Verilog is parseable and flattens to the same size.
  std::ifstream v(dir + "/macro.v");
  const auto d2 = netlist::parse_verilog(v);
  const auto f1 = netlist::flatten(res.impl.macro.design,
                                   res.impl.macro.top);
  const auto f2 = netlist::flatten(d2, res.impl.macro.top);
  EXPECT_EQ(f1.gates().size(), f2.gates().size());
  std::filesystem::remove_all(dir);
}

}  // namespace

#include <gtest/gtest.h>

#include <bitset>
#include <random>

#include "cell/characterize.hpp"
#include "netlist/design.hpp"
#include "netlist/flatten.hpp"
#include "rtlgen/adder_tree.hpp"
#include "sim/gate_sim.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;
using rtlgen::AdderTreeConfig;
using rtlgen::AdderTreeStyle;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

struct TreeCase {
  int rows;
  AdderTreeStyle style;
  double fa_fraction;
  bool reorder;
};

class AdderTreeCorrectness : public ::testing::TestWithParam<TreeCase> {};

TEST_P(AdderTreeCorrectness, MatchesPopcount) {
  const TreeCase tc = GetParam();
  AdderTreeConfig cfg;
  cfg.rows = tc.rows;
  cfg.style = tc.style;
  cfg.fa_fraction = tc.fa_fraction;
  cfg.carry_reorder = tc.reorder;
  netlist::Design d;
  d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));
  const auto flat = netlist::flatten(d, "tree");
  sim::GateSim gs(flat, lib());
  const int k = cfg.sum_bits();

  std::mt19937_64 rng(0xC0FFEE ^ tc.rows);
  const int trials = tc.rows <= 16 ? 200 : 60;
  for (int t = 0; t < trials; ++t) {
    std::uint64_t popcount = 0;
    for (int i = 0; i < tc.rows; ++i) {
      const int b = (t == 0) ? 0 : (t == 1 ? 1 : static_cast<int>(rng() & 1));
      popcount += static_cast<std::uint64_t>(b);
      gs.set_input(netlist::bus_name("in", i), b);
    }
    gs.eval();
    EXPECT_EQ(gs.output_bus("sum", k), popcount)
        << "rows=" << tc.rows << " style=" << to_string(tc.style)
        << " fa=" << tc.fa_fraction << " reorder=" << tc.reorder;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdderTreeCorrectness,
    ::testing::Values(
        TreeCase{8, AdderTreeStyle::kRcaTree, 0, false},
        TreeCase{16, AdderTreeStyle::kRcaTree, 0, false},
        TreeCase{64, AdderTreeStyle::kRcaTree, 0, false},
        TreeCase{8, AdderTreeStyle::kCompressor, 0, true},
        TreeCase{16, AdderTreeStyle::kCompressor, 0, true},
        TreeCase{64, AdderTreeStyle::kCompressor, 0, true},
        TreeCase{64, AdderTreeStyle::kCompressor, 0, false},
        TreeCase{128, AdderTreeStyle::kCompressor, 0, true},
        TreeCase{16, AdderTreeStyle::kMixed, 0.25, true},
        TreeCase{64, AdderTreeStyle::kMixed, 0.25, true},
        TreeCase{64, AdderTreeStyle::kMixed, 0.5, true},
        TreeCase{64, AdderTreeStyle::kMixed, 0.5, false},
        TreeCase{64, AdderTreeStyle::kMixed, 0.75, true},
        TreeCase{64, AdderTreeStyle::kMixed, 1.0, true},
        TreeCase{32, AdderTreeStyle::kMixed, 0.33, true}));

TEST(AdderTreeExhaustive, EightRowsAllInputs) {
  AdderTreeConfig cfg;
  cfg.rows = 8;
  cfg.style = AdderTreeStyle::kCompressor;
  netlist::Design d;
  d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));
  const auto flat = netlist::flatten(d, "tree");
  sim::GateSim gs(flat, lib());
  for (unsigned v = 0; v < 256; ++v) {
    for (int i = 0; i < 8; ++i) {
      gs.set_input(netlist::bus_name("in", i),
                   static_cast<int>((v >> i) & 1));
    }
    gs.eval();
    EXPECT_EQ(gs.output_bus("sum", 4), std::bitset<8>(v).count()) << v;
  }
}

TEST(AdderTreeExternalCpa, RedundantVectorsSumToPopcount) {
  for (const double fa : {0.0, 0.5}) {
    AdderTreeConfig cfg;
    cfg.rows = 32;
    cfg.style = AdderTreeStyle::kMixed;
    cfg.fa_fraction = fa;
    cfg.external_cpa = true;
    netlist::Design d;
    d.add_module(rtlgen::gen_adder_tree(cfg, "tree"));
    const auto flat = netlist::flatten(d, "tree");
    sim::GateSim gs(flat, lib());
    const int k = cfg.sum_bits();
    std::mt19937_64 rng(7);
    for (int t = 0; t < 100; ++t) {
      std::uint64_t popcount = 0;
      for (int i = 0; i < 32; ++i) {
        const int b = static_cast<int>(rng() & 1);
        popcount += static_cast<std::uint64_t>(b);
        gs.set_input(netlist::bus_name("in", i), b);
      }
      gs.eval();
      EXPECT_EQ(gs.output_bus("sv", k) + gs.output_bus("cv", k), popcount);
    }
  }
}

TEST(AdderTreeStructure, StyleCellMix) {
  auto count_kind = [](const netlist::Module& m, const char* prefix) {
    std::size_t n = 0;
    for (const auto& inst : m.instances()) {
      if (inst.master.rfind(prefix, 0) == 0) ++n;
    }
    return n;
  };
  AdderTreeConfig cfg;
  cfg.rows = 64;
  cfg.style = AdderTreeStyle::kCompressor;
  const auto comp = rtlgen::gen_adder_tree(cfg, "t1");
  EXPECT_GT(count_kind(comp, "CMP42"), 10u);

  cfg.style = AdderTreeStyle::kMixed;
  cfg.fa_fraction = 1.0;
  const auto fa_only = rtlgen::gen_adder_tree(cfg, "t2");
  EXPECT_EQ(count_kind(fa_only, "CMP42"), 0u);
  EXPECT_GT(count_kind(fa_only, "FA"), 30u);

  cfg.fa_fraction = 0.5;
  const auto mixed = rtlgen::gen_adder_tree(cfg, "t3");
  EXPECT_GT(count_kind(mixed, "CMP42"), 0u);
  EXPECT_GT(count_kind(mixed, "FA"), count_kind(comp, "FA"));

  cfg.style = AdderTreeStyle::kRcaTree;
  const auto rca = rtlgen::gen_adder_tree(cfg, "t4");
  EXPECT_EQ(count_kind(rca, "CMP42"), 0u);
}

TEST(AdderTreeStructure, MixedUsesFewerCellsThanRca) {
  AdderTreeConfig cfg;
  cfg.rows = 64;
  cfg.style = AdderTreeStyle::kRcaTree;
  const auto rca = rtlgen::gen_adder_tree(cfg, "t1");
  cfg.style = AdderTreeStyle::kCompressor;
  const auto comp = rtlgen::gen_adder_tree(cfg, "t2");
  EXPECT_LT(comp.cell_count(), rca.cell_count());
  // The cheap estimate should be within 2x of reality.
  const int est = rtlgen::estimate_adder_tree_cells(cfg);
  EXPECT_GT(est, static_cast<int>(comp.cell_count()) / 3);
}

TEST(AdderTree, RejectsTinyTree) {
  AdderTreeConfig cfg;
  cfg.rows = 1;
  EXPECT_THROW((void)rtlgen::gen_adder_tree(cfg, "t"),
               std::invalid_argument);
}

}  // namespace

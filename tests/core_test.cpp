#include <gtest/gtest.h>

#include <sstream>

#include "cell/characterize.hpp"
#include "core/baselines.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "core/scl.hpp"
#include "core/searcher.hpp"
#include "netlist/flatten.hpp"
#include "power/power.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;
using core::DesignPoint;
using core::PerfSpec;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

PerfSpec small_spec() {
  PerfSpec s;
  s.rows = 16;
  s.cols = 8;
  s.mcr = 2;
  s.input_bits = {4};
  s.weight_bits = {4};
  s.mac_freq_mhz = 300;
  s.wupdate_freq_mhz = 300;
  return s;
}

TEST(Pareto, FilterAndScore) {
  auto mk = [](double p, double a, bool feasible) {
    DesignPoint d;
    d.ppa.power_uw = p;
    d.ppa.area_um2 = a;
    d.feasible = feasible;
    return d;
  };
  const std::vector<DesignPoint> pts = {
      mk(10, 100, true), mk(20, 50, true),  mk(15, 120, true),
      mk(30, 30, true),  mk(5, 200, false), mk(12, 90, true)};
  const auto front = core::pareto_front(pts);
  ASSERT_EQ(front.size(), 4u);  // (10,100) (12,90) (20,50) (30,30)
  for (const auto& p : front) {
    EXPECT_TRUE(p.feasible);
    EXPECT_NE(p.ppa.power_uw, 15);  // dominated by (12,90)
  }
  // Power-preferring score selects the lowest-power point.
  const DesignPoint* best = nullptr;
  double bs = 1e30;
  for (const auto& p : front) {
    const double s = core::preference_score(p, front, 1.0, 0.0, 0.0);
    if (s < bs) {
      bs = s;
      best = &p;
    }
  }
  ASSERT_NE(best, nullptr);
  EXPECT_DOUBLE_EQ(best->ppa.power_uw, 10);
}

TEST(Scl, CachesSliceEvaluations) {
  core::SubcircuitLibrary scl(lib());
  const PerfSpec spec = small_spec();
  const auto cfg = spec.base_config();
  (void)scl.slice(cfg);
  EXPECT_EQ(scl.cache_entries(), 1u);
  (void)scl.slice(cfg);
  EXPECT_EQ(scl.cache_entries(), 1u);
  auto cfg2 = cfg;
  cfg2.tree.fa_fraction = 1.0;
  (void)scl.slice(cfg2);
  EXPECT_EQ(scl.cache_entries(), 2u);
}

TEST(Scl, EvaluateIsConsistent) {
  core::SubcircuitLibrary scl(lib());
  const PerfSpec spec = small_spec();
  const auto cfg = spec.base_config();
  const auto ppa = scl.evaluate(cfg, spec);
  EXPECT_GT(ppa.fmax_mhz, 0);
  EXPECT_GT(ppa.write_fmax_mhz, ppa.fmax_mhz);  // write path is short
  EXPECT_GT(ppa.power_uw, 0);
  EXPECT_GT(ppa.area_um2, 0);
  EXPECT_GT(ppa.latency_cycles, spec.input_bits[0]);
  EXPECT_NEAR(ppa.tops_1b, 2.0 * 16 * 8 * 300e6 * 1e-12, 1e-9);
  // Lower voltage -> slower and more efficient.
  PerfSpec lv = spec;
  lv.vdd = 0.7;
  const auto ppa_lv = scl.evaluate(cfg, lv);
  EXPECT_LT(ppa_lv.fmax_mhz, ppa.fmax_mhz);
  EXPECT_LT(ppa_lv.power_uw, ppa.power_uw);
}

TEST(Scl, FasterTreeLadder) {
  rtlgen::AdderTreeConfig t;
  t.style = rtlgen::AdderTreeStyle::kRcaTree;
  t.carry_reorder = false;
  auto ladder = core::SubcircuitLibrary::faster_tree_ladder(t);
  ASSERT_FALSE(ladder.empty());
  EXPECT_EQ(ladder.front().style, rtlgen::AdderTreeStyle::kMixed);
  t.style = rtlgen::AdderTreeStyle::kMixed;
  t.fa_fraction = 1.0;
  t.carry_reorder = true;
  EXPECT_TRUE(core::SubcircuitLibrary::faster_tree_ladder(t).empty());
}

TEST(Searcher, LooseSpecIsFeasibleAndParetoValid) {
  core::SubcircuitLibrary scl(lib());
  core::MsoSearcher searcher(scl);
  const auto res = searcher.search(small_spec());
  ASSERT_TRUE(res.feasible());
  EXPECT_GE(res.explored.size(), res.pareto.size());
  // Pareto points are mutually non-dominated.
  for (const auto& a : res.pareto) {
    for (const auto& b : res.pareto) {
      if (&a == &b) continue;
      EXPECT_FALSE(b.ppa.power_uw <= a.ppa.power_uw &&
                   b.ppa.area_um2 <= a.ppa.area_um2 &&
                   (b.ppa.power_uw < a.ppa.power_uw ||
                    b.ppa.area_um2 < a.ppa.area_um2));
    }
  }
  // Every pareto point meets the spec frequency.
  for (const auto& p : res.pareto) {
    EXPECT_GE(p.ppa.fmax_mhz, small_spec().mac_freq_mhz * 0.999);
  }
}

TEST(Searcher, TightSpecTriggersTechniques) {
  core::SubcircuitLibrary scl(lib());
  core::MsoSearcher searcher(scl);
  PerfSpec spec = small_spec();
  spec.rows = 64;
  spec.cols = 8;
  spec.mac_freq_mhz = 950.0;  // forces tt techniques at 0.9 V
  const auto res = searcher.search(spec);
  bool used_technique = false;
  for (const auto& p : res.explored) {
    for (const auto& a : p.applied) {
      if (a.rfind("tt", 0) == 0) used_technique = true;
    }
  }
  EXPECT_TRUE(used_technique);
  if (res.feasible()) {
    for (const auto& p : res.pareto) {
      EXPECT_GE(p.ppa.fmax_mhz, spec.mac_freq_mhz * 0.999);
    }
  }
}

TEST(Searcher, InfeasibleSpecReportsEmptyPareto) {
  core::SubcircuitLibrary scl(lib());
  core::MsoSearcher searcher(scl);
  PerfSpec spec = small_spec();
  spec.rows = 256;
  spec.mac_freq_mhz = 20000.0;  // 20 GHz: impossible
  const auto res = searcher.search(spec);
  EXPECT_FALSE(res.feasible());
  EXPECT_FALSE(res.explored.empty());
  EXPECT_THROW((void)res.best(spec.pref), std::logic_error);
}

TEST(Searcher, PreferenceShiftsSelection) {
  core::SubcircuitLibrary scl(lib());
  core::MsoSearcher searcher(scl);
  const auto res = searcher.search(small_spec());
  ASSERT_TRUE(res.feasible());
  if (res.pareto.size() < 2) GTEST_SKIP() << "frontier collapsed to a point";
  core::PpaPreference power_pref{1.0, 0.0, 0.0};
  core::PpaPreference area_pref{0.0, 1.0, 0.0};
  const auto& p = res.best(power_pref);
  const auto& a = res.best(area_pref);
  EXPECT_LE(p.ppa.power_uw, a.ppa.power_uw);
  EXPECT_LE(a.ppa.area_um2, p.ppa.area_um2);
}

TEST(Compiler, EndToEndSignoffClean) {
  core::SynDcimCompiler compiler(lib());
  const auto res = compiler.compile(small_spec());
  EXPECT_TRUE(res.impl.drc.clean());
  EXPECT_TRUE(res.impl.lvs.clean());
  EXPECT_TRUE(res.impl.timing.met());
  EXPECT_TRUE(res.impl.signoff_clean());
  EXPECT_GT(res.impl.fmax_mhz, small_spec().mac_freq_mhz);
  EXPECT_GT(res.impl.macro_area_mm2, 0);
  EXPECT_GT(res.impl.total_power_uw, 0);
  EXPECT_GT(res.impl.tops_per_w(), 0);
  // Search-time estimate and post-layout measurement agree within 3x
  // (wire parasitics and measured vs. probabilistic activity shift them).
  EXPECT_GT(res.impl.total_power_uw, res.selected.ppa.power_uw / 3);
  EXPECT_LT(res.impl.total_power_uw, res.selected.ppa.power_uw * 3);
}

TEST(Baselines, FeatureMatrixMatchesTable1) {
  const auto m = core::compiler_feature_matrix();
  ASSERT_EQ(m.size(), 5u);
  // Only SynDCIM has all four properties.
  int full = 0;
  for (const auto& c : m) {
    if (c.end_to_end && c.fp_and_int && c.ppa_selectable_subcircuits &&
        c.spec_oriented_synthesis) {
      ++full;
      EXPECT_NE(c.name.find("SynDCIM"), std::string::npos);
    }
  }
  EXPECT_EQ(full, 1);
  EXPECT_FALSE(m[0].fp_and_int);  // AutoDCIM is INT-only
  EXPECT_FALSE(m[1].digital_cim);  // EasyACIM is analog
  EXPECT_TRUE(m[3].fp_and_int);    // ARCTIC supports FP
}

TEST(Baselines, ConfigsMatchTheirTemplates) {
  const PerfSpec spec = small_spec();
  const auto a = core::autodcim_style_config(spec);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->mux, rtlgen::MuxStyle::kPassGate1T);
  EXPECT_EQ(a->tree.style, rtlgen::AdderTreeStyle::kRcaTree);
  EXPECT_TRUE(a->fp_formats.empty());
  const auto i = core::islped23_style_config(spec);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->mux, rtlgen::MuxStyle::kTGateNor);
  const auto r = core::arctic_style_config(spec);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->tree.style, rtlgen::AdderTreeStyle::kCompressor);
}

TEST(Baselines, SynDcimDominatesOrMatchesTemplates) {
  core::SubcircuitLibrary scl(lib());
  core::MsoSearcher searcher(scl);
  const PerfSpec spec = small_spec();
  const auto res = searcher.search(spec);
  ASSERT_TRUE(res.feasible());
  const auto base = core::autodcim_style_config(spec);
  ASSERT_TRUE(base.has_value());
  const auto base_ppa = scl.evaluate(*base, spec);
  // At least one searched point is no worse in both power and area.
  bool dominates = false;
  for (const auto& p : res.pareto) {
    if (p.ppa.power_uw <= base_ppa.power_uw &&
        p.ppa.area_um2 <= base_ppa.area_um2) {
      dominates = true;
    }
  }
  EXPECT_TRUE(dominates);
}

TEST(Report, TextTableFormatting) {
  core::TextTable t({"name", "value"});
  t.add_row({"alpha", core::TextTable::num(1.2345, 2)});
  t.add_row({"b", core::TextTable::yesno(true)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("yes"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace

namespace {
using namespace syndcim;

TEST(Searcher, DeterministicAcrossRuns) {
  core::SubcircuitLibrary scl(lib());
  core::MsoSearcher s1(scl), s2(scl);
  const auto spec = small_spec();
  const auto a = s1.search(spec);
  const auto b = s2.search(spec);
  ASSERT_EQ(a.explored.size(), b.explored.size());
  for (std::size_t i = 0; i < a.explored.size(); ++i) {
    EXPECT_EQ(a.explored[i].label, b.explored[i].label);
    EXPECT_DOUBLE_EQ(a.explored[i].ppa.power_uw, b.explored[i].ppa.power_uw);
    EXPECT_DOUBLE_EQ(a.explored[i].ppa.area_um2, b.explored[i].ppa.area_um2);
  }
  EXPECT_EQ(a.pareto.size(), b.pareto.size());
}

TEST(Searcher, SpecPinnedSubcircuitsAreHonored) {
  core::SubcircuitLibrary scl(lib());
  core::MsoSearcher searcher(scl);
  PerfSpec spec = small_spec();
  spec.mux = rtlgen::MuxStyle::kPassGate1T;
  spec.bitcell = rtlgen::BitcellKind::k12T;
  const auto res = searcher.search(spec);
  for (const auto& p : res.explored) {
    EXPECT_EQ(p.cfg.mux, rtlgen::MuxStyle::kPassGate1T) << p.label;
    EXPECT_EQ(p.cfg.bitcell, rtlgen::BitcellKind::k12T) << p.label;
  }
}

TEST(Searcher, ExploresBitcellAlternative) {
  core::SubcircuitLibrary scl(lib());
  core::MsoSearcher searcher(scl);
  const auto res = searcher.search(small_spec());
  bool has_8t = false;
  for (const auto& p : res.explored) {
    has_8t |= p.cfg.bitcell == rtlgen::BitcellKind::k8T;
  }
  EXPECT_TRUE(has_8t);
}

TEST(Compiler, FpSpecEndToEnd) {
  core::SynDcimCompiler compiler(lib());
  PerfSpec spec = small_spec();
  spec.fp_formats = {num::kFp8};
  spec.mac_freq_mhz = 250;
  spec.wupdate_freq_mhz = 250;
  const auto res = compiler.compile(spec);
  EXPECT_TRUE(res.impl.signoff_clean());
  // The FP macro has an alignment unit contributing area and power.
  EXPECT_GT(res.impl.power.group_uw("align"), 0.0);
  EXPECT_GT(res.impl.cell_area.group_um2("align"), 0.0);
}

TEST(Power, HotCornerRaisesLeakageOnly) {
  core::SynDcimCompiler compiler(lib());
  const auto res = compiler.compile(small_spec());
  const auto flat = netlist::flatten(res.impl.macro.design,
                                     res.impl.macro.top);
  const auto act = power::propagate_activity(flat, lib(), {});
  power::PowerOptions cold, hot;
  cold.temp_c = 25;
  hot.temp_c = 125;
  const auto pc = power::analyze_power(flat, lib(), act, cold);
  const auto ph = power::analyze_power(flat, lib(), act, hot);
  EXPECT_NEAR(ph.leakage_uw / pc.leakage_uw, 16.0, 0.5);
  EXPECT_DOUBLE_EQ(ph.dynamic_uw(), pc.dynamic_uw());
}

}  // namespace

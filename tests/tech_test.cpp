#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "tech/scaling.hpp"
#include "tech/tech_node.hpp"
#include "tech/units.hpp"

namespace {
using namespace syndcim;
using tech::TechNode;

TEST(Units, PeriodFrequencyRoundTrip) {
  EXPECT_DOUBLE_EQ(units::period_ps_from_mhz(800.0), 1250.0);
  EXPECT_DOUBLE_EQ(units::mhz_from_period_ps(1250.0), 800.0);
  for (double f : {10.0, 123.4, 800.0, 1100.0, 5000.0}) {
    EXPECT_NEAR(units::mhz_from_period_ps(units::period_ps_from_mhz(f)), f,
                1e-9);
  }
}

TEST(Units, PowerConversion) {
  // 100 fJ per cycle at 1000 MHz = 100 uW.
  EXPECT_DOUBLE_EQ(units::uw_from_fj_mhz(100.0, 1000.0), 100.0);
}

TEST(TechNode, DelayScaleIsOneAtNominal) {
  const TechNode t = tech::make_default_40nm();
  EXPECT_NEAR(t.delay_scale(t.vdd_nominal), 1.0, 1e-12);
}

TEST(TechNode, DelayScaleMonotoneDecreasingInVdd) {
  const TechNode t = tech::make_default_40nm();
  double prev = 1e30;
  for (double v = t.vdd_min; v <= t.vdd_max + 1e-9; v += 0.05) {
    const double s = t.delay_scale(v);
    EXPECT_LT(s, prev) << "at vdd=" << v;
    prev = s;
  }
}

TEST(TechNode, ShmooAnchorRatio) {
  // Paper Fig. 9: ~1.1 GHz @ 1.2 V vs ~300 MHz @ 0.7 V => ratio ~3.7.
  const TechNode t = tech::make_default_40nm();
  const double ratio = t.delay_scale(0.7) / t.delay_scale(1.2);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(TechNode, ThrowsBelowThreshold) {
  const TechNode t = tech::make_default_40nm();
  EXPECT_THROW((void)t.delay_scale(t.vth), std::invalid_argument);
  EXPECT_THROW((void)t.delay_scale(0.2), std::invalid_argument);
}

TEST(TechNode, EnergyScaleQuadratic) {
  const TechNode t = tech::make_default_40nm();
  EXPECT_NEAR(t.energy_scale(1.8 * t.vdd_nominal), 3.24, 1e-9);
  EXPECT_NEAR(t.energy_scale(t.vdd_nominal), 1.0, 1e-12);
}

TEST(TechNode, LeakageGrowsWithVdd) {
  const TechNode t = tech::make_default_40nm();
  EXPECT_LT(t.leakage_scale(0.7), 1.0);
  EXPECT_GT(t.leakage_scale(1.2), 1.0);
}

TEST(TechNode, VddRange) {
  const TechNode t = tech::make_default_40nm();
  EXPECT_TRUE(t.vdd_in_range(0.9));
  EXPECT_FALSE(t.vdd_in_range(0.5));
  EXPECT_FALSE(t.vdd_in_range(1.3));
}

TEST(Scaling, NodeSteps) {
  EXPECT_EQ(tech::scaling::node_steps(40, 40), 0);
  // Ladder: 3,4,5,7,10,16,22,28,40 -> six steps from 5nm to 40nm.
  EXPECT_EQ(tech::scaling::node_steps(5, 40), 6);
  EXPECT_EQ(tech::scaling::node_steps(40, 5), -6);
  EXPECT_THROW((void)tech::scaling::node_steps(6, 40), std::invalid_argument);
}

TEST(Scaling, AreaEnergyFactorsInverse) {
  const double a = tech::scaling::area_efficiency_factor(5, 40);
  const double b = tech::scaling::area_efficiency_factor(40, 5);
  EXPECT_NEAR(a * b, 1.0, 1e-12);
  EXPECT_NEAR(a, std::pow(1.8, -6), 1e-12);
  EXPECT_NEAR(tech::scaling::energy_efficiency_factor(5, 40),
              std::pow(1.3, -6), 1e-12);
}

TEST(Scaling, TopsNormalization) {
  // A 64Kb array at INT4xINT4 asserting X TOPS maps to X*(4/64)*16.
  EXPECT_NEAR(tech::scaling::tops_to_reference(10.0, 64.0, 4, 4), 10.0, 1e-12);
  // The paper's own chip: 4Kb at 1b x 1b is already the reference point.
  EXPECT_NEAR(tech::scaling::tops_to_reference(9.0, 4.0, 1, 1), 9.0, 1e-12);
  EXPECT_THROW((void)tech::scaling::tops_to_reference(1.0, 0.0, 1, 1),
               std::invalid_argument);
}

}  // namespace

namespace {
using syndcim::tech::TechNode;

TEST(TechNode, TemperatureDerates) {
  const TechNode t = syndcim::tech::make_default_40nm();
  // Hot silicon is slower and leaks much more; cold is faster.
  EXPECT_GT(t.delay_scale(0.9, 125.0), t.delay_scale(0.9, 25.0));
  EXPECT_LT(t.delay_scale(0.9, -40.0), t.delay_scale(0.9, 25.0));
  EXPECT_NEAR(t.delay_scale(0.9, 25.0), t.delay_scale(0.9), 1e-12);
  EXPECT_NEAR(t.leakage_scale(0.9, 50.0), 2.0 * t.leakage_scale(0.9),
              1e-9);
  EXPECT_NEAR(t.leakage_scale(0.9, 25.0), t.leakage_scale(0.9), 1e-12);
  // 100C delta: ~12% slower, ~16x leakage.
  EXPECT_NEAR(t.delay_scale(0.9, 125.0) / t.delay_scale(0.9), 1.12, 0.001);
  EXPECT_NEAR(t.leakage_scale(0.9, 125.0) / t.leakage_scale(0.9), 16.0,
              0.1);
}

}  // namespace

// Cold-vs-incremental equivalence tests of the content-addressed
// subcircuit-artifact pipeline: stitch_flatten vs flatten byte-identity,
// grouped activity propagation, stage skipping inside implement() and the
// subcircuit library, NET-* diagnostic routing, crash-safe eval-cache
// persistence, and the one-knob-delta sweep whose frontier JSON must be
// byte-identical with the artifact tier on or off.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "core/scl.hpp"
#include "core/spec.hpp"
#include "core/stage.hpp"
#include "dse/eval_cache.hpp"
#include "dse/sweep.hpp"
#include "netlist/flatten.hpp"
#include "netlist/stitch.hpp"
#include "power/activity.hpp"
#include "rtlgen/content_key.hpp"
#include "rtlgen/macro.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

rtlgen::MacroConfig small_cfg() {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 1;
  cfg.input_bits = {4};
  cfg.weight_bits = {4};
  return cfg;
}

std::vector<rtlgen::MacroConfig> config_variants() {
  std::vector<rtlgen::MacroConfig> out;
  out.push_back(small_cfg());
  {
    rtlgen::MacroConfig c = small_cfg();
    c.cols = 16;
    c.mcr = 2;
    out.push_back(c);
  }
  {
    rtlgen::MacroConfig c = small_cfg();
    c.rows = 32;
    c.input_bits = {4, 8};
    c.weight_bits = {4, 8};
    c.cols = 16;
    out.push_back(c);
  }
  {
    rtlgen::MacroConfig c = small_cfg();
    c.bitcell = rtlgen::BitcellKind::k8T;
    c.tree.style = rtlgen::AdderTreeStyle::kMixed;
    c.tree.fa_fraction = 0.5;
    out.push_back(c);
  }
  return out;
}

void expect_activity_equal(const power::ActivityModel& a,
                           const power::ActivityModel& b) {
  ASSERT_EQ(a.toggle_rate.size(), b.toggle_rate.size());
  ASSERT_EQ(a.p_one.size(), b.p_one.size());
  for (std::size_t i = 0; i < a.toggle_rate.size(); ++i) {
    EXPECT_EQ(a.toggle_rate[i], b.toggle_rate[i]) << "net " << i;
    EXPECT_EQ(a.p_one[i], b.p_one[i]) << "net " << i;
  }
}

/// Byte-exact comparison of the fields downstream consumers read.
void expect_impl_equal(const core::Implementation& a,
                       const core::Implementation& b) {
  EXPECT_EQ(a.fmax_mhz, b.fmax_mhz);
  EXPECT_EQ(a.macro_area_mm2, b.macro_area_mm2);
  EXPECT_EQ(a.total_power_uw, b.total_power_uw);
  EXPECT_EQ(a.tops_1b, b.tops_1b);
  EXPECT_EQ(a.timing.wns_ps, b.timing.wns_ps);
  EXPECT_EQ(a.timing.min_period_ps, b.timing.min_period_ps);
  EXPECT_EQ(a.timing.min_write_period_ps, b.timing.min_write_period_ps);
  EXPECT_EQ(a.power.total_uw(), b.power.total_uw());
  EXPECT_EQ(a.cell_area.total_um2, b.cell_area.total_um2);
  // Diagnostics replay must reproduce the cold findings exactly.
  ASSERT_EQ(a.diagnostics.diags().size(), b.diagnostics.diags().size());
  for (std::size_t i = 0; i < a.diagnostics.diags().size(); ++i) {
    EXPECT_EQ(a.diagnostics.diags()[i].rule, b.diagnostics.diags()[i].rule);
    EXPECT_EQ(a.diagnostics.diags()[i].object,
              b.diagnostics.diags()[i].object);
  }
  // Per-group interface arcs (arrival/slew summaries).
  ASSERT_EQ(a.timing.interfaces.size(), b.timing.interfaces.size());
  for (std::size_t g = 0; g < a.timing.interfaces.size(); ++g) {
    const sta::GroupInterface& ga = a.timing.interfaces[g];
    const sta::GroupInterface& gb = b.timing.interfaces[g];
    EXPECT_EQ(ga.group, gb.group);
    ASSERT_EQ(ga.inputs.size(), gb.inputs.size());
    ASSERT_EQ(ga.outputs.size(), gb.outputs.size());
    for (std::size_t i = 0; i < ga.outputs.size(); ++i) {
      EXPECT_EQ(ga.outputs[i].net, gb.outputs[i].net);
      EXPECT_EQ(ga.outputs[i].arrival_ps, gb.outputs[i].arrival_ps);
      EXPECT_EQ(ga.outputs[i].slew_ps, gb.outputs[i].slew_ps);
    }
  }
}

TEST(Stitch, MatchesFlattenAcrossConfigs) {
  for (const rtlgen::MacroConfig& cfg : config_variants()) {
    const rtlgen::MacroDesign md = rtlgen::gen_macro(cfg);
    const netlist::FlatNetlist ref = netlist::flatten(md.design, md.top);
    const netlist::StitchResult sr =
        netlist::stitch_flatten(md.design, md.top);
    EXPECT_TRUE(netlist::flat_netlist_equal(ref, sr.nl))
        << rtlgen::config_content_key(cfg);
    EXPECT_FALSE(sr.netlist_key.empty());
    // Repeated subcircuits (columns, OFU groups) splice one build.
    EXPECT_GT(sr.stats.blocks_reused, 0u);
  }
}

TEST(Stitch, SharedCacheReusesBlocksAcrossConfigs) {
  netlist::FlatBlockCache cache("blocks");
  const rtlgen::MacroConfig a = small_cfg();
  rtlgen::MacroConfig b = small_cfg();
  b.cols = 16;  // one-knob delta: same column subcircuit, more instances

  const rtlgen::MacroDesign mda = rtlgen::gen_macro(a);
  const netlist::StitchResult ra =
      netlist::stitch_flatten(mda.design, mda.top, &cache);
  const rtlgen::MacroDesign mdb = rtlgen::gen_macro(b);
  const netlist::StitchResult rb =
      netlist::stitch_flatten(mdb.design, mdb.top, &cache);

  // The second design builds almost nothing: its column block is already
  // in the shared tier.
  EXPECT_LT(rb.stats.blocks_built, ra.stats.blocks_built);
  EXPECT_TRUE(netlist::flat_netlist_equal(
      rb.nl, netlist::flatten(mdb.design, mdb.top)));
}

TEST(GroupedActivity, ColdAndWarmAreByteIdentical) {
  const rtlgen::MacroDesign md = rtlgen::gen_macro(small_cfg());
  const netlist::FlatNetlist nl = netlist::flatten(md.design, md.top);
  const power::ActivitySpec spec;

  const power::ActivityModel flat_ref =
      power::propagate_activity(nl, lib(), spec);
  const power::ActivityModel cold =
      power::propagate_activity_grouped(nl, lib(), spec, nullptr);
  ASSERT_EQ(cold.toggle_rate.size(), flat_ref.toggle_rate.size());

  power::ActivityCache cache("activity");
  power::GroupedActivityStats s1, s2;
  const power::ActivityModel warm1 =
      power::propagate_activity_grouped(nl, lib(), spec, &cache, &s1);
  const power::ActivityModel warm2 =
      power::propagate_activity_grouped(nl, lib(), spec, &cache, &s2);

  expect_activity_equal(cold, warm1);
  expect_activity_equal(cold, warm2);
  EXPECT_GT(s2.groups, 0u);
  EXPECT_EQ(s2.group_hits, s2.groups);  // second pass splices every cone
}

TEST(GroupedActivity, CacheKeysStableAcrossEngines) {
  // Per-cone cache entries are engine-independent: a cache warmed by the
  // SoA kernel must fully satisfy a scalar-engine replay (and vice versa),
  // with byte-identical spliced models. A key that embedded the engine —
  // or an engine that produced different bits — would fail this.
  const rtlgen::MacroDesign md = rtlgen::gen_macro(small_cfg());
  const netlist::FlatNetlist nl = netlist::flatten(md.design, md.top);
  const power::ActivitySpec spec;

  power::ActivityCache cache("activity");
  power::GroupedActivityStats s1, s2;
  const power::ActivityModel warm = power::propagate_activity_grouped(
      nl, lib(), spec, &cache, &s1, power::ActivityEngine::kSoa);
  const power::ActivityModel replay = power::propagate_activity_grouped(
      nl, lib(), spec, &cache, &s2, power::ActivityEngine::kScalar);

  expect_activity_equal(warm, replay);
  EXPECT_GT(s2.groups, 0u);
  EXPECT_EQ(s2.group_hits, s2.groups);  // scalar replay splices every cone
  // The warming pass did compute at least the distinct cones itself
  // (repeated identical columns legitimately hit within the pass).
  EXPECT_LT(s1.group_hits, s1.groups);
}

TEST(ContentKeys, StableAndDiscriminating) {
  const rtlgen::MacroConfig cfg = small_cfg();
  const std::string k = rtlgen::config_content_key(cfg);
  EXPECT_EQ(k.size(), 32u);
  EXPECT_EQ(k, rtlgen::config_content_key(cfg));

  rtlgen::MacroConfig rows = cfg;
  rows.rows = 32;
  EXPECT_NE(rtlgen::config_content_key(rows), k);

  // cols-only deltas share the characterization slice but not the config.
  rtlgen::MacroConfig cols = cfg;
  cols.cols = 32;
  EXPECT_NE(rtlgen::config_content_key(cols), k);
  EXPECT_EQ(rtlgen::slice_content_key(cols), rtlgen::slice_content_key(cfg));

  cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  const std::string fp = l.fingerprint();
  EXPECT_EQ(fp.size(), 32u);
  EXPECT_EQ(fp, l.fingerprint());
  EXPECT_EQ(fp, lib().fingerprint());  // same characterization, same key
}

TEST(SpecKnobsKey, CoversExactlyTheImplementKnobs) {
  core::PerfSpec spec;
  const std::string k = core::spec_knobs_key(spec);
  core::PerfSpec f = spec;
  f.mac_freq_mhz += 1.0;
  EXPECT_NE(core::spec_knobs_key(f), k);
  core::PerfSpec v = spec;
  v.vdd += 0.05;
  EXPECT_NE(core::spec_knobs_key(v), k);
  // Preference weights steer selection, not implementation: same key.
  core::PerfSpec p = spec;
  p.pref.power += 1.0;
  EXPECT_EQ(core::spec_knobs_key(p), k);
  EXPECT_EQ(dse::canonical_spec_knobs_key(spec), k);
}

TEST(Implement, WarmRunIsByteIdenticalAndSkipsStages) {
  const rtlgen::MacroConfig cfg = small_cfg();
  core::PerfSpec spec;
  spec.mac_freq_mhz = 300.0;
  const core::Workload wl;

  // Cold reference: the identical code path with every tier bypassed.
  core::SynDcimCompiler cold(lib());
  cold.scl().artifacts().set_enabled(false);
  const core::Implementation ref = cold.implement(cfg, spec, wl);
  for (const core::StageRecord& r : ref.stages) EXPECT_FALSE(r.skipped);

  core::SynDcimCompiler warm(lib());
  const core::Implementation first = warm.implement(cfg, spec, wl);
  const core::Implementation second = warm.implement(cfg, spec, wl);

  expect_impl_equal(ref, first);
  expect_impl_equal(ref, second);

  // Second run: everything after elaboration splices cached artifacts.
  ASSERT_EQ(second.stages.size(), 7u);
  std::size_t skipped = 0;
  for (const core::StageRecord& r : second.stages) {
    skipped += r.skipped ? 1 : 0;
  }
  EXPECT_GE(skipped, 6u);  // all but the always-run rtlgen stage
  // Both runs walked the same phases in the same order.
  ASSERT_EQ(first.timeline.phases.size(), second.timeline.phases.size());
  for (std::size_t i = 0; i < first.stages.size(); ++i) {
    EXPECT_EQ(first.stages[i].stage, second.stages[i].stage);
    EXPECT_EQ(first.stages[i].key, second.stages[i].key);
  }
}

TEST(Implement, SpecRespinSkipsSimulationButReprices) {
  core::SynDcimCompiler c(lib());
  const rtlgen::MacroConfig cfg = small_cfg();
  core::PerfSpec a;
  a.mac_freq_mhz = 300.0;
  core::PerfSpec b = a;
  b.vdd = a.vdd * 0.9;  // voltage re-spin: same netlist, same workload

  (void)c.implement(cfg, a);
  const auto sim_before = c.scl().artifacts().act_models.stats();
  const core::Implementation rb = c.implement(cfg, b);
  const auto sim_after = c.scl().artifacts().act_models.stats();

  // The gate-level activity simulation is spec-independent: the re-spin
  // hits the act_models tier instead of re-simulating...
  EXPECT_EQ(sim_after.entries, sim_before.entries);
  EXPECT_GT(sim_after.hits, sim_before.hits);
  // ...but power is re-priced under the new knobs (its stage ran).
  EXPECT_FALSE(rb.stages.back().skipped);
  EXPECT_EQ(rb.stages.back().stage, "power");
}

TEST(Implement, SimActivityTierKeysOnLanesAndStillHitsWarm) {
  core::SynDcimCompiler c(lib());
  const rtlgen::MacroConfig cfg = small_cfg();
  core::PerfSpec spec;
  spec.mac_freq_mhz = 300.0;
  core::Workload wl;  // lanes = 1, the scalar-identical schedule
  core::Workload wl64 = wl;
  wl64.lanes = 64;

  const core::Implementation s1 = c.implement(cfg, spec, wl);
  const auto st1 = c.scl().artifacts().act_models.stats();
  // A different lane count is a different stimulus schedule: the "wl2"
  // workload key must miss and add a new tier entry, not alias the
  // scalar artifact.
  const core::Implementation p1 = c.implement(cfg, spec, wl64);
  const auto st2 = c.scl().artifacts().act_models.stats();
  EXPECT_EQ(st2.entries, st1.entries + 1);

  // A voltage re-spin at lanes=64 re-prices power but must hit the
  // 64-lane activity artifact warm — the key change kept the tier
  // incremental, it did not just invalidate everything.
  core::PerfSpec respin = spec;
  respin.vdd = spec.vdd * 0.9;
  (void)c.implement(cfg, respin, wl64);
  const auto st3 = c.scl().artifacts().act_models.stats();
  EXPECT_EQ(st3.entries, st2.entries);
  EXPECT_GT(st3.hits, st2.hits);

  // Replaying the original lanes=64 implement is byte-identical, and the
  // scalar schedule's artifact survived untouched alongside it.
  const core::Implementation p2 = c.implement(cfg, spec, wl64);
  expect_impl_equal(p1, p2);
  const core::Implementation s2 = c.implement(cfg, spec, wl);
  expect_impl_equal(s1, s2);
  EXPECT_EQ(c.scl().artifacts().act_models.stats().entries, st3.entries);
}

TEST(SubcircuitLibrary, SharedStoreSkipsEverySliceStage) {
  auto store = std::make_shared<core::ArtifactStore>();
  core::SubcircuitLibrary scl1(lib(), store);
  core::SubcircuitLibrary scl2(lib(), store);
  const rtlgen::MacroConfig cfg = small_cfg();

  const core::PpaEstimate a = scl1.evaluate(cfg, core::PerfSpec{});
  for (const core::StageRecord& r : scl1.last_slice_stages()) {
    EXPECT_FALSE(r.skipped) << r.stage;
  }

  // A second library over the same store (the sweep's worker situation)
  // replays the whole slice from artifacts.
  const core::PpaEstimate b = scl2.evaluate(cfg, core::PerfSpec{});
  ASSERT_FALSE(scl2.last_slice_stages().empty());
  for (const core::StageRecord& r : scl2.last_slice_stages()) {
    EXPECT_TRUE(r.skipped) << r.stage;
  }
  EXPECT_EQ(a.power_uw, b.power_uw);
  EXPECT_EQ(a.area_um2, b.area_um2);
  EXPECT_EQ(a.fmax_mhz, b.fmax_mhz);
}

TEST(NetValidate, RoutesProblemsThroughDiagEngine) {
  netlist::Design d;
  netlist::Module top("top");
  const netlist::NetId x = top.add_port("x", netlist::PortDir::kIn);
  top.add_submodule("u0", "missing", {{"A", x}});
  top.add_cell("u0", "INVX1", {{"A", x}});  // duplicate instance name
  d.add_module(std::move(top));

  core::DiagEngine diag;
  EXPECT_FALSE(netlist::validate(d, "top", diag));
  EXPECT_TRUE(diag.has_errors());
  EXPECT_EQ(diag.count_rule("NET-NOMODULE"), 1u);
  EXPECT_EQ(diag.count_rule("NET-DUPINST"), 1u);
  core::DiagEngine notop;
  EXPECT_FALSE(netlist::validate(d, "nosuch", notop));
  EXPECT_EQ(notop.count_rule("NET-NOTOP"), 1u);
}

TEST(EvalCachePersistence, SaveIsAtomicAndLeavesNoTempFile) {
  const std::string path = ::testing::TempDir() + "syndcim_evalcache.json";
  const std::string tmp = path + ".tmp";
  std::remove(path.c_str());

  dse::EvalCache cache;
  core::EvalOutcome out;
  out.ppa.power_uw = 12.5;
  out.ppa.area_um2 = 480.0;
  cache.insert("k1", out);
  ASSERT_TRUE(cache.save_json(path));

  // The temp file was renamed away and the target parses cleanly.
  EXPECT_FALSE(std::ifstream(tmp).good());
  dse::EvalCache back;
  core::DiagEngine diag;
  EXPECT_EQ(back.load_json(path, &diag), 1u);
  EXPECT_EQ(diag.count_rule("CACHE-BADFILE"), 0u);
  EXPECT_EQ(diag.count_rule("CACHE-BADENTRY"), 0u);

  // Overwriting an existing file goes through the same tmp+rename path;
  // a reader can never observe a torn file at `path`.
  out.ppa.power_uw = 99.0;
  cache.insert("k2", out);
  ASSERT_TRUE(cache.save_json(path));
  EXPECT_FALSE(std::ifstream(tmp).good());
  dse::EvalCache back2;
  EXPECT_EQ(back2.load_json(path), 2u);

  // An unwritable destination fails cleanly without littering.
  EXPECT_FALSE(cache.save_json("/nonexistent_dir/deep/cache.json"));
  std::remove(path.c_str());
}

TEST(Sweep, OneKnobDeltaFrontierIsByteIdenticalWithArtifactTierOnOrOff) {
  core::PerfSpec base;
  base.rows = 32;
  base.cols = 32;
  base.mcr = 1;
  base.input_bits = {4};
  base.weight_bits = {4};
  base.mac_freq_mhz = 300.0;
  base.wupdate_freq_mhz = 300.0;
  dse::SweepGrid grid;
  grid.base = base;
  grid.mac_freqs_mhz = {300.0, 340.0};  // the one knob that varies
  const std::vector<core::PerfSpec> specs = grid.expand();
  ASSERT_EQ(specs.size(), 2u);

  auto run = [&](bool artifacts, int threads) {
    dse::SweepOptions opt;
    opt.threads = threads;
    opt.use_artifact_cache = artifacts;
    return dse::run_sweep(lib(), specs, opt);
  };
  const dse::SweepReport on1 = run(true, 1);
  const dse::SweepReport off1 = run(false, 1);
  const dse::SweepReport on4 = run(true, 4);

  const std::string ref = dse::sweep_frontier_json(off1);
  EXPECT_EQ(dse::sweep_frontier_json(on1), ref);
  EXPECT_EQ(dse::sweep_frontier_json(on4), ref);

  // Per-point PPA across the whole explored set, not just the frontier.
  ASSERT_EQ(on1.per_spec.size(), off1.per_spec.size());
  for (std::size_t s = 0; s < on1.per_spec.size(); ++s) {
    const auto& pa = on1.per_spec[s].result.pareto;
    const auto& pb = off1.per_spec[s].result.pareto;
    ASSERT_EQ(pa.size(), pb.size()) << "spec " << s;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].label, pb[i].label);
      EXPECT_EQ(pa[i].ppa.power_uw, pb[i].ppa.power_uw);
      EXPECT_EQ(pa[i].ppa.area_um2, pb[i].ppa.area_um2);
      EXPECT_EQ(pa[i].ppa.fmax_mhz, pb[i].ppa.fmax_mhz);
    }
  }

  // The enabled tier actually worked: the second spec shares every
  // subcircuit artifact with the first (only the spec knob moved).
  EXPECT_GT(on1.artifact_hits(), 0u);
  EXPECT_EQ(off1.artifact_hits(), 0u);
  bool saw_tier_stats = false;
  for (const core::ArtifactTierStats& t : on1.artifacts) {
    saw_tier_stats = saw_tier_stats || t.lookups() > 0;
  }
  EXPECT_TRUE(saw_tier_stats);
  // The report JSON carries the tier roll-up for the CLI summary.
  EXPECT_NE(dse::sweep_report_json(on1).find("\"artifacts\""),
            std::string::npos);
}

}  // namespace

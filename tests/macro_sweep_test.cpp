// Parameterized architecture sweep: gate-level macro vs behavioral model
// across the (rows, cols, mcr, split, mux) grid — one randomized MAC per
// supported precision per configuration.
#include <gtest/gtest.h>

#include <random>

#include "cell/characterize.hpp"
#include "rtlgen/macro.hpp"
#include "sim/macro_model.hpp"
#include "sim/macro_tb.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

struct SweepCase {
  int rows, cols, mcr, split;
  rtlgen::MuxStyle mux;
};

class MacroSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MacroSweep, GateLevelMatchesModelAcrossPrecisions) {
  const SweepCase sc = GetParam();
  rtlgen::MacroConfig cfg;
  cfg.rows = sc.rows;
  cfg.cols = sc.cols;
  cfg.mcr = sc.mcr;
  cfg.column_split = sc.split;
  cfg.mux = sc.mux;
  cfg.input_bits = {2, 4, 8};
  cfg.weight_bits = {2, 4};
  const auto md = rtlgen::gen_macro(cfg);
  sim::DcimMacroModel model(cfg);
  sim::MacroTestbench tb(md, lib());

  std::mt19937 rng(0xAB ^ static_cast<unsigned>(sc.rows * 131 + sc.cols));
  for (const int wp : {1, 2, 4}) {
    const int n_out = cfg.cols / wp;
    const num::IntFormat wf{wp, wp > 1};
    std::vector<std::vector<std::int64_t>> w(
        static_cast<std::size_t>(n_out));
    for (auto& g : w) {
      g.resize(static_cast<std::size_t>(cfg.rows));
      for (auto& v : g) {
        v = wf.min_value() +
            static_cast<std::int64_t>(
                rng() % static_cast<unsigned>(wf.max_value() -
                                              wf.min_value() + 1));
      }
    }
    const int bank =
        static_cast<int>(rng() % static_cast<unsigned>(cfg.mcr));
    model.load_weights_int(bank, wp, w);
    tb.preload_weights(model);
    for (const int ib : {2, 8}) {
      std::vector<std::int64_t> in(static_cast<std::size_t>(cfg.rows));
      const num::IntFormat inf{ib, true};
      for (auto& v : in) {
        v = inf.min_value() +
            static_cast<std::int64_t>(
                rng() % static_cast<unsigned>(inf.max_value() -
                                              inf.min_value() + 1));
      }
      EXPECT_EQ(tb.run_mac_int(in, ib, wp, bank),
                model.mac_int(in, ib, wp, bank))
          << "rows=" << sc.rows << " cols=" << sc.cols << " mcr=" << sc.mcr
          << " split=" << sc.split << " wp=" << wp << " ib=" << ib;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MacroSweep,
    ::testing::Values(SweepCase{8, 8, 1, 1, rtlgen::MuxStyle::kTGateNor},
                      SweepCase{16, 8, 2, 1, rtlgen::MuxStyle::kTGateNor},
                      SweepCase{16, 8, 4, 1, rtlgen::MuxStyle::kTGateNor},
                      SweepCase{16, 16, 2, 2, rtlgen::MuxStyle::kTGateNor},
                      SweepCase{32, 8, 1, 1, rtlgen::MuxStyle::kTGateNor},
                      SweepCase{32, 8, 2, 4, rtlgen::MuxStyle::kTGateNor},
                      SweepCase{16, 8, 2, 1, rtlgen::MuxStyle::kPassGate1T},
                      SweepCase{16, 8, 4, 1, rtlgen::MuxStyle::kPassGate1T},
                      SweepCase{16, 8, 1, 1, rtlgen::MuxStyle::kOai22Fused},
                      SweepCase{16, 8, 2, 2, rtlgen::MuxStyle::kOai22Fused},
                      SweepCase{64, 8, 2, 8, rtlgen::MuxStyle::kTGateNor},
                      SweepCase{32, 16, 2, 1,
                                rtlgen::MuxStyle::kPassGate1T}));

}  // namespace

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "cell/characterize.hpp"
#include "cell/liberty.hpp"
#include "cell/liberty_parser.hpp"
#include "cell/library.hpp"
#include "core/diag.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;
using cell::Kind;

class CellLibTest : public ::testing::Test {
 protected:
  static const cell::Library& lib() {
    static const cell::Library l =
        cell::characterize_default_library(tech::make_default_40nm());
    return l;
  }
};

TEST_F(CellLibTest, CoreCellsPresent) {
  for (const char* name :
       {"INVX1", "INVX2", "INVX4", "BUFX8", "BUFX16", "NAND2X1", "NOR2X1",
        "XOR2X1", "OAI22X1", "MUX2X1", "HAX1", "FAX1", "FAX2", "CMP42X1",
        "CMP42X2", "DFFX1", "DFFEX1", "LATCHX1", "SRAM6T", "SRAM8T",
        "SRAM12T", "PGMUXX1", "TGMUXX1"}) {
    EXPECT_TRUE(lib().has(name)) << name;
  }
  EXPECT_FALSE(lib().has("NAND3X1"));
  EXPECT_THROW((void)lib().get("NAND3X1"), std::out_of_range);
}

TEST_F(CellLibTest, PinStructure) {
  const cell::Cell& fa = lib().get("FAX1");
  EXPECT_EQ(fa.input_count(), 3);
  EXPECT_EQ(fa.output_count(), 2);
  EXPECT_EQ(fa.pin("A").cap_ff, fa.pin("B").cap_ff);
  EXPECT_LT(fa.pin("CI").cap_ff, fa.pin("A").cap_ff);
  EXPECT_EQ(fa.pin_index("S"), 3);
  EXPECT_EQ(fa.pin_index("nope"), -1);
  const cell::Cell& dff = lib().get("DFFX1");
  EXPECT_TRUE(dff.pin("CK").is_clock);
  EXPECT_FALSE(dff.pin("D").is_clock);
}

TEST_F(CellLibTest, TimingRoles) {
  EXPECT_EQ(lib().get("FAX1").timing_role(), cell::TimingRole::kCombinational);
  EXPECT_EQ(lib().get("DFFX1").timing_role(), cell::TimingRole::kRegister);
  EXPECT_EQ(lib().get("SRAM6T").timing_role(), cell::TimingRole::kStorage);
  EXPECT_TRUE(lib().get("SRAM8T").is_bitcell());
  EXPECT_FALSE(lib().get("DFFX1").is_bitcell());
}

TEST_F(CellLibTest, CarryFasterThanSum) {
  // The searcher's carry-reorder optimization relies on CO arcs being
  // faster than S arcs (paper Sec. III-B).
  const cell::Cell& fa = lib().get("FAX1");
  double s_delay = 0, co_delay = 0;
  for (const auto& a : fa.arcs) {
    if (fa.pins[a.to_pin].name == "S" && fa.pins[a.from_pin].name == "A") {
      s_delay = a.delay_ps.eval(20, 6);
    }
    if (fa.pins[a.to_pin].name == "CO" && fa.pins[a.from_pin].name == "A") {
      co_delay = a.delay_ps.eval(20, 6);
    }
  }
  EXPECT_GT(s_delay, co_delay);
}

TEST_F(CellLibTest, CompressorSlowerButCheaperThanTwoFAs) {
  // Paper: 4-2 compressors are power- and area-efficient but slower than
  // full adders.
  const cell::Cell& fa = lib().get("FAX1");
  const cell::Cell& cmp = lib().get("CMP42X1");
  auto worst_arc = [](const cell::Cell& c, const char* out) {
    double w = 0;
    for (const auto& a : c.arcs) {
      if (c.pins[a.to_pin].name == out) {
        w = std::max(w, a.delay_ps.eval(20, 6));
      }
    }
    return w;
  };
  EXPECT_GT(worst_arc(cmp, "S"), worst_arc(fa, "S"));
  EXPECT_LT(cmp.area_um2, 2 * fa.area_um2);
  EXPECT_LT(cmp.internal_energy_fj, 2 * fa.internal_energy_fj);
}

TEST_F(CellLibTest, CompressorCoutIndependentOfLateInputs) {
  const cell::Cell& cmp = lib().get("CMP42X1");
  for (const auto& a : cmp.arcs) {
    if (cmp.pins[a.to_pin].name == "COUT") {
      const std::string& from = cmp.pins[a.from_pin].name;
      EXPECT_TRUE(from == "A" || from == "B" || from == "C") << from;
    }
  }
}

TEST_F(CellLibTest, DriveVariantsFasterUnderLoad) {
  const cell::Cell& x1 = lib().get("INVX1");
  const cell::Cell& x4 = lib().get("INVX4");
  EXPECT_LT(x4.arcs[0].delay_ps.eval(20, 40), x1.arcs[0].delay_ps.eval(20, 40));
  EXPECT_GT(x4.pin("A").cap_ff, x1.pin("A").cap_ff);
  EXPECT_GT(x4.area_um2, x1.area_um2);
  const auto variants = lib().variants_of(Kind::kBuf);
  ASSERT_EQ(variants.size(), 5u);
  EXPECT_EQ(variants.front()->name, "BUFX1");
  EXPECT_EQ(variants.back()->name, "BUFX16");
}

TEST_F(CellLibTest, PassGateMuxTradeoff) {
  // AutoDCIM-style 1T pass gate: smallest area but slow and power-hungry
  // (voltage drop), vs. the TG mux (paper Sec. II-B).
  const cell::Cell& pg = lib().get("PGMUXX1");
  const cell::Cell& tg = lib().get("TGMUXX1");
  EXPECT_LT(pg.area_um2, tg.area_um2);
  EXPECT_GT(pg.internal_energy_fj, tg.internal_energy_fj);
  auto delay = [](const cell::Cell& c) {
    double w = 0;
    for (const auto& a : c.arcs) w = std::max(w, a.delay_ps.eval(60, 6));
    return w;
  };
  EXPECT_GT(delay(pg), delay(tg));
}

TEST_F(CellLibTest, BitcellAreasOrdered) {
  EXPECT_LT(lib().get("SRAM6T").area_um2, lib().get("SRAM8T").area_um2);
  EXPECT_LT(lib().get("SRAM8T").area_um2, lib().get("SRAM12T").area_um2);
  // 40nm-like 6T bitcell: around 0.6 um^2.
  EXPECT_NEAR(lib().get("SRAM6T").area_um2, 0.589, 0.1);
}

TEST_F(CellLibTest, DelayMonotoneInLoadAndSlew) {
  for (const char* name : {"INVX1", "NAND2X1", "FAX1", "CMP42X1", "TGMUXX1"}) {
    const cell::Cell& c = lib().get(name);
    for (const auto& a : c.arcs) {
      EXPECT_LT(a.delay_ps.eval(20, 2), a.delay_ps.eval(20, 50)) << name;
      EXPECT_LT(a.delay_ps.eval(10, 6), a.delay_ps.eval(300, 6)) << name;
      EXPECT_GT(a.delay_ps.eval(5, 0.5), 0.0) << name;
      EXPECT_LT(a.out_slew_ps.eval(20, 2), a.out_slew_ps.eval(20, 50));
    }
  }
}

TEST(Lut2d, InterpolationAndClamping) {
  const cell::Lut2d lut({10, 20}, {1, 3}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(lut.eval(10, 1), 1.0);
  EXPECT_DOUBLE_EQ(lut.eval(20, 3), 4.0);
  EXPECT_DOUBLE_EQ(lut.eval(15, 2), 2.5);   // center
  EXPECT_DOUBLE_EQ(lut.eval(0, 0), 1.0);    // clamped low
  EXPECT_DOUBLE_EQ(lut.eval(99, 99), 4.0);  // clamped high
  EXPECT_DOUBLE_EQ(cell::Lut2d::constant(7.5).eval(123, 456), 7.5);
  EXPECT_DOUBLE_EQ(lut.scaled(2.0).eval(15, 2), 5.0);
}

TEST(Lut2d, RejectsBadConstruction) {
  EXPECT_THROW(cell::Lut2d({1, 2}, {1}, {1.0}), std::invalid_argument);
  EXPECT_THROW(cell::Lut2d({2, 1}, {1}, {1.0, 2.0}), std::invalid_argument);
}

TEST(EvalKind, CombinationalTruthTables) {
  using cell::eval_kind;
  EXPECT_EQ(eval_kind(Kind::kInv, {0})[0], 1);
  EXPECT_EQ(eval_kind(Kind::kNand2, {1, 1})[0], 0);
  EXPECT_EQ(eval_kind(Kind::kNor2, {0, 0})[0], 1);
  EXPECT_EQ(eval_kind(Kind::kXor2, {1, 0})[0], 1);
  EXPECT_EQ(eval_kind(Kind::kOai22, {1, 0, 0, 1})[0], 0);
  EXPECT_EQ(eval_kind(Kind::kOai22, {0, 0, 1, 1})[0], 1);
  EXPECT_EQ(eval_kind(Kind::kMux2, {1, 0, 0})[0], 1);
  EXPECT_EQ(eval_kind(Kind::kMux2, {1, 0, 1})[0], 0);
  EXPECT_THROW((void)eval_kind(Kind::kDff, {0, 0}), std::logic_error);
  EXPECT_THROW((void)eval_kind(Kind::kInv, {0, 1}), std::invalid_argument);
}

TEST(EvalKind, AddersCountCorrectly) {
  using cell::eval_kind;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const auto ha = eval_kind(Kind::kHalfAdder, {a, b});
      EXPECT_EQ(ha[0] + 2 * ha[1], a + b);
      for (int ci = 0; ci < 2; ++ci) {
        const auto fa = eval_kind(Kind::kFullAdder, {a, b, ci});
        EXPECT_EQ(fa[0] + 2 * fa[1], a + b + ci);
      }
    }
  }
}

TEST(EvalKind, Compressor42PreservesCount) {
  // S + 2*C + 2*COUT == A+B+C+D+CIN for all 32 input combinations.
  for (int v = 0; v < 32; ++v) {
    const std::vector<int> in = {(v >> 0) & 1, (v >> 1) & 1, (v >> 2) & 1,
                                 (v >> 3) & 1, (v >> 4) & 1};
    const auto out = cell::eval_kind(Kind::kCompressor42, in);
    const int total = in[0] + in[1] + in[2] + in[3] + in[4];
    EXPECT_EQ(out[0] + 2 * out[1] + 2 * out[2], total) << "v=" << v;
  }
}

TEST_F(CellLibTest, LibertyWriterEmitsAllCells) {
  std::ostringstream os;
  cell::write_liberty(lib(), os);
  const std::string s = os.str();
  EXPECT_NE(s.find("library (syndcim_generic40)"), std::string::npos);
  for (const cell::Cell& c : lib().all()) {
    EXPECT_NE(s.find("cell (" + c.name + ")"), std::string::npos) << c.name;
  }
  EXPECT_NE(s.find("related_pin : \"CI\""), std::string::npos);
  EXPECT_NE(s.find("clock : true"), std::string::npos);
}

TEST_F(CellLibTest, DuplicateCellRejected) {
  cell::Library l(tech::make_default_40nm());
  cell::Cell c;
  c.name = "X";
  l.add(c);
  EXPECT_THROW(l.add(c), std::invalid_argument);
}

TEST_F(CellLibTest, ParserReportsBadNumbersWithLineAndContinues) {
  // Corrupt one numeric attribute of the real library dump: the parser
  // must pinpoint it (rule + line), keep the value at a safe default and
  // keep parsing every other cell.
  std::ostringstream os;
  cell::write_liberty(lib(), os);
  std::string text = os.str();
  const std::size_t pos = text.find("area : ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t end = text.find(';', pos);
  text.replace(pos, end - pos, "area : 12banana");
  const int bad_line =
      1 + static_cast<int>(std::count(text.begin(), text.begin() +
                                      static_cast<std::ptrdiff_t>(pos), '\n'));

  std::istringstream is(text);
  core::DiagEngine diag;
  const cell::Library parsed =
      cell::parse_liberty(is, tech::make_default_40nm(), &diag);
  ASSERT_EQ(diag.count_rule("LIB-BADNUM"), 1u);
  EXPECT_EQ(diag.first_of("LIB-BADNUM")->line, bad_line);
  EXPECT_EQ(parsed.all().size(), lib().all().size());
}

TEST_F(CellLibTest, ParserSurvivesFuzzedTruncationsWithoutAborting) {
  // Chopping the dump at arbitrary points must never crash: legacy mode
  // throws a clean invalid_argument, diag mode records LIB-SYNTAX (or
  // parses a clean prefix) and returns the cells seen so far.
  std::ostringstream os;
  cell::write_liberty(lib(), os);
  const std::string text = os.str();
  for (const double frac : {0.1, 0.33, 0.5, 0.77, 0.95}) {
    const std::string cut =
        text.substr(0, static_cast<std::size_t>(frac * text.size()));
    std::istringstream legacy(cut);
    try {
      (void)cell::parse_liberty(legacy, tech::make_default_40nm());
    } catch (const std::invalid_argument&) {
      // acceptable: aggregated error report
    }
    std::istringstream lenient(cut);
    core::DiagEngine diag;
    const cell::Library parsed =
        cell::parse_liberty(lenient, tech::make_default_40nm(), &diag);
    EXPECT_LT(parsed.all().size(), lib().all().size());
  }
}

TEST_F(CellLibTest, ParserRecoversFromUnknownAttributes) {
  // Unknown members are closed-dialect violations: errors, but parsing
  // continues and the surrounding cell still comes out usable.
  const std::string text =
      "library (l) {\n"
      "  cell (INVX1) {\n"
      "    area : 1.0;\n"
      "    shiny_new_attr : 42;\n"
      "    pin (A) { direction : input; capacitance : 0.001; }\n"
      "    pin (Y) { direction : output;\n"
      "      timing () { related_pin : \"A\";\n"
      "        wibble (x) { values (\"1, 2\"); }\n"
      "      }\n"
      "    }\n"
      "  }\n"
      "}\n";
  std::istringstream is(text);
  core::DiagEngine diag;
  const cell::Library parsed =
      cell::parse_liberty(is, tech::make_default_40nm(), &diag);
  EXPECT_GE(diag.count_rule("LIB-UNKNOWN-ATTR"), 2u);
  ASSERT_TRUE(parsed.has("INVX1"));
  EXPECT_DOUBLE_EQ(parsed.get("INVX1").area_um2, 1.0);
}

}  // namespace

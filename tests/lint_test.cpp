// Static-analysis (lint) pass: seeded structural defects must be found
// with the right rule ids, generated macros must be clean, and malformed
// inputs must produce diagnostics instead of crashes.
#include <gtest/gtest.h>

#include <sstream>

#include "cell/characterize.hpp"
#include "cell/liberty_parser.hpp"
#include "core/diag.hpp"
#include "layout/floorplan.hpp"
#include "lint/lint.hpp"
#include "netlist/flatten.hpp"
#include "netlist/verilog_parser.hpp"
#include "rtlgen/macro.hpp"
#include "tech/tech_node.hpp"

namespace {
using namespace syndcim;

const cell::Library& lib() {
  static const cell::Library l =
      cell::characterize_default_library(tech::make_default_40nm());
  return l;
}

rtlgen::MacroConfig small_cfg() {
  rtlgen::MacroConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.mcr = 2;
  cfg.input_bits = {2, 4};
  cfg.weight_bits = {2, 4};
  cfg.fp_formats = {};
  return cfg;
}

netlist::FlatNetlist flat_from(const std::string& src,
                               const std::string& top) {
  std::istringstream is(src);
  const netlist::Design d = netlist::parse_verilog(is);
  return netlist::flatten(d, top);
}

TEST(Lint, SeededDefectsReportTheRightRules) {
  // Multiply-driven net, floating net and a combinational loop in one
  // netlist (mirrors examples/lint_defects.v).
  const std::string src = R"(
module defects (in1, in2, in3, clk, out1, out2, out3, out4);
  input in1; input in2; input in3; input clk;
  output out1; output out2; output out3; output out4;
  wire md; wire floatn; wire loop_a; wire loop_b;
  INVX1 u_md_a (.A(in1), .Y(md));
  INVX1 u_md_b (.A(in2), .Y(md));
  INVX1 u_md_use (.A(md), .Y(out1));
  INVX1 u_float (.A(floatn), .Y(out2));
  INVX1 u_loop_1 (.A(loop_a), .Y(loop_b));
  INVX1 u_loop_2 (.A(loop_b), .Y(loop_a));
  INVX1 u_loop_use (.A(loop_b), .Y(out4));
  DFFX1 u_reg (.D(in3), .CK(clk), .Q(out3));
endmodule
)";
  core::DiagEngine diag;
  const lint::LintSummary s =
      lint::lint_netlist(flat_from(src, "defects"), lib(), diag);
  EXPECT_FALSE(s.clean());
  EXPECT_EQ(s.errors, 3u);
  EXPECT_EQ(diag.count_rule("LINT-MULTIDRIVE"), 1u);
  EXPECT_EQ(diag.count_rule("LINT-FLOATING"), 1u);
  EXPECT_EQ(diag.count_rule("LINT-COMB-LOOP"), 1u);
  const auto md = diag.first_of("LINT-MULTIDRIVE");
  ASSERT_TRUE(md.has_value());
  EXPECT_EQ(md->object, "md");
  const auto fl = diag.first_of("LINT-FLOATING");
  ASSERT_TRUE(fl.has_value());
  EXPECT_EQ(fl->object, "floatn");
  // The loop report names both members of the cycle.
  const auto lp = diag.first_of("LINT-COMB-LOOP");
  ASSERT_TRUE(lp.has_value());
  EXPECT_NE(lp->message.find("2 gates"), std::string::npos);
}

TEST(Lint, GeneratedMacroHasNoErrorsOrWarnings) {
  const rtlgen::MacroDesign macro = rtlgen::gen_macro(small_cfg());
  const netlist::FlatNetlist flat =
      netlist::flatten(macro.design, macro.top);
  core::DiagEngine diag;
  const lint::LintSummary s = lint::lint_netlist(flat, lib(), diag);
  EXPECT_EQ(s.errors, 0u) << diag.summary();
  EXPECT_EQ(s.warnings, 0u) << diag.summary();
}

TEST(Lint, UnconnectedPinsSplitBySeverity) {
  // NAND2X1 with B and Y unconnected: the input is an error (it would
  // float in silicon), the output only a warning (unused logic).
  const std::string src = R"(
module uncon (in1);
  input in1;
  NAND2X1 u (.A(in1));
endmodule
)";
  core::DiagEngine diag;
  const lint::LintSummary s =
      lint::lint_netlist(flat_from(src, "uncon"), lib(), diag);
  EXPECT_EQ(diag.count_rule("LINT-UNCONNECTED"), 2u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.warnings, 1u);
}

TEST(Lint, UnknownCellAndUnknownPin) {
  const std::string src = R"(
module unk (in1, out1);
  input in1; output out1;
  BOGUSX9 u1 (.A(in1), .Y(out1));
  INVX1 u2 (.A(in1), .Z(out1));
endmodule
)";
  core::DiagEngine diag;
  const lint::LintSummary s =
      lint::lint_netlist(flat_from(src, "unk"), lib(), diag);
  EXPECT_FALSE(s.clean());
  EXPECT_EQ(diag.count_rule("LINT-UNKNOWN-CELL"), 1u);
  EXPECT_EQ(diag.first_of("LINT-UNKNOWN-CELL")->object, "BOGUSX9");
  EXPECT_EQ(diag.count_rule("LINT-UNKNOWN-PIN"), 1u);
  // u2's Y stays unconnected once Z is rejected.
  EXPECT_GE(diag.count_rule("LINT-UNCONNECTED"), 1u);
}

TEST(Lint, CdcThroughCombLogicIsFlagged) {
  const std::string src = R"(
module cdc (din, clk_a, clk_b, qout);
  input din; input clk_a; input clk_b; output qout;
  wire qa; wire qi;
  DFFX1 u_src (.D(din), .CK(clk_a), .Q(qa));
  INVX1 u_mid (.A(qa), .Y(qi));
  DFFX1 u_dst (.D(qi), .CK(clk_b), .Q(qout));
endmodule
)";
  core::DiagEngine diag;
  const lint::LintSummary s =
      lint::lint_netlist(flat_from(src, "cdc"), lib(), diag);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(diag.count_rule("LINT-CDC"), 1u);
  const auto c = diag.first_of("LINT-CDC");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->severity, core::Severity::kWarning);
  EXPECT_NE(c->message.find("clk_a"), std::string::npos);
}

TEST(Lint, DirectSynchronizerIsNotFlagged) {
  // reg(clk_a) -> reg(clk_b) with no logic in between IS the
  // synchronizer pattern; same-domain comb paths are fine too.
  const std::string src = R"(
module sync (din, clk_a, clk_b, qout);
  input din; input clk_a; input clk_b; output qout;
  wire qa; wire qs; wire qi;
  DFFX1 u_src (.D(din), .CK(clk_a), .Q(qa));
  DFFX1 u_sync (.D(qa), .CK(clk_b), .Q(qs));
  INVX1 u_same (.A(qs), .Y(qi));
  DFFX1 u_dst (.D(qi), .CK(clk_b), .Q(qout));
endmodule
)";
  core::DiagEngine diag;
  (void)lint::lint_netlist(flat_from(src, "sync"), lib(), diag);
  EXPECT_EQ(diag.count_rule("LINT-CDC"), 0u) << diag.summary();
}

TEST(Lint, SramWriteEndpointChecksDesignatedClock) {
  const std::string src = R"(
module wdom (din, sel, wclk, mclk, qw);
  input din; input sel; input wclk; input mclk; output qw;
  wire wd; wire wl;
  DFFX1 u_w (.D(din), .CK(wclk), .Q(wd));
  DFFX1 u_m (.D(sel), .CK(mclk), .Q(wl));
  DFFX1 u_use (.D(wd), .CK(wclk), .Q(qw));
  SRAM6T u_bit (.WL(wl), .D(wd));
endmodule
)";
  // Without a designated write clock the storage check is off.
  {
    core::DiagEngine diag;
    (void)lint::lint_netlist(flat_from(src, "wdom"), lib(), diag);
    EXPECT_EQ(diag.count_rule("LINT-CDC"), 0u);
  }
  // With it, the MAC-domain register driving WL is a crossing; the
  // write-domain register driving D is not.
  {
    core::DiagEngine diag;
    lint::LintOptions opt;
    opt.write_clock = "wclk";
    (void)lint::lint_netlist(flat_from(src, "wdom"), lib(), diag, opt);
    EXPECT_EQ(diag.count_rule("LINT-CDC"), 1u);
    const auto c = diag.first_of("LINT-CDC");
    ASSERT_TRUE(c.has_value());
    EXPECT_NE(c->message.find("'WL'"), std::string::npos);
    EXPECT_NE(c->message.find("mclk"), std::string::npos);
  }
}

TEST(Lint, DesignLevelWidthMismatchAndUnconnectedPort) {
  netlist::Design d;
  netlist::Module sub("leaf");
  const netlist::NetId a0 = sub.add_port("d[0]", netlist::PortDir::kIn);
  const netlist::NetId a1 = sub.add_port("d[1]", netlist::PortDir::kIn);
  const netlist::NetId y = sub.add_port("y", netlist::PortDir::kOut);
  sub.add_cell("u", "NAND2X1", {{"A", a0}, {"B", a1}, {"Y", y}});
  d.add_module(std::move(sub));

  netlist::Module top("top");
  const netlist::NetId in = top.add_port("in", netlist::PortDir::kIn);
  const netlist::NetId out = top.add_port("out", netlist::PortDir::kOut);
  // Connects only bit 0 of the 2-bit bus `d` and leaves d[1] dangling.
  top.add_submodule("u_leaf", "leaf", {{"d[0]", in}, {"y", out}});
  d.add_module(std::move(top));

  core::DiagEngine diag;
  const lint::LintSummary s = lint::lint_design(d, "top", diag);
  EXPECT_FALSE(s.clean());
  EXPECT_EQ(diag.count_rule("LINT-WIDTH"), 1u);
  const auto w = diag.first_of("LINT-WIDTH");
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->object, "u_leaf");
  EXPECT_NE(w->message.find("2 bits wide"), std::string::npos);
  EXPECT_GE(diag.count_rule("LINT-UNCONNECTED"), 1u);
}

TEST(Lint, MissingTopIsAStructError) {
  netlist::Design d;
  core::DiagEngine diag;
  const lint::LintSummary s = lint::lint_design(d, "nope", diag);
  EXPECT_FALSE(s.clean());
  EXPECT_EQ(diag.count_rule("LINT-STRUCT"), 1u);
}

TEST(Lint, PerRuleCapTruncatesWithANote) {
  // 10 separate floating nets, cap 4: 4 reported, a LINT-TRUNCATED note
  // counts the other 6, and the summary still counts all 10 errors.
  std::string src = "module caps (";
  for (int i = 0; i < 10; ++i) {
    src += (i ? ", " : "") + ("o" + std::to_string(i));
  }
  src += ");\n";
  for (int i = 0; i < 10; ++i) {
    src += "  output o" + std::to_string(i) + ";\n";
    src += "  wire f" + std::to_string(i) + ";\n";
  }
  for (int i = 0; i < 10; ++i) {
    src += "  INVX1 u" + std::to_string(i) + " (.A(f" + std::to_string(i) +
           "), .Y(o" + std::to_string(i) + "));\n";
  }
  src += "endmodule\n";
  core::DiagEngine diag;
  lint::LintOptions opt;
  opt.max_per_rule = 4;
  const lint::LintSummary s =
      lint::lint_netlist(flat_from(src, "caps"), lib(), diag, opt);
  EXPECT_EQ(s.errors, 10u);
  EXPECT_EQ(diag.count_rule("LINT-FLOATING"), 4u);
  EXPECT_EQ(diag.count_rule("LINT-TRUNCATED"), 1u);
  EXPECT_NE(diag.first_of("LINT-TRUNCATED")->message.find("6 further"),
            std::string::npos);
}

TEST(Lint, MalformedVerilogYieldsDiagnosticsNotThrows) {
  // Truncated module: legacy mode throws, diag mode records VLOG-SYNTAX
  // and returns what parsed.
  const std::string truncated = R"(
module good (a, y);
  input a; output y;
  INVX1 u (.A(a), .Y(y));
endmodule
module bad (a, y);
  input a; output y;
  INVX1 u (.A(a), .Y(
)";
  {
    std::istringstream is(truncated);
    EXPECT_THROW((void)netlist::parse_verilog(is), std::invalid_argument);
  }
  {
    std::istringstream is(truncated);
    core::DiagEngine diag;
    const netlist::Design d = netlist::parse_verilog(is, &diag);
    EXPECT_EQ(diag.count_rule("VLOG-SYNTAX"), 1u);
    EXPECT_TRUE(d.has_module("good"));
  }
  // Non-constant assign: VLOG-BADASSIGN with a line number.
  {
    const std::string bad_assign =
        "module m (a, y);\n  input a; output y;\n  assign y = a;\n"
        "endmodule\n";
    std::istringstream is(bad_assign);
    core::DiagEngine diag;
    (void)netlist::parse_verilog(is, &diag);
    const auto f = diag.first_of("VLOG-BADASSIGN");
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->line, 3);
  }
}

TEST(Lint, FloorplanRejectsMalformedColumnGroupNames) {
  // A depth-1 instance named col_bogus lands a group whose name starts
  // with "col" but is not col<N>; sdp_place must skip it with an
  // FP-BADGROUP warning instead of misplacing it (the seed parsed it
  // with std::stoi and relied on exceptions for control flow).
  rtlgen::MacroDesign macro = rtlgen::gen_macro(small_cfg());
  netlist::Module junk("fp_junk");
  const netlist::NetId ja = junk.add_port("a", netlist::PortDir::kIn);
  const netlist::NetId jy = junk.add_port("y", netlist::PortDir::kOut);
  junk.add_cell("u", "INVX1", {{"A", ja}, {"Y", jy}});
  macro.design.add_module(std::move(junk));
  netlist::Module& top = macro.design.module(macro.top);
  const netlist::NetId jin = top.add_net("fp_junk_in");
  const netlist::NetId jout = top.add_net("fp_junk_out");
  top.add_submodule("col_bogus", "fp_junk", {{"a", jin}, {"y", jout}});

  const netlist::FlatNetlist flat =
      netlist::flatten(macro.design, macro.top);
  core::DiagEngine diag;
  const layout::Floorplan fp =
      layout::sdp_place(flat, lib(), small_cfg(), {}, &diag);
  EXPECT_EQ(diag.count_rule("FP-BADGROUP"), 1u);
  EXPECT_EQ(diag.first_of("FP-BADGROUP")->object, "col_bogus");
  // The real columns are all still placed.
  EXPECT_NE(fp.region("col0"), nullptr);
  EXPECT_NE(fp.region("col7"), nullptr);
}

TEST(Lint, JsonReportCarriesCountsAndFindings) {
  core::DiagEngine diag;
  diag.error("LINT-MULTIDRIVE", "net has 2 drivers", "n\"1", "colA");
  diag.warning("LINT-CDC", "crossing", "pin", "colB");
  diag.info("LINT-DANGLING", "unused");
  const std::string json = diag.to_json();
  EXPECT_NE(json.find("\"format\": \"syndcim-diagnostics\""),
            std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"notes\": 1"), std::string::npos);
  // Quotes inside object names are escaped.
  EXPECT_NE(json.find("n\\\"1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"LINT-CDC\""), std::string::npos);
}

TEST(Lint, LibertyDiagnosticsFlowThroughTheSharedEngine) {
  // The same DiagEngine collects findings from multiple producers.
  const std::string bad_lib =
      "library (l) {\n  cell (ZZZ) {\n    area : banana;\n  }\n}\n";
  std::istringstream is(bad_lib);
  core::DiagEngine diag;
  diag.warning("LINT-CDC", "pre-existing finding");
  (void)cell::parse_liberty(is, tech::make_default_40nm(), &diag);
  EXPECT_GE(diag.count_rule("LIB-BADNUM"), 1u);
  EXPECT_EQ(diag.count_rule("LINT-CDC"), 1u);
  EXPECT_TRUE(diag.has_errors());
}

}  // namespace

#pragma once
#include <string>
#include <vector>

#include "core/compiler.hpp"

namespace syndcim::core {

/// Writes the complete hand-off bundle of a compiled macro into `dir`
/// (created if needed) — everything a back-end integration consumes:
///
///   macro.v          structural Verilog of the generated design
///   constraints.sdc  clocks, case analysis, design rules (Algorithm 1's
///                    "circuit constraints" output)
///   sdp_place.tcl    the scalable structured-data-path placement script
///   macro.def        the placement in DEF interchange format
///   cells.lib        the characterized cell library (Liberty-style)
///   datasheet.md     integrator-facing macro datasheet (interface,
///                    precision modes, latency, PPA by subsystem)
///   report.txt       search trail, selected point, signoff summary
///
/// Returns the list of file paths written. Throws on I/O failure.
std::vector<std::string> write_artifacts(const CompileResult& result,
                                         const PerfSpec& spec,
                                         const cell::Library& lib,
                                         const std::string& dir);

}  // namespace syndcim::core

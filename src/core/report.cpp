#include "core/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace syndcim::core {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != rows_[0].size()) {
    throw std::invalid_argument("TextTable::add_row: column count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      os << (c ? "  " : "") << std::left
         << std::setw(static_cast<int>(widths[c])) << rows_[r][c];
    }
    os << "\n";
    if (r == 0) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        os << (c ? "  " : "") << std::string(widths[c], '-');
      }
      os << "\n";
    }
  }
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::yesno(bool v) { return v ? "yes" : "no"; }

}  // namespace syndcim::core

#pragma once
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/blob_store.hpp"
#include "core/diag.hpp"

namespace syndcim::core {

/// Cumulative traffic counters of one DiskBlobStore (monotone since
/// open; a restarted process starts from zero even on a warm dir).
struct DiskStoreStats {
  std::uint64_t objects_read = 0;
  std::uint64_t objects_written = 0;
  std::uint64_t bytes_read = 0;     ///< verified payload bytes served
  std::uint64_t bytes_written = 0;  ///< payload bytes durably stored
  std::uint64_t read_misses = 0;    ///< object file absent
  std::uint64_t corrupt = 0;        ///< checksum / header mismatch
  std::uint64_t truncated = 0;      ///< file shorter than its header says
  std::uint64_t write_fails = 0;
};

/// Crash-safe on-disk content-addressed blob store — the durable L2
/// under the in-memory artifact tiers, and the shared cache of
/// multi-process sharded sweeps.
///
/// Layout: `root/objects/<tier>/<2-hex-prefix>/<digest>` where `digest`
/// is the 32-hex ArtifactHasher digest of (tier, key). Artifact keys
/// carry `|` and interior hex runs, so the digest — not the key — names
/// the file; the full key is stored in the object header and verified on
/// read, which also demotes a digest collision to a plain miss.
///
/// Each object is self-verifying:
///   magic "SYA1" · format version u32 · tier str · key str ·
///   payload len u64 · FNV-1a64 payload checksum · payload bytes
/// Writes go to `root/tmp/<pid>-<seq>` and are published with rename(),
/// which is atomic on POSIX — readers (same process or another sweep
/// shard) see either nothing or a complete object, never a torn write.
/// A crash mid-write leaves only a dead tmp file, swept on next open.
///
/// Corrupt, truncated, or foreign objects are skipped as misses and
/// reported as CACHE-TRUNC / CACHE-CORRUPT diagnostics (the eval-cache
/// CACHE-BADENTRY persistence pattern generalized). DiagEngine is not
/// thread-safe, so findings are buffered internally under the store's
/// mutex and handed over via drain_diags().
class DiskBlobStore final : public BlobStore {
 public:
  /// Opens (creating if needed) a store rooted at `root`. Never throws:
  /// an unusable root degrades every get to a miss and every put to a
  /// counted failure, reported through drain_diags().
  explicit DiskBlobStore(std::string root);

  [[nodiscard]] std::optional<std::string> get(const std::string& tier,
                                               const std::string& key) override;
  bool put(const std::string& tier, const std::string& key,
           std::string_view payload) override;

  [[nodiscard]] const std::string& root() const { return root_; }
  /// False when the root could not be created/used; the store still
  /// answers calls (as misses/failures).
  [[nodiscard]] bool usable() const;

  [[nodiscard]] DiskStoreStats stats() const;
  /// {"root": ..., "objects_read": N, ...} for status/metrics endpoints.
  [[nodiscard]] std::string stats_json() const;

  /// Moves buffered CACHE-* findings into `diag` (oldest first) and
  /// clears the buffer. Call from a single-threaded section.
  void drain_diags(DiagEngine& diag);
  /// Number of findings currently buffered.
  [[nodiscard]] std::size_t pending_diags() const;

  /// Filesystem path an object for (tier, key) would live at (exists or
  /// not) — exposed for tests and tooling.
  [[nodiscard]] std::string object_path(const std::string& tier,
                                        const std::string& key) const;

  /// Walks objects/ and returns (object count, total object file bytes —
  /// headers included) of what is durably on disk right now. O(objects);
  /// meant for status endpoints and store-stats dumps, not hot paths.
  struct DiskUsage {
    std::uint64_t objects = 0;
    std::uint64_t file_bytes = 0;
  };
  [[nodiscard]] DiskUsage disk_usage() const;

 private:
  void note(Severity sev, std::string rule, std::string message,
            std::string object);
  bool write_object(const std::string& tier, const std::string& key,
                    const std::string& path, std::string_view payload);

  std::string root_;
  bool usable_ = false;
  mutable std::mutex mu_;
  std::uint64_t tmp_seq_ = 0;
  DiskStoreStats stats_;
  std::vector<Diagnostic> diags_;
};

}  // namespace syndcim::core

#pragma once
#include <mutex>

#include "core/scl.hpp"

namespace syndcim::core {

/// Everything the searcher needs to know about one (configuration, spec)
/// pair: the PPA estimate and the per-path timing classification. Bundled
/// so an evaluation backend can produce (and a cache can memoize) both
/// from a single slice characterization.
struct EvalOutcome {
  PpaEstimate ppa;
  SubcircuitLibrary::PathStatus timing;
};

/// Injectable evaluation hook of `MsoSearcher`. The searcher only ever
/// asks one question — "what are the PPA and path timings of `cfg` under
/// `spec`?" — so wrapping this interface is enough to make evaluation
/// cached, remote, logged or mocked without the searcher noticing.
class EvalBackend {
 public:
  virtual ~EvalBackend() = default;
  virtual EvalOutcome evaluate(const rtlgen::MacroConfig& cfg,
                               const PerfSpec& spec) = 0;
};

/// Default backend: forwards to the SubcircuitLibrary. Serialized by an
/// internal mutex so concurrent searchers (the DSE sweep pool) can share
/// one library — and therefore one slice-characterization cache — safely;
/// `SubcircuitLibrary::slice` mutates its cache map and is not itself
/// thread-safe.
class SclEvalBackend final : public EvalBackend {
 public:
  explicit SclEvalBackend(SubcircuitLibrary& scl) : scl_(scl) {}
  EvalOutcome evaluate(const rtlgen::MacroConfig& cfg,
                       const PerfSpec& spec) override {
    const std::lock_guard<std::mutex> lock(mu_);
    EvalOutcome out;
    out.ppa = scl_.evaluate(cfg, spec);
    out.timing = scl_.timing_status(cfg, spec);
    return out;
  }

 private:
  SubcircuitLibrary& scl_;
  std::mutex mu_;
};

}  // namespace syndcim::core

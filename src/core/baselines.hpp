#pragma once
#include <optional>
#include <string>
#include <vector>

#include "core/spec.hpp"
#include "rtlgen/arch.hpp"

namespace syndcim::core {

/// Capability matrix of emerging CIM compilers (paper Table I).
struct CompilerCapabilities {
  std::string name;
  std::string venue;
  bool end_to_end = false;
  bool fp_and_int = false;
  bool ppa_selectable_subcircuits = false;
  bool spec_oriented_synthesis = false;
  bool digital_cim = true;  ///< EasyACIM targets analog CIM
};

/// The five rows of Table I (AutoDCIM, EasyACIM, ISLPED'23, ARCTIC,
/// SynDCIM).
[[nodiscard]] std::vector<CompilerCapabilities> compiler_feature_matrix();

/// Template-based baseline compiler models for the Fig. 8 comparison:
/// each maps a spec to the single fixed-architecture macro that compiler
/// family would emit (no spec-oriented synthesis, no PPA-selectable
/// subcircuits). Returns nullopt when the spec is outside the compiler's
/// scope (e.g. FP formats for an INT-only compiler are dropped by the
/// caller, an MCR the mux style cannot serve).
///
/// AutoDCIM [DAC'23]: 1T pass-gate mux template, conventional signed RCA
/// adder tree, fully registered pipeline, INT only.
[[nodiscard]] std::optional<rtlgen::MacroConfig> autodcim_style_config(
    const PerfSpec& spec);

/// ISLPED'23 structured std-cell macro: TG mux, RCA tree, INT only.
[[nodiscard]] std::optional<rtlgen::MacroConfig> islped23_style_config(
    const PerfSpec& spec);

/// ARCTIC [DATE'24]: parameterized INT/FP pipeline but one fixed
/// subcircuit set (TG mux, compressor CSA without the mixed-FA knob or
/// carry reorder), no search.
[[nodiscard]] std::optional<rtlgen::MacroConfig> arctic_style_config(
    const PerfSpec& spec);

}  // namespace syndcim::core

#include "core/compiler.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "netlist/stitch.hpp"
#include "num/int_ops.hpp"
#include "rtlgen/content_key.hpp"
#include "sim/macro_tb.hpp"
#include "tech/units.hpp"

namespace syndcim::core {

namespace {

/// Content key of the workload the power stage simulates. "wl2" covers
/// the lane count and the lane-parallel stimulus schedule: with lanes > 1
/// the drive schedule packs independent per-lane input streams, so the
/// simulated activity is a different (equally valid) workload sample and
/// must not alias the scalar schedule's cached artifacts.
std::string workload_key(const Workload& wl) {
  ArtifactHasher h;
  h.str("wl2");
  h.i32(wl.n_macs);
  h.dbl(wl.input_density);
  h.dbl(wl.weight_density);
  h.i32(wl.input_bits);
  h.i32(wl.weight_bits);
  h.u32(wl.seed);
  h.i32(wl.lanes);
  return h.hex();
}

/// Random workload run on the gate-level netlist for measured activity.
/// Weights always come from one mt19937(seed) stream; with lanes == 1 the
/// inputs continue that same stream (the exact pre-lane schedule), while
/// lanes > 1 draws each lane's input stream from its own mt19937 seeded
/// deterministically from (seed, lane) and carries `lanes` independent
/// MACs per protocol pass, ceil(n_macs / lanes) passes total.
void drive_workload(sim::MacroTestbench& tb, sim::DcimMacroModel& model,
                    const Workload& wl) {
  std::mt19937 rng(wl.seed);
  std::bernoulli_distribution in_bit(wl.input_density);
  std::bernoulli_distribution w_bit(wl.weight_density);
  const auto& cfg = model.cfg();
  const int wp = wl.weight_bits;
  const int n_out = cfg.cols / wp;

  for (int bank = 0; bank < cfg.mcr; ++bank) {
    std::vector<std::vector<std::int64_t>> w(
        static_cast<std::size_t>(n_out));
    for (auto& g : w) {
      g.resize(static_cast<std::size_t>(cfg.rows));
      for (auto& v : g) {
        std::uint64_t bits = 0;
        for (int b = 0; b < wp; ++b) {
          bits |= static_cast<std::uint64_t>(w_bit(rng)) << b;
        }
        v = wp > 1 ? num::sign_extend(bits, wp)
                   : static_cast<std::int64_t>(bits);
      }
    }
    model.load_weights_int(bank, wp, w);
  }
  tb.preload_weights(model);
  tb.sim().reset_activity();

  auto draw_input = [&](std::mt19937& r, std::int64_t& v) {
    std::uint64_t bits = 0;
    for (int b = 0; b < wl.input_bits; ++b) {
      bits |= static_cast<std::uint64_t>(in_bit(r)) << b;
    }
    v = wl.input_bits > 1 ? num::sign_extend(bits, wl.input_bits)
                          : static_cast<std::int64_t>(bits);
  };

  if (tb.lanes() == 1) {
    for (int m = 0; m < wl.n_macs; ++m) {
      std::vector<std::int64_t> in(static_cast<std::size_t>(cfg.rows));
      for (auto& v : in) draw_input(rng, v);
      (void)tb.run_mac_int(in, wl.input_bits, wp, m % cfg.mcr,
                           wl.input_bits > 1);
    }
    return;
  }

  const int lanes = tb.lanes();
  std::vector<std::mt19937> lane_rng;
  lane_rng.reserve(static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l) {
    lane_rng.emplace_back(wl.seed +
                          0x9e3779b9u * static_cast<unsigned>(l + 1));
  }
  const int passes = (wl.n_macs + lanes - 1) / lanes;
  std::vector<std::vector<std::int64_t>> in(
      static_cast<std::size_t>(lanes),
      std::vector<std::int64_t>(static_cast<std::size_t>(cfg.rows)));
  for (int m = 0; m < passes; ++m) {
    for (int l = 0; l < lanes; ++l) {
      for (auto& v : in[static_cast<std::size_t>(l)]) {
        draw_input(lane_rng[static_cast<std::size_t>(l)], v);
      }
    }
    (void)tb.run_mac_int_lanes(in, wl.input_bits, wp, m % cfg.mcr,
                               wl.input_bits > 1);
  }
}

}  // namespace

Implementation SynDcimCompiler::implement(const rtlgen::MacroConfig& cfg,
                                          const PerfSpec& spec,
                                          const Workload& workload,
                                          const CancelToken* cancel) {
  Implementation impl;

  // Pass pipeline over the shared subcircuit-artifact store: every stage
  // declares its input key and skips (splicing the cached artifact,
  // including the diagnostics it originally emitted) when that key is
  // unchanged. Each stage still lands in the implementation's phase
  // timeline — the established phase names are kept — and, when
  // observability is enabled, in the tracer.
  ArtifactStore& as = scl_.artifacts();
  StagePipeline pipe("compile", &impl.timeline);
  pipe.set_cancel(cancel);
  const std::string ckey = rtlgen::config_content_key(cfg);
  const std::string& libfp = lib_.fingerprint();
  const std::string lkey = ckey + "|" + libfp;

  // rtlgen always materializes the MacroDesign (the caller keeps it for
  // testbench hookup and module keys); its subcircuit modules still come
  // from — and land in — the modules tier.
  const auto macro = pipe.run<rtlgen::MacroDesign>(
      "rtlgen", nullptr, ckey,
      [&] { return rtlgen::gen_macro(cfg, &as.modules); });
  impl.macro = *macro;

  const auto flat = pipe.run("map", &as.flats, "flatm1|" + ckey, [&] {
    netlist::StitchResult sr = netlist::stitch_flatten(
        impl.macro.design, impl.macro.top, &as.blocks);
    return std::move(sr.nl);
  });

  // Static netlist checks before any physical or timing work: an
  // error-severity finding means the netlist itself is broken and every
  // downstream number would be meaningless.
  const auto lint_art =
      pipe.run("lint", &as.lints, "lint1|" + lkey, [&] {
        LintArtifact la;
        DiagEngine dg;
        la.summary = lint::lint_netlist(*flat, lib_, dg);
        la.diags = dg.diags();
        return la;
      });
  replay_diags(lint_art->diags, impl.diagnostics);
  impl.lint = lint_art->summary;
  if (!impl.lint.clean()) {
    throw std::runtime_error("SynDcimCompiler::implement: netlist lint "
                             "failed (" + impl.diagnostics.summary() + ")");
  }

  // APR: structured-data-path placement, then signoff checks.
  const auto placed =
      pipe.run("floorplan", &as.placed, "place1|" + lkey, [&] {
        PlacedArtifact pa;
        DiagEngine dg;
        pa.floorplan = layout::sdp_place(*flat, lib_, cfg, {}, &dg);
        pa.diags = dg.diags();
        return pa;
      });
  replay_diags(placed->diags, impl.diagnostics);
  impl.floorplan = placed->floorplan;

  const auto route = pipe.run("route", &as.routes, "route1|" + lkey, [&] {
    RouteArtifact ra;
    ra.drc = layout::run_drc(*flat, lib_, placed->floorplan);
    ra.lvs = layout::run_lvs(*flat, lib_, placed->floorplan);
    ra.wire =
        layout::extract_wire_model(*flat, placed->floorplan, lib_.node());
    return ra;
  });
  impl.drc = route->drc;
  impl.lvs = route->lvs;

  // Post-layout STA with back-annotated parasitics. The key adds the spec
  // timing knobs — the only spec fields this stage reads.
  const std::string skey = spec_knobs_key(spec);
  const auto timing =
      pipe.run("sta", &as.timings, "sta2|" + lkey + "|" + skey, [&] {
        TimingArtifact ta;
        DiagEngine dg;
        sta::StaEngine sta(*flat, lib_);
        sta::StaOptions topt;
        topt.clock_period_ps = spec.period_ps();
        topt.write_period_ps = spec.write_period_ps();
        topt.vdd = spec.vdd;
        topt.wire = route->wire;
        topt.static_inputs = impl.macro.static_control_ports();
        topt.collect_group_interfaces = true;
        topt.diag = &dg;
        ta.timing = sta.analyze(topt);
        ta.diags = dg.diags();
        return ta;
      });
  replay_diags(timing->diags, impl.diagnostics);
  impl.timing = timing->timing;
  impl.fmax_mhz = impl.timing.fmax_mhz;

  // Post-layout power from gate-level simulated activity. The simulated
  // activity model is spec-independent (configuration x workload x
  // library), so a voltage/frequency re-spin skips the simulation and
  // only re-prices the power.
  const double power_freq_mhz = std::min(spec.mac_freq_mhz, impl.fmax_mhz);
  const std::string wkey = workload_key(workload);
  const auto pw = pipe.run(
      "power", &as.powers, "pow1|" + lkey + "|" + skey + "|" + wkey, [&] {
        const auto act = as.act_models.get_or_compute(
            "simact1|" + lkey + "|" + wkey, [&] {
              Workload wl = workload;
              wl.input_bits = std::min(wl.input_bits, cfg.max_input_bits());
              wl.weight_bits =
                  std::min(wl.weight_bits, cfg.max_weight_bits());
              wl.lanes = std::clamp(wl.lanes, 1, 64);
              sim::MacroTestbench tb(impl.macro, lib_, wl.lanes);
              sim::DcimMacroModel model(cfg);
              drive_workload(tb, model, wl);
              obs::metrics().counter("sim.gate_evals")
                  .inc(tb.sim().gate_evals());
              obs::metrics().counter("sim.events_skipped")
                  .inc(tb.sim().events_skipped());
              obs::metrics().gauge("sim.lanes").set(
                  static_cast<double>(tb.sim().lanes()));
              return power::activity_from_sim(*flat, lib_, tb.sim());
            });
        power::PowerOptions popt;
        popt.vdd = spec.vdd;
        popt.freq_mhz = power_freq_mhz;
        popt.wire = route->wire;
        PowerArtifact pa;
        pa.power = power::analyze_power(*flat, lib_, *act, popt);
        pa.area = power::analyze_area(*flat, lib_);
        return pa;
      });
  impl.power = pw->power;
  impl.cell_area = pw->area;

  impl.macro_area_mm2 = impl.floorplan.outline.area() * 1e-6;
  impl.total_power_uw = impl.power.total_uw();
  impl.tops_1b =
      2.0 * cfg.rows * cfg.cols * power_freq_mhz * 1.0e6 * 1.0e-12;
  impl.stages = pipe.records();
  return impl;
}

CompileResult SynDcimCompiler::compile(const PerfSpec& spec,
                                       const Workload& workload,
                                       const CancelToken* cancel) {
  OBS_SPAN("core.compile");
  CompileResult res;
  if (cancel != nullptr) cancel->check("compile.search");
  {
    OBS_SPAN("core.search");
    res.search = searcher_.search(spec);
  }

  // Implement Pareto points in preference order; post-layout verification
  // can reject an aggressive point whose extracted parasitics exceed the
  // pre-layout guard band, in which case the next point is taken (the
  // paper's flow likewise validates each implemented design by
  // post-layout simulation before accepting it).
  std::vector<const DesignPoint*> order;
  for (const DesignPoint& p : res.search.pareto) order.push_back(&p);
  std::sort(order.begin(), order.end(),
            [&](const DesignPoint* a, const DesignPoint* b) {
              return preference_score(*a, res.search.pareto, spec.pref.power,
                                      spec.pref.area,
                                      spec.pref.performance) <
                     preference_score(*b, res.search.pareto, spec.pref.power,
                                      spec.pref.area,
                                      spec.pref.performance);
            });
  if (order.empty()) {
    throw std::logic_error("SynDcimCompiler::compile: spec infeasible");
  }
  for (const DesignPoint* p : order) {
    if (cancel != nullptr) cancel->check("compile.implement");
    res.selected = *p;
    res.impl = implement(p->cfg, spec, workload, cancel);
    if (res.impl.signoff_clean()) break;
  }
  return res;
}

}  // namespace syndcim::core

#include "core/compiler.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "netlist/flatten.hpp"
#include "num/int_ops.hpp"
#include "sim/macro_tb.hpp"
#include "tech/units.hpp"

namespace syndcim::core {

namespace {

/// Random workload run on the gate-level netlist for measured activity.
void drive_workload(sim::MacroTestbench& tb, sim::DcimMacroModel& model,
                    const Workload& wl) {
  std::mt19937 rng(wl.seed);
  std::bernoulli_distribution in_bit(wl.input_density);
  std::bernoulli_distribution w_bit(wl.weight_density);
  const auto& cfg = model.cfg();
  const int wp = wl.weight_bits;
  const int n_out = cfg.cols / wp;

  for (int bank = 0; bank < cfg.mcr; ++bank) {
    std::vector<std::vector<std::int64_t>> w(
        static_cast<std::size_t>(n_out));
    for (auto& g : w) {
      g.resize(static_cast<std::size_t>(cfg.rows));
      for (auto& v : g) {
        std::uint64_t bits = 0;
        for (int b = 0; b < wp; ++b) {
          bits |= static_cast<std::uint64_t>(w_bit(rng)) << b;
        }
        v = wp > 1 ? num::sign_extend(bits, wp)
                   : static_cast<std::int64_t>(bits);
      }
    }
    model.load_weights_int(bank, wp, w);
  }
  tb.preload_weights(model);
  tb.sim().reset_activity();
  for (int m = 0; m < wl.n_macs; ++m) {
    std::vector<std::int64_t> in(static_cast<std::size_t>(cfg.rows));
    for (auto& v : in) {
      std::uint64_t bits = 0;
      for (int b = 0; b < wl.input_bits; ++b) {
        bits |= static_cast<std::uint64_t>(in_bit(rng)) << b;
      }
      v = wl.input_bits > 1 ? num::sign_extend(bits, wl.input_bits)
                            : static_cast<std::int64_t>(bits);
    }
    (void)tb.run_mac_int(in, wl.input_bits, wp, m % cfg.mcr,
                         wl.input_bits > 1);
  }
}

}  // namespace

Implementation SynDcimCompiler::implement(const rtlgen::MacroConfig& cfg,
                                          const PerfSpec& spec,
                                          const Workload& workload) {
  Implementation impl;

  // Each pipeline stage is scoped both into the implementation's phase
  // timeline (always recorded) and, when observability is enabled, into
  // the global tracer as a `compile.<phase>` span.
  {
    obs::PhaseScope phase(impl.timeline, "rtlgen");
    impl.macro = rtlgen::gen_macro(cfg);
  }
  const netlist::FlatNetlist flat = [&] {
    obs::PhaseScope phase(impl.timeline, "map");
    return netlist::flatten(impl.macro.design, impl.macro.top);
  }();

  // Static netlist checks before any physical or timing work: an
  // error-severity finding means the netlist itself is broken and every
  // downstream number would be meaningless.
  {
    obs::PhaseScope phase(impl.timeline, "lint");
    impl.lint = lint::lint_netlist(flat, lib_, impl.diagnostics);
  }
  if (!impl.lint.clean()) {
    throw std::runtime_error("SynDcimCompiler::implement: netlist lint "
                             "failed (" + impl.diagnostics.summary() + ")");
  }

  // APR: structured-data-path placement, then signoff checks.
  {
    obs::PhaseScope phase(impl.timeline, "floorplan");
    impl.floorplan =
        layout::sdp_place(flat, lib_, cfg, {}, &impl.diagnostics);
  }
  const sta::WireModel wire = [&] {
    obs::PhaseScope phase(impl.timeline, "route");
    impl.drc = layout::run_drc(flat, lib_, impl.floorplan);
    impl.lvs = layout::run_lvs(flat, lib_, impl.floorplan);
    return layout::extract_wire_model(flat, impl.floorplan, lib_.node());
  }();

  // Post-layout STA with back-annotated parasitics.
  {
    obs::PhaseScope phase(impl.timeline, "sta");
    sta::StaEngine sta(flat, lib_);
    sta::StaOptions topt;
    topt.clock_period_ps = spec.period_ps();
    topt.write_period_ps = spec.write_period_ps();
    topt.vdd = spec.vdd;
    topt.wire = wire;
    topt.static_inputs = impl.macro.static_control_ports();
    topt.diag = &impl.diagnostics;
    impl.timing = sta.analyze(topt);
    impl.fmax_mhz = impl.timing.fmax_mhz;
  }

  // Post-layout power from gate-level simulated activity.
  const double power_freq_mhz = std::min(spec.mac_freq_mhz, impl.fmax_mhz);
  {
    obs::PhaseScope phase(impl.timeline, "power");
    sim::MacroTestbench tb(impl.macro, lib_);
    sim::DcimMacroModel model(cfg);
    Workload wl = workload;
    wl.input_bits = std::min(wl.input_bits, cfg.max_input_bits());
    wl.weight_bits = std::min(wl.weight_bits, cfg.max_weight_bits());
    drive_workload(tb, model, wl);
    const power::ActivityModel act =
        power::activity_from_sim(flat, lib_, tb.sim());
    power::PowerOptions popt;
    popt.vdd = spec.vdd;
    popt.freq_mhz = power_freq_mhz;
    popt.wire = wire;
    impl.power = power::analyze_power(flat, lib_, act, popt);
    impl.cell_area = power::analyze_area(flat, lib_);
  }

  impl.macro_area_mm2 = impl.floorplan.outline.area() * 1e-6;
  impl.total_power_uw = impl.power.total_uw();
  impl.tops_1b =
      2.0 * cfg.rows * cfg.cols * power_freq_mhz * 1.0e6 * 1.0e-12;
  return impl;
}

CompileResult SynDcimCompiler::compile(const PerfSpec& spec,
                                       const Workload& workload) {
  OBS_SPAN("core.compile");
  CompileResult res;
  {
    OBS_SPAN("core.search");
    res.search = searcher_.search(spec);
  }

  // Implement Pareto points in preference order; post-layout verification
  // can reject an aggressive point whose extracted parasitics exceed the
  // pre-layout guard band, in which case the next point is taken (the
  // paper's flow likewise validates each implemented design by
  // post-layout simulation before accepting it).
  std::vector<const DesignPoint*> order;
  for (const DesignPoint& p : res.search.pareto) order.push_back(&p);
  std::sort(order.begin(), order.end(),
            [&](const DesignPoint* a, const DesignPoint* b) {
              return preference_score(*a, res.search.pareto, spec.pref.power,
                                      spec.pref.area,
                                      spec.pref.performance) <
                     preference_score(*b, res.search.pareto, spec.pref.power,
                                      spec.pref.area,
                                      spec.pref.performance);
            });
  if (order.empty()) {
    throw std::logic_error("SynDcimCompiler::compile: spec infeasible");
  }
  for (const DesignPoint* p : order) {
    res.selected = *p;
    res.impl = implement(p->cfg, spec, workload);
    if (res.impl.signoff_clean()) break;
  }
  return res;
}

}  // namespace syndcim::core

#pragma once
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

// Header-only, dependency-free binary encode/decode primitives shared by
// every layer's artifact serializer (netlist, sim, lint, layout, sta,
// power). Fixed little-endian layout independent of host struct padding,
// doubles stored as raw IEEE-754 bit patterns — a round trip is bit-exact
// by construction, which is what the on-disk artifact store's
// cold-path == warm-path guarantee rests on.

namespace syndcim::core {

/// Truncated or malformed binary payload. Decoders throw it on any
/// out-of-bounds read; the blob-store read path turns it into a
/// corrupt-object diagnostic instead of installing garbage.
class BinDecodeError : public std::runtime_error {
 public:
  explicit BinDecodeError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Appends fixed-layout fields to a byte string.
class BinWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw_le(v); }
  void u64(std::uint64_t v) { raw_le(v); }
  void i32(std::int32_t v) { raw_le(static_cast<std::uint32_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  void bytes(const void* data, std::size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }

  [[nodiscard]] const std::string& data() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }
  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  template <typename U>
  void raw_le(U v) {
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string out_;
};

/// Bounds-checked reader over an encoded payload. Every accessor throws
/// BinDecodeError instead of reading past the end, so truncated objects
/// fail loudly and atomically (nothing is half-installed).
class BinReader {
 public:
  explicit BinReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32() { return raw_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return raw_le<std::uint64_t>(); }
  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(raw_le<std::uint32_t>());
  }
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  /// Length prefix for a container about to be decoded element-wise.
  /// `min_elem_bytes` bounds a hostile length against the bytes actually
  /// remaining, so a corrupt count cannot drive a multi-gigabyte reserve.
  [[nodiscard]] std::uint32_t len(std::size_t min_elem_bytes = 1) {
    const std::uint32_t n = u32();
    if (min_elem_bytes > 0 &&
        static_cast<std::uint64_t>(n) * min_elem_bytes > remaining()) {
      throw BinDecodeError("length prefix exceeds payload");
    }
    return n;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  /// Decoders call this last: trailing bytes mean the payload was written
  /// by a different (newer) encoding and must not be half-trusted.
  void expect_end() const {
    if (!at_end()) throw BinDecodeError("trailing bytes after payload");
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw BinDecodeError("truncated payload");
  }
  template <typename U>
  U raw_le() {
    need(sizeof(U));
    U v = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      v |= static_cast<U>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(U);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Deep-bytes helpers for the ArtifactTierStats accounting hooks: the
/// real heap footprint of common payload shapes (sizes, not capacities,
/// so the number is deterministic across allocation histories).
[[nodiscard]] inline std::size_t deep_str_bytes(const std::string& s) {
  return s.size();
}
template <typename T>
[[nodiscard]] std::size_t deep_vec_bytes(const std::vector<T>& v) {
  return v.size() * sizeof(T);
}

}  // namespace syndcim::core

#pragma once
// Cooperative cancellation and per-request deadlines, shared by the serve
// daemon (request deadlines, drain) and the batch CLI (SIGINT/SIGTERM).
//
// A CancelToken is a passive flag: nothing is interrupted preemptively.
// Long-running flows poll it at natural boundaries — StagePipeline checks
// before every stage, the DSE sweep before every (spec, trajectory) task —
// and either return partial results (sweep) or unwind with CancelledError
// (compile pipeline). Both `cancel()` and `cancelled()` are lock-free
// atomics, so the token is safe to trip from a signal handler and to poll
// from any number of worker threads.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace syndcim::core {

/// Thrown when a cancellable flow observes its token tripped (deadline
/// expired or explicit cancel). Callers that want partial results catch
/// it; the serve daemon maps it to a deadline-exceeded (408) response.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& where)
      : std::runtime_error("cancelled: " + where) {}
};

/// Shared cancellation flag with an optional absolute deadline (steady
/// clock). Thread-safe and reusable: `reset()` re-arms a token between
/// runs (the batch CLI's process-wide interrupt token is reset only by
/// tests).
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Trips the token. Lock-free relaxed store — callable from a signal
  /// handler (std::atomic<bool> is always lock-free on the supported
  /// platforms).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms an absolute deadline; the token reads as cancelled once the
  /// steady clock passes it. 0 / time_point::min() clears the deadline.
  void set_deadline(Clock::time_point tp) noexcept {
    deadline_ns_.store(
        tp == Clock::time_point::min()
            ? 0
            : std::chrono::duration_cast<std::chrono::nanoseconds>(
                  tp.time_since_epoch())
                  .count(),
        std::memory_order_relaxed);
  }
  void set_deadline_after(std::chrono::nanoseconds d) noexcept {
    set_deadline(Clock::now() + d);
  }
  void clear_deadline() noexcept {
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] bool deadline_expired() const noexcept {
    const std::int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
    return dl != 0 &&
           Clock::now().time_since_epoch() >= std::chrono::nanoseconds(dl);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed) || deadline_expired();
  }

  /// Throws CancelledError when the token is tripped; `where` names the
  /// boundary that noticed (e.g. "compile.sta").
  void check(const std::string& where) const {
    if (cancelled()) throw CancelledError(where);
  }

  /// Re-arms the token (flag and deadline). Only meaningful at quiescent
  /// points — no worker may be polling concurrently with a reset it is
  /// not expecting.
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// Steady-clock deadline in ns since the clock epoch; 0 = none.
  std::atomic<std::int64_t> deadline_ns_{0};
};

}  // namespace syndcim::core

#include "core/design_point.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace syndcim::core {

std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points) {
  std::vector<DesignPoint> front;
  for (const DesignPoint& p : points) {
    if (!p.feasible) continue;
    bool dominated = false;
    for (const DesignPoint& q : points) {
      if (!q.feasible || &q == &p) continue;
      const bool no_worse = q.ppa.power_uw <= p.ppa.power_uw &&
                            q.ppa.area_um2 <= p.ppa.area_um2;
      const bool better = q.ppa.power_uw < p.ppa.power_uw ||
                          q.ppa.area_um2 < p.ppa.area_um2;
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(p);
  }
  // Deduplicate identical PPA points (same config explored twice).
  std::sort(front.begin(), front.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              return a.ppa.power_uw < b.ppa.power_uw;
            });
  front.erase(std::unique(front.begin(), front.end(),
                          [](const DesignPoint& a, const DesignPoint& b) {
                            return std::abs(a.ppa.power_uw -
                                            b.ppa.power_uw) < 1e-9 &&
                                   std::abs(a.ppa.area_um2 -
                                            b.ppa.area_um2) < 1e-9;
                          }),
              front.end());
  return front;
}

double preference_score(const DesignPoint& p,
                        const std::vector<DesignPoint>& front,
                        double w_power, double w_area, double w_perf) {
  double min_p = std::numeric_limits<double>::max(), max_p = 0;
  double min_a = std::numeric_limits<double>::max(), max_a = 0;
  double min_f = std::numeric_limits<double>::max(), max_f = 0;
  for (const DesignPoint& q : front) {
    min_p = std::min(min_p, q.ppa.power_uw);
    max_p = std::max(max_p, q.ppa.power_uw);
    min_a = std::min(min_a, q.ppa.area_um2);
    max_a = std::max(max_a, q.ppa.area_um2);
    min_f = std::min(min_f, q.ppa.fmax_mhz);
    max_f = std::max(max_f, q.ppa.fmax_mhz);
  }
  auto norm = [](double v, double lo, double hi) {
    return hi > lo ? (v - lo) / (hi - lo) : 0.0;
  };
  return w_power * norm(p.ppa.power_uw, min_p, max_p) +
         w_area * norm(p.ppa.area_um2, min_a, max_a) -
         w_perf * norm(p.ppa.fmax_mhz, min_f, max_f);
}

}  // namespace syndcim::core

#pragma once
#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace syndcim::core {

/// Severity policy: kError findings make the producing stage fail (the
/// compiler refuses to run STA/power on them, `syndcim lint` exits
/// non-zero); kWarning findings are suspicious but do not block the flow;
/// kInfo findings are observations (e.g. dangling driver-only nets on
/// unused subcircuit outputs).
enum class Severity { kInfo, kWarning, kError };

[[nodiscard]] const char* severity_name(Severity s);

/// One structured finding. `rule` is a stable machine-readable id
/// (e.g. "LINT-MULTIDRIVE", "LIB-BADNUM"); `object` names the net,
/// instance or pin the finding is about; `source` names where it came
/// from (a file path, or the subcircuit/group of a netlist finding);
/// `line` is the 1-based source line for file findings (-1 when n/a).
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;
  std::string message;
  std::string object;
  std::string source;
  int line = -1;
};

/// Collects diagnostics from every untrusted-input parse path and from the
/// netlist lint pass; one engine is threaded through a whole flow so the
/// final report covers all stages. Not thread-safe: share one engine per
/// thread (the parallel sweep lints frontier points sequentially).
class DiagEngine {
 public:
  void report(Diagnostic d);
  void error(std::string rule, std::string message, std::string object = "",
             std::string source = "", int line = -1);
  void warning(std::string rule, std::string message, std::string object = "",
               std::string source = "", int line = -1);
  void info(std::string rule, std::string message, std::string object = "",
            std::string source = "", int line = -1);

  [[nodiscard]] const std::vector<Diagnostic>& diags() const {
    return diags_;
  }
  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] std::size_t error_count() const {
    return count(Severity::kError);
  }
  [[nodiscard]] std::size_t warning_count() const {
    return count(Severity::kWarning);
  }
  [[nodiscard]] bool has_errors() const { return error_count() > 0; }

  /// Number of findings carrying `rule`.
  [[nodiscard]] std::size_t count_rule(std::string_view rule) const;
  /// First finding carrying `rule`, if any.
  [[nodiscard]] std::optional<Diagnostic> first_of(
      std::string_view rule) const;

  void clear() { diags_.clear(); }
  /// Appends every finding of `other`.
  void merge(const DiagEngine& other);

  /// "2 errors, 1 warning, 3 notes".
  [[nodiscard]] std::string summary() const;
  /// Human-readable listing, one finding per line:
  ///   error[LINT-MULTIDRIVE] net 'x' ... (source:line)
  void print(std::ostream& os) const;
  /// Machine-readable report:
  ///   {"format": "syndcim-diagnostics", "errors": N, "warnings": N,
  ///    "diagnostics": [{"severity", "rule", "message", "object",
  ///                     "source", "line"}, ...]}
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<Diagnostic> diags_;
};

/// Escapes `s` for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape_string(const std::string& s);

}  // namespace syndcim::core

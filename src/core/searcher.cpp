#include "core/searcher.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "rtlgen/ofu.hpp"

namespace syndcim::core {

using rtlgen::MacroConfig;

const DesignPoint& SearchResult::best(const PpaPreference& pref) const {
  if (pareto.empty()) {
    throw std::logic_error("SearchResult::best: no feasible design");
  }
  const DesignPoint* sel = &pareto.front();
  double best_score = 1e300;
  for (const DesignPoint& p : pareto) {
    const double s = preference_score(p, pareto, pref.power, pref.area,
                                      pref.performance);
    if (s < best_score) {
      best_score = s;
      sel = &p;
    }
  }
  return *sel;
}

void SearchResult::append(SearchResult&& other) {
  explored.insert(explored.end(),
                  std::make_move_iterator(other.explored.begin()),
                  std::make_move_iterator(other.explored.end()));
  log.insert(log.end(), std::make_move_iterator(other.log.begin()),
             std::make_move_iterator(other.log.end()));
}

DesignPoint MsoSearcher::evaluate(const MacroConfig& cfg,
                                  const PerfSpec& spec,
                                  std::vector<std::string> applied,
                                  SearchResult& out) {
  const EvalOutcome ev = eval_.evaluate(cfg, spec);
  DesignPoint p;
  p.cfg = cfg;
  p.applied = std::move(applied);
  p.ppa = ev.ppa;
  p.feasible = ev.timing.all_ok();
  p.label = to_string(cfg.mux) + "/" + to_string(cfg.tree.style) + "-fa" +
            std::to_string(static_cast<int>(cfg.tree.fa_fraction * 100)) +
            (cfg.pipe.retime_tree_cpa ? "/tt2" : "") +
            (cfg.column_split > 1
                 ? "/split" + std::to_string(cfg.column_split)
                 : "") +
            (cfg.ofu.retime_stage1 ? "/tt4" : "") +
            (cfg.ofu.pipeline_regs > 0
                 ? "/tt5x" + std::to_string(cfg.ofu.pipeline_regs)
                 : "") +
            (!cfg.ofu.input_reg ? "/fused-ofu" : "") +
            (!cfg.pipe.reg_after_tree ? "/fused-tree" : "") +
            (cfg.bitcell != rtlgen::BitcellKind::k6T
                 ? "/" + to_string(cfg.bitcell)
                 : "");
  out.explored.push_back(p);
  return p;
}

bool MsoSearcher::fix_mac_path(MacroConfig& cfg, const PerfSpec& spec,
                               std::vector<std::string>& applied,
                               SearchResult& out) {
  // Every intermediate configuration is recorded: the paper's Fig. 8
  // scatter is exactly this cloud of partially-optimized designs.
  // tt1: walk the SCL's faster-adder ladder.
  while (!timing(cfg, spec).mac_ok) {
    const auto ladder = SubcircuitLibrary::faster_tree_ladder(cfg.tree);
    if (ladder.empty()) break;
    cfg.tree = ladder.front();
    applied.push_back("tt1:faster-adder(fa=" +
                      std::to_string(cfg.tree.fa_fraction) + ")");
    out.log.push_back("tt1 -> " + applied.back());
    (void)evaluate(cfg, spec, applied, out);
  }
  // tt2: retime the CPA into the S&A stage.
  if (!timing(cfg, spec).mac_ok && !cfg.pipe.retime_tree_cpa &&
      cfg.pipe.reg_after_tree && cfg.column_split == 1 &&
      cfg.tree.style != rtlgen::AdderTreeStyle::kRcaTree) {
    cfg.pipe.retime_tree_cpa = true;
    applied.push_back("tt2:retime-cpa");
    out.log.push_back("tt2 applied");
    (void)evaluate(cfg, spec, applied, out);
  }
  // tt3: split the column height.
  while (!timing(cfg, spec).mac_ok &&
         cfg.rows / (cfg.column_split * 2) >= 8) {
    if (cfg.pipe.retime_tree_cpa) {
      cfg.pipe.retime_tree_cpa = false;  // split supersedes the retiming
    }
    cfg.column_split *= 2;
    applied.push_back("tt3:column-split(" +
                      std::to_string(cfg.column_split) + ")");
    out.log.push_back("tt3 -> split " + std::to_string(cfg.column_split));
    (void)evaluate(cfg, spec, applied, out);
  }
  return timing(cfg, spec).mac_ok;
}

bool MsoSearcher::fix_ofu_path(MacroConfig& cfg, const PerfSpec& spec,
                               std::vector<std::string>& applied,
                               SearchResult& out) {
  // tt4: retime OFU stage 1 into the S&A clock stage.
  if (!timing(cfg, spec).ofu_ok && !cfg.ofu.retime_stage1 &&
      cfg.ofu.input_reg) {
    cfg.ofu.retime_stage1 = true;
    applied.push_back("tt4:retime-ofu-stage1");
    out.log.push_back("tt4 applied");
    (void)evaluate(cfg, spec, applied, out);
  }
  // tt5, repeated until the OFU path meets or is fully pipelined.
  const int max_regs =
      rtlgen::OfuModuleConfig{cfg.max_weight_bits(), cfg.sa_width(), cfg.ofu}
          .n_stages();
  while (!timing(cfg, spec).ofu_ok && cfg.ofu.pipeline_regs < max_regs) {
    ++cfg.ofu.pipeline_regs;
    applied.push_back("tt5:ofu-pipeline(" +
                      std::to_string(cfg.ofu.pipeline_regs) + ")");
    out.log.push_back("tt5 applied (" +
                      std::to_string(cfg.ofu.pipeline_regs) + ")");
    (void)evaluate(cfg, spec, applied, out);
  }
  return timing(cfg, spec).ofu_ok;
}

void MsoSearcher::latency_optimize(MacroConfig& cfg, const PerfSpec& spec,
                                   std::vector<std::string>& applied,
                                   SearchResult& out) {
  // Step 3: try removing registers, most aggressive fusion first.
  if (cfg.ofu.input_reg && !cfg.ofu.retime_stage1 &&
      cfg.ofu.pipeline_regs == 0 && cfg.pipe.reg_after_tree &&
      !cfg.pipe.retime_tree_cpa) {
    MacroConfig fused = cfg;
    fused.ofu.input_reg = false;
    fused.pipe.reg_after_tree = false;
    if (timing(fused, spec).all_ok()) {
      cfg = fused;
      applied.push_back("fuse:tree+sa+ofu");
      out.log.push_back("step3: fused adder, S&A and OFU");
      return;
    }
  }
  if (cfg.ofu.input_reg && !cfg.ofu.retime_stage1 &&
      cfg.ofu.pipeline_regs == 0) {
    MacroConfig fused = cfg;
    fused.ofu.input_reg = false;
    if (timing(fused, spec).all_ok()) {
      cfg = fused;
      applied.push_back("fuse:sa+ofu");
      out.log.push_back("step3: fused S&A and OFU");
    }
  }
}

void MsoSearcher::fine_tune(const MacroConfig& cfg, const PerfSpec& spec,
                            const std::vector<std::string>& applied,
                            SearchResult& out) {
  // ft1: compressor-heavier CSA (power/area) while timing still closes.
  if (cfg.tree.style == rtlgen::AdderTreeStyle::kMixed &&
      cfg.tree.fa_fraction > 0.0) {
    MacroConfig v = cfg;
    v.tree.fa_fraction =
        std::max(0.0, cfg.tree.fa_fraction - 0.25);
    auto a = applied;
    a.push_back("ft1:compressor-heavier");
    (void)evaluate(v, spec, std::move(a), out);
  }
  // ft2: OAI22 fused mux-multiplier (area/wiring) where MCR allows.
  if (cfg.mux == rtlgen::MuxStyle::kTGateNor && cfg.mcr <= 2 &&
      spec.mux == std::nullopt) {
    MacroConfig v = cfg;
    v.mux = rtlgen::MuxStyle::kOai22Fused;
    auto a = applied;
    a.push_back("ft2:oai22-mux");
    (void)evaluate(v, spec, std::move(a), out);
  }
  // ft3: 1T pass-gate mux for minimum area (costs power and speed).
  if (cfg.mux != rtlgen::MuxStyle::kPassGate1T && spec.mux == std::nullopt) {
    MacroConfig v = cfg;
    v.mux = rtlgen::MuxStyle::kPassGate1T;
    auto a = applied;
    a.push_back("ft3:pass-gate-mux");
    (void)evaluate(v, spec, std::move(a), out);
  }
  // Bitcell variant (paper Sec. II-B): the 8T D-latch cell buys write
  // robustness for area — offered as an alternative unless the spec
  // pinned the bitcell.
  if (cfg.bitcell == rtlgen::BitcellKind::k6T &&
      spec.bitcell == std::nullopt) {
    MacroConfig v = cfg;
    v.bitcell = rtlgen::BitcellKind::k8T;
    auto a = applied;
    a.push_back("ft:robust-8T-bitcell");
    (void)evaluate(v, spec, std::move(a), out);
  }
}

std::vector<TrajectorySeed> MsoSearcher::trajectory_seeds(
    const PerfSpec& spec) {
  const MacroConfig base = spec.base_config();
  base.validate();

  std::vector<TrajectorySeed> seeds;

  // One conventional-RCA trajectory (unless the spec pinned the style):
  // demonstrates tt1's family switch out of the template baseline. It
  // skips the step-3 fusion pass, matching the original search flow.
  if (!spec.tree_style) {
    TrajectorySeed s;
    s.cfg = base;
    s.cfg.tree.style = rtlgen::AdderTreeStyle::kRcaTree;
    s.cfg.tree.carry_reorder = false;
    s.name = "seed:rca-tree";
    s.latency_opt = false;
    seeds.push_back(std::move(s));
  }

  // The SPEC-fixed choices, otherwise a spread of mux styles and adder
  // mixes so the result is a frontier, not a point.
  std::vector<rtlgen::MuxStyle> muxes;
  if (spec.mux) {
    muxes = {*spec.mux};
  } else {
    muxes = {rtlgen::MuxStyle::kTGateNor, rtlgen::MuxStyle::kPassGate1T};
    if (spec.mcr <= 2) muxes.push_back(rtlgen::MuxStyle::kOai22Fused);
  }
  std::vector<double> fa_seeds = {0.0, 0.5, 1.0};
  if (spec.tree_style == rtlgen::AdderTreeStyle::kRcaTree) {
    fa_seeds = {0.0};
  }
  for (const rtlgen::MuxStyle mux : muxes) {
    for (const double fa : fa_seeds) {
      TrajectorySeed s;
      s.cfg = base;
      s.cfg.mux = mux;
      if (s.cfg.tree.style == rtlgen::AdderTreeStyle::kMixed) {
        s.cfg.tree.fa_fraction = fa;
      }
      s.name = "seed:" + to_string(mux) + "/fa" +
               std::to_string(static_cast<int>(fa * 100));
      seeds.push_back(std::move(s));
    }
  }
  return seeds;
}

SearchResult MsoSearcher::run_trajectory(const TrajectorySeed& seed,
                                         const PerfSpec& spec) {
  SearchResult out;
  MacroConfig cfg = seed.cfg;
  std::vector<std::string> applied = {seed.name};
  out.log.push_back("trajectory " + seed.name);
  (void)evaluate(cfg, spec, applied, out);  // the unoptimized seed

  const bool mac_ok = fix_mac_path(cfg, spec, applied, out);
  const bool ofu_ok = fix_ofu_path(cfg, spec, applied, out);
  // Record the step-2 result even if infeasible (the evaluation log
  // shows the constrained design space, paper Sec. IV-A).
  (void)evaluate(cfg, spec, applied, out);
  if (!mac_ok || !ofu_ok) return out;

  if (seed.latency_opt) {
    MacroConfig fused = cfg;
    auto fused_applied = applied;
    latency_optimize(fused, spec, fused_applied, out);
    if (fused_applied.size() != applied.size()) {
      (void)evaluate(fused, spec, fused_applied, out);
    }
  }
  fine_tune(cfg, spec, applied, out);
  return out;
}

SearchResult MsoSearcher::search(const PerfSpec& spec) {
  SearchResult out;
  for (const TrajectorySeed& seed : trajectory_seeds(spec)) {
    out.append(run_trajectory(seed, spec));
  }
  out.pareto = pareto_front(out.explored);
  return out;
}

}  // namespace syndcim::core

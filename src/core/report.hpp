#pragma once
#include <iosfwd>
#include <string>
#include <vector>

namespace syndcim::core {

/// Minimal fixed-width text table used by the benchmark harnesses to print
/// the rows/series of the paper's tables and figures.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  /// Number formatting helpers.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string yesno(bool v);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace syndcim::core

#pragma once
#include <string>
#include <vector>

#include "core/design_point.hpp"
#include "core/scl.hpp"
#include "core/spec.hpp"

namespace syndcim::core {

struct SearchResult {
  std::vector<DesignPoint> explored;  ///< every evaluated configuration
  std::vector<DesignPoint> pareto;    ///< feasible non-dominated set
  std::vector<std::string> log;       ///< technique application trace
  [[nodiscard]] bool feasible() const { return !pareto.empty(); }
  /// Pareto point ranked best under the spec's PPA preference.
  [[nodiscard]] const DesignPoint& best(const PpaPreference& pref) const;
};

/// Multi-Spec-Oriented searcher (paper Algorithm 1, "Heuristic
/// Hierarchical Search"). For each seed subcircuit selection it runs:
///
///   Step 1: subcircuit configuration from the SPEC (defaults otherwise)
///   Step 2: critical-path optimization —
///           adder path: tt1 faster adders from the SCL ladder,
///                       tt2 retime the tree CPA into the S&A,
///                       tt3 split the column height in half;
///           OFU path:   tt4 retime OFU stage 1 into the S&A,
///                       tt5 add an OFU pipeline stage
///   Step 3: latency optimization — fuse S&A+OFU, then tree+S&A+OFU, by
///           removing the pipeline registers where timing still closes
///   Step 4: PPA fine-tuning — preference-oriented subcircuit
///           substitutions (ft1 compressor-heavier CSA for power,
///           ft2 OAI22 fused mux for area at MCR<=2, ft3 1T pass-gate mux
///           for minimum area)
///
/// All evaluated points are kept; the result's `pareto` set is the
/// feasible power/area frontier the user (or the preference weights)
/// selects from.
class MsoSearcher {
 public:
  explicit MsoSearcher(SubcircuitLibrary& scl) : scl_(scl) {}

  [[nodiscard]] SearchResult search(const PerfSpec& spec);

 private:
  DesignPoint evaluate(const rtlgen::MacroConfig& cfg, const PerfSpec& spec,
                       std::vector<std::string> applied, SearchResult& out);
  /// Step 2 for one trajectory; returns false if the path cannot be fixed.
  bool fix_mac_path(rtlgen::MacroConfig& cfg, const PerfSpec& spec,
                    std::vector<std::string>& applied, SearchResult& out);
  bool fix_ofu_path(rtlgen::MacroConfig& cfg, const PerfSpec& spec,
                    std::vector<std::string>& applied, SearchResult& out);
  void latency_optimize(rtlgen::MacroConfig& cfg, const PerfSpec& spec,
                        std::vector<std::string>& applied,
                        SearchResult& out);
  void fine_tune(const rtlgen::MacroConfig& cfg, const PerfSpec& spec,
                 const std::vector<std::string>& applied, SearchResult& out);

  SubcircuitLibrary& scl_;
};

}  // namespace syndcim::core

#pragma once
#include <memory>
#include <string>
#include <vector>

#include "core/design_point.hpp"
#include "core/eval_backend.hpp"
#include "core/scl.hpp"
#include "core/spec.hpp"

namespace syndcim::core {

struct SearchResult {
  std::vector<DesignPoint> explored;  ///< every evaluated configuration
  std::vector<DesignPoint> pareto;    ///< feasible non-dominated set
  std::vector<std::string> log;       ///< technique application trace
  [[nodiscard]] bool feasible() const { return !pareto.empty(); }
  /// Pareto point ranked best under the spec's PPA preference.
  [[nodiscard]] const DesignPoint& best(const PpaPreference& pref) const;
  /// Concatenate another fragment's explored/log (pareto is recomputed by
  /// the caller once all fragments are merged).
  void append(SearchResult&& other);
};

/// One independent search trajectory of Algorithm 1: the seed subcircuit
/// selection plus its provenance label. Trajectories never communicate,
/// so the DSE layer (src/dse) runs them as parallel tasks; concatenating
/// the per-trajectory fragments in seed order reproduces the sequential
/// `search` byte for byte.
struct TrajectorySeed {
  rtlgen::MacroConfig cfg;
  std::string name;          ///< "seed:..." label heading the trail
  bool latency_opt = true;   ///< run the step-3 register-fusion pass
};

/// Multi-Spec-Oriented searcher (paper Algorithm 1, "Heuristic
/// Hierarchical Search"). For each seed subcircuit selection it runs:
///
///   Step 1: subcircuit configuration from the SPEC (defaults otherwise)
///   Step 2: critical-path optimization —
///           adder path: tt1 faster adders from the SCL ladder,
///                       tt2 retime the tree CPA into the S&A,
///                       tt3 split the column height in half;
///           OFU path:   tt4 retime OFU stage 1 into the S&A,
///                       tt5 add an OFU pipeline stage
///   Step 3: latency optimization — fuse S&A+OFU, then tree+S&A+OFU, by
///           removing the pipeline registers where timing still closes
///   Step 4: PPA fine-tuning — preference-oriented subcircuit
///           substitutions (ft1 compressor-heavier CSA for power,
///           ft2 OAI22 fused mux for area at MCR<=2, ft3 1T pass-gate mux
///           for minimum area)
///
/// All evaluated points are kept; the result's `pareto` set is the
/// feasible power/area frontier the user (or the preference weights)
/// selects from.
///
/// Evaluation goes through an injectable `EvalBackend`, so the DSE layer
/// can interpose a memoized cache (or any other evaluation service)
/// without the search logic noticing.
class MsoSearcher {
 public:
  /// Classic construction: evaluate directly against the SCL.
  explicit MsoSearcher(SubcircuitLibrary& scl)
      : owned_(std::make_unique<SclEvalBackend>(scl)), eval_(*owned_) {}
  /// Hooked construction: evaluate through `backend` (not owned). The
  /// searcher itself is stateless across calls, so one instance may be
  /// shared by concurrent threads iff the backend is thread-safe.
  explicit MsoSearcher(EvalBackend& backend) : eval_(backend) {}

  [[nodiscard]] SearchResult search(const PerfSpec& spec);

  /// The independent trajectory seeds `search` would run for `spec`,
  /// in order.
  [[nodiscard]] static std::vector<TrajectorySeed> trajectory_seeds(
      const PerfSpec& spec);
  /// Run one trajectory to completion (steps 2-4) and return its
  /// fragment of the search result.
  [[nodiscard]] SearchResult run_trajectory(const TrajectorySeed& seed,
                                            const PerfSpec& spec);

 private:
  DesignPoint evaluate(const rtlgen::MacroConfig& cfg, const PerfSpec& spec,
                       std::vector<std::string> applied, SearchResult& out);
  [[nodiscard]] SubcircuitLibrary::PathStatus timing(
      const rtlgen::MacroConfig& cfg, const PerfSpec& spec) {
    return eval_.evaluate(cfg, spec).timing;
  }
  /// Step 2 for one trajectory; returns false if the path cannot be fixed.
  bool fix_mac_path(rtlgen::MacroConfig& cfg, const PerfSpec& spec,
                    std::vector<std::string>& applied, SearchResult& out);
  bool fix_ofu_path(rtlgen::MacroConfig& cfg, const PerfSpec& spec,
                    std::vector<std::string>& applied, SearchResult& out);
  void latency_optimize(rtlgen::MacroConfig& cfg, const PerfSpec& spec,
                        std::vector<std::string>& applied,
                        SearchResult& out);
  void fine_tune(const rtlgen::MacroConfig& cfg, const PerfSpec& spec,
                 const std::vector<std::string>& applied, SearchResult& out);

  std::unique_ptr<EvalBackend> owned_;  ///< only for the SCL convenience ctor
  EvalBackend& eval_;
};

}  // namespace syndcim::core

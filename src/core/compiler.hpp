#pragma once
#include <memory>
#include <string>

#include <vector>

#include "cell/library.hpp"
#include "core/diag.hpp"
#include "core/searcher.hpp"
#include "core/stage.hpp"
#include "layout/floorplan.hpp"
#include "lint/lint.hpp"
#include "obs/obs.hpp"
#include "power/power.hpp"
#include "rtlgen/macro.hpp"
#include "sta/sta.hpp"

namespace syndcim::core {

/// Workload statistics used for the post-layout power measurement
/// (Table II is measured at 12.5% input density / 50% weight density).
struct Workload {
  int n_macs = 8;
  double input_density = 0.5;   ///< P(input bit == 1)
  double weight_density = 0.5;  ///< P(weight bit == 1)
  int input_bits = 4;
  int weight_bits = 4;
  unsigned seed = 1;
  /// Bit-parallel simulation lanes in [1, 64]: each simulated cycle
  /// carries `lanes` independent MAC workloads through the gate-level
  /// netlist, with lane stimulus drawn from per-lane RNG streams derived
  /// deterministically from `seed`. 1 (the default) is the
  /// scalar-identical control arm — the exact pre-lane drive schedule.
  int lanes = 1;
};

/// Post-layout signoff results of one implemented design (the paper's
/// "synthesis + APR + DRC/LVS + post-layout simulation" stage).
struct Implementation {
  rtlgen::MacroDesign macro;
  layout::Floorplan floorplan;
  lint::LintSummary lint;        ///< netlist static checks (pre-signoff)
  DiagEngine diagnostics;        ///< lint/STA/floorplan findings
  layout::DrcReport drc;
  layout::LvsReport lvs;
  sta::TimingReport timing;      ///< with back-annotated wire parasitics
  power::PowerReport power;      ///< simulation-based activity
  power::AreaReport cell_area;
  /// Wall time + peak RSS of every pipeline stage this implementation
  /// went through (rtlgen → map → lint → floorplan → route → sta →
  /// power), always recorded; trace spans mirror it when obs is enabled.
  /// Skipped stages appear too — a stage whose artifact was cached is
  /// still a phase the compile went through, just a near-instant one.
  obs::PhaseTimeline timeline;
  /// Per-stage run/skip trace: which stages executed and which spliced a
  /// cached artifact, with the content key each ran under.
  std::vector<StageRecord> stages;
  double fmax_mhz = 0.0;
  double macro_area_mm2 = 0.0;
  double total_power_uw = 0.0;
  double tops_1b = 0.0;          ///< at the achieved fmax
  [[nodiscard]] double tops_per_w() const {
    return total_power_uw > 0 ? tops_1b / (total_power_uw * 1e-6) : 0.0;
  }
  [[nodiscard]] double tops_per_mm2() const {
    return macro_area_mm2 > 0 ? tops_1b / macro_area_mm2 : 0.0;
  }
  [[nodiscard]] bool signoff_clean() const {
    return lint.clean() && drc.clean() && lvs.clean() && timing.met();
  }
};

struct CompileResult {
  SearchResult search;
  DesignPoint selected;
  Implementation impl;
};

/// End-to-end SynDCIM compiler: specification -> MSO search -> selected
/// Pareto design -> full macro elaboration -> SDP placement ->
/// DRC/LVS -> post-layout STA and simulation-based power (paper Fig. 2
/// and Fig. 6).
class SynDcimCompiler {
 public:
  explicit SynDcimCompiler(const cell::Library& lib)
      : lib_(lib), scl_(lib), searcher_(scl_) {}
  /// Shares `store` — the serve daemon points every request-scoped
  /// compiler at one process-wide store, so tenant B's compile warm-hits
  /// the subcircuit artifacts tenant A's requests produced.
  SynDcimCompiler(const cell::Library& lib,
                  std::shared_ptr<ArtifactStore> store)
      : lib_(lib), scl_(lib, std::move(store)), searcher_(scl_) {}

  /// Full flow at the spec's PPA preference. `cancel` (optional) is
  /// polled cooperatively — between search and each implementation
  /// attempt, and at every stage boundary inside implement() — and
  /// unwinds the flow with CancelledError when tripped; partial state is
  /// discarded, the compiler object stays reusable.
  [[nodiscard]] CompileResult compile(const PerfSpec& spec,
                                      const Workload& workload = {},
                                      const CancelToken* cancel = nullptr);

  /// Search only (no implementation) — what the paper's DSE loop calls.
  [[nodiscard]] SearchResult search(const PerfSpec& spec) {
    return searcher_.search(spec);
  }

  /// Implements one concrete configuration (used for every point a user
  /// picks off the Pareto front, and by the baseline compiler models).
  ///
  /// The flattened netlist is linted before placement; error-severity
  /// findings (multiply-driven nets, floating nets, combinational loops,
  /// ...) abort the flow with std::runtime_error — running STA/power on a
  /// structurally broken netlist would produce confident garbage. The
  /// full diagnostic list (including warnings from the floorplanner and
  /// STA constraint checks) is kept in Implementation::diagnostics.
  [[nodiscard]] Implementation implement(const rtlgen::MacroConfig& cfg,
                                         const PerfSpec& spec,
                                         const Workload& workload = {},
                                         const CancelToken* cancel = nullptr);

  [[nodiscard]] SubcircuitLibrary& scl() { return scl_; }

 private:
  const cell::Library& lib_;
  SubcircuitLibrary scl_;
  MsoSearcher searcher_;
};

}  // namespace syndcim::core

#include "core/diskstore.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "core/artifact_cache.hpp"
#include "core/binio.hpp"

namespace syndcim::core {
namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'S', 'Y', 'A', '1'};
constexpr std::uint32_t kFormatVersion = 1;

/// Digest naming the object file for (tier, key). Keys carry '|' and
/// arbitrary hex, so they never appear in paths directly.
std::string object_digest(const std::string& tier, const std::string& key) {
  ArtifactHasher h;
  h.str(tier);
  h.str(key);
  return h.hex();
}

std::string read_file(const std::string& path, bool& found) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    found = false;
    return {};
  }
  found = true;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

}  // namespace

DiskBlobStore::DiskBlobStore(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(fs::path(root_) / "objects", ec);
  if (!ec) fs::create_directories(fs::path(root_) / "tmp", ec);
  usable_ = !ec;
  if (!usable_) {
    note(Severity::kWarning, "CACHE-OPENFAIL",
         "cannot create artifact store directories: " + ec.message(), root_);
    return;
  }
  // Sweep tmp files left by a crashed writer. Live writers in *other*
  // processes embed their pid in the name and publish via rename before
  // anyone could observe the object, so an unlinked-from-under-them tmp
  // file only costs that writer one put.
  for (const auto& entry : fs::directory_iterator(fs::path(root_) / "tmp", ec)) {
    fs::remove(entry.path(), ec);
  }
}

bool DiskBlobStore::usable() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return usable_;
}

std::string DiskBlobStore::object_path(const std::string& tier,
                                       const std::string& key) const {
  const std::string digest = object_digest(tier, key);
  return (fs::path(root_) / "objects" / tier / digest.substr(0, 2) / digest)
      .string();
}

std::optional<std::string> DiskBlobStore::get(const std::string& tier,
                                              const std::string& key) {
  const std::string path = object_path(tier, key);
  bool found = false;
  const std::string raw = read_file(path, found);
  if (!found) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.read_misses;
    return std::nullopt;
  }
  try {
    BinReader r(raw);
    char magic[4];
    for (char& c : magic) c = static_cast<char>(r.u8());
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      note(Severity::kWarning, "CACHE-CORRUPT",
           "bad magic in artifact object, skipping", path);
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.corrupt;
      return std::nullopt;
    }
    if (const std::uint32_t ver = r.u32(); ver != kFormatVersion) {
      // A foreign (newer) format is not corruption — just unusable here.
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.read_misses;
      return std::nullopt;
    }
    const std::string obj_tier = r.str();
    const std::string obj_key = r.str();
    if (obj_tier != tier || obj_key != key) {
      // Digest collision or a misfiled object: treat as a miss, the
      // caller recomputes and may overwrite the slot.
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.read_misses;
      return std::nullopt;
    }
    const std::uint64_t payload_len = r.u64();
    const std::uint64_t checksum = r.u64();
    if (payload_len != r.remaining()) {
      note(Severity::kWarning, "CACHE-TRUNC",
           "artifact object shorter than its header claims, skipping", path);
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.truncated;
      return std::nullopt;
    }
    std::string payload(raw.substr(raw.size() - payload_len));
    if (artifact_fnv1a64(payload.data(), payload.size()) != checksum) {
      note(Severity::kWarning, "CACHE-CORRUPT",
           "artifact payload checksum mismatch, skipping", path);
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.corrupt;
      return std::nullopt;
    }
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.objects_read;
    stats_.bytes_read += payload.size();
    return payload;
  } catch (const BinDecodeError&) {
    note(Severity::kWarning, "CACHE-TRUNC",
         "truncated artifact object header, skipping", path);
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.truncated;
    return std::nullopt;
  }
}

bool DiskBlobStore::put(const std::string& tier, const std::string& key,
                        std::string_view payload) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!usable_) {
      ++stats_.write_fails;
      return false;
    }
  }
  const std::string path = object_path(tier, key);
  std::error_code ec;
  if (fs::exists(path, ec)) {
    // Content-addressed: an existing object holds these exact bytes
    // (racing writers encode the same value), so the put is a no-op hit.
    return true;
  }
  if (write_object(tier, key, path, payload)) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.objects_written;
    stats_.bytes_written += payload.size();
    return true;
  }
  note(Severity::kWarning, "CACHE-WRITEFAIL",
       "failed to persist artifact object", path);
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.write_fails;
  return false;
}

bool DiskBlobStore::write_object(const std::string& tier,
                                 const std::string& key,
                                 const std::string& path,
                                 std::string_view payload) {
  BinWriter w;
  w.bytes(kMagic, sizeof(kMagic));
  w.u32(kFormatVersion);
  w.str(tier);
  w.str(key);
  w.u64(payload.size());
  w.u64(artifact_fnv1a64(payload.data(), payload.size()));
  w.bytes(payload.data(), payload.size());

  std::uint64_t seq = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    seq = ++tmp_seq_;
  }
  const fs::path tmp =
      fs::path(root_) / "tmp" /
      (std::to_string(static_cast<long long>(::getpid())) + "-" +
       std::to_string(seq));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(w.data().data(),
              static_cast<std::streamsize>(w.data().size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  // rename() is atomic within a filesystem: concurrent readers and other
  // sweep shards see either no object or the complete object.
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ec2;
    fs::remove(tmp, ec2);
    // Another process may have published the same object first; that is
    // a success (identical bytes by content-addressing).
    return fs::exists(path, ec2);
  }
  return true;
}

DiskStoreStats DiskBlobStore::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string DiskBlobStore::stats_json() const {
  const DiskStoreStats s = stats();
  std::string j = "{";
  j += "\"root\": \"" + json_escape_string(root_) + "\"";
  j += ", \"usable\": ";
  j += usable() ? "true" : "false";
  j += ", \"objects_read\": " + std::to_string(s.objects_read);
  j += ", \"objects_written\": " + std::to_string(s.objects_written);
  j += ", \"bytes_read\": " + std::to_string(s.bytes_read);
  j += ", \"bytes_written\": " + std::to_string(s.bytes_written);
  j += ", \"read_misses\": " + std::to_string(s.read_misses);
  j += ", \"corrupt\": " + std::to_string(s.corrupt);
  j += ", \"truncated\": " + std::to_string(s.truncated);
  j += ", \"write_fails\": " + std::to_string(s.write_fails);
  j += "}";
  return j;
}

void DiskBlobStore::note(Severity sev, std::string rule, std::string message,
                         std::string object) {
  Diagnostic d;
  d.severity = sev;
  d.rule = std::move(rule);
  d.message = std::move(message);
  d.object = std::move(object);
  d.source = root_;
  const std::lock_guard<std::mutex> lock(mu_);
  diags_.push_back(std::move(d));
}

void DiskBlobStore::drain_diags(DiagEngine& diag) {
  std::vector<Diagnostic> pending;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    pending.swap(diags_);
  }
  for (auto& d : pending) diag.report(std::move(d));
}

std::size_t DiskBlobStore::pending_diags() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return diags_.size();
}

DiskBlobStore::DiskUsage DiskBlobStore::disk_usage() const {
  DiskUsage u;
  std::error_code ec;
  const fs::path objects = fs::path(root_) / "objects";
  for (auto it = fs::recursive_directory_iterator(objects, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    ++u.objects;
    u.file_bytes += it->file_size(ec);
  }
  return u;
}

}  // namespace syndcim::core

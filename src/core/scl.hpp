#pragma once
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "core/design_point.hpp"
#include "core/spec.hpp"
#include "core/stage.hpp"
#include "rtlgen/arch.hpp"

namespace syndcim::core {

/// Characterized PPA of one macro configuration, obtained by elaborating a
/// single-OFU-group *slice* of the macro (all columns are identical, so
/// the slice's stage timing and per-group power/area compose exactly into
/// the full macro). Cached per configuration — this is the paper's
/// "subcircuit library with PPA lookup tables": the searcher consults
/// these entries instead of re-elaborating full macros.
struct SliceEval {
  int slice_cols = 0;
  // Nominal-voltage timing (scale by TechNode::delay_scale for other VDD).
  double min_period_ps = 0.0;        ///< MAC-domain limit incl. OFU/outputs
  double min_write_period_ps = 0.0;  ///< weight-update limit
  /// Minimum feasible period of the MAC array pipeline stages (column
  /// tree/S&A plus drivers/alignment), excluding the OFU/output stage —
  /// the "adder path" of Algorithm 1.
  double mac_path_period_ps = 0.0;
  /// Minimum feasible period of the OFU/output stage ("OFU path").
  double ofu_path_period_ps = 0.0;

  // Per-group nominal dynamic energy (fJ per cycle, 50% data activity),
  // leakage (nW) and cell area (um^2), keyed by depth-1 group name.
  struct GroupCost {
    std::string group;
    double dynamic_fj = 0.0;
    double leakage_nw = 0.0;
    double area_um2 = 0.0;
  };
  std::vector<GroupCost> groups;
  std::size_t gate_count = 0;
};

/// The SynDCIM Subcircuit Library (SCL).
///
/// Characterization runs as a staged pipeline (gen+stitch -> floorplan ->
/// route -> sta -> activity -> power) over a content-addressed
/// ArtifactStore; each stage skips when its input key is already present.
/// Because the slice content key normalizes the column count, every
/// configuration differing only in `cols` shares one characterization,
/// and a one-knob delta re-runs only the stages its knob reaches.
///
/// The store can be shared across SubcircuitLibrary instances (and with
/// the compiler / DSE worker threads): the tiers are thread-safe, while
/// `slice()` itself is not — callers serialize it (SclEvalBackend does).
class SubcircuitLibrary {
 public:
  /// Owns a private artifact store.
  explicit SubcircuitLibrary(const cell::Library& lib)
      : SubcircuitLibrary(lib, std::make_shared<ArtifactStore>()) {}
  /// Shares `store` — the sweep points every worker at one store so
  /// subcircuit artifacts are reused across specs and threads.
  SubcircuitLibrary(const cell::Library& lib,
                    std::shared_ptr<ArtifactStore> store);

  /// Cached slice characterization of `cfg`.
  const SliceEval& slice(const rtlgen::MacroConfig& cfg);

  /// Full-macro search-time PPA estimate under `spec`'s frequency/voltage.
  [[nodiscard]] PpaEstimate evaluate(const rtlgen::MacroConfig& cfg,
                                     const PerfSpec& spec);

  /// Timing classification at the spec voltage for Algorithm 1: does the
  /// MAC ("adder") path meet, does the OFU path meet, does the write path
  /// meet?
  struct PathStatus {
    double mac_period_ps = 0.0;
    double ofu_period_ps = 0.0;
    double write_period_ps = 0.0;
    bool mac_ok = false;
    bool ofu_ok = false;
    bool write_ok = false;
    [[nodiscard]] bool all_ok() const { return mac_ok && ofu_ok && write_ok; }
  };
  [[nodiscard]] PathStatus timing_status(const rtlgen::MacroConfig& cfg,
                                         const PerfSpec& spec);

  /// tt1's "faster adders available in the SCL": the next-faster adder
  /// tree variant after `cur`, if any (more full adders, then reorder).
  [[nodiscard]] static std::vector<rtlgen::AdderTreeConfig>
  faster_tree_ladder(const rtlgen::AdderTreeConfig& cur);

  [[nodiscard]] const cell::Library& cells() const { return lib_; }
  [[nodiscard]] std::size_t cache_entries() const { return cache_.size(); }

  /// The subcircuit-artifact store this library characterizes through.
  [[nodiscard]] ArtifactStore& artifacts() { return *store_; }
  [[nodiscard]] const std::shared_ptr<ArtifactStore>& artifact_store()
      const {
    return store_;
  }
  /// Stage run/skip records of the most recent slice() characterization
  /// that missed the SliceEval memo (empty before the first miss).
  [[nodiscard]] const std::vector<StageRecord>& last_slice_stages() const {
    return last_stages_;
  }

 private:
  const cell::Library& lib_;
  std::shared_ptr<ArtifactStore> store_;
  std::map<std::string, SliceEval> cache_;  ///< keyed by slice content key
  std::vector<StageRecord> last_stages_;
};

}  // namespace syndcim::core

#pragma once
#include <map>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "core/design_point.hpp"
#include "core/spec.hpp"
#include "rtlgen/arch.hpp"

namespace syndcim::core {

/// Characterized PPA of one macro configuration, obtained by elaborating a
/// single-OFU-group *slice* of the macro (all columns are identical, so
/// the slice's stage timing and per-group power/area compose exactly into
/// the full macro). Cached per configuration — this is the paper's
/// "subcircuit library with PPA lookup tables": the searcher consults
/// these entries instead of re-elaborating full macros.
struct SliceEval {
  int slice_cols = 0;
  // Nominal-voltage timing (scale by TechNode::delay_scale for other VDD).
  double min_period_ps = 0.0;        ///< MAC-domain limit incl. OFU/outputs
  double min_write_period_ps = 0.0;  ///< weight-update limit
  /// Minimum feasible period of the MAC array pipeline stages (column
  /// tree/S&A plus drivers/alignment), excluding the OFU/output stage —
  /// the "adder path" of Algorithm 1.
  double mac_path_period_ps = 0.0;
  /// Minimum feasible period of the OFU/output stage ("OFU path").
  double ofu_path_period_ps = 0.0;

  // Per-group nominal dynamic energy (fJ per cycle, 50% data activity),
  // leakage (nW) and cell area (um^2), keyed by depth-1 group name.
  struct GroupCost {
    std::string group;
    double dynamic_fj = 0.0;
    double leakage_nw = 0.0;
    double area_um2 = 0.0;
  };
  std::vector<GroupCost> groups;
  std::size_t gate_count = 0;
};

/// The SynDCIM Subcircuit Library (SCL).
class SubcircuitLibrary {
 public:
  explicit SubcircuitLibrary(const cell::Library& lib) : lib_(lib) {}

  /// Cached slice characterization of `cfg`.
  const SliceEval& slice(const rtlgen::MacroConfig& cfg);

  /// Full-macro search-time PPA estimate under `spec`'s frequency/voltage.
  [[nodiscard]] PpaEstimate evaluate(const rtlgen::MacroConfig& cfg,
                                     const PerfSpec& spec);

  /// Timing classification at the spec voltage for Algorithm 1: does the
  /// MAC ("adder") path meet, does the OFU path meet, does the write path
  /// meet?
  struct PathStatus {
    double mac_period_ps = 0.0;
    double ofu_period_ps = 0.0;
    double write_period_ps = 0.0;
    bool mac_ok = false;
    bool ofu_ok = false;
    bool write_ok = false;
    [[nodiscard]] bool all_ok() const { return mac_ok && ofu_ok && write_ok; }
  };
  [[nodiscard]] PathStatus timing_status(const rtlgen::MacroConfig& cfg,
                                         const PerfSpec& spec);

  /// tt1's "faster adders available in the SCL": the next-faster adder
  /// tree variant after `cur`, if any (more full adders, then reorder).
  [[nodiscard]] static std::vector<rtlgen::AdderTreeConfig>
  faster_tree_ladder(const rtlgen::AdderTreeConfig& cur);

  [[nodiscard]] const cell::Library& cells() const { return lib_; }
  [[nodiscard]] std::size_t cache_entries() const { return cache_.size(); }

 private:
  [[nodiscard]] static std::string cache_key(const rtlgen::MacroConfig& cfg);
  const cell::Library& lib_;
  std::map<std::string, SliceEval> cache_;
};

}  // namespace syndcim::core

#include "core/spec.hpp"

#include <cstdio>
#include <sstream>

#include "tech/units.hpp"

namespace syndcim::core {

namespace {
/// Exact, locale-independent double rendering (round-trips via strtod).
std::string hexd(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}
}  // namespace

std::string spec_knobs_key(const PerfSpec& s) {
  std::ostringstream os;
  os << "spec{f" << hexd(s.mac_freq_mhz) << ",w" << hexd(s.wupdate_freq_mhz)
     << ",v" << hexd(s.vdd) << ",tm" << hexd(s.timing_margin) << "}";
  return os.str();
}

rtlgen::MacroConfig PerfSpec::base_config() const {
  rtlgen::MacroConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.mcr = mcr;
  cfg.input_bits = input_bits;
  cfg.weight_bits = weight_bits;
  cfg.fp_formats = fp_formats;
  cfg.fp_guard_bits = fp_guard_bits;

  // Algorithm 1 step 1: SPEC-defined subcircuits, else defaults. Defaults
  // follow the paper: bit-wise CSA (compressor-leaning mixed design with
  // carry reorder), TG+NOR mux, 6T bitcell, fully registered pipeline.
  cfg.bitcell = bitcell.value_or(rtlgen::BitcellKind::k6T);
  cfg.mux = mux.value_or(rtlgen::MuxStyle::kTGateNor);
  cfg.tree.style = tree_style.value_or(rtlgen::AdderTreeStyle::kMixed);
  cfg.tree.fa_fraction = 0.0;
  cfg.tree.carry_reorder = true;
  cfg.pipe.reg_after_tree = true;
  cfg.ofu.input_reg = true;
  cfg.column_split = 1;
  return cfg;
}

double PerfSpec::period_ps() const {
  return units::period_ps_from_mhz(mac_freq_mhz);
}

double PerfSpec::write_period_ps() const {
  return units::period_ps_from_mhz(wupdate_freq_mhz);
}

}  // namespace syndcim::core

#include "core/spec.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "tech/units.hpp"

namespace syndcim::core {

namespace {
/// Exact, locale-independent double rendering (round-trips via strtod).
std::string hexd(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}
}  // namespace

std::string spec_knobs_key(const PerfSpec& s) {
  std::ostringstream os;
  os << "spec{f" << hexd(s.mac_freq_mhz) << ",w" << hexd(s.wupdate_freq_mhz)
     << ",v" << hexd(s.vdd) << ",tm" << hexd(s.timing_margin) << "}";
  return os.str();
}

rtlgen::MacroConfig PerfSpec::base_config() const {
  rtlgen::MacroConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.mcr = mcr;
  cfg.input_bits = input_bits;
  cfg.weight_bits = weight_bits;
  cfg.fp_formats = fp_formats;
  cfg.fp_guard_bits = fp_guard_bits;

  // Algorithm 1 step 1: SPEC-defined subcircuits, else defaults. Defaults
  // follow the paper: bit-wise CSA (compressor-leaning mixed design with
  // carry reorder), TG+NOR mux, 6T bitcell, fully registered pipeline.
  cfg.bitcell = bitcell.value_or(rtlgen::BitcellKind::k6T);
  cfg.mux = mux.value_or(rtlgen::MuxStyle::kTGateNor);
  cfg.tree.style = tree_style.value_or(rtlgen::AdderTreeStyle::kMixed);
  cfg.tree.fa_fraction = 0.0;
  cfg.tree.carry_reorder = true;
  cfg.pipe.reg_after_tree = true;
  cfg.ofu.input_reg = true;
  cfg.column_split = 1;
  return cfg;
}

double PerfSpec::period_ps() const {
  return units::period_ps_from_mhz(mac_freq_mhz);
}

double PerfSpec::write_period_ps() const {
  return units::period_ps_from_mhz(wupdate_freq_mhz);
}

std::string spec_full_key(const PerfSpec& s) {
  std::ostringstream os;
  os << spec_knobs_key(s) << "|arch{r" << s.rows << ",c" << s.cols << ",m"
     << s.mcr << ",ib";
  for (const int b : s.input_bits) os << "." << b;
  os << ",wb";
  for (const int b : s.weight_bits) os << "." << b;
  os << ",fp";
  for (const num::FpFormat& f : s.fp_formats) {
    os << "." << f.exp_bits << "e" << f.man_bits;
  }
  os << ",g" << s.fp_guard_bits << "}|pref{" << hexd(s.pref.power) << ","
     << hexd(s.pref.area) << "," << hexd(s.pref.performance) << "}|sc{";
  os << (s.bitcell ? static_cast<int>(*s.bitcell) : -1) << ","
     << (s.mux ? static_cast<int>(*s.mux) : -1) << ","
     << (s.tree_style ? static_cast<int>(*s.tree_style) : -1) << "}";
  return os.str();
}

PpaPreference named_pref(const std::string& name) {
  if (name == "balanced") return {1.0, 1.0, 0.0};
  if (name == "power") return {2.0, 0.5, 0.0};
  if (name == "area") return {0.5, 2.0, 0.0};
  if (name == "perf") return {1.0, 1.0, 1.0};
  throw std::invalid_argument("unknown preference preset: " + name +
                              " (want balanced|power|area|perf)");
}

PerfSpec spec_from_kv(const std::map<std::string, std::string>& kv) {
  PerfSpec spec;
  for (const auto& [k, v] : kv) {
    if (k == "rows") {
      spec.rows = std::stoi(v);
    } else if (k == "cols") {
      spec.cols = std::stoi(v);
    } else if (k == "mcr") {
      spec.mcr = std::stoi(v);
    } else if (k == "input_bits") {
      spec.input_bits = parse_int_list(v);
    } else if (k == "weight_bits") {
      spec.weight_bits = parse_int_list(v);
    } else if (k == "fp") {
      std::stringstream ss(v);
      std::string f;
      while (std::getline(ss, f, ',')) {
        if (f == "fp4") {
          spec.fp_formats.push_back(num::kFp4);
        } else if (f == "fp8") {
          spec.fp_formats.push_back(num::kFp8);
        } else if (f == "bf16") {
          spec.fp_formats.push_back(num::kBf16);
        } else if (f == "fp16") {
          spec.fp_formats.push_back(num::kFp16);
        } else {
          throw std::invalid_argument("unknown fp format: " + f);
        }
      }
    } else if (k == "mac_mhz") {
      spec.mac_freq_mhz = std::stod(v);
    } else if (k == "wupdate_mhz") {
      spec.wupdate_freq_mhz = std::stod(v);
    } else if (k == "vdd") {
      spec.vdd = std::stod(v);
    } else if (k == "pref_power") {
      spec.pref.power = std::stod(v);
    } else if (k == "pref_area") {
      spec.pref.area = std::stod(v);
    } else if (k == "pref_perf") {
      spec.pref.performance = std::stod(v);
    } else if (k == "bitcell") {
      spec.bitcell = v == "8T" ? rtlgen::BitcellKind::k8T
                     : v == "12T" ? rtlgen::BitcellKind::k12T
                                  : rtlgen::BitcellKind::k6T;
    } else if (k == "mux") {
      spec.mux = v == "pg"      ? rtlgen::MuxStyle::kPassGate1T
                 : v == "oai22" ? rtlgen::MuxStyle::kOai22Fused
                                : rtlgen::MuxStyle::kTGateNor;
    } else if (k == "temp_c") {
      // reserved for corner sweeps; compile uses the nominal corner
    } else {
      throw std::invalid_argument("unknown spec key: " + k);
    }
  }
  return spec;
}

}  // namespace syndcim::core

#pragma once
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/artifact_cache.hpp"
#include "core/cancel.hpp"
#include "core/diag.hpp"
#include "layout/floorplan.hpp"
#include "lint/lint.hpp"
#include "netlist/stitch.hpp"
#include "obs/obs.hpp"
#include "power/activity.hpp"
#include "power/power.hpp"
#include "rtlgen/macro.hpp"
#include "sta/sta.hpp"

namespace syndcim::core {

// ---------------------------------------------------------------------------
// Stage artifacts
// ---------------------------------------------------------------------------
// Every artifact is the complete observable output of its stage, including
// the diagnostics it emitted: replaying a cached artifact must be
// indistinguishable from re-running the stage, or the warm path would drop
// findings the cold path reports.

/// Pre-signoff netlist lint result (lint stage).
struct LintArtifact {
  lint::LintSummary summary;
  std::vector<Diagnostic> diags;
};

/// SDP placement result (floorplan stage).
struct PlacedArtifact {
  layout::Floorplan floorplan;
  std::vector<Diagnostic> diags;
};

/// Signoff checks plus extracted parasitics (route stage).
struct RouteArtifact {
  layout::DrcReport drc;
  layout::LvsReport lvs;
  sta::WireModel wire;
};

/// Timing analysis result (sta stage).
struct TimingArtifact {
  sta::TimingReport timing;
  std::vector<Diagnostic> diags;
};

/// Power + cell-area roll-up (power stage).
struct PowerArtifact {
  power::PowerReport power;
  power::AreaReport area;
};

/// Replays `diags` into `sink` (used when a cached artifact is spliced in
/// place of running its stage).
void replay_diags(const std::vector<Diagnostic>& diags, DiagEngine& sink);

// ---------------------------------------------------------------------------
// ArtifactStore
// ---------------------------------------------------------------------------

/// The subcircuit-artifact cache: one content-addressed tier per compile
/// stage output, shared across configurations, specs and sweep worker
/// threads. This is the fine-grained second cache tier under the DSE's
/// whole-config evaluation cache — a one-knob configuration delta misses
/// the whole-config tier but still reuses every subcircuit artifact the
/// delta did not touch.
///
/// Keys are 32-hex content digests (see ArtifactHasher) prefixed with a
/// stage/version tag. What a key covers is stage-specific:
///  - modules / blocks / flats: generator parameters only (netlist
///    structure is library-independent),
///  - activity: group structure + boundary probabilities + workload spec
///    + library fingerprint,
///  - lints / placed / routes / timings / powers / sim_activity: config
///    key + library fingerprint (+ spec timing knobs / workload where the
///    stage reads them).
///
/// Disabling the store (`set_enabled(false)`) turns every tier into a
/// silent bypass: the cold reference path runs the exact same code, which
/// is what makes cold-vs-warm byte-identity testable.
struct ArtifactStore {
  /// Installs the deep-payload-bytes accounting hooks on every tier
  /// (see artifact_codec.hpp), so byte caps bound real memory from the
  /// first insert.
  ArtifactStore();

  rtlgen::ModuleCache modules{"modules"};
  netlist::FlatBlockCache blocks{"blocks"};
  ArtifactCache<netlist::FlatNetlist> flats{"flats"};
  power::ActivityCache activity{"activity"};
  ArtifactCache<LintArtifact> lints{"lints"};
  ArtifactCache<PlacedArtifact> placed{"placed"};
  ArtifactCache<RouteArtifact> routes{"routes"};
  ArtifactCache<TimingArtifact> timings{"timings"};
  ArtifactCache<PowerArtifact> powers{"powers"};
  /// Whole activity models: search-time propagated (slice pipeline) and
  /// workload-simulated (implement pipeline), distinguished by key prefix.
  ArtifactCache<power::ActivityModel> act_models{"act_models"};

  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const { return flats.enabled(); }

  /// Bounds every tier to `max_entries` entries / `max_bytes` approximate
  /// bytes (0 = unlimited), LRU-evicting past either cap — what keeps a
  /// long-running daemon's resident artifact set finite. Totals are per
  /// tier, not across the store.
  void set_capacity(std::size_t max_entries, std::size_t max_bytes = 0);

  /// Attaches `l2` (e.g. a DiskBlobStore) as the durable layer under all
  /// ten tiers, wiring each tier's binary codec; nullptr detaches. With
  /// an L2 attached, lookups read through on L1 miss and inserts are
  /// written back by flush_l2() or on eviction. `l2` is not owned.
  void attach_blob_store(BlobStore* l2);

  /// Encodes every dirty entry of every tier into the attached L2 and
  /// returns how many objects were written (0 when no L2 is attached).
  /// Called by the daemon's drain and at the end of batch runs.
  std::size_t flush_l2();

  /// Per-tier snapshots, in declaration order.
  [[nodiscard]] std::vector<ArtifactTierStats> stats() const;
  [[nodiscard]] std::uint64_t total_hits() const;
  [[nodiscard]] std::uint64_t total_misses() const;
  [[nodiscard]] std::size_t total_entries() const;
  [[nodiscard]] std::uint64_t total_evicted() const;

  /// {"format": "syndcim-artifact-store", "tiers": [{"name", "hits",
  ///  "misses", "entries"}, ...]} — tier order is stable.
  [[nodiscard]] std::string stats_json() const;

  /// Publishes per-tier hit/miss/entry counts into the obs metrics
  /// registry as `<prefix>.<tier>.{hits,misses,entries}` (no-op when
  /// observability is disabled).
  void publish_metrics(const std::string& prefix = "artifact") const;
};

// ---------------------------------------------------------------------------
// StagePipeline
// ---------------------------------------------------------------------------

/// One executed (or skipped) stage of a pipeline run.
struct StageRecord {
  std::string stage;
  std::string key;       ///< artifact content key the stage ran under
  bool skipped = false;  ///< true: artifact cache hit, stage body not run
  double wall_ms = 0.0;
};

/// Deterministic stage runner: each stage declares its input key and its
/// artifact tier; when the tier already holds the key the stage body is
/// skipped and the cached artifact spliced in. Stages always land in the
/// attached phase timeline (skipped stages too — a skip is still a phase
/// the compile went through, just a near-instant one), and skips emit
/// `<pipeline>.<stage>.skip` trace spans plus `pipeline.stage.skips`
/// metrics when observability is on.
class StagePipeline {
 public:
  explicit StagePipeline(std::string name,
                         obs::PhaseTimeline* timeline = nullptr)
      : name_(std::move(name)), tl_(timeline) {}

  /// Attaches a cancellation token: `run` checks it at every stage
  /// boundary (before the cache lookup) and unwinds with CancelledError
  /// when it is tripped — the cooperative-cancellation granularity of the
  /// compile pipeline. nullptr detaches.
  void set_cancel(const CancelToken* token) { cancel_ = token; }

  /// Runs one cached stage: `compute` must be a pure function of the
  /// inputs summarized by `key`. Returns the (possibly cached) artifact.
  /// Pass `cache == nullptr` for an uncacheable stage (always runs).
  template <typename T, typename F>
  std::shared_ptr<const T> run(const std::string& stage,
                               ArtifactCache<T>* cache,
                               const std::string& key, F&& compute) {
    if (cancel_ != nullptr) cancel_->check(name_ + "." + stage);
    std::optional<obs::PhaseScope> phase;
    if (tl_ != nullptr) phase.emplace(*tl_, stage);
    const std::uint64_t t0 = obs::now_ns();
    if (cache != nullptr) {
      if (auto hit = cache->find(key)) {
        note(stage, key, true, t0);
        return hit;
      }
    }
    std::optional<obs::SpanGuard> span;
    if (tl_ == nullptr && obs::enabled()) span.emplace(name_ + "." + stage);
    std::shared_ptr<const T> out;
    if (cache != nullptr) {
      out = cache->put(key, std::forward<F>(compute)());
    } else {
      out = std::make_shared<const T>(std::forward<F>(compute)());
    }
    note(stage, key, false, t0);
    return out;
  }

  [[nodiscard]] const std::vector<StageRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t runs() const;
  [[nodiscard]] std::size_t skips() const;

 private:
  void note(const std::string& stage, const std::string& key, bool skipped,
            std::uint64_t t0);

  std::string name_;
  obs::PhaseTimeline* tl_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  std::vector<StageRecord> records_;
};

}  // namespace syndcim::core

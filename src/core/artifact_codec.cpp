#include "core/artifact_codec.hpp"

#include "core/binio.hpp"
#include "core/blob_store.hpp"
#include "layout/serialize.hpp"
#include "lint/serialize.hpp"
#include "netlist/serialize.hpp"
#include "power/serialize.hpp"
#include "sta/serialize.hpp"

namespace syndcim::core {

namespace {

constexpr std::uint8_t kDiagListVersion = 1;
constexpr std::uint8_t kLintArtVersion = 1;
constexpr std::uint8_t kPlacedArtVersion = 1;
constexpr std::uint8_t kRouteArtVersion = 1;
constexpr std::uint8_t kTimingArtVersion = 1;
constexpr std::uint8_t kPowerArtVersion = 1;

void encode_diags(BinWriter& w, const std::vector<Diagnostic>& diags) {
  w.u8(kDiagListVersion);
  w.u32(static_cast<std::uint32_t>(diags.size()));
  for (const Diagnostic& d : diags) {
    w.u8(static_cast<std::uint8_t>(d.severity));
    w.str(d.rule);
    w.str(d.message);
    w.str(d.object);
    w.str(d.source);
    w.i32(d.line);
  }
}

std::vector<Diagnostic> decode_diags(BinReader& r) {
  if (r.u8() != kDiagListVersion) {
    throw BinDecodeError("unsupported codec version for diagnostics");
  }
  const std::uint32_t n = r.len(21);
  std::vector<Diagnostic> diags;
  diags.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Diagnostic d;
    const std::uint8_t sev = r.u8();
    if (sev > static_cast<std::uint8_t>(Severity::kError)) {
      throw BinDecodeError("bad severity");
    }
    d.severity = static_cast<Severity>(sev);
    d.rule = r.str();
    d.message = r.str();
    d.object = r.str();
    d.source = r.str();
    d.line = r.i32();
    diags.push_back(std::move(d));
  }
  return diags;
}

std::size_t diags_bytes(const std::vector<Diagnostic>& diags) {
  std::size_t n = deep_vec_bytes(diags);
  for (const Diagnostic& d : diags) {
    n += deep_str_bytes(d.rule) + deep_str_bytes(d.message) +
         deep_str_bytes(d.object) + deep_str_bytes(d.source);
  }
  return n;
}

void check_version(BinReader& r, std::uint8_t expect, const char* what) {
  if (r.u8() != expect) {
    throw BinDecodeError(std::string("unsupported codec version for ") + what);
  }
}

/// Wraps a throwing decoder into the ArtifactCache DecodeFn contract
/// (nullptr on any malformed payload — the L2 entry is then treated as a
/// miss and the stage recomputes).
template <typename T, typename Fn>
auto decode_fn(Fn decode) {
  return [decode](std::string_view payload) -> std::shared_ptr<const T> {
    try {
      return std::make_shared<const T>(decode(payload));
    } catch (const BinDecodeError&) {
      return nullptr;
    }
  };
}

template <typename T, typename Enc, typename Dec>
void attach_tier(ArtifactCache<T>& tier, BlobStore* l2, Enc encode,
                 Dec decode) {
  if (l2 == nullptr) {
    tier.detach_l2();
    return;
  }
  tier.attach_l2(
      l2, [encode](const T& v) { return encode(v); }, decode_fn<T>(decode));
}

}  // namespace

// --- composite artifact codecs ---------------------------------------------
// Sub-payloads are embedded length-prefixed (str), so each layer's codec
// owns its own framing and versioning.

std::string encode_lint_artifact(const LintArtifact& a) {
  BinWriter w;
  w.u8(kLintArtVersion);
  w.str(lint::encode_lint_summary(a.summary));
  encode_diags(w, a.diags);
  return w.take();
}

LintArtifact decode_lint_artifact(std::string_view payload) {
  BinReader r(payload);
  check_version(r, kLintArtVersion, "lint artifact");
  LintArtifact a;
  a.summary = lint::decode_lint_summary(r.str());
  a.diags = decode_diags(r);
  r.expect_end();
  return a;
}

std::string encode_placed_artifact(const PlacedArtifact& a) {
  BinWriter w;
  w.u8(kPlacedArtVersion);
  w.str(layout::encode_floorplan(a.floorplan));
  encode_diags(w, a.diags);
  return w.take();
}

PlacedArtifact decode_placed_artifact(std::string_view payload) {
  BinReader r(payload);
  check_version(r, kPlacedArtVersion, "placed artifact");
  PlacedArtifact a;
  a.floorplan = layout::decode_floorplan(r.str());
  a.diags = decode_diags(r);
  r.expect_end();
  return a;
}

std::string encode_route_artifact(const RouteArtifact& a) {
  BinWriter w;
  w.u8(kRouteArtVersion);
  w.str(layout::encode_drc_report(a.drc));
  w.str(layout::encode_lvs_report(a.lvs));
  w.str(sta::encode_wire_model(a.wire));
  return w.take();
}

RouteArtifact decode_route_artifact(std::string_view payload) {
  BinReader r(payload);
  check_version(r, kRouteArtVersion, "route artifact");
  RouteArtifact a;
  a.drc = layout::decode_drc_report(r.str());
  a.lvs = layout::decode_lvs_report(r.str());
  a.wire = sta::decode_wire_model(r.str());
  r.expect_end();
  return a;
}

std::string encode_timing_artifact(const TimingArtifact& a) {
  BinWriter w;
  w.u8(kTimingArtVersion);
  w.str(sta::encode_timing_report(a.timing));
  encode_diags(w, a.diags);
  return w.take();
}

TimingArtifact decode_timing_artifact(std::string_view payload) {
  BinReader r(payload);
  check_version(r, kTimingArtVersion, "timing artifact");
  TimingArtifact a;
  a.timing = sta::decode_timing_report(r.str());
  a.diags = decode_diags(r);
  r.expect_end();
  return a;
}

std::string encode_power_artifact(const PowerArtifact& a) {
  BinWriter w;
  w.u8(kPowerArtVersion);
  w.str(power::encode_power_report(a.power));
  w.str(power::encode_area_report(a.area));
  return w.take();
}

PowerArtifact decode_power_artifact(std::string_view payload) {
  BinReader r(payload);
  check_version(r, kPowerArtVersion, "power artifact");
  PowerArtifact a;
  a.power = power::decode_power_report(r.str());
  a.area = power::decode_area_report(r.str());
  r.expect_end();
  return a;
}

std::size_t deep_bytes(const LintArtifact& a) {
  return lint::deep_bytes(a.summary) + diags_bytes(a.diags);
}
std::size_t deep_bytes(const PlacedArtifact& a) {
  return layout::deep_bytes(a.floorplan) + diags_bytes(a.diags);
}
std::size_t deep_bytes(const RouteArtifact& a) {
  return layout::deep_bytes(a.drc) + layout::deep_bytes(a.lvs) +
         sta::deep_bytes(a.wire);
}
std::size_t deep_bytes(const TimingArtifact& a) {
  return sta::deep_bytes(a.timing) + diags_bytes(a.diags);
}
std::size_t deep_bytes(const PowerArtifact& a) {
  return power::deep_bytes(a.power) + power::deep_bytes(a.area);
}

// --- store wiring ----------------------------------------------------------

void install_deep_bytes(ArtifactStore& store) {
  store.modules.set_deep_bytes(
      [](const netlist::Module& m) { return netlist::deep_bytes(m); });
  store.blocks.set_deep_bytes(
      [](const netlist::FlatBlock& b) { return netlist::deep_bytes(b); });
  store.flats.set_deep_bytes(
      [](const netlist::FlatNetlist& nl) { return netlist::deep_bytes(nl); });
  store.activity.set_deep_bytes([](const power::GroupActivityArtifact& a) {
    return power::deep_bytes(a);
  });
  store.lints.set_deep_bytes(
      [](const LintArtifact& a) { return deep_bytes(a); });
  store.placed.set_deep_bytes(
      [](const PlacedArtifact& a) { return deep_bytes(a); });
  store.routes.set_deep_bytes(
      [](const RouteArtifact& a) { return deep_bytes(a); });
  store.timings.set_deep_bytes(
      [](const TimingArtifact& a) { return deep_bytes(a); });
  store.powers.set_deep_bytes(
      [](const PowerArtifact& a) { return deep_bytes(a); });
  store.act_models.set_deep_bytes(
      [](const power::ActivityModel& m) { return power::deep_bytes(m); });
}

void attach_blob_store(ArtifactStore& store, BlobStore* l2) {
  attach_tier(store.modules, l2, netlist::encode_module,
              netlist::decode_module);
  attach_tier(store.blocks, l2, netlist::encode_flat_block,
              netlist::decode_flat_block);
  attach_tier(store.flats, l2, netlist::encode_flat_netlist,
              netlist::decode_flat_netlist);
  attach_tier(store.activity, l2, power::encode_group_activity,
              power::decode_group_activity);
  attach_tier(store.lints, l2, encode_lint_artifact, decode_lint_artifact);
  attach_tier(store.placed, l2, encode_placed_artifact,
              decode_placed_artifact);
  attach_tier(store.routes, l2, encode_route_artifact, decode_route_artifact);
  attach_tier(store.timings, l2, encode_timing_artifact,
              decode_timing_artifact);
  attach_tier(store.powers, l2, encode_power_artifact, decode_power_artifact);
  attach_tier(store.act_models, l2, power::encode_activity_model,
              power::decode_activity_model);
}

}  // namespace syndcim::core

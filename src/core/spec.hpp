#pragma once
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "num/fp_format.hpp"
#include "rtlgen/arch.hpp"

namespace syndcim::core {

/// User PPA preference weights (paper: "PPA preferences"); the searcher
/// ranks Pareto points by the weighted normalized objective.
struct PpaPreference {
  double power = 1.0;
  double area = 1.0;
  /// Extra reward for fmax headroom beyond the required frequency.
  double performance = 0.0;
};

/// Input specification of the SynDCIM compiler (paper Fig. 2): macro
/// architecture parameters plus performance constraints.
struct PerfSpec {
  // Architecture parameters.
  int rows = 64;
  int cols = 64;
  int mcr = 2;
  std::vector<int> input_bits = {4, 8};
  std::vector<int> weight_bits = {4, 8};
  std::vector<num::FpFormat> fp_formats = {};
  int fp_guard_bits = 2;

  // Performance constraints.
  double mac_freq_mhz = 800.0;
  double wupdate_freq_mhz = 800.0;
  double vdd = 0.9;
  /// Pre-layout guard band: the searcher closes timing at
  /// period * (1 - timing_margin) so the post-APR wire parasitics still
  /// meet the spec (standard synthesis-margin practice).
  double timing_margin = 0.10;
  PpaPreference pref;

  // Optional SPEC-defined subcircuit choices (Algorithm 1, step 1:
  // "if SPEC defined: set sc as SPEC-defined configuration").
  std::optional<rtlgen::BitcellKind> bitcell;
  std::optional<rtlgen::MuxStyle> mux;
  std::optional<rtlgen::AdderTreeStyle> tree_style;

  /// Base macro configuration with the paper's defaults applied.
  [[nodiscard]] rtlgen::MacroConfig base_config() const;
  /// Target MAC clock period in ps.
  [[nodiscard]] double period_ps() const;
  [[nodiscard]] double write_period_ps() const;
};

/// Canonical serialization of the PerfSpec fields that influence an
/// evaluation outcome: the timing knobs (frequencies, voltage, margin).
/// PPA *preference* weights are deliberately excluded — they only affect
/// final selection, so specs differing in preference alone share cache
/// entries. Doubles are rendered as hexfloat, so no two distinct values
/// collide by rounding. Stage artifact keys and the DSE evaluation cache
/// both embed this string (dse::canonical_spec_knobs_key forwards here).
[[nodiscard]] std::string spec_knobs_key(const PerfSpec& s);

/// Canonical serialization of the *whole* spec: `spec_knobs_key` plus the
/// architecture parameters, precision lists, PPA preference weights and
/// SPEC-defined subcircuit choices. Two specs get the same string iff
/// every field that can influence a compile's outcome is identical — the
/// serve daemon's single-flight request coalescing keys on this.
[[nodiscard]] std::string spec_full_key(const PerfSpec& s);

/// Builds a PerfSpec from `key=value` string pairs — the shared parser
/// behind the CLI spec files / inline arguments and the serve protocol's
/// `"spec"` request object. Keys: rows, cols, mcr, input_bits (comma
/// list), weight_bits, fp (fp4|fp8|bf16|fp16 comma list), mac_mhz,
/// wupdate_mhz, vdd, pref_power, pref_area, pref_perf, bitcell
/// (6T|8T|12T), mux (pg|tg|oai22), temp_c (reserved). Unknown keys and
/// malformed values throw std::invalid_argument.
[[nodiscard]] PerfSpec spec_from_kv(
    const std::map<std::string, std::string>& kv);

/// Named PPA preference presets (balanced|power|area|perf); throws
/// std::invalid_argument on anything else.
[[nodiscard]] PpaPreference named_pref(const std::string& name);

}  // namespace syndcim::core

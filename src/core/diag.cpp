#include "core/diag.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace syndcim::core {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

void DiagEngine::report(Diagnostic d) { diags_.push_back(std::move(d)); }

void DiagEngine::error(std::string rule, std::string message,
                       std::string object, std::string source, int line) {
  report({Severity::kError, std::move(rule), std::move(message),
          std::move(object), std::move(source), line});
}

void DiagEngine::warning(std::string rule, std::string message,
                         std::string object, std::string source, int line) {
  report({Severity::kWarning, std::move(rule), std::move(message),
          std::move(object), std::move(source), line});
}

void DiagEngine::info(std::string rule, std::string message,
                      std::string object, std::string source, int line) {
  report({Severity::kInfo, std::move(rule), std::move(message),
          std::move(object), std::move(source), line});
}

std::size_t DiagEngine::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::size_t DiagEngine::count_rule(std::string_view rule) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.rule == rule) ++n;
  }
  return n;
}

std::optional<Diagnostic> DiagEngine::first_of(std::string_view rule) const {
  for (const Diagnostic& d : diags_) {
    if (d.rule == rule) return d;
  }
  return std::nullopt;
}

void DiagEngine::merge(const DiagEngine& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

std::string DiagEngine::summary() const {
  const std::size_t e = error_count();
  const std::size_t w = warning_count();
  const std::size_t i = count(Severity::kInfo);
  std::ostringstream os;
  os << e << (e == 1 ? " error, " : " errors, ") << w
     << (w == 1 ? " warning, " : " warnings, ") << i
     << (i == 1 ? " note" : " notes");
  return os.str();
}

void DiagEngine::print(std::ostream& os) const {
  for (const Diagnostic& d : diags_) {
    os << severity_name(d.severity) << '[' << d.rule << "] ";
    if (!d.object.empty()) os << '\'' << d.object << "': ";
    os << d.message;
    if (!d.source.empty()) {
      os << " (" << d.source;
      if (d.line >= 0) os << ':' << d.line;
      os << ')';
    }
    os << '\n';
  }
}

std::string DiagEngine::to_json() const {
  std::ostringstream os;
  os << "{\n  \"format\": \"syndcim-diagnostics\",\n  \"version\": 1,\n"
     << "  \"errors\": " << error_count()
     << ",\n  \"warnings\": " << warning_count()
     << ",\n  \"notes\": " << count(Severity::kInfo)
     << ",\n  \"diagnostics\": [\n";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i) os << ",\n";
    os << "    {\"severity\": \"" << severity_name(d.severity)
       << "\", \"rule\": \"" << json_escape_string(d.rule)
       << "\", \"message\": \"" << json_escape_string(d.message)
       << "\", \"object\": \"" << json_escape_string(d.object)
       << "\", \"source\": \"" << json_escape_string(d.source)
       << "\", \"line\": " << d.line << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string json_escape_string(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace syndcim::core

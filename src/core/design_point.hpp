#pragma once
#include <string>
#include <vector>

#include "rtlgen/arch.hpp"

namespace syndcim::core {

/// Search-time PPA estimate of one macro configuration (from the
/// subcircuit library's slice characterization).
struct PpaEstimate {
  double fmax_mhz = 0.0;        ///< MAC clock limit at the spec voltage
  double write_fmax_mhz = 0.0;  ///< weight-update limit
  double power_uw = 0.0;        ///< at the spec frequency and voltage
  double area_um2 = 0.0;        ///< cell area (pre-layout)
  double energy_per_mac_fj = 0.0;  ///< per 1b-1b bitwise MAC
  int latency_cycles = 0;          ///< input-to-output, at max precision
  double tops_1b = 0.0;            ///< 1b-1b equivalent throughput at spec f
  [[nodiscard]] double tops_per_w() const {
    return power_uw > 0 ? tops_1b / (power_uw * 1e-6) : 0.0;
  }
  [[nodiscard]] double tops_per_mm2() const {
    return area_um2 > 0 ? tops_1b / (area_um2 * 1e-6) : 0.0;
  }
};

/// One explored design: configuration + estimate + provenance.
struct DesignPoint {
  rtlgen::MacroConfig cfg;
  PpaEstimate ppa;
  bool feasible = false;        ///< meets MAC + write frequency targets
  std::vector<std::string> applied;  ///< technique trail (tt1..ft3)
  std::string label;
};

/// Non-dominated filtering on (power, area), feasible points only.
/// Points are dominated if another feasible point is no worse in both
/// power and area and strictly better in one.
[[nodiscard]] std::vector<DesignPoint> pareto_front(
    const std::vector<DesignPoint>& points);

/// Preference-weighted scalar score (lower is better) used for final
/// selection among Pareto points.
[[nodiscard]] double preference_score(const DesignPoint& p,
                                      const std::vector<DesignPoint>& front,
                                      double w_power, double w_area,
                                      double w_perf);

}  // namespace syndcim::core

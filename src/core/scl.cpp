#include "core/scl.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "layout/floorplan.hpp"
#include "netlist/stitch.hpp"
#include "power/power.hpp"
#include "rtlgen/content_key.hpp"
#include "rtlgen/macro.hpp"
#include "rtlgen/ofu.hpp"
#include "sta/sta.hpp"
#include "tech/units.hpp"

namespace syndcim::core {

using rtlgen::MacroConfig;

namespace {
/// Reference period for the cached nominal analysis; group required
/// periods are recovered as (T_ref - group_wns).
constexpr double kRefPeriodPs = 1.0e5;

[[nodiscard]] bool starts_with(const std::string& s, const char* p) {
  return s.rfind(p, 0) == 0;
}
}  // namespace

SubcircuitLibrary::SubcircuitLibrary(const cell::Library& lib,
                                     std::shared_ptr<ArtifactStore> store)
    : lib_(lib), store_(std::move(store)) {
  // Artifact keys of library-dependent stages embed the fingerprint;
  // computing it here (single-threaded) makes later concurrent reads safe.
  (void)lib_.fingerprint();
}

const SliceEval& SubcircuitLibrary::slice(const MacroConfig& cfg) {
  // The slice content key already normalizes the column count, so every
  // configuration differing only in `cols` maps to one characterization.
  const std::string skey = rtlgen::slice_content_key(cfg);
  const auto it = cache_.find(skey);
  if (it != cache_.end()) return it->second;

  // Slice: one OFU group wide (min 8 columns to satisfy the generator).
  MacroConfig sc = cfg;
  sc.cols = std::max(cfg.max_weight_bits(), 8);
  sc.validate();

  ArtifactStore& as = *store_;
  StagePipeline pipe("scl.slice");
  const std::string& libfp = lib_.fingerprint();
  const std::string lkey = skey + "|" + libfp;

  // Elaborate + stitch. Netlist structure is library-independent, so the
  // flat artifact is keyed by generator parameters alone; on a hit the
  // generator does not run at all.
  const auto flat =
      pipe.run("flatten", &as.flats, "slflat1|" + skey, [&] {
        const rtlgen::MacroDesign md = rtlgen::gen_macro(sc, &as.modules);
        netlist::StitchResult sr =
            netlist::stitch_flatten(md.design, md.top, &as.blocks);
        return std::move(sr.nl);
      });

  SliceEval ev;
  ev.slice_cols = sc.cols;
  ev.gate_count = flat->gates().size();

  // Characterize the slice post-placement so the searcher's estimates see
  // extracted wire parasitics (the cross-region accumulator and OFU nets
  // dominate the fused configurations' timing).
  const auto placed =
      pipe.run("floorplan", &as.placed, "slplace1|" + lkey, [&] {
        PlacedArtifact pa;
        pa.floorplan = layout::sdp_place(*flat, lib_, sc);
        return pa;
      });
  const auto route = pipe.run("route", &as.routes, "slwire1|" + lkey, [&] {
    RouteArtifact ra;
    ra.wire = layout::extract_wire_model(*flat, placed->floorplan,
                                         lib_.node());
    return ra;
  });

  // static_control_ports() is a pure function of the configuration, so it
  // is available even when the generator stage was skipped.
  rtlgen::MacroDesign ports;
  ports.cfg = sc;

  const auto timing = pipe.run("sta", &as.timings, "slsta2|" + lkey, [&] {
    sta::StaEngine sta(*flat, lib_);
    sta::StaOptions topt;
    topt.clock_period_ps = kRefPeriodPs;
    topt.write_period_ps = kRefPeriodPs;
    topt.vdd = lib_.node().vdd_nominal;
    topt.wire = route->wire;
    topt.static_inputs = ports.static_control_ports();
    TimingArtifact ta;
    ta.timing = sta.analyze(topt);
    return ta;
  });
  const sta::TimingReport& rep = timing->timing;
  ev.min_period_ps = rep.min_period_ps;
  ev.min_write_period_ps = rep.min_write_period_ps;
  for (const sta::GroupSlack& gs : rep.groups) {
    const double req = kRefPeriodPs - gs.wns_ps;
    const bool ofu_side =
        starts_with(gs.group, "ofu_g") || gs.group == ports.top;
    (ofu_side ? ev.ofu_path_period_ps : ev.mac_path_period_ps) =
        std::max(ofu_side ? ev.ofu_path_period_ps : ev.mac_path_period_ps,
                 req);
  }

  // Search-time activity: one grouped propagation whose per-cone results
  // come from the shared activity tier; the whole model is additionally
  // memoized so an identical slice skips even the splicing.
  const auto act = pipe.run<power::ActivityModel>(
      "activity", &as.act_models, "slact2|" + lkey, [&] {
        return power::propagate_activity_grouped(
            *flat, lib_, power::ActivitySpec{}, &as.activity);
      });

  const auto pw = pipe.run("power", &as.powers, "slpow2|" + lkey, [&] {
    power::PowerOptions popt;
    popt.vdd = lib_.node().vdd_nominal;
    popt.freq_mhz = 1000.0;  // 1 GHz reference: uW == fJ/cycle
    PowerArtifact pa;
    pa.power = power::analyze_power(*flat, lib_, *act, popt);
    pa.area = power::analyze_area(*flat, lib_);
    return pa;
  });

  for (std::size_t g = 0; g < pw->power.by_group.size(); ++g) {
    SliceEval::GroupCost gc;
    gc.group = pw->power.by_group[g].group;
    gc.dynamic_fj =
        pw->power.by_group[g].dynamic_uw;  // at 1 GHz: uW == fJ/cycle
    gc.leakage_nw = pw->power.by_group[g].leakage_uw * 1.0e3;
    gc.area_um2 = g < pw->area.by_group.size()
                      ? pw->area.by_group[g].area_um2
                      : 0.0;
    ev.groups.push_back(std::move(gc));
  }
  last_stages_ = pipe.records();
  return cache_.emplace(skey, std::move(ev)).first->second;
}

SubcircuitLibrary::PathStatus SubcircuitLibrary::timing_status(
    const MacroConfig& cfg, const PerfSpec& spec) {
  const SliceEval& ev = slice(cfg);
  const double ds = lib_.node().delay_scale(spec.vdd);
  PathStatus st;
  st.mac_period_ps = ev.mac_path_period_ps * ds;
  st.ofu_period_ps = ev.ofu_path_period_ps * ds;
  st.write_period_ps = ev.min_write_period_ps * ds;
  const double target = spec.period_ps() * (1.0 - spec.timing_margin);
  const double wtarget =
      spec.write_period_ps() * (1.0 - spec.timing_margin);
  st.mac_ok = st.mac_period_ps <= target;
  st.ofu_ok = st.ofu_period_ps <= target;
  st.write_ok = st.write_period_ps <= wtarget;
  return st;
}

PpaEstimate SubcircuitLibrary::evaluate(const MacroConfig& cfg,
                                        const PerfSpec& spec) {
  const SliceEval& ev = slice(cfg);
  const tech::TechNode& node = lib_.node();
  const double ds = node.delay_scale(spec.vdd);
  const double es = node.energy_scale(spec.vdd);
  const double ls = node.leakage_scale(spec.vdd);

  PpaEstimate ppa;
  ppa.fmax_mhz = 1.0e6 / (ev.min_period_ps * ds);
  ppa.write_fmax_mhz = 1.0e6 / (ev.min_write_period_ps * ds);

  // Compose the slice's per-group costs into the full macro. Column and
  // OFU groups replicate with the column count; wldrv/align are shared
  // (same row count in the slice); the write port splits roughly evenly
  // between its row decoder (shared) and its per-column bitline drivers.
  const double col_ratio =
      static_cast<double>(cfg.cols) / static_cast<double>(ev.slice_cols);
  double dyn_fj = 0.0, leak_nw = 0.0, area = 0.0;
  for (const SliceEval::GroupCost& gc : ev.groups) {
    double k = 1.0;
    if (starts_with(gc.group, "col") || starts_with(gc.group, "ofu_g")) {
      k = col_ratio;
    } else if (gc.group == "wrport") {
      k = 0.5 + 0.5 * col_ratio;
    }
    dyn_fj += k * gc.dynamic_fj;
    leak_nw += k * gc.leakage_nw;
    area += k * gc.area_um2;
  }
  ppa.power_uw = units::uw_from_fj_mhz(dyn_fj * es, spec.mac_freq_mhz) +
                 leak_nw * ls * 1.0e-3;
  ppa.area_um2 = area;

  // Throughput: 2*rows*cols bitwise MACs per cycle at 1b-1b equivalence.
  const double ops_per_cycle = 2.0 * cfg.rows * cfg.cols;
  ppa.tops_1b = ops_per_cycle * spec.mac_freq_mhz * 1.0e6 * 1.0e-12;
  ppa.energy_per_mac_fj = dyn_fj * es / ops_per_cycle;

  rtlgen::MacroDesign latency_helper;
  latency_helper.cfg = cfg;
  ppa.latency_cycles = latency_helper.ofu_valid_cycle(
      cfg.max_input_bits(),
      rtlgen::OfuModuleConfig{cfg.max_weight_bits(), cfg.sa_width(),
                              cfg.ofu}
          .n_stages());
  return ppa;
}

std::vector<rtlgen::AdderTreeConfig> SubcircuitLibrary::faster_tree_ladder(
    const rtlgen::AdderTreeConfig& cur) {
  std::vector<rtlgen::AdderTreeConfig> out;
  rtlgen::AdderTreeConfig c = cur;
  if (c.style == rtlgen::AdderTreeStyle::kRcaTree) {
    // Switch family first: the CSA styles are the faster SCL entries.
    c.style = rtlgen::AdderTreeStyle::kMixed;
    c.fa_fraction = 0.0;
    out.push_back(c);
  }
  if (!c.carry_reorder) {
    c.carry_reorder = true;
    out.push_back(c);
  }
  static constexpr double kLadder[] = {0.25, 0.5, 0.75, 1.0};
  for (const double fa : kLadder) {
    if (fa > c.fa_fraction + 1e-9) {
      rtlgen::AdderTreeConfig next = c;
      next.style = rtlgen::AdderTreeStyle::kMixed;
      next.fa_fraction = fa;
      out.push_back(next);
    }
  }
  return out;
}

}  // namespace syndcim::core

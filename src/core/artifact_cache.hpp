#pragma once
#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

// Header-only, dependency-free: included from netlist/power/layout as well
// as core, without adding link edges between those libraries.

namespace syndcim::core {

/// 64-bit FNV-1a over raw bytes (artifact content keys).
[[nodiscard]] inline std::uint64_t artifact_fnv1a64(
    const void* data, std::size_t n,
    std::uint64_t h = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Incremental structural hasher for artifact keys. Doubles are hashed
/// bitwise so keys are exact (no decimal rounding); a tag byte separates
/// fields so concatenations cannot alias.
class ArtifactHasher {
 public:
  void bytes(const void* data, std::size_t n) {
    h_ = artifact_fnv1a64(data, n, h_);
    h2_ = artifact_fnv1a64(data, n, h2_ * 0x9e3779b97f4a7c15ULL + 1);
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void u32(std::uint32_t v) { bytes(&v, sizeof(v)); }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i32(std::int32_t v) { bytes(&v, sizeof(v)); }
  void b(bool v) {
    const unsigned char c = v ? 1 : 0;
    bytes(&c, 1);
  }
  void dbl(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  /// 32-hex-digit digest (two independent FNV streams, so single-stream
  /// collisions cannot alias two different artifacts).
  [[nodiscard]] std::string hex() const {
    static const char* kHex = "0123456789abcdef";
    std::string out(32, '0');
    std::uint64_t a = h_, b = h2_;
    for (int i = 15; i >= 0; --i) {
      out[static_cast<std::size_t>(i)] = kHex[a & 0xf];
      out[static_cast<std::size_t>(16 + i)] = kHex[b & 0xf];
      a >>= 4;
      b >>= 4;
    }
    return out;
  }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
  std::uint64_t h2_ = 0x84222325cbf29ce4ULL;
};

/// Hit/miss/occupancy snapshot of one artifact tier.
struct ArtifactTierStats {
  std::string name;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
  /// Entries dropped by the LRU capacity bound (0 on unbounded tiers).
  std::uint64_t evicted = 0;
  /// Approximate resident bytes (shallow: sizeof(T) + key length per
  /// entry; deep payload sizes are not tracked).
  std::size_t bytes = 0;
  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
};

/// One content-addressed artifact tier: immutable values keyed by a
/// content key. Thread-safe; values are shared_ptr<const T> so a hit is a
/// pointer copy and entries never mutate after insertion (a prerequisite
/// for the cold-path == warm-path byte-identity guarantee). Disabling a
/// tier turns every lookup into a silent bypass — the cold reference path
/// runs the exact same code with `enabled(false)`.
///
/// Unbounded by default (the batch CLI dies before growth matters); a
/// long-running daemon calls `set_capacity` to bound the tier, after
/// which the least-recently-touched entries are evicted past either cap.
/// Eviction only drops the cache's reference — readers holding the
/// shared_ptr keep their artifact alive, so a hit can never dangle.
template <typename T>
class ArtifactCache {
 public:
  explicit ArtifactCache(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] std::shared_ptr<const T> find(const std::string& key) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) return nullptr;
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return it->second.value;
  }

  /// Stores `value` (first writer wins) and returns the stored artifact.
  std::shared_ptr<const T> put(const std::string& key, T value) {
    auto sp = std::make_shared<const T>(std::move(value));
    const std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) return sp;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.value;
    }
    lru_.push_front(key);
    map_.emplace(key, Slot{sp, lru_.begin()});
    bytes_ += entry_bytes(key);
    evict_over_capacity();
    return sp;
  }

  template <typename Fn>
  std::shared_ptr<const T> get_or_compute(const std::string& key, Fn&& fn) {
    if (auto hit = find(key)) return hit;
    return put(key, std::forward<Fn>(fn)());
  }

  void set_enabled(bool on) {
    const std::lock_guard<std::mutex> lock(mu_);
    enabled_ = on;
  }
  [[nodiscard]] bool enabled() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return enabled_;
  }

  /// Bounds the tier: at most `max_entries` entries / `max_bytes`
  /// approximate bytes (0 = unlimited for either knob). Applies
  /// immediately — a shrinking cap evicts the LRU tail on the spot.
  void set_capacity(std::size_t max_entries, std::size_t max_bytes = 0) {
    const std::lock_guard<std::mutex> lock(mu_);
    max_entries_ = max_entries;
    max_bytes_ = max_bytes;
    evict_over_capacity();
  }

  [[nodiscard]] ArtifactTierStats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return {name_, hits_, misses_, map_.size(), evicted_, bytes_};
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    hits_ = misses_ = evicted_ = 0;
    bytes_ = 0;
  }

 private:
  struct Slot {
    std::shared_ptr<const T> value;
    std::list<std::string>::iterator lru;
  };

  /// Shallow per-entry footprint: the payload's own size plus the key
  /// stored twice (map node and LRU list node). Deep container payloads
  /// are not walked — the byte cap is an order-of-magnitude bound, the
  /// entry cap the precise one.
  static std::size_t entry_bytes(const std::string& key) {
    return sizeof(T) + sizeof(Slot) + 2 * key.size();
  }

  /// Drops LRU-tail entries until both caps hold. Caller holds mu_.
  void evict_over_capacity() {
    while (!lru_.empty() &&
           ((max_entries_ > 0 && map_.size() > max_entries_) ||
            (max_bytes_ > 0 && bytes_ > max_bytes_ && map_.size() > 1))) {
      const std::string& victim = lru_.back();
      bytes_ -= entry_bytes(victim);
      map_.erase(victim);
      lru_.pop_back();
      ++evicted_;
    }
  }

  mutable std::mutex mu_;
  std::string name_;
  bool enabled_ = true;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evicted_ = 0;
  std::size_t bytes_ = 0;
  std::size_t max_entries_ = 0;  ///< 0 = unlimited
  std::size_t max_bytes_ = 0;    ///< 0 = unlimited
  std::unordered_map<std::string, Slot> map_;
  std::list<std::string> lru_;  ///< front = most recently touched
};

}  // namespace syndcim::core

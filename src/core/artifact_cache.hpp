#pragma once
#include <cstdint>
#include <cstring>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/blob_store.hpp"

// Header-only, dependency-free: included from netlist/power/layout as well
// as core, without adding link edges between those libraries.

namespace syndcim::core {

/// 64-bit FNV-1a over raw bytes (artifact content keys).
[[nodiscard]] inline std::uint64_t artifact_fnv1a64(
    const void* data, std::size_t n,
    std::uint64_t h = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Incremental structural hasher for artifact keys. Doubles are hashed
/// bitwise so keys are exact (no decimal rounding); a tag byte separates
/// fields so concatenations cannot alias.
class ArtifactHasher {
 public:
  void bytes(const void* data, std::size_t n) {
    h_ = artifact_fnv1a64(data, n, h_);
    h2_ = artifact_fnv1a64(data, n, h2_ * 0x9e3779b97f4a7c15ULL + 1);
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void u32(std::uint32_t v) { bytes(&v, sizeof(v)); }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i32(std::int32_t v) { bytes(&v, sizeof(v)); }
  void b(bool v) {
    const unsigned char c = v ? 1 : 0;
    bytes(&c, 1);
  }
  void dbl(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  /// 32-hex-digit digest (two independent FNV streams, so single-stream
  /// collisions cannot alias two different artifacts).
  [[nodiscard]] std::string hex() const {
    static const char* kHex = "0123456789abcdef";
    std::string out(32, '0');
    std::uint64_t a = h_, b = h2_;
    for (int i = 15; i >= 0; --i) {
      out[static_cast<std::size_t>(i)] = kHex[a & 0xf];
      out[static_cast<std::size_t>(16 + i)] = kHex[b & 0xf];
      a >>= 4;
      b >>= 4;
    }
    return out;
  }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
  std::uint64_t h2_ = 0x84222325cbf29ce4ULL;
};

/// Hit/miss/occupancy snapshot of one artifact tier.
struct ArtifactTierStats {
  std::string name;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
  /// Entries dropped by the LRU capacity bound (0 on unbounded tiers).
  std::uint64_t evicted = 0;
  /// Approximate resident bytes: sizeof(T) + key length per entry, plus
  /// the payload's deep heap footprint when a deep_bytes hook is
  /// installed (see set_deep_bytes) — with the hook, --cache-cap-bytes
  /// bounds real memory, not struct shells.
  std::size_t bytes = 0;
  // --- L2 (durable blob store) traffic, zero when no L2 is attached ---
  std::uint64_t l2_hits = 0;    ///< L1 misses served by decoding from L2
  std::uint64_t l2_misses = 0;  ///< absent from both layers
  std::uint64_t l2_writes = 0;  ///< dirty entries encoded and stored
  std::uint64_t l2_write_fails = 0;
  /// L2 payloads that decoded unsuccessfully (foreign codec version);
  /// distinct from the blob store's own corrupt-object counters.
  std::uint64_t l2_rejects = 0;
  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
};

/// One content-addressed artifact tier: immutable values keyed by a
/// content key. Thread-safe; values are shared_ptr<const T> so a hit is a
/// pointer copy and entries never mutate after insertion (a prerequisite
/// for the cold-path == warm-path byte-identity guarantee). Disabling a
/// tier turns every lookup into a silent bypass — the cold reference path
/// runs the exact same code with `enabled(false)`.
///
/// Unbounded by default (the batch CLI dies before growth matters); a
/// long-running daemon calls `set_capacity` to bound the tier, after
/// which the least-recently-touched entries are evicted past either cap.
/// Eviction only drops the cache's reference — readers holding the
/// shared_ptr keep their artifact alive, so a hit can never dangle.
///
/// Layered persistence: `attach_l2` plugs a durable BlobStore underneath
/// as L2, with a per-type binary codec. Lookups read through (an L1 miss
/// decodes the L2 object and installs it clean), inserts are write-back
/// (marked dirty, encoded to L2 by `flush_l2` — the drain/end-of-run
/// flush — or when LRU eviction would otherwise lose them). A decode
/// failure counts as a miss and falls back to recomputing, so a stale or
/// foreign store degrades to cold, never to wrong.
template <typename T>
class ArtifactCache {
 public:
  using DeepBytesFn = std::function<std::size_t(const T&)>;
  using EncodeFn = std::function<std::string(const T&)>;
  /// nullptr = malformed payload (the L2 entry is treated as a miss).
  using DecodeFn =
      std::function<std::shared_ptr<const T>(std::string_view)>;

  explicit ArtifactCache(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] std::shared_ptr<const T> find(const std::string& key) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!enabled_) return nullptr;
      const auto it = map_.find(key);
      if (it != map_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        return it->second.value;
      }
      if (l2_ == nullptr) {
        ++misses_;
        return nullptr;
      }
    }
    // L2 read-through, off-lock: disk I/O and decoding must not serialize
    // the other workers' L1 hits.
    return find_l2(key);
  }

  /// Stores `value` (first writer wins) and returns the stored artifact.
  std::shared_ptr<const T> put(const std::string& key, T value) {
    auto sp = std::make_shared<const T>(std::move(value));
    const std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) return sp;
    return install(key, std::move(sp), /*dirty=*/l2_ != nullptr);
  }

  template <typename Fn>
  std::shared_ptr<const T> get_or_compute(const std::string& key, Fn&& fn) {
    if (auto hit = find(key)) return hit;
    return put(key, std::forward<Fn>(fn)());
  }

  void set_enabled(bool on) {
    const std::lock_guard<std::mutex> lock(mu_);
    enabled_ = on;
  }
  [[nodiscard]] bool enabled() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return enabled_;
  }

  /// Installs the deep-payload-bytes hook used by the byte accounting
  /// (and therefore the --cache-cap-bytes LRU bound). Applies to entries
  /// inserted after the call; install before populating.
  void set_deep_bytes(DeepBytesFn fn) {
    const std::lock_guard<std::mutex> lock(mu_);
    deep_bytes_ = std::move(fn);
  }

  /// Attaches the durable L2 under this tier. `store` must outlive the
  /// cache (or a detach_l2 call); the codec pair must round-trip values
  /// bit-exactly. Not owned.
  void attach_l2(BlobStore* store, EncodeFn encode, DecodeFn decode) {
    const std::lock_guard<std::mutex> lock(mu_);
    l2_ = store;
    l2_encode_ = std::move(encode);
    l2_decode_ = std::move(decode);
  }
  void detach_l2() {
    const std::lock_guard<std::mutex> lock(mu_);
    l2_ = nullptr;
    l2_encode_ = nullptr;
    l2_decode_ = nullptr;
  }
  [[nodiscard]] bool has_l2() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return l2_ != nullptr;
  }

  /// Write-back flush: encodes every dirty entry into L2 and marks it
  /// clean. Returns the number of entries written. Encoding runs off-lock
  /// from a snapshot (entries are immutable), so lookups keep flowing
  /// while a drain flushes.
  std::size_t flush_l2() {
    std::vector<std::pair<std::string, std::shared_ptr<const T>>> dirty;
    BlobStore* l2 = nullptr;
    EncodeFn encode;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (l2_ == nullptr) return 0;
      l2 = l2_;
      encode = l2_encode_;
      for (auto& [key, slot] : map_) {
        if (slot.dirty) dirty.emplace_back(key, slot.value);
      }
    }
    std::size_t written = 0;
    for (auto& [key, value] : dirty) {
      const bool ok = l2->put(name_, key, encode(*value));
      const std::lock_guard<std::mutex> lock(mu_);
      if (ok) {
        ++l2_writes_;
        ++written;
        const auto it = map_.find(key);
        if (it != map_.end()) it->second.dirty = false;
      } else {
        ++l2_write_fails_;
      }
    }
    return written;
  }

  /// Bounds the tier: at most `max_entries` entries / `max_bytes`
  /// approximate bytes (0 = unlimited for either knob). Applies
  /// immediately — a shrinking cap evicts the LRU tail on the spot.
  void set_capacity(std::size_t max_entries, std::size_t max_bytes = 0) {
    const std::lock_guard<std::mutex> lock(mu_);
    max_entries_ = max_entries;
    max_bytes_ = max_bytes;
    evict_over_capacity();
  }

  [[nodiscard]] ArtifactTierStats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    ArtifactTierStats s;
    s.name = name_;
    s.hits = hits_;
    s.misses = misses_;
    s.entries = map_.size();
    s.evicted = evicted_;
    s.bytes = bytes_;
    s.l2_hits = l2_hits_;
    s.l2_misses = l2_misses_;
    s.l2_writes = l2_writes_;
    s.l2_write_fails = l2_write_fails_;
    s.l2_rejects = l2_rejects_;
    return s;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    hits_ = misses_ = evicted_ = 0;
    l2_hits_ = l2_misses_ = l2_writes_ = l2_write_fails_ = l2_rejects_ = 0;
    bytes_ = 0;
  }

 private:
  struct Slot {
    std::shared_ptr<const T> value;
    std::list<std::string>::iterator lru;
    std::size_t bytes = 0;  ///< this entry's accounted footprint
    bool dirty = false;     ///< inserted since the last L2 flush
  };

  /// Per-entry footprint: the payload shell plus the key stored twice
  /// (map node and LRU list node), plus the deep payload bytes when the
  /// hook is installed.
  std::size_t entry_bytes(const std::string& key, const T& value) const {
    std::size_t n = sizeof(T) + sizeof(Slot) + 2 * key.size();
    if (deep_bytes_) n += deep_bytes_(value);
    return n;
  }

  /// Inserts under mu_ (first writer wins); shared by put and the L2
  /// read-through install.
  std::shared_ptr<const T> install(const std::string& key,
                                   std::shared_ptr<const T> sp, bool dirty) {
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.value;
    }
    lru_.push_front(key);
    Slot slot{std::move(sp), lru_.begin(), 0, dirty};
    slot.bytes = entry_bytes(key, *slot.value);
    bytes_ += slot.bytes;
    auto out = slot.value;
    map_.emplace(key, std::move(slot));
    evict_over_capacity();
    return out;
  }

  std::shared_ptr<const T> find_l2(const std::string& key) {
    const auto payload = l2_->get(name_, key);
    if (!payload.has_value()) {
      const std::lock_guard<std::mutex> lock(mu_);
      ++misses_;
      ++l2_misses_;
      return nullptr;
    }
    std::shared_ptr<const T> sp = l2_decode_(*payload);
    if (sp == nullptr) {
      const std::lock_guard<std::mutex> lock(mu_);
      ++misses_;
      ++l2_misses_;
      ++l2_rejects_;
      return nullptr;
    }
    const std::lock_guard<std::mutex> lock(mu_);
    ++hits_;
    ++l2_hits_;
    // Clean install: the object is already durable, a flush must not
    // rewrite it.
    return install(key, std::move(sp), /*dirty=*/false);
  }

  /// Drops LRU-tail entries until both caps hold. Caller holds mu_. A
  /// dirty victim is flushed to L2 first — write-back eviction — so a
  /// bounded daemon never silently loses an unfetched artifact.
  void evict_over_capacity() {
    while (!lru_.empty() &&
           ((max_entries_ > 0 && map_.size() > max_entries_) ||
            (max_bytes_ > 0 && bytes_ > max_bytes_ && map_.size() > 1))) {
      const std::string& victim = lru_.back();
      const auto it = map_.find(victim);
      if (it->second.dirty && l2_ != nullptr) {
        if (l2_->put(name_, victim, l2_encode_(*it->second.value))) {
          ++l2_writes_;
        } else {
          ++l2_write_fails_;
        }
      }
      bytes_ -= it->second.bytes;
      map_.erase(it);
      lru_.pop_back();
      ++evicted_;
    }
  }

  mutable std::mutex mu_;
  std::string name_;
  bool enabled_ = true;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t l2_hits_ = 0;
  std::uint64_t l2_misses_ = 0;
  std::uint64_t l2_writes_ = 0;
  std::uint64_t l2_write_fails_ = 0;
  std::uint64_t l2_rejects_ = 0;
  std::size_t bytes_ = 0;
  std::size_t max_entries_ = 0;  ///< 0 = unlimited
  std::size_t max_bytes_ = 0;    ///< 0 = unlimited
  DeepBytesFn deep_bytes_;
  BlobStore* l2_ = nullptr;  ///< not owned; see attach_l2
  EncodeFn l2_encode_;
  DecodeFn l2_decode_;
  std::unordered_map<std::string, Slot> map_;
  std::list<std::string> lru_;  ///< front = most recently touched
};

}  // namespace syndcim::core

#pragma once
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

// Header-only, dependency-free (like artifact_cache.hpp): the L2 blob
// layer is referenced from the netlist/power/layout tiers without adding
// link edges between those libraries.

namespace syndcim::core {

/// Abstract durable byte store under the in-memory artifact tiers:
/// ArtifactCache<T> is L1 (decoded, shared_ptr hits), a BlobStore is L2
/// (encoded payloads keyed by (tier, content key)). Implementations must
/// be safe to call from many threads — and, for the on-disk store, from
/// many *processes* sharing one directory (the sharded-sweep contract).
///
/// Semantics are content-addressed: a key is a pure function of the
/// payload's inputs, so two writers racing on one key write identical
/// bytes and either winner is correct. `get` returning nullopt means
/// "not present or not trustworthy" — corrupt objects are skipped, never
/// surfaced.
class BlobStore {
 public:
  virtual ~BlobStore() = default;

  /// Verified payload bytes for (tier, key), or nullopt on miss/corrupt.
  [[nodiscard]] virtual std::optional<std::string> get(
      const std::string& tier, const std::string& key) = 0;

  /// Durably stores payload under (tier, key); false on write failure
  /// (the caller keeps its L1 entry either way — persistence is an
  /// optimization, never a correctness dependency).
  virtual bool put(const std::string& tier, const std::string& key,
                   std::string_view payload) = 0;
};

}  // namespace syndcim::core

#include "core/stage.hpp"

#include <sstream>

#include "core/artifact_codec.hpp"

namespace syndcim::core {

void replay_diags(const std::vector<Diagnostic>& diags, DiagEngine& sink) {
  for (const Diagnostic& d : diags) sink.report(d);
}

ArtifactStore::ArtifactStore() { install_deep_bytes(*this); }

void ArtifactStore::attach_blob_store(BlobStore* l2) {
  core::attach_blob_store(*this, l2);
}

std::size_t ArtifactStore::flush_l2() {
  std::size_t n = 0;
  n += modules.flush_l2();
  n += blocks.flush_l2();
  n += flats.flush_l2();
  n += activity.flush_l2();
  n += lints.flush_l2();
  n += placed.flush_l2();
  n += routes.flush_l2();
  n += timings.flush_l2();
  n += powers.flush_l2();
  n += act_models.flush_l2();
  return n;
}

void ArtifactStore::set_enabled(bool on) {
  modules.set_enabled(on);
  blocks.set_enabled(on);
  flats.set_enabled(on);
  activity.set_enabled(on);
  lints.set_enabled(on);
  placed.set_enabled(on);
  routes.set_enabled(on);
  timings.set_enabled(on);
  powers.set_enabled(on);
  act_models.set_enabled(on);
}

void ArtifactStore::set_capacity(std::size_t max_entries,
                                 std::size_t max_bytes) {
  modules.set_capacity(max_entries, max_bytes);
  blocks.set_capacity(max_entries, max_bytes);
  flats.set_capacity(max_entries, max_bytes);
  activity.set_capacity(max_entries, max_bytes);
  lints.set_capacity(max_entries, max_bytes);
  placed.set_capacity(max_entries, max_bytes);
  routes.set_capacity(max_entries, max_bytes);
  timings.set_capacity(max_entries, max_bytes);
  powers.set_capacity(max_entries, max_bytes);
  act_models.set_capacity(max_entries, max_bytes);
}

std::vector<ArtifactTierStats> ArtifactStore::stats() const {
  return {modules.stats(), blocks.stats(),  flats.stats(),
          activity.stats(), lints.stats(),  placed.stats(),
          routes.stats(),  timings.stats(), powers.stats(),
          act_models.stats()};
}

std::uint64_t ArtifactStore::total_hits() const {
  std::uint64_t n = 0;
  for (const ArtifactTierStats& t : stats()) n += t.hits;
  return n;
}

std::uint64_t ArtifactStore::total_misses() const {
  std::uint64_t n = 0;
  for (const ArtifactTierStats& t : stats()) n += t.misses;
  return n;
}

std::size_t ArtifactStore::total_entries() const {
  std::size_t n = 0;
  for (const ArtifactTierStats& t : stats()) n += t.entries;
  return n;
}

std::uint64_t ArtifactStore::total_evicted() const {
  std::uint64_t n = 0;
  for (const ArtifactTierStats& t : stats()) n += t.evicted;
  return n;
}

std::string ArtifactStore::stats_json() const {
  std::ostringstream os;
  os << "{\"format\": \"syndcim-artifact-store\", \"tiers\": [";
  bool first = true;
  for (const ArtifactTierStats& t : stats()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << json_escape_string(t.name)
       << "\", \"hits\": " << t.hits << ", \"misses\": " << t.misses
       << ", \"entries\": " << t.entries << ", \"evicted\": " << t.evicted
       << ", \"bytes\": " << t.bytes << ", \"l2_hits\": " << t.l2_hits
       << ", \"l2_misses\": " << t.l2_misses
       << ", \"l2_writes\": " << t.l2_writes
       << ", \"l2_write_fails\": " << t.l2_write_fails
       << ", \"l2_rejects\": " << t.l2_rejects << "}";
  }
  os << "]}";
  return os.str();
}

void ArtifactStore::publish_metrics(const std::string& prefix) const {
  if (!obs::enabled()) return;
  auto& reg = obs::metrics();
  for (const ArtifactTierStats& t : stats()) {
    const std::string base = prefix + "." + t.name;
    reg.gauge(base + ".hits").set(static_cast<double>(t.hits));
    reg.gauge(base + ".misses").set(static_cast<double>(t.misses));
    reg.gauge(base + ".entries").set(static_cast<double>(t.entries));
    reg.gauge(base + ".evicted").set(static_cast<double>(t.evicted));
    reg.gauge(base + ".l2_hits").set(static_cast<double>(t.l2_hits));
    reg.gauge(base + ".l2_writes").set(static_cast<double>(t.l2_writes));
  }
  reg.gauge(prefix + ".evicted").set(static_cast<double>(total_evicted()));
}

std::size_t StagePipeline::runs() const {
  std::size_t n = 0;
  for (const StageRecord& r : records_) n += r.skipped ? 0 : 1;
  return n;
}

std::size_t StagePipeline::skips() const {
  std::size_t n = 0;
  for (const StageRecord& r : records_) n += r.skipped ? 1 : 0;
  return n;
}

void StagePipeline::note(const std::string& stage, const std::string& key,
                         bool skipped, std::uint64_t t0) {
  const std::uint64_t now = obs::now_ns();
  StageRecord rec;
  rec.stage = stage;
  rec.key = key;
  rec.skipped = skipped;
  rec.wall_ms = static_cast<double>(now - t0) * 1e-6;
  if (obs::enabled()) {
    obs::metrics()
        .counter(skipped ? "pipeline.stage.skips" : "pipeline.stage.runs")
        .inc();
    if (skipped) {
      obs::tracer().record(name_ + "." + stage + ".skip", t0, now - t0);
    }
  }
  records_.push_back(std::move(rec));
}

}  // namespace syndcim::core

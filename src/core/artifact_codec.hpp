#pragma once
#include <cstddef>
#include <string>
#include <string_view>

#include "core/diag.hpp"
#include "core/stage.hpp"

namespace syndcim::core {

class BlobStore;

// Codecs for the composite stage artifacts (lints, placed, routes,
// timings, powers) and the Diagnostic records they replay, plus the
// wiring that turns an ArtifactStore into a two-level cache over a
// BlobStore. Per-payload codecs live in their own layers
// (netlist/sta/layout/power/lint serialize.hpp); this file only composes
// them, keeping the layer boundaries the in-memory store already has.

[[nodiscard]] std::string encode_lint_artifact(const LintArtifact& a);
[[nodiscard]] LintArtifact decode_lint_artifact(std::string_view payload);

[[nodiscard]] std::string encode_placed_artifact(const PlacedArtifact& a);
[[nodiscard]] PlacedArtifact decode_placed_artifact(std::string_view payload);

[[nodiscard]] std::string encode_route_artifact(const RouteArtifact& a);
[[nodiscard]] RouteArtifact decode_route_artifact(std::string_view payload);

[[nodiscard]] std::string encode_timing_artifact(const TimingArtifact& a);
[[nodiscard]] TimingArtifact decode_timing_artifact(std::string_view payload);

[[nodiscard]] std::string encode_power_artifact(const PowerArtifact& a);
[[nodiscard]] PowerArtifact decode_power_artifact(std::string_view payload);

[[nodiscard]] std::size_t deep_bytes(const LintArtifact& a);
[[nodiscard]] std::size_t deep_bytes(const PlacedArtifact& a);
[[nodiscard]] std::size_t deep_bytes(const RouteArtifact& a);
[[nodiscard]] std::size_t deep_bytes(const TimingArtifact& a);
[[nodiscard]] std::size_t deep_bytes(const PowerArtifact& a);

/// Installs the deep-payload-bytes hooks on all ten tiers, making
/// ArtifactTierStats::bytes (and the --cache-cap-bytes bound) reflect
/// real heap memory. ArtifactStore's constructor calls this; it is
/// idempotent.
void install_deep_bytes(ArtifactStore& store);

/// Attaches `l2` as the durable layer under all ten tiers, wiring each
/// tier's encode/decode codec. nullptr detaches. `l2` must outlive the
/// store or a later detach.
void attach_blob_store(ArtifactStore& store, BlobStore* l2);

}  // namespace syndcim::core

#include "core/artifacts.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "cell/liberty.hpp"
#include "core/report.hpp"
#include "layout/sdp_script.hpp"
#include "netlist/flatten.hpp"
#include "netlist/verilog.hpp"
#include "num/alignment.hpp"
#include "rtlgen/ofu.hpp"
#include "sta/sdc.hpp"

namespace syndcim::core {

namespace {
std::ofstream open_out(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("write_artifacts: cannot open " + path);
  }
  return os;
}
}  // namespace

std::vector<std::string> write_artifacts(const CompileResult& result,
                                         const PerfSpec& spec,
                                         const cell::Library& lib,
                                         const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::vector<std::string> written;
  const auto& macro = result.impl.macro;

  {
    const std::string p = dir + "/macro.v";
    auto os = open_out(p);
    netlist::write_verilog(macro.design, macro.top, os);
    written.push_back(p);
  }
  {
    const std::string p = dir + "/constraints.sdc";
    auto os = open_out(p);
    sta::StaOptions opt;
    opt.clock_period_ps = spec.period_ps();
    opt.write_period_ps = spec.write_period_ps();
    opt.vdd = spec.vdd;
    opt.static_inputs = macro.static_control_ports();
    sta::write_sdc(opt, os);
    written.push_back(p);
  }
  const netlist::FlatNetlist flat = netlist::flatten(macro.design, macro.top);
  {
    const std::string p = dir + "/sdp_place.tcl";
    auto os = open_out(p);
    layout::write_sdp_tcl(flat, result.impl.floorplan, os);
    written.push_back(p);
  }
  {
    const std::string p = dir + "/macro.def";
    auto os = open_out(p);
    layout::write_def(flat, result.impl.floorplan, macro.top, os);
    written.push_back(p);
  }
  {
    const std::string p = dir + "/cells.lib";
    auto os = open_out(p);
    cell::write_liberty(lib, os);
    written.push_back(p);
  }
  {
    // Macro datasheet: what an integrator needs without reading the
    // netlist — interface, precision modes, latency, PPA by subsystem.
    const std::string p = dir + "/datasheet.md";
    auto os = open_out(p);
    const auto& cfg = result.selected.cfg;
    os << "# SynDCIM macro datasheet\n\n";
    os << "## Architecture\n\n";
    os << "| parameter | value |\n|---|---|\n";
    os << "| array (rows x cols) | " << cfg.rows << " x " << cfg.cols
       << " |\n";
    os << "| memory-compute ratio | " << cfg.mcr << " (storage "
       << TextTable::num(result.impl.macro.cfg.storage_bits() / 1024.0, 2)
       << " Kb) |\n";
    os << "| bitcell | " << rtlgen::to_string(cfg.bitcell) << " |\n";
    os << "| mux/multiplier | " << rtlgen::to_string(cfg.mux) << " |\n";
    os << "| adder tree | " << rtlgen::to_string(cfg.tree.style)
       << ", fa_fraction " << cfg.tree.fa_fraction << ", carry reorder "
       << (cfg.tree.carry_reorder ? "on" : "off") << " |\n";
    os << "| column split | " << cfg.column_split << " |\n";
    os << "| pipeline | tree reg " << (cfg.pipe.reg_after_tree ? "yes" : "no")
       << ", CPA retimed " << (cfg.pipe.retime_tree_cpa ? "yes" : "no")
       << ", OFU input reg " << (cfg.ofu.input_reg ? "yes" : "no")
       << ", OFU pipeline regs " << cfg.ofu.pipeline_regs << " |\n\n";
    os << "## Precisions and latency\n\n";
    os << "| mode | serial cycles | output-valid cycle (from load) |\n"
       << "|---|---|---|\n";
    for (const int ib : cfg.input_bits) {
      const rtlgen::OfuModuleConfig ocfg{cfg.max_weight_bits(),
                                         cfg.sa_width(), cfg.ofu};
      os << "| INT" << ib << " x INT" << cfg.max_weight_bits() << " | "
         << ib << " | "
         << result.impl.macro.ofu_valid_cycle(ib, ocfg.n_stages())
         << " |\n";
    }
    for (const auto& f : cfg.fp_formats) {
      const int ib = num::aligned_mant_bits(f, cfg.fp_guard_bits);
      const rtlgen::OfuModuleConfig ocfg{cfg.max_weight_bits(),
                                         cfg.sa_width(), cfg.ofu};
      os << "| " << f.name() << " | " << ib << " (+"
         << result.impl.macro.align_latency() << " align) | "
         << result.impl.macro.ofu_valid_cycle(ib, ocfg.n_stages())
         << " |\n";
    }
    os << "\n## Post-layout PPA by subsystem\n\n";
    os << "| group | dynamic uW | leakage uW | area um^2 |\n|---|---|---|---|\n";
    for (const auto& g : result.impl.power.by_group) {
      if (g.dynamic_uw + g.leakage_uw <
          result.impl.power.total_uw() * 0.005) {
        continue;
      }
      os << "| " << g.group << " | " << TextTable::num(g.dynamic_uw, 1)
         << " | " << TextTable::num(g.leakage_uw, 2) << " | "
         << TextTable::num(result.impl.cell_area.group_um2(g.group), 0)
         << " |\n";
    }
    os << "\nfmax " << TextTable::num(result.impl.fmax_mhz, 0)
       << " MHz @ " << spec.vdd << " V; outline "
       << TextTable::num(result.impl.floorplan.outline.w, 0) << " x "
       << TextTable::num(result.impl.floorplan.outline.h, 0)
       << " um; utilization "
       << TextTable::num(result.impl.floorplan.utilization, 2) << "\n";
    written.push_back(p);
  }
  {
    const std::string p = dir + "/report.txt";
    auto os = open_out(p);
    os << "SynDCIM compile report\n======================\n\n";
    os << "spec: " << spec.rows << "x" << spec.cols << " MCR=" << spec.mcr
       << " @ " << spec.mac_freq_mhz << " MHz, " << spec.vdd << " V\n\n";
    os << "selected design: " << result.selected.label << "\n";
    for (const auto& a : result.selected.applied) {
      os << "  " << a << "\n";
    }
    os << "\nsearch: " << result.search.explored.size() << " points, "
       << result.search.pareto.size() << " on the Pareto frontier\n";
    TextTable t({"metric", "value"});
    t.add_row({"post-layout fmax (MHz)",
               TextTable::num(result.impl.fmax_mhz, 1)});
    t.add_row({"macro area (mm^2)",
               TextTable::num(result.impl.macro_area_mm2, 4)});
    t.add_row({"power at target clock (uW)",
               TextTable::num(result.impl.total_power_uw, 1)});
    t.add_row({"TOPS (1b-1b)", TextTable::num(result.impl.tops_1b, 3)});
    t.add_row({"TOPS/W", TextTable::num(result.impl.tops_per_w(), 1)});
    t.add_row({"DRC", result.impl.drc.clean() ? "clean" : "DIRTY"});
    t.add_row({"LVS", result.impl.lvs.clean() ? "clean" : "DIRTY"});
    t.add_row({"timing", result.impl.timing.met() ? "met" : "VIOLATED"});
    t.print(os);
    written.push_back(p);
  }
  return written;
}

}  // namespace syndcim::core

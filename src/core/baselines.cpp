#include "core/baselines.hpp"

namespace syndcim::core {

std::vector<CompilerCapabilities> compiler_feature_matrix() {
  return {
      {"AutoDCIM", "DAC'23", true, false, false, false, true},
      {"EasyACIM", "arXiv'24", true, false, false, true, false},
      {"ISLPED'23", "ISLPED'23", true, false, false, false, true},
      {"ARCTIC", "DATE'24", true, true, false, false, true},
      {"SynDCIM (ours)", "DATE'25", true, true, true, true, true},
  };
}

namespace {
rtlgen::MacroConfig common_base(const PerfSpec& spec, bool keep_fp) {
  rtlgen::MacroConfig cfg = spec.base_config();
  if (!keep_fp) cfg.fp_formats.clear();
  // Template compilers emit one fixed, fully registered pipeline.
  cfg.pipe.reg_after_tree = true;
  cfg.pipe.retime_tree_cpa = false;
  cfg.column_split = 1;
  cfg.ofu = rtlgen::OfuConfig{true, false, false};
  return cfg;
}
}  // namespace

std::optional<rtlgen::MacroConfig> autodcim_style_config(
    const PerfSpec& spec) {
  rtlgen::MacroConfig cfg = common_base(spec, /*keep_fp=*/false);
  if (cfg.fp_formats.empty() && spec.input_bits.empty()) return std::nullopt;
  cfg.mux = rtlgen::MuxStyle::kPassGate1T;
  cfg.tree.style = rtlgen::AdderTreeStyle::kRcaTree;
  cfg.tree.carry_reorder = false;
  return cfg;
}

std::optional<rtlgen::MacroConfig> islped23_style_config(
    const PerfSpec& spec) {
  rtlgen::MacroConfig cfg = common_base(spec, /*keep_fp=*/false);
  cfg.mux = rtlgen::MuxStyle::kTGateNor;
  cfg.tree.style = rtlgen::AdderTreeStyle::kRcaTree;
  cfg.tree.carry_reorder = false;
  return cfg;
}

std::optional<rtlgen::MacroConfig> arctic_style_config(const PerfSpec& spec) {
  rtlgen::MacroConfig cfg = common_base(spec, /*keep_fp=*/true);
  cfg.mux = rtlgen::MuxStyle::kTGateNor;
  cfg.tree.style = rtlgen::AdderTreeStyle::kCompressor;
  cfg.tree.carry_reorder = false;
  return cfg;
}

}  // namespace syndcim::core

#pragma once
#include <iosfwd>

#include "layout/floorplan.hpp"
#include "netlist/flatten.hpp"

namespace syndcim::layout {

/// Emits the floorplan as a scalable Innovus-style SDP TCL script — the
/// structured-data-path placement the paper sources during APR
/// (Sec. III-D): die/core box, one region per structural group, and a
/// placeInstance command per cell at its grid location.
void write_sdp_tcl(const netlist::FlatNetlist& nl, const Floorplan& fp,
                   std::ostream& os);

/// Emits the placement in DEF (DESIGN/DIEAREA/COMPONENTS ... PLACED) for
/// interchange with standard back-end tools.
void write_def(const netlist::FlatNetlist& nl, const Floorplan& fp,
               const std::string& design_name, std::ostream& os);

}  // namespace syndcim::layout

#include "layout/serialize.hpp"

#include "core/binio.hpp"

namespace syndcim::layout {

using core::BinDecodeError;
using core::BinReader;
using core::BinWriter;
using core::deep_str_bytes;
using core::deep_vec_bytes;

namespace {

constexpr std::uint8_t kFloorplanVersion = 1;
constexpr std::uint8_t kDrcVersion = 1;
constexpr std::uint8_t kLvsVersion = 1;

void encode_rect(BinWriter& w, const Rect& r) {
  w.f64(r.x);
  w.f64(r.y);
  w.f64(r.w);
  w.f64(r.h);
}

Rect decode_rect(BinReader& r) {
  Rect out;
  out.x = r.f64();
  out.y = r.f64();
  out.w = r.f64();
  out.h = r.f64();
  return out;
}

void encode_string_list(BinWriter& w, const std::vector<std::string>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const std::string& s : v) w.str(s);
}

std::vector<std::string> decode_string_list(BinReader& r) {
  const std::uint32_t n = r.len(4);
  std::vector<std::string> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.str());
  return v;
}

std::size_t string_list_bytes(const std::vector<std::string>& v) {
  std::size_t n = deep_vec_bytes(v);
  for (const std::string& s : v) n += deep_str_bytes(s);
  return n;
}

}  // namespace

std::string encode_floorplan(const Floorplan& fp) {
  BinWriter w;
  w.u8(kFloorplanVersion);
  encode_rect(w, fp.outline);
  w.u32(static_cast<std::uint32_t>(fp.gate_rects.size()));
  for (const Rect& r : fp.gate_rects) encode_rect(w, r);
  w.u32(static_cast<std::uint32_t>(fp.placed.size()));
  for (const std::uint8_t p : fp.placed) w.u8(p);
  w.f64(fp.utilization);
  w.f64(fp.wirelength_um);
  w.u32(static_cast<std::uint32_t>(fp.regions.size()));
  for (const Floorplan::Region& reg : fp.regions) {
    w.str(reg.name);
    encode_rect(w, reg.rect);
  }
  return w.take();
}

Floorplan decode_floorplan(std::string_view payload) {
  BinReader r(payload);
  if (r.u8() != kFloorplanVersion) {
    throw BinDecodeError("unsupported codec version for floorplan");
  }
  Floorplan fp;
  fp.outline = decode_rect(r);
  const std::uint32_t n_rects = r.len(32);
  fp.gate_rects.reserve(n_rects);
  for (std::uint32_t i = 0; i < n_rects; ++i) {
    fp.gate_rects.push_back(decode_rect(r));
  }
  const std::uint32_t n_placed = r.len(1);
  fp.placed.reserve(n_placed);
  for (std::uint32_t i = 0; i < n_placed; ++i) fp.placed.push_back(r.u8());
  fp.utilization = r.f64();
  fp.wirelength_um = r.f64();
  const std::uint32_t n_regions = r.len(36);
  fp.regions.reserve(n_regions);
  for (std::uint32_t i = 0; i < n_regions; ++i) {
    Floorplan::Region reg;
    reg.name = r.str();
    reg.rect = decode_rect(r);
    fp.regions.push_back(std::move(reg));
  }
  r.expect_end();
  return fp;
}

std::string encode_drc_report(const DrcReport& drc) {
  BinWriter w;
  w.u8(kDrcVersion);
  encode_string_list(w, drc.violations);
  return w.take();
}

DrcReport decode_drc_report(std::string_view payload) {
  BinReader r(payload);
  if (r.u8() != kDrcVersion) {
    throw BinDecodeError("unsupported codec version for drc report");
  }
  DrcReport drc;
  drc.violations = decode_string_list(r);
  r.expect_end();
  return drc;
}

std::string encode_lvs_report(const LvsReport& lvs) {
  BinWriter w;
  w.u8(kLvsVersion);
  encode_string_list(w, lvs.mismatches);
  return w.take();
}

LvsReport decode_lvs_report(std::string_view payload) {
  BinReader r(payload);
  if (r.u8() != kLvsVersion) {
    throw BinDecodeError("unsupported codec version for lvs report");
  }
  LvsReport lvs;
  lvs.mismatches = decode_string_list(r);
  r.expect_end();
  return lvs;
}

std::size_t deep_bytes(const Floorplan& fp) {
  std::size_t n = deep_vec_bytes(fp.gate_rects) + deep_vec_bytes(fp.placed) +
                  deep_vec_bytes(fp.regions);
  for (const Floorplan::Region& reg : fp.regions) {
    n += deep_str_bytes(reg.name);
  }
  return n;
}

std::size_t deep_bytes(const DrcReport& drc) {
  return string_list_bytes(drc.violations);
}

std::size_t deep_bytes(const LvsReport& lvs) {
  return string_list_bytes(lvs.mismatches);
}

}  // namespace syndcim::layout

#pragma once
#include <cstdint>
#include <vector>

#include "layout/floorplan.hpp"

namespace syndcim::layout {

/// Global-routing congestion analysis: every net is routed as a single
/// horizontal trunk at its pins' median row with vertical branches (the
/// classic one-trunk Steiner approximation); track demand is accumulated
/// per gcell and compared against the pitch-derived capacity.
struct RoutingGrid {
  double gcell_um = 10.0;
  int nx = 0, ny = 0;
  std::vector<std::uint32_t> demand;  ///< tracks used per gcell
  std::uint32_t capacity = 0;         ///< tracks available per gcell

  [[nodiscard]] std::uint32_t at(int x, int y) const {
    return demand[static_cast<std::size_t>(y) * nx + x];
  }
};

struct RouteReport {
  RoutingGrid grid;
  double total_routed_um = 0.0;  ///< trunk+branch wirelength
  /// Gcells whose straight-line demand exceeds capacity. The router does
  /// not detour, so overflow measures *detour pressure*, not hard
  /// unroutability; designs stay practically routable while the average
  /// utilization is comfortably below 1 and hotspots are isolated.
  int overflow_gcells = 0;
  double max_utilization = 0.0;  ///< worst gcell demand/capacity
  double avg_utilization = 0.0;
  [[nodiscard]] bool routable() const { return overflow_gcells == 0; }
};

/// Routes all placed nets of `nl` over `fp` and reports congestion.
/// `capacity_derate` scales the available tracks (1.0 = both routing
/// layers fully available to signals).
[[nodiscard]] RouteReport global_route(const netlist::FlatNetlist& nl,
                                       const Floorplan& fp,
                                       const tech::TechNode& node,
                                       double gcell_um = 10.0,
                                       double capacity_derate = 0.6);

}  // namespace syndcim::layout

#include "layout/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <unordered_map>

#include "obs/obs.hpp"

namespace syndcim::layout {

using netlist::FlatNetlist;

const Floorplan::Region* Floorplan::region(std::string_view name) const {
  for (const Region& r : regions) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

namespace {

struct ResolvedCells {
  std::vector<const cell::Cell*> per_gate;
};

ResolvedCells resolve(const FlatNetlist& nl, const cell::Library& lib) {
  std::vector<const cell::Cell*> masters;
  for (const std::string& m : nl.master_names()) masters.push_back(&lib.get(m));
  ResolvedCells rc;
  rc.per_gate.reserve(nl.gates().size());
  for (const auto& g : nl.gates()) rc.per_gate.push_back(masters[g.master]);
  return rc;
}

/// Packs `gates` row-major into a strip starting at (x0, y0) with the
/// given width; returns the used height. Rows have std-cell height.
double pack_scanline(const std::vector<std::uint32_t>& gates,
                     const ResolvedCells& rc, double x0, double y0,
                     double strip_w, double row_h, Floorplan& fp) {
  double x = x0, y = y0;
  for (const std::uint32_t g : gates) {
    const cell::Cell* c = rc.per_gate[g];
    if (x + c->width_um > x0 + strip_w + 1e-9) {
      x = x0;
      y += row_h;
    }
    fp.gate_rects[g] = Rect{x, y, c->width_um, row_h};
    fp.placed[g] = 1;
    x += c->width_um;
  }
  return (y - y0) + row_h;
}

double group_logic_area(const std::vector<std::uint32_t>& gates,
                        const ResolvedCells& rc) {
  double a = 0.0;
  for (const std::uint32_t g : gates) a += rc.per_gate[g]->area_um2;
  return a;
}

/// Parses the <N> of a "col<N>" group name. Returns -1 unless the whole
/// suffix is a non-negative decimal integer — net names like "col_en" or
/// "col12x" must not crash (or silently misplace) the floorplan.
int parse_col_index(const std::string& name) {
  if (name.size() <= 3) return -1;
  long v = 0;
  for (std::size_t i = 3; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return -1;
    v = v * 10 + (c - '0');
    if (v > 1'000'000) return -1;  // implausible column count
  }
  return static_cast<int>(v);
}

}  // namespace

Floorplan sdp_place(const FlatNetlist& nl, const cell::Library& lib,
                    const rtlgen::MacroConfig& cfg, const SdpOptions& opt,
                    core::DiagEngine* diag) {
  OBS_SPAN("layout.place");
  const ResolvedCells rc = resolve(nl, lib);
  const tech::TechNode& node = lib.node();
  const double row_h = node.std_row_height_um;

  Floorplan fp;
  fp.gate_rects.assign(nl.gates().size(), Rect{});
  fp.placed.assign(nl.gates().size(), 0);

  // Partition gates by group; split column groups into bitcells vs logic.
  const auto& group_names = nl.group_names();
  std::vector<std::vector<std::uint32_t>> bitcells(group_names.size());
  std::vector<std::vector<std::uint32_t>> logic(group_names.size());
  for (std::uint32_t g = 0; g < nl.gates().size(); ++g) {
    const auto& fg = nl.gates()[g];
    (rc.per_gate[g]->is_bitcell() ? bitcells : logic)[fg.group].push_back(g);
  }

  const cell::Cell& bc = lib.get(rtlgen::bitcell_cell_name(cfg.bitcell));
  const double cell_w = bc.width_um, cell_h = bc.height_um;
  const double array_h = cfg.rows * cell_h;

  // Column strip geometry: bitcell banks + a logic sub-strip sized from
  // the column's logic area.
  double col_logic_area = 0.0;
  for (std::size_t gi = 0; gi < group_names.size(); ++gi) {
    if (group_names[gi].rfind("col", 0) == 0 && !logic[gi].empty()) {
      col_logic_area = std::max(col_logic_area,
                                group_logic_area(logic[gi], rc));
    }
  }
  // Strip width: the column's tree/S&A logic stacks *vertically* beside
  // the bitcell bank (as in the silicon die photo, where adders extend
  // the column pitch downward). The width is solved so the whole macro
  // lands near a 2:1 aspect ratio:
  //   cols * (bank_w + lw) ~ 2 * col_area / (lw * util).
  const double u = opt.logic_utilization;
  const double bank_w = cfg.mcr * cell_w;
  const double uc = u * cfg.cols;
  const double disc = uc * bank_w * uc * bank_w +
                      8.0 * uc * std::max(col_logic_area, 1.0);
  const double lw_solved =
      (-uc * bank_w + std::sqrt(disc)) / (2.0 * uc);
  const double logic_strip_w = std::max(3.0, lw_solved);
  const double strip_h = std::max(
      array_h,
      std::ceil(col_logic_area / (logic_strip_w * u) / row_h) * row_h);
  const double strip_w = bank_w + logic_strip_w;

  // Peripheral block sizing.
  auto block_height = [&](double area, double width) {
    return std::ceil(area / (width * opt.logic_utilization) / row_h) * row_h;
  };

  // Region origins: wldrv left, array center, OFU right, wrport below,
  // align above.
  // The bottom peripheral strip holds the write port plus any top-level
  // glue (control distribution trees) and unclassified logic.
  std::vector<std::uint32_t> bottom;
  double wl_area = 0.0, al_area = 0.0, ofu_area = 0.0;
  for (std::size_t gi = 0; gi < group_names.size(); ++gi) {
    const std::string& name = group_names[gi];
    const double a = group_logic_area(logic[gi], rc);
    if (name == "wldrv") {
      wl_area = a;
    } else if (name == "align") {
      al_area = a;
    } else if (name.rfind("ofu_g", 0) == 0) {
      ofu_area += a;
    } else if (name.rfind("col", 0) != 0) {
      bottom.insert(bottom.end(), logic[gi].begin(), logic[gi].end());
    }
  }
  const double wr_area = group_logic_area(bottom, rc);
  const double array_w = cfg.cols * strip_w;
  const double wl_w =
      wl_area > 0
          ? std::max(2 * row_h,
                     wl_area / (strip_h * opt.logic_utilization))
          : 0.0;
  const double ofu_w =
      ofu_area > 0
          ? std::max(2 * row_h,
                     ofu_area / (strip_h * opt.logic_utilization))
          : 0.0;
  const double wr_h = wr_area > 0 ? block_height(wr_area, array_w) : 0.0;
  const double al_h = al_area > 0 ? block_height(al_area, array_w) : 0.0;

  const double ax0 = wl_w, ay0 = wr_h;  // array origin

  // Place per-column strips.
  int n_cols_placed = 0;
  for (std::size_t gi = 0; gi < group_names.size(); ++gi) {
    const std::string& name = group_names[gi];
    if (name.rfind("col", 0) != 0 || name.rfind("ofu", 0) == 0) continue;
    const int col = parse_col_index(name);
    if (col < 0) {
      if (diag) {
        diag->warning("FP-BADGROUP",
                      "group name starts with 'col' but is not of the "
                      "col<N> shape; not placed as a column strip",
                      name, "sdp_place");
      }
      continue;
    }
    if (col >= cfg.cols) {
      if (diag) {
        diag->warning("FP-BADGROUP",
                      "column index " + std::to_string(col) +
                          " is outside the configured 0.." +
                          std::to_string(cfg.cols - 1) + " range",
                      name, "sdp_place");
      }
      continue;
    }
    ++n_cols_placed;
    const double sx = ax0 + col * strip_w;
    // Bitcells in (row, bank) generation order onto the grid.
    const auto& cells = bitcells[gi];
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const int r = static_cast<int>(i) / cfg.mcr;
      const int b = static_cast<int>(i) % cfg.mcr;
      fp.gate_rects[cells[i]] =
          Rect{sx + b * cell_w, ay0 + r * cell_h, cell_w, cell_h};
      fp.placed[cells[i]] = 1;
    }
    // Column logic in the adjacent strip.
    pack_scanline(logic[gi], rc, sx + cfg.mcr * cell_w, ay0, logic_strip_w,
                  row_h, fp);
    fp.regions.push_back({name, Rect{sx, ay0, strip_w, strip_h}});
  }
  if (n_cols_placed != cfg.cols) {
    throw std::invalid_argument("sdp_place: netlist does not look like a "
                                "generated macro (missing column groups)");
  }

  // Peripheral blocks.
  pack_scanline(bottom, rc, ax0, 0.0, array_w, row_h, fp);
  fp.regions.push_back({"wrport", Rect{ax0, 0, array_w, wr_h}});
  double ofu_y = ay0;
  for (std::size_t gi = 0; gi < group_names.size(); ++gi) {
    const std::string& name = group_names[gi];
    if (name == "wldrv") {
      pack_scanline(logic[gi], rc, 0.0, ay0, wl_w, row_h, fp);
      fp.regions.push_back({name, Rect{0, ay0, wl_w, strip_h}});
    } else if (name == "align") {
      pack_scanline(logic[gi], rc, ax0, ay0 + strip_h, array_w, row_h, fp);
      fp.regions.push_back({name, Rect{ax0, ay0 + strip_h, array_w, al_h}});
    } else if (name.rfind("ofu_g", 0) == 0) {
      const double used = pack_scanline(logic[gi], rc, ax0 + array_w, ofu_y,
                                        ofu_w, row_h, fp);
      fp.regions.push_back({name, Rect{ax0 + array_w, ofu_y, ofu_w, used}});
      ofu_y += used;
    }
  }

  // Outline with whitespace margin.
  double w = 0.0, h = 0.0;
  for (std::uint32_t g = 0; g < fp.gate_rects.size(); ++g) {
    if (!fp.placed[g]) continue;
    w = std::max(w, fp.gate_rects[g].x2());
    h = std::max(h, fp.gate_rects[g].y2());
  }
  fp.outline = Rect{0, 0, w * std::sqrt(opt.whitespace_factor),
                    h * std::sqrt(opt.whitespace_factor)};
  double cell_area = 0.0;
  for (const auto* c : rc.per_gate) cell_area += c->area_um2;
  fp.utilization = cell_area / fp.outline.area();
  fp.wirelength_um = total_hpwl_um(nl, fp);
  return fp;
}

Floorplan scattered_place(const FlatNetlist& nl, const cell::Library& lib,
                          unsigned seed, const SdpOptions& opt) {
  const ResolvedCells rc = resolve(nl, lib);
  const double row_h = lib.node().std_row_height_um;
  Floorplan fp;
  fp.gate_rects.assign(nl.gates().size(), Rect{});
  fp.placed.assign(nl.gates().size(), 0);

  double cell_area = 0.0;
  std::vector<std::uint32_t> order(nl.gates().size());
  for (std::uint32_t g = 0; g < order.size(); ++g) {
    order[g] = g;
    cell_area += rc.per_gate[g]->area_um2;
  }
  std::mt19937 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);

  const double target_w =
      std::sqrt(cell_area / opt.logic_utilization);
  // Bitcells keep their height; pack everything row-major. Rows must be
  // tall enough for the tallest cell placed in them; use std row height
  // and let bitcells sit inside it.
  pack_scanline(order, rc, 0.0, 0.0, target_w, row_h, fp);
  double w = 0.0, h = 0.0;
  for (std::uint32_t g = 0; g < fp.gate_rects.size(); ++g) {
    w = std::max(w, fp.gate_rects[g].x2());
    h = std::max(h, fp.gate_rects[g].y2());
  }
  fp.outline = Rect{0, 0, w * std::sqrt(opt.whitespace_factor),
                    h * std::sqrt(opt.whitespace_factor)};
  fp.utilization = cell_area / fp.outline.area();
  fp.wirelength_um = total_hpwl_um(nl, fp);
  return fp;
}

double total_hpwl_um(const FlatNetlist& nl, const Floorplan& fp) {
  struct BBox {
    double x0 = 1e30, y0 = 1e30, x1 = -1e30, y1 = -1e30;
    int pins = 0;
  };
  std::vector<BBox> boxes(nl.net_count());
  for (std::uint32_t g = 0; g < nl.gates().size(); ++g) {
    if (!fp.placed[g]) continue;
    const Rect& r = fp.gate_rects[g];
    const double cx = r.x + r.w / 2, cy = r.y + r.h / 2;
    for (const auto& pc : nl.gates()[g].pins) {
      BBox& b = boxes[pc.net];
      b.x0 = std::min(b.x0, cx);
      b.y0 = std::min(b.y0, cy);
      b.x1 = std::max(b.x1, cx);
      b.y1 = std::max(b.y1, cy);
      ++b.pins;
    }
  }
  double total = 0.0;
  for (const BBox& b : boxes) {
    if (b.pins >= 2) total += (b.x1 - b.x0) + (b.y1 - b.y0);
  }
  return total;
}

sta::WireModel extract_wire_model(const FlatNetlist& nl, const Floorplan& fp,
                                  const tech::TechNode& node) {
  OBS_SPAN("layout.extract");
  struct BBox {
    double x0 = 1e30, y0 = 1e30, x1 = -1e30, y1 = -1e30;
    int pins = 0;
    int clock_pins = 0;
  };
  std::vector<BBox> boxes(nl.net_count());
  const auto& pin_names = nl.pin_names();
  for (std::uint32_t g = 0; g < nl.gates().size(); ++g) {
    if (!fp.placed[g]) continue;
    const Rect& r = fp.gate_rects[g];
    const double cx = r.x + r.w / 2, cy = r.y + r.h / 2;
    for (const auto& pc : nl.gates()[g].pins) {
      BBox& b = boxes[pc.net];
      b.x0 = std::min(b.x0, cx);
      b.y0 = std::min(b.y0, cy);
      b.x1 = std::max(b.x1, cx);
      b.y1 = std::max(b.y1, cy);
      ++b.pins;
      if (pin_names[pc.pin_name] == "CK") ++b.clock_pins;
    }
  }
  sta::WireModel wm;
  wm.per_net_cap_ff.assign(nl.net_count(), 0.0);
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    const BBox& b = boxes[n];
    if (b.pins < 2) continue;
    // Clock nets are built by clock-tree synthesis (buffered at every
    // level), not estimated as signal routes.
    if (b.clock_pins * 2 > b.pins) continue;
    // Steiner estimate: HPWL scaled by a bounded fanout-dependent factor
    // (beyond ~20 pins routed trees grow like sqrt(n), not linearly).
    const double hpwl = (b.x1 - b.x0) + (b.y1 - b.y0);
    const double factor =
        std::min(3.0, 1.0 + 0.08 * std::max(0, b.pins - 3));
    wm.per_net_cap_ff[n] = hpwl * factor * node.wire_c_ff_per_um;
  }
  return wm;
}

DrcReport run_drc(const FlatNetlist& nl, const cell::Library& lib,
                  const Floorplan& fp) {
  OBS_SPAN("layout.drc");
  const ResolvedCells rc = resolve(nl, lib);
  DrcReport rep;
  const double eps = 1e-6;
  // Spatial hash for overlap checks.
  const double bin = 10.0;
  std::unordered_map<std::int64_t, std::vector<std::uint32_t>> grid;
  auto key = [](int bx, int by) {
    return (static_cast<std::int64_t>(bx) << 32) ^
           static_cast<std::uint32_t>(by);
  };
  for (std::uint32_t g = 0; g < nl.gates().size(); ++g) {
    if (!fp.placed[g]) {
      rep.violations.push_back("gate " + std::to_string(g) + " (" +
                               rc.per_gate[g]->name + ") not placed");
      if (rep.violations.size() > 20) return rep;
      continue;
    }
    const Rect& r = fp.gate_rects[g];
    if (r.x < -eps || r.y < -eps || r.x2() > fp.outline.x2() + eps ||
        r.y2() > fp.outline.y2() + eps) {
      rep.violations.push_back("gate " + std::to_string(g) +
                               " outside outline");
      if (rep.violations.size() > 20) return rep;
    }
    for (int bx = static_cast<int>(r.x / bin);
         bx <= static_cast<int>(r.x2() / bin); ++bx) {
      for (int by = static_cast<int>(r.y / bin);
           by <= static_cast<int>(r.y2() / bin); ++by) {
        for (const std::uint32_t o : grid[key(bx, by)]) {
          const Rect& q = fp.gate_rects[o];
          if (r.x < q.x2() - eps && q.x < r.x2() - eps &&
              r.y < q.y2() - eps && q.y < r.y2() - eps) {
            rep.violations.push_back("overlap between gates " +
                                     std::to_string(g) + " and " +
                                     std::to_string(o));
            if (rep.violations.size() > 20) return rep;
          }
        }
        grid[key(bx, by)].push_back(g);
      }
    }
  }
  return rep;
}

LvsReport run_lvs(const FlatNetlist& nl, const cell::Library& lib,
                  const Floorplan& fp) {
  OBS_SPAN("layout.lvs");
  const ResolvedCells rc = resolve(nl, lib);
  LvsReport rep;
  if (fp.gate_rects.size() != nl.gates().size()) {
    rep.mismatches.push_back("placement database size mismatch");
    return rep;
  }
  for (std::uint32_t g = 0; g < nl.gates().size(); ++g) {
    if (!fp.placed[g]) {
      rep.mismatches.push_back("missing instance " + std::to_string(g));
      if (rep.mismatches.size() > 20) return rep;
      continue;
    }
    const cell::Cell* c = rc.per_gate[g];
    const Rect& r = fp.gate_rects[g];
    // Footprint must match the master (height may be the std row for
    // logic cells packed into rows).
    if (std::abs(r.w - c->width_um) > 1e-6) {
      rep.mismatches.push_back("footprint mismatch on gate " +
                               std::to_string(g) + " (" + c->name + ")");
      if (rep.mismatches.size() > 20) return rep;
    }
  }
  return rep;
}

}  // namespace syndcim::layout

#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "core/diag.hpp"
#include "netlist/flatten.hpp"
#include "rtlgen/arch.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

namespace syndcim::layout {

struct Rect {
  double x = 0, y = 0, w = 0, h = 0;
  [[nodiscard]] double x2() const { return x + w; }
  [[nodiscard]] double y2() const { return y + h; }
  [[nodiscard]] double area() const { return w * h; }
};

/// Placement result: one rectangle per gate of the flattened netlist.
struct Floorplan {
  Rect outline;
  std::vector<Rect> gate_rects;
  std::vector<std::uint8_t> placed;
  double utilization = 0.0;     ///< cell area / outline area
  double wirelength_um = 0.0;   ///< total HPWL over all nets

  struct Region {
    std::string name;
    Rect rect;
  };
  std::vector<Region> regions;

  [[nodiscard]] const Region* region(std::string_view name) const;
};

struct SdpOptions {
  double logic_utilization = 0.65;  ///< packing density inside logic strips
  double whitespace_factor = 1.12;  ///< outline margin (power grid, rings)
};

/// Structured-data-path placement (paper Sec. III-D): bitcells of each
/// compute column on a regular grid, that column's mux/tree/S&A logic in a
/// strip beside it, write port below, WL drivers left, alignment unit
/// above and OFU groups to the right — the regular layout the scalable
/// Innovus SDP script produces.
///
/// Column groups are recognized by the `col<N>` name shape; a group whose
/// name does not parse as a full non-negative integer after "col" is
/// skipped and reported through `diag` (rule FP-BADGROUP) instead of
/// aborting the placement.
[[nodiscard]] Floorplan sdp_place(const netlist::FlatNetlist& nl,
                                  const cell::Library& lib,
                                  const rtlgen::MacroConfig& cfg,
                                  const SdpOptions& opt = {},
                                  core::DiagEngine* diag = nullptr);

/// Ablation baseline: same cells packed row-major in shuffled order with
/// no structure (what undirected APR placement degenerates to for a
/// datapath this regular).
[[nodiscard]] Floorplan scattered_place(const netlist::FlatNetlist& nl,
                                        const cell::Library& lib,
                                        unsigned seed,
                                        const SdpOptions& opt = {});

/// Total half-perimeter wirelength over all nets (gate centers as pins).
[[nodiscard]] double total_hpwl_um(const netlist::FlatNetlist& nl,
                                   const Floorplan& fp);

/// Per-net wire capacitance back-annotation for STA/power.
[[nodiscard]] sta::WireModel extract_wire_model(const netlist::FlatNetlist& nl,
                                                const Floorplan& fp,
                                                const tech::TechNode& node);

struct DrcReport {
  std::vector<std::string> violations;
  [[nodiscard]] bool clean() const { return violations.empty(); }
};
/// Checks: every gate placed, inside the outline, no overlaps, bitcells
/// pitch-aligned to their grid.
[[nodiscard]] DrcReport run_drc(const netlist::FlatNetlist& nl,
                                const cell::Library& lib,
                                const Floorplan& fp);

struct LvsReport {
  std::vector<std::string> mismatches;
  [[nodiscard]] bool clean() const { return mismatches.empty(); }
};
/// Layout-vs-schematic consistency: the placement database must contain
/// exactly the netlist's instances with footprints matching their masters.
[[nodiscard]] LvsReport run_lvs(const netlist::FlatNetlist& nl,
                                const cell::Library& lib,
                                const Floorplan& fp);

}  // namespace syndcim::layout

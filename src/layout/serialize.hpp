#pragma once
#include <cstddef>
#include <string>
#include <string_view>

#include "layout/floorplan.hpp"

namespace syndcim::layout {

// Stable binary codecs for the layout artifact payloads (placed tier;
// Drc/Lvs ride inside the route artifact). Fixed little-endian layout
// with bit-exact doubles; decoders throw core::BinDecodeError.

[[nodiscard]] std::string encode_floorplan(const Floorplan& fp);
[[nodiscard]] Floorplan decode_floorplan(std::string_view payload);

[[nodiscard]] std::string encode_drc_report(const DrcReport& drc);
[[nodiscard]] DrcReport decode_drc_report(std::string_view payload);

[[nodiscard]] std::string encode_lvs_report(const LvsReport& lvs);
[[nodiscard]] LvsReport decode_lvs_report(std::string_view payload);

[[nodiscard]] std::size_t deep_bytes(const Floorplan& fp);
[[nodiscard]] std::size_t deep_bytes(const DrcReport& drc);
[[nodiscard]] std::size_t deep_bytes(const LvsReport& lvs);

}  // namespace syndcim::layout

#include "layout/route.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace syndcim::layout {

RouteReport global_route(const netlist::FlatNetlist& nl, const Floorplan& fp,
                         const tech::TechNode& node, double gcell_um,
                         double capacity_derate) {
  OBS_SPAN("layout.route");
  if (gcell_um <= 0 || capacity_derate <= 0) {
    throw std::invalid_argument("global_route: bad parameters");
  }
  RouteReport rep;
  RoutingGrid& g = rep.grid;
  g.gcell_um = gcell_um;
  g.nx = std::max(1, static_cast<int>(std::ceil(fp.outline.x2() / gcell_um)));
  g.ny = std::max(1, static_cast<int>(std::ceil(fp.outline.y2() / gcell_um)));
  g.demand.assign(static_cast<std::size_t>(g.nx) * g.ny, 0);
  // Tracks crossing one gcell per layer = gcell span / pitch; four signal
  // layers (M2-M5 of a typical 40nm stack), derated for the power grid
  // and clock tree.
  g.capacity = static_cast<std::uint32_t>(
      std::max(1.0, 4.0 * capacity_derate * gcell_um /
                        node.track_pitch_um));

  // Collect pin positions per net.
  struct Pt {
    float x, y;
  };
  std::vector<std::vector<Pt>> pins(nl.net_count());
  for (std::uint32_t i = 0; i < nl.gates().size(); ++i) {
    if (!fp.placed[i]) continue;
    const Rect& r = fp.gate_rects[i];
    const Pt c{static_cast<float>(r.x + r.w / 2),
               static_cast<float>(r.y + r.h / 2)};
    for (const auto& pc : nl.gates()[i].pins) {
      pins[pc.net].push_back(c);
    }
  }

  auto cell_of = [&](double v, int n) {
    return std::clamp(static_cast<int>(v / gcell_um), 0, n - 1);
  };
  auto add_h = [&](double x0, double x1, double y) {
    if (x1 < x0) std::swap(x0, x1);
    const int cy = cell_of(y, g.ny);
    for (int cx = cell_of(x0, g.nx); cx <= cell_of(x1, g.nx); ++cx) {
      ++g.demand[static_cast<std::size_t>(cy) * g.nx + cx];
    }
    rep.total_routed_um += x1 - x0;
  };
  auto add_v = [&](double x, double y0, double y1) {
    if (y1 < y0) std::swap(y0, y1);
    const int cx = cell_of(x, g.nx);
    for (int cy = cell_of(y0, g.ny); cy <= cell_of(y1, g.ny); ++cy) {
      ++g.demand[static_cast<std::size_t>(cy) * g.nx + cx];
    }
    rep.total_routed_um += y1 - y0;
  };

  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    auto& p = pins[n];
    if (p.size() < 2) continue;
    // Nets with enormous fanout are clock/reset spines owned by CTS
    // (same convention as the wire extraction).
    if (p.size() > 512) continue;
    // Trunk at the median y, spanning min..max x.
    std::vector<float> ys;
    ys.reserve(p.size());
    float x0 = p[0].x, x1 = p[0].x;
    for (const Pt& q : p) {
      ys.push_back(q.y);
      x0 = std::min(x0, q.x);
      x1 = std::max(x1, q.x);
    }
    std::nth_element(ys.begin(), ys.begin() + ys.size() / 2, ys.end());
    const float ty = ys[ys.size() / 2];
    add_h(x0, x1, ty);
    const int trunk_row = cell_of(ty, g.ny);
    for (const Pt& q : p) {
      // Pins in the trunk's own gcell row connect with intra-cell jogs
      // that don't consume a global vertical track.
      if (cell_of(q.y, g.ny) != trunk_row) add_v(q.x, q.y, ty);
    }
  }

  double util_sum = 0.0;
  int used_cells = 0;
  for (const std::uint32_t d : g.demand) {
    if (d == 0) continue;
    const double u = static_cast<double>(d) / g.capacity;
    rep.max_utilization = std::max(rep.max_utilization, u);
    util_sum += u;
    ++used_cells;
    if (d > g.capacity) ++rep.overflow_gcells;
  }
  rep.avg_utilization = used_cells ? util_sum / used_cells : 0.0;
  return rep;
}

}  // namespace syndcim::layout

#pragma once
// GEMM-to-macro decomposition and phase scheduling. Pure arithmetic over
// the netmap model vocabulary — no frontier/dse types, so the math is
// unit-testable against analytic op counts in isolation:
//
//   tile_layer      cuts Y[m,n] = X[m,k] * W[k,n] into a k_tiles x
//                   n_tiles grid of weight-stationary tiles; every tile
//                   holds a rows-deep slice of the reduction for
//                   cols/weight_bits output columns.
//   schedule_layer  interleaves weight-update and MAC phases over the
//                   tiles of one layer spread across `count` identical
//                   macros, hiding weight loads behind MACs when MCR >= 2
//                   permits double-buffering, and accounts every idle
//                   (dead) macro cycle.
#include "netmap/model.hpp"

namespace syndcim::netmap {

/// Decomposition of one layer's GEMM onto a (rows x cols) macro at a
/// given weight precision. Tiles cover the GEMM exactly, with no
/// overlap: k_tiles * n_tiles tiles, the last row/column of the grid
/// carrying the (possibly partial) tails.
struct TileGrid {
  long rows = 0;           ///< macro reduction depth (slice height)
  long k_tiles = 0;        ///< ceil(k / rows) reduction slices
  long n_tiles = 0;        ///< ceil(n / outs_per_tile) output slices
  long outs_per_tile = 0;  ///< cols / weight_bits output columns per tile
  long tail_k = 0;         ///< reduction depth of the last k slice
  long tail_n = 0;         ///< outputs in the last n slice

  [[nodiscard]] long tiles() const { return k_tiles * n_tiles; }
};

/// Tiles `layer` onto a rows x cols macro storing `weight_bits`-bit
/// weights. Throws std::invalid_argument when the macro cannot hold even
/// one output column (cols < weight_bits) or dimensions are non-positive.
[[nodiscard]] TileGrid tile_layer(const Layer& layer, int rows, int cols,
                                  int weight_bits);

/// Clock/architecture facts of one macro type, as the scheduler needs
/// them. Frequencies are the *effective* run clocks (spec target capped
/// at the characterized fmax).
struct MacroTiming {
  double mac_mhz = 0.0;
  double wupdate_mhz = 0.0;
  int mcr = 1;             ///< >= 2 enables weight/MAC double-buffering
  int latency_cycles = 0;  ///< pipeline fill, drained once per macro
};

/// One layer's phase schedule across `count` macros of one type. Cycle
/// totals are exact analytic op counts (the conservation invariants the
/// tests check); times roll the two clock domains together.
struct LayerSchedule {
  long tiles = 0;
  int n_used = 0;          ///< macros actually running: min(count, tiles)
  long tiles_busiest = 0;  ///< ceil(tiles / n_used)
  bool double_buffered = false;

  long mac_cycles_per_tile = 0;   ///< m * (input_bits + 1) serial phases
  long load_cycles_per_tile = 0;  ///< 2 * rows weight-update cycles
  long total_mac_cycles = 0;      ///< tiles * mac_cycles_per_tile
  long total_load_cycles = 0;     ///< tiles * load_cycles_per_tile

  /// Weight-update time the busiest macro cannot hide behind MACs. With
  /// double-buffering this is the first load plus any load overhang on
  /// later tiles; without, every load is exposed.
  double exposed_load_us = 0.0;
  /// Layer wall time: busiest macro's phase chain + one pipeline drain.
  double time_us = 0.0;
  /// Idle MAC-clock cycles across the fleet: less-loaded macros waiting
  /// for the busiest one, plus the n_used pipeline drains.
  double dead_cycles = 0.0;
};

/// Schedules `grid`'s tiles across `count` macros. `count` must be >= 1;
/// macros beyond `grid.tiles()` stay unused (n_used is clamped).
[[nodiscard]] LayerSchedule schedule_layer(const Layer& layer,
                                           const TileGrid& grid,
                                           const MacroTiming& timing,
                                           int count);

}  // namespace syndcim::netmap

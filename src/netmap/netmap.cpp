#include "netmap/netmap.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"
#include "serve/json.hpp"

namespace syndcim::netmap {

namespace {

std::string jnum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Dynamic-energy activity scaling (same shape as the mapper's model):
/// a fully dense operand stream toggles ~1.6x the characterization
/// activity, an almost-empty one still burns the 0.4 floor (clocking,
/// leakage-equivalent).
double density_scale(double density) { return 0.4 + 1.2 * density; }

/// Per-layer mapping metrics for (candidate, count). The caller
/// guarantees cand.supports(layer).
LayerAssignment evaluate_layer(const Layer& layer, std::size_t layer_index,
                               const MacroCandidate& cand,
                               std::size_t cand_index, int count) {
  OBS_SPAN("netmap.evaluate");
  LayerAssignment a;
  a.layer_index = layer_index;
  a.candidate_index = cand_index;
  a.count = count;
  a.input_bits_eff = cand.effective_input_bits(layer.input_bits);
  a.weight_bits_eff = cand.effective_weight_bits(layer.weight_bits);

  // The macro runs at its supported precision: serial cycles follow the
  // effective input width, column packing the effective weight width.
  Layer eff = layer;
  eff.input_bits = a.input_bits_eff;
  eff.weight_bits = a.weight_bits_eff;
  a.grid = tile_layer(eff, cand.rows, cand.cols, a.weight_bits_eff);

  MacroTiming t;
  t.mac_mhz = cand.mac_mhz;
  t.wupdate_mhz = cand.wupdate_mhz;
  t.mcr = cand.mcr;
  t.latency_cycles = cand.latency_cycles;
  a.sched = schedule_layer(eff, a.grid, t, count);
  a.time_us = a.sched.time_us;

  // power_uw / mhz = pJ per cycle per macro, at characterization
  // activity; scale by operand densities. Weight updates drive only the
  // SRAM write path (~half the rail); dead macros are clock-gated down
  // to a 10% idle floor.
  const double e_mac_cycle_pj = cand.power_uw / cand.mac_mhz;
  const double e_load_cycle_pj = 0.5 * cand.power_uw / cand.wupdate_mhz;
  a.mac_energy_pj =
      static_cast<double>(a.sched.total_mac_cycles) * e_mac_cycle_pj *
      density_scale(layer.input_density * layer.weight_density);
  a.write_energy_pj = static_cast<double>(a.sched.total_load_cycles) *
                      e_load_cycle_pj * density_scale(layer.weight_density);
  a.dead_energy_pj = a.sched.dead_cycles * e_mac_cycle_pj * 0.1;

  // Useful word-MACs against the MAC capacity the used macros had over
  // the layer's wall time: rows x outs_per_tile bit-plane MACs per
  // cycle, (input_bits_eff + 1) cycles per word.
  const double cap_macs =
      static_cast<double>(a.sched.n_used) * a.time_us * cand.mac_mhz *
      static_cast<double>(a.grid.rows) *
      static_cast<double>(a.grid.outs_per_tile) /
      static_cast<double>(a.input_bits_eff + 1);
  a.utilization =
      cap_macs > 0.0 ? static_cast<double>(layer.macs()) / cap_macs : 0.0;
  return a;
}

struct FleetView {
  std::vector<FleetEntry> entries;
  int macros = 0;
  double area_um2 = 0.0;
};

/// Owned hardware of an assignment set: one bank per macro type, sized
/// by the busiest layer using it (layers run sequentially, so banks are
/// reused across layers).
FleetView fleet_of(const std::vector<LayerAssignment>& assigns,
                   const std::vector<MacroCandidate>& cands) {
  std::map<std::size_t, int> max_count;  // ordered: deterministic output
  for (const LayerAssignment& a : assigns) {
    int& c = max_count[a.candidate_index];
    c = std::max(c, a.sched.n_used);
  }
  FleetView f;
  for (const auto& [idx, count] : max_count) {
    FleetEntry e;
    e.candidate_index = idx;
    e.count = count;
    e.area_um2 = static_cast<double>(count) * cands[idx].area_um2;
    f.entries.push_back(e);
    f.macros += count;
    f.area_um2 += e.area_um2;
  }
  return f;
}

bool fits_budget(const FleetView& f, const Budget& b) {
  if (f.macros > b.max_macros) return false;
  if (b.max_area_um2 > 0.0 && f.area_um2 > b.max_area_um2) return false;
  return true;
}

double total_time(const std::vector<LayerAssignment>& a) {
  double t = 0.0;
  for (const LayerAssignment& x : a) t += x.time_us;
  return t;
}

double total_energy(const std::vector<LayerAssignment>& a) {
  double e = 0.0;
  for (const LayerAssignment& x : a) e += x.energy_pj();
  return e;
}

}  // namespace

int MacroCandidate::effective_input_bits(int bits) const {
  for (const int b : input_bits) {
    if (b >= bits) return b;
  }
  return -1;
}

int MacroCandidate::effective_weight_bits(int bits) const {
  for (const int b : weight_bits) {
    if (b >= bits) return b;
  }
  return -1;
}

bool MacroCandidate::supports(const Layer& layer) const {
  const int wb = effective_weight_bits(layer.weight_bits);
  return effective_input_bits(layer.input_bits) > 0 && wb > 0 && cols >= wb &&
         rows > 0 && mac_mhz > 0.0 && wupdate_mhz > 0.0;
}

std::vector<MacroCandidate> candidates_from_frontier(
    const dse::SweepReport& report) {
  std::vector<MacroCandidate> out;
  out.reserve(report.frontier.size());
  for (const dse::FrontierPoint& fp : report.frontier) {
    const core::PerfSpec& spec = report.per_spec[fp.spec_index].spec;
    MacroCandidate c;
    c.point_id = fp.point_id;
    c.label = fp.point.label;
    c.rows = fp.point.cfg.rows;
    c.cols = fp.point.cfg.cols;
    c.mcr = fp.point.cfg.mcr;
    c.input_bits = fp.point.cfg.input_bits;
    c.weight_bits = fp.point.cfg.weight_bits;
    std::sort(c.input_bits.begin(), c.input_bits.end());
    std::sort(c.weight_bits.begin(), c.weight_bits.end());
    c.fmax_mhz = fp.point.ppa.fmax_mhz;
    // Effective run clocks: the spec target the point was characterized
    // at, capped by what it actually closes timing at.
    c.mac_mhz = c.fmax_mhz > 0.0
                    ? std::min(spec.mac_freq_mhz, c.fmax_mhz)
                    : spec.mac_freq_mhz;
    c.wupdate_mhz = fp.point.ppa.write_fmax_mhz > 0.0
                        ? std::min(spec.wupdate_freq_mhz,
                                   fp.point.ppa.write_fmax_mhz)
                        : spec.wupdate_freq_mhz;
    c.power_uw = fp.point.ppa.power_uw;
    c.area_um2 = fp.point.ppa.area_um2;
    c.energy_per_mac_fj = fp.point.ppa.energy_per_mac_fj;
    c.latency_cycles = fp.point.ppa.latency_cycles;
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<MacroCandidate> candidates_from_frontier_json(
    const std::string& json_text, core::DiagEngine& diag,
    const std::string& source) {
  std::vector<MacroCandidate> out;
  serve::JsonValue doc;
  std::string err;
  if (!serve::json_parse(json_text, &doc, &err) || !doc.is_object()) {
    diag.error("NETMAP-BADFRONTIER",
               err.empty() ? "frontier is not a JSON object" : err, "",
               source);
    return out;
  }
  const serve::JsonValue* frontier = doc.find("frontier");
  if (frontier == nullptr || !frontier->is_array()) {
    diag.error("NETMAP-BADFRONTIER", "document has no 'frontier' array", "",
               source);
    return out;
  }
  for (std::size_t i = 0; i < frontier->size(); ++i) {
    const serve::JsonValue& p = frontier->at(i);
    const std::string object = "frontier[" + std::to_string(i) + "]";
    const serve::JsonValue* id = p.find("point_id");
    const serve::JsonValue* macro = p.find("macro");
    if (id == nullptr || !id->is_string() || macro == nullptr ||
        !macro->is_object()) {
      diag.error("NETMAP-BADFRONTIER",
                 "point lacks 'point_id'/'macro' — regenerate the frontier "
                 "with a current `syndcim sweep`",
                 object, source);
      continue;
    }
    if (const serve::JsonValue* f = p.find("feasible");
        f != nullptr && f->is_bool() && !f->as_bool()) {
      continue;
    }
    MacroCandidate c;
    c.point_id = id->as_string();
    if (const serve::JsonValue* l = p.find("label"); l && l->is_string()) {
      c.label = l->as_string();
    }
    const auto num = [&](const serve::JsonValue& obj, const char* key,
                         double fallback) {
      const serve::JsonValue* v = obj.find(key);
      return v != nullptr ? v->as_number(fallback) : fallback;
    };
    c.rows = static_cast<int>(num(*macro, "rows", 0));
    c.cols = static_cast<int>(num(*macro, "cols", 0));
    c.mcr = static_cast<int>(num(*macro, "mcr", 1));
    const auto bits_list = [&](const char* key, std::vector<int>* dst) {
      const serve::JsonValue* v = macro->find(key);
      if (v == nullptr || !v->is_array()) return;
      for (std::size_t j = 0; j < v->size(); ++j) {
        dst->push_back(static_cast<int>(v->at(j).as_number(0)));
      }
      std::sort(dst->begin(), dst->end());
    };
    bits_list("input_bits", &c.input_bits);
    bits_list("weight_bits", &c.weight_bits);
    c.fmax_mhz = num(p, "fmax_mhz", 0.0);
    const double spec_mac = num(*macro, "mac_mhz", 0.0);
    const double spec_wup = num(*macro, "wupdate_mhz", 0.0);
    const double write_fmax = num(*macro, "write_fmax_mhz", 0.0);
    c.mac_mhz =
        c.fmax_mhz > 0.0 ? std::min(spec_mac, c.fmax_mhz) : spec_mac;
    c.wupdate_mhz =
        write_fmax > 0.0 ? std::min(spec_wup, write_fmax) : spec_wup;
    c.power_uw = num(p, "power_uw", 0.0);
    c.area_um2 = num(p, "area_um2", 0.0);
    c.energy_per_mac_fj = num(p, "energy_per_mac_fj", 0.0);
    c.latency_cycles = static_cast<int>(num(p, "latency_cycles", 0));
    if (c.rows <= 0 || c.cols <= 0 || c.input_bits.empty() ||
        c.weight_bits.empty() || !(c.mac_mhz > 0.0) ||
        !(c.wupdate_mhz > 0.0)) {
      diag.error("NETMAP-BADFRONTIER",
                 "point has a degenerate macro description", object, source);
      continue;
    }
    out.push_back(std::move(c));
  }
  if (out.empty() && !diag.has_errors()) {
    diag.error("NETMAP-BADFRONTIER", "frontier has no feasible points", "",
               source);
  }
  return out;
}

NetmapResult run_netmap(const Model& model,
                        const std::vector<MacroCandidate>& candidates,
                        const NetmapOptions& opt) {
  OBS_SPAN("netmap.run");
  if (model.layers.empty()) {
    throw std::invalid_argument("run_netmap: model has no layers");
  }
  if (candidates.empty()) {
    throw std::invalid_argument("run_netmap: empty candidate pool");
  }
  if (opt.budget.max_macros < 1) {
    throw std::invalid_argument("run_netmap: budget needs >= 1 macro");
  }

  NetmapResult res;
  res.model = model;
  res.candidates = candidates;
  res.budget = opt.budget;
  const double inf = std::numeric_limits<double>::infinity();

  // Per-layer eligibility: supports the precision/shape, and a single
  // instance alone fits the area budget.
  std::vector<std::vector<std::size_t>> eligible(model.layers.size());
  for (std::size_t li = 0; li < model.layers.size(); ++li) {
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      if (!candidates[ci].supports(model.layers[li])) continue;
      if (opt.budget.max_area_um2 > 0.0 &&
          candidates[ci].area_um2 > opt.budget.max_area_um2) {
        continue;
      }
      eligible[li].push_back(ci);
    }
    if (eligible[li].empty()) {
      throw std::invalid_argument(
          "run_netmap: no candidate supports layer '" +
          model.layers[li].name + "' within the budget");
    }
  }

  obs::MetricsRegistry& metrics = obs::metrics();
  std::uint64_t moves = 0;

  // ---- Homogeneous baseline ------------------------------------------
  // For every candidate that can run the whole model: start every layer
  // at count 1 and latency-refine counts under the budget (the fleet a
  // latency-seeking user would build from one frontier point). The best
  // baseline on energy is both the published comparison and stage B's
  // energy cap.
  const auto homog_assign = [&](std::size_t ci) {
    std::vector<LayerAssignment> a;
    a.reserve(model.layers.size());
    for (std::size_t li = 0; li < model.layers.size(); ++li) {
      a.push_back(evaluate_layer(model.layers[li], li, candidates[ci], ci, 1));
    }
    for (int step = 0; step < opt.max_moves; ++step) {
      double best_gain = 1e-12;
      std::size_t best_li = model.layers.size();
      for (std::size_t li = 0; li < model.layers.size(); ++li) {
        if (a[li].count >= a[li].sched.tiles) continue;
        LayerAssignment trial = evaluate_layer(
            model.layers[li], li, candidates[ci], ci, a[li].count + 1);
        std::vector<LayerAssignment> next = a;
        next[li] = trial;
        if (!fits_budget(fleet_of(next, candidates), opt.budget)) continue;
        const double gain = a[li].time_us - trial.time_us;
        if (gain > best_gain) {
          best_gain = gain;
          best_li = li;
        }
      }
      if (best_li >= model.layers.size()) break;
      a[best_li] = evaluate_layer(model.layers[best_li], best_li,
                                  candidates[ci], ci, a[best_li].count + 1);
      ++moves;
    }
    return a;
  };

  std::vector<LayerAssignment> homog_best;
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    bool covers = true;
    for (std::size_t li = 0; li < model.layers.size() && covers; ++li) {
      covers = std::find(eligible[li].begin(), eligible[li].end(), ci) !=
               eligible[li].end();
    }
    if (!covers) continue;
    std::vector<LayerAssignment> a = homog_assign(ci);
    const double e = total_energy(a);
    const double t = total_time(a);
    const bool better =
        !res.homog.valid || e < res.homog.energy_pj ||
        (e == res.homog.energy_pj &&
         (t < res.homog.time_us ||
          (t == res.homog.time_us &&
           candidates[ci].point_id <
               candidates[res.homog.candidate_index].point_id)));
    if (better) {
      res.homog.valid = true;
      res.homog.candidate_index = ci;
      res.homog.energy_pj = e;
      res.homog.time_us = t;
      res.homog.count = fleet_of(a, candidates).macros;
      homog_best = std::move(a);
    }
  }
  const double energy_cap = res.homog.valid ? res.homog.energy_pj : inf;

  // ---- Stage A: per-layer energy-minimal selection at count 1 --------
  {
    OBS_SPAN("netmap.allocate");
    std::vector<LayerAssignment> assigns;
    assigns.reserve(model.layers.size());
    for (std::size_t li = 0; li < model.layers.size(); ++li) {
      LayerAssignment best;
      bool have = false;
      for (const std::size_t ci : eligible[li]) {
        LayerAssignment a =
            evaluate_layer(model.layers[li], li, candidates[ci], ci, 1);
        const bool better =
            !have || a.energy_pj() < best.energy_pj() ||
            (a.energy_pj() == best.energy_pj() &&
             (a.time_us < best.time_us ||
              (a.time_us == best.time_us &&
               candidates[ci].point_id <
                   candidates[best.candidate_index].point_id)));
        if (better) {
          best = std::move(a);
          have = true;
        }
      }
      assigns.push_back(std::move(best));
    }

    // Repair: merge macro types until the owned fleet fits the budget.
    // Each round retires the used type whose layers can move to other
    // used types for the least added energy.
    while (!fits_budget(fleet_of(assigns, candidates), opt.budget)) {
      const FleetView f = fleet_of(assigns, candidates);
      if (f.entries.size() <= 1) {
        throw std::invalid_argument(
            "run_netmap: budget cannot hold one macro of the only usable "
            "type");
      }
      double best_cost = inf;
      std::vector<LayerAssignment> best_next;
      for (const FleetEntry& victim : f.entries) {
        std::vector<LayerAssignment> next = assigns;
        bool ok = true;
        for (std::size_t li = 0; li < next.size() && ok; ++li) {
          if (next[li].candidate_index != victim.candidate_index) continue;
          LayerAssignment moved;
          bool have = false;
          for (const FleetEntry& host : f.entries) {
            if (host.candidate_index == victim.candidate_index) continue;
            if (std::find(eligible[li].begin(), eligible[li].end(),
                          host.candidate_index) == eligible[li].end()) {
              continue;
            }
            LayerAssignment a =
                evaluate_layer(model.layers[li], li,
                               candidates[host.candidate_index],
                               host.candidate_index, 1);
            if (!have || a.energy_pj() < moved.energy_pj()) {
              moved = std::move(a);
              have = true;
            }
          }
          if (!have) {
            ok = false;  // victim hosts a layer nobody else supports
            break;
          }
          next[li] = std::move(moved);
        }
        if (!ok) continue;
        const double cost = total_energy(next);
        if (cost < best_cost) {
          best_cost = cost;
          best_next = std::move(next);
        }
      }
      if (best_next.empty()) {
        throw std::invalid_argument(
            "run_netmap: fleet cannot fit the budget — a layer is pinned "
            "to a type the budget cannot hold");
      }
      assigns = std::move(best_next);
      ++moves;
    }

    // Guarded fallback: the energy guarantee (stage A <= every
    // homogeneous fleet) holds by construction; if type-merging repair
    // ever lands above the cap, adopt the baseline outright.
    if (res.homog.valid && total_energy(assigns) > energy_cap) {
      assigns = homog_best;
      res.fallback_homog = true;
    }

    // ---- Stage B: latency hill-climb under the energy cap ------------
    for (int step = 0; step < opt.max_moves; ++step) {
      double best_gain = 1e-12;
      double best_energy = inf;
      std::vector<LayerAssignment> best_next;
      for (std::size_t li = 0; li < assigns.size(); ++li) {
        // Move 1: one more macro on this layer.
        if (assigns[li].count < assigns[li].sched.tiles) {
          std::vector<LayerAssignment> next = assigns;
          next[li] = evaluate_layer(
              model.layers[li], li, candidates[assigns[li].candidate_index],
              assigns[li].candidate_index, assigns[li].count + 1);
          const double gain = assigns[li].time_us - next[li].time_us;
          const double e = total_energy(next);
          if (e <= energy_cap &&
              fits_budget(fleet_of(next, candidates), opt.budget) &&
              (gain > best_gain ||
               (gain == best_gain && e < best_energy))) {
            best_gain = gain;
            best_energy = e;
            best_next = std::move(next);
          }
        }
        // Move 2: switch this layer to a different type (same count).
        for (const std::size_t ci : eligible[li]) {
          if (ci == assigns[li].candidate_index) continue;
          std::vector<LayerAssignment> next = assigns;
          next[li] = evaluate_layer(model.layers[li], li, candidates[ci], ci,
                                    assigns[li].count);
          const double gain = assigns[li].time_us - next[li].time_us;
          const double e = total_energy(next);
          if (e <= energy_cap &&
              fits_budget(fleet_of(next, candidates), opt.budget) &&
              (gain > best_gain ||
               (gain == best_gain && e < best_energy))) {
            best_gain = gain;
            best_energy = e;
            best_next = std::move(next);
          }
        }
      }
      if (best_next.empty()) break;
      assigns = std::move(best_next);
      ++moves;
    }
    res.layers = std::move(assigns);
  }

  const FleetView fleet = fleet_of(res.layers, candidates);
  res.fleet = fleet.entries;
  res.fleet_macros = fleet.macros;
  res.fleet_area_um2 = fleet.area_um2;
  res.total_time_us = total_time(res.layers);
  res.total_energy_pj = total_energy(res.layers);
  double util_weighted = 0.0;
  for (const LayerAssignment& a : res.layers) {
    util_weighted += a.utilization *
                     static_cast<double>(model.layers[a.layer_index].macs());
  }
  const double macs = static_cast<double>(model.total_macs());
  res.utilization = macs > 0.0 ? util_weighted / macs : 0.0;

  metrics.counter("netmap.model.run").inc();
  metrics.counter("netmap.layer.mapped").inc(res.layers.size());
  metrics.counter("netmap.allocate.move").inc(moves);
  metrics.gauge("netmap.fleet.macros")
      .set(static_cast<double>(res.fleet_macros));
  metrics.gauge("netmap.fleet.area_um2").set(res.fleet_area_um2);
  return res;
}

std::string netmap_report_json(const NetmapResult& r) {
  std::ostringstream os;
  const auto jstr = [](const std::string& s) {
    return "\"" + serve::json_escape(s) + "\"";
  };
  const long macs = r.model.total_macs();
  os << "{\n  \"format\": \"syndcim-netmap\",\n  \"version\": 1"
     << ",\n  \"model\": {\"name\": " << jstr(r.model.name)
     << ", \"layers\": " << r.model.layers.size() << ", \"macs\": " << macs
     << "}"
     << ",\n  \"budget\": {\"max_macros\": " << r.budget.max_macros
     << ", \"max_area_um2\": " << jnum(r.budget.max_area_um2) << "}"
     << ",\n  \"candidates\": " << r.candidates.size()
     << ",\n  \"fallback_homog\": " << (r.fallback_homog ? "true" : "false")
     << ",\n  \"fleet\": [\n";
  for (std::size_t i = 0; i < r.fleet.size(); ++i) {
    const FleetEntry& e = r.fleet[i];
    const MacroCandidate& c = r.candidates[e.candidate_index];
    if (i) os << ",\n";
    os << "    {\"point_id\": " << jstr(c.point_id)
       << ", \"label\": " << jstr(c.label) << ", \"rows\": " << c.rows
       << ", \"cols\": " << c.cols << ", \"mcr\": " << c.mcr
       << ", \"count\": " << e.count
       << ", \"area_um2\": " << jnum(e.area_um2) << "}";
  }
  os << "\n  ],\n  \"fleet_macros\": " << r.fleet_macros
     << ",\n  \"fleet_area_um2\": " << jnum(r.fleet_area_um2)
     << ",\n  \"layers\": [\n";
  for (std::size_t i = 0; i < r.layers.size(); ++i) {
    const LayerAssignment& a = r.layers[i];
    const Layer& l = r.model.layers[a.layer_index];
    const MacroCandidate& c = r.candidates[a.candidate_index];
    if (i) os << ",\n";
    os << "    {\"name\": " << jstr(l.name) << ", \"kind\": \""
       << to_string(l.kind) << "\", \"m\": " << l.m << ", \"k\": " << l.k
       << ", \"n\": " << l.n << ", \"point_id\": " << jstr(c.point_id)
       << ", \"label\": " << jstr(c.label) << ", \"count\": " << a.count
       << ", \"used\": " << a.sched.n_used
       << ", \"input_bits\": " << a.input_bits_eff
       << ", \"weight_bits\": " << a.weight_bits_eff
       << ", \"k_tiles\": " << a.grid.k_tiles
       << ", \"n_tiles\": " << a.grid.n_tiles
       << ", \"tiles\": " << a.grid.tiles()
       << ", \"mac_cycles\": " << a.sched.total_mac_cycles
       << ", \"load_cycles\": " << a.sched.total_load_cycles
       << ", \"dead_cycles\": " << jnum(a.sched.dead_cycles)
       << ", \"double_buffered\": "
       << (a.sched.double_buffered ? "true" : "false")
       << ", \"time_us\": " << jnum(a.time_us)
       << ", \"mac_energy_pj\": " << jnum(a.mac_energy_pj)
       << ", \"write_energy_pj\": " << jnum(a.write_energy_pj)
       << ", \"dead_energy_pj\": " << jnum(a.dead_energy_pj)
       << ", \"energy_pj\": " << jnum(a.energy_pj())
       << ", \"utilization\": " << jnum(a.utilization) << "}";
  }
  os << "\n  ],\n  \"total\": {\"time_us\": " << jnum(r.total_time_us)
     << ", \"energy_pj\": " << jnum(r.total_energy_pj)
     << ", \"energy_per_mac_fj\": "
     << jnum(macs > 0 ? r.total_energy_pj * 1000.0 /
                            static_cast<double>(macs)
                      : 0.0)
     << ", \"utilization\": " << jnum(r.utilization)
     << ", \"macs\": " << macs << "}";
  os << ",\n  \"homog_baseline\": ";
  if (r.homog.valid) {
    const MacroCandidate& c = r.candidates[r.homog.candidate_index];
    os << "{\"valid\": true, \"point_id\": " << jstr(c.point_id)
       << ", \"label\": " << jstr(c.label)
       << ", \"count\": " << r.homog.count
       << ", \"time_us\": " << jnum(r.homog.time_us)
       << ", \"energy_pj\": " << jnum(r.homog.energy_pj) << "}";
  } else {
    os << "{\"valid\": false}";
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace syndcim::netmap

#include "netmap/tile.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

namespace syndcim::netmap {

TileGrid tile_layer(const Layer& layer, int rows, int cols,
                    int weight_bits) {
  OBS_SPAN("netmap.tile");
  if (rows <= 0 || cols <= 0 || weight_bits <= 0) {
    throw std::invalid_argument("tile_layer: non-positive macro dimension");
  }
  if (cols < weight_bits) {
    throw std::invalid_argument(
        "tile_layer: macro has " + std::to_string(cols) +
        " columns, cannot hold one " + std::to_string(weight_bits) +
        "-bit weight");
  }
  TileGrid g;
  g.rows = rows;
  g.outs_per_tile = cols / weight_bits;
  g.k_tiles = (layer.k + rows - 1) / rows;
  g.n_tiles = (layer.n + g.outs_per_tile - 1) / g.outs_per_tile;
  g.tail_k = layer.k - (g.k_tiles - 1) * rows;
  g.tail_n = layer.n - (g.n_tiles - 1) * g.outs_per_tile;
  return g;
}

LayerSchedule schedule_layer(const Layer& layer, const TileGrid& grid,
                             const MacroTiming& timing, int count) {
  OBS_SPAN("netmap.schedule");
  if (count < 1) {
    throw std::invalid_argument("schedule_layer: count must be >= 1");
  }
  if (!(timing.mac_mhz > 0.0) || !(timing.wupdate_mhz > 0.0)) {
    throw std::invalid_argument("schedule_layer: non-positive clock");
  }
  LayerSchedule s;
  s.tiles = grid.tiles();
  s.n_used = static_cast<int>(std::min<long>(count, s.tiles));
  s.tiles_busiest = (s.tiles + s.n_used - 1) / s.n_used;
  s.double_buffered = timing.mcr >= 2;

  // Bit-serial MAC: one cycle per input bit plane plus the sign plane.
  // Weight update: two cycles per SRAM row (address + write); tail tiles
  // still sweep the full array, zero-filling the unused depth.
  s.mac_cycles_per_tile =
      layer.m * (static_cast<long>(layer.input_bits) + 1);
  s.load_cycles_per_tile = 2L * grid.rows;
  s.total_mac_cycles = s.tiles * s.mac_cycles_per_tile;
  s.total_load_cycles = s.tiles * s.load_cycles_per_tile;

  const double t_mac = static_cast<double>(s.mac_cycles_per_tile) /
                       timing.mac_mhz;  // us per tile
  const double t_load =
      static_cast<double>(s.load_cycles_per_tile) / timing.wupdate_mhz;

  // Busy time of a macro running `t` tiles. Double-buffered (MCR >= 2):
  // the next tile's weight load into the spare bank overlaps the current
  // tile's MAC phases — only the first load plus any per-tile load
  // overhang is exposed. Serial (MCR == 1): every tile is load-then-MAC.
  const auto exposed_us = [&](long t) -> double {
    if (t <= 0) return 0.0;
    if (s.double_buffered) {
      return t_load +
             (static_cast<double>(t) - 1.0) * std::max(0.0, t_load - t_mac);
    }
    return static_cast<double>(t) * t_load;
  };
  const auto busy_us = [&](long t) -> double {
    return exposed_us(t) + static_cast<double>(t) * t_mac;
  };

  // Tiles are dealt round-robin: `extra` macros carry tiles_busiest
  // tiles, the rest one fewer.
  const long base = s.tiles / s.n_used;
  const long extra = s.tiles % s.n_used;
  const long busy_tiles = extra > 0 ? base + 1 : base;
  const double busiest = busy_us(busy_tiles);
  const double drain_us =
      static_cast<double>(timing.latency_cycles) / timing.mac_mhz;
  s.exposed_load_us = exposed_us(busy_tiles);
  s.time_us = busiest + drain_us;

  // Dead cycles: macros holding `base` tiles idle while the busiest
  // group finishes, and every used macro drains its pipeline once.
  const double idle_us =
      extra > 0
          ? static_cast<double>(s.n_used - extra) * (busiest - busy_us(base))
          : 0.0;
  s.dead_cycles = idle_us * timing.mac_mhz +
                  static_cast<double>(s.n_used) * timing.latency_cycles;
  return s;
}

}  // namespace syndcim::netmap

#pragma once
// Full-network evaluation: map a netmap::Model onto a *fleet* of DCIM
// macros chosen from a sweep frontier. Layers execute sequentially (the
// model is a chain); within a layer its tile grid is spread across
// `count` identical macros of the type the allocator picked for it.
// Heterogeneity means different layers may pick different frontier
// points — the multi-spec DSE becomes the inner loop of "compile a macro
// fleet for this model".
//
// Allocation is a two-stage greedy + local-refinement search:
//   Stage A  per-layer energy-minimal candidate at count = 1, then a
//            repair loop that merges macro types until the owned fleet
//            (one bank of hardware per type, sized by that type's
//            busiest layer) fits the macro-count/area budget.
//   Stage B  latency hill-climb: repeatedly apply the single move
//            (increment a layer's count, or switch its type) that cuts
//            end-to-end time the most while the fleet stays inside the
//            budget AND total energy stays <= the best homogeneous
//            fleet's energy.
// Because per-layer energy is non-decreasing in count (extra macros only
// add idle/drain energy), stage A's energy is <= every homogeneous
// baseline, and stage B never crosses the cap — the heterogeneous result
// beats or ties the best single-frontier-point fleet on energy by
// construction (a guarded fallback adopts the baseline outright if the
// repair loop ever lands above it).
#include <cstddef>
#include <string>
#include <vector>

#include "dse/sweep.hpp"
#include "netmap/model.hpp"
#include "netmap/tile.hpp"

namespace syndcim::netmap {

/// One macro type the allocator may instantiate: the architecture,
/// effective clocks and characterized PPA of a single frontier point.
struct MacroCandidate {
  std::string point_id;  ///< dse::frontier_point_id of the source point
  std::string label;     ///< human-readable trail label
  int rows = 64;
  int cols = 64;
  int mcr = 2;
  std::vector<int> input_bits;   ///< supported precisions, ascending
  std::vector<int> weight_bits;  ///< supported precisions, ascending
  double mac_mhz = 0.0;          ///< effective MAC clock (spec vs fmax)
  double wupdate_mhz = 0.0;      ///< effective weight-update clock
  double fmax_mhz = 0.0;
  double power_uw = 0.0;  ///< at the effective MAC clock
  double area_um2 = 0.0;
  double energy_per_mac_fj = 0.0;
  int latency_cycles = 0;

  /// Smallest supported precision >= `bits` (serial cycles / column
  /// packing run at the supported width), or -1 when unsupported.
  [[nodiscard]] int effective_input_bits(int bits) const;
  [[nodiscard]] int effective_weight_bits(int bits) const;
  /// Candidate can run the layer at all (both precisions supported and
  /// at least one weight column fits).
  [[nodiscard]] bool supports(const Layer& layer) const;
};

/// Candidate pool from an in-memory sweep (infeasible points are never
/// on the global frontier; clocks are the producing spec's targets).
[[nodiscard]] std::vector<MacroCandidate> candidates_from_frontier(
    const dse::SweepReport& report);

/// Candidate pool from a persisted frontier JSON (`syndcim sweep
/// --frontier-json` output). Points missing the "macro"/"point_id"
/// members (pre-point_id reports) are NETMAP-BADFRONTIER errors; callers
/// check `diag.has_errors()`.
[[nodiscard]] std::vector<MacroCandidate> candidates_from_frontier_json(
    const std::string& json_text, core::DiagEngine& diag,
    const std::string& source = "<frontier>");

/// Fleet budget. A fleet owns `count` physical macros of each selected
/// type (sized by that type's busiest layer — layers run sequentially,
/// so one bank per type is reused across layers).
struct Budget {
  int max_macros = 8;       ///< total owned macros across all types
  double max_area_um2 = 0;  ///< total owned silicon; 0 = unlimited
};

/// One layer's mapping: which candidate, how many instances, and the
/// resulting tile/schedule/energy breakdown.
struct LayerAssignment {
  std::size_t layer_index = 0;
  std::size_t candidate_index = 0;  ///< into NetmapResult::candidates
  int count = 1;                    ///< macros allocated to this layer
  int input_bits_eff = 0;           ///< precision the macro runs at
  int weight_bits_eff = 0;
  TileGrid grid;
  LayerSchedule sched;
  double time_us = 0.0;
  double mac_energy_pj = 0.0;
  double write_energy_pj = 0.0;
  double dead_energy_pj = 0.0;
  [[nodiscard]] double energy_pj() const {
    return mac_energy_pj + write_energy_pj + dead_energy_pj;
  }
  /// Useful word-MACs over the layer-time MAC capacity of the macros it
  /// ran on.
  double utilization = 0.0;
};

/// One owned hardware bank: a macro type and how many instances the
/// fleet keeps of it (the max any single layer uses).
struct FleetEntry {
  std::size_t candidate_index = 0;
  int count = 0;
  double area_um2 = 0.0;  ///< count * per-macro area
};

/// Best homogeneous (single macro type everywhere) baseline, for the
/// het-vs-homog comparison the reports and CI assert on.
struct HomogBaseline {
  bool valid = false;  ///< some candidate supports every layer
  std::size_t candidate_index = 0;
  int count = 0;  ///< owned macros after its own latency refinement
  double time_us = 0.0;
  double energy_pj = 0.0;
};

struct NetmapResult {
  Model model;  ///< the mapped model (layers align with `layers` below)
  std::vector<MacroCandidate> candidates;  ///< the pool considered
  std::vector<LayerAssignment> layers;     ///< one per model layer
  std::vector<FleetEntry> fleet;
  Budget budget;
  int fleet_macros = 0;
  double fleet_area_um2 = 0.0;
  double total_time_us = 0.0;
  double total_energy_pj = 0.0;
  double utilization = 0.0;  ///< MAC-weighted mean of layer utilizations
  HomogBaseline homog;
  /// True when the repair loop could not hold the energy guarantee and
  /// the allocator adopted the homogeneous baseline outright.
  bool fallback_homog = false;
};

struct NetmapOptions {
  Budget budget;
  /// Hill-climb move cap (stage B and the homogeneous count refinement);
  /// generous — refinement converges in O(budget) moves.
  int max_moves = 1024;
};

/// Maps `model` onto `candidates` under the budget. Throws
/// std::invalid_argument when the model/pool is empty, the budget is
/// degenerate (max_macros < 1), or some layer is supported by no
/// candidate that fits the area budget.
[[nodiscard]] NetmapResult run_netmap(
    const Model& model, const std::vector<MacroCandidate>& candidates,
    const NetmapOptions& opt = {});

/// Deterministic "syndcim-netmap" v1 report (trailing newline,
/// %.17g numbers) — byte-identical for identical inputs, and therefore
/// across sweep thread counts and the CLI/serve paths.
[[nodiscard]] std::string netmap_report_json(const NetmapResult& r);

}  // namespace syndcim::netmap

#pragma once
// Network-level workload description: a layer graph of GEMM-shaped NN
// layers (convolutions after im2col, linear layers, attention
// projections) that `src/netmap` maps onto fleets of compiled DCIM
// macros. Models arrive as JSON ("syndcim-model" v1, see DESIGN.md
// "Network mapping"); the ingester validates every field through the
// shared diagnostics engine (NETMAP-* rules) instead of throwing on the
// first defect, so one pass reports everything wrong with a model file.
#include <string>
#include <vector>

#include "core/diag.hpp"

namespace syndcim::netmap {

/// How the layer was described in the model file. Every kind lowers to
/// one weight-stationary GEMM Y[m,n] = X[m,k] * W[k,n]:
///   conv       im2col: m = output pixels, k = kernel^2 * in_channels,
///              n = out_channels
///   linear     m = batch, k = in_features, n = out_features
///   attention  the fused QKV projection of one attention block:
///              m = seq_len, k = model_dim, n = 3 * model_dim (the
///              activation-activation score/context matmuls are not
///              weight-stationary and are not a DCIM macro's job)
enum class LayerKind { kConv, kLinear, kAttention };

[[nodiscard]] const char* to_string(LayerKind k);

/// One layer, lowered to its GEMM. Densities are P(bit == 1) of the
/// operand streams and scale dynamic energy (post-ReLU activations are
/// sparse; pruned weights too).
struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kLinear;
  long m = 1;  ///< batch / output-pixel / sequence dimension
  long k = 1;  ///< reduction depth
  long n = 1;  ///< output channels
  int input_bits = 8;
  int weight_bits = 8;
  double input_density = 0.5;
  double weight_density = 1.0;

  /// Word-level multiply-accumulates of the whole layer.
  [[nodiscard]] long macs() const { return m * k * n; }
};

/// A validated layer graph. Layers execute in list order (a chain — the
/// fleet evaluator schedules them sequentially).
struct Model {
  std::string name = "model";
  std::vector<Layer> layers;

  [[nodiscard]] long total_macs() const;
};

/// Parses one "syndcim-model" v1 JSON document. Every defect is reported
/// through `diag` (rules NETMAP-BADJSON, NETMAP-BADFORMAT,
/// NETMAP-NOLAYERS, NETMAP-BADKIND, NETMAP-BADSHAPE, NETMAP-BADPRECISION,
/// NETMAP-BADDENSITY, NETMAP-DUPLAYER; unknown members are
/// NETMAP-UNKNOWNKEY warnings) with `source` naming the file; the
/// returned model contains whatever parsed — callers must check
/// `diag.has_errors()` before using it.
[[nodiscard]] Model parse_model(const std::string& json_text,
                                core::DiagEngine& diag,
                                const std::string& source = "<model>");

/// Reads `path` and forwards to parse_model (an unreadable file is a
/// NETMAP-BADJSON error).
[[nodiscard]] Model parse_model_file(const std::string& path,
                                     core::DiagEngine& diag);

}  // namespace syndcim::netmap

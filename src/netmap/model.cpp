#include "netmap/model.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/obs.hpp"
#include "serve/json.hpp"

namespace syndcim::netmap {

namespace {

using serve::JsonValue;

/// Integral member in [lo, hi]; reports NETMAP-BADSHAPE and returns
/// nullopt-like failure via the bool.
bool read_long(const JsonValue& layer, const char* key, long lo, long hi,
               const std::string& lname, const std::string& source,
               core::DiagEngine& diag, long* out) {
  const JsonValue* v = layer.find(key);
  if (v == nullptr || !v->is_number()) {
    diag.error("NETMAP-BADSHAPE",
               std::string("layer wants a numeric '") + key + "'", lname,
               source);
    return false;
  }
  const double d = v->as_number();
  if (d != std::floor(d) || d < static_cast<double>(lo) ||
      d > static_cast<double>(hi)) {
    diag.error("NETMAP-BADSHAPE",
               std::string("'") + key + "' must be an integer in [" +
                   std::to_string(lo) + ", " + std::to_string(hi) + "], got " +
                   serve::json_number(d),
               lname, source);
    return false;
  }
  *out = static_cast<long>(d);
  return true;
}

/// Optional precision member; 1..16 bits (NETMAP-BADPRECISION otherwise).
void read_bits(const JsonValue& layer, const char* key,
               const std::string& lname, const std::string& source,
               core::DiagEngine& diag, int* out) {
  const JsonValue* v = layer.find(key);
  if (v == nullptr) return;
  const double d = v->is_number() ? v->as_number() : -1.0;
  if (!v->is_number() || d != std::floor(d) || d < 1.0 || d > 16.0) {
    diag.error("NETMAP-BADPRECISION",
               std::string("'") + key +
                   "' must be an integer bit width in [1, 16]",
               lname, source);
    return;
  }
  *out = static_cast<int>(d);
}

/// Optional density member; (0, 1] (NETMAP-BADDENSITY otherwise).
void read_density(const JsonValue& layer, const char* key,
                  const std::string& lname, const std::string& source,
                  core::DiagEngine& diag, double* out) {
  const JsonValue* v = layer.find(key);
  if (v == nullptr) return;
  const double d = v->as_number(-1.0);
  if (!v->is_number() || !(d > 0.0) || d > 1.0) {
    diag.error("NETMAP-BADDENSITY",
               std::string("'") + key + "' must be a density in (0, 1]",
               lname, source);
    return;
  }
  *out = d;
}

/// Members every kind understands, plus the kind-specific shape keys.
bool known_key(LayerKind kind, const std::string& key) {
  static const std::set<std::string> common = {
      "name",        "kind",          "input_bits",
      "weight_bits", "input_density", "weight_density"};
  if (common.count(key) > 0) return true;
  switch (kind) {
    case LayerKind::kConv:
      return key == "out_pixels" || key == "kernel" || key == "in_channels" ||
             key == "out_channels";
    case LayerKind::kLinear:
      return key == "batch" || key == "in_features" || key == "out_features";
    case LayerKind::kAttention:
      return key == "seq_len" || key == "model_dim" || key == "heads";
  }
  return false;
}

}  // namespace

const char* to_string(LayerKind k) {
  switch (k) {
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kLinear:
      return "linear";
    case LayerKind::kAttention:
      return "attention";
  }
  return "?";
}

long Model::total_macs() const {
  long total = 0;
  for (const Layer& l : layers) total += l.macs();
  return total;
}

Model parse_model(const std::string& json_text, core::DiagEngine& diag,
                  const std::string& source) {
  OBS_SPAN("netmap.ingest");
  Model model;
  JsonValue doc;
  std::string err;
  if (!serve::json_parse(json_text, &doc, &err) || !doc.is_object()) {
    diag.error("NETMAP-BADJSON",
               err.empty() ? "model is not a JSON object" : err, "", source);
    return model;
  }

  const JsonValue* format = doc.find("format");
  const JsonValue* version = doc.find("version");
  if (format == nullptr || format->as_string() != "syndcim-model" ||
      version == nullptr || version->as_number() != 1.0) {
    diag.error("NETMAP-BADFORMAT",
               "model wants \"format\": \"syndcim-model\", \"version\": 1",
               "", source);
    return model;
  }
  if (const JsonValue* name = doc.find("name"); name && name->is_string()) {
    model.name = name->as_string();
  }

  const JsonValue* layers = doc.find("layers");
  if (layers == nullptr || !layers->is_array() || layers->size() == 0) {
    diag.error("NETMAP-NOLAYERS", "model wants a non-empty 'layers' array",
               "", source);
    return model;
  }

  std::set<std::string> names;
  for (std::size_t i = 0; i < layers->size(); ++i) {
    const JsonValue& jl = layers->at(i);
    const std::string fallback_name = "layer" + std::to_string(i);
    if (!jl.is_object()) {
      diag.error("NETMAP-BADSHAPE", "layer entry is not a JSON object",
                 fallback_name, source);
      continue;
    }
    Layer layer;
    layer.name = fallback_name;
    if (const JsonValue* n = jl.find("name"); n && n->is_string()) {
      layer.name = n->as_string();
    }
    if (!names.insert(layer.name).second) {
      diag.error("NETMAP-DUPLAYER",
                 "duplicate layer name '" + layer.name + "'", layer.name,
                 source);
      continue;
    }

    const JsonValue* kind = jl.find("kind");
    const std::string kind_s =
        kind != nullptr && kind->is_string() ? kind->as_string() : "";
    if (kind_s == "conv") {
      layer.kind = LayerKind::kConv;
    } else if (kind_s == "linear") {
      layer.kind = LayerKind::kLinear;
    } else if (kind_s == "attention") {
      layer.kind = LayerKind::kAttention;
    } else {
      diag.error("NETMAP-BADKIND",
                 "layer 'kind' must be conv|linear|attention, got '" +
                     kind_s + "'",
                 layer.name, source);
      continue;
    }

    // Kind-specific shape fields, lowered to the GEMM.
    bool shape_ok = true;
    constexpr long kDimMax = 1L << 40;
    if (layer.kind == LayerKind::kConv) {
      long pixels = 0, kernel = 0, cin = 0, cout = 0;
      shape_ok &= read_long(jl, "out_pixels", 1, kDimMax, layer.name, source,
                            diag, &pixels);
      shape_ok &=
          read_long(jl, "kernel", 1, 64, layer.name, source, diag, &kernel);
      shape_ok &= read_long(jl, "in_channels", 1, kDimMax, layer.name, source,
                            diag, &cin);
      shape_ok &= read_long(jl, "out_channels", 1, kDimMax, layer.name,
                            source, diag, &cout);
      if (shape_ok) {
        layer.m = pixels;
        layer.k = kernel * kernel * cin;
        layer.n = cout;
      }
    } else if (layer.kind == LayerKind::kLinear) {
      long batch = 1, in = 0, out = 0;
      if (jl.find("batch") != nullptr) {
        shape_ok &= read_long(jl, "batch", 1, kDimMax, layer.name, source,
                              diag, &batch);
      }
      shape_ok &= read_long(jl, "in_features", 1, kDimMax, layer.name, source,
                            diag, &in);
      shape_ok &= read_long(jl, "out_features", 1, kDimMax, layer.name,
                            source, diag, &out);
      if (shape_ok) {
        layer.m = batch;
        layer.k = in;
        layer.n = out;
      }
    } else {
      long seq = 0, dim = 0, heads = 1;
      shape_ok &= read_long(jl, "seq_len", 1, kDimMax, layer.name, source,
                            diag, &seq);
      shape_ok &= read_long(jl, "model_dim", 1, kDimMax, layer.name, source,
                            diag, &dim);
      if (jl.find("heads") != nullptr) {
        shape_ok &= read_long(jl, "heads", 1, 4096, layer.name, source, diag,
                              &heads);
        if (shape_ok && dim % heads != 0) {
          diag.error("NETMAP-BADSHAPE",
                     "'model_dim' must be divisible by 'heads'", layer.name,
                     source);
          shape_ok = false;
        }
      }
      if (shape_ok) {
        layer.m = seq;
        layer.k = dim;
        layer.n = 3 * dim;  // fused Q/K/V projection
      }
    }
    if (!shape_ok) continue;

    read_bits(jl, "input_bits", layer.name, source, diag, &layer.input_bits);
    read_bits(jl, "weight_bits", layer.name, source, diag,
              &layer.weight_bits);
    read_density(jl, "input_density", layer.name, source, diag,
                 &layer.input_density);
    read_density(jl, "weight_density", layer.name, source, diag,
                 &layer.weight_density);

    for (const auto& [key, value] : jl.members()) {
      (void)value;
      if (!known_key(layer.kind, key)) {
        diag.warning("NETMAP-UNKNOWNKEY",
                     "unknown layer member '" + key + "' ignored", layer.name,
                     source);
      }
    }
    model.layers.push_back(std::move(layer));
  }

  for (const auto& [key, value] : doc.members()) {
    (void)value;
    if (key != "format" && key != "version" && key != "name" &&
        key != "layers") {
      diag.warning("NETMAP-UNKNOWNKEY",
                   "unknown model member '" + key + "' ignored", "", source);
    }
  }
  if (model.layers.empty() && !diag.has_errors()) {
    diag.error("NETMAP-NOLAYERS", "model parsed to zero usable layers", "",
               source);
  }
  return model;
}

Model parse_model_file(const std::string& path, core::DiagEngine& diag) {
  std::ifstream f(path);
  if (!f) {
    diag.error("NETMAP-BADJSON", "cannot open model file", path, path);
    return {};
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_model(ss.str(), diag, path);
}

}  // namespace syndcim::netmap

#pragma once
#include <string>

namespace syndcim::tech {

/// Process technology model.
///
/// Delay scaling across supply voltage follows the alpha-power law
/// (Sakurai-Newton): t_d(V) ~ V / (V - Vth)^alpha. All cell libraries are
/// characterized at `vdd_nominal`; STA and power scale with the factors
/// below.
struct TechNode {
  std::string name = "generic40";
  double feature_nm = 40.0;

  double vdd_nominal = 0.9;  ///< characterization voltage (paper spec point)
  double vdd_min = 0.6;
  double vdd_max = 1.2;
  // Calibrated so f(1.2V)/f(0.7V) ~ 3.7, matching the paper's shmoo
  // anchors (1.1 GHz @ 1.2 V vs 300 MHz @ 0.7 V).
  double vth = 0.50;   ///< effective threshold voltage
  double alpha = 1.5;  ///< velocity-saturation exponent

  // Electrical unit parameters at vdd_nominal (used by the characterizer).
  double unit_r_kohm = 5.8;      ///< drive resistance of a 1x inverter
  double unit_cin_ff = 1.5;      ///< input cap of a 1x inverter
  double unit_leak_nw = 1.8;     ///< leakage of a 1x inverter at nominal V
  double wire_c_ff_per_um = 0.14;  ///< routed wire capacitance
  double wire_r_kohm_per_um = 0.0021;

  // Layout grid parameters (40nm-like).
  double track_pitch_um = 0.14;     ///< metal routing pitch
  double std_row_height_um = 1.4;   ///< standard cell row height
  double sram6t_w_um = 0.95;        ///< 6T bitcell width
  double sram6t_h_um = 0.62;        ///< 6T bitcell height

  double temp_nominal_c = 25.0;  ///< characterization temperature

  /// Delay at `vdd` relative to delay at `vdd_nominal` (>1 below nominal).
  [[nodiscard]] double delay_scale(double vdd) const;
  /// Voltage + temperature delay derate: mobility degradation slows logic
  /// ~0.12%/°C above nominal at super-threshold voltages.
  [[nodiscard]] double delay_scale(double vdd, double temp_c) const;

  /// Dynamic energy at `vdd` relative to nominal: (V/Vnom)^2.
  [[nodiscard]] double energy_scale(double vdd) const;

  /// Leakage power at `vdd` relative to nominal (approx. linear-exponential).
  [[nodiscard]] double leakage_scale(double vdd) const;
  /// Leakage with the subthreshold temperature exponential (~2x / 25°C).
  [[nodiscard]] double leakage_scale(double vdd, double temp_c) const;

  /// True if `vdd` lies in the node's validated operating range.
  [[nodiscard]] bool vdd_in_range(double vdd) const {
    return vdd >= vdd_min && vdd <= vdd_max;
  }
};

/// 40nm bulk CMOS model calibrated against the paper's silicon anchor points
/// (1.1 GHz @ 1.2 V, 300 MHz @ 0.7 V for the 64x64 test macro).
[[nodiscard]] TechNode make_default_40nm();

}  // namespace syndcim::tech

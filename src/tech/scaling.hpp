#pragma once
#include <vector>

namespace syndcim::tech {

/// Cross-node normalization rules used by Table II of the paper:
/// when comparing macros fabricated in different nodes, area efficiency
/// (TOPS/mm^2) is assumed to improve 80% per technology node and energy
/// efficiency (TOPS/W) 30% per node. Throughput is additionally normalized
/// to a 4Kb array and 1b x 1b precision.
namespace scaling {

/// Ordered ladder of technology nodes (nm), finest first.
[[nodiscard]] const std::vector<double>& node_ladder();

/// Number of ladder steps between two nodes (positive when `from_nm` is a
/// finer node than `to_nm`). Throws if either node is not on the ladder.
[[nodiscard]] int node_steps(double from_nm, double to_nm);

/// Factor by which to multiply a TOPS/mm^2 measured at `from_nm` to express
/// it at `to_nm` (assumes 80% improvement per node, i.e. /1.8 per step when
/// moving to a coarser node).
[[nodiscard]] double area_efficiency_factor(double from_nm, double to_nm);

/// Same for TOPS/W with 30% improvement per node.
[[nodiscard]] double energy_efficiency_factor(double from_nm, double to_nm);

/// Normalize a throughput measured on an `array_kb` Kb array at
/// `input_bits` x `weight_bits` precision to the Table II reference point
/// (4Kb, 1b x 1b).
[[nodiscard]] double tops_to_reference(double tops, double array_kb,
                                       int input_bits, int weight_bits);

}  // namespace scaling
}  // namespace syndcim::tech

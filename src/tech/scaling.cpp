#include "tech/scaling.hpp"

#include <cmath>
#include <stdexcept>

namespace syndcim::tech::scaling {

const std::vector<double>& node_ladder() {
  static const std::vector<double> kLadder = {3,  4,  5,  7,  10, 16,
                                              22, 28, 40, 55, 65, 90};
  return kLadder;
}

namespace {
int ladder_index(double nm) {
  const auto& l = node_ladder();
  for (std::size_t i = 0; i < l.size(); ++i) {
    if (std::abs(l[i] - nm) < 1e-9) return static_cast<int>(i);
  }
  throw std::invalid_argument("scaling: node not on ladder");
}
}  // namespace

int node_steps(double from_nm, double to_nm) {
  return ladder_index(to_nm) - ladder_index(from_nm);
}

double area_efficiency_factor(double from_nm, double to_nm) {
  // Moving to a coarser node loses 80% area efficiency per step.
  return std::pow(1.8, -node_steps(from_nm, to_nm));
}

double energy_efficiency_factor(double from_nm, double to_nm) {
  return std::pow(1.3, -node_steps(from_nm, to_nm));
}

double tops_to_reference(double tops, double array_kb, int input_bits,
                         int weight_bits) {
  if (array_kb <= 0 || input_bits <= 0 || weight_bits <= 0) {
    throw std::invalid_argument("scaling: non-positive normalization input");
  }
  // A 1b x 1b MAC array performs input_bits * weight_bits more primitive
  // binary MACs per cycle than a multi-bit configuration of the same array.
  return tops * (4.0 / array_kb) * input_bits * weight_bits;
}

}  // namespace syndcim::tech::scaling

#pragma once
// Unit conventions used across the whole code base.
//
//   time         : picoseconds (ps)
//   capacitance  : femtofarads (fF)
//   resistance   : kilo-ohms (kOhm)          -> kOhm * fF = ps
//   energy       : femtojoules (fJ)
//   power        : microwatts (uW)           -> fJ * GHz = uW
//   area         : square micrometers (um^2)
//   length       : micrometers (um)
//   voltage      : volts (V)
//   frequency    : megahertz (MHz) in user-facing specs, GHz internally
//                  where noted.

namespace syndcim::units {

inline constexpr double kPsPerNs = 1000.0;

/// Clock period in ps for a frequency given in MHz.
[[nodiscard]] constexpr double period_ps_from_mhz(double mhz) {
  return 1.0e6 / mhz;
}

/// Frequency in MHz for a clock period given in ps.
[[nodiscard]] constexpr double mhz_from_period_ps(double ps) {
  return 1.0e6 / ps;
}

/// Dynamic power in uW for energy-per-cycle in fJ at a frequency in MHz.
[[nodiscard]] constexpr double uw_from_fj_mhz(double fj_per_cycle, double mhz) {
  return fj_per_cycle * mhz * 1.0e-3;  // fJ * MHz = nW; /1e3 -> uW
}

}  // namespace syndcim::units

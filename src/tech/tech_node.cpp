#include "tech/tech_node.hpp"

#include <cmath>
#include <stdexcept>

namespace syndcim::tech {

namespace {
/// Alpha-power-law drive-current factor, proportional to (V - Vth)^alpha.
double drive(const TechNode& t, double vdd) {
  if (vdd <= t.vth) {
    throw std::invalid_argument("TechNode: vdd at or below threshold voltage");
  }
  return std::pow(vdd - t.vth, t.alpha);
}
}  // namespace

double TechNode::delay_scale(double vdd) const {
  // t_d ~ C*V / I_drive with I_drive ~ (V - Vth)^alpha.
  const double nom = vdd_nominal / drive(*this, vdd_nominal);
  const double cur = vdd / drive(*this, vdd);
  return cur / nom;
}

double TechNode::delay_scale(double vdd, double temp_c) const {
  // Mobility degradation dominates at super-threshold: ~ +0.12%/°C.
  return delay_scale(vdd) * (1.0 + 0.0012 * (temp_c - temp_nominal_c));
}

double TechNode::energy_scale(double vdd) const {
  const double r = vdd / vdd_nominal;
  return r * r;
}

double TechNode::leakage_scale(double vdd) const {
  // Sub-threshold leakage grows roughly exponentially with VDD via DIBL;
  // a mild exponential around nominal captures the trend.
  constexpr double kDiblPerVolt = 2.3;
  return std::exp(kDiblPerVolt * (vdd - vdd_nominal));
}

double TechNode::leakage_scale(double vdd, double temp_c) const {
  // Subthreshold leakage roughly doubles every 25°C.
  return leakage_scale(vdd) *
         std::exp2((temp_c - temp_nominal_c) / 25.0);
}

TechNode make_default_40nm() {
  return TechNode{};  // defaults are the calibrated 40nm values
}

}  // namespace syndcim::tech

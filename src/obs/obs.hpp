#pragma once
// Pipeline-wide observability: scoped-span tracing exported as Chrome
// trace-event JSON (chrome://tracing / Perfetto), a metrics registry
// (counters, gauges, fixed-bucket histograms) dumped as versioned JSON,
// and compile-phase timelines with per-phase peak-RSS sampling.
//
// Cost model: everything is disabled by default at runtime
// (`set_enabled(true)` turns it on); a disabled `OBS_SPAN` or guarded
// histogram observation costs one relaxed atomic load and a branch.
// Building with -DOBS_DISABLED (CMake option SYNDCIM_OBS_DISABLED)
// compiles the span macro out entirely and folds `enabled()` to a
// constant false.
//
// Threading: span events land in per-thread buffers that only the owning
// thread appends to — the append path takes no lock (chunked storage with
// a release-published count; a chunk spill takes a rarely-contended
// mutex). Counters/gauges/histograms are plain relaxed atomics and safe
// from any thread. Export may run concurrently with appends; it sees a
// consistent prefix of each thread's events.
//
// Naming convention for metrics and spans: `subsystem.noun.verb`
// (e.g. `dse.cache.hit`, `dse.pool.steal`, `sta.paths.timed`).
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace syndcim::obs {

#if defined(OBS_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Runtime master switch (off by default). Hot paths gate on this.
[[nodiscard]] inline bool enabled() {
  return kCompiledIn &&
         detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Nanoseconds since the process-wide trace epoch (first call wins).
[[nodiscard]] std::uint64_t now_ns();

/// Peak resident-set size of the process in kB (0 where unavailable).
[[nodiscard]] long peak_rss_kb();

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// One completed span ("X" complete event in the Chrome trace format).
struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// A recorded span together with its thread attribution (test/export
/// view; `tid` is the tracer's own small sequential thread id).
struct RecordedSpan {
  int tid = 0;
  std::string thread_name;
  TraceEvent ev;
};

/// Process-global span recorder. Use the `OBS_SPAN` macro (or `SpanGuard`
/// for dynamic names) rather than calling `record` directly.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Append one completed span to the calling thread's buffer.
  void record(std::string name, std::uint64_t start_ns,
              std::uint64_t dur_ns);

  /// Names the calling thread in the exported trace (Chrome "M"
  /// thread_name metadata event). Idempotent; last call wins.
  void set_thread_name(std::string name);

  /// All recorded spans in deterministic (tid, start, name) order.
  [[nodiscard]] std::vector<RecordedSpan> snapshot() const;
  [[nodiscard]] std::size_t event_count() const;

  /// Chrome trace-event JSON (object form: {"traceEvents": [...]}).
  /// Loads directly in chrome://tracing and ui.perfetto.dev.
  [[nodiscard]] std::string to_json() const;
  /// Writes `to_json()` to `path`; false on IO failure.
  bool save(const std::string& path) const;

  /// Drops every recorded span and thread name. Must not race with
  /// active spans — call only from quiescent points (tests, between
  /// CLI runs).
  void clear();

 private:
  static constexpr std::size_t kChunkEvents = 1024;
  struct Chunk {
    TraceEvent ev[kChunkEvents];
    std::atomic<std::size_t> count{0};  ///< release-published by owner
  };
  struct ThreadBuf {
    int tid = 0;
    std::string thread_name;
    std::vector<std::unique_ptr<Chunk>> chunks;  ///< guarded by mu
    mutable std::mutex mu;  ///< chunk-list structure + thread_name
    Chunk* current = nullptr;  ///< owner-thread-only shortcut
  };

  ThreadBuf& local_buf();

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;  ///< never shrunk
};

[[nodiscard]] Tracer& tracer();

/// RAII span: records [construction, destruction) into the global tracer
/// when observability is enabled at construction time.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (enabled()) {
      name_ = name;
      start_ = now_ns();
      active_ = true;
    }
  }
  explicit SpanGuard(std::string name) {
    if (enabled()) {
      name_ = std::move(name);
      start_ = now_ns();
      active_ = true;
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() {
    if (active_) tracer().record(std::move(name_), start_, now_ns() - start_);
  }

 private:
  std::string name_;
  std::uint64_t start_ = 0;
  bool active_ = false;
};

#if defined(OBS_DISABLED)
#define OBS_SPAN(name) ((void)0)
#else
#define SYNDCIM_OBS_CONCAT2(a, b) a##b
#define SYNDCIM_OBS_CONCAT(a, b) SYNDCIM_OBS_CONCAT2(a, b)
#define OBS_SPAN(name) \
  ::syndcim::obs::SpanGuard SYNDCIM_OBS_CONCAT(obs_span_, __LINE__)(name)
#endif

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Monotonic counter. `inc` is wait-free (relaxed fetch_add).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations v <= bounds[i]
/// (first matching bound); values above the last bound land in the
/// overflow bucket, so there are bounds.size() + 1 buckets total.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::size_t bucket_count() const { return bounds_.size() + 1; }
  [[nodiscard]] std::uint64_t count_in_bucket(std::size_t i) const;
  [[nodiscard]] std::uint64_t total_count() const;
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<double> sum_{0.0};
};

/// Named metric registry. Lookup takes a mutex — resolve once and keep
/// the returned reference for hot paths (references stay valid for the
/// registry's lifetime). Dumped as versioned JSON
/// ({"format": "syndcim-metrics", "version": 1, ...}) with keys in
/// sorted order so output is deterministic for a given set of values.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// `bounds` is consumed on first creation; later calls with the same
  /// name return the existing histogram unchanged.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds);

  [[nodiscard]] std::string to_json() const;
  bool save(const std::string& path) const;

  /// Drops every metric (invalidates previously returned references);
  /// tests only.
  void clear();

 private:
  mutable std::mutex mu_;
  // Kept name-sorted (insertion keeps order) so iteration — and
  // therefore JSON output — is deterministic.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> hists_;
};

[[nodiscard]] MetricsRegistry& metrics();

// ---------------------------------------------------------------------------
// Compile-phase timeline
// ---------------------------------------------------------------------------

/// One pipeline stage of a compile (rtlgen, map, floorplan, ...).
struct Phase {
  std::string name;
  double start_ms = 0.0;    ///< since the process trace epoch
  double dur_ms = 0.0;
  long rss_peak_kb = 0;     ///< process peak RSS sampled at phase end
};

/// Ordered list of the phases one compile (or sweep point) went through.
/// Unlike spans, the timeline is always recorded — it is per-compile
/// bookkeeping, not hot-path instrumentation.
struct PhaseTimeline {
  std::vector<Phase> phases;
  [[nodiscard]] const Phase* find(std::string_view name) const;
  /// JSON array: [{"name", "start_ms", "dur_ms", "rss_peak_kb"}, ...].
  [[nodiscard]] std::string to_json() const;
};

/// RAII phase recorder: appends a Phase to `tl` on destruction, emits a
/// matching trace span when observability is enabled, and refreshes the
/// `compile.rss.peak_kb` gauge.
class PhaseScope {
 public:
  PhaseScope(PhaseTimeline& tl, std::string name);
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope();

 private:
  PhaseTimeline& tl_;
  std::string name_;
  std::uint64_t start_ = 0;
};

}  // namespace syndcim::obs

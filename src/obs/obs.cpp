#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace syndcim::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(kCompiledIn && on, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<long>(ru.ru_maxrss / 1024);  // bytes on macOS
#else
  return static_cast<long>(ru.ru_maxrss);  // kB on Linux
#endif
#else
  return 0;
#endif
}

namespace {

/// Minimal JSON string escaping (obs is dependency-free by design, so it
/// does not reuse core/diag's escaper).
std::string jesc(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jnum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Microseconds with ns resolution — the Chrome trace `ts`/`dur` unit.
std::string jus(std::uint64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer& tracer() {
  static Tracer t;
  return t;
}

Tracer::ThreadBuf& Tracer::local_buf() {
  // One live Tracer per process (the `tracer()` singleton); a plain
  // thread_local pointer keyed by nothing is sufficient and keeps the
  // hot path to a single TLS load.
  thread_local ThreadBuf* tl_buf = nullptr;
  thread_local const Tracer* tl_owner = nullptr;
  if (tl_buf == nullptr || tl_owner != this) {
    auto buf = std::make_unique<ThreadBuf>();
    const std::lock_guard<std::mutex> lock(registry_mu_);
    buf->tid = static_cast<int>(bufs_.size());
    tl_buf = buf.get();
    tl_owner = this;
    bufs_.push_back(std::move(buf));
  }
  return *tl_buf;
}

void Tracer::record(std::string name, std::uint64_t start_ns,
                    std::uint64_t dur_ns) {
  ThreadBuf& buf = local_buf();
  Chunk* c = buf.current;
  if (c == nullptr ||
      c->count.load(std::memory_order_relaxed) == kChunkEvents) {
    auto fresh = std::make_unique<Chunk>();
    c = fresh.get();
    const std::lock_guard<std::mutex> lock(buf.mu);
    buf.chunks.push_back(std::move(fresh));
    buf.current = c;
  }
  const std::size_t i = c->count.load(std::memory_order_relaxed);
  c->ev[i].name = std::move(name);
  c->ev[i].start_ns = start_ns;
  c->ev[i].dur_ns = dur_ns;
  // Publish: a concurrent exporter acquiring `count` sees the fields.
  c->count.store(i + 1, std::memory_order_release);
}

void Tracer::set_thread_name(std::string name) {
  ThreadBuf& buf = local_buf();
  const std::lock_guard<std::mutex> lock(buf.mu);
  buf.thread_name = std::move(name);
}

std::vector<RecordedSpan> Tracer::snapshot() const {
  std::vector<RecordedSpan> out;
  const std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& buf : bufs_) {
    const std::lock_guard<std::mutex> blk(buf->mu);
    for (const auto& chunk : buf->chunks) {
      const std::size_t n = chunk->count.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back({buf->tid, buf->thread_name, chunk->ev[i]});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RecordedSpan& a, const RecordedSpan& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ev.start_ns != b.ev.start_ns) {
                return a.ev.start_ns < b.ev.start_ns;
              }
              return a.ev.name < b.ev.name;
            });
  return out;
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  const std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& buf : bufs_) {
    const std::lock_guard<std::mutex> blk(buf->mu);
    for (const auto& chunk : buf->chunks) {
      n += chunk->count.load(std::memory_order_acquire);
    }
  }
  return n;
}

std::string Tracer::to_json() const {
  const std::vector<RecordedSpan> spans = snapshot();
  std::ostringstream os;
  os << "{\n  \"format\": \"syndcim-trace\",\n  \"version\": 1,\n"
     << "  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  // Thread-name metadata events, one per named thread.
  {
    const std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& buf : bufs_) {
      const std::lock_guard<std::mutex> blk(buf->mu);
      if (buf->thread_name.empty()) continue;
      if (!first) os << ",\n";
      first = false;
      os << "    {\"ph\": \"M\", \"pid\": 1, \"tid\": " << buf->tid
         << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
         << jesc(buf->thread_name) << "\"}}";
    }
  }
  for (const RecordedSpan& s : spans) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"ph\": \"X\", \"pid\": 1, \"tid\": " << s.tid
       << ", \"name\": \"" << jesc(s.ev.name) << "\", \"ts\": "
       << jus(s.ev.start_ns) << ", \"dur\": " << jus(s.ev.dur_ns) << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool Tracer::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json();
  return static_cast<bool>(f);
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& buf : bufs_) {
    const std::lock_guard<std::mutex> blk(buf->mu);
    buf->chunks.clear();
    buf->current = nullptr;
    buf->thread_name.clear();
  }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t i =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow at end
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count_in_bucket(std::size_t i) const {
  return i <= bounds_.size()
             ? counts_[i].load(std::memory_order_relaxed)
             : 0;
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    n += counts_[i].load(std::memory_order_relaxed);
  }
  return n;
}

MetricsRegistry& metrics() {
  static MetricsRegistry m;
  return m;
}

namespace {

template <typename T, typename... Args>
T& find_or_insert(
    std::vector<std::pair<std::string, std::unique_ptr<T>>>& vec,
    const std::string& name, Args&&... args) {
  const auto it = std::lower_bound(
      vec.begin(), vec.end(), name,
      [](const auto& entry, const std::string& n) { return entry.first < n; });
  if (it != vec.end() && it->first == name) return *it->second;
  return *vec
              .insert(it, {name, std::make_unique<T>(
                                     std::forward<Args>(args)...)})
              ->second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return find_or_insert(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return find_or_insert(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  return find_or_insert(hists_, name, std::move(bounds));
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"format\": \"syndcim-metrics\",\n  \"version\": 1,\n"
     << "  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << "\"" << jesc(counters_[i].first)
       << "\": " << counters_[i].second->value();
  }
  os << (counters_.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << "\"" << jesc(gauges_[i].first)
       << "\": " << jnum(gauges_[i].second->value());
  }
  os << (gauges_.empty() ? "}" : "\n  }") << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    const Histogram& h = *hists_[i].second;
    os << (i ? ",\n    " : "\n    ") << "\"" << jesc(hists_[i].first)
       << "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds().size(); ++b) {
      os << (b ? ", " : "") << jnum(h.bounds()[b]);
    }
    os << "], \"counts\": [";
    for (std::size_t b = 0; b < h.bucket_count(); ++b) {
      os << (b ? ", " : "") << h.count_in_bucket(b);
    }
    os << "], \"count\": " << h.total_count()
       << ", \"sum\": " << jnum(h.sum()) << "}";
  }
  os << (hists_.empty() ? "}" : "\n  }") << "\n}\n";
  return os.str();
}

bool MetricsRegistry::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json();
  return static_cast<bool>(f);
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  hists_.clear();
}

// ---------------------------------------------------------------------------
// Phase timeline
// ---------------------------------------------------------------------------

const Phase* PhaseTimeline::find(std::string_view name) const {
  for (const Phase& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::string PhaseTimeline::to_json() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const Phase& p = phases[i];
    os << (i ? ", " : "") << "{\"name\": \"" << jesc(p.name)
       << "\", \"start_ms\": " << jnum(p.start_ms)
       << ", \"dur_ms\": " << jnum(p.dur_ms)
       << ", \"rss_peak_kb\": " << p.rss_peak_kb << "}";
  }
  os << "]";
  return os.str();
}

PhaseScope::PhaseScope(PhaseTimeline& tl, std::string name)
    : tl_(tl), name_(std::move(name)), start_(now_ns()) {}

PhaseScope::~PhaseScope() {
  const std::uint64_t end = now_ns();
  Phase p;
  p.name = name_;
  p.start_ms = static_cast<double>(start_) / 1e6;
  p.dur_ms = static_cast<double>(end - start_) / 1e6;
  p.rss_peak_kb = peak_rss_kb();
  if (enabled()) {
    tracer().record("compile." + name_, start_, end - start_);
    metrics().gauge("compile.rss.peak_kb")
        .set(static_cast<double>(p.rss_peak_kb));
  }
  tl_.phases.push_back(std::move(p));
}

}  // namespace syndcim::obs

#pragma once
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace syndcim::dse {

/// Work-stealing thread pool for the DSE sweep: every worker owns a deque
/// it pushes/pops at the front (LIFO — keeps a worker's recently spawned
/// work hot), and steals from the *back* of a victim's deque when its own
/// is empty (FIFO — steals the oldest, typically largest, unit of work).
///
/// Tasks are plain `void()` closures; results travel through whatever
/// storage the closure captures (the sweep driver preallocates one slot
/// per task, which also makes the merge order — and therefore the sweep
/// output — independent of the execution schedule).
///
/// Submission from inside a task lands on the submitting worker's own
/// deque; external submissions are dealt round-robin across workers.
class WorkStealingPool {
 public:
  struct Stats {
    int threads = 0;
    std::uint64_t executed = 0;  ///< tasks run to completion
    std::uint64_t stolen = 0;    ///< tasks executed by a non-owner worker
  };

  /// `threads` < 1 is clamped to 1. `default_threads()` gives the
  /// hardware concurrency (at least 1).
  explicit WorkStealingPool(int threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  void submit(std::function<void()> task);
  /// Block until every submitted task (including tasks submitted by
  /// tasks) has finished.
  void wait_idle();

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] static int default_threads();

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;
    std::mutex mu;
    std::thread thread;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
  };

  void worker_loop(std::size_t self);
  bool try_pop_own(std::size_t self, std::function<void()>& task);
  bool try_steal(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  /// Submission-time deque-depth samples (`dse.pool.queue_depth`);
  /// resolved once here, observed only while obs is enabled.
  obs::Histogram* queue_depth_hist_ = nullptr;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> rr_{0};  ///< round-robin external submission
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;   ///< signalled when pending_ hits 0
  std::mutex work_mu_;
  std::condition_variable work_cv_;   ///< signalled when work arrives
};

/// Run `fn(i)` for i in [0, n) on the pool and wait for completion.
void parallel_for(WorkStealingPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace syndcim::dse

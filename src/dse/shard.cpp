#include "dse/shard.hpp"

#include <fstream>
#include <stdexcept>
#include <unordered_set>

#include "core/binio.hpp"
#include "core/diskstore.hpp"

namespace syndcim::dse {

using core::BinDecodeError;
using core::BinReader;
using core::BinWriter;

namespace {

constexpr char kShardMagic[4] = {'S', 'Y', 'S', 'H'};
constexpr std::uint32_t kShardVersion = 1;

void encode_ints(BinWriter& w, const std::vector<int>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const int i : v) w.i32(i);
}

std::vector<int> decode_ints(BinReader& r) {
  const std::uint32_t n = r.len(4);
  std::vector<int> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.i32());
  return v;
}

void encode_fp_formats(BinWriter& w, const std::vector<num::FpFormat>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const num::FpFormat& f : v) {
    w.i32(f.exp_bits);
    w.i32(f.man_bits);
  }
}

std::vector<num::FpFormat> decode_fp_formats(BinReader& r) {
  const std::uint32_t n = r.len(8);
  std::vector<num::FpFormat> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    num::FpFormat f;
    f.exp_bits = r.i32();
    f.man_bits = r.i32();
    v.push_back(f);
  }
  return v;
}

template <typename E>
void encode_enum(BinWriter& w, E e) {
  w.u8(static_cast<std::uint8_t>(e));
}

template <typename E>
E decode_enum(BinReader& r, std::uint8_t max, const char* what) {
  const std::uint8_t v = r.u8();
  if (v > max) throw BinDecodeError(std::string("bad enum value for ") + what);
  return static_cast<E>(v);
}

void encode_config(BinWriter& w, const rtlgen::MacroConfig& c) {
  w.i32(c.rows);
  w.i32(c.cols);
  w.i32(c.mcr);
  encode_ints(w, c.input_bits);
  encode_ints(w, c.weight_bits);
  encode_fp_formats(w, c.fp_formats);
  w.i32(c.fp_guard_bits);
  encode_enum(w, c.bitcell);
  encode_enum(w, c.mux);
  w.i32(c.tree.rows);
  encode_enum(w, c.tree.style);
  w.f64(c.tree.fa_fraction);
  w.b(c.tree.carry_reorder);
  w.b(c.tree.external_cpa);
  w.b(c.pipe.reg_after_tree);
  w.b(c.pipe.retime_tree_cpa);
  w.b(c.ofu.input_reg);
  w.i32(c.ofu.pipeline_regs);
  w.b(c.ofu.retime_stage1);
  w.i32(c.column_split);
}

rtlgen::MacroConfig decode_config(BinReader& r) {
  rtlgen::MacroConfig c;
  c.rows = r.i32();
  c.cols = r.i32();
  c.mcr = r.i32();
  c.input_bits = decode_ints(r);
  c.weight_bits = decode_ints(r);
  c.fp_formats = decode_fp_formats(r);
  c.fp_guard_bits = r.i32();
  c.bitcell = decode_enum<rtlgen::BitcellKind>(
      r, static_cast<std::uint8_t>(rtlgen::BitcellKind::k12T), "bitcell");
  c.mux = decode_enum<rtlgen::MuxStyle>(
      r, static_cast<std::uint8_t>(rtlgen::MuxStyle::kOai22Fused), "mux");
  c.tree.rows = r.i32();
  c.tree.style = decode_enum<rtlgen::AdderTreeStyle>(
      r, static_cast<std::uint8_t>(rtlgen::AdderTreeStyle::kMixed),
      "tree style");
  c.tree.fa_fraction = r.f64();
  c.tree.carry_reorder = r.b();
  c.tree.external_cpa = r.b();
  c.pipe.reg_after_tree = r.b();
  c.pipe.retime_tree_cpa = r.b();
  c.ofu.input_reg = r.b();
  c.ofu.pipeline_regs = r.i32();
  c.ofu.retime_stage1 = r.b();
  c.column_split = r.i32();
  return c;
}

void encode_spec(BinWriter& w, const core::PerfSpec& s) {
  w.i32(s.rows);
  w.i32(s.cols);
  w.i32(s.mcr);
  encode_ints(w, s.input_bits);
  encode_ints(w, s.weight_bits);
  encode_fp_formats(w, s.fp_formats);
  w.i32(s.fp_guard_bits);
  w.f64(s.mac_freq_mhz);
  w.f64(s.wupdate_freq_mhz);
  w.f64(s.vdd);
  w.f64(s.timing_margin);
  w.f64(s.pref.power);
  w.f64(s.pref.area);
  w.f64(s.pref.performance);
  w.b(s.bitcell.has_value());
  if (s.bitcell) encode_enum(w, *s.bitcell);
  w.b(s.mux.has_value());
  if (s.mux) encode_enum(w, *s.mux);
  w.b(s.tree_style.has_value());
  if (s.tree_style) encode_enum(w, *s.tree_style);
}

core::PerfSpec decode_spec(BinReader& r) {
  core::PerfSpec s;
  s.rows = r.i32();
  s.cols = r.i32();
  s.mcr = r.i32();
  s.input_bits = decode_ints(r);
  s.weight_bits = decode_ints(r);
  s.fp_formats = decode_fp_formats(r);
  s.fp_guard_bits = r.i32();
  s.mac_freq_mhz = r.f64();
  s.wupdate_freq_mhz = r.f64();
  s.vdd = r.f64();
  s.timing_margin = r.f64();
  s.pref.power = r.f64();
  s.pref.area = r.f64();
  s.pref.performance = r.f64();
  if (r.b()) {
    s.bitcell = decode_enum<rtlgen::BitcellKind>(
        r, static_cast<std::uint8_t>(rtlgen::BitcellKind::k12T), "bitcell");
  }
  if (r.b()) {
    s.mux = decode_enum<rtlgen::MuxStyle>(
        r, static_cast<std::uint8_t>(rtlgen::MuxStyle::kOai22Fused), "mux");
  }
  if (r.b()) {
    s.tree_style = decode_enum<rtlgen::AdderTreeStyle>(
        r, static_cast<std::uint8_t>(rtlgen::AdderTreeStyle::kMixed),
        "tree style");
  }
  return s;
}

void encode_point(BinWriter& w, const core::DesignPoint& p) {
  encode_config(w, p.cfg);
  w.f64(p.ppa.fmax_mhz);
  w.f64(p.ppa.write_fmax_mhz);
  w.f64(p.ppa.power_uw);
  w.f64(p.ppa.area_um2);
  w.f64(p.ppa.energy_per_mac_fj);
  w.i32(p.ppa.latency_cycles);
  w.f64(p.ppa.tops_1b);
  w.b(p.feasible);
  w.u32(static_cast<std::uint32_t>(p.applied.size()));
  for (const std::string& s : p.applied) w.str(s);
  w.str(p.label);
}

core::DesignPoint decode_point(BinReader& r) {
  core::DesignPoint p;
  p.cfg = decode_config(r);
  p.ppa.fmax_mhz = r.f64();
  p.ppa.write_fmax_mhz = r.f64();
  p.ppa.power_uw = r.f64();
  p.ppa.area_um2 = r.f64();
  p.ppa.energy_per_mac_fj = r.f64();
  p.ppa.latency_cycles = r.i32();
  p.ppa.tops_1b = r.f64();
  p.feasible = r.b();
  const std::uint32_t n_applied = r.len(4);
  p.applied.reserve(n_applied);
  for (std::uint32_t i = 0; i < n_applied; ++i) p.applied.push_back(r.str());
  p.label = r.str();
  return p;
}

}  // namespace

ShardResult make_shard_result(const std::vector<core::PerfSpec>& specs,
                              const SweepReport& rep, std::size_t shard_index,
                              std::size_t shard_count) {
  ShardResult s;
  s.shard_index = shard_index;
  s.shard_count = shard_count;
  s.specs = specs;
  for (std::size_t i = 0; i < rep.per_spec.size(); ++i) {
    if (!shard_owns(i, shard_index, shard_count)) continue;
    ShardResult::OwnedSpec owned;
    owned.spec_index = i;
    owned.pareto = rep.per_spec[i].result.pareto;
    s.owned.push_back(std::move(owned));
  }
  return s;
}

std::string encode_shard_result(const ShardResult& s) {
  BinWriter w;
  w.bytes(kShardMagic, sizeof(kShardMagic));
  w.u32(kShardVersion);
  w.u64(s.shard_index);
  w.u64(s.shard_count);
  w.u32(static_cast<std::uint32_t>(s.specs.size()));
  for (const core::PerfSpec& spec : s.specs) encode_spec(w, spec);
  w.u32(static_cast<std::uint32_t>(s.owned.size()));
  for (const ShardResult::OwnedSpec& o : s.owned) {
    w.u64(o.spec_index);
    w.u32(static_cast<std::uint32_t>(o.pareto.size()));
    for (const core::DesignPoint& p : o.pareto) encode_point(w, p);
  }
  return w.take();
}

ShardResult decode_shard_result(std::string_view payload) {
  BinReader r(payload);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r.u8());
  if (magic[0] != 'S' || magic[1] != 'Y' || magic[2] != 'S' ||
      magic[3] != 'H') {
    throw BinDecodeError("not a shard file (bad magic)");
  }
  if (r.u32() != kShardVersion) {
    throw BinDecodeError("unsupported shard file version");
  }
  ShardResult s;
  s.shard_index = static_cast<std::size_t>(r.u64());
  s.shard_count = static_cast<std::size_t>(r.u64());
  const std::uint32_t n_specs = r.len(64);
  s.specs.reserve(n_specs);
  for (std::uint32_t i = 0; i < n_specs; ++i) s.specs.push_back(decode_spec(r));
  const std::uint32_t n_owned = r.len(12);
  s.owned.reserve(n_owned);
  for (std::uint32_t i = 0; i < n_owned; ++i) {
    ShardResult::OwnedSpec o;
    o.spec_index = static_cast<std::size_t>(r.u64());
    if (o.spec_index >= s.specs.size()) {
      throw BinDecodeError("shard owned spec index out of range");
    }
    const std::uint32_t n_pts = r.len(64);
    o.pareto.reserve(n_pts);
    for (std::uint32_t p = 0; p < n_pts; ++p) {
      o.pareto.push_back(decode_point(r));
    }
    s.owned.push_back(std::move(o));
  }
  r.expect_end();
  return s;
}

bool write_shard_file(const std::string& path, const ShardResult& s) {
  const std::string payload = encode_shard_result(s);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  return static_cast<bool>(out);
}

ShardResult read_shard_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open shard file: " + path);
  const std::string payload((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  return decode_shard_result(payload);
}

SweepReport merge_shards(const cell::Library& lib,
                         const std::vector<std::string>& paths,
                         const MergeOptions& opt) {
  if (paths.empty()) {
    throw std::invalid_argument("merge_shards: no shard files");
  }
  std::vector<ShardResult> shards;
  shards.reserve(paths.size());
  for (const std::string& p : paths) shards.push_back(read_shard_file(p));

  // Consistency: every shard must come from the same (grid, N) partition,
  // and the set must cover each shard index exactly once.
  const ShardResult& first = shards.front();
  const std::string grid_key = [&] {
    std::string k;
    for (const core::PerfSpec& s : first.specs) k += core::spec_full_key(s);
    return k;
  }();
  std::unordered_set<std::size_t> seen_idx;
  for (const ShardResult& s : shards) {
    if (s.shard_count != shards.size()) {
      throw std::invalid_argument(
          "merge_shards: shard count mismatch (expected " +
          std::to_string(s.shard_count) + " files, got " +
          std::to_string(shards.size()) + ")");
    }
    if (s.shard_index >= s.shard_count || !seen_idx.insert(s.shard_index).second) {
      throw std::invalid_argument("merge_shards: duplicate or bad shard index " +
                                  std::to_string(s.shard_index));
    }
    std::string k;
    for (const core::PerfSpec& sp : s.specs) k += core::spec_full_key(sp);
    if (k != grid_key) {
      throw std::invalid_argument("merge_shards: spec grids differ");
    }
  }

  // Rebuild exactly the per_spec array the single-process run would hold:
  // the full grid in global order, each spec's Pareto set from its owner.
  SweepReport rep;
  rep.per_spec.reserve(first.specs.size());
  for (const core::PerfSpec& s : first.specs) {
    SpecResult sr;
    sr.spec = s;
    rep.per_spec.push_back(std::move(sr));
  }
  for (const ShardResult& s : shards) {
    for (const ShardResult::OwnedSpec& o : s.owned) {
      if (!shard_owns(o.spec_index, s.shard_index, s.shard_count)) {
        throw std::invalid_argument(
            "merge_shards: shard claims a spec it does not own");
      }
      rep.per_spec[o.spec_index].result.pareto = o.pareto;
    }
  }

  // From here the path is the same code run_sweep executes after its own
  // per-spec reduction — which is the whole determinism argument.
  rep.frontier = merge_global_frontier(rep.per_spec);
  if (opt.lint_frontier) {
    core::ArtifactStore store;
    std::unique_ptr<core::DiskBlobStore> disk;
    if (!opt.store_dir.empty()) {
      disk = std::make_unique<core::DiskBlobStore>(opt.store_dir);
      store.attach_blob_store(disk.get());
    }
    lint_frontier_points(lib, rep.frontier, store);
    if (disk != nullptr) {
      store.flush_l2();
      if (opt.diag != nullptr) disk->drain_diags(*opt.diag);
    }
    rep.artifacts = store.stats();
  }
  return rep;
}

}  // namespace syndcim::dse

#include "dse/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <mutex>
#include <sstream>
#include <unordered_set>

#include "core/diag.hpp"
#include "core/diskstore.hpp"
#include "dse/shard.hpp"
#include "lint/lint.hpp"
#include "obs/obs.hpp"
#include "netlist/stitch.hpp"
#include "rtlgen/macro.hpp"

namespace syndcim::dse {

namespace {

/// Shortest-round-trip decimal rendering: deterministic for a given
/// build, readable in the report.
std::string jnum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void point_json(std::ostringstream& os, const FrontierPoint& fp,
                const core::PerfSpec& spec, const char* indent,
                bool with_timeline = false) {
  const core::DesignPoint& p = fp.point;
  os << indent << "{\"label\": \"" << p.label << "\", \"spec_index\": "
     << fp.spec_index << ", \"point_id\": \"" << fp.point_id
     << "\", \"feasible\": " << (p.feasible ? "true" : "false")
     << ", \"fmax_mhz\": " << jnum(p.ppa.fmax_mhz)
     << ", \"power_uw\": " << jnum(p.ppa.power_uw)
     << ", \"area_um2\": " << jnum(p.ppa.area_um2)
     << ", \"energy_per_mac_fj\": " << jnum(p.ppa.energy_per_mac_fj)
     << ", \"tops_1b\": " << jnum(p.ppa.tops_1b)
     << ", \"latency_cycles\": " << p.ppa.latency_cycles
     // The architecture/clock facts netmap needs to tile and schedule a
     // model against this point without re-deriving the sweep.
     << ", \"macro\": {\"rows\": " << p.cfg.rows
     << ", \"cols\": " << p.cfg.cols << ", \"mcr\": " << p.cfg.mcr
     << ", \"input_bits\": [";
  for (std::size_t i = 0; i < p.cfg.input_bits.size(); ++i) {
    os << (i ? ", " : "") << p.cfg.input_bits[i];
  }
  os << "], \"weight_bits\": [";
  for (std::size_t i = 0; i < p.cfg.weight_bits.size(); ++i) {
    os << (i ? ", " : "") << p.cfg.weight_bits[i];
  }
  os << "], \"mac_mhz\": " << jnum(spec.mac_freq_mhz)
     << ", \"wupdate_mhz\": " << jnum(spec.wupdate_freq_mhz)
     << ", \"write_fmax_mhz\": " << jnum(p.ppa.write_fmax_mhz) << "}"
     << ", \"applied\": [";
  for (std::size_t i = 0; i < p.applied.size(); ++i) {
    os << (i ? ", " : "") << '"' << p.applied[i] << '"';
  }
  os << "]";
  if (fp.lint_errors >= 0) {
    os << ", \"lint\": {\"errors\": " << fp.lint_errors
       << ", \"warnings\": " << fp.lint_warnings << "}";
  }
  if (with_timeline && !fp.timeline.phases.empty()) {
    os << ", \"phases\": " << fp.timeline.to_json();
  }
  os << "}";
}

void spec_json(std::ostringstream& os, const core::PerfSpec& s) {
  os << "{\"rows\": " << s.rows << ", \"cols\": " << s.cols
     << ", \"mcr\": " << s.mcr << ", \"mac_mhz\": " << jnum(s.mac_freq_mhz)
     << ", \"wupdate_mhz\": " << jnum(s.wupdate_freq_mhz)
     << ", \"vdd\": " << jnum(s.vdd) << ", \"pref\": ["
     << jnum(s.pref.power) << ", " << jnum(s.pref.area) << ", "
     << jnum(s.pref.performance) << "]}";
}

/// Per-run view of tier statistics against a start-of-run snapshot:
/// hit/miss/evicted counts become deltas (what *this* sweep did), while
/// entries/bytes stay absolute (occupancy is a property of the store).
/// With a sweep-private store the snapshot is all-zero and the deltas are
/// the totals, so the batch path's report is unchanged.
std::vector<core::ArtifactTierStats> tier_deltas(
    const std::vector<core::ArtifactTierStats>& before,
    std::vector<core::ArtifactTierStats> after) {
  for (std::size_t i = 0; i < after.size() && i < before.size(); ++i) {
    after[i].hits -= before[i].hits;
    after[i].misses -= before[i].misses;
    after[i].evicted -= before[i].evicted;
    after[i].l2_hits -= before[i].l2_hits;
    after[i].l2_misses -= before[i].l2_misses;
    after[i].l2_writes -= before[i].l2_writes;
    after[i].l2_write_fails -= before[i].l2_write_fails;
    after[i].l2_rejects -= before[i].l2_rejects;
  }
  return after;
}

EvalCacheStats cache_deltas(const EvalCacheStats& before,
                            EvalCacheStats after) {
  after.hits -= before.hits;
  after.misses -= before.misses;
  after.inflight_waits -= before.inflight_waits;
  after.miss_eval_ms -= before.miss_eval_ms;
  after.loaded -= before.loaded;
  after.rejected -= before.rejected;
  return after;
}

/// Non-dominated filtering over the merged shard fronts. Unlike the
/// per-spec (power, area) front, the global merge spans specs with
/// different clock targets, so throughput joins the dominance check:
/// a 450 MHz design burning more power than a 250 MHz one is not
/// dominated — it delivers more TOPS. Ties are broken by a total sort
/// order — (power, area, spec_index, label) — so the global frontier is
/// bit-identical no matter how the input was ordered.
std::vector<FrontierPoint> global_front(std::vector<FrontierPoint> pts) {
  std::vector<FrontierPoint> front;
  for (const FrontierPoint& p : pts) {
    if (!p.point.feasible) continue;
    bool dominated = false;
    for (const FrontierPoint& q : pts) {
      if (!q.point.feasible || &q == &p) continue;
      const bool no_worse = q.point.ppa.power_uw <= p.point.ppa.power_uw &&
                            q.point.ppa.area_um2 <= p.point.ppa.area_um2 &&
                            q.point.ppa.tops_1b >= p.point.ppa.tops_1b;
      const bool better = q.point.ppa.power_uw < p.point.ppa.power_uw ||
                          q.point.ppa.area_um2 < p.point.ppa.area_um2 ||
                          q.point.ppa.tops_1b > p.point.ppa.tops_1b;
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(p);
  }
  std::sort(front.begin(), front.end(),
            [](const FrontierPoint& a, const FrontierPoint& b) {
              if (a.point.ppa.power_uw != b.point.ppa.power_uw) {
                return a.point.ppa.power_uw < b.point.ppa.power_uw;
              }
              if (a.point.ppa.area_um2 != b.point.ppa.area_um2) {
                return a.point.ppa.area_um2 < b.point.ppa.area_um2;
              }
              if (a.spec_index != b.spec_index) {
                return a.spec_index < b.spec_index;
              }
              return a.point.label < b.point.label;
            });
  front.erase(
      std::unique(front.begin(), front.end(),
                  [](const FrontierPoint& a, const FrontierPoint& b) {
                    return std::abs(a.point.ppa.power_uw -
                                    b.point.ppa.power_uw) < 1e-9 &&
                           std::abs(a.point.ppa.area_um2 -
                                    b.point.ppa.area_um2) < 1e-9 &&
                           std::abs(a.point.ppa.tops_1b -
                                    b.point.ppa.tops_1b) < 1e-12;
                  }),
      front.end());
  return front;
}

}  // namespace

std::vector<core::PerfSpec> SweepGrid::expand() const {
  const std::vector<double> freqs =
      mac_freqs_mhz.empty() ? std::vector<double>{base.mac_freq_mhz}
                            : mac_freqs_mhz;
  const std::vector<int> mcr_list = mcrs.empty() ? std::vector<int>{base.mcr}
                                                 : mcrs;
  const std::vector<std::vector<int>> prec_list =
      precisions.empty() ? std::vector<std::vector<int>>{base.input_bits}
                         : precisions;
  const std::vector<core::PpaPreference> pref_list =
      prefs.empty() ? std::vector<core::PpaPreference>{base.pref} : prefs;

  std::vector<core::PerfSpec> out;
  out.reserve(freqs.size() * mcr_list.size() * prec_list.size() *
              pref_list.size());
  for (const double f : freqs) {
    for (const int m : mcr_list) {
      for (const std::vector<int>& bits : prec_list) {
        for (const core::PpaPreference& pref : pref_list) {
          core::PerfSpec s = base;
          s.mac_freq_mhz = f;
          s.mcr = m;
          if (!bits.empty()) {
            s.input_bits = bits;
            s.weight_bits = bits;
          }
          s.pref = pref;
          out.push_back(std::move(s));
        }
      }
    }
  }
  return out;
}

SweepGrid grid_from_kv(std::map<std::string, std::string> kv) {
  SweepGrid grid;
  if (const auto it = kv.find("sweep_mac_mhz"); it != kv.end()) {
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
      grid.mac_freqs_mhz.push_back(std::stod(item));
    }
    kv.erase(it);
  }
  if (const auto it = kv.find("sweep_mcr"); it != kv.end()) {
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
      grid.mcrs.push_back(std::stoi(item));
    }
    kv.erase(it);
  }
  if (const auto it = kv.find("sweep_bits"); it != kv.end()) {
    std::stringstream groups(it->second);
    std::string group;
    while (std::getline(groups, group, ';')) {
      std::stringstream ss(group);
      std::string item;
      std::vector<int> bits;
      while (std::getline(ss, item, ',')) bits.push_back(std::stoi(item));
      grid.precisions.push_back(std::move(bits));
    }
    kv.erase(it);
  }
  if (const auto it = kv.find("sweep_pref"); it != kv.end()) {
    std::stringstream ss(it->second);
    std::string name;
    while (std::getline(ss, name, ',')) {
      grid.prefs.push_back(core::named_pref(name));
    }
    kv.erase(it);
  }
  grid.base = core::spec_from_kv(kv);
  // Default grid (12 points) when no dimension was given: frequency x
  // MCR x preference around the base spec.
  if (grid.mac_freqs_mhz.empty() && grid.mcrs.empty() &&
      grid.precisions.empty() && grid.prefs.empty()) {
    grid.mac_freqs_mhz = {250.0, 350.0, 450.0};
    grid.mcrs = {1, 2};
    grid.prefs = {core::named_pref("balanced"), core::named_pref("power")};
  }
  return grid;
}

SweepReport run_sweep(const cell::Library& lib,
                      const std::vector<core::PerfSpec>& specs,
                      const SweepOptions& opt) {
  OBS_SPAN("dse.sweep");
  const auto t0 = std::chrono::steady_clock::now();
  const int threads =
      opt.threads > 0 ? opt.threads : WorkStealingPool::default_threads();

  // One shared SCL (its slice cache is spec-independent, so every task
  // benefits), wrapped in the thread-safe backend, optionally memoized.
  // Every worker characterizes through one subcircuit-artifact store —
  // the fine-grained second cache tier; disabling it bypasses the tiers
  // but runs the identical code path. A caller-owned store (the serve
  // daemon's process-wide one) is adopted via a non-owning handle, and
  // its enabled state is the owner's business.
  const std::shared_ptr<core::ArtifactStore> store =
      opt.shared_store != nullptr
          ? std::shared_ptr<core::ArtifactStore>(opt.shared_store,
                                                 [](core::ArtifactStore*) {})
          : std::make_shared<core::ArtifactStore>();
  if (opt.shared_store == nullptr) store->set_enabled(opt.use_artifact_cache);
  core::SubcircuitLibrary scl(lib, store);
  core::SclEvalBackend raw(scl);
  EvalCache own_cache;
  EvalCache& cache =
      opt.shared_eval_cache != nullptr ? *opt.shared_eval_cache : own_cache;
  if (opt.use_cache && opt.shared_eval_cache == nullptr &&
      !opt.cache_path.empty()) {
    (void)cache.load_json(opt.cache_path);
  }
  // Start-of-run snapshots: report/metric statistics stay per-run deltas
  // even when the store/cache outlive this sweep.
  const std::vector<core::ArtifactTierStats> store_before = store->stats();
  const EvalCacheStats cache_before = cache.stats();
  CachedEvalBackend cached(raw, cache);
  core::EvalBackend& backend =
      opt.use_cache ? static_cast<core::EvalBackend&>(cached) : raw;
  core::MsoSearcher searcher(backend);

  // Durable L2 under the private artifact store: a second sweep over the
  // same grid starts warm, and concurrent shard processes share the
  // directory as their common cache. A caller-owned store keeps whatever
  // persistence its owner wired.
  std::unique_ptr<core::DiskBlobStore> disk;
  if (!opt.store_dir.empty() && opt.shared_store == nullptr) {
    disk = std::make_unique<core::DiskBlobStore>(opt.store_dir);
    store->attach_blob_store(disk.get());
  }

  // Enumerate every (spec, trajectory) task up front; seeds are cheap.
  // Results land in preallocated slots so the merge below is independent
  // of the execution schedule. Under --shard i/N only the owned specs
  // get tasks; the others keep empty slots (and empty per-spec results),
  // preserving global spec indices for the byte-identical merge.
  struct Task {
    std::size_t spec_idx;
    std::size_t traj_idx;
    core::TrajectorySeed seed;
  };
  std::vector<Task> tasks;
  std::vector<std::vector<core::SearchResult>> slots(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!shard_owns(i, opt.shard_index, opt.shard_count)) continue;
    auto seeds = core::MsoSearcher::trajectory_seeds(specs[i]);
    slots[i].resize(seeds.size());
    for (std::size_t j = 0; j < seeds.size(); ++j) {
      tasks.push_back({i, j, std::move(seeds[j])});
    }
  }

  SweepReport rep;
  rep.n_tasks = tasks.size();
  std::exception_ptr first_error;
  std::mutex error_mu;
  {
    WorkStealingPool pool(threads);
    for (const Task& t : tasks) {
      pool.submit([&searcher, &specs, &slots, &t, &first_error, &error_mu,
                   &opt] {
        // Cooperative cancellation boundary: once the token trips
        // (request deadline, drain, SIGINT) the remaining tasks become
        // no-ops and their slots stay empty — the merge below simply sees
        // fewer trajectory fragments.
        if (opt.cancel != nullptr && opt.cancel->cancelled()) return;
        try {
          slots[t.spec_idx][t.traj_idx] =
              searcher.run_trajectory(t.seed, specs[t.spec_idx]);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();
    rep.pool = pool.stats();
  }
  if (first_error) std::rethrow_exception(first_error);
  rep.cancelled = opt.cancel != nullptr && opt.cancel->cancelled();

  // Per-spec reduction: concatenate the trajectory fragments in seed
  // order (identical to a sequential MsoSearcher::search) and extract
  // each spec's own front.
  rep.per_spec.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SpecResult sr;
    sr.spec = specs[i];
    for (core::SearchResult& frag : slots[i]) {
      sr.result.append(std::move(frag));
    }
    sr.result.pareto = core::pareto_front(sr.result.explored);
    rep.per_spec.push_back(std::move(sr));
  }

  // Global reduction, shared with the shard merge (dse/shard.cpp): see
  // merge_global_frontier below.
  rep.frontier = merge_global_frontier(rep.per_spec);

  // Static sanity of every surviving frontier point: a frontier entry is
  // what a user will actually implement, so its elaborated netlist gets
  // the same checks the compiler runs before signoff. Sequential (the
  // frontier is small) and pure, keeping the report thread-count
  // independent.
  if (opt.lint_frontier && !rep.cancelled) {
    lint_frontier_points(lib, rep.frontier, *store);
  }

  if (opt.use_cache && opt.shared_eval_cache == nullptr &&
      !opt.cache_path.empty()) {
    if (!cache.save_json(opt.cache_path)) {
      ++rep.cache_save_fails;
      if (opt.diag != nullptr) {
        opt.diag->warning("CACHE-SAVEFAIL",
                          "failed to persist evaluation cache",
                          opt.cache_path);
      }
    }
  }
  if (disk != nullptr) {
    // Drain makes the run durable: dirty L1 entries become L2 objects,
    // so the next invocation (or another shard) starts warm.
    store->flush_l2();
    if (opt.diag != nullptr) disk->drain_diags(*opt.diag);
    rep.store_json = disk->stats_json();
  }
  rep.cache = cache_deltas(cache_before, cache.stats());
  rep.artifacts = tier_deltas(store_before, store->stats());
  rep.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  // Publish this run's authoritative pool/cache statistics into the
  // metrics registry (the hot paths themselves only feed trace spans and
  // the queue-depth histogram, so nothing is counted twice). Always on:
  // one registry pass per sweep is noise, and it keeps the CLI summary
  // and --metrics dumps truthful even when tracing is off.
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("dse.cache.hit").inc(rep.cache.hits);
  m.counter("dse.cache.miss").inc(rep.cache.misses);
  m.counter("dse.cache.inflight_wait").inc(rep.cache.inflight_waits);
  m.counter("dse.cache.load").inc(rep.cache.loaded);
  m.counter("dse.cache.reject").inc(rep.cache.rejected);
  m.counter("dse.pool.execute").inc(rep.pool.executed);
  m.counter("dse.pool.steal").inc(rep.pool.stolen);
  m.counter("dse.sweep.task").inc(rep.n_tasks);
  m.counter("dse.sweep.run").inc();
  m.gauge("dse.pool.threads").set(static_cast<double>(rep.pool.threads));
  m.gauge("dse.sweep.wall_ms").set(rep.wall_ms);
  m.counter("dse.artifact.hit").inc(rep.artifact_hits());
  m.counter("dse.artifact.miss").inc(rep.artifact_misses());
  for (const core::ArtifactTierStats& t : rep.artifacts) {
    m.gauge("dse.artifact." + t.name + ".entries")
        .set(static_cast<double>(t.entries));
  }
  return rep;
}

std::vector<FrontierPoint> merge_global_frontier(
    const std::vector<SpecResult>& per_spec) {
  // Merge the shard fronts, dropping duplicate (config, timing-knob)
  // evaluations (specs differing only in PPA preference explore
  // identical points), then re-filter dominance over the union.
  std::vector<FrontierPoint> merged;
  std::unordered_set<std::string> seen;
  for (std::size_t i = 0; i < per_spec.size(); ++i) {
    for (const core::DesignPoint& p : per_spec[i].result.pareto) {
      const std::string key = canonical_config_key(p.cfg) + "|" +
                              canonical_spec_knobs_key(per_spec[i].spec);
      if (!seen.insert(key).second) continue;
      FrontierPoint fp;
      fp.point = p;
      fp.spec_index = i;
      // The id hashes exactly the dedup key above, so identical
      // evaluations share an id across sweeps and thread counts.
      fp.point_id = frontier_point_id(p.cfg, per_spec[i].spec);
      merged.push_back(std::move(fp));
    }
  }
  return global_front(std::move(merged));
}

void lint_frontier_points(const cell::Library& lib,
                          std::vector<FrontierPoint>& frontier,
                          core::ArtifactStore& store) {
  OBS_SPAN("dse.frontier.lint");
  for (FrontierPoint& fp : frontier) {
    const rtlgen::MacroDesign macro = [&] {
      obs::PhaseScope phase(fp.timeline, "rtlgen");
      return rtlgen::gen_macro(fp.point.cfg, &store.modules);
    }();
    const netlist::FlatNetlist flat = [&] {
      obs::PhaseScope phase(fp.timeline, "map");
      // Stitch pre-flattened subcircuit blocks (byte-identical to a
      // monolithic flatten; a search that ran in this process already
      // populated the block tier with this point's subcircuits).
      return std::move(
          netlist::stitch_flatten(macro.design, macro.top, &store.blocks)
              .nl);
    }();
    obs::PhaseScope phase(fp.timeline, "lint");
    core::DiagEngine diag;
    const lint::LintSummary s = lint::lint_netlist(flat, lib, diag);
    fp.lint_errors = static_cast<int>(s.errors);
    fp.lint_warnings = static_cast<int>(s.warnings);
  }
}

std::uint64_t SweepReport::artifact_hits() const {
  std::uint64_t n = 0;
  for (const core::ArtifactTierStats& t : artifacts) n += t.hits;
  return n;
}

std::uint64_t SweepReport::artifact_misses() const {
  std::uint64_t n = 0;
  for (const core::ArtifactTierStats& t : artifacts) n += t.misses;
  return n;
}

std::string frontier_point_id(const rtlgen::MacroConfig& cfg,
                              const core::PerfSpec& spec) {
  const std::string key =
      canonical_config_key(cfg) + "|" + canonical_spec_knobs_key(spec);
  char idbuf[17];
  std::snprintf(idbuf, sizeof(idbuf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(key)));
  return idbuf;
}

std::string sweep_frontier_json(const SweepReport& r) {
  std::ostringstream os;
  os << "{\n  \"frontier\": [\n";
  for (std::size_t i = 0; i < r.frontier.size(); ++i) {
    if (i) os << ",\n";
    point_json(os, r.frontier[i],
               r.per_spec[r.frontier[i].spec_index].spec, "    ");
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string sweep_report_json(const SweepReport& r) {
  std::ostringstream os;
  os << "{\n  \"specs\": " << r.per_spec.size()
     << ",\n  \"tasks\": " << r.n_tasks
     << ",\n  \"cancelled\": " << (r.cancelled ? "true" : "false")
     << ",\n  \"wall_ms\": " << jnum(r.wall_ms)
     << ",\n  \"pool\": {\"threads\": " << r.pool.threads
     << ", \"executed\": " << r.pool.executed
     << ", \"stolen\": " << r.pool.stolen << "}"
     << ",\n  \"cache\": {\"hits\": " << r.cache.hits
     << ", \"misses\": " << r.cache.misses
     << ", \"hit_rate\": " << jnum(r.cache.hit_rate())
     << ", \"inflight_waits\": " << r.cache.inflight_waits
     << ", \"miss_eval_ms\": " << jnum(r.cache.miss_eval_ms)
     << ", \"entries\": " << r.cache.entries
     << ", \"loaded\": " << r.cache.loaded
     << ", \"rejected\": " << r.cache.rejected
     << ", \"save_fails\": " << r.cache_save_fails << "}"
     << ",\n  \"artifacts\": {\"hits\": " << r.artifact_hits()
     << ", \"misses\": " << r.artifact_misses() << ", \"tiers\": [";
  for (std::size_t i = 0; i < r.artifacts.size(); ++i) {
    const core::ArtifactTierStats& t = r.artifacts[i];
    if (i) os << ", ";
    os << "{\"name\": \"" << t.name << "\", \"hits\": " << t.hits
       << ", \"misses\": " << t.misses << ", \"entries\": " << t.entries
       << ", \"evicted\": " << t.evicted << ", \"l2_hits\": " << t.l2_hits
       << ", \"l2_misses\": " << t.l2_misses
       << ", \"l2_writes\": " << t.l2_writes
       << ", \"l2_rejects\": " << t.l2_rejects << "}";
  }
  os << "]}";
  if (!r.store_json.empty()) os << ",\n  \"store\": " << r.store_json;
  os << ",\n  \"per_spec\": [\n";
  for (std::size_t i = 0; i < r.per_spec.size(); ++i) {
    const SpecResult& sr = r.per_spec[i];
    if (i) os << ",\n";
    os << "    {\"spec\": ";
    spec_json(os, sr.spec);
    os << ", \"explored\": " << sr.result.explored.size()
       << ", \"pareto\": " << sr.result.pareto.size()
       << ", \"feasible\": " << (sr.result.feasible() ? "true" : "false");
    if (sr.result.feasible()) {
      os << ", \"best\": ";
      FrontierPoint best;
      best.point = sr.result.best(sr.spec.pref);
      best.spec_index = i;
      best.point_id = frontier_point_id(best.point.cfg, sr.spec);
      point_json(os, best, sr.spec, "");
    }
    os << "}";
  }
  os << "\n  ],\n  \"frontier\": [\n";
  for (std::size_t i = 0; i < r.frontier.size(); ++i) {
    if (i) os << ",\n";
    point_json(os, r.frontier[i],
               r.per_spec[r.frontier[i].spec_index].spec, "    ",
               /*with_timeline=*/true);
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace syndcim::dse

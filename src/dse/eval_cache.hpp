#pragma once
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/diag.hpp"
#include "core/eval_backend.hpp"

namespace syndcim::dse {

/// Canonical serialization of every `MacroConfig` field. Two configs get
/// the same string iff they are architecturally identical (doubles are
/// rendered as hexfloat, so no two distinct values collide by rounding).
[[nodiscard]] std::string canonical_config_key(
    const rtlgen::MacroConfig& cfg);

/// Canonical serialization of the `PerfSpec` fields that influence the
/// evaluation outcome: the timing knobs (frequencies, voltage, margin).
/// PPA *preference* weights are deliberately excluded — they only affect
/// final selection, so specs differing in preference alone share cache
/// entries.
[[nodiscard]] std::string canonical_spec_knobs_key(const core::PerfSpec& s);

/// 64-bit FNV-1a over the canonical serializations.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& s);
[[nodiscard]] std::uint64_t hash_config(const rtlgen::MacroConfig& cfg);
[[nodiscard]] std::uint64_t hash_spec_knobs(const core::PerfSpec& s);

/// Full cache key of one evaluation: configuration x spec timing knobs.
[[nodiscard]] std::string eval_key(const rtlgen::MacroConfig& cfg,
                                   const core::PerfSpec& spec);

struct EvalCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Times a thread found the entry being computed by another thread and
  /// waited for it instead of recomputing (in-flight deduplication).
  std::uint64_t inflight_waits = 0;
  /// Wall time spent inside miss-path evaluations.
  double miss_eval_ms = 0.0;
  std::size_t entries = 0;
  std::size_t loaded = 0;    ///< entries imported from disk
  std::size_t rejected = 0;  ///< malformed persisted entries refused
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// Thread-safe content-hashed memoization of `EvalBackend::evaluate`.
/// Sharded (key-hash chooses the shard) so concurrent lookups rarely
/// contend; a miss marks the entry in-flight so that concurrent requests
/// for the same key wait for the first computation instead of repeating
/// it. Optionally persists to a JSON file so repeated sweeps start warm.
class EvalCache {
 public:
  EvalCache() = default;

  /// Hit returns the memoized outcome; nullopt otherwise (in-flight
  /// entries count as absent — lookup never blocks).
  [[nodiscard]] std::optional<core::EvalOutcome> lookup(
      const std::string& key);

  /// Return the cached outcome for `key`, computing it with `compute` on
  /// a miss. Concurrent callers with the same key block until the first
  /// caller's computation lands (and then count it as a hit).
  core::EvalOutcome get_or_compute(
      const std::string& key,
      const std::function<core::EvalOutcome()>& compute);

  /// Insert (overwriting) without touching hit/miss counters.
  void insert(const std::string& key, const core::EvalOutcome& outcome);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] EvalCacheStats stats() const;
  void reset_counters();

  /// JSON persistence. Doubles are stored as hexfloat strings, so a
  /// save/load round-trip is bit-exact. `load_json` merges into the
  /// current contents and returns the number of entries read; it returns
  /// 0 (not an error) if the file does not exist.
  ///
  /// The loader treats the file as untrusted: each entry must have the
  /// exact field layout save_json writes (checked literal keys and field
  /// counts) and every numeric field must round-trip as a finite number.
  /// Truncated or corrupted entries are rejected — counted in
  /// stats().rejected and reported through `diag` (rule CACHE-BADENTRY)
  /// — and the scan resynchronizes on the next entry instead of silently
  /// installing garbage PPA numbers or abandoning the rest of the file.
  bool save_json(const std::string& path) const;
  std::size_t load_json(const std::string& path,
                        core::DiagEngine* diag = nullptr);

 private:
  static constexpr std::size_t kShards = 16;
  struct Entry {
    core::EvalOutcome outcome;
    bool ready = false;  ///< false while the first caller is computing
  };
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<std::string, Entry> map;
  };
  Shard& shard_for(const std::string& key) {
    return shards_[fnv1a64(key) % kShards];
  }
  const Shard& shard_for(const std::string& key) const {
    return shards_[fnv1a64(key) % kShards];
  }

  Shard shards_[kShards];
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inflight_waits_{0};
  std::atomic<std::uint64_t> miss_eval_ns_{0};
  std::atomic<std::uint64_t> loaded_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

/// EvalBackend decorator: memoizes `inner` through `cache`. Thread-safe
/// iff `inner` is (the SCL-backed default, `core::SclEvalBackend`, is).
class CachedEvalBackend final : public core::EvalBackend {
 public:
  CachedEvalBackend(core::EvalBackend& inner, EvalCache& cache)
      : inner_(inner), cache_(cache) {}
  core::EvalOutcome evaluate(const rtlgen::MacroConfig& cfg,
                             const core::PerfSpec& spec) override {
    return cache_.get_or_compute(
        eval_key(cfg, spec), [&] { return inner_.evaluate(cfg, spec); });
  }

 private:
  core::EvalBackend& inner_;
  EvalCache& cache_;
};

}  // namespace syndcim::dse

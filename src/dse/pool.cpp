#include "dse/pool.hpp"

#include <algorithm>
#include <chrono>

namespace syndcim::dse {

namespace {
/// Which worker the current thread is, if it is a pool worker. One pool
/// at a time owns a given thread, so a plain thread_local pair suffices.
thread_local const WorkStealingPool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;
}  // namespace

int WorkStealingPool::default_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

WorkStealingPool::WorkStealingPool(int threads) {
  queue_depth_hist_ = &obs::metrics().histogram(
      "dse.pool.queue_depth", {0, 1, 2, 4, 8, 16, 32, 64, 128});
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait_idle();
  stop_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  for (const auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void WorkStealingPool::submit(std::function<void()> task) {
  std::size_t target;
  if (tl_pool == this) {
    target = tl_worker;  // task-spawned work stays on the spawning worker
  } else {
    target = rr_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  std::size_t depth;
  {
    const std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->deque.push_front(std::move(task));
    depth = workers_[target]->deque.size();
  }
  if (obs::enabled()) {
    queue_depth_hist_->observe(static_cast<double>(depth));
  }
  work_cv_.notify_all();
}

bool WorkStealingPool::try_pop_own(std::size_t self,
                                   std::function<void()>& task) {
  Worker& w = *workers_[self];
  const std::lock_guard<std::mutex> lock(w.mu);
  if (w.deque.empty()) return false;
  task = std::move(w.deque.front());
  w.deque.pop_front();
  return true;
}

bool WorkStealingPool::try_steal(std::size_t self,
                                 std::function<void()>& task) {
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(self + k) % workers_.size()];
    const std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.deque.empty()) continue;
    task = std::move(victim.deque.back());
    victim.deque.pop_back();
    return true;
  }
  return false;
}

void WorkStealingPool::worker_loop(std::size_t self) {
  tl_pool = this;
  tl_worker = self;
  if (obs::enabled()) {
    obs::tracer().set_thread_name("pool-worker-" + std::to_string(self));
  }
  Worker& me = *workers_[self];
  while (true) {
    std::function<void()> task;
    const bool own = try_pop_own(self, task);
    const bool got = own || try_steal(self, task);
    if (got) {
      {
        OBS_SPAN(own ? "dse.task.run" : "dse.task.steal");
        task();
      }
      me.executed.fetch_add(1, std::memory_order_relaxed);
      if (!own) me.stolen.fetch_add(1, std::memory_order_relaxed);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Take the waiter's mutex before notifying so the notification
        // cannot slip between its predicate check and its wait.
        { const std::lock_guard<std::mutex> lock(idle_mu_); }
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(work_mu_);
    if (stop_.load(std::memory_order_acquire)) break;
    // Re-check after a bounded wait: a task may have been enqueued
    // between the failed scan and this wait.
    work_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  tl_pool = nullptr;
}

void WorkStealingPool::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

WorkStealingPool::Stats WorkStealingPool::stats() const {
  Stats s;
  s.threads = size();
  for (const auto& w : workers_) {
    s.executed += w->executed.load(std::memory_order_relaxed);
    s.stolen += w->stolen.load(std::memory_order_relaxed);
  }
  return s;
}

void parallel_for(WorkStealingPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace syndcim::dse

#include "dse/eval_cache.hpp"

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/obs.hpp"

namespace syndcim::dse {

namespace {

/// Exact, locale-independent double rendering (round-trips via strtod).
std::string hexd(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

std::string canonical_config_key(const rtlgen::MacroConfig& c) {
  std::ostringstream os;
  os << "cfg{r" << c.rows << ",c" << c.cols << ",m" << c.mcr << ",ib";
  for (const int b : c.input_bits) os << '.' << b;
  os << ",wb";
  for (const int b : c.weight_bits) os << '.' << b;
  os << ",fp";
  for (const auto& f : c.fp_formats) os << '.' << f.name();
  os << ",g" << c.fp_guard_bits << ",bc" << static_cast<int>(c.bitcell)
     << ",mx" << static_cast<int>(c.mux)
     << ",tr{" << c.tree.rows << ',' << static_cast<int>(c.tree.style)
     << ',' << hexd(c.tree.fa_fraction) << ',' << c.tree.carry_reorder
     << ',' << c.tree.external_cpa << "}"
     << ",pp{" << c.pipe.reg_after_tree << ',' << c.pipe.retime_tree_cpa
     << "}"
     << ",of{" << c.ofu.input_reg << ',' << c.ofu.pipeline_regs << ','
     << c.ofu.retime_stage1 << "}"
     << ",sp" << c.column_split << "}";
  return os.str();
}

std::string canonical_spec_knobs_key(const core::PerfSpec& s) {
  // Single source of truth: stage artifact keys embed the same string, so
  // the two cache tiers can never disagree about what a "spec knob" is.
  return core::spec_knobs_key(s);
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_config(const rtlgen::MacroConfig& cfg) {
  return fnv1a64(canonical_config_key(cfg));
}

std::uint64_t hash_spec_knobs(const core::PerfSpec& s) {
  return fnv1a64(canonical_spec_knobs_key(s));
}

std::string eval_key(const rtlgen::MacroConfig& cfg,
                     const core::PerfSpec& spec) {
  return canonical_config_key(cfg) + "|" + canonical_spec_knobs_key(spec);
}

std::optional<core::EvalOutcome> EvalCache::lookup(const std::string& key) {
  Shard& sh = shard_for(key);
  const std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(key);
  if (it == sh.map.end() || !it->second.ready) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.outcome;
}

core::EvalOutcome EvalCache::get_or_compute(
    const std::string& key,
    const std::function<core::EvalOutcome()>& compute) {
  Shard& sh = shard_for(key);
  {
    std::unique_lock<std::mutex> lock(sh.mu);
    const auto it = sh.map.find(key);
    if (it != sh.map.end()) {
      if (!it->second.ready) {
        // Another thread is computing this exact evaluation right now:
        // wait for its result instead of repeating the work.
        inflight_waits_.fetch_add(1, std::memory_order_relaxed);
        sh.cv.wait(lock, [&] {
          const auto w = sh.map.find(key);
          return w == sh.map.end() || w->second.ready;
        });
        const auto w = sh.map.find(key);
        if (w != sh.map.end() && w->second.ready) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return w->second.outcome;
        }
        // The computing thread failed and erased the entry — fall
        // through to computing it ourselves (outside the lock).
      } else {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second.outcome;
      }
    }
    sh.map[key] = Entry{};  // in-flight marker (ready = false)
    misses_.fetch_add(1, std::memory_order_relaxed);
  }

  const auto t0 = std::chrono::steady_clock::now();
  core::EvalOutcome outcome;
  try {
    OBS_SPAN("dse.eval.miss");
    outcome = compute();
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(sh.mu);
      sh.map.erase(key);
    }
    sh.cv.notify_all();
    throw;
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  miss_eval_ns_.fetch_add(static_cast<std::uint64_t>(ns),
                          std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(sh.mu);
    Entry& e = sh.map[key];
    e.outcome = outcome;
    e.ready = true;
  }
  sh.cv.notify_all();
  return outcome;
}

void EvalCache::insert(const std::string& key,
                       const core::EvalOutcome& outcome) {
  Shard& sh = shard_for(key);
  const std::lock_guard<std::mutex> lock(sh.mu);
  Entry& e = sh.map[key];
  e.outcome = outcome;
  e.ready = true;
}

std::size_t EvalCache::size() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    const std::lock_guard<std::mutex> lock(sh.mu);
    for (const auto& [k, e] : sh.map) {
      if (e.ready) ++n;
    }
  }
  return n;
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inflight_waits = inflight_waits_.load(std::memory_order_relaxed);
  s.miss_eval_ms =
      static_cast<double>(miss_eval_ns_.load(std::memory_order_relaxed)) /
      1.0e6;
  s.entries = size();
  s.loaded = static_cast<std::size_t>(
      loaded_.load(std::memory_order_relaxed));
  s.rejected = static_cast<std::size_t>(
      rejected_.load(std::memory_order_relaxed));
  return s;
}

void EvalCache::reset_counters() {
  hits_.store(0);
  misses_.store(0);
  inflight_waits_.store(0);
  miss_eval_ns_.store(0);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Extract the next "..."-quoted string starting at or after `pos`;
/// advances `pos` past it. Returns false at end of input.
bool next_quoted(const std::string& s, std::size_t& pos, std::string& out) {
  const std::size_t b = s.find('"', pos);
  if (b == std::string::npos) return false;
  out.clear();
  std::size_t i = b + 1;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) ++i;
    out += s[i++];
  }
  if (i >= s.size()) return false;
  pos = i + 1;
  return true;
}

/// Strict double parse: the token must be a complete finite number
/// (strtod consumes everything, no trailing junk, not inf/nan).
bool parse_finite(const std::string& s, double& out) {
  if (s.empty()) return false;
  const char* begin = s.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end != begin + s.size()) return false;
  if (!std::isfinite(v)) return false;
  out = v;
  return true;
}

/// Strict int parse of the bare number that follows `pos` (after optional
/// whitespace and one leading comma, matching save_json's ", N" layout).
bool parse_bare_int(const std::string& s, std::size_t& pos, long& out) {
  std::size_t i = s.find(',', pos);
  if (i == std::string::npos) return false;
  ++i;
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  const char* begin = s.c_str() + i;
  char* end = nullptr;
  const long v = std::strtol(begin, &end, 10);
  if (end == begin) return false;
  pos = static_cast<std::size_t>(end - s.c_str());
  out = v;
  return true;
}

}  // namespace

bool EvalCache::save_json(const std::string& path) const {
  // Crash-safe persistence: write the whole file to a sibling temp path,
  // then atomically rename it over the destination. A crash (or full
  // disk) mid-write leaves the previous cache intact instead of a
  // truncated file that the next run would reject with CACHE-BADFILE.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) return false;
    f << "{\n  \"format\": \"syndcim-eval-cache\",\n  \"version\": 2,\n"
      << "  \"entries\": [\n";
    bool first = true;
    for (const Shard& sh : shards_) {
      const std::lock_guard<std::mutex> lock(sh.mu);
      for (const auto& [key, e] : sh.map) {
        if (!e.ready) continue;
        const core::PpaEstimate& p = e.outcome.ppa;
        const auto& t = e.outcome.timing;
        if (!first) f << ",\n";
        first = false;
        f << "    {\"key\": \"" << json_escape(key) << "\", \"ppa\": [\""
          << hexd(p.fmax_mhz) << "\", \"" << hexd(p.write_fmax_mhz)
          << "\", \"" << hexd(p.power_uw) << "\", \"" << hexd(p.area_um2)
          << "\", \"" << hexd(p.energy_per_mac_fj) << "\", \""
          << hexd(p.tops_1b) << "\", " << p.latency_cycles
          << "], \"timing\": [\"" << hexd(t.mac_period_ps) << "\", \""
          << hexd(t.ofu_period_ps) << "\", \"" << hexd(t.write_period_ps)
          << "\", " << (t.mac_ok ? 1 : 0) << ", " << (t.ofu_ok ? 1 : 0)
          << ", " << (t.write_ok ? 1 : 0) << "]}";
      }
    }
    f << "\n  ]\n}\n";
    f.flush();
    if (!f.good()) {
      f.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::size_t EvalCache::load_json(const std::string& path,
                                 core::DiagEngine* diag) {
  std::ifstream f(path);
  if (!f) return 0;
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  if (text.find("\"syndcim-eval-cache\"") == std::string::npos) {
    if (diag) {
      diag->warning("CACHE-BADFILE",
                    "persisted cache is missing the "
                    "\"syndcim-eval-cache\" format marker; ignoring it",
                    path, "eval-cache");
    }
    return 0;
  }
  // Cached outcomes are only replayable when they were produced by the
  // same engine semantics; older versions (v1: pre slew/case-analysis
  // fixes) are discarded rather than resurrected as stale numbers.
  if (text.find("\"version\": 2") == std::string::npos) {
    if (diag) {
      diag->warning("CACHE-BADVERSION",
                    "persisted cache was written by an incompatible "
                    "engine version; ignoring it",
                    path, "eval-cache");
    }
    return 0;
  }

  // Entries are parsed positionally: the key string, then 6 quoted
  // hexfloat PPA numbers + 1 bare int, then 3 quoted hexfloats + 3 bare
  // ints for the timing status. This mirrors save_json exactly, but
  // treats the file as untrusted: literal field names are checked, every
  // number must fully round-trip, and a malformed entry is rejected
  // (counted, reported) with the scan resuming at the next entry rather
  // than installing garbage or dropping the rest of the file.
  std::size_t n = 0;
  std::size_t rejected = 0;
  constexpr std::size_t kMaxReported = 8;
  std::size_t pos = text.find("\"entries\"");
  if (pos == std::string::npos) {
    if (diag) {
      diag->warning("CACHE-BADFILE", "persisted cache has no entries array",
                    path, "eval-cache");
    }
    return 0;
  }
  while (true) {
    const std::size_t obj = text.find("{\"key\"", pos);
    if (obj == std::string::npos) break;
    pos = obj + 1;  // resync point: a failure below rescans from here

    const auto reject = [&](const char* why) {
      ++rejected;
      if (diag && rejected <= kMaxReported) {
        diag->warning("CACHE-BADENTRY",
                      std::string("rejected malformed cache entry: ") + why,
                      path, "eval-cache");
      }
    };

    std::string key;
    std::string lit;
    std::size_t p = obj + 1;  // skip '{'
    if (!next_quoted(text, p, lit) || lit != "key" ||
        !next_quoted(text, p, key)) {
      reject("bad key field");
      continue;
    }
    if (!next_quoted(text, p, lit) || lit != "ppa") {
      reject("missing \"ppa\" array");
      continue;
    }
    std::vector<std::string> q(9);
    bool ok = true;
    for (int i = 0; i < 6 && ok; ++i) ok = next_quoted(text, p, q[i]);
    if (!ok) {
      reject("truncated ppa numbers");
      continue;
    }
    long latency = 0;
    if (!parse_bare_int(text, p, latency) || latency < 0) {
      reject("bad latency field");
      continue;
    }
    if (!next_quoted(text, p, lit) || lit != "timing") {
      reject("missing \"timing\" array");
      continue;
    }
    for (int i = 6; i < 9 && ok; ++i) ok = next_quoted(text, p, q[i]);
    if (!ok) {
      reject("truncated timing numbers");
      continue;
    }
    long b0 = 0, b1 = 0, b2 = 0;
    if (!parse_bare_int(text, p, b0) || !parse_bare_int(text, p, b1) ||
        !parse_bare_int(text, p, b2)) {
      reject("bad timing status flags");
      continue;
    }
    double d[9];
    bool finite = true;
    for (int i = 0; i < 9 && finite; ++i) finite = parse_finite(q[i], d[i]);
    if (!finite) {
      reject("numeric field does not round-trip");
      continue;
    }

    core::EvalOutcome o;
    o.ppa.fmax_mhz = d[0];
    o.ppa.write_fmax_mhz = d[1];
    o.ppa.power_uw = d[2];
    o.ppa.area_um2 = d[3];
    o.ppa.energy_per_mac_fj = d[4];
    o.ppa.tops_1b = d[5];
    o.ppa.latency_cycles = static_cast<int>(latency);
    o.timing.mac_period_ps = d[6];
    o.timing.ofu_period_ps = d[7];
    o.timing.write_period_ps = d[8];
    o.timing.mac_ok = b0 != 0;
    o.timing.ofu_ok = b1 != 0;
    o.timing.write_ok = b2 != 0;
    insert(key, o);
    ++n;
    pos = p;
  }
  if (diag && rejected > kMaxReported) {
    diag->info("CACHE-BADENTRY",
               std::to_string(rejected - kMaxReported) +
                   " further malformed cache entries not shown",
               path, "eval-cache");
  }
  loaded_.fetch_add(static_cast<std::uint64_t>(n),
                    std::memory_order_relaxed);
  rejected_.fetch_add(static_cast<std::uint64_t>(rejected),
                      std::memory_order_relaxed);
  return n;
}

}  // namespace syndcim::dse

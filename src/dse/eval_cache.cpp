#include "dse/eval_cache.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace syndcim::dse {

namespace {

/// Exact, locale-independent double rendering (round-trips via strtod).
std::string hexd(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

std::string canonical_config_key(const rtlgen::MacroConfig& c) {
  std::ostringstream os;
  os << "cfg{r" << c.rows << ",c" << c.cols << ",m" << c.mcr << ",ib";
  for (const int b : c.input_bits) os << '.' << b;
  os << ",wb";
  for (const int b : c.weight_bits) os << '.' << b;
  os << ",fp";
  for (const auto& f : c.fp_formats) os << '.' << f.name();
  os << ",g" << c.fp_guard_bits << ",bc" << static_cast<int>(c.bitcell)
     << ",mx" << static_cast<int>(c.mux)
     << ",tr{" << c.tree.rows << ',' << static_cast<int>(c.tree.style)
     << ',' << hexd(c.tree.fa_fraction) << ',' << c.tree.carry_reorder
     << ',' << c.tree.external_cpa << "}"
     << ",pp{" << c.pipe.reg_after_tree << ',' << c.pipe.retime_tree_cpa
     << "}"
     << ",of{" << c.ofu.input_reg << ',' << c.ofu.pipeline_regs << ','
     << c.ofu.retime_stage1 << "}"
     << ",sp" << c.column_split << "}";
  return os.str();
}

std::string canonical_spec_knobs_key(const core::PerfSpec& s) {
  std::ostringstream os;
  os << "spec{f" << hexd(s.mac_freq_mhz) << ",w" << hexd(s.wupdate_freq_mhz)
     << ",v" << hexd(s.vdd) << ",tm" << hexd(s.timing_margin) << "}";
  return os.str();
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_config(const rtlgen::MacroConfig& cfg) {
  return fnv1a64(canonical_config_key(cfg));
}

std::uint64_t hash_spec_knobs(const core::PerfSpec& s) {
  return fnv1a64(canonical_spec_knobs_key(s));
}

std::string eval_key(const rtlgen::MacroConfig& cfg,
                     const core::PerfSpec& spec) {
  return canonical_config_key(cfg) + "|" + canonical_spec_knobs_key(spec);
}

std::optional<core::EvalOutcome> EvalCache::lookup(const std::string& key) {
  Shard& sh = shard_for(key);
  const std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(key);
  if (it == sh.map.end() || !it->second.ready) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.outcome;
}

core::EvalOutcome EvalCache::get_or_compute(
    const std::string& key,
    const std::function<core::EvalOutcome()>& compute) {
  Shard& sh = shard_for(key);
  {
    std::unique_lock<std::mutex> lock(sh.mu);
    const auto it = sh.map.find(key);
    if (it != sh.map.end()) {
      if (!it->second.ready) {
        // Another thread is computing this exact evaluation right now:
        // wait for its result instead of repeating the work.
        inflight_waits_.fetch_add(1, std::memory_order_relaxed);
        sh.cv.wait(lock, [&] {
          const auto w = sh.map.find(key);
          return w == sh.map.end() || w->second.ready;
        });
        const auto w = sh.map.find(key);
        if (w != sh.map.end() && w->second.ready) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return w->second.outcome;
        }
        // The computing thread failed and erased the entry — fall
        // through to computing it ourselves (outside the lock).
      } else {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second.outcome;
      }
    }
    sh.map[key] = Entry{};  // in-flight marker (ready = false)
    misses_.fetch_add(1, std::memory_order_relaxed);
  }

  const auto t0 = std::chrono::steady_clock::now();
  core::EvalOutcome outcome;
  try {
    outcome = compute();
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(sh.mu);
      sh.map.erase(key);
    }
    sh.cv.notify_all();
    throw;
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  miss_eval_ns_.fetch_add(static_cast<std::uint64_t>(ns),
                          std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(sh.mu);
    Entry& e = sh.map[key];
    e.outcome = outcome;
    e.ready = true;
  }
  sh.cv.notify_all();
  return outcome;
}

void EvalCache::insert(const std::string& key,
                       const core::EvalOutcome& outcome) {
  Shard& sh = shard_for(key);
  const std::lock_guard<std::mutex> lock(sh.mu);
  Entry& e = sh.map[key];
  e.outcome = outcome;
  e.ready = true;
}

std::size_t EvalCache::size() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    const std::lock_guard<std::mutex> lock(sh.mu);
    for (const auto& [k, e] : sh.map) {
      if (e.ready) ++n;
    }
  }
  return n;
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inflight_waits = inflight_waits_.load(std::memory_order_relaxed);
  s.miss_eval_ms =
      static_cast<double>(miss_eval_ns_.load(std::memory_order_relaxed)) /
      1.0e6;
  s.entries = size();
  s.loaded = static_cast<std::size_t>(
      loaded_.load(std::memory_order_relaxed));
  return s;
}

void EvalCache::reset_counters() {
  hits_.store(0);
  misses_.store(0);
  inflight_waits_.store(0);
  miss_eval_ns_.store(0);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Extract the next "..."-quoted string starting at or after `pos`;
/// advances `pos` past it. Returns false at end of input.
bool next_quoted(const std::string& s, std::size_t& pos, std::string& out) {
  const std::size_t b = s.find('"', pos);
  if (b == std::string::npos) return false;
  out.clear();
  std::size_t i = b + 1;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) ++i;
    out += s[i++];
  }
  if (i >= s.size()) return false;
  pos = i + 1;
  return true;
}

}  // namespace

bool EvalCache::save_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\n  \"format\": \"syndcim-eval-cache\",\n  \"version\": 1,\n"
    << "  \"entries\": [\n";
  bool first = true;
  for (const Shard& sh : shards_) {
    const std::lock_guard<std::mutex> lock(sh.mu);
    for (const auto& [key, e] : sh.map) {
      if (!e.ready) continue;
      const core::PpaEstimate& p = e.outcome.ppa;
      const auto& t = e.outcome.timing;
      if (!first) f << ",\n";
      first = false;
      f << "    {\"key\": \"" << json_escape(key) << "\", \"ppa\": [\""
        << hexd(p.fmax_mhz) << "\", \"" << hexd(p.write_fmax_mhz)
        << "\", \"" << hexd(p.power_uw) << "\", \"" << hexd(p.area_um2)
        << "\", \"" << hexd(p.energy_per_mac_fj) << "\", \""
        << hexd(p.tops_1b) << "\", " << p.latency_cycles
        << "], \"timing\": [\"" << hexd(t.mac_period_ps) << "\", \""
        << hexd(t.ofu_period_ps) << "\", \"" << hexd(t.write_period_ps)
        << "\", " << (t.mac_ok ? 1 : 0) << ", " << (t.ofu_ok ? 1 : 0)
        << ", " << (t.write_ok ? 1 : 0) << "]}";
    }
  }
  f << "\n  ]\n}\n";
  return f.good();
}

std::size_t EvalCache::load_json(const std::string& path) {
  std::ifstream f(path);
  if (!f) return 0;
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  if (text.find("\"syndcim-eval-cache\"") == std::string::npos) return 0;

  // Entries are parsed positionally: the key string, then 6 quoted
  // hexfloat PPA numbers + 1 bare int, then 3 quoted hexfloats + 3 bare
  // ints for the timing status. This mirrors save_json exactly.
  std::size_t n = 0;
  std::size_t pos = text.find("\"entries\"");
  if (pos == std::string::npos) return 0;
  while (true) {
    std::size_t obj = text.find("{\"key\"", pos);
    if (obj == std::string::npos) break;
    pos = obj;
    std::string key;
    std::size_t p = pos + 1;  // skip '{'
    if (!next_quoted(text, p, key)) break;   // literal `key`
    if (!next_quoted(text, p, key)) break;   // the key itself
    std::vector<std::string> q(10);
    std::string skip;
    if (!next_quoted(text, p, skip)) break;  // literal `ppa`
    bool ok = true;
    for (int i = 0; i < 6 && ok; ++i) ok = next_quoted(text, p, q[i]);
    if (!ok) break;
    const std::size_t lat_pos = text.find(',', p);
    if (lat_pos == std::string::npos) break;
    const int latency = std::atoi(text.c_str() + lat_pos + 1);
    if (!next_quoted(text, p, skip)) break;  // literal `timing`
    for (int i = 6; i < 9 && ok; ++i) ok = next_quoted(text, p, q[i]);
    if (!ok) break;
    const std::size_t flags_pos = text.find(',', p);
    if (flags_pos == std::string::npos) break;
    int b0 = 0, b1 = 0, b2 = 0;
    if (std::sscanf(text.c_str() + flags_pos + 1, "%d , %d , %d", &b0, &b1,
                    &b2) != 3) {
      break;
    }
    core::EvalOutcome o;
    o.ppa.fmax_mhz = std::strtod(q[0].c_str(), nullptr);
    o.ppa.write_fmax_mhz = std::strtod(q[1].c_str(), nullptr);
    o.ppa.power_uw = std::strtod(q[2].c_str(), nullptr);
    o.ppa.area_um2 = std::strtod(q[3].c_str(), nullptr);
    o.ppa.energy_per_mac_fj = std::strtod(q[4].c_str(), nullptr);
    o.ppa.tops_1b = std::strtod(q[5].c_str(), nullptr);
    o.ppa.latency_cycles = latency;
    o.timing.mac_period_ps = std::strtod(q[6].c_str(), nullptr);
    o.timing.ofu_period_ps = std::strtod(q[7].c_str(), nullptr);
    o.timing.write_period_ps = std::strtod(q[8].c_str(), nullptr);
    o.timing.mac_ok = b0 != 0;
    o.timing.ofu_ok = b1 != 0;
    o.timing.write_ok = b2 != 0;
    insert(key, o);
    ++n;
    pos = text.find('}', flags_pos);
    if (pos == std::string::npos) break;
  }
  loaded_.fetch_add(static_cast<std::uint64_t>(n),
                    std::memory_order_relaxed);
  return n;
}

}  // namespace syndcim::dse

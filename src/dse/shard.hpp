#pragma once
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "dse/sweep.hpp"

namespace syndcim::dse {

// Multi-process sharded sweeps: `syndcim sweep --shard i/N --shard-out F`
// partitions the spec grid deterministically across worker processes
// (shard i owns the specs whose *global* grid index is congruent to i mod
// N), each worker writes its per-owned-spec Pareto sets to a shard file,
// and `--merge-shards` folds the files back into a frontier byte-identical
// to the single-process run.
//
// Determinism argument (also in DESIGN.md): per-spec searches are
// independent pure functions of (library, spec) — run_sweep merges
// per-spec fronts that were computed in preallocated slots, so a spec's
// Pareto set does not depend on which process (or thread) evaluated it.
// Shard files carry the full spec grid and global spec indices, so the
// merge rebuilds exactly the per_spec array a single-process run would
// hold, then reuses the same dedup + dominance + lint + JSON code. Caches
// (L1 or a shared on-disk L2) never change results — decoded artifacts
// are bit-identical to computed ones — so warm shards merge identically
// to cold ones.

/// One worker's contribution: the full grid it was sliced from plus the
/// Pareto set of every spec it owned.
struct ShardResult {
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::vector<core::PerfSpec> specs;  ///< the FULL grid, all shards alike
  struct OwnedSpec {
    std::size_t spec_index = 0;  ///< global index into `specs`
    std::vector<core::DesignPoint> pareto;
  };
  std::vector<OwnedSpec> owned;
};

/// True iff shard `shard_index` of `shard_count` owns global spec index
/// `spec_index` — the single partition rule every piece of the sharding
/// path shares.
[[nodiscard]] constexpr bool shard_owns(std::size_t spec_index,
                                        std::size_t shard_index,
                                        std::size_t shard_count) {
  return shard_count <= 1 || spec_index % shard_count == shard_index;
}

/// Extracts this run's shard file payload from a finished (sharded)
/// sweep over `specs`.
[[nodiscard]] ShardResult make_shard_result(
    const std::vector<core::PerfSpec>& specs, const SweepReport& rep,
    std::size_t shard_index, std::size_t shard_count);

/// Binary shard-file codec ("SYSH" magic, versioned; bit-exact doubles).
/// decode throws core::BinDecodeError on malformed input.
[[nodiscard]] std::string encode_shard_result(const ShardResult& s);
[[nodiscard]] ShardResult decode_shard_result(std::string_view payload);

/// Writes/reads a shard file; write returns false on I/O failure, read
/// throws std::runtime_error (bad path) or core::BinDecodeError (bad
/// bytes).
bool write_shard_file(const std::string& path, const ShardResult& s);
[[nodiscard]] ShardResult read_shard_file(const std::string& path);

struct MergeOptions {
  /// Lint every merged-frontier point (same sequential pass run_sweep
  /// does). The linting store optionally reads through `store_dir` —
  /// results are byte-identical either way, warm is just faster.
  bool lint_frontier = true;
  std::string store_dir;
  core::DiagEngine* diag = nullptr;  ///< store/codec findings sink
};

/// Folds shard files into a SweepReport whose frontier (and frontier
/// JSON) is byte-identical to the single-process run over the same grid.
/// Throws std::invalid_argument when the shard set is inconsistent or
/// incomplete (mismatched grids or counts, missing or duplicate shards).
[[nodiscard]] SweepReport merge_shards(const cell::Library& lib,
                                       const std::vector<std::string>& paths,
                                       const MergeOptions& opt = {});

}  // namespace syndcim::dse

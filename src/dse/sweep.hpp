#pragma once
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "core/searcher.hpp"
#include "core/stage.hpp"
#include "dse/eval_cache.hpp"
#include "dse/pool.hpp"
#include "obs/obs.hpp"

namespace syndcim::dse {

/// Cartesian spec grid: every listed dimension is swept around `base`
/// (an empty dimension keeps the base value). `precisions` entries set
/// input and weight bit lists together — {{4},{8},{4,8}} sweeps an
/// INT4-only, an INT8-only and a multi-precision macro.
struct SweepGrid {
  core::PerfSpec base;
  std::vector<double> mac_freqs_mhz;
  std::vector<int> mcrs;
  std::vector<std::vector<int>> precisions;
  std::vector<core::PpaPreference> prefs;
  [[nodiscard]] std::vector<core::PerfSpec> expand() const;
};

/// Builds a SweepGrid from `key=value` string pairs, consuming the
/// `sweep_*` dimension keys (`sweep_mac_mhz`, `sweep_mcr`, `sweep_bits`
/// with `;`-separated precision groups, `sweep_pref` preset names); the
/// remaining keys form the base spec via core::spec_from_kv. When no
/// dimension is given, the default 12-point frequency x MCR x preference
/// grid around the base spec is used. Shared by the CLI and the serve
/// protocol's sweep request.
[[nodiscard]] SweepGrid grid_from_kv(std::map<std::string, std::string> kv);

struct SweepOptions {
  int threads = 0;         ///< <= 0: hardware concurrency
  bool use_cache = true;   ///< memoize evaluations across specs/trajectories
  std::string cache_path;  ///< warm-start/persist JSON (empty: in-memory)
  /// Second, finer cache tier under the whole-config evaluation cache:
  /// the content-addressed subcircuit-artifact store shared by every
  /// worker. A one-knob config delta misses the whole-config tier but
  /// still reuses every subcircuit artifact the knob did not touch.
  /// Disabling it runs the exact same code with the tiers bypassed — the
  /// frontier JSON is byte-identical either way.
  bool use_artifact_cache = true;
  /// Lint the elaborated netlist of every global-frontier point after the
  /// merge (sequential, so the report stays deterministic). Off for pure
  /// benchmarking runs.
  bool lint_frontier = true;
  /// Process-wide artifact store to characterize through instead of a
  /// sweep-private one (nullptr = private). The serve daemon points every
  /// request here so subcircuit artifacts are shared across requests and
  /// tenants; report/metric statistics are per-run deltas either way.
  core::ArtifactStore* shared_store = nullptr;
  /// Long-lived whole-config evaluation cache to memoize through instead
  /// of a sweep-private one (nullptr = private; only read when
  /// `use_cache`). `cache_path` load/save is skipped for a shared cache —
  /// its owner decides persistence.
  EvalCache* shared_eval_cache = nullptr;
  /// Cooperative cancellation: checked before every (spec, trajectory)
  /// task and before the frontier lint. A tripped token makes the sweep
  /// return early with whatever completed and `SweepReport::cancelled`
  /// set — partial results, not an exception, so interrupted batch runs
  /// can still flush their reports.
  const core::CancelToken* cancel = nullptr;
  /// Durable on-disk artifact store directory (core::DiskBlobStore).
  /// When set (and no shared_store is adopted), the sweep's artifact
  /// store reads through and writes back to this directory, so a second
  /// invocation over the same grid starts warm — and concurrent shard
  /// processes share it as their common cache. Empty = in-memory only.
  std::string store_dir;
  /// Deterministic multi-process partition of the spec grid: this run
  /// evaluates only the specs whose global index i satisfies
  /// i % shard_count == shard_index (see dse/shard.hpp). Spec indices
  /// stay global, so shard results merge byte-identically to a
  /// single-process run. shard_count <= 1 = no sharding.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Sink for persistence findings (CACHE-SAVEFAIL when the eval-cache
  /// JSON cannot be written, CACHE-* from the on-disk store). nullptr =
  /// counted in the report but not reported as diagnostics.
  core::DiagEngine* diag = nullptr;
};

/// One spec's complete search outcome inside the sweep.
struct SpecResult {
  core::PerfSpec spec;
  core::SearchResult result;
};

/// A global-frontier member, annotated with the first spec (by sweep
/// order) that produced it and, when SweepOptions::lint_frontier is set,
/// with the lint result of its elaborated netlist (-1 = not linted).
struct FrontierPoint {
  core::DesignPoint point;
  std::size_t spec_index = 0;
  /// Stable content id of (config, spec timing knobs): 16 lowercase hex
  /// digits of FNV-1a over the canonical serializations — the same pair
  /// the merge deduplicates on, so two frontier points share an id iff
  /// they are the same evaluation. Survives reordering, re-sweeping and
  /// thread-count changes; netmap allocations name the exact frontier
  /// point they selected with it, keeping reports diffable across runs.
  std::string point_id;
  int lint_errors = -1;
  int lint_warnings = 0;
  /// Per-point elaboration phases (rtlgen → map → lint) recorded while
  /// the frontier was linted. Emitted in the full report JSON only —
  /// wall times are nondeterministic, and the frontier JSON must stay
  /// byte-identical across runs and thread counts.
  obs::PhaseTimeline timeline;
};

struct SweepReport {
  std::vector<SpecResult> per_spec;
  /// Deduplicated global Pareto frontier: union of the per-spec fronts
  /// (the "shard fronts"), identical (config, timing-knob) points
  /// merged, then non-dominated filtering over the union on
  /// (power, area, throughput) — throughput joins the per-spec
  /// power/area objectives because specs differ in clock target.
  std::vector<FrontierPoint> frontier;
  EvalCacheStats cache;
  /// Per-tier hit/miss/occupancy of the subcircuit-artifact store
  /// (modules, blocks, flats, activity, ... — see core::ArtifactStore).
  std::vector<core::ArtifactTierStats> artifacts;
  WorkStealingPool::Stats pool;
  double wall_ms = 0.0;
  std::size_t n_tasks = 0;  ///< (spec, trajectory) tasks executed
  /// True when SweepOptions::cancel tripped mid-run: per-spec results and
  /// the frontier cover only the tasks that finished, and the frontier
  /// was not linted.
  bool cancelled = false;
  /// Eval-cache persistence failures (save_json returning false); also
  /// reported as CACHE-SAVEFAIL through SweepOptions::diag.
  std::size_t cache_save_fails = 0;
  /// On-disk store statistics JSON (DiskBlobStore::stats_json) when
  /// SweepOptions::store_dir was used; empty otherwise.
  std::string store_json;

  [[nodiscard]] std::uint64_t artifact_hits() const;
  [[nodiscard]] std::uint64_t artifact_misses() const;
};

/// Parallel multi-spec exploration: fans (spec x trajectory) tasks out on
/// a work-stealing pool, evaluates through the shared memoized cache, and
/// reduces per-spec fronts into one global frontier. The merge is
/// performed in (spec, trajectory) index order from preallocated slots,
/// so the report is bit-identical for any thread count.
[[nodiscard]] SweepReport run_sweep(const cell::Library& lib,
                                    const std::vector<core::PerfSpec>& specs,
                                    const SweepOptions& opt = {});

/// Global reduction shared by run_sweep and dse::merge_shards: merges
/// the per-spec Pareto fronts in global spec order, drops duplicate
/// (config, timing-knob) evaluations, then dominance-filters over the
/// union. Pure function of `per_spec` — the shard-merge determinism
/// argument rests on both callers funneling through this.
[[nodiscard]] std::vector<FrontierPoint> merge_global_frontier(
    const std::vector<SpecResult>& per_spec);

/// The sequential frontier lint run_sweep performs (rtlgen → stitch →
/// lint per point, deterministic order); fills lint_errors/lint_warnings
/// and per-point timelines. Shared with dse::merge_shards.
void lint_frontier_points(const cell::Library& lib,
                          std::vector<FrontierPoint>& frontier,
                          core::ArtifactStore& store);

/// Content id of one (config, spec) evaluation — see
/// FrontierPoint::point_id.
[[nodiscard]] std::string frontier_point_id(const rtlgen::MacroConfig& cfg,
                                            const core::PerfSpec& spec);

/// Deterministic JSON of the merged global frontier only (byte-identical
/// across thread counts).
[[nodiscard]] std::string sweep_frontier_json(const SweepReport& r);
/// Full JSON report: per-spec summaries, frontier, cache and pool
/// statistics, wall time.
[[nodiscard]] std::string sweep_report_json(const SweepReport& r);

}  // namespace syndcim::dse

#include "netlist/verilog_parser.hpp"

#include <cctype>
#include <map>
#include <stdexcept>
#include <vector>

namespace syndcim::netlist {

namespace {

struct Token {
  std::string text;
  int line = 0;
  [[nodiscard]] bool is(const char* s) const { return text == s; }
};

class Lexer {
 public:
  explicit Lexer(std::istream& is) {
    std::string src((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    int line = 1;
    std::size_t i = 0;
    while (i < src.size()) {
      const char c = src[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
        while (i < src.size() && src[i] != '\n') ++i;
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '\'') {
        std::size_t j = i;
        while (j < src.size() &&
               (std::isalnum(static_cast<unsigned char>(src[j])) ||
                src[j] == '_' || src[j] == '\'')) {
          ++j;
        }
        tokens_.push_back({src.substr(i, j - i), line});
        i = j;
        continue;
      }
      tokens_.push_back({std::string(1, c), line});
      ++i;
    }
  }

  [[nodiscard]] bool done() const { return pos_ >= tokens_.size(); }
  [[nodiscard]] const Token& peek() const {
    if (done()) throw std::invalid_argument("verilog: unexpected EOF");
    return tokens_[pos_];
  }
  Token next() {
    const Token t = peek();
    ++pos_;
    return t;
  }
  Token expect(const char* s) {
    const Token t = next();
    if (!t.is(s)) {
      throw std::invalid_argument("verilog line " + std::to_string(t.line) +
                                  ": expected '" + s + "', got '" + t.text +
                                  "'");
    }
    return t;
  }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

struct RawInstance {
  std::string master;
  std::string name;
  std::vector<std::pair<std::string, std::string>> conns;  // pin -> net
  int line = 0;
};

struct RawModule {
  std::string name;
  std::vector<std::pair<std::string, PortDir>> ports;
  std::vector<std::string> wires;
  std::vector<std::pair<std::string, bool>> ties;  // net -> value
  std::vector<RawInstance> instances;
};

RawModule parse_module(Lexer& lex, core::DiagEngine* diag) {
  RawModule m;
  m.name = lex.next().text;
  lex.expect("(");
  if (!lex.peek().is(")")) {
    while (true) {
      lex.next();  // port order list; directions come from declarations
      if (lex.peek().is(",")) {
        lex.next();
        continue;
      }
      break;
    }
  }
  lex.expect(")");
  lex.expect(";");
  while (!lex.peek().is("endmodule")) {
    const Token t = lex.next();
    if (t.is("input") || t.is("output")) {
      const PortDir dir = t.is("input") ? PortDir::kIn : PortDir::kOut;
      m.ports.emplace_back(lex.next().text, dir);
      lex.expect(";");
    } else if (t.is("wire")) {
      m.wires.push_back(lex.next().text);
      lex.expect(";");
    } else if (t.is("assign")) {
      const std::string net = lex.next().text;
      lex.expect("=");
      const std::string val = lex.next().text;
      lex.expect(";");
      if (val == "1'b0") {
        m.ties.emplace_back(net, false);
      } else if (val == "1'b1") {
        m.ties.emplace_back(net, true);
      } else if (diag) {
        diag->error("VLOG-BADASSIGN",
                    "only constant assigns (1'b0/1'b1) are supported, got "
                    "'" + val + "'",
                    net, "verilog", t.line);
      } else {
        throw std::invalid_argument("verilog line " +
                                    std::to_string(t.line) +
                                    ": only constant assigns supported");
      }
    } else {
      RawInstance inst;
      inst.master = t.text;
      inst.line = t.line;
      inst.name = lex.next().text;
      lex.expect("(");
      while (!lex.peek().is(")")) {
        lex.expect(".");
        const std::string pin = lex.next().text;
        lex.expect("(");
        inst.conns.emplace_back(pin, lex.next().text);
        lex.expect(")");
        if (lex.peek().is(",")) lex.next();
      }
      lex.expect(")");
      lex.expect(";");
      m.instances.push_back(std::move(inst));
    }
  }
  lex.expect("endmodule");
  return m;
}

}  // namespace

Design parse_verilog(std::istream& is, core::DiagEngine* diag) {
  Lexer lex(is);
  std::vector<RawModule> raw;
  try {
    while (!lex.done()) {
      lex.expect("module");
      raw.push_back(parse_module(lex, diag));
    }
  } catch (const std::invalid_argument& e) {
    // Structural damage (truncation, token mismatch): without a
    // DiagEngine keep the legacy throw; with one, record the finding and
    // build a Design from the modules that parsed cleanly.
    if (!diag) throw;
    diag->error("VLOG-SYNTAX", e.what(), "", "verilog");
  }
  std::map<std::string, const RawModule*> by_name;
  for (const RawModule& m : raw) by_name.emplace(m.name, &m);

  Design d;
  for (const RawModule& rm : raw) {
    if (d.has_module(rm.name)) {
      if (!diag) {
        throw std::invalid_argument("verilog: duplicate module " + rm.name);
      }
      diag->error("VLOG-DUPMODULE", "duplicate module definition", rm.name,
                  "verilog");
      continue;
    }
    Module m(rm.name);
    std::map<std::string, NetId> nets;
    auto net_of = [&](const std::string& name) {
      const auto it = nets.find(name);
      if (it != nets.end()) return it->second;
      const NetId id = m.add_net(name);
      nets.emplace(name, id);
      return id;
    };
    for (const auto& [name, dir] : rm.ports) {
      nets.emplace(name, m.add_port(name, dir));
    }
    for (const std::string& w : rm.wires) (void)net_of(w);
    // Ties: re-route users of tied nets onto the module's shared
    // constant nets (the writer emitted one assign per tied net).
    std::map<std::string, NetId> tie_map;
    for (const auto& [name, val] : rm.ties) {
      tie_map[name] = val ? m.const1() : m.const0();
    }
    for (const RawInstance& ri : rm.instances) {
      std::vector<Conn> conns;
      conns.reserve(ri.conns.size());
      for (const auto& [pin, net] : ri.conns) {
        const auto tied = tie_map.find(net);
        conns.push_back(
            {pin, tied != tie_map.end() ? tied->second : net_of(net)});
      }
      if (by_name.contains(ri.master)) {
        m.add_submodule(ri.name, ri.master, std::move(conns));
      } else {
        m.add_cell(ri.name, ri.master, std::move(conns));
      }
    }
    d.add_module(std::move(m));
  }
  return d;
}

}  // namespace syndcim::netlist

#pragma once
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace syndcim::netlist {

/// Index of a net inside one Module (not globally unique).
struct NetId {
  std::uint32_t v = std::numeric_limits<std::uint32_t>::max();
  [[nodiscard]] bool valid() const {
    return v != std::numeric_limits<std::uint32_t>::max();
  }
  [[nodiscard]] bool operator==(const NetId&) const = default;
};

enum class PortDir { kIn, kOut };

/// Constant tie value of a net, if any.
enum class NetConst : std::uint8_t { kNone, kZero, kOne };

struct Net {
  std::string name;
  NetConst tie = NetConst::kNone;
};

struct Port {
  std::string name;
  PortDir dir = PortDir::kIn;
  NetId net;
};

/// One pin-to-net connection of an instance.
struct Conn {
  std::string pin;
  NetId net;
};

/// Instance of either a library cell or another module.
struct Instance {
  std::string name;
  std::string master;
  bool is_cell = true;
  std::vector<Conn> conns;
};

/// Bus bit name, e.g. bus_name("sum", 3) == "sum[3]".
[[nodiscard]] std::string bus_name(std::string_view base, int index);

/// A hierarchical netlist module: ports, nets and instances. Modules are
/// value types owned by a Design; NetIds are only meaningful within their
/// module.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  NetId add_net(std::string name);
  std::vector<NetId> add_bus(std::string_view base, int width);

  /// Adds a port and its backing net.
  NetId add_port(std::string name, PortDir dir);
  std::vector<NetId> add_port_bus(std::string_view base, PortDir dir,
                                  int width);

  /// Constant-tie nets, created on first use.
  NetId const0();
  NetId const1();

  std::size_t add_cell(std::string inst_name, std::string cell_name,
                       std::vector<Conn> conns);
  std::size_t add_submodule(std::string inst_name, std::string module_name,
                            std::vector<Conn> conns);

  [[nodiscard]] std::span<const Net> nets() const { return nets_; }
  [[nodiscard]] std::span<const Port> ports() const { return ports_; }
  [[nodiscard]] std::span<const Instance> instances() const {
    return instances_;
  }
  [[nodiscard]] const Net& net(NetId id) const { return nets_.at(id.v); }

  /// Port lookup by name; throws if absent.
  [[nodiscard]] const Port& port(std::string_view name) const;
  [[nodiscard]] bool has_port(std::string_view name) const;

  /// Number of cell instances (excluding submodule instances).
  [[nodiscard]] std::size_t cell_count() const;

  // --- raw restore (artifact decode only; see netlist/serialize.hpp) ---
  // These rebuild state the constructive API cannot reach: ties on
  // arbitrary nets, ports aliasing an existing net, and the lazily
  // allocated const-net ids.
  void restore_net_tie(NetId id, NetConst tie) { nets_.at(id.v).tie = tie; }
  void restore_port(std::string name, PortDir dir, NetId net) {
    ports_.push_back(Port{std::move(name), dir, net});
  }
  void restore_consts(NetId c0, NetId c1) {
    const0_ = c0;
    const1_ = c1;
  }
  [[nodiscard]] NetId const0_id() const { return const0_; }
  [[nodiscard]] NetId const1_id() const { return const1_; }

 private:
  std::string name_;
  std::vector<Net> nets_;
  std::vector<Port> ports_;
  std::vector<Instance> instances_;
  NetId const0_{};
  NetId const1_{};
};

}  // namespace syndcim::netlist

#include "netlist/design.hpp"

#include <set>
#include <stdexcept>

namespace syndcim::netlist {

Module& Design::add_module(Module m) {
  const std::string name = m.name();
  auto [it, inserted] = modules_.emplace(name, std::move(m));
  if (!inserted) {
    throw std::invalid_argument("Design::add_module: duplicate module " +
                                name);
  }
  return it->second;
}

const Module& Design::module(std::string_view name) const {
  const auto it = modules_.find(name);
  if (it == modules_.end()) {
    throw std::out_of_range("Design::module: unknown module " +
                            std::string(name));
  }
  return it->second;
}

Module& Design::module(std::string_view name) {
  const auto it = modules_.find(name);
  if (it == modules_.end()) {
    throw std::out_of_range("Design::module: unknown module " +
                            std::string(name));
  }
  return it->second;
}

bool Design::has_module(std::string_view name) const {
  return modules_.contains(name);
}

std::vector<std::string> Design::module_names() const {
  std::vector<std::string> out;
  out.reserve(modules_.size());
  for (const auto& [k, v] : modules_) out.push_back(k);
  return out;
}

namespace {
void validate_module(const Design& d, const Module& m,
                     std::set<std::string>& visited,
                     std::vector<std::string>& problems) {
  if (!visited.insert(m.name()).second) return;
  std::set<std::string> inst_names;
  for (const Instance& inst : m.instances()) {
    if (!inst_names.insert(inst.name).second) {
      problems.push_back(m.name() + ": duplicate instance name " + inst.name);
    }
    if (inst.is_cell) continue;
    if (!d.has_module(inst.master)) {
      problems.push_back(m.name() + "/" + inst.name + ": unknown submodule " +
                         inst.master);
      continue;
    }
    const Module& sub = d.module(inst.master);
    for (const Conn& c : inst.conns) {
      if (!sub.has_port(c.pin)) {
        problems.push_back(m.name() + "/" + inst.name + ": no port '" +
                           c.pin + "' on module " + inst.master);
      }
    }
    validate_module(d, sub, visited, problems);
  }
}
}  // namespace

std::vector<std::string> validate(const Design& d, const std::string& top) {
  std::vector<std::string> problems;
  if (!d.has_module(top)) {
    problems.push_back("top module '" + top + "' not found");
    return problems;
  }
  std::set<std::string> visited;
  validate_module(d, d.module(top), visited, problems);
  return problems;
}

}  // namespace syndcim::netlist

#include "netlist/design.hpp"

#include <set>
#include <stdexcept>

namespace syndcim::netlist {

Module& Design::add_module(Module m) {
  const std::string name = m.name();
  auto [it, inserted] = modules_.emplace(name, std::move(m));
  if (!inserted) {
    throw std::invalid_argument("Design::add_module: duplicate module " +
                                name);
  }
  return it->second;
}

const Module& Design::module(std::string_view name) const {
  const auto it = modules_.find(name);
  if (it == modules_.end()) {
    throw std::out_of_range("Design::module: unknown module " +
                            std::string(name));
  }
  return it->second;
}

Module& Design::module(std::string_view name) {
  const auto it = modules_.find(name);
  if (it == modules_.end()) {
    throw std::out_of_range("Design::module: unknown module " +
                            std::string(name));
  }
  return it->second;
}

bool Design::has_module(std::string_view name) const {
  return modules_.contains(name);
}

std::vector<std::string> Design::module_names() const {
  std::vector<std::string> out;
  out.reserve(modules_.size());
  for (const auto& [k, v] : modules_) out.push_back(k);
  return out;
}

namespace {
void validate_module(const Design& d, const Module& m,
                     std::set<std::string>& visited,
                     core::DiagEngine& diag) {
  if (!visited.insert(m.name()).second) return;
  std::set<std::string> inst_names;
  for (const Instance& inst : m.instances()) {
    if (!inst_names.insert(inst.name).second) {
      diag.error("NET-DUPINST",
                 m.name() + ": duplicate instance name " + inst.name,
                 inst.name, m.name());
    }
    if (inst.is_cell) continue;
    if (!d.has_module(inst.master)) {
      diag.error("NET-NOMODULE",
                 m.name() + "/" + inst.name + ": unknown submodule " +
                     inst.master,
                 inst.master, m.name());
      continue;
    }
    const Module& sub = d.module(inst.master);
    for (const Conn& c : inst.conns) {
      if (!sub.has_port(c.pin)) {
        diag.error("NET-NOPORT",
                   m.name() + "/" + inst.name + ": no port '" + c.pin +
                       "' on module " + inst.master,
                   c.pin, m.name());
      }
    }
    validate_module(d, sub, visited, diag);
  }
}
}  // namespace

bool validate(const Design& d, const std::string& top,
              core::DiagEngine& diag) {
  const std::size_t before = diag.error_count();
  if (!d.has_module(top)) {
    diag.error("NET-NOTOP", "top module '" + top + "' not found", top);
    return false;
  }
  std::set<std::string> visited;
  validate_module(d, d.module(top), visited, diag);
  return diag.error_count() == before;
}

std::vector<std::string> validate(const Design& d, const std::string& top) {
  core::DiagEngine diag;
  validate(d, top, diag);
  std::vector<std::string> problems;
  problems.reserve(diag.diags().size());
  for (const core::Diagnostic& dg : diag.diags()) {
    problems.push_back(dg.message);
  }
  return problems;
}

}  // namespace syndcim::netlist

#pragma once
#include <map>
#include <string>
#include <vector>

#include "core/diag.hpp"
#include "netlist/module.hpp"

namespace syndcim::netlist {

/// Owns a set of modules keyed by name; submodule instances refer to
/// modules of the same Design.
class Design {
 public:
  /// Moves `m` in; throws on duplicate module name.
  Module& add_module(Module m);

  [[nodiscard]] const Module& module(std::string_view name) const;
  [[nodiscard]] Module& module(std::string_view name);
  [[nodiscard]] bool has_module(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> module_names() const;

 private:
  std::map<std::string, Module, std::less<>> modules_;
};

/// Structural validation: every submodule master exists, every submodule
/// connection names a real port with matching existence, instance names are
/// unique within a module. Returns human-readable problem list (empty if
/// clean).
[[nodiscard]] std::vector<std::string> validate(const Design& d,
                                                const std::string& top);

/// Structured validation: the same checks reported as NET-* diagnostics
/// (NET-NOTOP, NET-DUPINST, NET-NOMODULE, NET-NOPORT) so hierarchy
/// findings land in the same text/JSON reports as lint and the parsers.
/// Returns true when the design is clean under `top`.
bool validate(const Design& d, const std::string& top,
              core::DiagEngine& diag);

}  // namespace syndcim::netlist

#include "netlist/module.hpp"

#include <stdexcept>

namespace syndcim::netlist {

std::string bus_name(std::string_view base, int index) {
  return std::string(base) + "[" + std::to_string(index) + "]";
}

NetId Module::add_net(std::string name) {
  nets_.push_back(Net{std::move(name), NetConst::kNone});
  return NetId{static_cast<std::uint32_t>(nets_.size() - 1)};
}

std::vector<NetId> Module::add_bus(std::string_view base, int width) {
  std::vector<NetId> out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) out.push_back(add_net(bus_name(base, i)));
  return out;
}

NetId Module::add_port(std::string name, PortDir dir) {
  const NetId id = add_net(name);
  ports_.push_back(Port{std::move(name), dir, id});
  return id;
}

std::vector<NetId> Module::add_port_bus(std::string_view base, PortDir dir,
                                        int width) {
  std::vector<NetId> out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    out.push_back(add_port(bus_name(base, i), dir));
  }
  return out;
}

NetId Module::const0() {
  if (!const0_.valid()) {
    const0_ = add_net("const0");
    nets_[const0_.v].tie = NetConst::kZero;
  }
  return const0_;
}

NetId Module::const1() {
  if (!const1_.valid()) {
    const1_ = add_net("const1");
    nets_[const1_.v].tie = NetConst::kOne;
  }
  return const1_;
}

std::size_t Module::add_cell(std::string inst_name, std::string cell_name,
                             std::vector<Conn> conns) {
  for (const Conn& c : conns) {
    if (!c.net.valid() || c.net.v >= nets_.size()) {
      throw std::invalid_argument("Module::add_cell: invalid net on pin " +
                                  c.pin + " of " + inst_name);
    }
  }
  instances_.push_back(
      Instance{std::move(inst_name), std::move(cell_name), true,
               std::move(conns)});
  return instances_.size() - 1;
}

std::size_t Module::add_submodule(std::string inst_name,
                                  std::string module_name,
                                  std::vector<Conn> conns) {
  for (const Conn& c : conns) {
    if (!c.net.valid() || c.net.v >= nets_.size()) {
      throw std::invalid_argument("Module::add_submodule: invalid net on " +
                                  inst_name + "." + c.pin);
    }
  }
  instances_.push_back(Instance{std::move(inst_name), std::move(module_name),
                                false, std::move(conns)});
  return instances_.size() - 1;
}

const Port& Module::port(std::string_view name) const {
  for (const Port& p : ports_) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("Module::port: no port '" + std::string(name) +
                          "' in module " + name_);
}

bool Module::has_port(std::string_view name) const {
  for (const Port& p : ports_) {
    if (p.name == name) return true;
  }
  return false;
}

std::size_t Module::cell_count() const {
  std::size_t n = 0;
  for (const Instance& i : instances_) n += i.is_cell ? 1 : 0;
  return n;
}

}  // namespace syndcim::netlist

#pragma once
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/artifact_cache.hpp"
#include "netlist/flatten.hpp"

namespace syndcim::netlist {

/// One module subtree flattened in isolation, ready to be spliced into a
/// parent FlatNetlist under any depth-1 group. All references are relative
/// (port slots, block-internal allocation order, block-local name tables),
/// so a block built once can be stitched many times — per instance within
/// one design and across macro configurations that share the subcircuit.
///
/// The splice contract is exact: stitching a block reproduces byte for
/// byte what `flatten()`'s recursive `expand` would have emitted for the
/// same instance — net allocation order, net names, gate order and the
/// first-use interning order of masters and pin names.
struct FlatBlock {
  enum class RefKind : std::uint8_t { kPort, kInternal, kConst0, kConst1 };
  /// A net reference that is meaningful only relative to a splice site.
  struct NetRef {
    RefKind kind = RefKind::kInternal;
    std::uint32_t index = 0;  ///< port slot or internal-net index
  };
  struct PinConn {
    std::uint32_t pin;  ///< index into pin_names
    NetRef net;
  };
  struct Gate {
    std::uint32_t master;  ///< index into master_names
    std::vector<PinConn> pins;
  };
  /// A net the block allocates while expanding, in allocation order.
  /// `prefixed` names are emitted as "<group>.<suffix>" at splice time;
  /// unprefixed ones (deep unconnected-output .nc nets) verbatim.
  struct InternalNet {
    std::string suffix;
    bool prefixed = true;
  };
  /// One net-allocation event. Internal events carry the InternalNet
  /// index; const events mark where the block first needs the design-wide
  /// shared const0/const1 net (allocated only if no earlier gate anywhere
  /// in the design claimed it — exactly `flatten()`'s lazy sharing).
  struct AllocEvent {
    RefKind kind = RefKind::kInternal;
    std::uint32_t internal = 0;
  };

  /// Port surface in module-port order. Ports sharing one module-local
  /// net share a slot (flatten resolves them to one flat net).
  struct PortInfo {
    std::string name;
    PortDir dir = PortDir::kIn;
    std::uint32_t slot = 0;
  };

  std::vector<PortInfo> ports;
  /// Module-local net id backing each port slot (slot -> net id); the
  /// stitcher uses it to look up the parent-chosen flat net.
  std::vector<std::uint32_t> slot_nets;
  std::vector<InternalNet> internals;
  std::vector<AllocEvent> alloc_seq;
  std::vector<std::string> master_names;  ///< block-local, first-use order
  std::vector<std::string> pin_names;
  std::vector<Gate> gates;
  /// Structural content hash of the module subtree this block expands
  /// (also the block's cache key): parameters in, block out.
  std::string content_key;

  [[nodiscard]] std::size_t gate_count() const { return gates.size(); }
};

/// Shared block tier of the subcircuit-artifact cache: blocks are keyed by
/// module content hash, so identical subcircuits reuse one expansion
/// across instances, configurations, specs and worker threads.
using FlatBlockCache = core::ArtifactCache<FlatBlock>;

/// Canonical 128-bit structural hash (hex) of the module subtree rooted at
/// `name`: local net names/ties, ports, instance names, cell masters,
/// connections, and recursively the content of every submodule master.
/// The module's own name is excluded — identity is structure, not label.
[[nodiscard]] std::string module_content_hash(const Design& d,
                                              const std::string& name);

/// Flattens the subtree of one module into a splice-ready block.
/// Throws std::invalid_argument on unconnected submodule input ports, like
/// `flatten()` would while expanding an instance of the module.
[[nodiscard]] FlatBlock flatten_block(const Design& d,
                                      const std::string& module_name);

struct StitchStats {
  std::size_t blocks_spliced = 0;   ///< submodule instances stitched
  std::size_t blocks_built = 0;     ///< flatten_block runs (cache misses)
  std::size_t blocks_reused = 0;    ///< splices served from a prior build
  std::size_t gates_spliced = 0;    ///< gates emitted via block splicing
};

struct StitchResult {
  FlatNetlist nl;
  /// Content address of the flattened design (top structure hash + top
  /// name); downstream stage keys build on it.
  std::string netlist_key;
  StitchStats stats;
};

/// Drop-in incremental replacement for `flatten()`: expands each depth-1
/// submodule instance by splicing a pre-flattened FlatBlock with net-index
/// remapping instead of walking the hierarchy again. The result is byte
/// for byte identical to `flatten(d, top)` (verified by test). `cache`
/// optionally shares blocks across calls; within one call each distinct
/// module body is expanded at most once regardless.
[[nodiscard]] StitchResult stitch_flatten(const Design& d,
                                          const std::string& top,
                                          FlatBlockCache* cache = nullptr);

/// Deep structural equality of two flat netlists (every array compared,
/// names included) — the cold-vs-incremental equivalence check.
[[nodiscard]] bool flat_netlist_equal(const FlatNetlist& a,
                                      const FlatNetlist& b);

}  // namespace syndcim::netlist

#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/design.hpp"

namespace syndcim::netlist {

/// Flattened gate-level view of a hierarchical design. All hierarchy is
/// expanded; nets are globally indexed; cell masters and pin names are
/// interned so downstream engines (STA, simulation, power, layout) resolve
/// them once against the cell library.
class FlatNetlist {
 public:
  struct PinConn {
    std::uint32_t pin_name;  ///< index into pin_names()
    std::uint32_t net;       ///< flat net index
  };
  struct Gate {
    std::uint32_t master;    ///< index into master_names()
    std::uint32_t group;     ///< index into group_names(); top-level inst
    std::vector<PinConn> pins;
  };
  struct PrimaryIo {
    std::string name;
    std::uint32_t net;
  };

  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] std::size_t net_count() const { return net_consts_.size(); }
  [[nodiscard]] const std::vector<std::string>& master_names() const {
    return master_names_;
  }
  [[nodiscard]] const std::vector<std::string>& pin_names() const {
    return pin_names_;
  }
  /// Depth-1 instance names ("adder_tree", "ofu", ...); group 0 is the top
  /// module itself (gates placed directly in the top).
  [[nodiscard]] const std::vector<std::string>& group_names() const {
    return group_names_;
  }
  [[nodiscard]] const std::vector<PrimaryIo>& primary_inputs() const {
    return primary_inputs_;
  }
  [[nodiscard]] const std::vector<PrimaryIo>& primary_outputs() const {
    return primary_outputs_;
  }
  [[nodiscard]] NetConst net_const(std::uint32_t net) const {
    return net_consts_[net];
  }
  /// Best-effort hierarchical net name for reports and lint diagnostics
  /// ("<group>.<local name>"); may be empty for synthesized nets.
  [[nodiscard]] const std::string& net_name(std::uint32_t net) const {
    return net_names_[net];
  }

  /// Primary input/output net by port name; throws if absent.
  [[nodiscard]] std::uint32_t input_net(std::string_view name) const;
  [[nodiscard]] std::uint32_t output_net(std::string_view name) const;

  // --- construction (used by flatten()) ---
  std::uint32_t intern_master(const std::string& name);
  std::uint32_t intern_pin(const std::string& name);
  std::uint32_t intern_group(const std::string& name);
  std::uint32_t new_net(NetConst tie, std::string name = {});
  void add_gate(Gate g) { gates_.push_back(std::move(g)); }
  void add_primary_input(std::string name, std::uint32_t net) {
    primary_inputs_.push_back({std::move(name), net});
  }
  void add_primary_output(std::string name, std::uint32_t net) {
    primary_outputs_.push_back({std::move(name), net});
  }

 private:
  std::vector<Gate> gates_;
  std::vector<std::string> master_names_;
  std::vector<std::string> pin_names_;
  std::vector<std::string> group_names_;
  std::vector<NetConst> net_consts_;
  std::vector<std::string> net_names_;
  std::vector<PrimaryIo> primary_inputs_;
  std::vector<PrimaryIo> primary_outputs_;
};

/// Expands `top` and everything below it into a FlatNetlist.
/// Unconnected submodule input ports are an error; unconnected outputs get
/// fresh dangling nets.
[[nodiscard]] FlatNetlist flatten(const Design& d, const std::string& top);

}  // namespace syndcim::netlist

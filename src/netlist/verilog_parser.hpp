#pragma once
#include <istream>
#include <string>

#include "netlist/design.hpp"

namespace syndcim::netlist {

/// Parses the structural-Verilog subset emitted by write_verilog():
/// scalar ports/wires, constant assigns, named-port instances. Instance
/// masters that match a parsed module become submodule instances;
/// everything else is a library-cell reference. Throws
/// std::invalid_argument with a line number on any syntax it does not
/// understand.
///
/// Enables netlist round-trips: generate -> write -> parse -> flatten,
/// which the test suite checks for structural and functional equality.
[[nodiscard]] Design parse_verilog(std::istream& is);

}  // namespace syndcim::netlist

#pragma once
#include <istream>
#include <string>

#include "core/diag.hpp"
#include "netlist/design.hpp"

namespace syndcim::netlist {

/// Parses the structural-Verilog subset emitted by write_verilog():
/// scalar ports/wires, constant assigns, named-port instances. Instance
/// masters that match a parsed module become submodule instances;
/// everything else is a library-cell reference.
///
/// Without a DiagEngine, throws std::invalid_argument with a line number
/// on any syntax it does not understand (legacy behavior). With one,
/// malformed input never throws: syntax damage is recorded as a
/// VLOG-SYNTAX error (unsupported assigns as VLOG-BADASSIGN, duplicate
/// module names as VLOG-DUPMODULE) and the modules parsed so far are
/// returned for further linting.
///
/// Enables netlist round-trips: generate -> write -> parse -> flatten,
/// which the test suite checks for structural and functional equality.
[[nodiscard]] Design parse_verilog(std::istream& is,
                                   core::DiagEngine* diag = nullptr);

}  // namespace syndcim::netlist

#include "netlist/flatten.hpp"

#include <stdexcept>
#include <unordered_map>

namespace syndcim::netlist {

namespace {

struct Interner {
  std::unordered_map<std::string, std::uint32_t> map;
};

struct FlattenCtx {
  const Design& design;
  FlatNetlist& out;
  Interner masters;
  Interner pins;
  Interner groups;
  std::uint32_t shared_const0 = UINT32_MAX;
  std::uint32_t shared_const1 = UINT32_MAX;
};

std::uint32_t intern(Interner& in, const std::string& name,
                     auto&& make) {
  const auto it = in.map.find(name);
  if (it != in.map.end()) return it->second;
  const std::uint32_t id = make(name);
  in.map.emplace(name, id);
  return id;
}

/// Recursively expands `m`. `port_nets` maps each of m's local port nets to
/// a flat net id chosen by the parent; other local nets get fresh flat ids.
void expand(FlattenCtx& ctx, const Module& m,
            const std::unordered_map<std::uint32_t, std::uint32_t>& port_nets,
            std::uint32_t group) {
  std::vector<std::uint32_t> local2flat(m.nets().size(), UINT32_MAX);
  for (const auto& [local, flat] : port_nets) local2flat[local] = flat;

  const std::string& group_name = ctx.out.group_names()[group];
  auto flat_net = [&](NetId local) -> std::uint32_t {
    std::uint32_t& slot = local2flat[local.v];
    if (slot != UINT32_MAX) return slot;
    const NetConst tie = m.net(local).tie;
    // Share one flat net per constant value design-wide.
    if (tie == NetConst::kZero) {
      if (ctx.shared_const0 == UINT32_MAX) {
        ctx.shared_const0 = ctx.out.new_net(tie, "const0");
      }
      slot = ctx.shared_const0;
    } else if (tie == NetConst::kOne) {
      if (ctx.shared_const1 == UINT32_MAX) {
        ctx.shared_const1 = ctx.out.new_net(tie, "const1");
      }
      slot = ctx.shared_const1;
    } else {
      slot = ctx.out.new_net(tie, group_name + "." + m.net(local).name);
    }
    return slot;
  };

  for (const Instance& inst : m.instances()) {
    if (inst.is_cell) {
      FlatNetlist::Gate g;
      g.master = intern(ctx.masters, inst.master, [&](const std::string& n) {
        return ctx.out.intern_master(n);
      });
      g.group = group;
      g.pins.reserve(inst.conns.size());
      for (const Conn& c : inst.conns) {
        const std::uint32_t pin =
            intern(ctx.pins, c.pin, [&](const std::string& n) {
              return ctx.out.intern_pin(n);
            });
        g.pins.push_back({pin, flat_net(c.net)});
      }
      ctx.out.add_gate(std::move(g));
      continue;
    }
    const Module& sub = ctx.design.module(inst.master);
    std::unordered_map<std::uint32_t, std::uint32_t> sub_ports;
    for (const Conn& c : inst.conns) {
      const Port& p = sub.port(c.pin);
      sub_ports.emplace(p.net.v, flat_net(c.net));
    }
    for (const Port& p : sub.ports()) {
      if (sub_ports.contains(p.net.v)) continue;
      if (p.dir == PortDir::kIn) {
        throw std::invalid_argument("flatten: unconnected input port " +
                                    p.name + " on instance " + inst.name +
                                    " of " + sub.name());
      }
      sub_ports.emplace(
          p.net.v, ctx.out.new_net(NetConst::kNone,
                                   inst.name + "." + p.name + ".nc"));
    }
    expand(ctx, sub, sub_ports, group);
  }
}

}  // namespace

std::uint32_t FlatNetlist::intern_master(const std::string& name) {
  master_names_.push_back(name);
  return static_cast<std::uint32_t>(master_names_.size() - 1);
}
std::uint32_t FlatNetlist::intern_pin(const std::string& name) {
  pin_names_.push_back(name);
  return static_cast<std::uint32_t>(pin_names_.size() - 1);
}
std::uint32_t FlatNetlist::intern_group(const std::string& name) {
  group_names_.push_back(name);
  return static_cast<std::uint32_t>(group_names_.size() - 1);
}
std::uint32_t FlatNetlist::new_net(NetConst tie, std::string name) {
  net_consts_.push_back(tie);
  net_names_.push_back(std::move(name));
  return static_cast<std::uint32_t>(net_consts_.size() - 1);
}

std::uint32_t FlatNetlist::input_net(std::string_view name) const {
  for (const PrimaryIo& io : primary_inputs_) {
    if (io.name == name) return io.net;
  }
  throw std::out_of_range("FlatNetlist::input_net: no input " +
                          std::string(name));
}

std::uint32_t FlatNetlist::output_net(std::string_view name) const {
  for (const PrimaryIo& io : primary_outputs_) {
    if (io.name == name) return io.net;
  }
  throw std::out_of_range("FlatNetlist::output_net: no output " +
                          std::string(name));
}

FlatNetlist flatten(const Design& d, const std::string& top) {
  const std::vector<std::string> problems = validate(d, top);
  if (!problems.empty()) {
    throw std::invalid_argument("flatten: design invalid: " + problems[0] +
                                (problems.size() > 1 ? " (+more)" : ""));
  }
  FlatNetlist out;
  FlattenCtx ctx{d, out, {}, {}, {}};
  const Module& t = d.module(top);

  std::unordered_map<std::uint32_t, std::uint32_t> top_ports;
  for (const Port& p : t.ports()) {
    const std::uint32_t net = out.new_net(t.net(p.net).tie, p.name);
    top_ports.emplace(p.net.v, net);
    if (p.dir == PortDir::kIn) {
      out.add_primary_input(p.name, net);
    } else {
      out.add_primary_output(p.name, net);
    }
  }

  // Group 0 = gates directly in the top module; depth-1 submodule instances
  // each get their own group for path-group classification and placement.
  const std::uint32_t top_group = out.intern_group(top);
  ctx.groups.map.emplace(top, top_group);

  // Expand top manually so depth-1 instances can be tagged.
  const Module& m = t;
  std::vector<std::uint32_t> local2flat(m.nets().size(), UINT32_MAX);
  for (const auto& [local, flat] : top_ports) local2flat[local] = flat;
  auto flat_net = [&](NetId local) -> std::uint32_t {
    std::uint32_t& slot = local2flat[local.v];
    if (slot != UINT32_MAX) return slot;
    const NetConst tie = m.net(local).tie;
    if (tie == NetConst::kZero) {
      if (ctx.shared_const0 == UINT32_MAX) {
        ctx.shared_const0 = out.new_net(tie, "const0");
      }
      slot = ctx.shared_const0;
    } else if (tie == NetConst::kOne) {
      if (ctx.shared_const1 == UINT32_MAX) {
        ctx.shared_const1 = out.new_net(tie, "const1");
      }
      slot = ctx.shared_const1;
    } else {
      slot = out.new_net(tie, m.net(local).name);
    }
    return slot;
  };

  for (const Instance& inst : m.instances()) {
    if (inst.is_cell) {
      FlatNetlist::Gate g;
      g.master = intern(ctx.masters, inst.master, [&](const std::string& n) {
        return out.intern_master(n);
      });
      g.group = top_group;
      for (const Conn& c : inst.conns) {
        const std::uint32_t pin =
            intern(ctx.pins, c.pin,
                   [&](const std::string& n) { return out.intern_pin(n); });
        g.pins.push_back({pin, flat_net(c.net)});
      }
      out.add_gate(std::move(g));
      continue;
    }
    const std::uint32_t group = intern(
        ctx.groups, inst.name,
        [&](const std::string& n) { return out.intern_group(n); });
    const Module& sub = d.module(inst.master);
    std::unordered_map<std::uint32_t, std::uint32_t> sub_ports;
    for (const Conn& c : inst.conns) {
      const Port& p = sub.port(c.pin);
      sub_ports.emplace(p.net.v, flat_net(c.net));
    }
    for (const Port& p : sub.ports()) {
      if (sub_ports.contains(p.net.v)) continue;
      if (p.dir == PortDir::kIn) {
        throw std::invalid_argument("flatten: unconnected input port " +
                                    p.name + " on instance " + inst.name);
      }
      sub_ports.emplace(p.net.v,
                        out.new_net(NetConst::kNone,
                                    inst.name + "." + p.name + ".nc"));
    }
    expand(ctx, sub, sub_ports, group);
  }
  return out;
}

}  // namespace syndcim::netlist

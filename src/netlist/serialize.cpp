#include "netlist/serialize.hpp"

#include "core/binio.hpp"

namespace syndcim::netlist {

using core::BinDecodeError;
using core::BinReader;
using core::BinWriter;
using core::deep_str_bytes;
using core::deep_vec_bytes;

namespace {

constexpr std::uint8_t kModuleVersion = 1;
constexpr std::uint8_t kBlockVersion = 1;
constexpr std::uint8_t kFlatVersion = 1;

void check_version(BinReader& r, std::uint8_t expect, const char* what) {
  if (r.u8() != expect) {
    throw BinDecodeError(std::string("unsupported codec version for ") + what);
  }
}

std::uint8_t enc_dir(PortDir d) { return d == PortDir::kOut ? 1 : 0; }
PortDir dec_dir(std::uint8_t v) {
  if (v > 1) throw BinDecodeError("bad PortDir");
  return v == 1 ? PortDir::kOut : PortDir::kIn;
}

std::uint8_t enc_tie(NetConst c) { return static_cast<std::uint8_t>(c); }
NetConst dec_tie(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(NetConst::kOne)) {
    throw BinDecodeError("bad NetConst");
  }
  return static_cast<NetConst>(v);
}

std::uint8_t enc_ref(FlatBlock::RefKind k) {
  return static_cast<std::uint8_t>(k);
}
FlatBlock::RefKind dec_ref(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(FlatBlock::RefKind::kConst1)) {
    throw BinDecodeError("bad RefKind");
  }
  return static_cast<FlatBlock::RefKind>(v);
}

}  // namespace

// --- Module ----------------------------------------------------------------

std::string encode_module(const Module& m) {
  BinWriter w;
  w.u8(kModuleVersion);
  w.str(m.name());
  w.u32(static_cast<std::uint32_t>(m.nets().size()));
  for (const Net& n : m.nets()) {
    w.str(n.name);
    w.u8(enc_tie(n.tie));
  }
  w.u32(static_cast<std::uint32_t>(m.ports().size()));
  for (const Port& p : m.ports()) {
    w.str(p.name);
    w.u8(enc_dir(p.dir));
    w.u32(p.net.v);
  }
  w.u32(static_cast<std::uint32_t>(m.instances().size()));
  for (const Instance& inst : m.instances()) {
    w.str(inst.name);
    w.str(inst.master);
    w.b(inst.is_cell);
    w.u32(static_cast<std::uint32_t>(inst.conns.size()));
    for (const Conn& c : inst.conns) {
      w.str(c.pin);
      w.u32(c.net.v);
    }
  }
  w.u32(m.const0_id().v);
  w.u32(m.const1_id().v);
  return w.take();
}

Module decode_module(std::string_view payload) {
  BinReader r(payload);
  check_version(r, kModuleVersion, "module");
  Module m(r.str());
  const std::uint32_t n_nets = r.len(5);
  for (std::uint32_t i = 0; i < n_nets; ++i) {
    const NetId id = m.add_net(r.str());
    m.restore_net_tie(id, dec_tie(r.u8()));
  }
  const std::uint32_t n_ports = r.len(9);
  for (std::uint32_t i = 0; i < n_ports; ++i) {
    std::string name = r.str();
    const PortDir dir = dec_dir(r.u8());
    const NetId net{r.u32()};
    if (!net.valid() || net.v >= n_nets) throw BinDecodeError("bad port net");
    m.restore_port(std::move(name), dir, net);
  }
  const std::uint32_t n_insts = r.len(13);
  for (std::uint32_t i = 0; i < n_insts; ++i) {
    std::string name = r.str();
    std::string master = r.str();
    const bool is_cell = r.b();
    const std::uint32_t n_conns = r.len(8);
    std::vector<Conn> conns;
    conns.reserve(n_conns);
    for (std::uint32_t c = 0; c < n_conns; ++c) {
      std::string pin = r.str();
      const NetId net{r.u32()};
      if (!net.valid() || net.v >= n_nets) throw BinDecodeError("bad conn net");
      conns.push_back(Conn{std::move(pin), net});
    }
    if (is_cell) {
      m.add_cell(std::move(name), std::move(master), std::move(conns));
    } else {
      m.add_submodule(std::move(name), std::move(master), std::move(conns));
    }
  }
  const NetId c0{r.u32()};
  const NetId c1{r.u32()};
  if ((c0.valid() && c0.v >= n_nets) || (c1.valid() && c1.v >= n_nets)) {
    throw BinDecodeError("bad const net id");
  }
  m.restore_consts(c0, c1);
  r.expect_end();
  return m;
}

std::size_t deep_bytes(const Module& m) {
  std::size_t n = deep_str_bytes(m.name());
  n += m.nets().size() * sizeof(Net);
  for (const Net& net : m.nets()) n += deep_str_bytes(net.name);
  n += m.ports().size() * sizeof(Port);
  for (const Port& p : m.ports()) n += deep_str_bytes(p.name);
  n += m.instances().size() * sizeof(Instance);
  for (const Instance& inst : m.instances()) {
    n += deep_str_bytes(inst.name) + deep_str_bytes(inst.master);
    n += inst.conns.size() * sizeof(Conn);
    for (const Conn& c : inst.conns) n += deep_str_bytes(c.pin);
  }
  return n;
}

// --- FlatBlock -------------------------------------------------------------

std::string encode_flat_block(const FlatBlock& b) {
  BinWriter w;
  w.u8(kBlockVersion);
  w.u32(static_cast<std::uint32_t>(b.ports.size()));
  for (const FlatBlock::PortInfo& p : b.ports) {
    w.str(p.name);
    w.u8(enc_dir(p.dir));
    w.u32(p.slot);
  }
  w.u32(static_cast<std::uint32_t>(b.slot_nets.size()));
  for (const std::uint32_t n : b.slot_nets) w.u32(n);
  w.u32(static_cast<std::uint32_t>(b.internals.size()));
  for (const FlatBlock::InternalNet& in : b.internals) {
    w.str(in.suffix);
    w.b(in.prefixed);
  }
  w.u32(static_cast<std::uint32_t>(b.alloc_seq.size()));
  for (const FlatBlock::AllocEvent& ev : b.alloc_seq) {
    w.u8(enc_ref(ev.kind));
    w.u32(ev.internal);
  }
  w.u32(static_cast<std::uint32_t>(b.master_names.size()));
  for (const std::string& s : b.master_names) w.str(s);
  w.u32(static_cast<std::uint32_t>(b.pin_names.size()));
  for (const std::string& s : b.pin_names) w.str(s);
  w.u32(static_cast<std::uint32_t>(b.gates.size()));
  for (const FlatBlock::Gate& g : b.gates) {
    w.u32(g.master);
    w.u32(static_cast<std::uint32_t>(g.pins.size()));
    for (const FlatBlock::PinConn& pc : g.pins) {
      w.u32(pc.pin);
      w.u8(enc_ref(pc.net.kind));
      w.u32(pc.net.index);
    }
  }
  w.str(b.content_key);
  return w.take();
}

FlatBlock decode_flat_block(std::string_view payload) {
  BinReader r(payload);
  check_version(r, kBlockVersion, "flat block");
  FlatBlock b;
  const std::uint32_t n_ports = r.len(9);
  b.ports.reserve(n_ports);
  for (std::uint32_t i = 0; i < n_ports; ++i) {
    FlatBlock::PortInfo p;
    p.name = r.str();
    p.dir = dec_dir(r.u8());
    p.slot = r.u32();
    b.ports.push_back(std::move(p));
  }
  const std::uint32_t n_slots = r.len(4);
  b.slot_nets.reserve(n_slots);
  for (std::uint32_t i = 0; i < n_slots; ++i) b.slot_nets.push_back(r.u32());
  const std::uint32_t n_internal = r.len(5);
  b.internals.reserve(n_internal);
  for (std::uint32_t i = 0; i < n_internal; ++i) {
    FlatBlock::InternalNet in;
    in.suffix = r.str();
    in.prefixed = r.b();
    b.internals.push_back(std::move(in));
  }
  const std::uint32_t n_alloc = r.len(5);
  b.alloc_seq.reserve(n_alloc);
  for (std::uint32_t i = 0; i < n_alloc; ++i) {
    FlatBlock::AllocEvent ev;
    ev.kind = dec_ref(r.u8());
    ev.internal = r.u32();
    b.alloc_seq.push_back(ev);
  }
  const std::uint32_t n_masters = r.len(4);
  b.master_names.reserve(n_masters);
  for (std::uint32_t i = 0; i < n_masters; ++i) {
    b.master_names.push_back(r.str());
  }
  const std::uint32_t n_pins = r.len(4);
  b.pin_names.reserve(n_pins);
  for (std::uint32_t i = 0; i < n_pins; ++i) b.pin_names.push_back(r.str());
  const std::uint32_t n_gates = r.len(8);
  b.gates.reserve(n_gates);
  for (std::uint32_t i = 0; i < n_gates; ++i) {
    FlatBlock::Gate g;
    g.master = r.u32();
    const std::uint32_t n_pc = r.len(9);
    g.pins.reserve(n_pc);
    for (std::uint32_t c = 0; c < n_pc; ++c) {
      FlatBlock::PinConn pc;
      pc.pin = r.u32();
      pc.net.kind = dec_ref(r.u8());
      pc.net.index = r.u32();
      g.pins.push_back(pc);
    }
    b.gates.push_back(std::move(g));
  }
  b.content_key = r.str();
  r.expect_end();
  return b;
}

std::size_t deep_bytes(const FlatBlock& b) {
  std::size_t n = deep_vec_bytes(b.ports) + deep_vec_bytes(b.slot_nets) +
                  deep_vec_bytes(b.internals) + deep_vec_bytes(b.alloc_seq) +
                  deep_vec_bytes(b.master_names) + deep_vec_bytes(b.pin_names) +
                  deep_vec_bytes(b.gates) + deep_str_bytes(b.content_key);
  for (const FlatBlock::PortInfo& p : b.ports) n += deep_str_bytes(p.name);
  for (const FlatBlock::InternalNet& in : b.internals) {
    n += deep_str_bytes(in.suffix);
  }
  for (const std::string& s : b.master_names) n += deep_str_bytes(s);
  for (const std::string& s : b.pin_names) n += deep_str_bytes(s);
  for (const FlatBlock::Gate& g : b.gates) n += deep_vec_bytes(g.pins);
  return n;
}

// --- FlatNetlist -----------------------------------------------------------

std::string encode_flat_netlist(const FlatNetlist& nl) {
  BinWriter w;
  w.u8(kFlatVersion);
  w.u32(static_cast<std::uint32_t>(nl.master_names().size()));
  for (const std::string& s : nl.master_names()) w.str(s);
  w.u32(static_cast<std::uint32_t>(nl.pin_names().size()));
  for (const std::string& s : nl.pin_names()) w.str(s);
  w.u32(static_cast<std::uint32_t>(nl.group_names().size()));
  for (const std::string& s : nl.group_names()) w.str(s);
  w.u32(static_cast<std::uint32_t>(nl.net_count()));
  for (std::uint32_t i = 0; i < nl.net_count(); ++i) {
    w.u8(enc_tie(nl.net_const(i)));
    w.str(nl.net_name(i));
  }
  w.u32(static_cast<std::uint32_t>(nl.gates().size()));
  for (const FlatNetlist::Gate& g : nl.gates()) {
    w.u32(g.master);
    w.u32(g.group);
    w.u32(static_cast<std::uint32_t>(g.pins.size()));
    for (const FlatNetlist::PinConn& pc : g.pins) {
      w.u32(pc.pin_name);
      w.u32(pc.net);
    }
  }
  w.u32(static_cast<std::uint32_t>(nl.primary_inputs().size()));
  for (const FlatNetlist::PrimaryIo& io : nl.primary_inputs()) {
    w.str(io.name);
    w.u32(io.net);
  }
  w.u32(static_cast<std::uint32_t>(nl.primary_outputs().size()));
  for (const FlatNetlist::PrimaryIo& io : nl.primary_outputs()) {
    w.str(io.name);
    w.u32(io.net);
  }
  return w.take();
}

FlatNetlist decode_flat_netlist(std::string_view payload) {
  BinReader r(payload);
  check_version(r, kFlatVersion, "flat netlist");
  FlatNetlist nl;
  const std::uint32_t n_masters = r.len(4);
  for (std::uint32_t i = 0; i < n_masters; ++i) {
    (void)nl.intern_master(r.str());
  }
  const std::uint32_t n_pins = r.len(4);
  for (std::uint32_t i = 0; i < n_pins; ++i) (void)nl.intern_pin(r.str());
  const std::uint32_t n_groups = r.len(4);
  for (std::uint32_t i = 0; i < n_groups; ++i) (void)nl.intern_group(r.str());
  const std::uint32_t n_nets = r.len(5);
  for (std::uint32_t i = 0; i < n_nets; ++i) {
    const NetConst tie = dec_tie(r.u8());
    (void)nl.new_net(tie, r.str());
  }
  const std::uint32_t n_gates = r.len(12);
  for (std::uint32_t i = 0; i < n_gates; ++i) {
    FlatNetlist::Gate g;
    g.master = r.u32();
    g.group = r.u32();
    if (g.master >= n_masters || g.group >= n_groups) {
      throw BinDecodeError("bad gate master/group index");
    }
    const std::uint32_t n_pc = r.len(8);
    g.pins.reserve(n_pc);
    for (std::uint32_t c = 0; c < n_pc; ++c) {
      FlatNetlist::PinConn pc;
      pc.pin_name = r.u32();
      pc.net = r.u32();
      if (pc.pin_name >= n_pins || pc.net >= n_nets) {
        throw BinDecodeError("bad gate pin/net index");
      }
      g.pins.push_back(pc);
    }
    nl.add_gate(std::move(g));
  }
  const std::uint32_t n_pi = r.len(8);
  for (std::uint32_t i = 0; i < n_pi; ++i) {
    std::string name = r.str();
    const std::uint32_t net = r.u32();
    if (net >= n_nets) throw BinDecodeError("bad primary input net");
    nl.add_primary_input(std::move(name), net);
  }
  const std::uint32_t n_po = r.len(8);
  for (std::uint32_t i = 0; i < n_po; ++i) {
    std::string name = r.str();
    const std::uint32_t net = r.u32();
    if (net >= n_nets) throw BinDecodeError("bad primary output net");
    nl.add_primary_output(std::move(name), net);
  }
  r.expect_end();
  return nl;
}

std::size_t deep_bytes(const FlatNetlist& nl) {
  std::size_t n = deep_vec_bytes(nl.gates()) +
                  deep_vec_bytes(nl.master_names()) +
                  deep_vec_bytes(nl.pin_names()) +
                  deep_vec_bytes(nl.group_names()) +
                  nl.net_count() * (sizeof(NetConst) + sizeof(std::string)) +
                  deep_vec_bytes(nl.primary_inputs()) +
                  deep_vec_bytes(nl.primary_outputs());
  for (const FlatNetlist::Gate& g : nl.gates()) n += deep_vec_bytes(g.pins);
  for (const std::string& s : nl.master_names()) n += deep_str_bytes(s);
  for (const std::string& s : nl.pin_names()) n += deep_str_bytes(s);
  for (const std::string& s : nl.group_names()) n += deep_str_bytes(s);
  for (std::uint32_t i = 0; i < nl.net_count(); ++i) {
    n += deep_str_bytes(nl.net_name(i));
  }
  for (const FlatNetlist::PrimaryIo& io : nl.primary_inputs()) {
    n += deep_str_bytes(io.name);
  }
  for (const FlatNetlist::PrimaryIo& io : nl.primary_outputs()) {
    n += deep_str_bytes(io.name);
  }
  return n;
}

}  // namespace syndcim::netlist

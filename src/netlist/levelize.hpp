#pragma once
#include <cstdint>
#include <string_view>
#include <vector>

#include "netlist/flatten.hpp"

namespace syndcim::netlist {

/// One gate as seen by the levelizer: its timing class and its pin nets.
/// `kNoConn` entries are allowed in both lists (dangling outputs, optional
/// pins) and are skipped.
struct LevelizeGate {
  bool combinational = false;
  std::vector<std::uint32_t> in_nets;
  std::vector<std::uint32_t> out_nets;
};

inline constexpr std::uint32_t kNoConn = UINT32_MAX;

/// Topologically levelizes the combinational gates of a flat netlist:
/// returns rank buckets such that every gate's fan-in is driven only by
/// primary inputs, constants, sequential outputs, or gates in strictly
/// earlier buckets. This is the single levelization scheme shared by
/// StaEngine and the gate simulators (scalar and bit-parallel), including
/// its one combinational-loop check: if any combinational gate cannot be
/// scheduled, throws std::invalid_argument with `who` as the message
/// prefix and the number of unschedulable gates.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> levelize(
    const FlatNetlist& nl, const std::vector<LevelizeGate>& gates,
    std::string_view who);

}  // namespace syndcim::netlist

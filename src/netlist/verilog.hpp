#pragma once
#include <iosfwd>
#include <string>

#include "netlist/design.hpp"

namespace syndcim::netlist {

/// Emits the hierarchical design as structural Verilog-2001 (the "macro
/// RTL/netlist" output of the compiler). Bus-bit net names like "sum[3]"
/// are escaped-identifier-safe scalarized names; every module below `top`
/// is emitted once, leaves (library cells) are referenced by name.
void write_verilog(const Design& d, const std::string& top,
                   std::ostream& os);

/// Verilog identifier for an internal name (bus bits become name_3_;
/// anything else non-alphanumeric is escaped with '_').
[[nodiscard]] std::string verilog_ident(const std::string& name);

}  // namespace syndcim::netlist

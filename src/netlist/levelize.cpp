#include "netlist/levelize.hpp"

#include <stdexcept>
#include <string>

namespace syndcim::netlist {

std::vector<std::vector<std::uint32_t>> levelize(
    const FlatNetlist& nl, const std::vector<LevelizeGate>& gates,
    std::string_view who) {
  const std::size_t ngates = gates.size();

  // A net is initially "resolved" if nothing combinational drives it: a
  // primary input, a constant, a dangling net, or a register/storage Q.
  std::vector<std::uint8_t> resolved(nl.net_count(), 1);
  for (std::size_t g = 0; g < ngates; ++g) {
    if (!gates[g].combinational) continue;
    for (const std::uint32_t net : gates[g].out_nets) {
      if (net != kNoConn && nl.net_const(net) == NetConst::kNone) {
        resolved[net] = 0;
      }
    }
  }

  std::vector<std::uint32_t> pending(ngates, 0);
  std::vector<std::vector<std::uint32_t>> loads(nl.net_count());
  std::size_t comb_total = 0;
  for (std::uint32_t g = 0; g < ngates; ++g) {
    if (!gates[g].combinational) continue;
    ++comb_total;
    for (const std::uint32_t net : gates[g].in_nets) {
      if (net == kNoConn || resolved[net]) continue;
      ++pending[g];
      loads[net].push_back(g);
    }
  }

  std::vector<std::vector<std::uint32_t>> levels;
  std::vector<std::uint32_t> frontier;
  for (std::uint32_t g = 0; g < ngates; ++g) {
    if (gates[g].combinational && pending[g] == 0) frontier.push_back(g);
  }
  std::size_t scheduled = 0;
  while (!frontier.empty()) {
    levels.push_back(frontier);
    scheduled += frontier.size();
    std::vector<std::uint32_t> next;
    for (const std::uint32_t g : levels.back()) {
      for (const std::uint32_t net : gates[g].out_nets) {
        if (net == kNoConn || resolved[net]) continue;
        resolved[net] = 1;
        for (const std::uint32_t lg : loads[net]) {
          if (--pending[lg] == 0) next.push_back(lg);
        }
      }
    }
    frontier = std::move(next);
  }
  if (scheduled != comb_total) {
    throw std::invalid_argument(
        std::string(who) + ": combinational loop detected (" +
        std::to_string(comb_total - scheduled) + " gates unschedulable)");
  }
  return levels;
}

}  // namespace syndcim::netlist

#include "netlist/stitch.hpp"

#include <map>
#include <stdexcept>
#include <unordered_map>

namespace syndcim::netlist {

namespace {

constexpr std::uint32_t kUnset = UINT32_MAX;

// ---------------------------------------------------------------------------
// Content hashing

void hash_module(const Design& d, const std::string& name,
                 std::map<std::string, std::string>& memo,
                 core::ArtifactHasher& h);

const std::string& memoized_hash(const Design& d, const std::string& name,
                                 std::map<std::string, std::string>& memo) {
  const auto it = memo.find(name);
  if (it != memo.end()) return it->second;
  core::ArtifactHasher h;
  hash_module(d, name, memo, h);
  return memo.emplace(name, h.hex()).first->second;
}

void hash_module(const Design& d, const std::string& name,
                 std::map<std::string, std::string>& memo,
                 core::ArtifactHasher& h) {
  const Module& m = d.module(name);
  h.str("blkfmt1");
  h.u64(m.nets().size());
  for (const Net& n : m.nets()) {
    h.str(n.name);
    h.u32(static_cast<std::uint32_t>(n.tie));
  }
  h.u64(m.ports().size());
  for (const Port& p : m.ports()) {
    h.str(p.name);
    h.u32(static_cast<std::uint32_t>(p.dir));
    h.u32(p.net.v);
  }
  h.u64(m.instances().size());
  for (const Instance& inst : m.instances()) {
    h.b(inst.is_cell);
    h.str(inst.name);
    if (inst.is_cell) {
      h.str(inst.master);
    } else {
      h.str(memoized_hash(d, inst.master, memo));
    }
    h.u64(inst.conns.size());
    for (const Conn& c : inst.conns) {
      h.str(c.pin);
      h.u32(c.net.v);
    }
  }
}

// ---------------------------------------------------------------------------
// Block building: a faithful replay of flatten()'s expand(), recording
// relative references instead of emitting into a concrete FlatNetlist.

struct BlockInterner {
  std::unordered_map<std::string, std::uint32_t> map;
  std::vector<std::string>* names;
  std::uint32_t intern(const std::string& n) {
    const auto it = map.find(n);
    if (it != map.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(names->size());
    names->push_back(n);
    map.emplace(n, id);
    return id;
  }
};

struct BlockBuildCtx {
  const Design& design;
  FlatBlock& out;
  BlockInterner masters;
  BlockInterner pins;
  bool const0_seen = false;
  bool const1_seen = false;
};

using RefMap = std::unordered_map<std::uint32_t, FlatBlock::NetRef>;

void expand_into_block(BlockBuildCtx& ctx, const Module& m,
                       const RefMap& port_nets) {
  std::vector<FlatBlock::NetRef> local2ref(m.nets().size());
  std::vector<bool> assigned(m.nets().size(), false);
  for (const auto& [local, ref] : port_nets) {
    local2ref[local] = ref;
    assigned[local] = true;
  }

  auto local_ref = [&](NetId local) -> FlatBlock::NetRef {
    if (assigned[local.v]) return local2ref[local.v];
    const NetConst tie = m.net(local).tie;
    FlatBlock::NetRef ref;
    if (tie == NetConst::kZero) {
      if (!ctx.const0_seen) {
        ctx.const0_seen = true;
        ctx.out.alloc_seq.push_back({FlatBlock::RefKind::kConst0, 0});
      }
      ref = {FlatBlock::RefKind::kConst0, 0};
    } else if (tie == NetConst::kOne) {
      if (!ctx.const1_seen) {
        ctx.const1_seen = true;
        ctx.out.alloc_seq.push_back({FlatBlock::RefKind::kConst1, 0});
      }
      ref = {FlatBlock::RefKind::kConst1, 0};
    } else {
      const auto idx = static_cast<std::uint32_t>(ctx.out.internals.size());
      ctx.out.internals.push_back({m.net(local).name, /*prefixed=*/true});
      ctx.out.alloc_seq.push_back({FlatBlock::RefKind::kInternal, idx});
      ref = {FlatBlock::RefKind::kInternal, idx};
    }
    local2ref[local.v] = ref;
    assigned[local.v] = true;
    return ref;
  };

  for (const Instance& inst : m.instances()) {
    if (inst.is_cell) {
      FlatBlock::Gate g;
      g.master = ctx.masters.intern(inst.master);
      g.pins.reserve(inst.conns.size());
      for (const Conn& c : inst.conns) {
        g.pins.push_back({ctx.pins.intern(c.pin), local_ref(c.net)});
      }
      ctx.out.gates.push_back(std::move(g));
      continue;
    }
    const Module& sub = ctx.design.module(inst.master);
    RefMap sub_ports;
    for (const Conn& c : inst.conns) {
      const Port& p = sub.port(c.pin);
      sub_ports.emplace(p.net.v, local_ref(c.net));
    }
    for (const Port& p : sub.ports()) {
      if (sub_ports.contains(p.net.v)) continue;
      if (p.dir == PortDir::kIn) {
        throw std::invalid_argument("flatten: unconnected input port " +
                                    p.name + " on instance " + inst.name +
                                    " of " + sub.name());
      }
      // flatten() allocates a fresh dangling net named without the group
      // prefix at this depth; record it verbatim.
      const auto idx = static_cast<std::uint32_t>(ctx.out.internals.size());
      ctx.out.internals.push_back(
          {inst.name + "." + p.name + ".nc", /*prefixed=*/false});
      ctx.out.alloc_seq.push_back({FlatBlock::RefKind::kInternal, idx});
      sub_ports.emplace(p.net.v, FlatBlock::NetRef{
                                     FlatBlock::RefKind::kInternal, idx});
    }
    expand_into_block(ctx, sub, sub_ports);
  }
}

// ---------------------------------------------------------------------------
// Stitching

struct Interner {
  std::unordered_map<std::string, std::uint32_t> map;
};

std::uint32_t intern(Interner& in, const std::string& name, auto&& make) {
  const auto it = in.map.find(name);
  if (it != in.map.end()) return it->second;
  const std::uint32_t id = make(name);
  in.map.emplace(name, id);
  return id;
}

struct StitchCtx {
  FlatNetlist& out;
  Interner masters;
  Interner pins;
  Interner groups;
  std::uint32_t shared_const0 = kUnset;
  std::uint32_t shared_const1 = kUnset;
};

/// Splices one prebuilt block into the flat netlist under `group`.
/// `sub_ports` maps the block module's local port nets to flat nets chosen
/// by the caller — exactly the map flatten() hands to expand().
void splice_block(StitchCtx& ctx, const FlatBlock& blk, std::uint32_t group,
                  const std::unordered_map<std::uint32_t, std::uint32_t>&
                      sub_ports) {
  const std::string& group_name = ctx.out.group_names()[group];

  std::vector<std::uint32_t> slot_flat(blk.slot_nets.size());
  for (std::size_t i = 0; i < blk.slot_nets.size(); ++i) {
    slot_flat[i] = sub_ports.at(blk.slot_nets[i]);
  }

  // Replay net allocations in the order expand() would perform them so
  // global net indices (and the shared-const lazy allocation) line up.
  std::vector<std::uint32_t> internal_flat(blk.internals.size(), kUnset);
  for (const FlatBlock::AllocEvent& ev : blk.alloc_seq) {
    switch (ev.kind) {
      case FlatBlock::RefKind::kInternal: {
        const FlatBlock::InternalNet& in = blk.internals[ev.internal];
        internal_flat[ev.internal] = ctx.out.new_net(
            NetConst::kNone,
            in.prefixed ? group_name + "." + in.suffix : in.suffix);
        break;
      }
      case FlatBlock::RefKind::kConst0:
        if (ctx.shared_const0 == kUnset) {
          ctx.shared_const0 = ctx.out.new_net(NetConst::kZero, "const0");
        }
        break;
      case FlatBlock::RefKind::kConst1:
        if (ctx.shared_const1 == kUnset) {
          ctx.shared_const1 = ctx.out.new_net(NetConst::kOne, "const1");
        }
        break;
      case FlatBlock::RefKind::kPort:
        break;  // ports are never allocation events
    }
  }

  // Remap block-local master/pin ids to the design-wide interned tables in
  // gate emission order (the order flatten() would intern them in).
  std::vector<std::uint32_t> master_map(blk.master_names.size(), kUnset);
  std::vector<std::uint32_t> pin_map(blk.pin_names.size(), kUnset);
  auto resolve = [&](const FlatBlock::NetRef& ref) -> std::uint32_t {
    switch (ref.kind) {
      case FlatBlock::RefKind::kPort:
        return slot_flat[ref.index];
      case FlatBlock::RefKind::kInternal:
        return internal_flat[ref.index];
      case FlatBlock::RefKind::kConst0:
        return ctx.shared_const0;
      case FlatBlock::RefKind::kConst1:
        return ctx.shared_const1;
    }
    return kUnset;
  };
  for (const FlatBlock::Gate& bg : blk.gates) {
    FlatNetlist::Gate g;
    std::uint32_t& mm = master_map[bg.master];
    if (mm == kUnset) {
      mm = intern(ctx.masters, blk.master_names[bg.master],
                  [&](const std::string& n) {
                    return ctx.out.intern_master(n);
                  });
    }
    g.master = mm;
    g.group = group;
    g.pins.reserve(bg.pins.size());
    for (const FlatBlock::PinConn& bp : bg.pins) {
      std::uint32_t& pm = pin_map[bp.pin];
      if (pm == kUnset) {
        pm = intern(ctx.pins, blk.pin_names[bp.pin],
                    [&](const std::string& n) {
                      return ctx.out.intern_pin(n);
                    });
      }
      g.pins.push_back({pm, resolve(bp.net)});
    }
    ctx.out.add_gate(std::move(g));
  }
}

}  // namespace

std::string module_content_hash(const Design& d, const std::string& name) {
  std::map<std::string, std::string> memo;
  return memoized_hash(d, name, memo);
}

FlatBlock flatten_block(const Design& d, const std::string& module_name) {
  const Module& m = d.module(module_name);
  FlatBlock blk;
  BlockBuildCtx ctx{d, blk, {{}, &blk.master_names}, {{}, &blk.pin_names}};

  // Port slots: one per distinct port-backing net, in port order.
  RefMap port_refs;
  for (const Port& p : m.ports()) {
    const auto it = port_refs.find(p.net.v);
    std::uint32_t slot;
    if (it != port_refs.end()) {
      slot = it->second.index;
    } else {
      slot = static_cast<std::uint32_t>(blk.slot_nets.size());
      blk.slot_nets.push_back(p.net.v);
      port_refs.emplace(p.net.v,
                        FlatBlock::NetRef{FlatBlock::RefKind::kPort, slot});
    }
    blk.ports.push_back({p.name, p.dir, slot});
  }

  expand_into_block(ctx, m, port_refs);
  blk.content_key = module_content_hash(d, module_name);
  return blk;
}

StitchResult stitch_flatten(const Design& d, const std::string& top,
                            FlatBlockCache* cache) {
  const std::vector<std::string> problems = validate(d, top);
  if (!problems.empty()) {
    throw std::invalid_argument("flatten: design invalid: " + problems[0] +
                                (problems.size() > 1 ? " (+more)" : ""));
  }

  StitchResult res;
  FlatNetlist& out = res.nl;
  StitchCtx ctx{out};
  const Module& m = d.module(top);

  std::map<std::string, std::string> hash_memo;
  // Blocks already obtained this call, by module name (identical bodies
  // expand once even with no external cache).
  std::unordered_map<std::string, std::shared_ptr<const FlatBlock>> local;

  std::unordered_map<std::uint32_t, std::uint32_t> top_ports;
  for (const Port& p : m.ports()) {
    const std::uint32_t net = out.new_net(m.net(p.net).tie, p.name);
    top_ports.emplace(p.net.v, net);
    if (p.dir == PortDir::kIn) {
      out.add_primary_input(p.name, net);
    } else {
      out.add_primary_output(p.name, net);
    }
  }

  const std::uint32_t top_group = out.intern_group(top);
  ctx.groups.map.emplace(top, top_group);

  std::vector<std::uint32_t> local2flat(m.nets().size(), kUnset);
  for (const auto& [local_net, flat] : top_ports) local2flat[local_net] = flat;
  auto flat_net = [&](NetId local_id) -> std::uint32_t {
    std::uint32_t& slot = local2flat[local_id.v];
    if (slot != kUnset) return slot;
    const NetConst tie = m.net(local_id).tie;
    if (tie == NetConst::kZero) {
      if (ctx.shared_const0 == kUnset) {
        ctx.shared_const0 = out.new_net(tie, "const0");
      }
      slot = ctx.shared_const0;
    } else if (tie == NetConst::kOne) {
      if (ctx.shared_const1 == kUnset) {
        ctx.shared_const1 = out.new_net(tie, "const1");
      }
      slot = ctx.shared_const1;
    } else {
      slot = out.new_net(tie, m.net(local_id).name);
    }
    return slot;
  };

  core::ArtifactHasher key_hasher;
  key_hasher.str("nl1");
  key_hasher.str(top);
  key_hasher.str(memoized_hash(d, top, hash_memo));

  for (const Instance& inst : m.instances()) {
    if (inst.is_cell) {
      FlatNetlist::Gate g;
      g.master = intern(ctx.masters, inst.master, [&](const std::string& n) {
        return out.intern_master(n);
      });
      g.group = top_group;
      for (const Conn& c : inst.conns) {
        const std::uint32_t pin =
            intern(ctx.pins, c.pin,
                   [&](const std::string& n) { return out.intern_pin(n); });
        g.pins.push_back({pin, flat_net(c.net)});
      }
      out.add_gate(std::move(g));
      continue;
    }
    const std::uint32_t group = intern(
        ctx.groups, inst.name,
        [&](const std::string& n) { return out.intern_group(n); });
    const Module& sub = d.module(inst.master);
    std::unordered_map<std::uint32_t, std::uint32_t> sub_ports;
    for (const Conn& c : inst.conns) {
      const Port& p = sub.port(c.pin);
      sub_ports.emplace(p.net.v, flat_net(c.net));
    }
    for (const Port& p : sub.ports()) {
      if (sub_ports.contains(p.net.v)) continue;
      if (p.dir == PortDir::kIn) {
        throw std::invalid_argument("flatten: unconnected input port " +
                                    p.name + " on instance " + inst.name);
      }
      sub_ports.emplace(p.net.v,
                        out.new_net(NetConst::kNone,
                                    inst.name + "." + p.name + ".nc"));
    }

    // Obtain the block: per-call memo, then the shared tier, then build.
    std::shared_ptr<const FlatBlock> blk;
    const auto lit = local.find(inst.master);
    if (lit != local.end()) {
      blk = lit->second;
      ++res.stats.blocks_reused;
    } else {
      const std::string& key = memoized_hash(d, inst.master, hash_memo);
      if (cache) blk = cache->find(key);
      if (blk) {
        ++res.stats.blocks_reused;
      } else {
        FlatBlock built = flatten_block(d, inst.master);
        ++res.stats.blocks_built;
        blk = cache ? cache->put(key, std::move(built))
                    : std::make_shared<const FlatBlock>(std::move(built));
      }
      local.emplace(inst.master, blk);
    }
    res.stats.gates_spliced += blk->gate_count();
    ++res.stats.blocks_spliced;
    splice_block(ctx, *blk, group, sub_ports);
  }

  res.netlist_key = key_hasher.hex();
  return res;
}

bool flat_netlist_equal(const FlatNetlist& a, const FlatNetlist& b) {
  if (a.net_count() != b.net_count()) return false;
  for (std::uint32_t n = 0; n < a.net_count(); ++n) {
    if (a.net_const(n) != b.net_const(n)) return false;
    if (a.net_name(n) != b.net_name(n)) return false;
  }
  if (a.master_names() != b.master_names()) return false;
  if (a.pin_names() != b.pin_names()) return false;
  if (a.group_names() != b.group_names()) return false;
  const auto io_equal = [](const std::vector<FlatNetlist::PrimaryIo>& x,
                           const std::vector<FlatNetlist::PrimaryIo>& y) {
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i].name != y[i].name || x[i].net != y[i].net) return false;
    }
    return true;
  };
  if (!io_equal(a.primary_inputs(), b.primary_inputs())) return false;
  if (!io_equal(a.primary_outputs(), b.primary_outputs())) return false;
  if (a.gates().size() != b.gates().size()) return false;
  for (std::size_t i = 0; i < a.gates().size(); ++i) {
    const FlatNetlist::Gate& ga = a.gates()[i];
    const FlatNetlist::Gate& gb = b.gates()[i];
    if (ga.master != gb.master || ga.group != gb.group) return false;
    if (ga.pins.size() != gb.pins.size()) return false;
    for (std::size_t p = 0; p < ga.pins.size(); ++p) {
      if (ga.pins[p].pin_name != gb.pins[p].pin_name ||
          ga.pins[p].net != gb.pins[p].net) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace syndcim::netlist

#pragma once
#include <cstddef>
#include <string>
#include <string_view>

#include "netlist/flatten.hpp"
#include "netlist/module.hpp"
#include "netlist/stitch.hpp"

namespace syndcim::netlist {

// Stable binary codecs for the netlist artifact tiers (modules, blocks,
// flats) of the on-disk artifact store. Layout is fixed little-endian
// (core/binio.hpp) with a leading per-type version byte; a round trip is
// bit-exact, so a decoded artifact is indistinguishable from the computed
// one — the warm-path byte-identity guarantee. Decoders throw
// core::BinDecodeError on truncated/foreign payloads.

[[nodiscard]] std::string encode_module(const Module& m);
[[nodiscard]] Module decode_module(std::string_view payload);

[[nodiscard]] std::string encode_flat_block(const FlatBlock& b);
[[nodiscard]] FlatBlock decode_flat_block(std::string_view payload);

[[nodiscard]] std::string encode_flat_netlist(const FlatNetlist& nl);
[[nodiscard]] FlatNetlist decode_flat_netlist(std::string_view payload);

// Deep heap footprint of each payload (the ArtifactTierStats deep-bytes
// hooks — what --cache-cap-bytes actually bounds).
[[nodiscard]] std::size_t deep_bytes(const Module& m);
[[nodiscard]] std::size_t deep_bytes(const FlatBlock& b);
[[nodiscard]] std::size_t deep_bytes(const FlatNetlist& nl);

}  // namespace syndcim::netlist

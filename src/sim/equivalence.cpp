#include "sim/equivalence.hpp"

#include <map>
#include <random>

#include "sim/gate_sim.hpp"
#include "sim/scalar_ref.hpp"

namespace syndcim::sim {

std::string check_equivalence(
    const netlist::FlatNetlist& a, const netlist::FlatNetlist& b,
    const cell::Library& lib, int n_vectors, unsigned seed,
    const std::vector<std::pair<std::string, std::string>>& port_map) {
  std::map<std::string, std::string> in_map, out_map;
  for (const auto& [an, bn] : port_map) {
    in_map[an] = bn;
    out_map[an] = bn;
  }
  auto b_name = [&](const std::map<std::string, std::string>& m,
                    const std::string& an) {
    const auto it = m.find(an);
    return it == m.end() ? an : it->second;
  };

  // Port compatibility first.
  for (const auto& io : a.primary_inputs()) {
    const std::string bn = b_name(in_map, io.name);
    bool found = false;
    for (const auto& bio : b.primary_inputs()) found |= bio.name == bn;
    if (!found) return "input '" + io.name + "' has no counterpart '" + bn +
                       "' in B";
  }
  for (const auto& io : a.primary_outputs()) {
    const std::string bn = b_name(out_map, io.name);
    bool found = false;
    for (const auto& bio : b.primary_outputs()) found |= bio.name == bn;
    if (!found) return "output '" + io.name + "' has no counterpart '" +
                       bn + "' in B";
  }

  // 64 random vectors ride per simulated step, one per lane; the scalar
  // reference replays lane 0 so a systematic bug in the bit-parallel
  // engine itself cannot self-certify.
  const int lanes = n_vectors < 64 ? (n_vectors < 1 ? 1 : n_vectors) : 64;
  const int steps = (n_vectors + lanes - 1) / lanes;
  GateSim sa(a, lib, lanes), sb(b, lib, lanes);
  ScalarGateSim ref(a, lib);
  std::mt19937_64 rng(seed);
  for (int s = 0; s < steps; ++s) {
    for (const auto& io : a.primary_inputs()) {
      std::uint64_t word = 0;
      for (int l = 0; l < lanes; ++l) {
        word |= (rng() & 1u) << l;
      }
      sa.set_input_word(io.name, word);
      sb.set_input_word(b_name(in_map, io.name), word);
      ref.set_input(io.name, static_cast<int>(word & 1u));
    }
    sa.step();
    sb.step();
    ref.step();
    sa.eval();
    sb.eval();
    ref.eval();
    for (const auto& io : a.primary_outputs()) {
      const std::uint64_t wa = sa.output_word(io.name);
      const std::uint64_t wb = sb.output_word(b_name(out_map, io.name));
      if (wa != wb) {
        int lane = 0;
        while (((wa ^ wb) >> lane & 1u) == 0) ++lane;
        return "vector " + std::to_string(s * lanes + lane) + ": output '" +
               io.name + "' differs (A=" + std::to_string(wa >> lane & 1u) +
               ", B=" + std::to_string(wb >> lane & 1u) + ")";
      }
      const int vr = ref.output(io.name);
      if (static_cast<int>(wa & 1u) != vr) {
        return "vector " + std::to_string(s * lanes) + ": output '" +
               io.name + "' lane 0 (=" + std::to_string(wa & 1u) +
               ") disagrees with the scalar reference (=" +
               std::to_string(vr) + ")";
      }
    }
  }
  return {};
}

}  // namespace syndcim::sim

#include "sim/equivalence.hpp"

#include <map>
#include <random>

#include "sim/gate_sim.hpp"

namespace syndcim::sim {

std::string check_equivalence(
    const netlist::FlatNetlist& a, const netlist::FlatNetlist& b,
    const cell::Library& lib, int n_vectors, unsigned seed,
    const std::vector<std::pair<std::string, std::string>>& port_map) {
  std::map<std::string, std::string> in_map, out_map;
  for (const auto& [an, bn] : port_map) {
    in_map[an] = bn;
    out_map[an] = bn;
  }
  auto b_name = [&](const std::map<std::string, std::string>& m,
                    const std::string& an) {
    const auto it = m.find(an);
    return it == m.end() ? an : it->second;
  };

  // Port compatibility first.
  for (const auto& io : a.primary_inputs()) {
    const std::string bn = b_name(in_map, io.name);
    bool found = false;
    for (const auto& bio : b.primary_inputs()) found |= bio.name == bn;
    if (!found) return "input '" + io.name + "' has no counterpart '" + bn +
                       "' in B";
  }
  for (const auto& io : a.primary_outputs()) {
    const std::string bn = b_name(out_map, io.name);
    bool found = false;
    for (const auto& bio : b.primary_outputs()) found |= bio.name == bn;
    if (!found) return "output '" + io.name + "' has no counterpart '" +
                       bn + "' in B";
  }

  GateSim sa(a, lib), sb(b, lib);
  std::mt19937_64 rng(seed);
  for (int v = 0; v < n_vectors; ++v) {
    for (const auto& io : a.primary_inputs()) {
      const int bit = static_cast<int>(rng() & 1);
      sa.set_input(io.name, bit);
      sb.set_input(b_name(in_map, io.name), bit);
    }
    sa.step();
    sb.step();
    sa.eval();
    sb.eval();
    for (const auto& io : a.primary_outputs()) {
      const int va = sa.output(io.name);
      const int vb = sb.output(b_name(out_map, io.name));
      if (va != vb) {
        return "vector " + std::to_string(v) + ": output '" + io.name +
               "' differs (A=" + std::to_string(va) +
               ", B=" + std::to_string(vb) + ")";
      }
    }
  }
  return {};
}

}  // namespace syndcim::sim

#pragma once
#include <cstdint>
#include <vector>

#include "num/alignment.hpp"
#include "num/fp_format.hpp"
#include "num/int_ops.hpp"
#include "rtlgen/macro.hpp"

namespace syndcim::sim {

/// Bit-accurate behavioral model of a generated DCIM macro. Serves as the
/// golden reference for the gate-level netlist and as the fast functional
/// simulator for workload-level experiments.
///
/// Weight layout follows MacroDesign: a weight of precision `wp` for
/// (output o, row r) occupies columns o*wp+k, bit k in column o*wp+k,
/// two's complement with the MSB column negative. FP weights are aligned
/// per output group at load time (shared exponent per output).
class DcimMacroModel {
 public:
  explicit DcimMacroModel(rtlgen::MacroConfig cfg);

  [[nodiscard]] const rtlgen::MacroConfig& cfg() const { return cfg_; }

  // --- weight storage ---
  void write_bit(int col, int row, int bank, int bit);
  [[nodiscard]] int read_bit(int col, int row, int bank) const;

  /// Loads an integer weight matrix into `bank`: weights[o][r] is the
  /// weight of output o at row r, `wp` bits two's complement
  /// (wp==1: unsigned 0/1). Number of outputs = cols/wp.
  void load_weights_int(int bank, int wp,
                        const std::vector<std::vector<std::int64_t>>& weights);

  /// Loads FP weights (encodings of `fmt`); each output group is aligned
  /// to its own shared exponent and stored sign-extended over the group's
  /// columns. Returns the per-output shared (unbiased) exponents.
  std::vector<int> load_weights_fp(
      int bank, num::FpFormat fmt,
      const std::vector<std::vector<std::uint32_t>>& weights);

  // --- MAC (golden, direct arithmetic) ---
  /// inputs[r]: `ib`-bit two's complement (or unsigned when
  /// !signed_inputs); returns cols/wp outputs.
  [[nodiscard]] std::vector<std::int64_t> mac_int(
      const std::vector<std::int64_t>& inputs, int ib, int wp, int bank,
      bool signed_inputs = true) const;

  struct FpMacResult {
    std::vector<std::int64_t> raw;  ///< integer MAC of aligned mantissas
    int input_shared_exp = 0;       ///< unbiased
    std::vector<int> weight_shared_exp;
    int in_frac = 0, w_frac = 0;
    /// Real value of output o implied by the fixed-point result.
    [[nodiscard]] double value(std::size_t o) const;
  };
  /// FP MAC: aligns `inputs` (encodings of `fmt`) through the behavioral
  /// alignment unit and multiplies against the FP weights previously
  /// loaded with load_weights_fp (same fmt/bank).
  [[nodiscard]] FpMacResult mac_fp(const std::vector<std::uint32_t>& inputs,
                                   num::FpFormat fmt, int bank) const;

  // --- cycle-accurate emulation (mirrors the gate-level pipeline) ---
  /// Same result as mac_int but computed through the bit-serial
  /// popcount/S&A/OFU pipeline, cycle by cycle.
  [[nodiscard]] std::vector<std::int64_t> mac_int_serial(
      const std::vector<std::int64_t>& inputs, int ib, int wp, int bank,
      bool signed_inputs = true) const;

  /// The aligned integer inputs the macro would feed serially in FP mode.
  [[nodiscard]] num::AlignedGroup align_inputs(
      const std::vector<std::uint32_t>& inputs, num::FpFormat fmt) const;

 private:
  [[nodiscard]] std::int64_t column_weight(int col, int row, int bank) const;
  rtlgen::MacroConfig cfg_;
  std::vector<std::uint8_t> bits_;  // (col, row, bank)
  std::vector<int> fp_weight_exp_;  // per output group of last fp load
};

}  // namespace syndcim::sim

#pragma once
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "netlist/flatten.hpp"

namespace syndcim::sim {

/// Random-simulation combinational equivalence check between two
/// flattened netlists (a lightweight LEC): ports are matched through
/// `port_map` (name in A -> name in B; identity for unmapped names), both
/// designs are driven with the same random vectors and all mapped outputs
/// are compared. Sequential state is stepped identically in both.
///
/// Returns an empty string on success, otherwise a description of the
/// first mismatch. `n_vectors` random input assignments are tried, packed
/// 64 per simulated step into the bit-parallel engine's lanes; lane 0 is
/// additionally cross-checked against the retained scalar reference
/// simulator so the packed engine cannot self-certify.
[[nodiscard]] std::string check_equivalence(
    const netlist::FlatNetlist& a, const netlist::FlatNetlist& b,
    const cell::Library& lib, int n_vectors, unsigned seed = 1,
    const std::vector<std::pair<std::string, std::string>>& port_map = {});

}  // namespace syndcim::sim

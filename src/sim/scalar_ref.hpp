#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "netlist/flatten.hpp"

namespace syndcim::sim {

/// The retained scalar reference simulator: the original one-bit-per-net
/// (`int8_t`) full-level-sweep engine GateSim grew out of, kept verbatim
/// as the golden control arm. Its observable behavior — values, toggle
/// counts, cycles — defines what the 64-lane event-driven GateSim must
/// reproduce at lanes=1 (and per lane at any width), and it is the
/// "scalar seed" baseline `bench/perf_gate_sim` measures speedup against.
///
/// Sequential semantics match GateSim: DFF/DFFE/LATCH and SRAM bitcells
/// hold state; `step()` evaluates combinational logic with the current
/// state, then captures the next state on the (implicit, ideal) clock
/// edge.
class ScalarGateSim {
 public:
  ScalarGateSim(const netlist::FlatNetlist& nl, const cell::Library& lib);

  void set_input(std::string_view port, int value);
  /// Sets bus bits base[0..width) from the low bits of `value`.
  void set_input_bus(std::string_view base, std::uint64_t value, int width);

  /// Settles combinational logic only (no state capture).
  void eval();
  /// eval() + capture registers/bitcells, counts one cycle.
  void step();

  [[nodiscard]] int output(std::string_view port) const;
  [[nodiscard]] std::uint64_t output_bus(std::string_view base,
                                         int width) const;
  [[nodiscard]] int net_value(std::uint32_t net) const {
    return values_[net];
  }

  /// Directly loads the state of a sequential/storage element by gate
  /// index (used to preload SRAM weights without driving write cycles).
  void set_state(std::uint32_t gate_index, int value);
  [[nodiscard]] int state(std::uint32_t gate_index) const;
  /// Gate indices of all bitcells, in netlist order.
  [[nodiscard]] const std::vector<std::uint32_t>& bitcell_gates() const {
    return bitcells_;
  }

  // --- activity extraction ---
  void reset_activity();
  [[nodiscard]] const std::vector<std::uint64_t>& net_toggles() const {
    return toggles_;
  }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  [[nodiscard]] std::size_t gate_count() const { return kinds_.size(); }

 private:
  void eval_gate(std::uint32_t g);

  const netlist::FlatNetlist& nl_;
  std::vector<const cell::Cell*> cells_;  // per gate
  std::vector<cell::Kind> kinds_;         // per gate
  // Pooled pin nets: inputs in canonical order, then outputs.
  std::vector<std::uint32_t> pin_pool_;
  std::vector<std::uint32_t> gate_pin_start_;  // size gates+1
  std::vector<std::uint8_t> gate_n_in_;

  std::vector<std::vector<std::uint32_t>> levels_;  // combinational order
  std::vector<std::uint32_t> seq_gates_;            // registers + bitcells
  std::vector<std::uint32_t> bitcells_;

  std::vector<std::int8_t> values_;  // per net
  std::vector<std::int8_t> state_;   // per gate (sequential only)
  std::vector<std::uint64_t> toggles_;
  std::uint64_t cycles_ = 0;
};

}  // namespace syndcim::sim

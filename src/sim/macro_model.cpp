#include "sim/macro_model.hpp"

#include <cmath>
#include <stdexcept>

namespace syndcim::sim {

using num::AlignedGroup;
using num::FpFormat;

DcimMacroModel::DcimMacroModel(rtlgen::MacroConfig cfg)
    : cfg_(std::move(cfg)) {
  cfg_.validate();
  bits_.assign(static_cast<std::size_t>(cfg_.rows) * cfg_.cols * cfg_.mcr,
               0);
}

void DcimMacroModel::write_bit(int col, int row, int bank, int bit) {
  if (col < 0 || col >= cfg_.cols || row < 0 || row >= cfg_.rows ||
      bank < 0 || bank >= cfg_.mcr) {
    throw std::out_of_range("DcimMacroModel::write_bit");
  }
  bits_[(static_cast<std::size_t>(col) * cfg_.rows + row) * cfg_.mcr +
        bank] = bit ? 1 : 0;
}

int DcimMacroModel::read_bit(int col, int row, int bank) const {
  return bits_[(static_cast<std::size_t>(col) * cfg_.rows + row) * cfg_.mcr +
               bank];
}

void DcimMacroModel::load_weights_int(
    int bank, int wp,
    const std::vector<std::vector<std::int64_t>>& weights) {
  const int n_out = cfg_.cols / wp;
  if (static_cast<int>(weights.size()) != n_out) {
    throw std::invalid_argument("load_weights_int: wrong output count");
  }
  const num::IntFormat f{wp, wp > 1};
  for (int o = 0; o < n_out; ++o) {
    if (static_cast<int>(weights[static_cast<std::size_t>(o)].size()) !=
        cfg_.rows) {
      throw std::invalid_argument("load_weights_int: wrong row count");
    }
    for (int r = 0; r < cfg_.rows; ++r) {
      const std::int64_t w = weights[static_cast<std::size_t>(o)]
                                    [static_cast<std::size_t>(r)];
      num::require_in_range(w, f);
      for (int k = 0; k < wp; ++k) {
        write_bit(o * wp + k, r, bank, num::ts_bit(w, k));
      }
    }
  }
}

std::vector<int> DcimMacroModel::load_weights_fp(
    int bank, FpFormat fmt,
    const std::vector<std::vector<std::uint32_t>>& weights) {
  const int wp = cfg_.max_weight_bits();
  const int n_out = cfg_.cols / wp;
  if (static_cast<int>(weights.size()) != n_out) {
    throw std::invalid_argument("load_weights_fp: wrong output count");
  }
  std::vector<int> shared;
  shared.reserve(static_cast<std::size_t>(n_out));
  for (int o = 0; o < n_out; ++o) {
    const auto& group = weights[static_cast<std::size_t>(o)];
    if (static_cast<int>(group.size()) != cfg_.rows) {
      throw std::invalid_argument("load_weights_fp: wrong row count");
    }
    const AlignedGroup a =
        num::align_fp_group(group, fmt, cfg_.fp_guard_bits);
    shared.push_back(a.shared_exp_unbiased);
    for (int r = 0; r < cfg_.rows; ++r) {
      const std::int64_t m = a.mant[static_cast<std::size_t>(r)];
      for (int k = 0; k < wp; ++k) {
        // Sign extension fills the columns above the mantissa width.
        write_bit(o * wp + k, r, bank, num::ts_bit(m, k));
      }
    }
  }
  fp_weight_exp_ = shared;
  return shared;
}

std::int64_t DcimMacroModel::column_weight(int col, int row, int bank) const {
  return read_bit(col, row, bank);
}

std::vector<std::int64_t> DcimMacroModel::mac_int(
    const std::vector<std::int64_t>& inputs, int ib, int wp, int bank,
    bool signed_inputs) const {
  if (static_cast<int>(inputs.size()) != cfg_.rows) {
    throw std::invalid_argument("mac_int: wrong input count");
  }
  const num::IntFormat inf{ib, signed_inputs};
  for (const std::int64_t v : inputs) num::require_in_range(v, inf);
  const int n_out = cfg_.cols / wp;
  std::vector<std::int64_t> out(static_cast<std::size_t>(n_out), 0);
  for (int o = 0; o < n_out; ++o) {
    std::int64_t acc = 0;
    for (int r = 0; r < cfg_.rows; ++r) {
      // Reconstruct the stored weight from column bits (two's complement
      // across the group; wp==1 unsigned).
      std::int64_t w = 0;
      for (int k = 0; k < wp; ++k) {
        const std::int64_t b = column_weight(o * wp + k, r, bank);
        if (wp > 1 && k == wp - 1) {
          w -= b << k;
        } else {
          w += b << k;
        }
      }
      acc += inputs[static_cast<std::size_t>(r)] * w;
    }
    out[static_cast<std::size_t>(o)] = acc;
  }
  return out;
}

std::vector<std::int64_t> DcimMacroModel::mac_int_serial(
    const std::vector<std::int64_t>& inputs, int ib, int wp, int bank,
    bool signed_inputs) const {
  if (static_cast<int>(inputs.size()) != cfg_.rows) {
    throw std::invalid_argument("mac_int_serial: wrong input count");
  }
  // Per-column bit-serial S&A accumulation, MSB-first with subtract on the
  // sign-bit cycle — exactly the gate-level pipeline's arithmetic.
  std::vector<std::int64_t> acc(static_cast<std::size_t>(cfg_.cols), 0);
  for (int t = 0; t < ib; ++t) {
    const int bit_pos = ib - 1 - t;  // MSB first
    const bool neg = signed_inputs && t == 0;
    for (int c = 0; c < cfg_.cols; ++c) {
      std::int64_t psum = 0;
      for (int r = 0; r < cfg_.rows; ++r) {
        psum += num::ts_bit(inputs[static_cast<std::size_t>(r)], bit_pos) &
                column_weight(c, r, bank);
      }
      auto& a = acc[static_cast<std::size_t>(c)];
      a = (t == 0 ? 0 : a * 2) + (neg ? -psum : psum);
    }
  }
  // OFU fusion: the stage-1 pair containing the group's sign column
  // subtracts its hi element; all later stages add already-signed values.
  const int n_out = cfg_.cols / wp;
  std::vector<std::int64_t> out(static_cast<std::size_t>(n_out), 0);
  for (int o = 0; o < n_out; ++o) {
    std::vector<std::int64_t> vals(
        acc.begin() + o * wp, acc.begin() + (o + 1) * wp);
    if (wp > 1) vals.back() = -vals.back();  // two's-complement sign column
    int stage = 1;
    while (vals.size() > 1) {
      std::vector<std::int64_t> next;
      for (std::size_t j = 0; j + 1 < vals.size(); j += 2) {
        next.push_back(vals[j] + (vals[j + 1] << (1 << (stage - 1))));
      }
      vals = std::move(next);
      ++stage;
    }
    out[static_cast<std::size_t>(o)] = vals[0];
  }
  return out;
}

num::AlignedGroup DcimMacroModel::align_inputs(
    const std::vector<std::uint32_t>& inputs, FpFormat fmt) const {
  return num::align_fp_group(inputs, fmt, cfg_.fp_guard_bits);
}

double DcimMacroModel::FpMacResult::value(std::size_t o) const {
  return std::ldexp(static_cast<double>(raw.at(o)),
                    input_shared_exp - in_frac + weight_shared_exp.at(o) -
                        w_frac);
}

DcimMacroModel::FpMacResult DcimMacroModel::mac_fp(
    const std::vector<std::uint32_t>& inputs, FpFormat fmt, int bank) const {
  if (fp_weight_exp_.empty()) {
    throw std::logic_error("mac_fp: no FP weights loaded");
  }
  const AlignedGroup a = align_inputs(inputs, fmt);
  const int wp = cfg_.max_weight_bits();
  FpMacResult res;
  res.input_shared_exp = a.shared_exp_unbiased;
  res.weight_shared_exp = fp_weight_exp_;
  res.in_frac = a.frac_shift;
  res.w_frac = fmt.man_bits + cfg_.fp_guard_bits;
  res.raw = mac_int(a.mant, num::aligned_mant_bits(fmt, cfg_.fp_guard_bits),
                    wp, bank);
  return res;
}

}  // namespace syndcim::sim

#pragma once
#include <cstdint>
#include <memory>
#include <vector>

#include "cell/library.hpp"
#include "netlist/flatten.hpp"
#include "rtlgen/macro.hpp"
#include "sim/gate_sim.hpp"
#include "sim/macro_model.hpp"

namespace syndcim::sim {

/// Gate-level testbench for a generated macro: owns the flattened netlist
/// and a GateSim, and drives the cycle protocol documented on MacroDesign.
/// Used for functional verification against DcimMacroModel and for
/// activity extraction feeding the power engine.
///
/// With `lanes > 1` the testbench drives the bit-parallel engine: control
/// signals broadcast to every lane, while `run_mac_int_lanes` carries one
/// independent input vector per lane through a single pass of the cycle
/// protocol, so one protocol run prices `lanes` MAC workloads.
class MacroTestbench {
 public:
  MacroTestbench(const rtlgen::MacroDesign& md, const cell::Library& lib,
                 int lanes = 1);

  [[nodiscard]] const netlist::FlatNetlist& netlist() const { return flat_; }
  [[nodiscard]] GateSim& sim() { return *sim_; }

  /// Copies the model's weight storage straight into the bitcell states
  /// (complemented for the OAI22 mux style, mirroring the write port's
  /// inverting bitline driver).
  void preload_weights(const DcimMacroModel& model);

  /// Writes one row of one bank through the real write port (2 cycles).
  void write_row_via_port(int row, int bank, const std::vector<int>& bits);

  /// Full MAC through the gate-level pipeline; returns cols/wp outputs.
  /// (Drives lane 0; with lanes > 1 the other lanes see broadcast data.)
  [[nodiscard]] std::vector<std::int64_t> run_mac_int(
      const std::vector<std::int64_t>& inputs, int ib, int wp, int bank,
      bool signed_inputs = true);

  /// One protocol pass carrying an independent MAC per lane:
  /// `lane_inputs[l][r]` is lane l's row-r input (`lane_inputs.size()`
  /// must equal `lanes()`). Returns per-lane outputs, `[lane][col]`.
  [[nodiscard]] std::vector<std::vector<std::int64_t>> run_mac_int_lanes(
      const std::vector<std::vector<std::int64_t>>& lane_inputs, int ib,
      int wp, int bank, bool signed_inputs = true);

  /// FP MAC: drives the alignment unit with raw encodings; returns the
  /// integer mantissa results (compare with DcimMacroModel::mac_fp().raw).
  [[nodiscard]] std::vector<std::int64_t> run_mac_fp(
      const std::vector<std::uint32_t>& inputs, num::FpFormat fmt, int bank);

  /// Total cycles consumed so far (activity normalization).
  [[nodiscard]] std::uint64_t cycles() const { return sim_->cycles(); }
  [[nodiscard]] int lanes() const { return sim_->lanes(); }

 private:
  void set_bank_select(int bank);
  void set_mode(int wp);
  void idle_controls();
  [[nodiscard]] std::vector<std::int64_t> read_outputs(int wp,
                                                       int lane = 0);

  const rtlgen::MacroDesign& md_;
  netlist::FlatNetlist flat_;
  std::unique_ptr<GateSim> sim_;
};

}  // namespace syndcim::sim

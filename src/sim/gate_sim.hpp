#pragma once
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cell/library.hpp"
#include "netlist/flatten.hpp"

namespace syndcim::sim {

/// Two-valued levelized gate-level simulator with per-net toggle counting,
/// rebuilt as a 64-lane bit-parallel, event-driven engine.
///
/// Lane packing: every net holds one `uint64_t` word whose bits are up to
/// 64 independent stimulus streams ("lanes", PPSFP-style packing). Gates
/// evaluate all lanes at once with bitwise ops and toggles accumulate via
/// `popcount(prev ^ next)`, so one simulated cycle prices `lanes`
/// independent workload cycles. With `lanes == 1` the engine is
/// bit-identical to the retained scalar reference (`ScalarGateSim`):
/// every value, toggle count and cycle count matches exactly.
///
/// Event-driven scheduling: a per-level dirty-gate worklist makes `eval()`
/// visit only gates whose fan-in word actually changed since their last
/// evaluation, instead of sweeping every level. Because an unchanged
/// fan-in word can only reproduce the unchanged output word (gates are
/// pure), event-driven and full-sweep evaluation are exactly equivalent —
/// same values, same toggles — so `event_driven` is a pure scheduling
/// knob kept only as the benchmark control arm.
///
/// Sequential semantics: DFF/DFFE/LATCH and SRAM bitcells hold one state
/// word per gate (64 independent lane states); `step()` evaluates
/// combinational logic with the current state, then captures the next
/// state on the (implicit, ideal) clock edge. Latches are simulated
/// edge-triggered like DFFs (the generators never emit transparent
/// latches on data paths). SRAM bitcells capture D when WL=1.
///
/// Port lookup: primary-port and bus-bit net ids are resolved once at
/// construction into hash maps (`"din3[2]"` → net), so the per-cycle
/// stimulus path does no string formatting and no linear netlist scans.
class GateSim {
 public:
  /// `lanes` in [1, 64]; `event_driven == false` forces the full-sweep
  /// schedule (control arm — results are identical either way).
  GateSim(const netlist::FlatNetlist& nl, const cell::Library& lib,
          int lanes = 1, bool event_driven = true);

  // --- stimulus ---
  /// Broadcasts a scalar bit to every lane of the port's net.
  void set_input(std::string_view port, int value);
  /// Sets bus bits base[0..width) from the low bits of `value`, broadcast
  /// to every lane.
  void set_input_bus(std::string_view base, std::uint64_t value, int width);
  /// Per-lane stimulus: bit `l` of `word` drives lane `l`.
  void set_input_word(std::string_view port, std::uint64_t word);
  /// Per-lane bus stimulus: `values[l]` is lane `l`'s integer; bus bit
  /// base[i] gets bit `i` of it. `values.size()` must equal `lanes()`.
  void set_input_bus_lanes(std::string_view base,
                           const std::vector<std::uint64_t>& values,
                           int width);

  /// Settles combinational logic only (no state capture).
  void eval();
  /// eval() + capture registers/bitcells, counts one cycle.
  void step();

  // --- observation ---
  [[nodiscard]] int output(std::string_view port) const;  ///< lane 0
  [[nodiscard]] std::uint64_t output_word(std::string_view port) const;
  /// Lane-0 bus value (bit i = bus bit base[i]).
  [[nodiscard]] std::uint64_t output_bus(std::string_view base,
                                         int width) const;
  /// One lane's bus value.
  [[nodiscard]] std::uint64_t output_bus_lane(std::string_view base,
                                              int width, int lane) const;
  [[nodiscard]] int net_value(std::uint32_t net) const {
    return static_cast<int>(values_[net] & 1u);
  }
  [[nodiscard]] std::uint64_t net_word(std::uint32_t net) const {
    return values_[net];
  }

  /// Directly loads the state of a sequential/storage element by gate
  /// index, broadcast to every lane (used to preload SRAM weights without
  /// driving write cycles).
  void set_state(std::uint32_t gate_index, int value);
  [[nodiscard]] int state(std::uint32_t gate_index) const;  ///< lane 0
  [[nodiscard]] std::uint64_t state_word(std::uint32_t gate_index) const {
    return state_.at(gate_index);
  }
  /// Gate indices of all bitcells, in netlist order.
  [[nodiscard]] const std::vector<std::uint32_t>& bitcell_gates() const {
    return bitcells_;
  }

  // --- activity extraction for the power engine ---
  void reset_activity();
  /// Per-net lane-transition counts: popcount-summed over all lanes, so
  /// the per-workload-cycle rate is toggles / (cycles() * lanes()).
  [[nodiscard]] const std::vector<std::uint64_t>& net_toggles() const {
    return toggles_;
  }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] int lanes() const { return lanes_; }
  [[nodiscard]] bool event_driven() const { return event_driven_; }

  // --- scheduler statistics (obs: sim.gate_evals / sim.events_skipped) ---
  /// Combinational gate evaluations actually performed.
  [[nodiscard]] std::uint64_t gate_evals() const { return gate_evals_; }
  /// Evaluations a full level sweep would have performed but the dirty
  /// worklist skipped.
  [[nodiscard]] std::uint64_t events_skipped() const {
    return events_skipped_;
  }

  [[nodiscard]] std::size_t gate_count() const { return kinds_.size(); }
  [[nodiscard]] const cell::Cell& gate_cell(std::uint32_t g) const {
    return *cells_[g];
  }

 private:
  void eval_gate(std::uint32_t g);
  /// Writes a net word, counts lane toggles, and (event-driven) marks the
  /// net's combinational loads dirty.
  void write_net(std::uint32_t net, std::uint64_t word);
  void mark_loads_dirty(std::uint32_t net);
  [[nodiscard]] std::uint32_t input_net(std::string_view port) const;
  [[nodiscard]] const std::vector<std::uint32_t>& input_bus_nets(
      std::string_view base) const;
  [[nodiscard]] const std::vector<std::uint32_t>& output_bus_nets(
      std::string_view base) const;

  const netlist::FlatNetlist& nl_;
  int lanes_ = 1;
  bool event_driven_ = true;
  std::uint64_t mask_ = 1;                // low `lanes_` bits set
  std::vector<const cell::Cell*> cells_;  // per gate
  std::vector<cell::Kind> kinds_;         // per gate
  // Pooled pin nets: inputs in canonical order, then outputs.
  std::vector<std::uint32_t> pin_pool_;
  std::vector<std::uint32_t> gate_pin_start_;  // size gates+1
  std::vector<std::uint8_t> gate_n_in_;

  std::vector<std::vector<std::uint32_t>> levels_;  // combinational order
  std::vector<std::uint32_t> seq_gates_;            // registers + bitcells
  std::vector<std::uint32_t> bitcells_;

  // Event-driven worklist: per-net combinational loads (CSR), each comb
  // gate's level, per-level dirty lists and an in-worklist flag.
  std::vector<std::uint32_t> load_start_;  // size nets+1
  std::vector<std::uint32_t> load_pool_;
  std::vector<std::uint32_t> gate_level_;  // per gate; UINT32_MAX if seq
  std::vector<std::vector<std::uint32_t>> dirty_;  // per level
  std::vector<std::uint8_t> in_dirty_;             // per gate
  std::size_t comb_total_ = 0;

  // Port name -> net resolution, done once at construction.
  std::unordered_map<std::string, std::uint32_t> in_net_, out_net_;
  std::unordered_map<std::string, std::vector<std::uint32_t>> in_bus_,
      out_bus_;

  std::vector<std::uint64_t> values_;   // per net, one bit per lane
  std::vector<std::uint64_t> state_;    // per gate (sequential only)
  std::vector<std::uint64_t> toggles_;  // per net, summed over lanes
  std::uint64_t cycles_ = 0;
  std::uint64_t gate_evals_ = 0;
  std::uint64_t events_skipped_ = 0;
};

}  // namespace syndcim::sim

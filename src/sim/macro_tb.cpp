#include "sim/macro_tb.hpp"

#include <bit>
#include <stdexcept>

#include "netlist/flatten.hpp"
#include "rtlgen/ofu.hpp"

namespace syndcim::sim {

using rtlgen::MacroDesign;

namespace {
[[nodiscard]] int log2i(int v) {
  return std::bit_width(static_cast<unsigned>(v)) - 1;
}
}  // namespace

MacroTestbench::MacroTestbench(const MacroDesign& md,
                               const cell::Library& lib, int lanes)
    : md_(md), flat_(netlist::flatten(md.design, md.top)) {
  sim_ = std::make_unique<GateSim>(flat_, lib, lanes);
}

void MacroTestbench::preload_weights(const DcimMacroModel& model) {
  const auto& cfg = md_.cfg;
  const bool invert = cfg.mux == rtlgen::MuxStyle::kOai22Fused;
  const auto& cells = sim_->bitcell_gates();
  const std::size_t expected = static_cast<std::size_t>(cfg.rows) *
                               cfg.cols * cfg.mcr;
  if (cells.size() != expected) {
    throw std::logic_error("MacroTestbench: unexpected bitcell count");
  }
  for (int c = 0; c < cfg.cols; ++c) {
    for (int r = 0; r < cfg.rows; ++r) {
      for (int b = 0; b < cfg.mcr; ++b) {
        const int bit = model.read_bit(c, r, b);
        sim_->set_state(cells[md_.bitcell_index(c, r, b)],
                        invert ? bit ^ 1 : bit);
      }
    }
  }
}

void MacroTestbench::idle_controls() {
  sim_->set_input("neg", 0);
  sim_->set_input("clr", 0);
  sim_->set_input("cap", 0);
  sim_->set_input("load", 0);
  sim_->set_input("wen", 0);
}

void MacroTestbench::set_bank_select(int bank) {
  const auto& cfg = md_.cfg;
  if (bank < 0 || bank >= cfg.mcr) {
    throw std::out_of_range("MacroTestbench: bad bank");
  }
  if (cfg.mux == rtlgen::MuxStyle::kOai22Fused) {
    for (int k = 0; k < cfg.mcr; ++k) {
      sim_->set_input(netlist::bus_name("selh", k), k == bank ? 1 : 0);
    }
  } else if (cfg.mcr > 1) {
    sim_->set_input_bus("bsel", static_cast<std::uint64_t>(bank),
                        log2i(cfg.mcr));
  }
}

void MacroTestbench::set_mode(int wp) {
  const int n = log2i(md_.cfg.max_weight_bits());
  for (int s = 1; s <= n; ++s) {
    sim_->set_input(netlist::bus_name("mode", s - 1),
                    (1 << s) == wp ? 1 : 0);
  }
}

std::vector<std::int64_t> MacroTestbench::read_outputs(int wp, int lane) {
  const auto& cfg = md_.cfg;
  const int wp_max = cfg.max_weight_bits();
  const int stage = log2i(wp);
  const rtlgen::OfuModuleConfig ocfg{wp_max, cfg.sa_width(), cfg.ofu};
  const int width = ocfg.stage_width(stage);
  const int n_out = cfg.cols / wp;
  const int per_group = wp_max / wp;
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(n_out));
  for (int o = 0; o < n_out; ++o) {
    const int g = o / per_group, j = o % per_group;
    const std::uint64_t raw =
        sim_->output_bus_lane(MacroDesign::out_bus(g, stage, j), width, lane);
    out.push_back(num::sign_extend(raw, width));
  }
  return out;
}

std::vector<std::int64_t> MacroTestbench::run_mac_int(
    const std::vector<std::int64_t>& inputs, int ib, int wp, int bank,
    bool signed_inputs) {
  const auto& cfg = md_.cfg;
  if (static_cast<int>(inputs.size()) != cfg.rows) {
    throw std::invalid_argument("run_mac_int: wrong input count");
  }
  const int ib_max = cfg.max_input_bits();
  idle_controls();
  set_bank_select(bank);
  set_mode(wp);
  if (!cfg.fp_formats.empty()) sim_->set_input("fp_sel", 0);

  // Load cycle: parallel inputs, MSB-aligned in the PISO.
  sim_->set_input("load", 1);
  const std::uint64_t mask = ib >= 64 ? ~0ull : ((1ull << ib) - 1);
  for (int r = 0; r < cfg.rows; ++r) {
    const std::uint64_t v =
        (static_cast<std::uint64_t>(inputs[static_cast<std::size_t>(r)]) &
         mask)
        << (ib_max - ib);
    sim_->set_input_bus("din" + std::to_string(r), v, ib_max);
  }
  sim_->step();
  sim_->set_input("load", 0);

  // Compute cycles.
  const int sa_done = md_.sa_done_cycles(ib);
  for (int t = 1; t <= sa_done; ++t) {
    sim_->set_input("neg", (t == 1 && signed_inputs) ? 1 : 0);
    sim_->set_input("clr", t == 1 ? 1 : 0);
    sim_->step();
  }

  const bool raw_tap = wp == 1 && cfg.ofu.retime_stage1;
  if (cfg.ofu.input_reg && !raw_tap) {
    sim_->set_input("cap", 1);
    sim_->step();
    sim_->set_input("cap", 0);
    const rtlgen::OfuModuleConfig ocfg{cfg.max_weight_bits(),
                                       cfg.sa_width(), cfg.ofu};
    for (int t = 0; t < ocfg.regs_through(log2i(wp)); ++t) sim_->step();
  }
  sim_->eval();
  return read_outputs(wp);
}

std::vector<std::vector<std::int64_t>> MacroTestbench::run_mac_int_lanes(
    const std::vector<std::vector<std::int64_t>>& lane_inputs, int ib,
    int wp, int bank, bool signed_inputs) {
  const auto& cfg = md_.cfg;
  const int lanes = sim_->lanes();
  if (static_cast<int>(lane_inputs.size()) != lanes) {
    throw std::invalid_argument("run_mac_int_lanes: wrong lane count");
  }
  for (const auto& li : lane_inputs) {
    if (static_cast<int>(li.size()) != cfg.rows) {
      throw std::invalid_argument("run_mac_int_lanes: wrong input count");
    }
  }
  const int ib_max = cfg.max_input_bits();
  idle_controls();
  set_bank_select(bank);
  set_mode(wp);
  if (!cfg.fp_formats.empty()) sim_->set_input("fp_sel", 0);

  // Load cycle: parallel inputs, MSB-aligned in the PISO, one independent
  // value per lane.
  sim_->set_input("load", 1);
  const std::uint64_t mask = ib >= 64 ? ~0ull : ((1ull << ib) - 1);
  std::vector<std::uint64_t> vals(static_cast<std::size_t>(lanes));
  for (int r = 0; r < cfg.rows; ++r) {
    for (int l = 0; l < lanes; ++l) {
      vals[static_cast<std::size_t>(l)] =
          (static_cast<std::uint64_t>(
               lane_inputs[static_cast<std::size_t>(l)]
                          [static_cast<std::size_t>(r)]) &
           mask)
          << (ib_max - ib);
    }
    sim_->set_input_bus_lanes("din" + std::to_string(r), vals, ib_max);
  }
  sim_->step();
  sim_->set_input("load", 0);

  // Compute cycles (controls broadcast to every lane).
  const int sa_done = md_.sa_done_cycles(ib);
  for (int t = 1; t <= sa_done; ++t) {
    sim_->set_input("neg", (t == 1 && signed_inputs) ? 1 : 0);
    sim_->set_input("clr", t == 1 ? 1 : 0);
    sim_->step();
  }

  const bool raw_tap = wp == 1 && cfg.ofu.retime_stage1;
  if (cfg.ofu.input_reg && !raw_tap) {
    sim_->set_input("cap", 1);
    sim_->step();
    sim_->set_input("cap", 0);
    const rtlgen::OfuModuleConfig ocfg{cfg.max_weight_bits(),
                                       cfg.sa_width(), cfg.ofu};
    for (int t = 0; t < ocfg.regs_through(log2i(wp)); ++t) sim_->step();
  }
  sim_->eval();
  std::vector<std::vector<std::int64_t>> out;
  out.reserve(static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l) out.push_back(read_outputs(wp, l));
  return out;
}

std::vector<std::int64_t> MacroTestbench::run_mac_fp(
    const std::vector<std::uint32_t>& inputs, num::FpFormat fmt, int bank) {
  const auto& cfg = md_.cfg;
  if (cfg.fp_formats.empty()) {
    throw std::logic_error("run_mac_fp: macro has no FP support");
  }
  if (static_cast<int>(inputs.size()) != cfg.rows) {
    throw std::invalid_argument("run_mac_fp: wrong input count");
  }
  // The alignment hardware is sized for the widest configured format;
  // narrower encodings must be re-encoded by the caller (exact embedding).
  const num::FpFormat* widest = nullptr;
  for (const auto& f : cfg.fp_formats) {
    if (!widest || f.storage_bits() > widest->storage_bits()) widest = &f;
  }
  if (!(fmt == *widest)) {
    throw std::invalid_argument(
        "run_mac_fp: encode inputs in the macro's widest FP format");
  }

  idle_controls();
  set_bank_select(bank);
  const int wp = cfg.max_weight_bits();
  set_mode(wp);
  sim_->set_input("fp_sel", 1);
  const int ib_max = cfg.max_input_bits();
  for (int r = 0; r < cfg.rows; ++r) {
    const num::FpFields f = num::fp_split(inputs[static_cast<std::size_t>(r)],
                                          fmt);
    sim_->set_input_bus("fexp" + std::to_string(r),
                        static_cast<std::uint64_t>(f.exp_raw), fmt.exp_bits);
    sim_->set_input_bus("fman" + std::to_string(r),
                        static_cast<std::uint64_t>(f.man_raw), fmt.man_bits);
    sim_->set_input("fsgn" + std::to_string(r), f.sign);
    sim_->set_input_bus("din" + std::to_string(r), 0, ib_max);
  }
  // Let the pipelined alignment unit settle before loading the PISOs.
  for (int t = 0; t < md_.align_latency(); ++t) sim_->step();
  sim_->set_input("load", 1);
  sim_->step();
  sim_->set_input("load", 0);

  const int ib = num::aligned_mant_bits(fmt, cfg.fp_guard_bits);
  const int sa_done = md_.sa_done_cycles(ib);
  for (int t = 1; t <= sa_done; ++t) {
    sim_->set_input("neg", t == 1 ? 1 : 0);
    sim_->set_input("clr", t == 1 ? 1 : 0);
    sim_->step();
  }
  if (cfg.ofu.input_reg) {
    sim_->set_input("cap", 1);
    sim_->step();
    sim_->set_input("cap", 0);
    const rtlgen::OfuModuleConfig ocfg{wp, cfg.sa_width(), cfg.ofu};
    for (int t = 0; t < ocfg.regs_through(log2i(wp)); ++t) sim_->step();
  }
  sim_->eval();
  return read_outputs(wp);
}

void MacroTestbench::write_row_via_port(int row, int bank,
                                        const std::vector<int>& bits) {
  const auto& cfg = md_.cfg;
  if (static_cast<int>(bits.size()) != cfg.cols) {
    throw std::invalid_argument("write_row_via_port: wrong column count");
  }
  idle_controls();
  sim_->set_input("wen", 1);
  sim_->set_input_bus("waddr", static_cast<std::uint64_t>(row),
                      log2i(cfg.rows));
  if (cfg.mcr > 1) {
    sim_->set_input_bus("wbank", static_cast<std::uint64_t>(bank),
                        log2i(cfg.mcr));
  }
  for (int c = 0; c < cfg.cols; ++c) {
    sim_->set_input(netlist::bus_name("wd", c),
                    bits[static_cast<std::size_t>(c)]);
  }
  sim_->step();  // command registered
  sim_->set_input("wen", 0);
  sim_->step();  // wordline pulses; bitcells capture
}

}  // namespace syndcim::sim

#include "sim/scalar_ref.hpp"

#include <stdexcept>

#include "netlist/levelize.hpp"

namespace syndcim::sim {

using cell::Kind;
using netlist::FlatNetlist;
using netlist::NetConst;

namespace {
constexpr std::uint32_t kNoNet = UINT32_MAX;
}

ScalarGateSim::ScalarGateSim(const FlatNetlist& nl, const cell::Library& lib)
    : nl_(nl) {
  const auto& flat_gates = nl.gates();
  const std::size_t ngates = flat_gates.size();
  cells_.reserve(ngates);
  kinds_.reserve(ngates);
  gate_pin_start_.reserve(ngates + 1);
  gate_pin_start_.push_back(0);
  gate_n_in_.reserve(ngates);

  std::vector<const cell::Cell*> master_cells;
  for (const std::string& m : nl.master_names()) {
    master_cells.push_back(&lib.get(m));
  }
  const auto& pin_names = nl.pin_names();

  std::vector<std::int32_t> driver(nl.net_count(), -1);
  std::vector<netlist::LevelizeGate> lv(ngates);

  for (std::uint32_t g = 0; g < ngates; ++g) {
    const auto& fg = flat_gates[g];
    const cell::Cell* c = master_cells[fg.master];
    cells_.push_back(c);
    kinds_.push_back(c->kind);
    std::vector<std::uint32_t> by_pin(c->pins.size(), kNoNet);
    for (const auto& pc : fg.pins) {
      const int pi = c->pin_index(pin_names[pc.pin_name]);
      if (pi < 0) {
        throw std::invalid_argument("ScalarGateSim: cell " + c->name +
                                    " has no pin " + pin_names[pc.pin_name]);
      }
      by_pin[static_cast<std::size_t>(pi)] = pc.net;
    }
    const bool comb = c->timing_role() == cell::TimingRole::kCombinational;
    int n_in = 0;
    for (std::size_t pi = 0; pi < c->pins.size(); ++pi) {
      if (!c->pins[pi].is_input) continue;
      ++n_in;
      if (by_pin[pi] == kNoNet) {
        throw std::invalid_argument("ScalarGateSim: unconnected input " +
                                    c->pins[pi].name + " on " + c->name);
      }
      pin_pool_.push_back(by_pin[pi]);
      if (comb) lv[g].in_nets.push_back(by_pin[pi]);
    }
    for (std::size_t pi = 0; pi < c->pins.size(); ++pi) {
      if (c->pins[pi].is_input) continue;
      const std::uint32_t net = by_pin[pi];
      pin_pool_.push_back(net);
      if (comb) lv[g].out_nets.push_back(net);
      if (net != kNoNet) {
        if (driver[net] >= 0) {
          throw std::invalid_argument(
              "ScalarGateSim: multiple drivers on a net");
        }
        driver[net] = static_cast<std::int32_t>(g);
      }
    }
    gate_n_in_.push_back(static_cast<std::uint8_t>(n_in));
    gate_pin_start_.push_back(static_cast<std::uint32_t>(pin_pool_.size()));
    lv[g].combinational = comb;
    if (!comb) {
      seq_gates_.push_back(g);
      if (c->is_bitcell()) bitcells_.push_back(g);
    }
  }

  levels_ = netlist::levelize(nl, lv, "ScalarGateSim");

  values_.assign(nl.net_count(), 0);
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net_const(n) == NetConst::kOne) values_[n] = 1;
  }
  state_.assign(ngates, 0);
  toggles_.assign(nl.net_count(), 0);
}

void ScalarGateSim::set_input(std::string_view port, int value) {
  const std::uint32_t net = nl_.input_net(port);
  const std::int8_t v = value ? 1 : 0;
  if (values_[net] != v) {
    values_[net] = v;
    ++toggles_[net];
  }
}

void ScalarGateSim::set_input_bus(std::string_view base, std::uint64_t value,
                                  int width) {
  for (int i = 0; i < width; ++i) {
    set_input(netlist::bus_name(base, i),
              static_cast<int>((value >> i) & 1u));
  }
}

void ScalarGateSim::eval_gate(std::uint32_t g) {
  const std::uint32_t in0 = gate_pin_start_[g];
  const std::uint32_t n_in = gate_n_in_[g];
  const std::uint32_t out0 = in0 + n_in;
  const std::uint32_t out_end = gate_pin_start_[g + 1];
  auto v = [&](std::uint32_t idx) {
    return static_cast<int>(values_[pin_pool_[idx]]);
  };
  int o0 = 0, o1 = 0, o2 = 0;  // up to 3 outputs (CMP42)
  switch (kinds_[g]) {
    case Kind::kInv:
      o0 = v(in0) ^ 1;
      break;
    case Kind::kBuf:
      o0 = v(in0);
      break;
    case Kind::kNand2:
      o0 = (v(in0) & v(in0 + 1)) ^ 1;
      break;
    case Kind::kNor2:
      o0 = (v(in0) | v(in0 + 1)) ^ 1;
      break;
    case Kind::kAnd2:
      o0 = v(in0) & v(in0 + 1);
      break;
    case Kind::kOr2:
      o0 = v(in0) | v(in0 + 1);
      break;
    case Kind::kXor2:
      o0 = v(in0) ^ v(in0 + 1);
      break;
    case Kind::kXnor2:
      o0 = (v(in0) ^ v(in0 + 1)) ^ 1;
      break;
    case Kind::kAoi21:
      o0 = ((v(in0) & v(in0 + 1)) | v(in0 + 2)) ^ 1;
      break;
    case Kind::kOai21:
      o0 = ((v(in0) | v(in0 + 1)) & v(in0 + 2)) ^ 1;
      break;
    case Kind::kOai22:
      o0 = ((v(in0) | v(in0 + 1)) & (v(in0 + 2) | v(in0 + 3))) ^ 1;
      break;
    case Kind::kMux2:
    case Kind::kPassGate1T:
    case Kind::kTGate2T:
      o0 = v(in0 + 2) ? v(in0 + 1) : v(in0);
      break;
    case Kind::kHalfAdder:
      o0 = v(in0) ^ v(in0 + 1);
      o1 = v(in0) & v(in0 + 1);
      break;
    case Kind::kFullAdder: {
      const int a = v(in0), b = v(in0 + 1), ci = v(in0 + 2);
      o0 = a ^ b ^ ci;
      o1 = (a & b) | (b & ci) | (a & ci);
      break;
    }
    case Kind::kCompressor42: {
      const int a = v(in0), b = v(in0 + 1), c = v(in0 + 2);
      const int d = v(in0 + 3), cin = v(in0 + 4);
      const int s1 = a ^ b ^ c;
      o2 = (a & b) | (b & c) | (a & c);  // COUT
      o0 = s1 ^ d ^ cin;                 // S
      o1 = (s1 & d) | (d & cin) | (s1 & cin);  // C
      break;
    }
    default:
      return;  // sequential handled by step()
  }
  const int outs[3] = {o0, o1, o2};
  int k = 0;
  for (std::uint32_t i = out0; i < out_end; ++i, ++k) {
    const std::uint32_t net = pin_pool_[i];
    if (net == kNoNet) continue;
    const std::int8_t nv = static_cast<std::int8_t>(outs[k]);
    if (values_[net] != nv) {
      values_[net] = nv;
      ++toggles_[net];
    }
  }
}

void ScalarGateSim::eval() {
  // Push sequential state onto Q nets first.
  for (const std::uint32_t g : seq_gates_) {
    const std::uint32_t qi = gate_pin_start_[g] + gate_n_in_[g];
    const std::uint32_t net = pin_pool_[qi];
    if (net == kNoNet) continue;
    if (values_[net] != state_[g]) {
      values_[net] = state_[g];
      ++toggles_[net];
    }
  }
  for (const auto& level : levels_) {
    for (const std::uint32_t g : level) eval_gate(g);
  }
}

void ScalarGateSim::step() {
  eval();
  for (const std::uint32_t g : seq_gates_) {
    const std::uint32_t in0 = gate_pin_start_[g];
    auto v = [&](std::uint32_t idx) {
      return static_cast<std::int8_t>(values_[pin_pool_[idx]]);
    };
    switch (kinds_[g]) {
      case Kind::kDff:  // D,CK
        state_[g] = v(in0);
        break;
      case Kind::kDffEn:  // D,E,CK
        state_[g] = v(in0 + 1) ? v(in0) : state_[g];
        break;
      case Kind::kLatch:  // D,G
        state_[g] = v(in0 + 1) ? v(in0) : state_[g];
        break;
      case Kind::kSram6T:
      case Kind::kSram8T:
      case Kind::kSram12T:  // WL,D
        state_[g] = v(in0) ? v(in0 + 1) : state_[g];
        break;
      default:
        break;
    }
  }
  ++cycles_;
}

int ScalarGateSim::output(std::string_view port) const {
  return values_[nl_.output_net(port)];
}

std::uint64_t ScalarGateSim::output_bus(std::string_view base,
                                        int width) const {
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(output(netlist::bus_name(base, i)))
         << i;
  }
  return v;
}

void ScalarGateSim::set_state(std::uint32_t gate_index, int value) {
  if (gate_index >= state_.size() ||
      cells_[gate_index]->timing_role() == cell::TimingRole::kCombinational) {
    throw std::invalid_argument(
        "ScalarGateSim::set_state: not a sequential gate");
  }
  state_[gate_index] = value ? 1 : 0;
}

int ScalarGateSim::state(std::uint32_t gate_index) const {
  return state_.at(gate_index);
}

void ScalarGateSim::reset_activity() {
  toggles_.assign(toggles_.size(), 0);
  cycles_ = 0;
}

}  // namespace syndcim::sim

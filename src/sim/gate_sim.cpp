#include "sim/gate_sim.hpp"

#include <bit>
#include <stdexcept>

#include "netlist/levelize.hpp"

namespace syndcim::sim {

using cell::Kind;
using netlist::FlatNetlist;
using netlist::NetConst;

namespace {
constexpr std::uint32_t kNoNet = UINT32_MAX;
constexpr std::uint32_t kNoLevel = UINT32_MAX;

/// Splits "base[idx]" into (base, idx); idx < 0 when `name` is not a bus
/// bit.
std::pair<std::string_view, int> split_bus_bit(std::string_view name) {
  if (name.empty() || name.back() != ']') return {name, -1};
  const std::size_t open = name.rfind('[');
  if (open == std::string_view::npos || open + 2 > name.size() - 1) {
    return {name, -1};
  }
  int idx = 0;
  for (std::size_t i = open + 1; i + 1 < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return {name, -1};
    idx = idx * 10 + (c - '0');
  }
  return {name.substr(0, open), idx};
}

void index_ports(const std::vector<FlatNetlist::PrimaryIo>& ios,
                 std::unordered_map<std::string, std::uint32_t>& by_name,
                 std::unordered_map<std::string, std::vector<std::uint32_t>>&
                     by_bus) {
  for (const auto& io : ios) {
    by_name.emplace(io.name, io.net);
    const auto [base, idx] = split_bus_bit(io.name);
    if (idx < 0) continue;
    auto& bits = by_bus[std::string(base)];
    if (bits.size() <= static_cast<std::size_t>(idx)) {
      bits.resize(static_cast<std::size_t>(idx) + 1, kNoNet);
    }
    bits[static_cast<std::size_t>(idx)] = io.net;
  }
}
}  // namespace

GateSim::GateSim(const FlatNetlist& nl, const cell::Library& lib, int lanes,
                 bool event_driven)
    : nl_(nl), lanes_(lanes), event_driven_(event_driven) {
  if (lanes < 1 || lanes > 64) {
    throw std::invalid_argument("GateSim: lanes must be in [1, 64]");
  }
  mask_ = lanes == 64 ? ~0ull : (1ull << lanes) - 1;

  const auto& flat_gates = nl.gates();
  const std::size_t ngates = flat_gates.size();
  cells_.reserve(ngates);
  kinds_.reserve(ngates);
  gate_pin_start_.reserve(ngates + 1);
  gate_pin_start_.push_back(0);
  gate_n_in_.reserve(ngates);

  std::vector<const cell::Cell*> master_cells;
  for (const std::string& m : nl.master_names()) {
    master_cells.push_back(&lib.get(m));
  }
  const auto& pin_names = nl.pin_names();

  std::vector<std::int32_t> driver(nl.net_count(), -1);
  std::vector<netlist::LevelizeGate> lv(ngates);

  for (std::uint32_t g = 0; g < ngates; ++g) {
    const auto& fg = flat_gates[g];
    const cell::Cell* c = master_cells[fg.master];
    cells_.push_back(c);
    kinds_.push_back(c->kind);
    std::vector<std::uint32_t> by_pin(c->pins.size(), kNoNet);
    for (const auto& pc : fg.pins) {
      const int pi = c->pin_index(pin_names[pc.pin_name]);
      if (pi < 0) {
        throw std::invalid_argument("GateSim: cell " + c->name +
                                    " has no pin " + pin_names[pc.pin_name]);
      }
      by_pin[static_cast<std::size_t>(pi)] = pc.net;
    }
    const bool comb = c->timing_role() == cell::TimingRole::kCombinational;
    int n_in = 0;
    for (std::size_t pi = 0; pi < c->pins.size(); ++pi) {
      if (!c->pins[pi].is_input) continue;
      ++n_in;
      if (by_pin[pi] == kNoNet) {
        throw std::invalid_argument("GateSim: unconnected input " +
                                    c->pins[pi].name + " on " + c->name);
      }
      pin_pool_.push_back(by_pin[pi]);
      if (comb) lv[g].in_nets.push_back(by_pin[pi]);
    }
    for (std::size_t pi = 0; pi < c->pins.size(); ++pi) {
      if (c->pins[pi].is_input) continue;
      const std::uint32_t net = by_pin[pi];
      pin_pool_.push_back(net);
      if (comb) lv[g].out_nets.push_back(net);
      if (net != kNoNet) {
        if (driver[net] >= 0) {
          throw std::invalid_argument("GateSim: multiple drivers on a net");
        }
        driver[net] = static_cast<std::int32_t>(g);
      }
    }
    gate_n_in_.push_back(static_cast<std::uint8_t>(n_in));
    gate_pin_start_.push_back(static_cast<std::uint32_t>(pin_pool_.size()));
    lv[g].combinational = comb;
    if (!comb) {
      seq_gates_.push_back(g);
      if (c->is_bitcell()) bitcells_.push_back(g);
    }
  }

  levels_ = netlist::levelize(nl, lv, "GateSim");
  for (const auto& level : levels_) comb_total_ += level.size();

  // Event-driven bookkeeping: per-gate level and per-net comb-load CSR.
  gate_level_.assign(ngates, kNoLevel);
  for (std::uint32_t l = 0; l < levels_.size(); ++l) {
    for (const std::uint32_t g : levels_[l]) gate_level_[g] = l;
  }
  std::vector<std::uint32_t> load_count(nl.net_count() + 1, 0);
  for (std::uint32_t g = 0; g < ngates; ++g) {
    if (gate_level_[g] == kNoLevel) continue;
    for (std::uint32_t i = gate_pin_start_[g];
         i < gate_pin_start_[g] + gate_n_in_[g]; ++i) {
      ++load_count[pin_pool_[i]];
    }
  }
  load_start_.assign(nl.net_count() + 1, 0);
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    load_start_[n + 1] = load_start_[n] + load_count[n];
  }
  load_pool_.assign(load_start_[nl.net_count()], 0);
  std::vector<std::uint32_t> fill(nl.net_count(), 0);
  for (std::uint32_t g = 0; g < ngates; ++g) {
    if (gate_level_[g] == kNoLevel) continue;
    for (std::uint32_t i = gate_pin_start_[g];
         i < gate_pin_start_[g] + gate_n_in_[g]; ++i) {
      const std::uint32_t net = pin_pool_[i];
      load_pool_[load_start_[net] + fill[net]++] = g;
    }
  }
  dirty_.resize(levels_.size());
  in_dirty_.assign(ngates, 0);
  // Everything starts unsettled: the first eval() performs one full sweep.
  for (std::uint32_t l = 0; l < levels_.size(); ++l) {
    dirty_[l] = levels_[l];
    for (const std::uint32_t g : levels_[l]) in_dirty_[g] = 1;
  }

  values_.assign(nl.net_count(), 0);
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net_const(n) == NetConst::kOne) values_[n] = mask_;
  }
  state_.assign(ngates, 0);
  toggles_.assign(nl.net_count(), 0);

  index_ports(nl.primary_inputs(), in_net_, in_bus_);
  index_ports(nl.primary_outputs(), out_net_, out_bus_);
}

std::uint32_t GateSim::input_net(std::string_view port) const {
  const auto it = in_net_.find(std::string(port));
  if (it == in_net_.end()) {
    throw std::out_of_range("GateSim: no input " + std::string(port));
  }
  return it->second;
}

const std::vector<std::uint32_t>& GateSim::input_bus_nets(
    std::string_view base) const {
  const auto it = in_bus_.find(std::string(base));
  if (it == in_bus_.end()) {
    throw std::out_of_range("GateSim: no input bus " + std::string(base));
  }
  for (const std::uint32_t net : it->second) {
    if (net == kNoNet) {
      throw std::out_of_range("GateSim: input bus " + std::string(base) +
                              " has missing bits");
    }
  }
  return it->second;
}

const std::vector<std::uint32_t>& GateSim::output_bus_nets(
    std::string_view base) const {
  const auto it = out_bus_.find(std::string(base));
  if (it == out_bus_.end()) {
    throw std::out_of_range("GateSim: no output bus " + std::string(base));
  }
  for (const std::uint32_t net : it->second) {
    if (net == kNoNet) {
      throw std::out_of_range("GateSim: output bus " + std::string(base) +
                              " has missing bits");
    }
  }
  return it->second;
}

void GateSim::mark_loads_dirty(std::uint32_t net) {
  for (std::uint32_t i = load_start_[net]; i < load_start_[net + 1]; ++i) {
    const std::uint32_t g = load_pool_[i];
    if (!in_dirty_[g]) {
      in_dirty_[g] = 1;
      dirty_[gate_level_[g]].push_back(g);
    }
  }
}

void GateSim::write_net(std::uint32_t net, std::uint64_t word) {
  const std::uint64_t prev = values_[net];
  if (prev == word) return;
  values_[net] = word;
  toggles_[net] += static_cast<std::uint64_t>(std::popcount(prev ^ word));
  if (event_driven_) mark_loads_dirty(net);
}

void GateSim::set_input(std::string_view port, int value) {
  write_net(input_net(port), value ? mask_ : 0);
}

void GateSim::set_input_word(std::string_view port, std::uint64_t word) {
  write_net(input_net(port), word & mask_);
}

void GateSim::set_input_bus(std::string_view base, std::uint64_t value,
                            int width) {
  const auto& bits = input_bus_nets(base);
  if (static_cast<std::size_t>(width) > bits.size()) {
    throw std::out_of_range("GateSim: bus " + std::string(base) +
                            " narrower than requested width");
  }
  for (int i = 0; i < width; ++i) {
    write_net(bits[static_cast<std::size_t>(i)],
              ((value >> i) & 1u) ? mask_ : 0);
  }
}

void GateSim::set_input_bus_lanes(std::string_view base,
                                  const std::vector<std::uint64_t>& values,
                                  int width) {
  if (values.size() != static_cast<std::size_t>(lanes_)) {
    throw std::invalid_argument(
        "GateSim::set_input_bus_lanes: one value per lane required");
  }
  const auto& bits = input_bus_nets(base);
  if (static_cast<std::size_t>(width) > bits.size()) {
    throw std::out_of_range("GateSim: bus " + std::string(base) +
                            " narrower than requested width");
  }
  // Transpose lane-major integers into one lane word per bus bit.
  for (int i = 0; i < width; ++i) {
    std::uint64_t word = 0;
    for (int l = 0; l < lanes_; ++l) {
      word |= ((values[static_cast<std::size_t>(l)] >> i) & 1u)
              << static_cast<unsigned>(l);
    }
    write_net(bits[static_cast<std::size_t>(i)], word);
  }
}

void GateSim::eval_gate(std::uint32_t g) {
  const std::uint32_t in0 = gate_pin_start_[g];
  const std::uint32_t n_in = gate_n_in_[g];
  const std::uint32_t out0 = in0 + n_in;
  const std::uint32_t out_end = gate_pin_start_[g + 1];
  const std::uint64_t m = mask_;
  auto v = [&](std::uint32_t idx) { return values_[pin_pool_[idx]]; };
  std::uint64_t o0 = 0, o1 = 0, o2 = 0;  // up to 3 outputs (CMP42)
  switch (kinds_[g]) {
    case Kind::kInv:
      o0 = ~v(in0) & m;
      break;
    case Kind::kBuf:
      o0 = v(in0);
      break;
    case Kind::kNand2:
      o0 = ~(v(in0) & v(in0 + 1)) & m;
      break;
    case Kind::kNor2:
      o0 = ~(v(in0) | v(in0 + 1)) & m;
      break;
    case Kind::kAnd2:
      o0 = v(in0) & v(in0 + 1);
      break;
    case Kind::kOr2:
      o0 = v(in0) | v(in0 + 1);
      break;
    case Kind::kXor2:
      o0 = v(in0) ^ v(in0 + 1);
      break;
    case Kind::kXnor2:
      o0 = ~(v(in0) ^ v(in0 + 1)) & m;
      break;
    case Kind::kAoi21:
      o0 = ~((v(in0) & v(in0 + 1)) | v(in0 + 2)) & m;
      break;
    case Kind::kOai21:
      o0 = ~((v(in0) | v(in0 + 1)) & v(in0 + 2)) & m;
      break;
    case Kind::kOai22:
      o0 = ~((v(in0) | v(in0 + 1)) & (v(in0 + 2) | v(in0 + 3))) & m;
      break;
    case Kind::kMux2:
    case Kind::kPassGate1T:
    case Kind::kTGate2T: {
      const std::uint64_t s = v(in0 + 2);
      o0 = (s & v(in0 + 1)) | (~s & v(in0));
      break;
    }
    case Kind::kHalfAdder:
      o0 = v(in0) ^ v(in0 + 1);
      o1 = v(in0) & v(in0 + 1);
      break;
    case Kind::kFullAdder: {
      const std::uint64_t a = v(in0), b = v(in0 + 1), ci = v(in0 + 2);
      o0 = a ^ b ^ ci;
      o1 = (a & b) | (b & ci) | (a & ci);
      break;
    }
    case Kind::kCompressor42: {
      const std::uint64_t a = v(in0), b = v(in0 + 1), c = v(in0 + 2);
      const std::uint64_t d = v(in0 + 3), cin = v(in0 + 4);
      const std::uint64_t s1 = a ^ b ^ c;
      o2 = (a & b) | (b & c) | (a & c);        // COUT
      o0 = s1 ^ d ^ cin;                       // S
      o1 = (s1 & d) | (d & cin) | (s1 & cin);  // C
      break;
    }
    default:
      return;  // sequential handled by step()
  }
  const std::uint64_t outs[3] = {o0, o1, o2};
  int k = 0;
  for (std::uint32_t i = out0; i < out_end; ++i, ++k) {
    const std::uint32_t net = pin_pool_[i];
    if (net == kNoNet) continue;
    write_net(net, outs[k]);
  }
}

void GateSim::eval() {
  // Push sequential state onto Q nets first.
  for (const std::uint32_t g : seq_gates_) {
    const std::uint32_t qi = gate_pin_start_[g] + gate_n_in_[g];
    const std::uint32_t net = pin_pool_[qi];
    if (net == kNoNet) continue;
    write_net(net, state_[g]);
  }
  if (event_driven_) {
    std::uint64_t evaluated = 0;
    for (auto& level : dirty_) {
      // A gate's fan-in is driven strictly below its level, so nothing
      // re-dirties this bucket while we drain it.
      for (const std::uint32_t g : level) {
        in_dirty_[g] = 0;
        eval_gate(g);
      }
      evaluated += level.size();
      level.clear();
    }
    gate_evals_ += evaluated;
    events_skipped_ += comb_total_ - evaluated;
  } else {
    for (const auto& level : levels_) {
      for (const std::uint32_t g : level) eval_gate(g);
    }
    gate_evals_ += comb_total_;
  }
}

void GateSim::step() {
  eval();
  for (const std::uint32_t g : seq_gates_) {
    const std::uint32_t in0 = gate_pin_start_[g];
    auto v = [&](std::uint32_t idx) { return values_[pin_pool_[idx]]; };
    switch (kinds_[g]) {
      case Kind::kDff:  // D,CK
        state_[g] = v(in0);
        break;
      case Kind::kDffEn: {  // D,E,CK
        const std::uint64_t e = v(in0 + 1);
        state_[g] = (e & v(in0)) | (~e & state_[g]);
        break;
      }
      case Kind::kLatch: {  // D,G
        const std::uint64_t en = v(in0 + 1);
        state_[g] = (en & v(in0)) | (~en & state_[g]);
        break;
      }
      case Kind::kSram6T:
      case Kind::kSram8T:
      case Kind::kSram12T: {  // WL,D
        const std::uint64_t wl = v(in0);
        state_[g] = (wl & v(in0 + 1)) | (~wl & state_[g]);
        break;
      }
      default:
        break;
    }
  }
  ++cycles_;
}

int GateSim::output(std::string_view port) const {
  return static_cast<int>(output_word(port) & 1u);
}

std::uint64_t GateSim::output_word(std::string_view port) const {
  const auto it = out_net_.find(std::string(port));
  if (it == out_net_.end()) {
    throw std::out_of_range("GateSim: no output " + std::string(port));
  }
  return values_[it->second];
}

std::uint64_t GateSim::output_bus(std::string_view base, int width) const {
  return output_bus_lane(base, width, 0);
}

std::uint64_t GateSim::output_bus_lane(std::string_view base, int width,
                                       int lane) const {
  if (lane < 0 || lane >= lanes_) {
    throw std::out_of_range("GateSim::output_bus_lane: bad lane");
  }
  const auto& bits = output_bus_nets(base);
  if (static_cast<std::size_t>(width) > bits.size()) {
    throw std::out_of_range("GateSim: bus " + std::string(base) +
                            " narrower than requested width");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= ((values_[bits[static_cast<std::size_t>(i)]] >>
           static_cast<unsigned>(lane)) &
          1u)
         << i;
  }
  return v;
}

void GateSim::set_state(std::uint32_t gate_index, int value) {
  if (gate_index >= state_.size() ||
      cells_[gate_index]->timing_role() == cell::TimingRole::kCombinational) {
    throw std::invalid_argument("GateSim::set_state: not a sequential gate");
  }
  state_[gate_index] = value ? mask_ : 0;
}

int GateSim::state(std::uint32_t gate_index) const {
  return static_cast<int>(state_.at(gate_index) & 1u);
}

void GateSim::reset_activity() {
  toggles_.assign(toggles_.size(), 0);
  cycles_ = 0;
}

}  // namespace syndcim::sim

#include "cell/characterize.hpp"

#include <cmath>
#include <map>
#include <string>
#include <vector>

namespace syndcim::cell {

namespace {

struct ArcSpec {
  const char* from;
  const char* to;
  double p_tau;  ///< parasitic delay in units of tau
};

struct PinG {
  const char* pin;
  double g;  ///< logical effort (input cap in units of unit_cin per drive)
};

struct KindSpec {
  Kind kind;
  const char* base;
  int transistors;
  std::vector<double> drives;       ///< drive variants to emit
  std::vector<PinG> pin_g;          ///< logical effort per input pin
  std::vector<ArcSpec> arcs;
  double r_factor = 1.0;            ///< output resistance multiplier
  double slew_sens = 0.25;          ///< delay sensitivity to input slew
  double energy_scale = 1.0;        ///< internal-energy multiplier
  bool sequential = false;
  bool bitcell = false;
};

const std::vector<KindSpec>& kind_specs() {
  // Parasitic delays encode the structural timing facts the searcher
  // exploits: carry outputs are faster than sum outputs, the compressor's
  // COUT depends only on A/B/C, late inputs (CI/CIN/D) have short arcs.
  static const std::vector<KindSpec> specs = {
      {Kind::kInv, "INV", 2, {1, 2, 4}, {{"A", 1.0}}, {{"A", "Y", 1.0}}},
      {Kind::kBuf,
       "BUF",
       4,
       {1, 2, 4, 8, 16},
       {{"A", 1.0}},
       {{"A", "Y", 2.0}}},
      {Kind::kNand2, "NAND2", 4, {1, 2, 4},
       {{"A", 1.33}, {"B", 1.33}},
       {{"A", "Y", 2.0}, {"B", "Y", 2.0}}},
      {Kind::kNor2, "NOR2", 4, {1, 2, 4},
       {{"A", 1.67}, {"B", 1.67}},
       {{"A", "Y", 2.4}, {"B", "Y", 2.4}}},
      {Kind::kAnd2, "AND2", 6, {1, 2},
       {{"A", 1.5}, {"B", 1.5}},
       {{"A", "Y", 2.8}, {"B", "Y", 2.8}}},
      {Kind::kOr2, "OR2", 6, {1, 2},
       {{"A", 1.5}, {"B", 1.5}},
       {{"A", "Y", 2.8}, {"B", "Y", 2.8}}},
      {Kind::kXor2, "XOR2", 10, {1, 2},
       {{"A", 2.0}, {"B", 2.0}},
       {{"A", "Y", 4.5}, {"B", "Y", 4.5}}},
      {Kind::kXnor2, "XNOR2", 10, {1},
       {{"A", 2.0}, {"B", 2.0}},
       {{"A", "Y", 4.5}, {"B", "Y", 4.5}}},
      {Kind::kAoi21, "AOI21", 6, {1},
       {{"A", 1.8}, {"B", 1.8}, {"C", 1.8}},
       {{"A", "Y", 2.8}, {"B", "Y", 2.8}, {"C", "Y", 2.4}}},
      {Kind::kOai21, "OAI21", 6, {1},
       {{"A", 1.8}, {"B", 1.8}, {"C", 1.8}},
       {{"A", "Y", 2.8}, {"B", "Y", 2.8}, {"C", "Y", 2.4}}},
      {Kind::kOai22, "OAI22", 8, {1},
       {{"A", 1.9}, {"B", 1.9}, {"C", 1.9}, {"D", 1.9}},
       {{"A", "Y", 3.2}, {"B", "Y", 3.2}, {"C", "Y", 3.2}, {"D", "Y", 3.2}}},
      {Kind::kMux2, "MUX2", 10, {1, 2},
       {{"A", 1.8}, {"B", 1.8}, {"S", 2.2}},
       {{"A", "Y", 3.0}, {"B", "Y", 3.0}, {"S", "Y", 3.6}}},
      {Kind::kHalfAdder, "HA", 12, {1},
       {{"A", 1.8}, {"B", 1.8}},
       {{"A", "S", 4.5},
        {"B", "S", 4.5},
        {"A", "CO", 2.2},
        {"B", "CO", 2.2}}},
      {Kind::kFullAdder, "FA", 28, {1, 2},
       {{"A", 2.2}, {"B", 2.2}, {"CI", 1.6}},
       {{"A", "S", 6.8},
        {"B", "S", 6.8},
        {"CI", "S", 4.8},
        {"A", "CO", 4.2},
        {"B", "CO", 4.2},
        {"CI", "CO", 3.0}}},
      {Kind::kCompressor42, "CMP42", 40, {1, 2},
       {{"A", 2.2}, {"B", 2.2}, {"C", 2.2}, {"D", 1.7}, {"CIN", 1.4}},
       {// S depends on all five inputs; late inputs have short arcs.
        // Optimized transmission-gate XOR implementation: the classic 4-2
        // compressor has XOR-depth 3 (vs 4 for two cascaded full adders).
        {"A", "S", 7.5},
        {"B", "S", 7.5},
        {"C", "S", 7.5},
        {"D", "S", 3.8},
        {"CIN", "S", 3.4},
        {"A", "CO", 5.8},
        {"B", "CO", 5.8},
        {"C", "CO", 5.8},
        {"D", "CO", 3.2},
        {"CIN", "CO", 2.8},
        // COUT structurally independent of D and CIN.
        {"A", "COUT", 4.2},
        {"B", "COUT", 4.2},
        {"C", "COUT", 4.2}},
       1.0, 0.25, 0.85},
      {Kind::kDff, "DFF", 24, {1, 2},
       {{"D", 1.2}, {"CK", 0.9}},
       {{"CK", "Q", 4.5}},
       1.0, 0.25, 1.0, true},
      {Kind::kDffEn, "DFFE", 30, {1},
       {{"D", 1.2}, {"E", 1.1}, {"CK", 0.9}},
       {{"CK", "Q", 4.8}},
       1.0, 0.25, 1.0, true},
      {Kind::kLatch, "LATCH", 12, {1},
       {{"D", 1.1}, {"G", 1.0}},
       {{"D", "Q", 2.5}, {"G", "Q", 3.0}},
       1.0, 0.25, 1.0, true},
      {Kind::kSram6T, "SRAM6T", 6, {1},
       {{"WL", 1.3}, {"D", 1.1}},
       {},
       1.0, 0.25, 1.2, false, true},
      {Kind::kSram8T, "SRAM8T", 8, {1},
       {{"WL", 1.2}, {"D", 1.0}},
       {},
       1.0, 0.25, 1.0, false, true},
      {Kind::kSram12T, "SRAM12T", 12, {1},
       {{"WL", 1.3}, {"D", 1.1}},
       {},
       1.0, 0.25, 1.35, false, true},
      // 2:1 mux cells for the multiplier/multiplexer subcircuit styles.
      // 1T pass gate: tiny, but weak non-restoring drive (voltage drop):
      // slow, slew-degrading and power-hungry.
      {Kind::kPassGate1T, "PGMUX", 2, {1},
       {{"A", 0.7}, {"B", 0.7}, {"S", 1.0}},
       {{"A", "Y", 1.2}, {"B", "Y", 1.2}, {"S", "Y", 1.5}},
       3.2, 0.55, 8.0},
      {Kind::kTGate2T, "TGMUX", 6, {1},
       {{"A", 1.0}, {"B", 1.0}, {"S", 1.3}},
       {{"A", "Y", 1.6}, {"B", "Y", 1.6}, {"S", "Y", 2.0}},
       1.4, 0.35, 1.2},
  };
  return specs;
}

/// Characterization grid (commercial libraries use 5-7 points per axis).
const std::vector<double>& slew_grid() {
  static const std::vector<double> g = {5, 20, 60, 150, 400};
  return g;
}
const std::vector<double>& load_grid() {
  static const std::vector<double> g = {0.5, 2, 6, 15, 40, 100};
  return g;
}

Lut2d sweep(double value_at /*f(slew,load)*/, double slope_slew,
            double slope_load) {
  std::vector<double> vals;
  vals.reserve(slew_grid().size() * load_grid().size());
  for (const double s : slew_grid()) {
    for (const double l : load_grid()) {
      vals.push_back(value_at + slope_slew * s + slope_load * l);
    }
  }
  return Lut2d(slew_grid(), load_grid(), std::move(vals));
}

Cell build_cell(const KindSpec& spec, double drive,
                const tech::TechNode& node) {
  const double tau = node.unit_r_kohm * node.unit_cin_ff;  // ps
  Cell c;
  c.kind = spec.kind;
  c.drive_x = drive;
  c.name = spec.bitcell ? std::string(spec.base)
                        : std::string(spec.base) + "X" +
                              std::to_string(static_cast<int>(drive));

  for (const std::string& in : input_pin_names(spec.kind)) {
    Pin p;
    p.name = in;
    p.is_input = true;
    p.is_clock = (in == "CK");
    double g = 1.0;
    for (const PinG& pg : spec.pin_g) {
      if (in == pg.pin) g = pg.g;
    }
    // Input caps grow with drive; clock pins are kept small.
    p.cap_ff = g * node.unit_cin_ff * (p.is_clock ? 1.0 : drive);
    c.pins.push_back(std::move(p));
  }
  for (const std::string& out : output_pin_names(spec.kind)) {
    Pin p;
    p.name = out;
    p.is_input = false;
    c.pins.push_back(std::move(p));
  }

  const double r_out = node.unit_r_kohm * spec.r_factor / drive;
  for (const ArcSpec& a : spec.arcs) {
    TimingArc arc;
    arc.from_pin = c.pin_index(a.from);
    arc.to_pin = c.pin_index(a.to);
    // First-order RC: d = p*tau + 0.69*R*(Cload + Cself) + k*slew.
    const double c_self = 0.5 * spec.transistors / 4.0 * node.unit_cin_ff;
    const double d0 = a.p_tau * tau + 0.69 * r_out * c_self;
    arc.delay_ps = sweep(d0, spec.slew_sens, 0.69 * r_out);
    // 10-90 output transition ~ 2.2*RC plus a floor from the parasitic.
    const double s0 = 0.35 * a.p_tau * tau + 2.2 * r_out * c_self;
    arc.out_slew_ps = sweep(s0, 0.08, 2.2 * r_out);
    c.arcs.push_back(std::move(arc));
  }

  c.leakage_nw = node.unit_leak_nw * spec.transistors / 2.0 * drive;
  c.internal_energy_fj =
      0.12 * spec.transistors * spec.energy_scale * std::sqrt(drive);
  if (spec.sequential) {
    c.setup_ps = 3.0 * tau;
    c.hold_ps = 0.5 * tau;
    c.clock_energy_fj = 0.5 * std::sqrt(drive);
  }
  if (spec.bitcell) {
    // Write must resolve within the write cycle.
    c.setup_ps = 4.0 * tau;
    switch (spec.kind) {
      case Kind::kSram6T:
        c.width_um = node.sram6t_w_um;
        c.height_um = node.sram6t_h_um;
        break;
      case Kind::kSram8T:
        c.width_um = node.sram6t_w_um * 1.25;
        c.height_um = node.sram6t_h_um;
        break;
      default:  // 12T
        c.width_um = node.sram6t_w_um * 1.7;
        c.height_um = node.sram6t_h_um;
        break;
    }
    c.area_um2 = c.width_um * c.height_um;
  } else {
    c.height_um = node.std_row_height_um;
    c.width_um = std::max(0.3, 0.22 * spec.transistors * std::sqrt(drive));
    c.area_um2 = c.width_um * c.height_um;
  }
  return c;
}

}  // namespace

Library characterize_default_library(const tech::TechNode& node) {
  Library lib(node);
  for (const KindSpec& spec : kind_specs()) {
    for (const double d : spec.drives) {
      lib.add(build_cell(spec, d, node));
    }
  }
  return lib;
}

}  // namespace syndcim::cell

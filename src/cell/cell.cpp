#include "cell/cell.hpp"

#include <stdexcept>

namespace syndcim::cell {

TimingRole Cell::timing_role() const {
  switch (kind) {
    case Kind::kDff:
    case Kind::kDffEn:
    case Kind::kLatch:
      return TimingRole::kRegister;
    case Kind::kSram6T:
    case Kind::kSram8T:
    case Kind::kSram12T:
      return TimingRole::kStorage;
    default:
      return TimingRole::kCombinational;
  }
}

int Cell::pin_index(std::string_view pin_name) const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].name == pin_name) return static_cast<int>(i);
  }
  return -1;
}

const Pin& Cell::pin(std::string_view pin_name) const {
  const int i = pin_index(pin_name);
  if (i < 0) {
    throw std::out_of_range("Cell::pin: no pin '" + std::string(pin_name) +
                            "' on cell " + name);
  }
  return pins[static_cast<std::size_t>(i)];
}

int Cell::input_count() const {
  int n = 0;
  for (const Pin& p : pins) n += p.is_input ? 1 : 0;
  return n;
}

int Cell::output_count() const {
  return static_cast<int>(pins.size()) - input_count();
}

std::vector<std::string> input_pin_names(Kind k) {
  switch (k) {
    case Kind::kInv:
    case Kind::kBuf:
      return {"A"};
    case Kind::kNand2:
    case Kind::kNor2:
    case Kind::kAnd2:
    case Kind::kOr2:
    case Kind::kXor2:
    case Kind::kXnor2:
    case Kind::kHalfAdder:
      return {"A", "B"};
    case Kind::kAoi21:
    case Kind::kOai21:
      return {"A", "B", "C"};
    case Kind::kOai22:
      return {"A", "B", "C", "D"};
    case Kind::kMux2:
    case Kind::kPassGate1T:
    case Kind::kTGate2T:
      return {"A", "B", "S"};
    case Kind::kFullAdder:
      return {"A", "B", "CI"};
    case Kind::kCompressor42:
      return {"A", "B", "C", "D", "CIN"};
    case Kind::kDff:
      return {"D", "CK"};
    case Kind::kDffEn:
      return {"D", "E", "CK"};
    case Kind::kLatch:
      return {"D", "G"};
    case Kind::kSram6T:
    case Kind::kSram8T:
    case Kind::kSram12T:
      return {"WL", "D"};
  }
  throw std::logic_error("input_pin_names: unhandled kind");
}

std::vector<std::string> output_pin_names(Kind k) {
  switch (k) {
    case Kind::kHalfAdder:
    case Kind::kFullAdder:
      return {"S", "CO"};
    case Kind::kCompressor42:
      return {"S", "CO", "COUT"};
    case Kind::kDff:
    case Kind::kDffEn:
    case Kind::kLatch:
    case Kind::kSram6T:
    case Kind::kSram8T:
    case Kind::kSram12T:
      return {"Q"};
    default:
      return {"Y"};
  }
}

std::vector<int> eval_kind(Kind k, const std::vector<int>& in) {
  auto need = [&](std::size_t n) {
    if (in.size() != n) {
      throw std::invalid_argument("eval_kind: wrong input count");
    }
  };
  switch (k) {
    case Kind::kInv:
      need(1);
      return {in[0] ? 0 : 1};
    case Kind::kBuf:
      need(1);
      return {in[0]};
    case Kind::kNand2:
      need(2);
      return {(in[0] & in[1]) ? 0 : 1};
    case Kind::kNor2:
      need(2);
      return {(in[0] | in[1]) ? 0 : 1};
    case Kind::kAnd2:
      need(2);
      return {in[0] & in[1]};
    case Kind::kOr2:
      need(2);
      return {in[0] | in[1]};
    case Kind::kXor2:
      need(2);
      return {in[0] ^ in[1]};
    case Kind::kXnor2:
      need(2);
      return {(in[0] ^ in[1]) ? 0 : 1};
    case Kind::kAoi21:
      need(3);
      return {((in[0] & in[1]) | in[2]) ? 0 : 1};
    case Kind::kOai21:
      need(3);
      return {((in[0] | in[1]) & in[2]) ? 0 : 1};
    case Kind::kOai22:
      need(4);
      return {((in[0] | in[1]) & (in[2] | in[3])) ? 0 : 1};
    case Kind::kMux2:
    case Kind::kPassGate1T:
    case Kind::kTGate2T:
      need(3);
      return {in[2] ? in[1] : in[0]};
    case Kind::kHalfAdder:
      need(2);
      return {in[0] ^ in[1], in[0] & in[1]};
    case Kind::kFullAdder: {
      need(3);
      const int s = in[0] ^ in[1] ^ in[2];
      const int co = (in[0] & in[1]) | (in[1] & in[2]) | (in[0] & in[2]);
      return {s, co};
    }
    case Kind::kCompressor42: {
      // Two chained full adders: FA1(A,B,C) then FA2(s1,D,CIN).
      need(5);
      const int s1 = in[0] ^ in[1] ^ in[2];
      const int cout = (in[0] & in[1]) | (in[1] & in[2]) | (in[0] & in[2]);
      const int s = s1 ^ in[3] ^ in[4];
      const int c = (s1 & in[3]) | (in[3] & in[4]) | (s1 & in[4]);
      return {s, c, cout};
    }
    case Kind::kDff:
    case Kind::kDffEn:
    case Kind::kLatch:
    case Kind::kSram6T:
    case Kind::kSram8T:
    case Kind::kSram12T:
      throw std::logic_error(
          "eval_kind: sequential/storage kinds are evaluated by the "
          "simulator's state machinery");
  }
  throw std::logic_error("eval_kind: unhandled kind");
}

}  // namespace syndcim::cell

#pragma once
#include <istream>

#include "cell/library.hpp"
#include "tech/tech_node.hpp"

namespace syndcim::cell {

/// Parses the Liberty-flavoured format emitted by write_liberty() back
/// into a Library: cells, pin directions/capacitances, timing() groups
/// with index_1/index_2/values tables. Functional metadata (Kind, areas,
/// energies, sequential attributes) that Liberty does not carry in our
/// dialect is recovered by matching the cell name against the built-in
/// kind table (names like FAX1, CMP42X2, SRAM6T).
///
/// Enables library round-trips (characterize -> write -> parse -> same
/// timing answers) and loading externally characterized tables.
[[nodiscard]] Library parse_liberty(std::istream& is,
                                    const tech::TechNode& node);

}  // namespace syndcim::cell

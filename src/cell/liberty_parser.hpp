#pragma once
#include <istream>

#include "cell/library.hpp"
#include "core/diag.hpp"
#include "tech/tech_node.hpp"

namespace syndcim::cell {

/// Parses the Liberty-flavoured format emitted by write_liberty() back
/// into a Library: cells, pin directions/capacitances, timing() groups
/// with index_1/index_2/values tables. Functional metadata (Kind, areas,
/// energies, sequential attributes) that Liberty does not carry in our
/// dialect is recovered by matching the cell name against the built-in
/// kind table (names like FAX1, CMP42X2, SRAM6T).
///
/// Enables library round-trips (characterize -> write -> parse -> same
/// timing answers) and loading externally characterized tables.
///
/// Malformed input never aborts the process: every numeric field is
/// validated (rule LIB-BADNUM), unknown attributes are skipped with a
/// LIB-UNKNOWN-ATTR error (our dialect is closed — an unrecognized
/// member means the file is corrupted), bad arc references are
/// LIB-BADREF, and
/// structural damage (truncation, token mismatch) is LIB-SYNTAX. With a
/// DiagEngine the findings are collected there — carrying the source file
/// line — and the cells parsed so far are returned; without one,
/// error-severity findings are aggregated into a single
/// std::invalid_argument thrown after parsing stops (legacy behavior).
[[nodiscard]] Library parse_liberty(std::istream& is,
                                    const tech::TechNode& node,
                                    core::DiagEngine* diag = nullptr);

}  // namespace syndcim::cell

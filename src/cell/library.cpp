#include "cell/library.hpp"

#include <algorithm>
#include <stdexcept>

namespace syndcim::cell {

const Cell& Library::add(Cell c) {
  if (index_.contains(c.name)) {
    throw std::invalid_argument("Library::add: duplicate cell " + c.name);
  }
  for (std::size_t i = 0; i < c.pins.size(); ++i) {
    for (std::size_t j = i + 1; j < c.pins.size(); ++j) {
      if (c.pins[i].name == c.pins[j].name) {
        throw std::invalid_argument("Library::add: duplicate pin name '" +
                                    c.pins[i].name + "' on cell " + c.name);
      }
    }
  }
  cells_.reserve(512);  // keep Cell* stable for typical library sizes
  if (cells_.size() == cells_.capacity()) {
    throw std::logic_error("Library::add: capacity exceeded (pointers must stay stable)");
  }
  index_.emplace(c.name, cells_.size());
  cells_.push_back(std::move(c));
  return cells_.back();
}

const Cell* Library::find(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &cells_[it->second];
}

const Cell& Library::get(std::string_view name) const {
  const Cell* c = find(name);
  if (!c) {
    throw std::out_of_range("Library::get: no cell '" + std::string(name) +
                            "'");
  }
  return *c;
}

std::vector<const Cell*> Library::variants_of(Kind k) const {
  std::vector<const Cell*> out;
  for (const Cell& c : cells_) {
    if (c.kind == k) out.push_back(&c);
  }
  std::sort(out.begin(), out.end(), [](const Cell* a, const Cell* b) {
    return a->drive_x < b->drive_x;
  });
  return out;
}

}  // namespace syndcim::cell

#include "cell/library.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/artifact_cache.hpp"

namespace syndcim::cell {

const Cell& Library::add(Cell c) {
  if (index_.contains(c.name)) {
    throw std::invalid_argument("Library::add: duplicate cell " + c.name);
  }
  for (std::size_t i = 0; i < c.pins.size(); ++i) {
    for (std::size_t j = i + 1; j < c.pins.size(); ++j) {
      if (c.pins[i].name == c.pins[j].name) {
        throw std::invalid_argument("Library::add: duplicate pin name '" +
                                    c.pins[i].name + "' on cell " + c.name);
      }
    }
  }
  cells_.reserve(512);  // keep Cell* stable for typical library sizes
  if (cells_.size() == cells_.capacity()) {
    throw std::logic_error("Library::add: capacity exceeded (pointers must stay stable)");
  }
  index_.emplace(c.name, cells_.size());
  cells_.push_back(std::move(c));
  fingerprint_.clear();  // stale once the cell set changes
  return cells_.back();
}

const Cell* Library::find(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &cells_[it->second];
}

const Cell& Library::get(std::string_view name) const {
  const Cell* c = find(name);
  if (!c) {
    throw std::out_of_range("Library::get: no cell '" + std::string(name) +
                            "'");
  }
  return *c;
}

const std::string& Library::fingerprint() const {
  if (!fingerprint_.empty()) return fingerprint_;
  core::ArtifactHasher h;
  h.str("lib1");
  const tech::TechNode& n = node_;
  h.str(n.name);
  h.dbl(n.feature_nm);
  h.dbl(n.vdd_nominal);
  h.dbl(n.vdd_min);
  h.dbl(n.vdd_max);
  h.dbl(n.vth);
  h.dbl(n.alpha);
  h.dbl(n.unit_r_kohm);
  h.dbl(n.unit_cin_ff);
  h.dbl(n.unit_leak_nw);
  h.dbl(n.wire_c_ff_per_um);
  h.dbl(n.wire_r_kohm_per_um);
  h.dbl(n.track_pitch_um);
  h.dbl(n.std_row_height_um);
  h.dbl(n.sram6t_w_um);
  h.dbl(n.sram6t_h_um);
  h.dbl(n.temp_nominal_c);
  h.u64(cells_.size());
  const auto hash_lut = [&h](const Lut2d& t) {
    h.u64(t.slew_axis().size());
    for (const double v : t.slew_axis()) h.dbl(v);
    h.u64(t.load_axis().size());
    for (const double v : t.load_axis()) h.dbl(v);
    h.u64(t.values().size());
    for (const double v : t.values()) h.dbl(v);
  };
  for (const Cell& c : cells_) {
    h.str(c.name);
    h.i32(static_cast<int>(c.kind));
    h.dbl(c.drive_x);
    h.u64(c.pins.size());
    for (const Pin& p : c.pins) {
      h.str(p.name);
      h.b(p.is_input);
      h.b(p.is_clock);
      h.dbl(p.cap_ff);
    }
    h.u64(c.arcs.size());
    for (const TimingArc& a : c.arcs) {
      h.i32(a.from_pin);
      h.i32(a.to_pin);
      hash_lut(a.delay_ps);
      hash_lut(a.out_slew_ps);
    }
    h.dbl(c.area_um2);
    h.dbl(c.width_um);
    h.dbl(c.height_um);
    h.dbl(c.leakage_nw);
    h.dbl(c.internal_energy_fj);
    h.dbl(c.clock_energy_fj);
    h.dbl(c.setup_ps);
    h.dbl(c.hold_ps);
  }
  fingerprint_ = h.hex();
  return fingerprint_;
}

std::vector<const Cell*> Library::variants_of(Kind k) const {
  std::vector<const Cell*> out;
  for (const Cell& c : cells_) {
    if (c.kind == k) out.push_back(&c);
  }
  std::sort(out.begin(), out.end(), [](const Cell* a, const Cell* b) {
    return a->drive_x < b->drive_x;
  });
  return out;
}

}  // namespace syndcim::cell

#pragma once
#include "cell/library.hpp"
#include "tech/tech_node.hpp"

namespace syndcim::cell {

/// Builds the default DCIM cell library for `node` by analytic
/// characterization: every cell kind is described by per-arc parasitic
/// delays (in units of the node's tau = R_unit * C_unit), per-pin logical
/// effort, transistor count and footprint; delay/slew NLDM tables are
/// swept over a (slew x load) grid from a first-order RC model.
///
/// This replaces the paper's SPICE-based custom-cell characterization flow:
/// the compiler downstream only ever consumes the resulting tables, so the
/// search faces the same trade-off structure (e.g. the 4-2 compressor's
/// sum path is slower than a full adder's but cheaper per reduced bit, the
/// carry outputs are faster than sum outputs, the 1T pass-gate mux is tiny
/// but slow and power-hungry).
[[nodiscard]] Library characterize_default_library(const tech::TechNode& node);

}  // namespace syndcim::cell

#pragma once
#include <vector>

namespace syndcim::cell {

/// NLDM-style 2-D lookup table: values indexed by (input slew, output
/// load), bilinearly interpolated, clamped at the axis ends (commercial
/// STA extrapolates; clamping is the conservative simplification).
class Lut2d {
 public:
  Lut2d() = default;
  Lut2d(std::vector<double> slew_axis_ps, std::vector<double> load_axis_ff,
        std::vector<double> values_row_major);

  [[nodiscard]] double eval(double slew_ps, double load_ff) const;

  [[nodiscard]] const std::vector<double>& slew_axis() const { return slew_; }
  [[nodiscard]] const std::vector<double>& load_axis() const { return load_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// Constant-valued table (used for scalar quantities).
  [[nodiscard]] static Lut2d constant(double v);

  /// Returns a copy with every value multiplied by `k` (voltage scaling).
  [[nodiscard]] Lut2d scaled(double k) const;

 private:
  std::vector<double> slew_;
  std::vector<double> load_;
  std::vector<double> values_;  // row-major: [slew][load]
};

}  // namespace syndcim::cell

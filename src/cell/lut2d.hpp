#pragma once
#include <algorithm>
#include <cstddef>
#include <vector>

namespace syndcim::cell {

/// Axis segment: index i and fraction t such that
/// x ~ axis[i]*(1-t) + axis[i+1]*t, clamped to the axis range.
struct LutSeg {
  std::size_t i;
  double t;
};

/// Shared linear blend. Every interpolation in Lut2d::eval and in the SoA
/// timing kernel goes through this single expression so the two code
/// paths produce bit-identical doubles regardless of inlining context.
[[nodiscard]] inline double lut_lerp(double a, double b, double t) {
  return a * (1 - t) + b * t;
}

/// NLDM-style 2-D lookup table: values indexed by (input slew, output
/// load), bilinearly interpolated, clamped at the axis ends (commercial
/// STA extrapolates; clamping is the conservative simplification).
class Lut2d {
 public:
  Lut2d() = default;
  Lut2d(std::vector<double> slew_axis_ps, std::vector<double> load_axis_ff,
        std::vector<double> values_row_major);

  [[nodiscard]] double eval(double slew_ps, double load_ff) const;

  /// Locates `slew_ps` on the slew axis — the runtime half of the SoA
  /// kernel's (collapse_load, row blend) evaluation split.
  [[nodiscard]] LutSeg locate_slew(double slew_ps) const {
    return locate(slew_, slew_ps);
  }

  /// Collapses the load axis at `load_ff`: writes slew_axis().size()
  /// values row[si] = lut_lerp(v(si, lo), v(si, hi), t) — exactly the
  /// per-row load blend eval() performs, so blending the collapsed row
  /// over the slew axis reproduces eval() bit for bit.
  void collapse_load(double load_ff, double* row) const;

  [[nodiscard]] const std::vector<double>& slew_axis() const { return slew_; }
  [[nodiscard]] const std::vector<double>& load_axis() const { return load_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// Constant-valued table (used for scalar quantities).
  [[nodiscard]] static Lut2d constant(double v);

  /// Returns a copy with every value multiplied by `k` (voltage scaling).
  [[nodiscard]] Lut2d scaled(double k) const;

 private:
  [[nodiscard]] static LutSeg locate(const std::vector<double>& axis,
                                     double x) {
    if (axis.size() == 1 || x <= axis.front()) return {0, 0.0};
    if (x >= axis.back()) return {axis.size() - 2, 1.0};
    const auto it = std::upper_bound(axis.begin(), axis.end(), x);
    const std::size_t hi = static_cast<std::size_t>(it - axis.begin());
    const std::size_t lo = hi - 1;
    const double span = axis[hi] - axis[lo];
    return {lo, span > 0 ? (x - axis[lo]) / span : 0.0};
  }

  std::vector<double> slew_;
  std::vector<double> load_;
  std::vector<double> values_;  // row-major: [slew][load]
};

}  // namespace syndcim::cell

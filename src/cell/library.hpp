#pragma once
#include <map>
#include <string>
#include <vector>

#include "cell/cell.hpp"
#include "tech/tech_node.hpp"

namespace syndcim::cell {

/// Characterized cell library for one technology node. Cells are owned by
/// the library; pointers into it stay valid for its lifetime.
class Library {
 public:
  explicit Library(tech::TechNode node) : node_(std::move(node)) {}

  const Cell& add(Cell c);

  [[nodiscard]] const Cell& get(std::string_view name) const;
  [[nodiscard]] const Cell* find(std::string_view name) const;
  [[nodiscard]] bool has(std::string_view name) const {
    return find(name) != nullptr;
  }
  [[nodiscard]] const std::vector<Cell>& all() const { return cells_; }
  [[nodiscard]] const tech::TechNode& node() const { return node_; }

  /// All drive variants of `k`, sorted by ascending drive strength.
  [[nodiscard]] std::vector<const Cell*> variants_of(Kind k) const;

  /// Content fingerprint of the characterized library: technology-node
  /// parameters plus every cell's pins, timing tables and power/area
  /// numbers. Artifact keys of library-dependent stage outputs (timing,
  /// power, area — not netlist structure) embed it so artifacts never leak
  /// across differently characterized libraries. Computed lazily and
  /// cached; the first call is not thread-safe, so callers that share a
  /// library across worker threads force it once up front (the SCL
  /// constructor does).
  [[nodiscard]] const std::string& fingerprint() const;

 private:
  tech::TechNode node_;
  std::vector<Cell> cells_;
  std::map<std::string, std::size_t, std::less<>> index_;
  mutable std::string fingerprint_;  ///< lazily computed cache
};

}  // namespace syndcim::cell

#pragma once
#include <map>
#include <string>
#include <vector>

#include "cell/cell.hpp"
#include "tech/tech_node.hpp"

namespace syndcim::cell {

/// Characterized cell library for one technology node. Cells are owned by
/// the library; pointers into it stay valid for its lifetime.
class Library {
 public:
  explicit Library(tech::TechNode node) : node_(std::move(node)) {}

  const Cell& add(Cell c);

  [[nodiscard]] const Cell& get(std::string_view name) const;
  [[nodiscard]] const Cell* find(std::string_view name) const;
  [[nodiscard]] bool has(std::string_view name) const {
    return find(name) != nullptr;
  }
  [[nodiscard]] const std::vector<Cell>& all() const { return cells_; }
  [[nodiscard]] const tech::TechNode& node() const { return node_; }

  /// All drive variants of `k`, sorted by ascending drive strength.
  [[nodiscard]] std::vector<const Cell*> variants_of(Kind k) const;

 private:
  tech::TechNode node_;
  std::vector<Cell> cells_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

}  // namespace syndcim::cell

#include "cell/liberty_parser.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace syndcim::cell {

namespace {

/// Minimal recursive tokenizer for the Liberty dialect write_liberty
/// emits: group_name (arg) { ... }, attr : value ;, name("...").
class Lexer {
 public:
  explicit Lexer(std::istream& is) {
    std::string src((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    std::size_t i = 0;
    int line = 1;
    while (i < src.size()) {
      const char c = src[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) || c == '\\') {
        ++i;
        continue;
      }
      if (c == '"') {
        std::size_t j = i + 1;
        while (j < src.size() && src[j] != '"') {
          if (src[j] == '\n') ++line;
          ++j;
        }
        toks_.push_back({src.substr(i + 1, j - i - 1), line, true});
        i = j + 1;
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-' || c == '+') {
        std::size_t j = i;
        while (j < src.size() &&
               (std::isalnum(static_cast<unsigned char>(src[j])) ||
                src[j] == '_' || src[j] == '.' || src[j] == '-' ||
                src[j] == '+')) {
          ++j;
        }
        toks_.push_back({src.substr(i, j - i), line, false});
        i = j;
        continue;
      }
      toks_.push_back({std::string(1, c), line, false});
      ++i;
    }
  }
  [[nodiscard]] bool done() const { return pos_ >= toks_.size(); }
  struct Tok {
    std::string text;
    int line;
    bool quoted;
  };
  const Tok& peek() const {
    if (done()) throw std::invalid_argument("liberty: unexpected EOF");
    return toks_[pos_];
  }
  Tok next() {
    const Tok t = peek();
    ++pos_;
    return t;
  }
  void expect(const char* s) {
    const Tok t = next();
    if (t.text != s) {
      throw std::invalid_argument("liberty line " + std::to_string(t.line) +
                                  ": expected '" + s + "', got '" + t.text +
                                  "'");
    }
  }
  [[nodiscard]] int line() const {
    if (toks_.empty()) return 1;
    return toks_[pos_ < toks_.size() ? pos_ : toks_.size() - 1].line;
  }

 private:
  std::vector<Tok> toks_;
  std::size_t pos_ = 0;
};

/// Diagnostics context of one parse: findings carry the source name and
/// line so a malformed .lib is reported, not thrown.
struct Ctx {
  core::DiagEngine& diag;

  void bad_number(const std::string& text, int line) {
    diag.error("LIB-BADNUM",
               "malformed numeric value '" + text + "'", "", "liberty",
               line);
  }
};

/// Full-string validated double conversion; reports LIB-BADNUM and
/// returns 0.0 on malformed input instead of throwing.
double to_double(const Lexer::Tok& t, Ctx& ctx) {
  const char* s = t.text.c_str();
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (t.text.empty() || end != s + t.text.size()) {
    ctx.bad_number(t.text, t.line);
    return 0.0;
  }
  return v;
}

/// Full-string validated int conversion (LIB-BADNUM on failure).
long to_long(const Lexer::Tok& t, Ctx& ctx) {
  const char* s = t.text.c_str();
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (t.text.empty() || end != s + t.text.size()) {
    ctx.bad_number(t.text, t.line);
    return 0;
  }
  return v;
}

std::vector<double> parse_number_list(const std::string& s, int line,
                                      Ctx& ctx) {
  std::vector<double> out;
  std::string cur;
  auto flush = [&] {
    if (cur.empty()) return;
    const char* p = cur.c_str();
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end != p + cur.size()) {
      ctx.bad_number(cur, line);
    } else {
      out.push_back(v);
    }
    cur.clear();
  };
  for (const char c : s) {
    if ((c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' ||
        c == 'e' || c == 'E') {
      cur.push_back(c);
    } else {
      flush();
    }
  }
  flush();
  return out;
}

/// Consumes one statement the parser does not understand: everything up
/// to the next ';' at group depth 0 (inclusive), or through one balanced
/// '{...}' group. Stops before a '}' that would close the enclosing
/// group.
void skip_statement(Lexer& lex) {
  int depth = 0;
  while (!lex.done()) {
    const std::string text = lex.peek().text;
    if (depth == 0 && text == "}") return;  // enclosing group ends
    lex.next();
    if (text == "{") {
      ++depth;
    } else if (text == "}") {
      if (--depth == 0) return;
    } else if (text == ";" && depth == 0) {
      return;
    }
  }
}

/// Parses one table group body: index_1("..."); index_2("..."); values(...)
Lut2d parse_table(Lexer& lex, Ctx& ctx) {
  lex.expect("{");
  std::vector<double> i1, i2, vals;
  while (lex.peek().text != "}") {
    const Lexer::Tok key = lex.next();
    lex.expect("(");
    std::string body;
    while (lex.peek().text != ")") body += lex.next().text + " ";
    lex.expect(")");
    lex.expect(";");
    if (key.text == "index_1") {
      i1 = parse_number_list(body, key.line, ctx);
    } else if (key.text == "index_2") {
      i2 = parse_number_list(body, key.line, ctx);
    } else if (key.text == "values") {
      vals = parse_number_list(body, key.line, ctx);
    } else {
      ctx.diag.error("LIB-UNKNOWN-ATTR",
                       "unknown table member '" + key.text + "' skipped",
                       "", "liberty", key.line);
    }
  }
  lex.expect("}");
  try {
    return Lut2d(std::move(i1), std::move(i2), std::move(vals));
  } catch (const std::exception& e) {
    ctx.diag.error("LIB-BADTABLE", e.what(), "", "liberty", lex.line());
    return Lut2d();
  }
}

void parse_impl(std::istream& is, Library& lib, Ctx& ctx) {
  Lexer lex(is);
  lex.expect("library");
  lex.expect("(");
  lex.next();  // library name
  lex.expect(")");
  lex.expect("{");

  while (lex.peek().text != "}") {
    const std::string key = lex.next().text;
    if (key != "cell") {
      // library-level attribute: skip to ';' (possibly with parens)
      while (lex.peek().text != ";") lex.next();
      lex.expect(";");
      continue;
    }
    lex.expect("(");
    Cell c;
    c.name = lex.next().text;
    lex.expect(")");
    lex.expect("{");
    while (lex.peek().text != "}") {
      const Lexer::Tok ckey = lex.next();
      if (ckey.text == "pin") {
        lex.expect("(");
        const int pin_idx = static_cast<int>(c.pins.size());
        c.pins.push_back(Pin{lex.next().text, true, false, 0.0});
        lex.expect(")");
        lex.expect("{");
        while (lex.peek().text != "}") {
          const Lexer::Tok pkey = lex.next();
          if (pkey.text == "direction") {
            lex.expect(":");
            c.pins[pin_idx].is_input = lex.next().text == "input";
            lex.expect(";");
          } else if (pkey.text == "capacitance") {
            lex.expect(":");
            c.pins[pin_idx].cap_ff = to_double(lex.next(), ctx);
            lex.expect(";");
          } else if (pkey.text == "clock") {
            lex.expect(":");
            c.pins[pin_idx].is_clock = lex.next().text == "true";
            lex.expect(";");
          } else if (pkey.text == "timing") {
            lex.expect("(");
            lex.expect(")");
            lex.expect("{");
            std::string rel;
            int rel_line = pkey.line;
            Lut2d delay, slewt;
            while (lex.peek().text != "}") {
              const Lexer::Tok tkey = lex.next();
              if (tkey.text == "related_pin") {
                lex.expect(":");
                rel = lex.next().text;  // quoted token
                rel_line = tkey.line;
                lex.expect(";");
              } else if (tkey.text == "cell_rise") {
                lex.expect("(");
                lex.next();  // template name
                lex.expect(")");
                delay = parse_table(lex, ctx);
              } else if (tkey.text == "rise_transition") {
                lex.expect("(");
                lex.next();
                lex.expect(")");
                slewt = parse_table(lex, ctx);
              } else {
                ctx.diag.error(
                    "LIB-UNKNOWN-ATTR",
                    "unknown timing member '" + tkey.text + "' skipped",
                    c.name, "liberty", tkey.line);
                skip_statement(lex);
              }
            }
            lex.expect("}");
            // Inputs are emitted before outputs, so the related pin is
            // already present and resolvable.
            TimingArc arc;
            arc.from_pin = c.pin_index(rel);
            arc.to_pin = pin_idx;
            if (arc.from_pin < 0) {
              ctx.diag.error("LIB-BADREF",
                             "timing arc references unknown pin '" + rel +
                                 "'",
                             c.name, "liberty", rel_line);
              continue;  // drop the arc, keep parsing the pin group
            }
            arc.delay_ps = std::move(delay);
            arc.out_slew_ps = std::move(slewt);
            c.arcs.push_back(std::move(arc));
          } else {
            ctx.diag.error(
                "LIB-UNKNOWN-ATTR",
                "unknown pin member '" + pkey.text + "' skipped", c.name,
                "liberty", pkey.line);
            skip_statement(lex);
          }
        }
        lex.expect("}");
      } else {
        // scalar cell attribute
        lex.expect(":");
        const Lexer::Tok val = lex.next();
        lex.expect(";");
        if (ckey.text == "area") {
          c.area_um2 = to_double(val, ctx);
        } else if (ckey.text == "cell_leakage_power") {
          c.leakage_nw = to_double(val, ctx);
        } else if (ckey.text == "syndcim_kind") {
          const long k = to_long(val, ctx);
          if (k < 0 || k > static_cast<long>(Kind::kTGate2T)) {
            ctx.diag.error("LIB-BADNUM",
                           "syndcim_kind " + std::to_string(k) +
                               " out of range",
                           c.name, "liberty", val.line);
          } else {
            c.kind = static_cast<Kind>(k);
          }
        } else if (ckey.text == "syndcim_drive") {
          c.drive_x = to_double(val, ctx);
        } else if (ckey.text == "syndcim_internal_energy") {
          c.internal_energy_fj = to_double(val, ctx);
        } else if (ckey.text == "syndcim_clock_energy") {
          c.clock_energy_fj = to_double(val, ctx);
        } else if (ckey.text == "syndcim_setup") {
          c.setup_ps = to_double(val, ctx);
        } else if (ckey.text == "syndcim_hold") {
          c.hold_ps = to_double(val, ctx);
        } else if (ckey.text == "syndcim_width") {
          c.width_um = to_double(val, ctx);
        } else if (ckey.text == "syndcim_height") {
          c.height_um = to_double(val, ctx);
        } else {
          ctx.diag.error("LIB-UNKNOWN-ATTR",
                         "unknown cell member '" + ckey.text + "' skipped",
                         c.name, "liberty", ckey.line);
        }
      }
    }
    lex.expect("}");
    if (lib.has(c.name)) {
      ctx.diag.error("LIB-DUPCELL", "duplicate cell definition", c.name,
                     "liberty", lex.line());
    } else {
      lib.add(std::move(c));
    }
  }
}

}  // namespace

Library parse_liberty(std::istream& is, const tech::TechNode& node,
                      core::DiagEngine* diag) {
  core::DiagEngine own;
  core::DiagEngine& eng = diag ? *diag : own;
  Ctx ctx{eng};
  Library lib(node);
  try {
    parse_impl(is, lib, ctx);
  } catch (const std::invalid_argument& e) {
    // Structural damage (truncation, token mismatch): record and return
    // what parsed so far instead of propagating out of the flow.
    eng.error("LIB-SYNTAX", e.what(), "", "liberty");
  }
  if (!diag && eng.has_errors()) {
    std::ostringstream os;
    os << "parse_liberty: " << eng.summary() << "\n";
    eng.print(os);
    throw std::invalid_argument(os.str());
  }
  return lib;
}

}  // namespace syndcim::cell

#include "cell/liberty_parser.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace syndcim::cell {

namespace {

/// Minimal recursive tokenizer for the Liberty dialect write_liberty
/// emits: group_name (arg) { ... }, attr : value ;, name("...").
class Lexer {
 public:
  explicit Lexer(std::istream& is) {
    std::string src((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    std::size_t i = 0;
    int line = 1;
    while (i < src.size()) {
      const char c = src[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) || c == '\\') {
        ++i;
        continue;
      }
      if (c == '"') {
        std::size_t j = i + 1;
        while (j < src.size() && src[j] != '"') {
          if (src[j] == '\n') ++line;
          ++j;
        }
        toks_.push_back({src.substr(i + 1, j - i - 1), line, true});
        i = j + 1;
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-' || c == '+') {
        std::size_t j = i;
        while (j < src.size() &&
               (std::isalnum(static_cast<unsigned char>(src[j])) ||
                src[j] == '_' || src[j] == '.' || src[j] == '-' ||
                src[j] == '+')) {
          ++j;
        }
        toks_.push_back({src.substr(i, j - i), line, false});
        i = j;
        continue;
      }
      toks_.push_back({std::string(1, c), line, false});
      ++i;
    }
  }
  [[nodiscard]] bool done() const { return pos_ >= toks_.size(); }
  struct Tok {
    std::string text;
    int line;
    bool quoted;
  };
  const Tok& peek() const {
    if (done()) throw std::invalid_argument("liberty: unexpected EOF");
    return toks_[pos_];
  }
  Tok next() {
    const Tok t = peek();
    ++pos_;
    return t;
  }
  void expect(const char* s) {
    const Tok t = next();
    if (t.text != s) {
      throw std::invalid_argument("liberty line " + std::to_string(t.line) +
                                  ": expected '" + s + "', got '" + t.text +
                                  "'");
    }
  }

 private:
  std::vector<Tok> toks_;
  std::size_t pos_ = 0;
};

std::vector<double> parse_number_list(const std::string& s) {
  std::vector<double> out;
  std::string cur;
  for (const char c : s) {
    if ((c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' ||
        c == 'e' || c == 'E') {
      cur.push_back(c);
    } else if (!cur.empty()) {
      out.push_back(std::stod(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::stod(cur));
  return out;
}

/// Parses one table group body: index_1("..."); index_2("..."); values(...)
Lut2d parse_table(Lexer& lex) {
  lex.expect("{");
  std::vector<double> i1, i2, vals;
  while (lex.peek().text != "}") {
    const std::string key = lex.next().text;
    lex.expect("(");
    std::string body;
    while (lex.peek().text != ")") body += lex.next().text + " ";
    lex.expect(")");
    lex.expect(";");
    if (key == "index_1") {
      i1 = parse_number_list(body);
    } else if (key == "index_2") {
      i2 = parse_number_list(body);
    } else if (key == "values") {
      vals = parse_number_list(body);
    } else {
      throw std::invalid_argument("liberty: unknown table member " + key);
    }
  }
  lex.expect("}");
  return Lut2d(std::move(i1), std::move(i2), std::move(vals));
}

}  // namespace

Library parse_liberty(std::istream& is, const tech::TechNode& node) {
  Lexer lex(is);
  lex.expect("library");
  lex.expect("(");
  lex.next();  // library name
  lex.expect(")");
  lex.expect("{");

  Library lib(node);
  while (lex.peek().text != "}") {
    const std::string key = lex.next().text;
    if (key != "cell") {
      // library-level attribute: skip to ';' (possibly with parens)
      while (lex.peek().text != ";") lex.next();
      lex.expect(";");
      continue;
    }
    lex.expect("(");
    Cell c;
    c.name = lex.next().text;
    lex.expect(")");
    lex.expect("{");
    while (lex.peek().text != "}") {
      const std::string ckey = lex.next().text;
      if (ckey == "pin") {
        lex.expect("(");
        const int pin_idx = static_cast<int>(c.pins.size());
        c.pins.push_back(Pin{lex.next().text, true, false, 0.0});
        lex.expect(")");
        lex.expect("{");
        while (lex.peek().text != "}") {
          const std::string pkey = lex.next().text;
          if (pkey == "direction") {
            lex.expect(":");
            c.pins[pin_idx].is_input = lex.next().text == "input";
            lex.expect(";");
          } else if (pkey == "capacitance") {
            lex.expect(":");
            c.pins[pin_idx].cap_ff = std::stod(lex.next().text);
            lex.expect(";");
          } else if (pkey == "clock") {
            lex.expect(":");
            c.pins[pin_idx].is_clock = lex.next().text == "true";
            lex.expect(";");
          } else if (pkey == "timing") {
            lex.expect("(");
            lex.expect(")");
            lex.expect("{");
            std::string rel;
            Lut2d delay, slewt;
            while (lex.peek().text != "}") {
              const std::string tkey = lex.next().text;
              if (tkey == "related_pin") {
                lex.expect(":");
                rel = lex.next().text;  // quoted token
                lex.expect(";");
              } else if (tkey == "cell_rise") {
                lex.expect("(");
                lex.next();  // template name
                lex.expect(")");
                delay = parse_table(lex);
              } else if (tkey == "rise_transition") {
                lex.expect("(");
                lex.next();
                lex.expect(")");
                slewt = parse_table(lex);
              } else {
                throw std::invalid_argument("liberty: unknown timing member " +
                                            tkey);
              }
            }
            lex.expect("}");
            // Inputs are emitted before outputs, so the related pin is
            // already present and resolvable.
            TimingArc arc;
            arc.from_pin = c.pin_index(rel);
            arc.to_pin = pin_idx;
            if (arc.from_pin < 0) {
              throw std::invalid_argument("liberty: arc references unknown "
                                          "pin " + rel + " on " + c.name);
            }
            arc.delay_ps = std::move(delay);
            arc.out_slew_ps = std::move(slewt);
            c.arcs.push_back(std::move(arc));
          } else {
            throw std::invalid_argument("liberty: unknown pin member " +
                                        pkey);
          }
        }
        lex.expect("}");
      } else {
        // scalar cell attribute
        lex.expect(":");
        const std::string val = lex.next().text;
        lex.expect(";");
        if (ckey == "area") {
          c.area_um2 = std::stod(val);
        } else if (ckey == "cell_leakage_power") {
          c.leakage_nw = std::stod(val);
        } else if (ckey == "syndcim_kind") {
          c.kind = static_cast<Kind>(std::stoi(val));
        } else if (ckey == "syndcim_drive") {
          c.drive_x = std::stod(val);
        } else if (ckey == "syndcim_internal_energy") {
          c.internal_energy_fj = std::stod(val);
        } else if (ckey == "syndcim_clock_energy") {
          c.clock_energy_fj = std::stod(val);
        } else if (ckey == "syndcim_setup") {
          c.setup_ps = std::stod(val);
        } else if (ckey == "syndcim_hold") {
          c.hold_ps = std::stod(val);
        } else if (ckey == "syndcim_width") {
          c.width_um = std::stod(val);
        } else if (ckey == "syndcim_height") {
          c.height_um = std::stod(val);
        }
      }
    }
    lex.expect("}");
    lib.add(std::move(c));
  }
  return lib;
}

}  // namespace syndcim::cell

#include "cell/lut2d.hpp"

#include <algorithm>
#include <stdexcept>

namespace syndcim::cell {

Lut2d::Lut2d(std::vector<double> slew_axis_ps,
             std::vector<double> load_axis_ff,
             std::vector<double> values_row_major)
    : slew_(std::move(slew_axis_ps)),
      load_(std::move(load_axis_ff)),
      values_(std::move(values_row_major)) {
  if (slew_.empty() || load_.empty() ||
      values_.size() != slew_.size() * load_.size()) {
    throw std::invalid_argument("Lut2d: axis/value size mismatch");
  }
  if (!std::is_sorted(slew_.begin(), slew_.end()) ||
      !std::is_sorted(load_.begin(), load_.end())) {
    throw std::invalid_argument("Lut2d: axes must be sorted ascending");
  }
}

Lut2d Lut2d::constant(double v) { return Lut2d({0.0}, {0.0}, {v}); }

Lut2d Lut2d::scaled(double k) const {
  Lut2d out = *this;
  for (double& v : out.values_) v *= k;
  return out;
}

namespace {
/// Index i and fraction t such that x ~ axis[i]*(1-t) + axis[i+1]*t,
/// clamped to the axis range.
struct Seg {
  std::size_t i;
  double t;
};
Seg locate(const std::vector<double>& axis, double x) {
  if (axis.size() == 1 || x <= axis.front()) return {0, 0.0};
  if (x >= axis.back()) return {axis.size() - 2, 1.0};
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - axis.begin());
  const std::size_t lo = hi - 1;
  const double span = axis[hi] - axis[lo];
  return {lo, span > 0 ? (x - axis[lo]) / span : 0.0};
}
}  // namespace

double Lut2d::eval(double slew_ps, double load_ff) const {
  if (values_.empty()) throw std::logic_error("Lut2d::eval on empty table");
  if (values_.size() == 1) return values_[0];
  const Seg s = locate(slew_, slew_ps);
  const Seg l = locate(load_, load_ff);
  const std::size_t cols = load_.size();
  auto at = [&](std::size_t si, std::size_t li) {
    return values_[si * cols + li];
  };
  const std::size_t s1 = std::min(s.i + 1, slew_.size() - 1);
  const std::size_t l1 = std::min(l.i + 1, load_.size() - 1);
  const double v00 = at(s.i, l.i), v01 = at(s.i, l1);
  const double v10 = at(s1, l.i), v11 = at(s1, l1);
  const double v0 = v00 * (1 - l.t) + v01 * l.t;
  const double v1 = v10 * (1 - l.t) + v11 * l.t;
  return v0 * (1 - s.t) + v1 * s.t;
}

}  // namespace syndcim::cell

#include "cell/lut2d.hpp"

#include <algorithm>
#include <stdexcept>

namespace syndcim::cell {

Lut2d::Lut2d(std::vector<double> slew_axis_ps,
             std::vector<double> load_axis_ff,
             std::vector<double> values_row_major)
    : slew_(std::move(slew_axis_ps)),
      load_(std::move(load_axis_ff)),
      values_(std::move(values_row_major)) {
  if (slew_.empty() || load_.empty() ||
      values_.size() != slew_.size() * load_.size()) {
    throw std::invalid_argument("Lut2d: axis/value size mismatch");
  }
  if (!std::is_sorted(slew_.begin(), slew_.end()) ||
      !std::is_sorted(load_.begin(), load_.end())) {
    throw std::invalid_argument("Lut2d: axes must be sorted ascending");
  }
}

Lut2d Lut2d::constant(double v) { return Lut2d({0.0}, {0.0}, {v}); }

Lut2d Lut2d::scaled(double k) const {
  Lut2d out = *this;
  for (double& v : out.values_) v *= k;
  return out;
}

double Lut2d::eval(double slew_ps, double load_ff) const {
  if (values_.empty()) throw std::logic_error("Lut2d::eval on empty table");
  if (values_.size() == 1) return values_[0];
  const LutSeg s = locate(slew_, slew_ps);
  const LutSeg l = locate(load_, load_ff);
  const std::size_t cols = load_.size();
  const std::size_t s1 = std::min(s.i + 1, slew_.size() - 1);
  const std::size_t l1 = std::min(l.i + 1, load_.size() - 1);
  const double v0 = lut_lerp(values_[s.i * cols + l.i],
                             values_[s.i * cols + l1], l.t);
  const double v1 = lut_lerp(values_[s1 * cols + l.i],
                             values_[s1 * cols + l1], l.t);
  return lut_lerp(v0, v1, s.t);
}

void Lut2d::collapse_load(double load_ff, double* row) const {
  if (values_.empty()) {
    throw std::logic_error("Lut2d::collapse_load on empty table");
  }
  const LutSeg l = locate(load_, load_ff);
  const std::size_t cols = load_.size();
  const std::size_t l1 = std::min(l.i + 1, cols - 1);
  for (std::size_t si = 0; si < slew_.size(); ++si) {
    row[si] =
        lut_lerp(values_[si * cols + l.i], values_[si * cols + l1], l.t);
  }
}

}  // namespace syndcim::cell

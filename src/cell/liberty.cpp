#include "cell/liberty.hpp"

#include <iomanip>

namespace syndcim::cell {

namespace {
void write_values(const Lut2d& lut, std::ostream& os, const char* indent) {
  os << indent << "index_1(\"";
  for (std::size_t i = 0; i < lut.slew_axis().size(); ++i) {
    os << (i ? ", " : "") << lut.slew_axis()[i];
  }
  os << "\");\n" << indent << "index_2(\"";
  for (std::size_t i = 0; i < lut.load_axis().size(); ++i) {
    os << (i ? ", " : "") << lut.load_axis()[i];
  }
  os << "\");\n" << indent << "values( \\\n";
  const std::size_t cols = lut.load_axis().size();
  for (std::size_t r = 0; r < lut.slew_axis().size(); ++r) {
    os << indent << "  \"";
    for (std::size_t c = 0; c < cols; ++c) {
      os << (c ? ", " : "") << std::fixed << std::setprecision(3)
         << lut.values()[r * cols + c];
    }
    os << "\"" << (r + 1 < lut.slew_axis().size() ? ", \\\n" : " \\\n");
  }
  os << indent << ");\n";
  os.unsetf(std::ios::fixed);
  os << std::setprecision(12);  // restore scalar-attribute precision
}
}  // namespace

void write_liberty(const Library& lib, std::ostream& os) {
  os << std::setprecision(12);
  os << "library (syndcim_" << lib.node().name << ") {\n";
  os << "  time_unit : \"1ps\";\n  capacitive_load_unit (1, ff);\n";
  os << "  nom_voltage : " << lib.node().vdd_nominal << ";\n";
  for (const Cell& c : lib.all()) {
    os << "  cell (" << c.name << ") {\n";
    os << "    area : " << c.area_um2 << ";\n";
    os << "    cell_leakage_power : " << c.leakage_nw << ";\n";
    // Vendor attributes keeping the round trip lossless (Kind, energies,
    // footprint and sequential data have no standard scalar home).
    os << "    syndcim_kind : " << static_cast<int>(c.kind) << ";\n";
    os << "    syndcim_drive : " << c.drive_x << ";\n";
    os << "    syndcim_internal_energy : " << c.internal_energy_fj << ";\n";
    os << "    syndcim_clock_energy : " << c.clock_energy_fj << ";\n";
    os << "    syndcim_setup : " << c.setup_ps << ";\n";
    os << "    syndcim_hold : " << c.hold_ps << ";\n";
    os << "    syndcim_width : " << c.width_um << ";\n";
    os << "    syndcim_height : " << c.height_um << ";\n";
    for (const Pin& p : c.pins) {
      os << "    pin (" << p.name << ") {\n";
      os << "      direction : " << (p.is_input ? "input" : "output")
         << ";\n";
      if (p.is_input) {
        os << "      capacitance : " << p.cap_ff << ";\n";
        if (p.is_clock) os << "      clock : true;\n";
      } else {
        for (const TimingArc& a : c.arcs) {
          if (c.pins[static_cast<std::size_t>(a.to_pin)].name != p.name) {
            continue;
          }
          os << "      timing () {\n";
          os << "        related_pin : \""
             << c.pins[static_cast<std::size_t>(a.from_pin)].name << "\";\n";
          os << "        cell_rise (delay_template) {\n";
          write_values(a.delay_ps, os, "          ");
          os << "        }\n";
          os << "        rise_transition (delay_template) {\n";
          write_values(a.out_slew_ps, os, "          ");
          os << "        }\n      }\n";
        }
      }
      os << "    }\n";
    }
    os << "  }\n";
  }
  os << "}\n";
}

}  // namespace syndcim::cell

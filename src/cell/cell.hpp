#pragma once
#include <string>
#include <vector>

#include "cell/lut2d.hpp"

namespace syndcim::cell {

/// Logic/storage function class of a cell. Simulation, STA roles and power
/// models dispatch on this; drive variants of the same kind share it.
enum class Kind {
  kInv,
  kBuf,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kXor2,
  kXnor2,
  kAoi21,  // Y = !((A & B) | C)
  kOai21,  // Y = !((A | B) & C)
  kOai22,  // Y = !((A | B) & (C | D)) — fused multiplier-multiplexer
  kMux2,   // Y = S ? B : A
  kHalfAdder,     // A,B -> S,CO
  kFullAdder,     // A,B,CI -> S,CO
  kCompressor42,  // A,B,C,D,CIN -> S,CO,COUT (two chained full adders)
  kDff,           // D,CK -> Q
  kDffEn,         // D,E,CK -> Q (holds when E=0)
  kLatch,         // D,G -> Q (transparent high)
  kSram6T,        // WL,D -> Q storage bitcell (write when WL=1)
  kSram8T,        // D-latch style bitcell (robust read/write)
  kSram12T,       // OAI-gate based bitcell
  kPassGate1T,    // A,B,S -> Y 2:1 NMOS pass-gate mux (2T, degraded level)
  kTGate2T,       // A,B,S -> Y 2:1 transmission-gate mux (6T, restoring)
};

/// Role a cell plays in timing analysis.
enum class TimingRole {
  kCombinational,
  kRegister,  // DFF/DFFE: CK->Q launch, D/E setup endpoint
  kStorage,   // SRAM bitcell: Q launches at t=0; D/WL are write endpoints
};

struct Pin {
  std::string name;
  bool is_input = true;
  bool is_clock = false;
  double cap_ff = 0.0;  ///< input pin capacitance (0 for outputs)
};

/// One input-to-output delay arc with NLDM tables.
struct TimingArc {
  int from_pin = -1;  ///< index into Cell::pins
  int to_pin = -1;
  Lut2d delay_ps;
  Lut2d out_slew_ps;
};

struct Cell {
  std::string name;
  Kind kind = Kind::kInv;
  double drive_x = 1.0;  ///< drive strength multiplier (X1, X2, ...)

  std::vector<Pin> pins;
  std::vector<TimingArc> arcs;

  double area_um2 = 0.0;
  double width_um = 0.0;   ///< footprint used by the placer
  double height_um = 0.0;
  double leakage_nw = 0.0;
  /// Internal (short-circuit + internal node) energy per output toggle at
  /// nominal VDD; load energy 0.5*C*V^2 is added by the power engine.
  double internal_energy_fj = 0.0;
  /// Energy drawn from the clock pin every clock edge pair (registers).
  double clock_energy_fj = 0.0;

  // Sequential characteristics (registers only).
  double setup_ps = 0.0;
  double hold_ps = 0.0;

  [[nodiscard]] TimingRole timing_role() const;
  [[nodiscard]] int pin_index(std::string_view pin_name) const;  // -1 if none
  [[nodiscard]] const Pin& pin(std::string_view pin_name) const;
  [[nodiscard]] int input_count() const;
  [[nodiscard]] int output_count() const;
  [[nodiscard]] bool is_bitcell() const {
    return kind == Kind::kSram6T || kind == Kind::kSram8T ||
           kind == Kind::kSram12T;
  }
};

/// Canonical pin name lists per kind, inputs first then outputs; the
/// characterizer and the simulator both rely on this ordering.
[[nodiscard]] std::vector<std::string> input_pin_names(Kind k);
[[nodiscard]] std::vector<std::string> output_pin_names(Kind k);

/// Evaluates the combinational function of `k`: `in` holds input values in
/// canonical order, returns outputs in canonical order. Registers/storage
/// evaluate their next-state function (D..., current Q appended by caller
/// where the kind needs it — see sim/gate_sim.cpp).
[[nodiscard]] std::vector<int> eval_kind(Kind k, const std::vector<int>& in);

}  // namespace syndcim::cell

#pragma once
#include <ostream>

#include "cell/library.hpp"

namespace syndcim::cell {

/// Emits the library in a Liberty-flavoured text format (cell, pin,
/// timing() groups with values tables). This is the artifact the paper's
/// flow hands to Design Compiler / Innovus; here it documents the
/// characterized library and is exercised by tests as a stable external
/// format.
void write_liberty(const Library& lib, std::ostream& os);

}  // namespace syndcim::cell

#pragma once
#include <cstdint>
#include <span>
#include <vector>

#include "num/fp_format.hpp"

namespace syndcim::num {

/// Result of the FP&INT Alignment Unit: every value in the group is
/// expressed as a signed integer mantissa against one shared exponent, the
/// format consumed by the integer MAC array.
///
/// value_i ~= mant[i] * 2^(shared_exp_unbiased - man_bits - guard_bits)
struct AlignedGroup {
  std::vector<std::int64_t> mant;
  int shared_exp_unbiased = 0;  ///< effective exponent of the group maximum
  int frac_shift = 0;           ///< man_bits + guard_bits of the source format

  /// Real value represented by element `i`.
  [[nodiscard]] double value(std::size_t i) const;
};

/// Behavioral reference of the alignment unit's comparator tree + shifters.
/// Mantissas are truncated on right shift (hardware drops the shifted-out
/// bits); `guard_bits` extra low bits reduce that truncation loss.
/// Shifts larger than the mantissa width flush to zero, as the barrel
/// shifter does.
[[nodiscard]] AlignedGroup align_fp_group(std::span<const std::uint32_t> enc,
                                          FpFormat f, int guard_bits);

/// Width in bits of the signed aligned mantissa produced by
/// `align_fp_group` (sign + implicit bit + man_bits + guard_bits).
[[nodiscard]] int aligned_mant_bits(FpFormat f, int guard_bits);

}  // namespace syndcim::num

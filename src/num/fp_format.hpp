#pragma once
#include <cstdint>
#include <string>

namespace syndcim::num {

/// Parameterized small floating-point format: 1 sign bit, `exp_bits`
/// exponent bits (biased), `man_bits` mantissa bits, subnormal support,
/// no inf/NaN encodings (max-magnitude saturation, as in OCP FP8/FP4 and
/// typical DCIM hardware).
struct FpFormat {
  int exp_bits = 4;
  int man_bits = 3;

  [[nodiscard]] constexpr int bias() const {
    return (1 << (exp_bits - 1)) - 1;
  }
  [[nodiscard]] constexpr int storage_bits() const {
    return 1 + exp_bits + man_bits;
  }
  [[nodiscard]] constexpr int max_exp_raw() const {
    return (1 << exp_bits) - 1;
  }
  [[nodiscard]] std::string name() const {
    return "E" + std::to_string(exp_bits) + "M" + std::to_string(man_bits);
  }
  [[nodiscard]] constexpr bool operator==(const FpFormat&) const = default;
};

inline constexpr FpFormat kFp4{2, 1};    // E2M1
inline constexpr FpFormat kFp8{4, 3};    // E4M3
inline constexpr FpFormat kFp16{5, 10};  // IEEE half (sans inf/NaN)
inline constexpr FpFormat kBf16{8, 7};   // bfloat16 (sans inf/NaN)

/// Decoded bit fields of one encoded value.
struct FpFields {
  int sign = 0;      ///< 0 or 1
  int exp_raw = 0;   ///< biased exponent field
  int man_raw = 0;   ///< mantissa field (no implicit bit)
};

[[nodiscard]] FpFields fp_split(std::uint32_t enc, FpFormat f);
[[nodiscard]] std::uint32_t fp_join(FpFields fields, FpFormat f);

/// Exact value of an encoded number.
[[nodiscard]] double fp_decode(std::uint32_t enc, FpFormat f);

/// Round-to-nearest-even encode with saturation to max magnitude.
[[nodiscard]] std::uint32_t fp_encode(double x, FpFormat f);

/// Largest finite magnitude of the format.
[[nodiscard]] double fp_max_value(FpFormat f);

}  // namespace syndcim::num

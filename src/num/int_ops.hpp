#pragma once
#include <cstdint>
#include <stdexcept>

namespace syndcim::num {

/// Fixed-width integer format used by the DCIM datapath (1..32 bits).
struct IntFormat {
  int bits = 8;
  bool is_signed = true;

  [[nodiscard]] std::int64_t min_value() const {
    if (!is_signed) return 0;
    return bits == 1 ? -1 : -(std::int64_t{1} << (bits - 1));
  }
  [[nodiscard]] std::int64_t max_value() const {
    if (!is_signed) return (std::int64_t{1} << bits) - 1;
    return bits == 1 ? 0 : (std::int64_t{1} << (bits - 1)) - 1;
  }
};

/// Sign-extends the low `bits` of `v`.
[[nodiscard]] constexpr std::int64_t sign_extend(std::uint64_t v, int bits) {
  const std::uint64_t mask = bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  v &= mask;
  const std::uint64_t sign_bit = 1ull << (bits - 1);
  return (v & sign_bit) ? static_cast<std::int64_t>(v | ~mask)
                        : static_cast<std::int64_t>(v);
}

/// Two's-complement bit `k` (LSB = 0) of a signed value in `bits` bits.
[[nodiscard]] constexpr int ts_bit(std::int64_t v, int k) {
  return static_cast<int>((static_cast<std::uint64_t>(v) >> k) & 1u);
}

/// Saturate `v` into the representable range of `f`.
[[nodiscard]] inline std::int64_t saturate(std::int64_t v, IntFormat f) {
  if (v < f.min_value()) return f.min_value();
  if (v > f.max_value()) return f.max_value();
  return v;
}

/// Throws unless `v` is representable in `f` (used to validate test vectors
/// and weight matrices handed to the macro model).
inline void require_in_range(std::int64_t v, IntFormat f) {
  if (v < f.min_value() || v > f.max_value()) {
    throw std::out_of_range("value not representable in IntFormat");
  }
}

}  // namespace syndcim::num

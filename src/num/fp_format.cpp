#include "num/fp_format.hpp"

#include <cmath>
#include <stdexcept>

namespace syndcim::num {

FpFields fp_split(std::uint32_t enc, FpFormat f) {
  const std::uint32_t mask = (1u << f.storage_bits()) - 1;
  if (enc & ~mask) {
    throw std::invalid_argument("fp_split: encoding wider than format");
  }
  FpFields out;
  out.man_raw = static_cast<int>(enc & ((1u << f.man_bits) - 1));
  out.exp_raw = static_cast<int>((enc >> f.man_bits) & ((1u << f.exp_bits) - 1));
  out.sign = static_cast<int>((enc >> (f.man_bits + f.exp_bits)) & 1u);
  return out;
}

std::uint32_t fp_join(FpFields fields, FpFormat f) {
  return (static_cast<std::uint32_t>(fields.sign) << (f.man_bits + f.exp_bits)) |
         (static_cast<std::uint32_t>(fields.exp_raw) << f.man_bits) |
         static_cast<std::uint32_t>(fields.man_raw);
}

double fp_decode(std::uint32_t enc, FpFormat f) {
  const FpFields v = fp_split(enc, f);
  const double sign = v.sign ? -1.0 : 1.0;
  if (v.exp_raw == 0) {
    // Subnormal: value = man * 2^(1 - bias - man_bits).
    return sign * std::ldexp(static_cast<double>(v.man_raw),
                             1 - f.bias() - f.man_bits);
  }
  const double sig = static_cast<double>(v.man_raw) +
                     static_cast<double>(1 << f.man_bits);
  return sign * std::ldexp(sig, v.exp_raw - f.bias() - f.man_bits);
}

double fp_max_value(FpFormat f) {
  FpFields v;
  v.sign = 0;
  v.exp_raw = f.max_exp_raw();
  v.man_raw = (1 << f.man_bits) - 1;
  return fp_decode(fp_join(v, f), f);
}

std::uint32_t fp_encode(double x, FpFormat f) {
  FpFields out;
  out.sign = std::signbit(x) ? 1 : 0;
  double mag = std::fabs(x);
  if (std::isnan(mag)) mag = 0.0;  // formats carry no NaN; flush to zero
  const double max_v = fp_max_value(f);
  if (mag >= max_v) {  // saturate (covers inf)
    out.exp_raw = f.max_exp_raw();
    out.man_raw = (1 << f.man_bits) - 1;
    return fp_join(out, f);
  }
  if (mag == 0.0) return fp_join(out, f);

  int e = 0;
  (void)std::frexp(mag, &e);  // mag = frac * 2^e, frac in [0.5, 1)
  // Unbiased exponent of the leading bit is e-1; biased field would be:
  int exp_field = e - 1 + f.bias();
  if (exp_field < 1) exp_field = 0;  // subnormal range

  // Scale so that the mantissa field is an integer count of ULPs.
  const int ulp_exp = (exp_field == 0 ? 1 : exp_field) - f.bias() - f.man_bits;
  const double scaled = std::ldexp(mag, -ulp_exp);
  // Round to nearest even.
  double r = std::nearbyint(scaled);
  if (std::fabs(scaled - std::trunc(scaled) - 0.5) < 1e-12) {
    const double lo = std::floor(scaled);
    r = (static_cast<std::int64_t>(lo) % 2 == 0) ? lo : lo + 1.0;
  }
  auto sig = static_cast<std::int64_t>(r);

  const std::int64_t implicit = std::int64_t{1} << f.man_bits;
  if (exp_field == 0) {
    if (sig >= implicit) {  // rounded up into normal range
      exp_field = 1;
      sig -= implicit;
    }
  } else {
    if (sig >= 2 * implicit) {  // rounded up a binade
      exp_field += 1;
      sig >>= 1;
    }
    sig -= implicit;
    if (exp_field > f.max_exp_raw()) {  // saturate after rounding
      exp_field = f.max_exp_raw();
      sig = implicit - 1;
    }
  }
  out.exp_raw = exp_field;
  out.man_raw = static_cast<int>(sig);
  return fp_join(out, f);
}

}  // namespace syndcim::num

#include "num/alignment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace syndcim::num {

namespace {
/// Effective (unbiased) exponent and integer significand (with implicit
/// bit for normals) of one encoded value.
struct SigExp {
  std::int64_t sig = 0;  ///< unsigned significand
  int exp = 0;           ///< effective unbiased exponent
  int sign = 0;
};

SigExp sig_exp(std::uint32_t enc, FpFormat f) {
  const FpFields v = fp_split(enc, f);
  SigExp out;
  out.sign = v.sign;
  if (v.exp_raw == 0) {
    out.sig = v.man_raw;
    out.exp = 1 - f.bias();  // subnormals share the minimum exponent
  } else {
    out.sig = v.man_raw + (std::int64_t{1} << f.man_bits);
    out.exp = v.exp_raw - f.bias();
  }
  return out;
}
}  // namespace

double AlignedGroup::value(std::size_t i) const {
  return std::ldexp(static_cast<double>(mant.at(i)),
                    shared_exp_unbiased - frac_shift);
}

int aligned_mant_bits(FpFormat f, int guard_bits) {
  return 2 + f.man_bits + guard_bits;  // sign + implicit + mantissa + guard
}

AlignedGroup align_fp_group(std::span<const std::uint32_t> enc, FpFormat f,
                            int guard_bits) {
  if (enc.empty()) throw std::invalid_argument("align_fp_group: empty group");
  if (guard_bits < 0 || guard_bits > 16) {
    throw std::invalid_argument("align_fp_group: guard_bits out of range");
  }

  std::vector<SigExp> parts;
  parts.reserve(enc.size());
  int max_exp = 1 - f.bias();
  bool any_nonzero = false;
  for (const std::uint32_t e : enc) {
    SigExp p = sig_exp(e, f);
    if (p.sig != 0) {
      any_nonzero = true;
      max_exp = std::max(max_exp, p.exp);
    }
    parts.push_back(p);
  }

  AlignedGroup out;
  out.frac_shift = f.man_bits + guard_bits;
  out.shared_exp_unbiased = any_nonzero ? max_exp : 0;
  out.mant.reserve(parts.size());
  for (const SigExp& p : parts) {
    const int shift = out.shared_exp_unbiased - p.exp;
    std::int64_t m = 0;
    if (p.sig != 0) {
      const std::int64_t widened = p.sig << guard_bits;
      m = shift >= 63 ? 0 : (widened >> shift);  // barrel shifter flush
    }
    out.mant.push_back(p.sign ? -m : m);
  }
  return out;
}

}  // namespace syndcim::num

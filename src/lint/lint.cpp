#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace syndcim::lint {

namespace {

using netlist::FlatNetlist;

/// Emits through the engine with a per-rule cap; suppressed findings are
/// still counted in the summary and surfaced as one trailing note per
/// rule, so truncation is never silent.
class Reporter {
 public:
  Reporter(core::DiagEngine& diag, const LintOptions& opt)
      : diag_(diag), opt_(opt) {}

  void emit(core::Severity sev, std::string rule, std::string msg,
            std::string object = "", std::string source = "") {
    switch (sev) {
      case core::Severity::kError:
        ++sum_.errors;
        break;
      case core::Severity::kWarning:
        ++sum_.warnings;
        break;
      case core::Severity::kInfo:
        ++sum_.notes;
        break;
    }
    std::size_t& n = emitted_[rule];
    if (n >= opt_.max_per_rule) {
      ++suppressed_[rule];
      return;
    }
    ++n;
    diag_.report({sev, std::move(rule), std::move(msg), std::move(object),
                  std::move(source), -1});
  }

  LintSummary finish() {
    for (const auto& [rule, n] : suppressed_) {
      diag_.info("LINT-TRUNCATED",
                 std::to_string(n) + " further " + rule +
                     " findings suppressed (cap " +
                     std::to_string(opt_.max_per_rule) + " per rule)");
      ++sum_.notes;
    }
    return sum_;
  }

 private:
  core::DiagEngine& diag_;
  const LintOptions& opt_;
  LintSummary sum_;
  std::map<std::string, std::size_t> emitted_;
  std::map<std::string, std::size_t> suppressed_;
};

std::string net_label(const FlatNetlist& nl, std::uint32_t net) {
  const std::string& name = nl.net_name(net);
  return name.empty() ? "net#" + std::to_string(net) : name;
}

std::string gate_label(const FlatNetlist& nl, std::uint32_t g) {
  const auto& gate = nl.gates()[g];
  return nl.group_names()[gate.group] + "/" +
         nl.master_names()[gate.master] + "#" + std::to_string(g);
}

const std::string& gate_group(const FlatNetlist& nl, std::uint32_t g) {
  return nl.group_names()[nl.gates()[g].group];
}

/// Splits "foo[3]" into ("foo", 3); returns false for scalar names.
bool split_bus_bit(const std::string& name, std::string& base, int& index) {
  if (name.empty() || name.back() != ']') return false;
  const std::size_t open = name.rfind('[');
  if (open == std::string::npos || open + 2 > name.size() - 1) return false;
  int v = 0;
  for (std::size_t i = open + 1; i + 1 < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
    v = v * 10 + (name[i] - '0');
  }
  base = name.substr(0, open);
  index = v;
  return true;
}

}  // namespace

LintSummary lint_netlist(const FlatNetlist& nl, const cell::Library& lib,
                         core::DiagEngine& diag, const LintOptions& opt) {
  Reporter rep(diag, opt);
  const std::size_t n_gates = nl.gates().size();
  const std::size_t n_nets = nl.net_count();

  // Resolve each interned master against the library once.
  std::vector<const cell::Cell*> masters(nl.master_names().size(), nullptr);
  for (std::size_t m = 0; m < masters.size(); ++m) {
    masters[m] = lib.find(nl.master_names()[m]);
  }
  if (opt.check_pins) {
    for (std::size_t m = 0; m < masters.size(); ++m) {
      if (masters[m]) continue;
      std::size_t uses = 0;
      for (const auto& g : nl.gates()) uses += g.master == m ? 1 : 0;
      rep.emit(core::Severity::kError, "LINT-UNKNOWN-CELL",
               "cell master not in the library (" + std::to_string(uses) +
                   " instances)",
               nl.master_names()[m]);
    }
  }

  // Per-net driver/load accounting; per-gate pin coverage.
  struct NetInfo {
    std::uint32_t drivers = 0;     // gate output pins + const ties + PIs
    std::uint32_t loads = 0;       // gate input pins + POs
    bool gate_driven = false;
    /// CDC domain masks: `domains` holds clocks whose register outputs
    /// drive this net directly; `comb_domains` holds clocks whose launch
    /// reached it through at least one combinational gate. The register
    /// endpoint check only uses the latter — a direct reg->reg crossing
    /// is the synchronizer pattern itself and must not be flagged.
    std::uint64_t domains = 0;
    std::uint64_t comb_domains = 0;
  };
  std::vector<NetInfo> nets(n_nets);
  for (std::uint32_t n = 0; n < n_nets; ++n) {
    if (nl.net_const(n) != netlist::NetConst::kNone) ++nets[n].drivers;
  }
  for (const auto& io : nl.primary_inputs()) ++nets[io.net].drivers;
  for (const auto& io : nl.primary_outputs()) ++nets[io.net].loads;

  for (std::uint32_t g = 0; g < n_gates; ++g) {
    const auto& gate = nl.gates()[g];
    const cell::Cell* cell = masters[gate.master];
    if (!cell) {
      // Unknown master: count conservative connectivity so its nets are
      // not reported floating/dangling on top of the unknown-cell error.
      for (const auto& pc : gate.pins) {
        ++nets[pc.net].drivers;
        ++nets[pc.net].loads;
      }
      continue;
    }
    std::vector<bool> connected(cell->pins.size(), false);
    for (const auto& pc : gate.pins) {
      const int pi = cell->pin_index(nl.pin_names()[pc.pin_name]);
      if (pi < 0) {
        if (opt.check_pins) {
          rep.emit(core::Severity::kError, "LINT-UNKNOWN-PIN",
                   "connection to pin '" + nl.pin_names()[pc.pin_name] +
                       "' which master '" + cell->name + "' does not have",
                   gate_label(nl, g), gate_group(nl, g));
        }
        continue;
      }
      connected[pi] = true;
      if (cell->pins[pi].is_input) {
        ++nets[pc.net].loads;
      } else {
        ++nets[pc.net].drivers;
        nets[pc.net].gate_driven = true;
      }
    }
    if (opt.check_pins) {
      for (std::size_t pi = 0; pi < cell->pins.size(); ++pi) {
        if (connected[pi]) continue;
        const bool input = cell->pins[pi].is_input;
        rep.emit(input ? core::Severity::kError : core::Severity::kWarning,
                 "LINT-UNCONNECTED",
                 std::string(input ? "input" : "output") + " pin '" +
                     cell->pins[pi].name + "' of master '" + cell->name +
                     "' is unconnected",
                 gate_label(nl, g), gate_group(nl, g));
      }
    }
  }

  if (opt.check_drivers) {
    for (std::uint32_t n = 0; n < n_nets; ++n) {
      if (nets[n].drivers > 1) {
        rep.emit(core::Severity::kError, "LINT-MULTIDRIVE",
                 "net has " + std::to_string(nets[n].drivers) +
                     " drivers (output pins / constant ties / ports)",
                 net_label(nl, n));
      } else if (nets[n].loads > 0 && nets[n].drivers == 0) {
        rep.emit(core::Severity::kError, "LINT-FLOATING",
                 "net has " + std::to_string(nets[n].loads) +
                     " loads but no driver",
                 net_label(nl, n));
      }
    }
  }
  if (opt.check_dangling) {
    for (std::uint32_t n = 0; n < n_nets; ++n) {
      if (nets[n].gate_driven && nets[n].loads == 0) {
        rep.emit(core::Severity::kInfo, "LINT-DANGLING",
                 "gate-driven net has no loads (unused output)",
                 net_label(nl, n));
      }
    }
  }

  // --- Combinational gate graph (registers and storage break paths). ---
  const bool need_graph = opt.check_comb_loops || opt.check_cdc;
  std::vector<std::int32_t> node_of(n_gates, -1);  // gate -> comb node id
  std::vector<std::uint32_t> comb;                 // node id -> gate
  std::vector<std::vector<std::int32_t>> adj;      // comb node -> comb nodes
  std::vector<bool> in_loop;                       // per comb node
  if (need_graph) {
    for (std::uint32_t g = 0; g < n_gates; ++g) {
      const cell::Cell* cell = masters[nl.gates()[g].master];
      if (cell &&
          cell->timing_role() == cell::TimingRole::kCombinational) {
        node_of[g] = static_cast<std::int32_t>(comb.size());
        comb.push_back(g);
      }
    }
    // Net -> combinational loads, then driver -> load edges.
    std::vector<std::vector<std::int32_t>> net_loads(n_nets);
    for (const std::uint32_t g : comb) {
      const cell::Cell* cell = masters[nl.gates()[g].master];
      for (const auto& pc : nl.gates()[g].pins) {
        const int pi = cell->pin_index(nl.pin_names()[pc.pin_name]);
        if (pi >= 0 && cell->pins[pi].is_input) {
          net_loads[pc.net].push_back(node_of[g]);
        }
      }
    }
    adj.resize(comb.size());
    for (const std::uint32_t g : comb) {
      const cell::Cell* cell = masters[nl.gates()[g].master];
      for (const auto& pc : nl.gates()[g].pins) {
        const int pi = cell->pin_index(nl.pin_names()[pc.pin_name]);
        if (pi >= 0 && !cell->pins[pi].is_input) {
          for (const std::int32_t w : net_loads[pc.net]) {
            adj[node_of[g]].push_back(w);
          }
        }
      }
    }
    in_loop.assign(comb.size(), false);
  }

  if (opt.check_comb_loops && !comb.empty()) {
    // Iterative Tarjan SCC; any component with >1 member (or a self-edge)
    // is a combinational loop.
    const std::int32_t n = static_cast<std::int32_t>(comb.size());
    std::vector<std::int32_t> index(n, -1), low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<std::int32_t> stack;
    struct Frame {
      std::int32_t v;
      std::size_t child;
    };
    std::vector<Frame> frames;
    std::int32_t next_index = 0;
    auto report_scc = [&](const std::vector<std::int32_t>& members) {
      std::string list;
      for (std::size_t i = 0; i < members.size() && i < 8; ++i) {
        if (i) list += " -> ";
        list += gate_label(nl, comb[members[i]]);
      }
      if (members.size() > 8) list += " -> ...";
      for (const std::int32_t m : members) in_loop[m] = true;
      rep.emit(core::Severity::kError, "LINT-COMB-LOOP",
               "combinational loop through " +
                   std::to_string(members.size()) + " gates: " + list,
               gate_label(nl, comb[members.front()]),
               gate_group(nl, comb[members.front()]));
    };
    for (std::int32_t root = 0; root < n; ++root) {
      if (index[root] != -1) continue;
      frames.push_back({root, 0});
      index[root] = low[root] = next_index++;
      stack.push_back(root);
      on_stack[root] = true;
      while (!frames.empty()) {
        Frame& f = frames.back();
        if (f.child < adj[f.v].size()) {
          const std::int32_t w = adj[f.v][f.child++];
          if (index[w] == -1) {
            index[w] = low[w] = next_index++;
            stack.push_back(w);
            on_stack[w] = true;
            frames.push_back({w, 0});
          } else if (on_stack[w]) {
            low[f.v] = std::min(low[f.v], index[w]);
          }
        } else {
          const std::int32_t v = f.v;
          if (low[v] == index[v]) {
            std::vector<std::int32_t> members;
            while (true) {
              const std::int32_t w = stack.back();
              stack.pop_back();
              on_stack[w] = false;
              members.push_back(w);
              if (w == v) break;
            }
            const bool self_loop =
                members.size() == 1 &&
                std::find(adj[v].begin(), adj[v].end(), v) != adj[v].end();
            if (members.size() > 1 || self_loop) {
              std::reverse(members.begin(), members.end());
              report_scc(members);
            }
          }
          frames.pop_back();
          if (!frames.empty()) {
            low[frames.back().v] = std::min(low[frames.back().v], low[v]);
          }
        }
      }
    }
  }

  if (opt.check_cdc) {
    // Clock nets are the nets feeding any is_clock pin; each gets a domain
    // bit (capped at 64 distinct clocks).
    std::map<std::uint32_t, int> clock_bit;  // clock net -> bit
    auto clock_net_of = [&](std::uint32_t g) -> std::int64_t {
      const cell::Cell* cell = masters[nl.gates()[g].master];
      for (const auto& pc : nl.gates()[g].pins) {
        const int pi = cell->pin_index(nl.pin_names()[pc.pin_name]);
        if (pi >= 0 && cell->pins[pi].is_clock) return pc.net;
      }
      return -1;
    };
    std::vector<std::int64_t> gate_clock(n_gates, -1);
    for (std::uint32_t g = 0; g < n_gates; ++g) {
      const cell::Cell* cell = masters[nl.gates()[g].master];
      if (!cell || cell->timing_role() != cell::TimingRole::kRegister) {
        continue;
      }
      const std::int64_t cn = clock_net_of(g);
      gate_clock[g] = cn;
      if (cn >= 0 && !clock_bit.contains(static_cast<std::uint32_t>(cn)) &&
          clock_bit.size() < 64) {
        const int bit = static_cast<int>(clock_bit.size());
        clock_bit.emplace(static_cast<std::uint32_t>(cn), bit);
      }
    }
    auto bit_of = [&](std::int64_t cn) -> std::uint64_t {
      if (cn < 0) return 0;
      const auto it = clock_bit.find(static_cast<std::uint32_t>(cn));
      return it == clock_bit.end() ? 0 : (1ull << it->second);
    };
    auto clock_name = [&](int bit) -> std::string {
      for (const auto& [net, b] : clock_bit) {
        if (b == bit) return net_label(nl, net);
      }
      return "?";
    };

    // Seed: every register output net launches in its own clock domain.
    for (std::uint32_t g = 0; g < n_gates; ++g) {
      if (gate_clock[g] < 0) continue;
      const cell::Cell* cell = masters[nl.gates()[g].master];
      for (const auto& pc : nl.gates()[g].pins) {
        const int pi = cell->pin_index(nl.pin_names()[pc.pin_name]);
        if (pi >= 0 && !cell->pins[pi].is_input) {
          nets[pc.net].domains |= bit_of(gate_clock[g]);
        }
      }
    }
    // Propagate through the combinational gates in topological order
    // (Kahn); gates inside loops were reported above and are skipped.
    std::vector<std::int32_t> indeg(comb.size(), 0);
    for (const auto& out_edges : adj) {
      for (const std::int32_t w : out_edges) ++indeg[w];
    }
    std::vector<std::int32_t> queue;
    for (std::size_t v = 0; v < comb.size(); ++v) {
      if (indeg[v] == 0) queue.push_back(static_cast<std::int32_t>(v));
    }
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::int32_t v = queue[qi];
      const std::uint32_t g = comb[v];
      const cell::Cell* cell = masters[nl.gates()[g].master];
      std::uint64_t in_domains = 0;
      for (const auto& pc : nl.gates()[g].pins) {
        const int pi = cell->pin_index(nl.pin_names()[pc.pin_name]);
        if (pi >= 0 && cell->pins[pi].is_input) {
          in_domains |=
              nets[pc.net].domains | nets[pc.net].comb_domains;
        }
      }
      for (const auto& pc : nl.gates()[g].pins) {
        const int pi = cell->pin_index(nl.pin_names()[pc.pin_name]);
        if (pi >= 0 && !cell->pins[pi].is_input) {
          nets[pc.net].comb_domains |= in_domains;
        }
      }
      for (const std::int32_t w : adj[v]) {
        if (--indeg[w] == 0) queue.push_back(w);
      }
    }

    auto report_crossing = [&](std::uint32_t g, const std::string& pin,
                               std::uint32_t net, std::uint64_t offending) {
      for (int b = 0; b < 64 && offending; ++b) {
        if (!(offending & (1ull << b))) continue;
        offending &= ~(1ull << b);
        rep.emit(core::Severity::kWarning, "LINT-CDC",
                 "pin '" + pin + "' receives a combinational launch from "
                 "clock '" + clock_name(b) +
                     "' in another domain without a synchronizing "
                     "register (net " + net_label(nl, net) + ")",
                 gate_label(nl, g), gate_group(nl, g));
      }
    };

    // Endpoint checks: register data inputs vs. their own clock; SRAM
    // write pins (D/WL) vs. the designated weight-update clock.
    std::uint64_t write_mask = 0;
    bool have_write_clock = false;
    if (!opt.write_clock.empty()) {
      for (const auto& io : nl.primary_inputs()) {
        if (io.name == opt.write_clock) {
          write_mask = bit_of(io.net);
          have_write_clock = true;
        }
      }
    }
    for (std::uint32_t g = 0; g < n_gates; ++g) {
      const cell::Cell* cell = masters[nl.gates()[g].master];
      if (!cell) continue;
      const cell::TimingRole role = cell->timing_role();
      if (role == cell::TimingRole::kRegister) {
        const std::uint64_t own = bit_of(gate_clock[g]);
        for (const auto& pc : nl.gates()[g].pins) {
          const int pi = cell->pin_index(nl.pin_names()[pc.pin_name]);
          if (pi < 0 || !cell->pins[pi].is_input ||
              cell->pins[pi].is_clock) {
            continue;
          }
          const std::uint64_t offending = nets[pc.net].comb_domains & ~own;
          if (offending) {
            report_crossing(g, cell->pins[pi].name, pc.net, offending);
          }
        }
      } else if (role == cell::TimingRole::kStorage && have_write_clock) {
        // Storage cells never synchronize: even a direct foreign-domain
        // register output on a write pin is a violation.
        for (const auto& pc : nl.gates()[g].pins) {
          const int pi = cell->pin_index(nl.pin_names()[pc.pin_name]);
          if (pi < 0 || !cell->pins[pi].is_input) continue;
          const std::uint64_t offending =
              (nets[pc.net].domains | nets[pc.net].comb_domains) &
              ~write_mask;
          if (offending) {
            report_crossing(g, cell->pins[pi].name, pc.net, offending);
          }
        }
      }
    }
  }

  return rep.finish();
}

LintSummary lint_design(const netlist::Design& d, const std::string& top,
                        core::DiagEngine& diag, const LintOptions& opt) {
  Reporter rep(diag, opt);
  if (!d.has_module(top)) {
    rep.emit(core::Severity::kError, "LINT-STRUCT",
             "top module '" + top + "' not found in design");
    return rep.finish();
  }
  for (const std::string& problem : netlist::validate(d, top)) {
    rep.emit(core::Severity::kError, "LINT-STRUCT", problem);
  }

  for (const std::string& mod_name : d.module_names()) {
    const netlist::Module& m = d.module(mod_name);
    for (const auto& inst : m.instances()) {
      if (inst.is_cell || !d.has_module(inst.master)) continue;
      const netlist::Module& sub = d.module(inst.master);

      // Unconnected submodule input ports (flatten refuses these).
      std::set<std::string> connected;
      for (const auto& c : inst.conns) connected.insert(c.pin);
      for (const auto& p : sub.ports()) {
        if (p.dir == netlist::PortDir::kIn && !connected.contains(p.name)) {
          rep.emit(core::Severity::kError, "LINT-UNCONNECTED",
                   "input port '" + p.name + "' of module '" + sub.name() +
                       "' is unconnected",
                   inst.name, mod_name);
        }
      }

      // Module-boundary bus widths: compare connected bit indices per bus
      // base against the master's declared bits.
      std::map<std::string, std::set<int>> master_bus, conn_bus;
      for (const auto& p : sub.ports()) {
        std::string base;
        int idx = 0;
        if (split_bus_bit(p.name, base, idx)) master_bus[base].insert(idx);
      }
      for (const auto& c : inst.conns) {
        std::string base;
        int idx = 0;
        if (split_bus_bit(c.pin, base, idx)) conn_bus[base].insert(idx);
      }
      for (const auto& [base, bits] : conn_bus) {
        const auto it = master_bus.find(base);
        if (it == master_bus.end()) continue;  // unknown port: LINT-STRUCT
        if (bits.size() != it->second.size()) {
          rep.emit(core::Severity::kError, "LINT-WIDTH",
                   "bus '" + base + "' of module '" + sub.name() +
                       "' is " + std::to_string(it->second.size()) +
                       " bits wide but the instance connects " +
                       std::to_string(bits.size()) + " bits",
                   inst.name, mod_name);
        }
      }
    }
  }
  return rep.finish();
}

}  // namespace syndcim::lint

#include "lint/serialize.hpp"

#include "core/binio.hpp"

namespace syndcim::lint {

using core::BinDecodeError;
using core::BinReader;
using core::BinWriter;

namespace {
constexpr std::uint8_t kLintVersion = 1;
}  // namespace

std::string encode_lint_summary(const LintSummary& s) {
  BinWriter w;
  w.u8(kLintVersion);
  w.u64(s.errors);
  w.u64(s.warnings);
  w.u64(s.notes);
  return w.take();
}

LintSummary decode_lint_summary(std::string_view payload) {
  BinReader r(payload);
  if (r.u8() != kLintVersion) {
    throw BinDecodeError("unsupported codec version for lint summary");
  }
  LintSummary s;
  s.errors = static_cast<std::size_t>(r.u64());
  s.warnings = static_cast<std::size_t>(r.u64());
  s.notes = static_cast<std::size_t>(r.u64());
  r.expect_end();
  return s;
}

std::size_t deep_bytes(const LintSummary&) { return 0; }

}  // namespace syndcim::lint

#pragma once
#include <cstddef>
#include <string>

#include "cell/library.hpp"
#include "core/diag.hpp"
#include "netlist/design.hpp"
#include "netlist/flatten.hpp"

namespace syndcim::lint {

/// Rule ids emitted by the netlist lint pass (stable, machine-readable):
///   LINT-MULTIDRIVE    error    net driven by >1 output pin / const tie
///   LINT-FLOATING      error    net with loads but no driver
///   LINT-UNKNOWN-CELL  error    instance of a master the library lacks
///   LINT-UNKNOWN-PIN   error    connection to a pin the master lacks
///   LINT-UNCONNECTED   error    master input pin left unconnected
///                      warning  master output pin left unconnected
///   LINT-COMB-LOOP     error    combinational cycle (per SCC, members
///                               listed up to a cap)
///   LINT-WIDTH         error    module-boundary bus width mismatch
///   LINT-STRUCT        error    structural problem (unknown master
///                               module, bad port binding, duplicate
///                               instance name, missing top)
///   LINT-CDC           warning  clock-domain crossing that bypasses a
///                               synchronizing register: a foreign-domain
///                               launch reaching a register data pin
///                               through combinational logic (a direct
///                               reg->reg hop is the synchronizer pattern
///                               and is allowed), or any foreign-domain
///                               launch reaching an SRAM write endpoint
///                               when a write clock is designated
///   LINT-DANGLING      info     driven net with no loads (unused output)
struct LintOptions {
  bool check_drivers = true;      ///< LINT-MULTIDRIVE / LINT-FLOATING
  bool check_pins = true;         ///< LINT-UNKNOWN-* / LINT-UNCONNECTED
  bool check_comb_loops = true;   ///< LINT-COMB-LOOP
  bool check_cdc = true;          ///< LINT-CDC
  bool check_dangling = true;     ///< LINT-DANGLING
  /// Primary-input port carrying the weight-update clock. When set (and
  /// present), SRAM write pins (D/WL) become endpoints of that domain and
  /// combinational fan-in from any other clock domain is a crossing. When
  /// empty the write-domain check is skipped (reg->reg CDC still runs).
  std::string write_clock;
  /// Cap on findings reported per rule; a trailing info note counts the
  /// suppressed remainder so truncation is never silent.
  std::size_t max_per_rule = 64;
};

/// Totals of one lint pass (what was *added* to the engine by this call).
struct LintSummary {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
  [[nodiscard]] bool clean() const { return errors == 0; }
};

/// Static analysis over a flattened gate-level netlist: driver rules,
/// pin-connectivity rules against the cell library, combinational-loop
/// detection (Tarjan SCC over the combinational gate graph), and
/// clock-domain-crossing endpoints. Findings land in `diag`; `source` of
/// each finding is the depth-1 subcircuit group of the offending gate.
LintSummary lint_netlist(const netlist::FlatNetlist& nl,
                         const cell::Library& lib, core::DiagEngine& diag,
                         const LintOptions& opt = {});

/// Hierarchical checks that need pre-flatten structure: the structural
/// validation of `netlist::validate` reported as LINT-STRUCT diagnostics
/// (instead of a throw), unconnected submodule input ports, and
/// module-boundary bus width mismatches (an instance connecting fewer or
/// more bits of a bus port than its master declares -> LINT-WIDTH).
LintSummary lint_design(const netlist::Design& d, const std::string& top,
                        core::DiagEngine& diag, const LintOptions& opt = {});

}  // namespace syndcim::lint

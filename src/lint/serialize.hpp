#pragma once
#include <cstddef>
#include <string>
#include <string_view>

#include "lint/lint.hpp"

namespace syndcim::lint {

// Stable binary codec for the lint summary payload (rides inside the
// lints composite artifact). Decoder throws core::BinDecodeError.

[[nodiscard]] std::string encode_lint_summary(const LintSummary& s);
[[nodiscard]] LintSummary decode_lint_summary(std::string_view payload);

[[nodiscard]] std::size_t deep_bytes(const LintSummary& s);

}  // namespace syndcim::lint

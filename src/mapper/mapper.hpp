#pragma once
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "rtlgen/arch.hpp"

namespace syndcim::mapper {

/// A GEMM-shaped workload layer (fully-connected, or a convolution after
/// im2col): Y[m,n] = X[m,k] * W[k,n].
struct Layer {
  std::string name;
  long m = 1;  ///< batch/output-pixel count
  long k = 1;  ///< reduction depth
  long n = 1;  ///< output channels
  int input_bits = 8;
  int weight_bits = 8;
  double input_density = 0.5;  ///< P(input bit == 1), scales energy
};

/// Execution profile of one compiled macro, extracted from its post-layout
/// implementation at an operating frequency.
struct MacroProfile {
  rtlgen::MacroConfig cfg;
  double freq_mhz = 0.0;
  double energy_per_cycle_fj = 0.0;  ///< dynamic, at 50% data density
  double leakage_uw = 0.0;

  [[nodiscard]] static MacroProfile from_implementation(
      const core::Implementation& impl, double freq_mhz);
};

/// How one layer executes on one macro (weight-stationary dataflow; with
/// MCR >= 2 the next tile's weights stream into the idle bank during
/// compute, hiding the write cycles behind the MAC cycles).
struct LayerMapping {
  long k_tiles = 0;       ///< reduction tiles of `rows` each
  long n_tiles = 0;       ///< output tiles of cols/weight_bits each
  long weight_load_cycles = 0;  ///< total write-port cycles
  long exposed_load_cycles = 0; ///< loads not hidden by double buffering
  long compute_cycles = 0;
  long total_cycles = 0;
  long macs = 0;
  double time_us = 0.0;
  double energy_uj = 0.0;
  /// MAC-array utilization: useful bit-MACs / offered bit-MACs.
  double utilization = 0.0;
};

[[nodiscard]] LayerMapping map_layer(const Layer& layer,
                                     const MacroProfile& macro);

/// Whole-network roll-up across `n_macros` identical macros (tiles are
/// distributed across macros; per-layer tail effects are modeled by
/// ceiling division).
struct NetworkReport {
  std::vector<std::pair<Layer, LayerMapping>> layers;
  double total_time_us = 0.0;
  double total_energy_uj = 0.0;
  long total_macs = 0;
  /// Effective throughput/efficiency at the workload's precision.
  [[nodiscard]] double effective_gops() const {
    return total_time_us > 0 ? 2.0 * total_macs / total_time_us * 1e-3
                             : 0.0;
  }
  [[nodiscard]] double effective_tops_per_w() const {
    return total_energy_uj > 0
               ? 2.0 * total_macs / (total_energy_uj * 1e6)
               : 0.0;
  }
};

[[nodiscard]] NetworkReport map_network(const std::vector<Layer>& layers,
                                        const MacroProfile& macro,
                                        int n_macros = 1);

}  // namespace syndcim::mapper

#include "mapper/mapper.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace syndcim::mapper {

MacroProfile MacroProfile::from_implementation(
    const core::Implementation& impl, double freq_mhz) {
  MacroProfile p;
  p.cfg = impl.macro.cfg;
  p.freq_mhz = std::min(freq_mhz, impl.fmax_mhz);
  p.energy_per_cycle_fj = impl.power.energy_per_cycle_fj(
      std::min(freq_mhz, impl.fmax_mhz));
  p.leakage_uw = impl.power.leakage_uw;
  return p;
}

LayerMapping map_layer(const Layer& layer, const MacroProfile& macro) {
  const auto& cfg = macro.cfg;
  if (layer.m < 1 || layer.k < 1 || layer.n < 1) {
    throw std::invalid_argument("map_layer: degenerate layer");
  }
  if (layer.weight_bits > cfg.max_weight_bits() ||
      layer.input_bits > cfg.max_input_bits()) {
    throw std::invalid_argument("map_layer: precision exceeds the macro's");
  }
  LayerMapping lm;
  const long outs_per_tile = cfg.cols / layer.weight_bits;
  lm.k_tiles = (layer.k + cfg.rows - 1) / cfg.rows;
  lm.n_tiles = (layer.n + outs_per_tile - 1) / outs_per_tile;
  lm.macs = layer.m * layer.k * layer.n;

  // Weight-stationary: for each (n,k) tile, write `rows` rows (2-cycle
  // write pipeline each), then stream m input groups at input_bits+1
  // cycles apiece (load cycle + serial bits; the OFU pipeline overlaps
  // consecutive groups).
  const long tiles = lm.k_tiles * lm.n_tiles;
  const long load_per_tile = 2L * cfg.rows;
  const long compute_per_tile = layer.m * (layer.input_bits + 1L);
  lm.weight_load_cycles = tiles * load_per_tile;
  lm.compute_cycles = tiles * compute_per_tile;
  if (cfg.mcr >= 2) {
    // Double buffering: the next tile's load hides under this tile's
    // compute; only the remainder (and the first load) is exposed.
    const long hidden = std::min(load_per_tile, compute_per_tile);
    lm.exposed_load_cycles =
        load_per_tile + (tiles - 1) * (load_per_tile - hidden);
  } else {
    lm.exposed_load_cycles = lm.weight_load_cycles;
  }
  lm.total_cycles = lm.compute_cycles + lm.exposed_load_cycles;
  lm.time_us = static_cast<double>(lm.total_cycles) / macro.freq_mhz;

  // Energy: dynamic scaled by the workload's input density relative to
  // the 50% profiling point, plus leakage over the wall time.
  const double density_scale = 0.4 + 1.2 * layer.input_density;
  lm.energy_uj = lm.total_cycles * macro.energy_per_cycle_fj *
                     density_scale * 1e-9 +
                 macro.leakage_uw * lm.time_us * 1e-6;

  const double offered_macs =
      static_cast<double>(lm.compute_cycles) / (layer.input_bits + 1) *
      cfg.rows * outs_per_tile;
  lm.utilization = offered_macs > 0 ? lm.macs / offered_macs : 0.0;
  return lm;
}

NetworkReport map_network(const std::vector<Layer>& layers,
                          const MacroProfile& macro, int n_macros) {
  if (n_macros < 1) {
    throw std::invalid_argument("map_network: need at least one macro");
  }
  NetworkReport rep;
  for (const Layer& l : layers) {
    LayerMapping lm = map_layer(l, macro);
    // Tiles distribute across macros; the slowest macro sets layer time.
    const long tiles = lm.k_tiles * lm.n_tiles;
    const long per_macro = (tiles + n_macros - 1) / n_macros;
    const double shrink =
        tiles > 0 ? static_cast<double>(per_macro) / tiles : 1.0;
    lm.time_us *= shrink;
    rep.total_time_us += lm.time_us;
    rep.total_energy_uj += lm.energy_uj;  // energy is conserved
    rep.total_macs += lm.macs;
    rep.layers.emplace_back(l, lm);
  }
  return rep;
}

}  // namespace syndcim::mapper
